package bestsync_test

import (
	"testing"

	"bestsync/internal/bandwidth"
	"bestsync/internal/cgm"
	"bestsync/internal/engine"
	"bestsync/internal/experiments"
	"bestsync/internal/metric"
	"bestsync/internal/workload"

	"math/rand"
)

// Experiment benchmarks: each runs the Quick-scale version of one paper
// experiment (see DESIGN.md §3 for the index). One iteration regenerates the
// experiment's full table/figure data, so expect seconds per iteration for
// the figure-scale benches; run with -benchtime=1x for a single pass.

func benchExperiment(b *testing.B, id string) {
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := runner(experiments.Quick, int64(i)+1)
		if len(out.Tables)+len(out.Figures) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkE1Validation(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkE2Skew(b *testing.B)               { benchExperiment(b, "e2") }
func BenchmarkP1ParamSweep(b *testing.B)         { benchExperiment(b, "p1") }
func BenchmarkF4RatioToIdeal(b *testing.B)       { benchExperiment(b, "f4") }
func BenchmarkF5Buoys(b *testing.B)              { benchExperiment(b, "f5") }
func BenchmarkF6VsCGM(b *testing.B)              { benchExperiment(b, "f6") }
func BenchmarkA1FeedbackPolarity(b *testing.B)   { benchExperiment(b, "a1") }
func BenchmarkA2BetaAblation(b *testing.B)       { benchExperiment(b, "a2") }
func BenchmarkA3FeedbackTargeting(b *testing.B)  { benchExperiment(b, "a3") }
func BenchmarkA4RateEstimation(b *testing.B)     { benchExperiment(b, "a4") }
func BenchmarkE7Competitive(b *testing.B)        { benchExperiment(b, "e7") }
func BenchmarkE8Bounding(b *testing.B)           { benchExperiment(b, "e8") }
func BenchmarkE9Sampling(b *testing.B)           { benchExperiment(b, "e9") }
func BenchmarkE10CostAware(b *testing.B)         { benchExperiment(b, "e10") }
func BenchmarkE11DeltaEncoding(b *testing.B)     { benchExperiment(b, "e11") }
func BenchmarkE12Batching(b *testing.B)          { benchExperiment(b, "e12") }
func BenchmarkE13MutualConsistency(b *testing.B) { benchExperiment(b, "e13") }

// Component benchmarks: per-run cost of the simulation engines themselves,
// useful for estimating full-grid runtimes.

func engineBenchConfig(policy engine.Policy) engine.Config {
	rng := rand.New(rand.NewSource(7))
	const m, n = 10, 50
	return engine.Config{
		Seed:             7,
		Sources:          m,
		ObjectsPerSource: n,
		Metric:           metric.ValueDeviation,
		Duration:         300,
		Warmup:           50,
		CacheBW:          bandwidth.Const(float64(m*n) / 4),
		SourceBW:         bandwidth.Const(float64(n)),
		Rates:            workload.UniformRates(rng, m*n, 0.05, 1),
		Policy:           policy,
	}
}

func BenchmarkEngineCooperative(b *testing.B) {
	cfg := engineBenchConfig(engine.Cooperative)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := engine.MustRun(cfg)
		if res.RefreshesDelivered == 0 {
			b.Fatal("no refreshes")
		}
	}
}

func BenchmarkEngineIdealCooperative(b *testing.B) {
	cfg := engineBenchConfig(engine.IdealCooperative)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := engine.MustRun(cfg)
		if res.RefreshesDelivered == 0 {
			b.Fatal("no refreshes")
		}
	}
}

func BenchmarkCGMPollingEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cfg := cgm.Config{
		Seed:     7,
		Objects:  500,
		Duration: 300,
		Warmup:   50,
		CacheBW:  bandwidth.Const(125),
		Rates:    workload.UniformRates(rng, 500, 0.05, 1),
		Mode:     cgm.CGM1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := cgm.MustRun(cfg)
		if res.Polls == 0 {
			b.Fatal("no polls")
		}
	}
}

func BenchmarkCGMAllocationSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	lambdas := make([]float64, 10000)
	for i := range lambdas {
		lambdas[i] = rng.Float64() * 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freqs := cgm.OptimalAllocation(lambdas, 2500)
		if len(freqs) != len(lambdas) {
			b.Fatal("bad allocation")
		}
	}
}
