package bestsync_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/bandwidth"
	"bestsync/internal/cgm"
	"bestsync/internal/engine"
	"bestsync/internal/experiments"
	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/workload"

	"math/rand"
)

// Experiment benchmarks: each runs the Quick-scale version of one paper
// experiment (see DESIGN.md §3 for the index). One iteration regenerates the
// experiment's full table/figure data, so expect seconds per iteration for
// the figure-scale benches; run with -benchtime=1x for a single pass.

func benchExperiment(b *testing.B, id string) {
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := runner(experiments.Quick, int64(i)+1)
		if len(out.Tables)+len(out.Figures) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkE1Validation(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkE2Skew(b *testing.B)               { benchExperiment(b, "e2") }
func BenchmarkP1ParamSweep(b *testing.B)         { benchExperiment(b, "p1") }
func BenchmarkF4RatioToIdeal(b *testing.B)       { benchExperiment(b, "f4") }
func BenchmarkF5Buoys(b *testing.B)              { benchExperiment(b, "f5") }
func BenchmarkF6VsCGM(b *testing.B)              { benchExperiment(b, "f6") }
func BenchmarkA1FeedbackPolarity(b *testing.B)   { benchExperiment(b, "a1") }
func BenchmarkA2BetaAblation(b *testing.B)       { benchExperiment(b, "a2") }
func BenchmarkA3FeedbackTargeting(b *testing.B)  { benchExperiment(b, "a3") }
func BenchmarkA4RateEstimation(b *testing.B)     { benchExperiment(b, "a4") }
func BenchmarkE7Competitive(b *testing.B)        { benchExperiment(b, "e7") }
func BenchmarkE8Bounding(b *testing.B)           { benchExperiment(b, "e8") }
func BenchmarkE9Sampling(b *testing.B)           { benchExperiment(b, "e9") }
func BenchmarkE10CostAware(b *testing.B)         { benchExperiment(b, "e10") }
func BenchmarkE11DeltaEncoding(b *testing.B)     { benchExperiment(b, "e11") }
func BenchmarkE12Batching(b *testing.B)          { benchExperiment(b, "e12") }
func BenchmarkE13MutualConsistency(b *testing.B) { benchExperiment(b, "e13") }

// Live-runtime benchmarks: the sharded refresh-apply path and the batched
// TCP framing, measured end to end through the public transport/runtime
// APIs. See `syncbench -throughput` for the combined comparison.

// benchShardedApply pushes b.N refreshes (in wire batches of 64) through a
// Local transport into a cache with the given shard count and waits for all
// of them to be applied.
func benchShardedApply(b *testing.B, shards int) {
	net := transport.NewLocal(256)
	defer net.Close()
	cache := runtime.NewCache(runtime.CacheConfig{
		Bandwidth: 1e9,
		Tick:      time.Millisecond,
		Shards:    shards,
	}, net)
	defer cache.Close()
	conn, err := net.Dial("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	const objects = 512
	ids := make([]string, objects)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench/obj-%d", i)
	}
	const batch = 64
	rs := make([]wire.Refresh, batch)
	b.ReportAllocs()
	b.ResetTimer()
	var version uint64
	sent := 0
	for sent < b.N {
		n := batch
		if rem := b.N - sent; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			version++
			rs[i] = wire.Refresh{
				SourceID: "bench",
				ObjectID: ids[int(version)%objects],
				Version:  version,
				Value:    float64(version),
			}
		}
		if err := conn.SendBatch(rs[:n]); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	for cache.Stats().Refreshes < b.N {
		time.Sleep(100 * time.Microsecond)
	}
}

func BenchmarkShardedApply(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedApply(b, shards)
		})
	}
}

// benchBatchedTCP streams b.N refreshes over a loopback TCP connection in
// wire batches of the given size and waits until the server has received
// them all, isolating the framing/syscall cost from the apply path. The
// codec preference picks the framing under test: the binary codec against
// the legacy gob stream.
func benchBatchedTCP(b *testing.B, batch int, pref transport.Codec) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := transport.Serve(ln, 256)
	defer srv.Close()
	received := make(chan int)
	go func() {
		n := 0
		for batch := range srv.Batches() {
			n += len(batch.Refreshes)
			if n >= b.N {
				break
			}
		}
		received <- n
	}()
	conn, err := transport.DialCodec(ln.Addr().String(), "bench", pref)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	rs := make([]wire.Refresh, batch)
	for i := range rs {
		rs[i] = wire.Refresh{SourceID: "bench", ObjectID: "bench/obj"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var version uint64
	sent := 0
	for sent < b.N {
		n := batch
		if rem := b.N - sent; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			version++
			rs[i].Version = version
			rs[i].Value = float64(version)
		}
		if err := conn.SendBatch(rs[:n]); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	if got := <-received; got < b.N {
		b.Fatalf("received %d of %d refreshes", got, b.N)
	}
}

func BenchmarkBatchedTCP(b *testing.B) {
	codecs := []struct {
		name string
		pref transport.Codec
	}{
		{"binary", transport.CodecBinary},
		{"gob", transport.CodecGob},
	}
	for _, c := range codecs {
		for _, batch := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("codec=%s/batch=%d", c.name, batch), func(b *testing.B) {
				benchBatchedTCP(b, batch, c.pref)
			})
		}
	}
}

// Component benchmarks: per-run cost of the simulation engines themselves,
// useful for estimating full-grid runtimes.

func engineBenchConfig(policy engine.Policy) engine.Config {
	rng := rand.New(rand.NewSource(7))
	const m, n = 10, 50
	return engine.Config{
		Seed:             7,
		Sources:          m,
		ObjectsPerSource: n,
		Metric:           metric.ValueDeviation,
		Duration:         300,
		Warmup:           50,
		CacheBW:          bandwidth.Const(float64(m*n) / 4),
		SourceBW:         bandwidth.Const(float64(n)),
		Rates:            workload.UniformRates(rng, m*n, 0.05, 1),
		Policy:           policy,
	}
}

func BenchmarkEngineCooperative(b *testing.B) {
	cfg := engineBenchConfig(engine.Cooperative)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := engine.MustRun(cfg)
		if res.RefreshesDelivered == 0 {
			b.Fatal("no refreshes")
		}
	}
}

func BenchmarkEngineIdealCooperative(b *testing.B) {
	cfg := engineBenchConfig(engine.IdealCooperative)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := engine.MustRun(cfg)
		if res.RefreshesDelivered == 0 {
			b.Fatal("no refreshes")
		}
	}
}

func BenchmarkCGMPollingEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cfg := cgm.Config{
		Seed:     7,
		Objects:  500,
		Duration: 300,
		Warmup:   50,
		CacheBW:  bandwidth.Const(125),
		Rates:    workload.UniformRates(rng, 500, 0.05, 1),
		Mode:     cgm.CGM1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res := cgm.MustRun(cfg)
		if res.Polls == 0 {
			b.Fatal("no polls")
		}
	}
}

func BenchmarkCGMAllocationSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	lambdas := make([]float64, 10000)
	for i := range lambdas {
		lambdas[i] = rng.Float64() * 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freqs := cgm.OptimalAllocation(lambdas, 2500)
		if len(freqs) != len(lambdas) {
			b.Fatal("bad allocation")
		}
	}
}
