package sampling_test

import (
	"fmt"

	"bestsync/internal/sampling"
)

// ExampleMonitor demonstrates Section 8.2.1: estimate an object's refresh
// priority from sparse samples and project when it will cross the
// threshold, instead of instrumenting every update.
func ExampleMonitor() {
	m := sampling.NewMonitor(0) // refreshed at t=0

	// Divergence observed to grow roughly linearly: D(t) ≈ 0.5·t.
	m.Sample(2, 1.0)
	m.Sample(4, 2.0)

	fmt.Printf("estimated rate:      %.2f/s\n", m.Rate())
	fmt.Printf("estimated priority:  %.1f\n", m.Priority(4))
	next := m.NextSampleTime(4, 25, 1, 1, 0)
	fmt.Printf("next sample at:      t=%.1f\n", next)
	// P(t) = ρt²/2 reaches 25 at t = sqrt(2·25/0.5) = 10.

	// Output:
	// estimated rate:      0.50/s
	// estimated priority:  4.0
	// next sample at:      t=10.0
}
