// Package sampling implements the lightweight priority-monitoring techniques
// of Section 8: when update triggers are unavailable or too expensive, a
// source samples an object's divergence periodically, estimates the running
// divergence integral by assuming each sampled value was active halfway
// between neighboring samples (Section 8.2.1), and schedules the next sample
// from a projection of when the priority will reach the refresh threshold.
package sampling

import (
	"math"

	"bestsync/internal/priority"
)

// Monitor tracks one object's estimated divergence state from samples.
type Monitor struct {
	lastRefresh float64 // t_last
	boundary    float64 // integral is finalized up to here
	integral    float64 // estimated ∫D dt over [lastRefresh, boundary]

	prevT, prevD float64 // previous sample
	haveSample   bool

	rate float64 // EWMA of the divergence growth rate ρ̂
	// RateSmoothing is the EWMA factor applied to new slope observations
	// (0 < RateSmoothing ≤ 1; 1 = use only the latest slope).
	RateSmoothing float64
}

// NewMonitor starts monitoring after a refresh at time t.
func NewMonitor(t float64) *Monitor {
	m := &Monitor{RateSmoothing: 0.5}
	m.Reset(t)
	return m
}

// Reset restarts the monitor after a refresh at time t.
func (m *Monitor) Reset(t float64) {
	m.lastRefresh = t
	m.boundary = t
	m.integral = 0
	m.prevT = t
	m.prevD = 0
	m.haveSample = false
	m.rate = 0
}

// Sample records an observed divergence d at time t (t must be ≥ the
// previous sample time). Samples need not be evenly spaced — the paper notes
// "sampling can be scheduled whenever it is convenient for the source".
func (m *Monitor) Sample(t, d float64) {
	if t < m.prevT {
		return // ignore out-of-order samples
	}
	// The previous sampled value is assumed active until halfway to this
	// sample.
	mid := (m.prevT + t) / 2
	m.integral += m.prevD * (mid - m.boundary)
	m.boundary = mid

	if t > m.prevT {
		slope := (d - m.prevD) / (t - m.prevT)
		if !m.haveSample {
			m.rate = slope
		} else {
			a := m.RateSmoothing
			m.rate = a*slope + (1-a)*m.rate
		}
	}
	m.prevT, m.prevD = t, d
	m.haveSample = true
}

// Divergence returns the most recently sampled divergence.
func (m *Monitor) Divergence() float64 { return m.prevD }

// Rate returns the estimated divergence growth rate ρ̂.
func (m *Monitor) Rate() float64 { return m.rate }

// Integral returns the estimated ∫ D dt over [t_last, now].
func (m *Monitor) Integral(now float64) float64 {
	if now < m.boundary {
		return m.integral
	}
	return m.integral + m.prevD*(now-m.boundary)
}

// Priority returns the estimated unweighted refresh priority at time now
// (Section 3.3 evaluated on sampled state).
func (m *Monitor) Priority(now float64) float64 {
	return (now-m.lastRefresh)*m.prevD - m.Integral(now)
}

// NextSampleTime projects when the weighted priority will reach threshold
// and schedules the next sample a safety fraction of the way there:
// safety = 1 samples exactly at the projected crossing; smaller values
// sample earlier "in case the divergence rate accelerates" (Section 8.2.1).
// maxInterval caps the gap so a stalled estimate cannot silence monitoring
// forever; pass 0 for no cap.
func (m *Monitor) NextSampleTime(now, threshold, w, safety, maxInterval float64) float64 {
	if safety <= 0 || safety > 1 {
		safety = 1
	}
	tf := priority.ProjectedCrossing(now, m.lastRefresh,
		m.Priority(now)*w, threshold, m.rate, w)
	var next float64
	if math.IsInf(tf, 1) {
		if maxInterval <= 0 {
			return math.Inf(1)
		}
		next = now + maxInterval
	} else {
		next = now + safety*(tf-now)
	}
	if maxInterval > 0 && next > now+maxInterval {
		next = now + maxInterval
	}
	if next <= now {
		next = math.Nextafter(now, math.Inf(1))
	}
	return next
}
