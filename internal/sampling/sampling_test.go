package sampling

import (
	"math"
	"testing"
)

func TestMonitorLinearDivergenceIntegral(t *testing.T) {
	// D(t) = t (refresh at 0), sampled every second. True ∫ over [0,10] =
	// 50; the midpoint estimate should be close.
	m := NewMonitor(0)
	for ti := 1.0; ti <= 10; ti++ {
		m.Sample(ti, ti)
	}
	got := m.Integral(10)
	if math.Abs(got-50) > 5 {
		t.Errorf("Integral = %v, want ≈50", got)
	}
	if r := m.Rate(); math.Abs(r-1) > 1e-9 {
		t.Errorf("Rate = %v, want 1", r)
	}
}

func TestMonitorPriorityMatchesAnalytic(t *testing.T) {
	// For linear divergence D = ρ·t the true priority is ρt²/2.
	m := NewMonitor(0)
	const rho = 2.0
	for ti := 0.5; ti <= 20; ti += 0.5 {
		m.Sample(ti, rho*ti)
	}
	got := m.Priority(20)
	want := rho * 20 * 20 / 2
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Priority = %v, want ≈%v", got, want)
	}
}

func TestMonitorConstantDivergenceZeroPriorityGrowth(t *testing.T) {
	// Constant divergence ⇒ priority stops growing (Section 8.2).
	m := NewMonitor(0)
	m.Sample(1, 4)
	for ti := 2.0; ti <= 10; ti++ {
		m.Sample(ti, 4)
	}
	p5 := m.Priority(10)
	p6 := m.Priority(11)
	if math.Abs(p5-p6) > 1e-9 {
		t.Errorf("priority grew with constant divergence: %v vs %v", p5, p6)
	}
	if r := m.Rate(); math.Abs(r) > 0.5 {
		t.Errorf("rate = %v, want ≈0", r)
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(0)
	m.Sample(1, 5)
	m.Reset(10)
	if m.Divergence() != 0 || m.Integral(12) != 0 || m.Priority(12) != 0 {
		t.Error("reset did not clear state")
	}
}

func TestMonitorOutOfOrderIgnored(t *testing.T) {
	m := NewMonitor(0)
	m.Sample(5, 2)
	m.Sample(3, 99) // ignored
	if m.Divergence() != 2 {
		t.Errorf("divergence = %v, want 2", m.Divergence())
	}
}

func TestMonitorIrregularSampling(t *testing.T) {
	// The midpoint rule must handle uneven gaps.
	m := NewMonitor(0)
	times := []float64{0.5, 0.7, 3, 3.1, 8}
	for _, ti := range times {
		m.Sample(ti, ti) // D = t
	}
	got := m.Integral(8)
	if math.Abs(got-32)/32 > 0.25 {
		t.Errorf("Integral = %v, want ≈32", got)
	}
}

func TestNextSampleTimeProjectsCrossing(t *testing.T) {
	// D grows at ρ=1, weight 1, so P(t) = t²/2 reaches T=50 at t=10.
	m := NewMonitor(0)
	for ti := 1.0; ti <= 4; ti++ {
		m.Sample(ti, ti)
	}
	next := m.NextSampleTime(4, 50, 1, 1, 0)
	if math.Abs(next-10) > 1.5 {
		t.Errorf("next sample = %v, want ≈10", next)
	}
	// Safety < 1 samples earlier.
	earlier := m.NextSampleTime(4, 50, 1, 0.5, 0)
	if earlier >= next {
		t.Errorf("safety sample %v not earlier than %v", earlier, next)
	}
	if earlier <= 4 {
		t.Errorf("next sample %v not after now", earlier)
	}
}

func TestNextSampleTimeNoGrowth(t *testing.T) {
	m := NewMonitor(0)
	m.Sample(1, 0)
	m.Sample(2, 0)
	if next := m.NextSampleTime(2, 10, 1, 1, 0); !math.IsInf(next, 1) {
		t.Errorf("no-growth next sample = %v, want +Inf", next)
	}
	if next := m.NextSampleTime(2, 10, 1, 1, 30); next != 32 {
		t.Errorf("capped next sample = %v, want 32", next)
	}
}

func TestNextSampleTimeAboveThreshold(t *testing.T) {
	m := NewMonitor(0)
	m.Sample(1, 10)
	m.Sample(2, 20)
	// Priority already above a tiny threshold → immediate (just after now).
	next := m.NextSampleTime(2, 0.001, 1, 1, 0)
	if next <= 2 || next > 2.001 {
		t.Errorf("next sample = %v, want barely after 2", next)
	}
}

func TestSamplingSavesWorkVersusTriggers(t *testing.T) {
	// E9's claim in miniature: monitoring an object that crosses a high
	// threshold needs far fewer samples with projection-based scheduling
	// than with a fixed fine-grained schedule, while still catching the
	// crossing reasonably promptly.
	const (
		rho       = 0.5
		threshold = 100.0
	)
	trueCross := math.Sqrt(2 * threshold / rho) // P(t) = ρt²/2

	m := NewMonitor(0)
	samples := 0
	now := 0.0
	m.Sample(1, rho*1)
	samples++
	now = 1
	for m.Priority(now) < threshold && samples < 1000 {
		next := m.NextSampleTime(now, threshold, 1, 0.8, 5)
		now = next
		m.Sample(now, rho*now)
		samples++
	}
	if samples >= 50 {
		t.Errorf("projection scheduling used %d samples, want few", samples)
	}
	if now < trueCross*0.9 || now > trueCross*1.5 {
		t.Errorf("crossing detected at %v, true crossing %v", now, trueCross)
	}
	// Fixed 0.5s sampling would need ≈ trueCross/0.5 samples.
	fixed := int(trueCross / 0.5)
	if samples >= fixed {
		t.Errorf("projection (%d samples) no better than fixed grid (%d)", samples, fixed)
	}
}
