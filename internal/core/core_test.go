package core

import (
	"math"
	"testing"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(100, 50)
	if p.Alpha != 1.1 || p.Omega != 10 {
		t.Errorf("defaults = α %v ω %v, want 1.1, 10", p.Alpha, p.Omega)
	}
	if p.ExpectedFeedbackPeriod != 2 {
		t.Errorf("P_feedback = %v, want 2 (= 100/50)", p.ExpectedFeedbackPeriod)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestDefaultParamsZeroBandwidth(t *testing.T) {
	p := DefaultParams(10, 0)
	if p.ExpectedFeedbackPeriod != 0 {
		t.Errorf("P_feedback = %v, want 0", p.ExpectedFeedbackPeriod)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{Alpha: 1, Omega: 10, InitialThreshold: 1},
		{Alpha: 1.1, Omega: 1, InitialThreshold: 1},
		{Alpha: 1.1, Omega: 10, InitialThreshold: 0},
		{Alpha: 1.1, Omega: 10, InitialThreshold: 1, ExpectedFeedbackPeriod: -1},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestFeedbackPolicyString(t *testing.T) {
	cases := map[FeedbackPolicy]string{
		PositiveFeedback:   "positive",
		NegativeFeedback:   "negative",
		NoFeedback:         "none",
		FeedbackPolicy(42): "FeedbackPolicy(42)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func newTestSource(policy FeedbackPolicy) *Source {
	p := Params{Alpha: 1.1, Omega: 10, InitialThreshold: 1, ExpectedFeedbackPeriod: 2}
	return NewSource(0, p, policy)
}

func TestSourceThresholdGrowsOnRefresh(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.OnRefreshSent(1) // within P_feedback of lastFeedback=0 → β=1... elapsed 1 ≤ 2
	if math.Abs(s.Threshold()-1.1) > 1e-12 {
		t.Errorf("threshold = %v, want 1.1", s.Threshold())
	}
	if s.Refreshes() != 1 {
		t.Errorf("refreshes = %d, want 1", s.Refreshes())
	}
}

func TestSourceBetaAcceleratesWhenFeedbackOverdue(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	// No feedback since t=0, P_feedback=2: at t=10, β = 5.
	if got := s.Beta(10); math.Abs(got-5) > 1e-12 {
		t.Errorf("Beta(10) = %v, want 5", got)
	}
	// Within the expected period β = 1.
	if got := s.Beta(1.5); got != 1 {
		t.Errorf("Beta(1.5) = %v, want 1", got)
	}
	s.OnRefreshSent(10) // 1.1 * 5
	if math.Abs(s.Threshold()-5.5) > 1e-12 {
		t.Errorf("threshold = %v, want 5.5", s.Threshold())
	}
}

func TestSourceBetaDisabled(t *testing.T) {
	p := Params{Alpha: 1.1, Omega: 10, InitialThreshold: 1,
		ExpectedFeedbackPeriod: 2, DisableBeta: true}
	s := NewSource(0, p, PositiveFeedback)
	if got := s.Beta(100); got != 1 {
		t.Errorf("Beta with DisableBeta = %v, want 1", got)
	}
}

func TestSourceBetaNoPeriod(t *testing.T) {
	p := Params{Alpha: 1.1, Omega: 10, InitialThreshold: 1}
	s := NewSource(0, p, PositiveFeedback)
	if got := s.Beta(100); got != 1 {
		t.Errorf("Beta with zero P_feedback = %v, want 1", got)
	}
}

func TestSourceFeedbackLowersThreshold(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(100)
	s.OnFeedback(5)
	if math.Abs(s.Threshold()-10) > 1e-12 {
		t.Errorf("threshold = %v, want 10", s.Threshold())
	}
	if s.Feedbacks() != 1 {
		t.Errorf("feedbacks = %d, want 1", s.Feedbacks())
	}
	// Feedback receipt resets the β timer.
	if got := s.Beta(6); got != 1 {
		t.Errorf("Beta(6) after feedback at 5 = %v, want 1", got)
	}
}

func TestSourceLimitedIgnoresFeedback(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(100)
	s.SetLimited(true)
	s.OnFeedback(5)
	if s.Threshold() != 100 {
		t.Errorf("limited source changed threshold to %v", s.Threshold())
	}
	if !s.Limited() {
		t.Error("Limited() lost state")
	}
	// But the β timer still resets (feedback was received).
	if got := s.Beta(6); got != 1 {
		t.Errorf("Beta = %v, want 1", got)
	}
}

func TestSourceNegativePolicyInverts(t *testing.T) {
	s := newTestSource(NegativeFeedback)
	s.SetThreshold(10)
	s.OnRefreshSent(1)
	if s.Threshold() >= 10 {
		t.Errorf("negative policy refresh raised threshold to %v", s.Threshold())
	}
	s.SetThreshold(10)
	s.OnFeedback(2)
	if math.Abs(s.Threshold()-100) > 1e-9 {
		t.Errorf("negative policy feedback: threshold = %v, want 100", s.Threshold())
	}
}

func TestSourceNoFeedbackPolicyStatic(t *testing.T) {
	s := newTestSource(NoFeedback)
	s.OnRefreshSent(1)
	s.OnFeedback(2)
	if s.Threshold() != 1 {
		t.Errorf("static policy moved threshold to %v", s.Threshold())
	}
}

func TestSourceThresholdClamped(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(1e-300)
	s.ClampThreshold()
	if s.Threshold() < minThreshold {
		t.Errorf("threshold %v below clamp", s.Threshold())
	}
	s.SetThreshold(1e300)
	s.ClampThreshold()
	if s.Threshold() > maxThreshold {
		t.Errorf("threshold %v above clamp", s.Threshold())
	}
}

func TestSourceShouldSend(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(5)
	if _, _, ok := s.ShouldSend(); ok {
		t.Error("empty queue should not send")
	}
	s.Queue.Upsert(3, 4) // below threshold
	if _, _, ok := s.ShouldSend(); ok {
		t.Error("below-threshold object should not send")
	}
	s.Queue.Upsert(7, 6) // above threshold
	obj, pri, ok := s.ShouldSend()
	if !ok || obj != 7 || pri != 6 {
		t.Errorf("ShouldSend = (%d, %v, %v), want (7, 6, true)", obj, pri, ok)
	}
}

func TestSourceShouldSendIgnoresNonPositive(t *testing.T) {
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(1e-12)
	s.Queue.Upsert(1, 0)
	if _, _, ok := s.ShouldSend(); ok {
		t.Error("zero-priority object should never be sent")
	}
}

func TestCacheObserveAndPick(t *testing.T) {
	c := NewCache(4)
	c.ObserveThreshold(0, 5)
	c.ObserveThreshold(1, 50)
	c.ObserveThreshold(2, 0.5)
	// Source 3 never heard from → +Inf, ranks first.
	targets := c.PickFeedbackTargets(3, false)
	want := []int{3, 1, 0}
	for i, id := range want {
		if targets[i] != id {
			t.Fatalf("targets = %v, want %v", targets, want)
		}
	}
	if c.Feedbacks() != 3 {
		t.Errorf("feedbacks = %d, want 3", c.Feedbacks())
	}
}

func TestCachePickAllWhenKLarge(t *testing.T) {
	c := NewCache(3)
	targets := c.PickFeedbackTargets(10, false)
	if len(targets) != 3 {
		t.Errorf("got %d targets, want 3", len(targets))
	}
}

func TestCachePickZero(t *testing.T) {
	c := NewCache(3)
	if got := c.PickFeedbackTargets(0, false); got != nil {
		t.Errorf("k=0 targets = %v, want nil", got)
	}
}

func TestCachePickAscendingForNegativePolicy(t *testing.T) {
	c := NewCache(3)
	c.ObserveThreshold(0, 5)
	c.ObserveThreshold(1, 50)
	c.ObserveThreshold(2, 0.5)
	targets := c.PickFeedbackTargets(2, true)
	if targets[0] != 2 || targets[1] != 0 {
		t.Errorf("ascending targets = %v, want [2 0]", targets)
	}
}

func TestCacheKnownThreshold(t *testing.T) {
	c := NewCache(2)
	if _, heard := c.KnownThreshold(0); heard {
		t.Error("unheard source reported as heard")
	}
	c.ObserveThreshold(0, 7)
	th, heard := c.KnownThreshold(0)
	if !heard || th != 7 {
		t.Errorf("KnownThreshold = (%v, %v), want (7, true)", th, heard)
	}
	if _, heard := c.KnownThreshold(99); heard {
		t.Error("out-of-range source reported as heard")
	}
	c.ObserveThreshold(99, 1) // must not panic
}

func TestThresholdConvergenceScenario(t *testing.T) {
	// Integration-style check of the control loop: a source sending one
	// refresh per feedback round should oscillate around equilibrium
	// rather than drifting monotonically.
	s := newTestSource(PositiveFeedback)
	s.SetThreshold(1)
	min, max := 1.0, 1.0
	for round := 0; round < 1000; round++ {
		now := float64(round)
		// ~9 refreshes per feedback: growth 1.1^9 ≈ 2.36 < ω = 10 so
		// feedback dominates slightly; threshold stays bounded.
		for i := 0; i < 9; i++ {
			s.OnRefreshSent(now)
		}
		s.OnFeedback(now)
		th := s.Threshold()
		if th < min {
			min = th
		}
		if th > max {
			max = th
		}
	}
	if s.Threshold() < minThreshold || s.Threshold() > 1 {
		t.Errorf("threshold drifted to %v; want bounded oscillation below 1", s.Threshold())
	}
}
