// Package core implements the paper's primary contribution: the cooperative
// best-effort synchronization protocol of Olston & Widom (SIGMOD 2002),
// Section 5. Each source keeps a local refresh threshold that it grows
// multiplicatively on every refresh it sends and shrinks multiplicatively on
// positive feedback from the cache; the cache spends surplus cache-side
// bandwidth on feedback messages targeted at the sources with the highest
// piggybacked thresholds.
//
// The types here are pure protocol logic, independent of any clock or
// transport: the discrete-event simulator (internal/engine) and the live
// goroutine runtime (internal/runtime) both drive them.
//
// docs/algorithm-specifications.md §4 gives the formal specification of the
// threshold algorithm with its symbols and defaults.
package core

import "fmt"

// Params are the tuning knobs of the threshold-setting algorithm.
type Params struct {
	// Alpha is the multiplicative threshold increase applied on every
	// refresh a source sends (Section 5's α). The paper's experiments
	// found α = 1.1 best.
	Alpha float64

	// Omega is the multiplicative threshold decrease applied when a source
	// receives positive feedback (Section 5's ω). The paper found ω = 10
	// best; ω ≫ α because increases (one per refresh) vastly outnumber
	// decreases (one per feedback message).
	Omega float64

	// InitialThreshold seeds each source's local threshold. The algorithm
	// is adaptive, so any positive value works after a warm-up period.
	InitialThreshold float64

	// ExpectedFeedbackPeriod is P_feedback, the rough expectation of how
	// often a source hears feedback: the number of sources divided by the
	// average cache-side bandwidth. It only needs to be a rough estimate
	// (Section 5).
	ExpectedFeedbackPeriod float64

	// DisableBeta turns off the β flood accelerator (β =
	// t_feedback/P_feedback when feedback is overdue), for the A2
	// ablation. With β disabled a source recovering from network flooding
	// raises its threshold only by α per refresh.
	DisableBeta bool
}

// DefaultAlpha and DefaultOmega are the best settings found in Section 6.1.
const (
	DefaultAlpha = 1.1
	DefaultOmega = 10.0
)

// DefaultParams returns the paper's recommended parameters for a deployment
// of m sources sharing a cache with mean cache-side bandwidth meanCacheBW
// (messages/second).
func DefaultParams(sources int, meanCacheBW float64) Params {
	p := Params{
		Alpha:            DefaultAlpha,
		Omega:            DefaultOmega,
		InitialThreshold: 1,
	}
	if meanCacheBW > 0 {
		p.ExpectedFeedbackPeriod = float64(sources) / meanCacheBW
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Alpha <= 1 {
		return fmt.Errorf("core: Alpha must be > 1, got %v", p.Alpha)
	}
	if p.Omega <= 1 {
		return fmt.Errorf("core: Omega must be > 1, got %v", p.Omega)
	}
	if p.InitialThreshold <= 0 {
		return fmt.Errorf("core: InitialThreshold must be > 0, got %v", p.InitialThreshold)
	}
	if p.ExpectedFeedbackPeriod < 0 {
		return fmt.Errorf("core: ExpectedFeedbackPeriod must be ≥ 0, got %v",
			p.ExpectedFeedbackPeriod)
	}
	return nil
}

// FeedbackPolicy selects how the cache regulates source thresholds.
type FeedbackPolicy int

const (
	// PositiveFeedback is the paper's algorithm: sources drift toward
	// fewer refreshes by default; the cache spends surplus bandwidth
	// telling the highest-threshold sources to speed up.
	PositiveFeedback FeedbackPolicy = iota

	// NegativeFeedback is the strawman the paper rejects (Section 5):
	// sources drift toward more refreshes by default and the cache must
	// tell them to slow down when overloaded — exactly when its bandwidth
	// is exhausted, so the slow-down messages starve and flooding
	// persists. Implemented for the A1 ablation.
	NegativeFeedback

	// NoFeedback freezes thresholds entirely (static thresholds), as a
	// second ablation reference.
	NoFeedback
)

// String names the policy.
func (f FeedbackPolicy) String() string {
	switch f {
	case PositiveFeedback:
		return "positive"
	case NegativeFeedback:
		return "negative"
	case NoFeedback:
		return "none"
	default:
		return fmt.Sprintf("FeedbackPolicy(%d)", int(f))
	}
}
