package core

import (
	"math"
	"sort"
)

// Cache is the cache-side half of the protocol. It tracks the most recent
// threshold each source piggybacked on a refresh message and selects
// feedback targets: "If it is not possible to provide feedback to every
// source, the sources with the highest local thresholds are selected"
// (Section 5).
type Cache struct {
	thresholds []float64 // last piggybacked threshold per source
	heard      []bool    // whether any refresh has arrived from the source
	order      []int     // scratch buffer for target selection
	feedbacks  int
}

// NewCache constructs the cache engine for m sources.
func NewCache(sources int) *Cache {
	c := &Cache{
		thresholds: make([]float64, sources),
		heard:      make([]bool, sources),
	}
	for i := range c.thresholds {
		c.thresholds[i] = math.Inf(1) // unheard sources sort first
	}
	return c
}

// ObserveThreshold records the threshold piggybacked on a refresh from src.
func (c *Cache) ObserveThreshold(src int, threshold float64) {
	if src < 0 || src >= len(c.thresholds) {
		return
	}
	c.thresholds[src] = threshold
	c.heard[src] = true
}

// KnownThreshold returns the last observed threshold for src and whether any
// refresh has been heard from it.
func (c *Cache) KnownThreshold(src int) (float64, bool) {
	if src < 0 || src >= len(c.thresholds) {
		return 0, false
	}
	return c.thresholds[src], c.heard[src]
}

// Feedbacks returns the number of feedback targets handed out.
func (c *Cache) Feedbacks() int { return c.feedbacks }

// PickFeedbackTargets returns up to k distinct sources ordered by descending
// known threshold. Sources never heard from rank first (their piggybacked
// threshold is unknown and may be arbitrarily high — reaching them quickly
// shortens warm-up). For the negative-feedback ablation, ascending order is
// selected instead (the cache slows down the most aggressive senders, i.e.
// lowest thresholds).
func (c *Cache) PickFeedbackTargets(k int, ascending bool) []int {
	m := len(c.thresholds)
	if k > m {
		k = m
	}
	if k <= 0 {
		return nil
	}
	if cap(c.order) < m {
		c.order = make([]int, m)
	}
	order := c.order[:m]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := c.thresholds[order[a]], c.thresholds[order[b]]
		if ta != tb {
			if ascending {
				return ta < tb
			}
			return ta > tb
		}
		return order[a] < order[b]
	})
	c.feedbacks += k
	return order[:k]
}
