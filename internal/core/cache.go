package core

import (
	"math"
	"sort"
)

// Cache is the cache-side half of the protocol. It tracks the most recent
// threshold each source piggybacked on a refresh message and selects
// feedback targets: "If it is not possible to provide feedback to every
// source, the sources with the highest local thresholds are selected"
// (Section 5).
type Cache struct {
	thresholds []float64 // last piggybacked threshold per source
	heard      []bool    // whether any refresh has arrived from the source
	greets     []int     // warm-up feedbacks sent while still unheard
	order      []int     // scratch buffer for target selection
	feedbacks  int
}

// warmupGreetLimit bounds the feedback messages an unheard source may
// receive at warm-up priority. An unheard source outranks every heard one
// (its threshold is unknown and possibly stuck above all its priorities),
// but a source that stays silent through this many feedbacks has nothing to
// say — in a cooperative mesh, a lateral peer whose entire object set is
// split-horizon-suppressed toward this cache never sends, and without the
// bound such peers camp at warm-up priority forever and absorb the whole
// per-tick feedback budget, starving the sources that are actually pushing
// (their thresholds then grow unchecked). Once the source is finally heard
// it competes by real threshold like everyone else.
const warmupGreetLimit = 8

// NewCache constructs the cache engine for m sources.
func NewCache(sources int) *Cache {
	c := &Cache{
		thresholds: make([]float64, sources),
		heard:      make([]bool, sources),
		greets:     make([]int, sources),
	}
	for i := range c.thresholds {
		c.thresholds[i] = math.Inf(1) // unheard sources sort first
	}
	return c
}

// ObserveThreshold records the threshold piggybacked on a refresh from src.
func (c *Cache) ObserveThreshold(src int, threshold float64) {
	if src < 0 || src >= len(c.thresholds) {
		return
	}
	c.thresholds[src] = threshold
	c.heard[src] = true
}

// KnownThreshold returns the last observed threshold for src and whether any
// refresh has been heard from it.
func (c *Cache) KnownThreshold(src int) (float64, bool) {
	if src < 0 || src >= len(c.thresholds) {
		return 0, false
	}
	return c.thresholds[src], c.heard[src]
}

// Greets returns how many warm-up feedbacks were sent to src while it was
// unheard (used to preserve the give-up state across tracker re-sizes).
func (c *Cache) Greets(src int) int {
	if src < 0 || src >= len(c.greets) {
		return 0
	}
	return c.greets[src]
}

// SetGreets restores a warm-up greeting count (tracker re-size transfer).
func (c *Cache) SetGreets(src, n int) {
	if src < 0 || src >= len(c.greets) {
		return
	}
	c.greets[src] = n
}

// Feedbacks returns the number of feedback targets handed out.
func (c *Cache) Feedbacks() int { return c.feedbacks }

// givenUp reports whether src exhausted its warm-up greetings without ever
// sending a refresh. Such sources are dropped from feedback targeting until
// they are heard from.
func (c *Cache) givenUp(src int) bool {
	return !c.heard[src] && c.greets[src] >= warmupGreetLimit
}

// PickFeedbackTargets returns up to k distinct sources ordered by descending
// known threshold. Sources never heard from rank first (their piggybacked
// threshold is unknown and may be arbitrarily high — reaching them quickly
// shortens warm-up) but only for warmupGreetLimit feedbacks; a source still
// silent after that is excluded until heard from, so permanently quiet links
// cannot starve the active sources. For the negative-feedback ablation,
// ascending order is selected instead (the cache slows down the most
// aggressive senders, i.e. lowest thresholds).
func (c *Cache) PickFeedbackTargets(k int, ascending bool) []int {
	m := len(c.thresholds)
	if k > m {
		k = m
	}
	if k <= 0 {
		return nil
	}
	if cap(c.order) < m {
		c.order = make([]int, m)
	}
	order := c.order[:0]
	for i := 0; i < m; i++ {
		if !c.givenUp(i) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := c.thresholds[order[a]], c.thresholds[order[b]]
		if ta != tb {
			if ascending {
				return ta < tb
			}
			return ta > tb
		}
		return order[a] < order[b]
	})
	if k > len(order) {
		k = len(order)
	}
	targets := order[:k]
	for _, i := range targets {
		if !c.heard[i] {
			c.greets[i]++
		}
	}
	c.feedbacks += k
	return targets
}
