package core

import (
	"bestsync/internal/priority"
)

// Source is the source-side half of the protocol (Section 5). It owns a
// priority queue of locally modified objects and a local refresh threshold
// T_j, and decides which objects to refresh whenever source-side bandwidth
// is available: "it refreshes the object with the highest refresh priority
// if that priority is above the local refresh threshold".
type Source struct {
	ID     int
	Queue  *priority.Queue
	params Params
	policy FeedbackPolicy

	threshold    float64
	lastFeedback float64
	limited      bool // sending at full source-side capacity
	refreshes    int
	feedbacks    int
}

// NewSource constructs a source engine. The caller upserts modified objects
// into Queue (keyed by object id, valued by weighted refresh priority) as
// updates occur.
func NewSource(id int, params Params, policy FeedbackPolicy) *Source {
	return &Source{
		ID:        id,
		Queue:     priority.NewQueue(0),
		params:    params,
		policy:    policy,
		threshold: params.InitialThreshold,
	}
}

// Threshold returns the current local refresh threshold T_j.
func (s *Source) Threshold() float64 { return s.threshold }

// SetThreshold overrides T_j (used by tests and by competitive-mode resets).
func (s *Source) SetThreshold(t float64) { s.threshold = t }

// Refreshes returns the number of refreshes this source has sent.
func (s *Source) Refreshes() int { return s.refreshes }

// Feedbacks returns the number of feedback messages this source received.
func (s *Source) Feedbacks() int { return s.feedbacks }

// SetLimited records whether the source is currently sending at the full
// capacity of its source-side bandwidth; a limited source ignores positive
// feedback (Section 5 footnote: this avoids queue blow-ups when source
// bandwidth frees up suddenly).
func (s *Source) SetLimited(v bool) { s.limited = v }

// Limited reports the last value passed to SetLimited.
func (s *Source) Limited() bool { return s.limited }

// Beta returns the threshold-increase accelerator β (Section 5): 1 while
// feedback is arriving on schedule, t_feedback/P_feedback once feedback is
// overdue — a sign the network may be flooding.
func (s *Source) Beta(now float64) float64 {
	if s.params.DisableBeta || s.params.ExpectedFeedbackPeriod <= 0 {
		return 1
	}
	elapsed := now - s.lastFeedback
	if elapsed <= s.params.ExpectedFeedbackPeriod {
		return 1
	}
	return elapsed / s.params.ExpectedFeedbackPeriod
}

// ShouldSend reports whether the highest-priority modified object clears the
// local threshold, returning its id and priority.
func (s *Source) ShouldSend() (obj int, pri float64, ok bool) {
	obj, pri, ok = s.Queue.Max()
	if !ok || pri <= 0 {
		return 0, 0, false
	}
	if pri < s.threshold {
		return obj, pri, false
	}
	return obj, pri, true
}

// OnRefreshSent applies the per-refresh threshold adjustment at time now.
// Under the paper's positive-feedback policy the threshold grows by α·β; the
// negative-feedback ablation instead shrinks it (sources drift toward more
// refreshes and rely on the cache to slow them down).
func (s *Source) OnRefreshSent(now float64) {
	s.refreshes++
	switch s.policy {
	case PositiveFeedback:
		s.threshold *= s.params.Alpha * s.Beta(now)
	case NegativeFeedback:
		s.threshold /= s.params.Alpha
		if s.threshold < minThreshold {
			s.threshold = minThreshold
		}
	case NoFeedback:
		// static threshold
	}
}

// minThreshold keeps thresholds in a numerically sane range; the adaptive
// multiplicative updates otherwise drive them to 0 or +Inf during long
// surplus or famine stretches.
const minThreshold = 1e-12

// maxThreshold mirrors minThreshold on the high side.
const maxThreshold = 1e18

// OnFeedback applies a feedback message received at time now. For the
// positive policy this is a speed-up request (T_j /= ω unless the source is
// bandwidth-limited); for the negative policy it is a slow-down request
// (T_j *= ω). Receipt of any feedback resets the β timer.
func (s *Source) OnFeedback(now float64) {
	s.feedbacks++
	s.lastFeedback = now
	switch s.policy {
	case PositiveFeedback:
		if !s.limited {
			s.threshold /= s.params.Omega
			if s.threshold < minThreshold {
				s.threshold = minThreshold
			}
		}
	case NegativeFeedback:
		s.threshold *= s.params.Omega
		if s.threshold > maxThreshold {
			s.threshold = maxThreshold
		}
	case NoFeedback:
	}
}

// ClampThreshold bounds the threshold into [minThreshold, maxThreshold];
// engines call it once per tick so runaway growth (e.g. β during a long
// outage) stays finite.
func (s *Source) ClampThreshold() {
	if s.threshold < minThreshold {
		s.threshold = minThreshold
	}
	if s.threshold > maxThreshold {
		s.threshold = maxThreshold
	}
}
