// Package destspec parses destination-list flags shared by the daemons:
// sourceagent -caches and cachesyncd -children both take a comma-separated
// list of "host:port[=weight]" entries, where the optional weight is the
// destination's Section 7 share weight (omitted = default, equal shares
// when all are defaulted).
package destspec

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse splits a destination spec ("host:port[=weight],...") into addresses
// and share weights (0 = default). Empty entries are skipped; an entirely
// empty spec, or a weight that does not parse to a positive number, is an
// error.
func Parse(spec string) (addrs []string, weights []float64, err error) {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, w := part, 0.0
		if i := strings.LastIndex(part, "="); i >= 0 {
			addr = part[:i]
			w, err = strconv.ParseFloat(part[i+1:], 64)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("bad destination weight in %q (want host:port=weight with weight > 0)", part)
			}
		}
		addrs = append(addrs, addr)
		weights = append(weights, w)
	}
	if len(addrs) == 0 {
		return nil, nil, fmt.Errorf("destination spec lists no destinations")
	}
	return addrs, weights, nil
}
