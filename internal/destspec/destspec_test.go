package destspec

import (
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		addrs   []string
		weights []float64
		wantErr bool
	}{
		{in: "a:1", addrs: []string{"a:1"}, weights: []float64{0}},
		{
			in:      "a:1,b:2=3, c:3=0.5 ,",
			addrs:   []string{"a:1", "b:2", "c:3"},
			weights: []float64{0, 3, 0.5},
		},
		{in: "", wantErr: true},
		{in: "a:1=zero", wantErr: true},
		{in: "a:1=-2", wantErr: true},
		{in: "a:1=0", wantErr: true},
	}
	for _, tc := range cases {
		addrs, weights, err := Parse(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %v %v", tc.in, addrs, weights)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(addrs, tc.addrs) || !reflect.DeepEqual(weights, tc.weights) {
			t.Errorf("Parse(%q) = %v %v, want %v %v",
				tc.in, addrs, weights, tc.addrs, tc.weights)
		}
	}
}
