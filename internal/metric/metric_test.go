package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Staleness:      "staleness",
		Lag:            "lag",
		ValueDeviation: "value deviation",
		Kind(99):       "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindsComplete(t *testing.T) {
	ks := Kinds()
	if len(ks) != 3 {
		t.Fatalf("Kinds() returned %d metrics, want 3", len(ks))
	}
	seen := map[Kind]bool{}
	for _, k := range ks {
		seen[k] = true
	}
	for _, k := range []Kind{Staleness, Lag, ValueDeviation} {
		if !seen[k] {
			t.Errorf("Kinds() missing %v", k)
		}
	}
}

func TestAbsDelta(t *testing.T) {
	if got := AbsDelta(3, 5); got != 2 {
		t.Errorf("AbsDelta(3,5) = %v, want 2", got)
	}
	if got := AbsDelta(5, 3); got != 2 {
		t.Errorf("AbsDelta(5,3) = %v, want 2", got)
	}
	if got := AbsDelta(4, 4); got != 0 {
		t.Errorf("AbsDelta(4,4) = %v, want 0", got)
	}
}

func TestDivergenceStaleness(t *testing.T) {
	if d := Divergence(Staleness, nil, 0, 1, 1); d != 0 {
		t.Errorf("staleness with 0 updates behind = %v, want 0", d)
	}
	if d := Divergence(Staleness, nil, 1, 1, 2); d != 1 {
		t.Errorf("staleness with 1 update behind = %v, want 1", d)
	}
	if d := Divergence(Staleness, nil, 17, 1, 2); d != 1 {
		t.Errorf("staleness with 17 updates behind = %v, want 1", d)
	}
}

func TestDivergenceLag(t *testing.T) {
	for _, u := range []int{0, 1, 5, 100} {
		if d := Divergence(Lag, nil, u, 0, 0); d != float64(u) {
			t.Errorf("lag with %d updates behind = %v, want %d", u, d, u)
		}
	}
}

func TestDivergenceValueDeviation(t *testing.T) {
	if d := Divergence(ValueDeviation, nil, 3, 10, 7); d != 3 {
		t.Errorf("value deviation with nil delta = %v, want 3 (AbsDelta default)", d)
	}
	sq := func(a, b float64) float64 { return (a - b) * (a - b) }
	if d := Divergence(ValueDeviation, sq, 1, 5, 2); d != 9 {
		t.Errorf("value deviation with squared delta = %v, want 9", d)
	}
}

func TestDivergenceUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Divergence with unknown kind did not panic")
		}
	}()
	Divergence(Kind(42), nil, 0, 0, 0)
}

func TestTrackerZeroValue(t *testing.T) {
	var tr Tracker
	if tr.Current() != 0 || tr.Integral(10) != 0 || tr.Priority(10) != 0 {
		t.Errorf("zero tracker not fully synchronized: d=%v I=%v P=%v",
			tr.Current(), tr.Integral(10), tr.Priority(10))
	}
}

func TestTrackerIntegralPiecewise(t *testing.T) {
	var tr Tracker
	tr.Reset(0, 0)
	tr.Update(2, 1) // D=1 from t=2
	tr.Update(5, 3) // D=3 from t=5
	// ∫ over [0,8] = 0*2 + 1*3 + 3*3 = 12
	if got := tr.Integral(8); got != 12 {
		t.Errorf("Integral(8) = %v, want 12", got)
	}
	// Priority at t=8: (8-0)*3 − 12 = 12.
	if got := tr.Priority(8); got != 12 {
		t.Errorf("Priority(8) = %v, want 12", got)
	}
}

func TestTrackerResetClearsState(t *testing.T) {
	var tr Tracker
	tr.Update(1, 5)
	tr.Update(2, 7)
	tr.Reset(3, 0)
	if tr.Current() != 0 || tr.UpdatesBehind() != 0 {
		t.Errorf("after reset: d=%v updates=%d, want 0,0", tr.Current(), tr.UpdatesBehind())
	}
	if got := tr.Integral(10); got != 0 {
		t.Errorf("Integral after reset = %v, want 0", got)
	}
	if tr.LastReset() != 3 {
		t.Errorf("LastReset = %v, want 3", tr.LastReset())
	}
}

func TestTrackerResetWithResidualDivergence(t *testing.T) {
	// A delayed refresh message can deliver an already-stale value.
	var tr Tracker
	tr.Reset(10, 2.5)
	if tr.Current() != 2.5 {
		t.Errorf("residual divergence = %v, want 2.5", tr.Current())
	}
	if got := tr.Integral(14); got != 10 {
		t.Errorf("Integral(14) = %v, want 10", got)
	}
	// Priority: (14−10)*2.5 − 10 = 0 — constant divergence earns no area
	// above the curve.
	if got := tr.Priority(14); got != 0 {
		t.Errorf("Priority(14) = %v, want 0", got)
	}
}

func TestTrackerPriorityConstantBetweenUpdates(t *testing.T) {
	// Section 8.2: priority changes only when divergence changes.
	var tr Tracker
	tr.Reset(0, 0)
	tr.Update(4, 2)
	p5 := tr.Priority(5)
	p9 := tr.Priority(9)
	if math.Abs(p5-p9) > 1e-12 {
		t.Errorf("priority changed between updates: P(5)=%v P(9)=%v", p5, p9)
	}
	// And it equals D·(t_update − t_last) − ∫ up to the update = 2*4 − 0 = 8.
	if math.Abs(p5-8) > 1e-12 {
		t.Errorf("P(5) = %v, want 8", p5)
	}
}

func TestTrackerLateRiserBeatsEarlyRiser(t *testing.T) {
	// Figure 3: object O1 diverged slowly then jumped recently; O2 jumped
	// immediately after its refresh. Same current divergence ⇒ O1 has the
	// higher priority.
	var o1, o2 Tracker
	o1.Reset(0, 0)
	o2.Reset(0, 0)
	o1.Update(9, 5) // flat until t=9, then jumps to 5
	o2.Update(1, 5) // jumps to 5 right away
	p1 := o1.Priority(10)
	p2 := o2.Priority(10)
	if p1 <= p2 {
		t.Errorf("late riser priority %v should exceed early riser %v", p1, p2)
	}
}

func TestTrackerTimeBackwardsPanics(t *testing.T) {
	var tr Tracker
	tr.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set with decreasing time did not panic")
		}
	}()
	tr.Set(4, 2)
}

func TestTrackerUpdatesBehindCounts(t *testing.T) {
	var tr Tracker
	tr.Reset(0, 0)
	for i := 1; i <= 5; i++ {
		tr.Update(float64(i), float64(i))
	}
	if tr.UpdatesBehind() != 5 {
		t.Errorf("UpdatesBehind = %d, want 5", tr.UpdatesBehind())
	}
}

// TestTrackerIntegralMatchesBruteForce cross-checks the analytic integral
// against a fine-grained numeric accumulation over random update sequences.
func TestTrackerIntegralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var tr Tracker
		tr.Reset(0, 0)
		type ev struct{ t, d float64 }
		events := []ev{}
		tcur := 0.0
		for i := 0; i < 20; i++ {
			tcur += rng.Float64() * 3
			d := rng.Float64() * 10
			events = append(events, ev{tcur, d})
			tr.Update(tcur, d)
		}
		end := tcur + rng.Float64()*5
		// Brute force: D is piecewise constant.
		want := 0.0
		for i, e := range events {
			next := end
			if i+1 < len(events) {
				next = events[i+1].t
			}
			want += e.d * (next - e.t)
		}
		got := tr.Integral(end)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Integral = %v, want %v", trial, got, want)
		}
	}
}

// Property: priority is always ≥ 0 for non-decreasing divergence sequences
// (divergence that only grows always leaves nonnegative area above the
// curve), and the integral is always ≥ 0.
func TestTrackerPriorityNonNegativeForMonotoneDivergence(t *testing.T) {
	f := func(steps []uint8, gaps []uint8) bool {
		var tr Tracker
		tr.Reset(0, 0)
		tcur, d := 0.0, 0.0
		n := len(steps)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			tcur += float64(gaps[i])/16 + 0.01
			d += float64(steps[i]) / 8
			tr.Update(tcur, d)
		}
		end := tcur + 1
		return tr.Priority(end) >= -1e-9 && tr.Integral(end) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: priority is monotone non-decreasing in time across update events
// when divergence is non-decreasing (Section 4.1).
func TestTrackerPriorityMonotoneAcrossUpdates(t *testing.T) {
	f := func(steps []uint8, gaps []uint8) bool {
		var tr Tracker
		tr.Reset(0, 0)
		tcur, d, prev := 0.0, 0.0, 0.0
		n := len(steps)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			tcur += float64(gaps[i])/16 + 0.01
			d += float64(steps[i]) / 8
			tr.Update(tcur, d)
			p := tr.Priority(tcur)
			if p < prev-1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrackerUpdate(b *testing.B) {
	var tr Tracker
	tr.Reset(0, 0)
	for i := 0; i < b.N; i++ {
		tr.Update(float64(i), float64(i%7))
	}
}
