package metric_test

import (
	"fmt"

	"bestsync/internal/metric"
)

// ExampleTracker shows the core bookkeeping behind the paper's refresh
// priority: the tracker maintains divergence and its exact integral, and
// Priority returns the area above the divergence curve since the last
// refresh.
func ExampleTracker() {
	var tr metric.Tracker
	tr.Reset(0, 0)  // refreshed at t=0
	tr.Update(6, 2) // first update at t=6 leaves divergence 2

	fmt.Printf("divergence:  %.0f\n", tr.Current())
	fmt.Printf("integral:    %.0f\n", tr.Integral(10))
	fmt.Printf("priority:    %.0f\n", tr.Priority(10))
	// The object stayed synchronized for 6 of 10 seconds, so a refresh now
	// is expected to buy another long quiet stretch — priority is high.

	// Output:
	// divergence:  2
	// integral:    8
	// priority:    12
}

// ExampleDivergence evaluates the three Section 3.1 metrics on the same
// state: an object three updates ahead of its cached copy, value 7 vs 4.
func ExampleDivergence() {
	fmt.Printf("staleness: %.0f\n", metric.Divergence(metric.Staleness, nil, 3, 7, 4))
	fmt.Printf("lag:       %.0f\n", metric.Divergence(metric.Lag, nil, 3, 7, 4))
	fmt.Printf("deviation: %.0f\n", metric.Divergence(metric.ValueDeviation, nil, 3, 7, 4))
	// Output:
	// staleness: 1
	// lag:       3
	// deviation: 3
}
