// Package metric implements the divergence metrics of Olston & Widom
// (SIGMOD 2002), Section 3.1: staleness, lag, and value deviation, together
// with per-object trackers that maintain the exact running integral of
// divergence since the last refresh.
//
// Divergence is piecewise constant between updates and refreshes (the value
// of a source object is constant between updates, and the cached copy is
// constant between refreshes), so the integral ∫D(t)dt can be maintained
// exactly with O(1) work per event. This is the basis both for exact
// measurement of time-averaged divergence and for the area-above-the-curve
// refresh priority of Section 3.3.
//
// docs/algorithm-specifications.md §2 gives the formal definitions.
package metric

import (
	"fmt"
	"math"
)

// Kind identifies one of the paper's divergence metrics.
type Kind int

const (
	// Staleness is the Boolean metric D_s: 0 if the cached copy equals the
	// source copy, 1 otherwise (Section 3.1, metric 1).
	Staleness Kind = iota
	// Lag is the number of updates the cached copy is behind the source
	// copy (Section 3.1, metric 2).
	Lag
	// ValueDeviation is Δ(V(O,t), V(C(O),t)) for a caller-supplied
	// nonnegative difference function Δ (Section 3.1, metric 3).
	ValueDeviation
)

// String returns the metric name as used in the paper.
func (k Kind) String() string {
	switch k {
	case Staleness:
		return "staleness"
	case Lag:
		return "lag"
	case ValueDeviation:
		return "value deviation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all supported metrics, in the order the paper introduces them.
func Kinds() []Kind { return []Kind{Staleness, Lag, ValueDeviation} }

// DeltaFunc quantifies the difference between two versions of an object for
// the value-deviation metric. It must be nonnegative and should be zero when
// the versions are equal.
type DeltaFunc func(v1, v2 float64) float64

// AbsDelta is the simple value-deviation function Δ(V1,V2) = |V1 − V2| the
// paper recommends for single numerical values such as stock quotes.
func AbsDelta(v1, v2 float64) float64 { return math.Abs(v1 - v2) }

// Divergence computes the divergence value for metric k given the number of
// source updates the reference copy is behind and the two values. delta may
// be nil for Staleness and Lag.
func Divergence(k Kind, delta DeltaFunc, updatesBehind int, srcVal, cachedVal float64) float64 {
	switch k {
	case Staleness:
		if updatesBehind > 0 {
			return 1
		}
		return 0
	case Lag:
		return float64(updatesBehind)
	case ValueDeviation:
		if delta == nil {
			delta = AbsDelta
		}
		return delta(srcVal, cachedVal)
	default:
		panic(fmt.Sprintf("metric: unknown kind %d", int(k)))
	}
}

// Tracker maintains the divergence of a single object relative to some
// reference copy (the cache's copy, or the value a source last sent), plus
// the exact integral of divergence since the last reset. The divergence is
// treated as piecewise constant: it changes only through Set and Reset.
//
// The zero Tracker is ready to use and represents a fully synchronized
// object at time 0.
type Tracker struct {
	d        float64 // current divergence
	integral float64 // ∫ D dt over [resetAt, lastT]
	lastT    float64 // time of the most recent Set/Reset
	resetAt  float64 // time of the last refresh (t_last in the paper)
	updates  int     // source updates since the last reset
}

// Reset records a refresh at time now that leaves residual divergence d
// (zero for a refresh that delivers the current source value; nonzero when a
// delayed message delivers an already-stale value). The divergence integral
// restarts from zero.
func (tr *Tracker) Reset(now, d float64) {
	tr.d = d
	tr.integral = 0
	tr.lastT = now
	tr.resetAt = now
	tr.updates = 0
}

// Set advances the integral to time now and records a new current divergence
// d, typically in response to a source update. now must be ≥ the time of the
// previous Set/Reset.
func (tr *Tracker) Set(now, d float64) {
	tr.advance(now)
	tr.d = d
}

// Update is Set plus an increment of the updates-behind counter.
func (tr *Tracker) Update(now, d float64) {
	tr.Set(now, d)
	tr.updates++
}

func (tr *Tracker) advance(now float64) {
	if now < tr.lastT {
		panic(fmt.Sprintf("metric: time went backwards: %v < %v", now, tr.lastT))
	}
	tr.integral += tr.d * (now - tr.lastT)
	tr.lastT = now
}

// Current returns the current divergence value.
func (tr *Tracker) Current() float64 { return tr.d }

// UpdatesBehind returns the number of updates recorded since the last reset.
func (tr *Tracker) UpdatesBehind() int { return tr.updates }

// LastReset returns the time of the last refresh (t_last).
func (tr *Tracker) LastReset() float64 { return tr.resetAt }

// Integral returns ∫ D(τ) dτ over [t_last, now].
func (tr *Tracker) Integral(now float64) float64 {
	return tr.integral + tr.d*(now-tr.lastT)
}

// Priority returns the unweighted refresh priority of Section 3.3,
//
//	P(O, now) = (now − t_last)·D(O, now) − ∫_{t_last}^{now} D(O,τ) dτ,
//
// the area above the divergence curve since the last refresh. It changes
// only when divergence changes (Section 8.2), so callers may cache it
// between updates.
func (tr *Tracker) Priority(now float64) float64 {
	return (now-tr.resetAt)*tr.d - tr.Integral(now)
}
