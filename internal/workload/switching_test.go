package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestSwitchingPoissonEmpiricalRates(t *testing.T) {
	p := &SwitchingPoisson{Low: 0.1, High: 2, Period: 200}
	rng := rand.New(rand.NewSource(1))
	lowCount, highCount := 0, 0
	tcur := 0.0
	const horizon = 200000.0
	for {
		tcur = p.NextAfter(tcur, rng)
		if tcur > horizon {
			break
		}
		if math.Mod(tcur, 200) < 100 {
			lowCount++
		} else {
			highCount++
		}
	}
	lowRate := float64(lowCount) / (horizon / 2)
	highRate := float64(highCount) / (horizon / 2)
	if math.Abs(lowRate-0.1) > 0.02 {
		t.Errorf("low-phase rate = %v, want ≈0.1", lowRate)
	}
	if math.Abs(highRate-2) > 0.1 {
		t.Errorf("high-phase rate = %v, want ≈2", highRate)
	}
}

func TestSwitchingPoissonDegenerate(t *testing.T) {
	p := &SwitchingPoisson{Low: 0, High: 0, Period: 10}
	if next := p.NextAfter(0, rand.New(rand.NewSource(1))); !math.IsInf(next, 1) {
		t.Errorf("zero-rate NextAfter = %v, want +Inf", next)
	}
	q := &SwitchingPoisson{Low: 1, High: 2} // zero period → Low everywhere
	if got := q.RateAt(123); got != 1 {
		t.Errorf("zero-period RateAt = %v, want Low", got)
	}
}

func TestSwitchingPoissonNegativePhase(t *testing.T) {
	p := &SwitchingPoisson{Low: 1, High: 2, Period: 10, Offset: -3}
	// Just exercise the wrap-around branch; any valid rate is fine.
	got := p.RateAt(0)
	if got != 1 && got != 2 {
		t.Errorf("RateAt with negative phase = %v", got)
	}
}

func TestSwitchingPoissonStrictlyIncreasing(t *testing.T) {
	p := &SwitchingPoisson{Low: 0.5, High: 5, Period: 20}
	rng := rand.New(rand.NewSource(2))
	tcur := 0.0
	for i := 0; i < 10000; i++ {
		next := p.NextAfter(tcur, rng)
		if next <= tcur {
			t.Fatalf("NextAfter(%v) = %v not increasing", tcur, next)
		}
		tcur = next
	}
}
