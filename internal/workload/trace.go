package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// Trace is a precomputed sequence of timestamped values for one object.
// Times must be strictly increasing. A trace-driven object updates exactly
// at these times, taking the corresponding values.
type Trace struct {
	Times  []float64
	Values []float64
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.Times) }

// Validate checks monotonicity and matching lengths.
func (tr *Trace) Validate() error {
	if len(tr.Times) != len(tr.Values) {
		return fmt.Errorf("workload: trace has %d times but %d values",
			len(tr.Times), len(tr.Values))
	}
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] <= tr.Times[i-1] {
			return fmt.Errorf("workload: trace times not increasing at index %d", i)
		}
	}
	return nil
}

// NextIndexAfter returns the index of the first sample strictly after t, or
// Len() if none.
func (tr *Trace) NextIndexAfter(t float64) int {
	return sort.SearchFloat64s(tr.Times, math.Nextafter(t, math.Inf(1)))
}

// WriteCSV emits "time,value" rows.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for i := range tr.Times {
		rec := []string{
			strconv.FormatFloat(tr.Times[i], 'g', -1, 64),
			strconv.FormatFloat(tr.Values[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV parses "time,value" rows as written by WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	tr := &Trace{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != 2 {
			return nil, fmt.Errorf("workload: trace row has %d fields, want 2", len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad time %q: %v", rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad value %q: %v", rec[1], err)
		}
		tr.Times = append(tr.Times, t)
		tr.Values = append(tr.Values, v)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// BuoyConfig parameterizes the synthetic wind-buoy traces that substitute
// for the PMEL data set of Section 6.2.1 (see DESIGN.md §4). Values follow a
// mean-reverting Ornstein–Uhlenbeck process around a diurnal sinusoid,
// sampled at a fixed cadence, clamped to [Min, Max].
type BuoyConfig struct {
	Days        float64 // total duration in days (paper: 7)
	SampleEvery float64 // seconds between measurements (paper: 600 = 10 min)
	Mean        float64 // long-run mean wind component (paper range 0–10, typical 5)
	Diurnal     float64 // amplitude of the daily cycle
	Reversion   float64 // OU mean-reversion rate θ (1/s)
	Volatility  float64 // OU volatility σ (per sqrt(s))
	Min, Max    float64 // physical clamp
}

// DefaultBuoyConfig matches the paper's setup: 7 days of 10-minute samples
// with values "generally in the range of 0–10, with typical values of
// around 5".
func DefaultBuoyConfig() BuoyConfig {
	return BuoyConfig{
		Days:        7,
		SampleEvery: 600,
		Mean:        5,
		Diurnal:     1.5,
		Reversion:   1.0 / 7200, // revert over ~2h
		Volatility:  0.02,
		Min:         0,
		Max:         10,
	}
}

// GenBuoyTrace produces one wind-component trace. phase offsets the diurnal
// cycle so that different buoys (at different longitudes) peak at different
// times.
func GenBuoyTrace(rng *rand.Rand, cfg BuoyConfig, phase float64) *Trace {
	const day = 86400.0
	n := int(cfg.Days * day / cfg.SampleEvery)
	tr := &Trace{
		Times:  make([]float64, n),
		Values: make([]float64, n),
	}
	dt := cfg.SampleEvery
	x := cfg.Mean + rng.NormFloat64()*1.0
	for i := 0; i < n; i++ {
		t := float64(i+1) * dt
		target := cfg.Mean + cfg.Diurnal*math.Sin(2*math.Pi*t/day+phase)
		// Exact OU transition over dt.
		decay := math.Exp(-cfg.Reversion * dt)
		std := cfg.Volatility * math.Sqrt((1-decay*decay)/(2*cfg.Reversion))
		x = target + (x-target)*decay + rng.NormFloat64()*std
		if x < cfg.Min {
			x = cfg.Min
		}
		if x > cfg.Max {
			x = cfg.Max
		}
		tr.Times[i] = t
		tr.Values[i] = x
	}
	return tr
}

// GenBuoyFleet generates per-buoy wind vectors: buoys × components traces
// (components = 2 in the paper: the two wind-vector components). The result
// is indexed [buoy*components + component].
func GenBuoyFleet(rng *rand.Rand, cfg BuoyConfig, buoys, components int) []*Trace {
	traces := make([]*Trace, 0, buoys*components)
	for b := 0; b < buoys; b++ {
		phase := rng.Float64() * 2 * math.Pi
		for c := 0; c < components; c++ {
			traces = append(traces, GenBuoyTrace(rng, cfg, phase+float64(c)*math.Pi/3))
		}
	}
	return traces
}
