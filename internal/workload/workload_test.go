package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonNextAfterIncreases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Poisson{Lambda: 2}
	tcur := 0.0
	for i := 0; i < 1000; i++ {
		next := p.NextAfter(tcur, rng)
		if next <= tcur {
			t.Fatalf("NextAfter(%v) = %v not strictly after", tcur, next)
		}
		tcur = next
	}
}

func TestPoissonRateMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Poisson{Lambda: 4}
	tcur := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		tcur = p.NextAfter(tcur, rng)
	}
	rate := n / tcur
	if math.Abs(rate-4) > 0.05 {
		t.Errorf("empirical rate = %v, want ≈4", rate)
	}
}

func TestPoissonZeroRateNeverUpdates(t *testing.T) {
	p := Poisson{Lambda: 0}
	if next := p.NextAfter(5, rand.New(rand.NewSource(1))); !math.IsInf(next, 1) {
		t.Errorf("λ=0 NextAfter = %v, want +Inf", next)
	}
}

func TestPeriodicNextAfter(t *testing.T) {
	p := Periodic{Interval: 1}
	cases := []struct{ t, want float64 }{
		{0, 1}, {0.5, 1}, {1, 2}, {1.0001, 2}, {7.9, 8},
	}
	for _, c := range cases {
		if got := p.NextAfter(c.t, nil); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NextAfter(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPeriodicWithOffset(t *testing.T) {
	p := Periodic{Interval: 10, Offset: 3}
	if got := p.NextAfter(0, nil); got != 3 {
		t.Errorf("NextAfter(0) = %v, want 3", got)
	}
	if got := p.NextAfter(3, nil); got != 13 {
		t.Errorf("NextAfter(3) = %v, want 13", got)
	}
}

func TestPeriodicZeroInterval(t *testing.T) {
	p := Periodic{}
	if got := p.NextAfter(1, nil); !math.IsInf(got, 1) {
		t.Errorf("zero interval NextAfter = %v, want +Inf", got)
	}
}

func TestNever(t *testing.T) {
	if got := (Never{}).NextAfter(0, nil); !math.IsInf(got, 1) {
		t.Errorf("Never.NextAfter = %v, want +Inf", got)
	}
}

func TestRandomWalkSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := RandomWalk{Start: 0, Step: 1}
	cur := w.Initial(rng)
	ups, downs := 0, 0
	for i := 0; i < 10000; i++ {
		next := w.Next(cur, 0, rng)
		diff := next - cur
		if diff == 1 {
			ups++
		} else if diff == -1 {
			downs++
		} else {
			t.Fatalf("step = %v, want ±1", diff)
		}
		cur = next
	}
	ratio := float64(ups) / float64(ups+downs)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("up fraction = %v, want ≈0.5", ratio)
	}
}

func TestRandomWalkDefaultStep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := RandomWalk{} // zero step defaults to 1
	next := w.Next(10, 0, rng)
	if math.Abs(next-10) != 1 {
		t.Errorf("default step moved by %v, want ±1", next-10)
	}
}

func TestUniformRatesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rates := UniformRates(rng, 1000, 0.1, 0.9)
	for _, r := range rates {
		if r < 0.1 || r >= 0.9 {
			t.Fatalf("rate %v out of [0.1, 0.9)", r)
		}
	}
	mean := 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	if math.Abs(mean-0.5) > 0.03 {
		t.Errorf("mean rate = %v, want ≈0.5", mean)
	}
}

func TestSkewedHalfCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := SkewedHalf(rng, 100, 1, 10)
	hi := 0
	for _, v := range vals {
		switch v {
		case 10:
			hi++
		case 1:
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if hi != 50 {
		t.Errorf("hi count = %d, want 50", hi)
	}
}

func TestSkewedHalfOdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := SkewedHalf(rng, 7, 0, 1)
	ones := 0
	for _, v := range vals {
		if v == 1 {
			ones++
		}
	}
	if ones != 3 {
		t.Errorf("hi count = %d, want 3 (n/2)", ones)
	}
}

func TestSkewedHalfIndependentSelections(t *testing.T) {
	// Two draws should not always pick the same half.
	rng := rand.New(rand.NewSource(8))
	a := SkewedHalf(rng, 100, 0, 1)
	b := SkewedHalf(rng, 100, 0, 1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == 100 {
		t.Error("two independent skew selections were identical")
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum/100-1) > 1e-9 {
		t.Errorf("mean weight = %v, want 1", sum/100)
	}
	if w[0] <= w[99] {
		t.Errorf("weights not decreasing: w[0]=%v w[99]=%v", w[0], w[99])
	}
}
