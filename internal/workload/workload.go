// Package workload generates the synthetic and quasi-real data used in the
// paper's evaluation (Section 6): random-walk values updated by Poisson
// processes with randomly assigned rates, skewed weight/rate populations
// (Section 4.3), and a synthetic stand-in for the Pacific Marine
// Environmental Laboratory wind-buoy data set (Section 6.2.1) — see
// DESIGN.md §4 for the substitution rationale.
package workload

import (
	"math"
	"math/rand"
)

// UpdateProcess generates the times at which an object's source value
// changes.
type UpdateProcess interface {
	// NextAfter returns the first update time strictly after t.
	NextAfter(t float64, rng *rand.Rand) float64
}

// Poisson updates follow a Poisson process with rate Lambda (expected
// updates per second). Lambda ≤ 0 means the object never changes.
type Poisson struct {
	Lambda float64
}

// NextAfter implements UpdateProcess via exponential inter-arrival times.
func (p Poisson) NextAfter(t float64, rng *rand.Rand) float64 {
	if p.Lambda <= 0 {
		return math.Inf(1)
	}
	return t + rng.ExpFloat64()/p.Lambda
}

// Periodic updates occur deterministically every Interval seconds starting
// at Offset; Section 4.3's skew experiment updates half the objects
// "consistently every second".
type Periodic struct {
	Interval float64
	Offset   float64
}

// NextAfter implements UpdateProcess.
func (p Periodic) NextAfter(t float64, _ *rand.Rand) float64 {
	if p.Interval <= 0 {
		return math.Inf(1)
	}
	k := math.Floor((t-p.Offset)/p.Interval) + 1
	next := p.Offset + k*p.Interval
	if next <= t {
		next += p.Interval
	}
	return next
}

// Never is an UpdateProcess for static objects.
type Never struct{}

// NextAfter implements UpdateProcess.
func (Never) NextAfter(float64, *rand.Rand) float64 { return math.Inf(1) }

// SwitchingPoisson is a non-stationary Poisson process whose rate alternates
// between Low and High every half Period, used to study how rate estimators
// cope with drift (Section 10.1's "longer history period" question).
type SwitchingPoisson struct {
	Low, High float64
	Period    float64
	Offset    float64
}

// RateAt returns the instantaneous rate at time t.
func (s *SwitchingPoisson) RateAt(t float64) float64 {
	if s.Period <= 0 {
		return s.Low
	}
	phase := math.Mod(t+s.Offset, s.Period)
	if phase < 0 {
		phase += s.Period
	}
	if phase < s.Period/2 {
		return s.Low
	}
	return s.High
}

// NextAfter implements UpdateProcess by thinning against the maximum rate.
func (s *SwitchingPoisson) NextAfter(t float64, rng *rand.Rand) float64 {
	peak := math.Max(s.Low, s.High)
	if peak <= 0 {
		return math.Inf(1)
	}
	for i := 0; i < 1e6; i++ {
		t += rng.ExpFloat64() / peak
		if rng.Float64() < s.RateAt(t)/peak {
			return t
		}
	}
	return math.Inf(1)
}

// ValueModel evolves an object's value at each update.
type ValueModel interface {
	// Initial returns the value at time 0.
	Initial(rng *rand.Rand) float64
	// Next returns the value after an update at time t.
	Next(cur float64, t float64, rng *rand.Rand) float64
}

// RandomWalk increments or decrements the value by Step with equal
// probability on each update — the paper's synthetic data model
// (Section 4.3).
type RandomWalk struct {
	Start float64
	Step  float64
}

// Initial implements ValueModel.
func (w RandomWalk) Initial(*rand.Rand) float64 { return w.Start }

// Next implements ValueModel.
func (w RandomWalk) Next(cur float64, _ float64, rng *rand.Rand) float64 {
	step := w.Step
	if step == 0 {
		step = 1
	}
	if rng.Intn(2) == 0 {
		return cur + step
	}
	return cur - step
}

// UniformRates assigns each of n objects an update rate drawn uniformly from
// [lo, hi), mirroring "randomly assigned λ values following a uniform
// distribution" (Section 4.3).
func UniformRates(rng *rand.Rand, n int, lo, hi float64) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = lo + rng.Float64()*(hi-lo)
	}
	return rates
}

// SkewedHalf assigns value hi to a randomly selected half of n slots and lo
// to the rest (Section 4.3's weight and update-rate skew). The selection is
// independent for each call, as in the paper's "independently- and
// randomly-selected half".
func SkewedHalf(rng *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	perm := rng.Perm(n)
	for i, p := range perm {
		if i < n/2 {
			out[p] = hi
		} else {
			out[p] = lo
		}
	}
	return out
}

// ZipfWeights returns n weights proportional to 1/rank^s, normalized so the
// mean weight is 1. Used by the web-index example to model popularity skew.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}
