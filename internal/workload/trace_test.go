package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceValidate(t *testing.T) {
	good := &Trace{Times: []float64{1, 2, 3}, Values: []float64{4, 5, 6}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad1 := &Trace{Times: []float64{1, 2}, Values: []float64{4}}
	if bad1.Validate() == nil {
		t.Error("length mismatch accepted")
	}
	bad2 := &Trace{Times: []float64{1, 1}, Values: []float64{4, 5}}
	if bad2.Validate() == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestTraceNextIndexAfter(t *testing.T) {
	tr := &Trace{Times: []float64{10, 20, 30}, Values: []float64{1, 2, 3}}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {10, 1}, {15, 1}, {20, 2}, {30, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := tr.NextIndexAfter(c.t); got != c.want {
			t.Errorf("NextIndexAfter(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := &Trace{Times: []float64{1.5, 2.25, 9}, Values: []float64{-3, 0.125, 7}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Times {
		if got.Times[i] != tr.Times[i] || got.Values[i] != tr.Values[i] {
			t.Errorf("row %d: (%v,%v), want (%v,%v)",
				i, got.Times[i], got.Values[i], tr.Times[i], tr.Values[i])
		}
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",    // wrong arity — csv reader flags inconsistent records, or our check
		"abc,2\n",    // bad time
		"1,xyz\n",    // bad value
		"2,1\n1,1\n", // non-increasing
	}
	for _, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted, want error", in)
		}
	}
}

func TestGenBuoyTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultBuoyConfig()
	tr := GenBuoyTrace(rng, cfg, 0)
	wantN := int(7 * 86400 / 600)
	if tr.Len() != wantN {
		t.Fatalf("trace length %d, want %d", tr.Len(), wantN)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	mean := 0.0
	for _, v := range tr.Values {
		if v < cfg.Min || v > cfg.Max {
			t.Fatalf("value %v outside [%v,%v]", v, cfg.Min, cfg.Max)
		}
		mean += v
	}
	mean /= float64(tr.Len())
	if mean < 3 || mean > 7 {
		t.Errorf("mean wind %v, want ≈5 (paper's typical value)", mean)
	}
	// Cadence must be exactly SampleEvery.
	for i := 1; i < tr.Len(); i++ {
		if math.Abs(tr.Times[i]-tr.Times[i-1]-600) > 1e-9 {
			t.Fatalf("sample gap %v at %d, want 600", tr.Times[i]-tr.Times[i-1], i)
		}
	}
}

func TestGenBuoyTraceVariability(t *testing.T) {
	// Consecutive 10-minute samples should usually differ (the scheduler
	// has something to propagate) but not jump wildly.
	rng := rand.New(rand.NewSource(10))
	tr := GenBuoyTrace(rng, DefaultBuoyConfig(), 1)
	changed := 0
	maxJump := 0.0
	for i := 1; i < tr.Len(); i++ {
		d := math.Abs(tr.Values[i] - tr.Values[i-1])
		if d > 1e-12 {
			changed++
		}
		if d > maxJump {
			maxJump = d
		}
	}
	if changed < tr.Len()/2 {
		t.Errorf("only %d/%d samples changed", changed, tr.Len())
	}
	if maxJump > 5 {
		t.Errorf("max jump %v too large for wind data", maxJump)
	}
}

func TestGenBuoyFleetSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultBuoyConfig()
	cfg.Days = 0.5 // keep the test fast
	fleet := GenBuoyFleet(rng, cfg, 40, 2)
	if len(fleet) != 80 {
		t.Fatalf("fleet size %d, want 80", len(fleet))
	}
	for i, tr := range fleet {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d invalid: %v", i, err)
		}
	}
}

func TestGenBuoyFleetDeterministic(t *testing.T) {
	cfg := DefaultBuoyConfig()
	cfg.Days = 0.25
	a := GenBuoyFleet(rand.New(rand.NewSource(12)), cfg, 3, 2)
	b := GenBuoyFleet(rand.New(rand.NewSource(12)), cfg, 3, 2)
	for i := range a {
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("same seed produced different traces at %d/%d", i, j)
			}
		}
	}
}
