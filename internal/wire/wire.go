// Package wire defines the protocol messages exchanged between live sources
// and the cache (internal/runtime), independent of transport. All messages
// are small and fixed-shape; the TCP transport encodes them with
// encoding/gob.
//
// The message set mirrors Section 5 of the paper: refresh messages carry the
// new object value plus the source's piggybacked local threshold; feedback
// messages carry no payload of their own — receiving one *is* the signal to
// decrease the local threshold — but may piggyback held-version
// acknowledgements (Feedback.Held) so senders can skip re-sends the cache
// already holds. For multi-tier topologies (runtime.Relay) a refresh also
// carries its originating source and a relay hop count, so loop-avoidance
// and per-tier attribution work across cache→cache re-exports.
//
// # Sync policies
//
// Refresh/Feedback are the messages of the paper's source-cooperative push
// policy. The cache-driven polling baseline of Section 6.3 (Cho &
// Garcia-Molina) uses its own pair instead: the cache sends Poll messages
// naming the objects it wants (an empty list asks for the whole store — the
// discovery poll), and the source answers with PollReply envelopes carrying
// value, version and last-modified time per object. Poll replies are
// batchable exactly like refresh batches. Which pair a node speaks is the
// runtime's pluggable sync policy (runtime.Policy); both transports frame
// all four messages.
//
// # Batching
//
// On the hot path refreshes travel inside RefreshBatch envelopes: a source
// (or a transport.Batcher wrapping its connection) coalesces consecutive
// refreshes into one batch, amortizing the per-message encode and syscall
// cost across the whole batch. A batch is purely a framing unit — it carries
// no protocol state of its own, and the refreshes inside it are applied
// individually, in order, with exactly the semantics they would have had as
// separate messages. Batches preserve per-source ordering; refreshes from
// different sources are never mixed in one batch by the provided transports.
//
// See docs/algorithm-specifications.md for the formal protocol
// specification.
package wire

import "fmt"

// Capability bits advertised in Hello.Capabilities. A peer that does not
// understand a bit ignores it; absence of a bit only ever costs optimization,
// never correctness.
const (
	// CapCooperative advertises that the sender is a source willing to push
	// refreshes for objects it classifies as hot (the hybrid policy). A
	// polling cache that sees it may stop polling objects the source's
	// replies list in PollReply.Pushed — the poll→push promotion handshake.
	CapCooperative uint64 = 1 << 0

	// CapPeer advertises that the sender is a peer-capable node
	// (runtime.Node): its store may hold relayed values, so its poll replies
	// can carry per-item origin provenance (PollItem.Origin/Via/OriginEpoch/
	// OriginVersion), and it understands Poll.Known held-version hints. A
	// cache that sees it may attach Known entries to targeted polls; a cache
	// that does not must not (a pre-peer binary decoder rejects the trailing
	// segment as garbage).
	CapPeer uint64 = 1 << 1
)

// Hello is the first message on a source→cache stream, registering the
// source under a stable identifier.
//
// Capabilities is a bit set (Cap* constants) advertising optional protocol
// behaviours; zero — and every legacy frame, which simply omits the field —
// means none. Peers must tolerate unknown bits.
type Hello struct {
	SourceID     string
	Capabilities uint64
}

// Cooperates reports whether the hello advertises source cooperation.
func (h Hello) Cooperates() bool { return h.Capabilities&CapCooperative != 0 }

// ServesPeers reports whether the hello advertises a peer-capable node.
func (h Hello) ServesPeers() bool { return h.Capabilities&CapPeer != 0 }

// Validate checks the registration.
func (h Hello) Validate() error {
	if h.SourceID == "" {
		return fmt.Errorf("wire: empty source id")
	}
	return nil
}

// Refresh propagates one object's current value to the cache.
//
// A fan-out source (one source node synchronizing several caches) runs one
// independent sync session per cache; CacheID names the cache the session
// believes it is talking to — the identity the cache reported about itself
// on earlier feedback — so that a refresh is self-describing in multi-cache
// topologies. It is advisory: caches apply refreshes regardless (the
// connection they arrived on is authoritative) but count mismatches in
// their Misrouted statistic, which flags miswired fan-out (e.g. a proxy
// routing a session to the wrong cache). Empty means the session has not
// yet heard the cache identify itself.
// In a cache→cache hierarchy (runtime.Relay) a refresh may have crossed
// one or more relay tiers before reaching this hop. Origin names the node
// the value was first produced on — relays preserve it while stamping their
// own id as SourceID — Hops counts the relay tiers already traversed (the
// origin source sends 0; every re-export increments it), and Via is the
// path vector of relay ids crossed, oldest first. Together they make
// multi-tier attribution and loop-avoidance possible: a relay never
// re-exports a refresh whose path already contains itself (the message
// crossed a topology cycle) or whose origin is itself, and refuses to
// forward past a configurable hop ceiling.
// Origin carries its own version axis too: OriginEpoch/OriginVersion are the
// (epoch, version) the value had AT ITS ORIGIN, preserved unchanged across
// every relay hop (zero for a direct refresh — then Epoch/Version are the
// origin axis). Each relay tier re-issues Epoch/Version under its own
// incarnation, so only the origin axis stays comparable across a relay
// restart; the cache's staleness guard and held-version feedback both use it
// (OriginAxis).
type Refresh struct {
	SourceID      string
	ObjectID      string
	CacheID       string   // intended destination cache (advisory; see above)
	Origin        string   // originating source in a relay hierarchy; empty = SourceID
	Hops          int      // relay tiers traversed so far (0 = direct); display summary — guards use max(Hops, len(Via))
	Via           []string // relay ids traversed, oldest first (nil = direct); authoritative for loop/depth checks
	OriginEpoch   int64    // origin-axis epoch (0 = direct; use Epoch)
	OriginVersion uint64   // origin-axis version (with OriginEpoch 0: use Version)
	Value         float64
	Version       uint64
	Epoch         int64   // source incarnation (restarts reset Version counters)
	Threshold     float64 // the source's current local threshold (piggyback)
	SentUnix      int64   // nanoseconds; diagnostic only
}

// OriginID returns the id of the node the value was first produced on: the
// explicit Origin when the refresh crossed a relay, otherwise the sending
// source itself.
func (r Refresh) OriginID() string {
	if r.Origin != "" {
		return r.Origin
	}
	return r.SourceID
}

// OriginAxis returns the (epoch, version) the value had at its origin: the
// explicit origin-axis fields when the refresh crossed a relay, otherwise the
// sender's own Epoch/Version (a direct sender IS the origin). Unlike
// Epoch/Version — which every relay tier re-issues under its own incarnation
// — the origin axis is comparable for two copies of the same object from the
// same origin regardless of which (incarnation of which) relay delivered
// them.
func (r Refresh) OriginAxis() (epoch int64, version uint64) {
	if r.OriginEpoch != 0 {
		return r.OriginEpoch, r.OriginVersion
	}
	return r.Epoch, r.Version
}

// Validate checks a refresh message.
func (r Refresh) Validate() error {
	if r.SourceID == "" {
		return fmt.Errorf("wire: refresh with empty source id")
	}
	if r.ObjectID == "" {
		return fmt.Errorf("wire: refresh with empty object id")
	}
	if r.Hops < 0 {
		return fmt.Errorf("wire: refresh with negative hop count %d", r.Hops)
	}
	return nil
}

// RefreshBatch is the unit framed on the source→cache stream: one or more
// refreshes coalesced to amortize encode/flush overhead. Refreshes are
// applied in slice order; the last refresh from a given source carries the
// freshest piggybacked threshold.
type RefreshBatch struct {
	Refreshes []Refresh
	SentUnix  int64 // nanoseconds; diagnostic only
}

// Validate is the strict client-side check: the batch must be non-empty and
// every refresh inside it must itself validate. The cache-side transports
// are deliberately laxer — they validate refreshes individually, dropping
// malformed ones while keeping the rest of the batch, so one bad message
// never costs a whole flush.
func (b RefreshBatch) Validate() error {
	if len(b.Refreshes) == 0 {
		return fmt.Errorf("wire: empty refresh batch")
	}
	for i := range b.Refreshes {
		if err := b.Refreshes[i].Validate(); err != nil {
			return fmt.Errorf("wire: batch[%d]: %w", i, err)
		}
	}
	return nil
}

// HeldVersion acknowledges the cache's held copy of one object on the
// ORIGIN version axis (Refresh.OriginAxis): "for this object I hold the
// value the origin stamped (Epoch, Version)". Senders use it to skip
// refreshes the cache is already at-or-ahead of — most importantly a relay
// restored from a stale snapshot, whose re-exports carry a fresh sender
// epoch the cache's ordinary staleness guard cannot compare.
type HeldVersion struct {
	ObjectID string
	Epoch    int64
	Version  uint64
}

// Feedback is a positive-feedback message from the cache: the receiving
// source should decrease its local threshold (unless bandwidth-limited).
//
// CacheID identifies the cache that sent the feedback. A fan-out source
// routes each connection's feedback to the sync session owning that
// connection, so the per-cache thresholds converge independently; the
// explicit id lets sessions learn and report which cache is on the other
// end. Empty means the cache predates (or did not configure) an id.
//
// Held piggybacks a bounded set of held-version acknowledgements for objects
// this cache recently applied — or dropped as stale — from the receiving
// source (the cache acking what it holds). The receiving session records
// them and skips scheduling sends the cache is already at-or-ahead of on the
// origin axis; see runtime's session held-skip contract. Nil is a plain
// paper-§5 feedback.
type Feedback struct {
	CacheID  string
	Held     []HeldVersion
	SentUnix int64
}

// KnownVersion is a held-version hint attached to a targeted Poll: "for this
// object I already hold the value origin Origin stamped (Epoch, Version)".
// The answering peer may omit (or answer Exists-only) objects the poller is
// already at-or-ahead of ON THE SAME ORIGIN AXIS — epochs from different
// origins are incomparable, so a hint whose Origin differs from the
// answerer's copy never suppresses anything. Purely advisory: ignoring hints
// only costs redundant reply items, never correctness.
type KnownVersion struct {
	ObjectID string
	Origin   string // origin node of the held copy (never empty)
	Epoch    int64  // origin-axis epoch of the held copy
	Version  uint64 // origin-axis version of the held copy
}

// Poll is a cache-driven synchronization request (the Cho & Garcia-Molina
// baseline of Section 6.3): the cache asks the source for the current value
// of the named objects. An EMPTY ObjectIDs list is the discovery poll — the
// source answers with its whole store, which is how a polling cache learns
// the object universe. CacheID identifies the polling cache (sessions learn
// the peer identity from it exactly as they do from feedback).
//
// Known optionally carries held-version hints for (a subset of) the polled
// objects, so a peer-capable answerer (CapPeer) can suppress items the
// poller already holds. Only sent to peers that advertised CapPeer; always
// nil on discovery polls and legacy frames.
type Poll struct {
	CacheID   string
	ObjectIDs []string
	SentUnix  int64
	Known     []KnownVersion
}

// Validate checks a poll message. An empty object list is valid (discovery);
// empty ids inside the list are not.
func (p Poll) Validate() error {
	for i, id := range p.ObjectIDs {
		if id == "" {
			return fmt.Errorf("wire: poll object[%d] has empty id", i)
		}
	}
	for i := range p.Known {
		if p.Known[i].ObjectID == "" {
			return fmt.Errorf("wire: poll known[%d] has empty object id", i)
		}
		if p.Known[i].Origin == "" {
			return fmt.Errorf("wire: poll known[%d] has empty origin", i)
		}
	}
	return nil
}

// PollItem is one object's answer inside a PollReply: the source's current
// value, its (epoch, version), and the wall-clock time of its most recent
// update — the last-modified metadata the CGM1 estimator consumes. Exists
// is false when the source holds no such object (the value fields are then
// zero and carry no information).
//
// When the answering node is itself a cache holding a RELAYED copy (a
// runtime.Node serving a neighbor's poll laterally), the provenance fields
// mirror Refresh's: Origin names the node the value was first produced on,
// Hops/Via the relay path already traversed to REACH the answerer (serving a
// poll adds no hop; the asker's own re-export appends itself), and
// OriginEpoch/OriginVersion the origin version axis. All zero when the
// answerer is the origin — exactly like a direct Refresh.
type PollItem struct {
	ObjectID         string
	Exists           bool
	Value            float64
	Version          uint64
	Epoch            int64
	LastModifiedUnix int64    // nanoseconds; 0 = never updated
	Origin           string   // originating node for relayed copies; empty = answerer
	Hops             int      // relay tiers traversed to reach the answerer
	Via              []string // relay path to the answerer, oldest first
	OriginEpoch      int64    // origin-axis epoch (0 = direct; use Epoch)
	OriginVersion    uint64   // origin-axis version (with OriginEpoch 0: use Version)
}

// OriginID returns the id of the node the item's value was first produced
// on, given the id of the source that answered the poll.
func (it PollItem) OriginID(sourceID string) string {
	if it.Origin != "" {
		return it.Origin
	}
	return sourceID
}

// OriginAxis returns the (epoch, version) the value had at its origin,
// mirroring Refresh.OriginAxis.
func (it PollItem) OriginAxis() (epoch int64, version uint64) {
	if it.OriginEpoch != 0 {
		return it.OriginEpoch, it.OriginVersion
	}
	return it.Epoch, it.Version
}

// PollReply answers one Poll: the requested objects' current state, batched
// into one envelope exactly like a RefreshBatch (one reply frames the whole
// poll's worth of items; items are applied individually, in order). All
// answers a discovery poll — the items are the source's full store.
//
// Pushed is the hybrid-policy promotion signal: the object ids the answering
// source currently PUSHES to this cache (its hot push set), piggybacked so a
// cooperating cache can stop spending poll budget on them. Only meaningful
// when the source advertised CapCooperative in its Hello; empty/nil on every
// legacy frame and under the pure poll policies. Advisory: ignoring it is
// always safe (polling a pushed object just wastes messages).
type PollReply struct {
	SourceID string
	All      bool
	Items    []PollItem
	SentUnix int64
	Pushed   []string
}

// Validate checks a poll reply.
func (p PollReply) Validate() error {
	if p.SourceID == "" {
		return fmt.Errorf("wire: poll reply with empty source id")
	}
	for i := range p.Items {
		if p.Items[i].ObjectID == "" {
			return fmt.Errorf("wire: poll reply item[%d] has empty object id", i)
		}
		if p.Items[i].Hops < 0 {
			return fmt.Errorf("wire: poll reply item[%d] has negative hop count %d", i, p.Items[i].Hops)
		}
	}
	return nil
}

// CacheBound is the framing envelope for the source→cache direction: exactly
// one of Batch (push policy) or Reply (poll policies) is set. The TCP
// transport streams CacheBound envelopes after the Hello; the in-process
// transport delivers the payloads directly.
type CacheBound struct {
	Batch *RefreshBatch
	Reply *PollReply
}

// Validate checks that exactly one payload is present (payload contents are
// validated by the transports item-by-item, per the lax cache-side rule).
func (e CacheBound) Validate() error {
	if (e.Batch == nil) == (e.Reply == nil) {
		return fmt.Errorf("wire: cache-bound envelope needs exactly one of Batch/Reply")
	}
	return nil
}

// SourceBound is the framing envelope for the cache→source direction:
// exactly one of Feedback (push policy) or Poll (poll policies) is set.
type SourceBound struct {
	Feedback *Feedback
	Poll     *Poll
}

// Validate checks that exactly one payload is present.
func (e SourceBound) Validate() error {
	if (e.Feedback == nil) == (e.Poll == nil) {
		return fmt.Errorf("wire: source-bound envelope needs exactly one of Feedback/Poll")
	}
	return nil
}
