// Package wire defines the protocol messages exchanged between live sources
// and the cache (internal/runtime), independent of transport. All messages
// are small and fixed-shape; the TCP transport encodes them with
// encoding/gob.
//
// The message set mirrors Section 5 of the paper: refresh messages carry the
// new object value plus the source's piggybacked local threshold; feedback
// messages carry no payload — receiving one *is* the signal to decrease the
// local threshold. For multi-tier topologies (runtime.Relay) a refresh also
// carries its originating source and a relay hop count, so loop-avoidance
// and per-tier attribution work across cache→cache re-exports.
//
// # Batching
//
// On the hot path refreshes travel inside RefreshBatch envelopes: a source
// (or a transport.Batcher wrapping its connection) coalesces consecutive
// refreshes into one batch, amortizing the per-message encode and syscall
// cost across the whole batch. A batch is purely a framing unit — it carries
// no protocol state of its own, and the refreshes inside it are applied
// individually, in order, with exactly the semantics they would have had as
// separate messages. Batches preserve per-source ordering; refreshes from
// different sources are never mixed in one batch by the provided transports.
//
// See docs/algorithm-specifications.md for the formal protocol
// specification.
package wire

import "fmt"

// Hello is the first message on a source→cache stream, registering the
// source under a stable identifier.
type Hello struct {
	SourceID string
}

// Validate checks the registration.
func (h Hello) Validate() error {
	if h.SourceID == "" {
		return fmt.Errorf("wire: empty source id")
	}
	return nil
}

// Refresh propagates one object's current value to the cache.
//
// A fan-out source (one source node synchronizing several caches) runs one
// independent sync session per cache; CacheID names the cache the session
// believes it is talking to — the identity the cache reported about itself
// on earlier feedback — so that a refresh is self-describing in multi-cache
// topologies. It is advisory: caches apply refreshes regardless (the
// connection they arrived on is authoritative) but count mismatches in
// their Misrouted statistic, which flags miswired fan-out (e.g. a proxy
// routing a session to the wrong cache). Empty means the session has not
// yet heard the cache identify itself.
// In a cache→cache hierarchy (runtime.Relay) a refresh may have crossed
// one or more relay tiers before reaching this hop. Origin names the node
// the value was first produced on — relays preserve it while stamping their
// own id as SourceID — Hops counts the relay tiers already traversed (the
// origin source sends 0; every re-export increments it), and Via is the
// path vector of relay ids crossed, oldest first. Together they make
// multi-tier attribution and loop-avoidance possible: a relay never
// re-exports a refresh whose path already contains itself (the message
// crossed a topology cycle) or whose origin is itself, and refuses to
// forward past a configurable hop ceiling.
type Refresh struct {
	SourceID  string
	ObjectID  string
	CacheID   string   // intended destination cache (advisory; see above)
	Origin    string   // originating source in a relay hierarchy; empty = SourceID
	Hops      int      // relay tiers traversed so far (0 = direct); display summary — guards use max(Hops, len(Via))
	Via       []string // relay ids traversed, oldest first (nil = direct); authoritative for loop/depth checks
	Value     float64
	Version   uint64
	Epoch     int64   // source incarnation (restarts reset Version counters)
	Threshold float64 // the source's current local threshold (piggyback)
	SentUnix  int64   // nanoseconds; diagnostic only
}

// OriginID returns the id of the node the value was first produced on: the
// explicit Origin when the refresh crossed a relay, otherwise the sending
// source itself.
func (r Refresh) OriginID() string {
	if r.Origin != "" {
		return r.Origin
	}
	return r.SourceID
}

// Validate checks a refresh message.
func (r Refresh) Validate() error {
	if r.SourceID == "" {
		return fmt.Errorf("wire: refresh with empty source id")
	}
	if r.ObjectID == "" {
		return fmt.Errorf("wire: refresh with empty object id")
	}
	if r.Hops < 0 {
		return fmt.Errorf("wire: refresh with negative hop count %d", r.Hops)
	}
	return nil
}

// RefreshBatch is the unit framed on the source→cache stream: one or more
// refreshes coalesced to amortize encode/flush overhead. Refreshes are
// applied in slice order; the last refresh from a given source carries the
// freshest piggybacked threshold.
type RefreshBatch struct {
	Refreshes []Refresh
	SentUnix  int64 // nanoseconds; diagnostic only
}

// Validate is the strict client-side check: the batch must be non-empty and
// every refresh inside it must itself validate. The cache-side transports
// are deliberately laxer — they validate refreshes individually, dropping
// malformed ones while keeping the rest of the batch, so one bad message
// never costs a whole flush.
func (b RefreshBatch) Validate() error {
	if len(b.Refreshes) == 0 {
		return fmt.Errorf("wire: empty refresh batch")
	}
	for i := range b.Refreshes {
		if err := b.Refreshes[i].Validate(); err != nil {
			return fmt.Errorf("wire: batch[%d]: %w", i, err)
		}
	}
	return nil
}

// Feedback is a positive-feedback message from the cache: the receiving
// source should decrease its local threshold (unless bandwidth-limited).
//
// CacheID identifies the cache that sent the feedback. A fan-out source
// routes each connection's feedback to the sync session owning that
// connection, so the per-cache thresholds converge independently; the
// explicit id lets sessions learn and report which cache is on the other
// end. Empty means the cache predates (or did not configure) an id.
type Feedback struct {
	CacheID  string
	SentUnix int64
}
