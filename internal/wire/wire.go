// Package wire defines the protocol messages exchanged between live sources
// and the cache (internal/runtime), independent of transport. All messages
// are small and fixed-shape; the TCP transport encodes them with
// encoding/gob.
//
// The message set mirrors Section 5 of the paper: refresh messages carry the
// new object value plus the source's piggybacked local threshold; feedback
// messages carry no payload — receiving one *is* the signal to decrease the
// local threshold.
package wire

import "fmt"

// Hello is the first message on a source→cache stream, registering the
// source under a stable identifier.
type Hello struct {
	SourceID string
}

// Validate checks the registration.
func (h Hello) Validate() error {
	if h.SourceID == "" {
		return fmt.Errorf("wire: empty source id")
	}
	return nil
}

// Refresh propagates one object's current value to the cache.
type Refresh struct {
	SourceID  string
	ObjectID  string
	Value     float64
	Version   uint64
	Epoch     int64   // source incarnation (restarts reset Version counters)
	Threshold float64 // the source's current local threshold (piggyback)
	SentUnix  int64   // nanoseconds; diagnostic only
}

// Validate checks a refresh message.
func (r Refresh) Validate() error {
	if r.SourceID == "" {
		return fmt.Errorf("wire: refresh with empty source id")
	}
	if r.ObjectID == "" {
		return fmt.Errorf("wire: refresh with empty object id")
	}
	return nil
}

// Feedback is a positive-feedback message from the cache: the receiving
// source should decrease its local threshold (unless bandwidth-limited).
type Feedback struct {
	SentUnix int64
}
