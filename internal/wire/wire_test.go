package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestHelloValidate(t *testing.T) {
	if err := (Hello{SourceID: "s"}).Validate(); err != nil {
		t.Errorf("valid hello rejected: %v", err)
	}
	if err := (Hello{}).Validate(); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestRefreshValidate(t *testing.T) {
	good := Refresh{SourceID: "s", ObjectID: "o"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid refresh rejected: %v", err)
	}
	if err := (Refresh{ObjectID: "o"}).Validate(); err == nil {
		t.Error("refresh without source accepted")
	}
	if err := (Refresh{SourceID: "s"}).Validate(); err == nil {
		t.Error("refresh without object accepted")
	}
	if err := (Refresh{SourceID: "s", ObjectID: "o", Hops: -1}).Validate(); err == nil {
		t.Error("refresh with negative hop count accepted")
	}
	if err := (Refresh{SourceID: "s", ObjectID: "o", Origin: "root", Hops: 2}).Validate(); err != nil {
		t.Errorf("relayed refresh rejected: %v", err)
	}
}

func TestRefreshOriginID(t *testing.T) {
	if got := (Refresh{SourceID: "s"}).OriginID(); got != "s" {
		t.Errorf("direct refresh origin = %q, want s", got)
	}
	if got := (Refresh{SourceID: "relay", Origin: "root", Hops: 1}).OriginID(); got != "root" {
		t.Errorf("relayed refresh origin = %q, want root", got)
	}
}

func TestRefreshBatchValidate(t *testing.T) {
	good := RefreshBatch{Refreshes: []Refresh{
		{SourceID: "s", ObjectID: "a"},
		{SourceID: "s", ObjectID: "b"},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := (RefreshBatch{}).Validate(); err == nil {
		t.Error("empty batch accepted")
	}
	bad := RefreshBatch{Refreshes: []Refresh{
		{SourceID: "s", ObjectID: "a"},
		{SourceID: "s"}, // missing object id
	}}
	if err := bad.Validate(); err == nil {
		t.Error("batch with invalid refresh accepted")
	}
}

func TestRefreshBatchGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	in := RefreshBatch{
		SentUnix: 42,
		Refreshes: []Refresh{
			{SourceID: "s1", ObjectID: "a", Value: 1.5, Version: 1, Epoch: 9, Threshold: 0.25},
			{SourceID: "s1", ObjectID: "b", Value: -7, Version: 3, Epoch: 9, Threshold: 0.25},
			{SourceID: "s1", ObjectID: "c", Value: 0, Version: 2, Epoch: 9, Threshold: 0.5},
		},
	}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out RefreshBatch
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SentUnix != in.SentUnix || len(out.Refreshes) != len(in.Refreshes) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Refreshes {
		if !reflect.DeepEqual(out.Refreshes[i], in.Refreshes[i]) {
			t.Errorf("refresh %d: %+v vs %+v", i, out.Refreshes[i], in.Refreshes[i])
		}
	}
	// Successive batches on one stream reuse the gob type definition
	// (framing overhead is paid once) and stay decodable.
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	in := Refresh{
		SourceID:  "src-1",
		ObjectID:  "obj-9",
		Origin:    "root-7",
		Hops:      2,
		Via:       []string{"relay-a", "relay-b"},
		Value:     -2.25,
		Version:   42,
		Threshold: 1.5,
		SentUnix:  123456789,
	}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out Refresh
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}
