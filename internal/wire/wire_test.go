package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestHelloValidate(t *testing.T) {
	if err := (Hello{SourceID: "s"}).Validate(); err != nil {
		t.Errorf("valid hello rejected: %v", err)
	}
	if err := (Hello{}).Validate(); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestRefreshValidate(t *testing.T) {
	good := Refresh{SourceID: "s", ObjectID: "o"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid refresh rejected: %v", err)
	}
	if err := (Refresh{ObjectID: "o"}).Validate(); err == nil {
		t.Error("refresh without source accepted")
	}
	if err := (Refresh{SourceID: "s"}).Validate(); err == nil {
		t.Error("refresh without object accepted")
	}
	if err := (Refresh{SourceID: "s", ObjectID: "o", Hops: -1}).Validate(); err == nil {
		t.Error("refresh with negative hop count accepted")
	}
	if err := (Refresh{SourceID: "s", ObjectID: "o", Origin: "root", Hops: 2}).Validate(); err != nil {
		t.Errorf("relayed refresh rejected: %v", err)
	}
}

func TestRefreshOriginID(t *testing.T) {
	if got := (Refresh{SourceID: "s"}).OriginID(); got != "s" {
		t.Errorf("direct refresh origin = %q, want s", got)
	}
	if got := (Refresh{SourceID: "relay", Origin: "root", Hops: 1}).OriginID(); got != "root" {
		t.Errorf("relayed refresh origin = %q, want root", got)
	}
}

func TestRefreshBatchValidate(t *testing.T) {
	good := RefreshBatch{Refreshes: []Refresh{
		{SourceID: "s", ObjectID: "a"},
		{SourceID: "s", ObjectID: "b"},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := (RefreshBatch{}).Validate(); err == nil {
		t.Error("empty batch accepted")
	}
	bad := RefreshBatch{Refreshes: []Refresh{
		{SourceID: "s", ObjectID: "a"},
		{SourceID: "s"}, // missing object id
	}}
	if err := bad.Validate(); err == nil {
		t.Error("batch with invalid refresh accepted")
	}
}

func TestRefreshBatchGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	in := RefreshBatch{
		SentUnix: 42,
		Refreshes: []Refresh{
			{SourceID: "s1", ObjectID: "a", Value: 1.5, Version: 1, Epoch: 9, Threshold: 0.25},
			{SourceID: "s1", ObjectID: "b", Value: -7, Version: 3, Epoch: 9, Threshold: 0.25},
			{SourceID: "s1", ObjectID: "c", Value: 0, Version: 2, Epoch: 9, Threshold: 0.5},
		},
	}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out RefreshBatch
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SentUnix != in.SentUnix || len(out.Refreshes) != len(in.Refreshes) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Refreshes {
		if !reflect.DeepEqual(out.Refreshes[i], in.Refreshes[i]) {
			t.Errorf("refresh %d: %+v vs %+v", i, out.Refreshes[i], in.Refreshes[i])
		}
	}
	// Successive batches on one stream reuse the gob type definition
	// (framing overhead is paid once) and stay decodable.
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshOriginAxis(t *testing.T) {
	direct := Refresh{SourceID: "s", ObjectID: "o", Epoch: 7, Version: 3}
	if e, v := direct.OriginAxis(); e != 7 || v != 3 {
		t.Errorf("direct origin axis = (%d, %d), want (7, 3)", e, v)
	}
	relayed := Refresh{
		SourceID: "relay", ObjectID: "o", Origin: "root",
		Epoch: 99, Version: 1, OriginEpoch: 7, OriginVersion: 3,
	}
	if e, v := relayed.OriginAxis(); e != 7 || v != 3 {
		t.Errorf("relayed origin axis = (%d, %d), want (7, 3)", e, v)
	}
}

func TestPollValidate(t *testing.T) {
	if err := (Poll{CacheID: "c"}).Validate(); err != nil {
		t.Errorf("discovery poll rejected: %v", err)
	}
	if err := (Poll{ObjectIDs: []string{"a", "b"}}).Validate(); err != nil {
		t.Errorf("valid poll rejected: %v", err)
	}
	if err := (Poll{ObjectIDs: []string{"a", ""}}).Validate(); err == nil {
		t.Error("poll with empty object id accepted")
	}
}

func TestPollReplyValidate(t *testing.T) {
	good := PollReply{SourceID: "s", Items: []PollItem{{ObjectID: "a", Exists: true}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid reply rejected: %v", err)
	}
	if err := (PollReply{Items: []PollItem{{ObjectID: "a"}}}).Validate(); err == nil {
		t.Error("reply without source accepted")
	}
	if err := (PollReply{SourceID: "s", Items: []PollItem{{}}}).Validate(); err == nil {
		t.Error("reply with empty object id accepted")
	}
}

func TestEnvelopeValidate(t *testing.T) {
	if err := (CacheBound{Batch: &RefreshBatch{}}).Validate(); err != nil {
		t.Errorf("batch envelope rejected: %v", err)
	}
	if err := (CacheBound{Reply: &PollReply{}}).Validate(); err != nil {
		t.Errorf("reply envelope rejected: %v", err)
	}
	if err := (CacheBound{}).Validate(); err == nil {
		t.Error("empty cache-bound envelope accepted")
	}
	if err := (CacheBound{Batch: &RefreshBatch{}, Reply: &PollReply{}}).Validate(); err == nil {
		t.Error("double cache-bound envelope accepted")
	}
	if err := (SourceBound{Feedback: &Feedback{}}).Validate(); err != nil {
		t.Errorf("feedback envelope rejected: %v", err)
	}
	if err := (SourceBound{Poll: &Poll{}}).Validate(); err != nil {
		t.Errorf("poll envelope rejected: %v", err)
	}
	if err := (SourceBound{}).Validate(); err == nil {
		t.Error("empty source-bound envelope accepted")
	}
}

func TestEnvelopeGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	// One stream mixing both cache-bound payload kinds, as a TCP source
	// connection does when a poll-mode cache talks to it.
	msgs := []CacheBound{
		{Batch: &RefreshBatch{Refreshes: []Refresh{{SourceID: "s", ObjectID: "a", Value: 2}}}},
		{Reply: &PollReply{SourceID: "s", All: true, Items: []PollItem{
			{ObjectID: "a", Exists: true, Value: 2, Version: 5, Epoch: 9, LastModifiedUnix: 17},
			{ObjectID: "gone"},
		}}},
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		var got CacheBound
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("envelope %d: %+v vs %+v", i, got, want)
		}
	}

	var buf2 bytes.Buffer
	enc2 := gob.NewEncoder(&buf2)
	dec2 := gob.NewDecoder(&buf2)
	down := []SourceBound{
		{Feedback: &Feedback{CacheID: "c", Held: []HeldVersion{{ObjectID: "a", Epoch: 9, Version: 5}}}},
		{Poll: &Poll{CacheID: "c", ObjectIDs: []string{"a", "b"}}},
		{Poll: &Poll{CacheID: "c"}}, // discovery
	}
	for _, m := range down {
		if err := enc2.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range down {
		var got SourceBound
		if err := dec2.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("envelope %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	in := Refresh{
		SourceID:  "src-1",
		ObjectID:  "obj-9",
		Origin:    "root-7",
		Hops:      2,
		Via:       []string{"relay-a", "relay-b"},
		Value:     -2.25,
		Version:   42,
		Threshold: 1.5,
		SentUnix:  123456789,
	}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out Refresh
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}
