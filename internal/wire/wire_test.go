package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestHelloValidate(t *testing.T) {
	if err := (Hello{SourceID: "s"}).Validate(); err != nil {
		t.Errorf("valid hello rejected: %v", err)
	}
	if err := (Hello{}).Validate(); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestRefreshValidate(t *testing.T) {
	good := Refresh{SourceID: "s", ObjectID: "o"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid refresh rejected: %v", err)
	}
	if err := (Refresh{ObjectID: "o"}).Validate(); err == nil {
		t.Error("refresh without source accepted")
	}
	if err := (Refresh{SourceID: "s"}).Validate(); err == nil {
		t.Error("refresh without object accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	in := Refresh{
		SourceID:  "src-1",
		ObjectID:  "obj-9",
		Value:     -2.25,
		Version:   42,
		Threshold: 1.5,
		SentUnix:  123456789,
	}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out Refresh
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}
