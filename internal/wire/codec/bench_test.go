package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"testing"

	"bestsync/internal/wire"
)

// benchBatch builds a representative batch: realistic id lengths, every
// refresh distinct, no provenance (the common single-hop case).
func benchBatch(n int) wire.RefreshBatch {
	rs := make([]wire.Refresh, n)
	for i := range rs {
		rs[i] = wire.Refresh{
			SourceID: "src-42",
			ObjectID: fmt.Sprintf("src-42/object-%04d", i),
			Version:  uint64(i + 1),
			Epoch:    3,
			Value:    float64(i) * 1.5,
			SentUnix: 1700000000000000000,
		}
	}
	return wire.RefreshBatch{Refreshes: rs, SentUnix: 1700000000000000000}
}

// BenchmarkEncodeBatch measures the binary encoder against gob on the hot
// frame, reporting ns/refresh — the number the wire-path roadmap item
// targets. Gob here re-creates the encoder per envelope the way a fresh
// stream would not, so the gob figure is additionally measured in stream
// mode (one encoder, many envelopes), which matches the transport's real
// usage and is the fair baseline.
func BenchmarkEncodeBatch(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		batch := benchBatch(size)
		b.Run(fmt.Sprintf("binary/batch=%d", size), func(b *testing.B) {
			var enc Encoder
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = enc.AppendBatch(buf[:0], batch)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
		})
		b.Run(fmt.Sprintf("gob/batch=%d", size), func(b *testing.B) {
			var sink bytes.Buffer
			enc := gob.NewEncoder(&sink)
			env := wire.CacheBound{Batch: &batch}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink.Reset()
				if err := enc.Encode(env); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
		})
	}
}

// replayReader yields the same encoded bytes forever, so decoder benchmarks
// measure parsing, not buffer refills.
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func BenchmarkDecodeBatch(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		batch := benchBatch(size)
		b.Run(fmt.Sprintf("binary/batch=%d", size), func(b *testing.B) {
			var enc Encoder
			frame := enc.AppendBatch(nil, batch)
			d := NewDecoder(&replayReader{data: frame})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.ReadCacheBound(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
		})
		b.Run(fmt.Sprintf("gob/batch=%d", size), func(b *testing.B) {
			// Gob decoders cannot replay a byte stream (type definitions are
			// stateful), so stream b.N envelopes through a pipe from an
			// encoder goroutine — the decode cost dominates.
			pr, pw := io.Pipe()
			go func() {
				enc := gob.NewEncoder(pw)
				env := wire.CacheBound{Batch: &batch}
				for i := 0; i < b.N; i++ {
					if enc.Encode(env) != nil {
						return
					}
				}
				pw.Close()
			}()
			dec := gob.NewDecoder(pr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var env wire.CacheBound
				if err := dec.Decode(&env); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
			pr.Close()
		})
	}
}

// BenchmarkNewBatchFrame measures the pooled encode-once path a Batcher
// uses: steady state must not allocate.
func BenchmarkNewBatchFrame(b *testing.B) {
	batch := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewBatchFrame(batch.Refreshes, batch.SentUnix)
		f.Release()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/refresh")
}

// relayedBatch shapes benchBatch like one hop out of an upstream relay:
// origin axis set, one Via entry — the input SpliceForward sees in a tree.
func relayedBatch(n int) wire.RefreshBatch {
	batch := benchBatch(n)
	for i := range batch.Refreshes {
		r := &batch.Refreshes[i]
		r.Origin = "origin-1"
		r.Hops = 1
		r.Via = []string{"src-42"}
		r.OriginEpoch = 3
		r.OriginVersion = r.Version
	}
	return batch
}

// BenchmarkSpliceForward measures the relay re-export encode per refresh:
// the splice path (span-index the inbound frame, patch the per-hop fields)
// against the classic decode-side rebuild (PatchForward + NewBatchFrame)
// over the same inbound frame. Steady-state splice must not allocate beyond
// the patched Via paths PatchForward materializes — the splice side itself
// reuses pooled views and frames.
func BenchmarkSpliceForward(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		batch := relayedBatch(size)
		inbound := NewBatchFrame(batch.Refreshes, batch.SentUnix)
		defer inbound.Release()
		keep := make([]bool, size)
		versions := make([]uint64, size)
		for i := range keep {
			keep[i] = true
			versions[i] = uint64(i + 100)
		}
		fp := ForwardPatch{SourceID: "relay-7", Epoch: 9, Threshold: 0.25, SentUnix: 1700000000000000001}
		b.Run(fmt.Sprintf("splice/batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, err := ParseBatchFrame(inbound.Bytes())
				if err != nil {
					b.Fatal(err)
				}
				f := SpliceForward(v, keep, versions, fp)
				f.Release()
				v.Release()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
		})
		b.Run(fmt.Sprintf("reencode/batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := PatchForward(batch.Refreshes, keep, versions, fp)
				f := NewBatchFrame(out, fp.SentUnix)
				f.Release()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/refresh")
		})
	}
}
