//go:build race

package codec

// raceEnabled gates allocation-count assertions: the race detector
// instruments sync.Pool and string conversions, making AllocsPerRun
// meaningless.
const raceEnabled = true
