package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"bestsync/internal/wire"
)

// sampleRefresh exercises every Refresh field, including relay provenance.
func sampleRefresh() wire.Refresh {
	return wire.Refresh{
		SourceID:      "relay-1",
		ObjectID:      "src-9/obj-42",
		CacheID:       "edge-a",
		Origin:        "src-9",
		Hops:          2,
		Via:           []string{"relay-0", "relay-1"},
		OriginEpoch:   1700000000123,
		OriginVersion: 77,
		Value:         -273.15,
		Version:       12345,
		Epoch:         1700000001456,
		Threshold:     0.125,
		SentUnix:      1700000002789,
	}
}

func sampleBatch() wire.RefreshBatch {
	plain := wire.Refresh{SourceID: "s1", ObjectID: "s1/x", Value: 1.5, Version: 9, Epoch: 3}
	return wire.RefreshBatch{Refreshes: []wire.Refresh{sampleRefresh(), plain}, SentUnix: 42}
}

func sampleReply() wire.PollReply {
	return wire.PollReply{
		SourceID: "s1",
		All:      true,
		Items: []wire.PollItem{
			{ObjectID: "s1/a", Exists: true, Value: 2.5, Version: 8, Epoch: 3, LastModifiedUnix: 99},
			{ObjectID: "s1/b"},
		},
		SentUnix: 7,
	}
}

func sampleFeedback() wire.Feedback {
	return wire.Feedback{
		CacheID: "edge-a",
		Held: []wire.HeldVersion{
			{ObjectID: "s1/a", Epoch: 5, Version: 6},
			{ObjectID: "s1/b", Epoch: -1, Version: 0},
		},
		SentUnix: 11,
	}
}

func samplePoll() wire.Poll {
	return wire.Poll{CacheID: "edge-a", ObjectIDs: []string{"s1/a", "s1/b", "s1/c"}, SentUnix: 13}
}

// sampleHelloCoop pins the optional trailing Capabilities field (hybrid
// policy's cooperation advertisement).
func sampleHelloCoop() wire.Hello {
	return wire.Hello{SourceID: "src-7", Capabilities: wire.CapCooperative}
}

// sampleHybridReply pins the optional trailing Pushed segment a hybrid
// source piggybacks on its poll replies.
func sampleHybridReply() wire.PollReply {
	r := sampleReply()
	r.Pushed = []string{"s1/a", "s1/hot"}
	return r
}

// samplePeerReply pins the trailing per-item provenance segment a
// peer-capable node emits when answering a poll from relayed state. The
// push set is empty, so this also pins the explicit zero-count Pushed
// segment that disambiguates the two trailers.
func samplePeerReply() wire.PollReply {
	r := sampleReply()
	r.Items[0].Origin = "src-9"
	r.Items[0].Hops = 2
	r.Items[0].Via = []string{"relay-0", "relay-1"}
	r.Items[0].OriginEpoch = 1700000000123
	r.Items[0].OriginVersion = 77
	return r
}

// samplePeerPoll pins the trailing known-version segment a polling cache
// attaches for peer-capable answerers.
func samplePeerPoll() wire.Poll {
	p := samplePoll()
	p.Known = []wire.KnownVersion{
		{ObjectID: "s1/a", Origin: "src-9", Epoch: 1700000000123, Version: 76},
		{ObjectID: "s1/b", Origin: "s1", Epoch: -4, Version: 0},
	}
	return p
}

// TestHelloCapabilityRoundTrip: the capability bit survives the codec, a
// capability-less hello encodes byte-identically to the legacy format, and a
// legacy (pre-capability) frame decodes with zero capabilities.
func TestHelloCapabilityRoundTrip(t *testing.T) {
	var enc Encoder
	frame := enc.AppendHello(nil, sampleHelloCoop())
	got, err := NewDecoder(bytes.NewReader(frame)).ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cooperates() || got.SourceID != "src-7" {
		t.Errorf("capability lost in round trip: %+v", got)
	}

	plain := enc.AppendHello(nil, wire.Hello{SourceID: "src-7"})
	legacy := append([]byte{KindHello}, byte(1+len("src-7")))
	legacy = append(legacy, byte(len("src-7")))
	legacy = append(legacy, "src-7"...)
	if !bytes.Equal(plain, legacy) {
		t.Errorf("capability-less hello drifted from the legacy encoding:\n got %x\nwant %x", plain, legacy)
	}
	gotLegacy, err := NewDecoder(bytes.NewReader(legacy)).ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if gotLegacy.Capabilities != 0 || gotLegacy.Cooperates() {
		t.Errorf("legacy hello decoded with capabilities: %+v", gotLegacy)
	}
}

// TestReplyPushedRoundTrip: the pushed-set segment survives the codec and a
// pushed-less reply stays byte-identical to the legacy encoding.
func TestReplyPushedRoundTrip(t *testing.T) {
	var enc Encoder
	reply := sampleHybridReply()
	got, err := NewDecoder(bytes.NewReader(enc.AppendReply(nil, reply))).ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if got.Reply == nil || !reflect.DeepEqual(*got.Reply, reply) {
		t.Errorf("hybrid reply round-trip:\n got %+v\nwant %+v", got.Reply, reply)
	}

	legacyReply := sampleReply() // no Pushed
	legacy := enc.AppendReply(nil, legacyReply)
	withEmpty := legacyReply
	withEmpty.Pushed = []string{}
	if !bytes.Equal(enc.AppendReply(nil, withEmpty), legacy) {
		t.Error("empty pushed set changed the reply encoding")
	}
	gotLegacy, err := NewDecoder(bytes.NewReader(legacy)).ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if gotLegacy.Reply.Pushed != nil {
		t.Errorf("legacy reply decoded with a pushed set: %+v", gotLegacy.Reply)
	}
}

// TestReplyProvenanceRoundTrip: per-item provenance survives the codec (with
// and without a non-empty pushed set), and a provenance-free reply stays
// byte-identical to the legacy encoding.
func TestReplyProvenanceRoundTrip(t *testing.T) {
	var enc Encoder
	for _, reply := range []wire.PollReply{
		samplePeerReply(),
		func() wire.PollReply { // provenance AND a pushed set together
			r := samplePeerReply()
			r.Pushed = []string{"s1/hot"}
			return r
		}(),
	} {
		got, err := NewDecoder(bytes.NewReader(enc.AppendReply(nil, reply))).ReadCacheBound()
		if err != nil {
			t.Fatal(err)
		}
		if got.Reply == nil || !reflect.DeepEqual(*got.Reply, reply) {
			t.Errorf("peer reply round-trip:\n got %+v\nwant %+v", got.Reply, reply)
		}
	}

	plain := sampleReply()
	legacy := enc.AppendReply(nil, plain)
	gotLegacy, err := NewDecoder(bytes.NewReader(legacy)).ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gotLegacy.Reply, plain) {
		t.Errorf("provenance-free reply drifted: %+v", gotLegacy.Reply)
	}

	// A hostile provenance index (out of range) is rejected: take a valid
	// one-item reply, strip the frame header, append a zero-count pushed
	// segment plus a one-entry provenance segment claiming item index 5,
	// and reframe.
	bad := enc.AppendReply(nil, wire.PollReply{SourceID: "s1", Items: []wire.PollItem{{ObjectID: "x"}}})
	payload := append([]byte{}, bad[2:]...) // 2 = kind + 1-byte length prefix
	payload = append(payload, 0 /* pushed count */, 1 /* prov count */, 5, 0, 0, 0, 0, 0)
	reframed := append([]byte{KindReply, byte(len(payload))}, payload...)
	if _, err := NewDecoder(bytes.NewReader(reframed)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("out-of-range provenance index accepted: %v", err)
	}
}

// TestPollKnownRoundTrip: the known-version segment survives the codec and a
// hint-less poll stays byte-identical to the legacy encoding.
func TestPollKnownRoundTrip(t *testing.T) {
	var enc Encoder
	poll := samplePeerPoll()
	got, err := NewDecoder(bytes.NewReader(enc.AppendPoll(nil, poll))).ReadSourceBound()
	if err != nil {
		t.Fatal(err)
	}
	if got.Poll == nil || !reflect.DeepEqual(*got.Poll, poll) {
		t.Errorf("peer poll round-trip:\n got %+v\nwant %+v", got.Poll, poll)
	}

	plain := samplePoll()
	legacy := enc.AppendPoll(nil, plain)
	withEmpty := plain
	withEmpty.Known = []wire.KnownVersion{}
	if !bytes.Equal(enc.AppendPoll(nil, withEmpty), legacy) {
		t.Error("empty known set changed the poll encoding")
	}
	gotLegacy, err := NewDecoder(bytes.NewReader(legacy)).ReadSourceBound()
	if err != nil {
		t.Fatal(err)
	}
	if gotLegacy.Poll.Known != nil {
		t.Errorf("legacy poll decoded with known hints: %+v", gotLegacy.Poll)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var enc Encoder
	frame := enc.AppendHello(nil, wire.Hello{SourceID: "src-7"})
	d := NewDecoder(bytes.NewReader(frame))
	got, err := d.ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if got.SourceID != "src-7" {
		t.Errorf("got %+v", got)
	}
	if _, err := d.ReadHello(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestCacheBoundRoundTrip(t *testing.T) {
	var enc Encoder
	batch := sampleBatch()
	reply := sampleReply()
	var buf []byte
	var err error
	if buf, err = enc.AppendCacheBound(buf, wire.CacheBound{Batch: &batch}); err != nil {
		t.Fatal(err)
	}
	if buf, err = enc.AppendCacheBound(buf, wire.CacheBound{Reply: &reply}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf))
	env1, err := d.ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if env1.Batch == nil || !reflect.DeepEqual(*env1.Batch, batch) {
		t.Errorf("batch round-trip:\n got %+v\nwant %+v", env1.Batch, batch)
	}
	env2, err := d.ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if env2.Reply == nil || !reflect.DeepEqual(*env2.Reply, reply) {
		t.Errorf("reply round-trip:\n got %+v\nwant %+v", env2.Reply, reply)
	}
}

func TestSourceBoundRoundTrip(t *testing.T) {
	var enc Encoder
	fb := sampleFeedback()
	poll := samplePoll()
	var buf []byte
	var err error
	if buf, err = enc.AppendSourceBound(buf, wire.SourceBound{Feedback: &fb}); err != nil {
		t.Fatal(err)
	}
	if buf, err = enc.AppendSourceBound(buf, wire.SourceBound{Poll: &poll}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf))
	env1, err := d.ReadSourceBound()
	if err != nil {
		t.Fatal(err)
	}
	if env1.Feedback == nil || !reflect.DeepEqual(*env1.Feedback, fb) {
		t.Errorf("feedback round-trip:\n got %+v\nwant %+v", env1.Feedback, fb)
	}
	env2, err := d.ReadSourceBound()
	if err != nil {
		t.Fatal(err)
	}
	if env2.Poll == nil || !reflect.DeepEqual(*env2.Poll, poll) {
		t.Errorf("poll round-trip:\n got %+v\nwant %+v", env2.Poll, poll)
	}
}

func TestInvalidEnvelopeRejected(t *testing.T) {
	var enc Encoder
	if _, err := enc.AppendCacheBound(nil, wire.CacheBound{}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty cache-bound envelope: err = %v", err)
	}
	b := sampleBatch()
	r := sampleReply()
	if _, err := enc.AppendCacheBound(nil, wire.CacheBound{Batch: &b, Reply: &r}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("double cache-bound envelope: err = %v", err)
	}
	if _, err := enc.AppendSourceBound(nil, wire.SourceBound{}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty source-bound envelope: err = %v", err)
	}
}

// TestVarintEdgeCases pins the length-prefix/field encoding at the extremes:
// 0, 1, the full uint64 range, and the rejection rules past it.
func TestVarintEdgeCases(t *testing.T) {
	// Round-trip extremes through a real message field (Refresh.Version).
	for _, v := range []uint64{0, 1, 127, 128, 1<<32 - 1, math.MaxUint64} {
		var enc Encoder
		b := wire.RefreshBatch{Refreshes: []wire.Refresh{{SourceID: "s", ObjectID: "o", Version: v}}}
		frame := enc.AppendBatch(nil, b)
		got, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound()
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if got.Batch.Refreshes[0].Version != v {
			t.Errorf("version %d round-tripped to %d", v, got.Batch.Refreshes[0].Version)
		}
	}

	// A length prefix of exactly max uint64 must be rejected as oversized,
	// not wrapped or allocated.
	frame := append([]byte{KindBatch}, binary.AppendUvarint(nil, math.MaxUint64)...)
	if _, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("max-uint64 length: err = %v, want ErrFrameTooLarge", err)
	}

	// An 11-byte (over-long) length prefix is malformed.
	over := append([]byte{KindBatch}, bytes.Repeat([]byte{0x80}, 10)...)
	over = append(over, 0x01)
	if _, err := NewDecoder(bytes.NewReader(over)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("over-long length prefix: err = %v, want ErrBadFrame", err)
	}

	// A 10-byte prefix whose top byte overflows uint64 is malformed.
	overflow := append([]byte{KindBatch}, bytes.Repeat([]byte{0xff}, 9)...)
	overflow = append(overflow, 0x02)
	if _, err := NewDecoder(bytes.NewReader(overflow)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("overflowing length prefix: err = %v, want ErrBadFrame", err)
	}

	// cap+1 is rejected, cap itself is not (it fails later, on the missing
	// payload — proving the boundary is exact).
	d := NewDecoder(bytes.NewReader(append([]byte{KindBatch}, binary.AppendUvarint(nil, 1025)...)))
	d.SetMaxFrame(1024)
	if _, err := d.ReadCacheBound(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("cap+1: err = %v, want ErrFrameTooLarge", err)
	}
	d = NewDecoder(bytes.NewReader(append([]byte{KindBatch}, binary.AppendUvarint(nil, 1024)...)))
	d.SetMaxFrame(1024)
	if _, err := d.ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("at-cap truncated frame: err = %v, want ErrBadFrame", err)
	}
}

// TestAllocationBombRejected is the decoder's allocation-bomb regression
// test: a 4-byte frame claiming a 2 GiB body must error out without
// allocating anything sized by the claim.
func TestAllocationBombRejected(t *testing.T) {
	bomb := append([]byte{KindBatch}, binary.AppendUvarint(nil, 2<<30)...) // 2 GiB claim, 6 bytes total
	r := bytes.NewReader(bomb)
	d := NewDecoder(r)
	if _, err := d.ReadCacheBound(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// Steady-state rejection must be allocation-free (nothing proportional
	// to the claimed size — or indeed anything at all — is allocated).
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(bomb)
		d.r.Reset(r)
		if _, err := d.ReadCacheBound(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	if allocs > 0 {
		t.Errorf("rejecting an oversized frame allocated %.1f times per call, want 0", allocs)
	}

	// Same shape one layer down: a small, cap-passing frame claiming 2^31
	// refreshes must be rejected by the element-count check, again without
	// the 100+ GiB allocation the count implies.
	inner := binary.AppendUvarint(nil, 2<<30) // refresh count
	frame := append([]byte{KindBatch}, binary.AppendUvarint(nil, uint64(len(inner)))...)
	frame = append(frame, inner...)
	if _, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile element count: err = %v, want ErrBadFrame", err)
	}

	// And for strings: a claimed 1 MiB object id inside a 32-byte payload.
	inner = binary.AppendUvarint(nil, 1)                    // one refresh
	inner = binary.AppendUvarint(inner, 1<<20)              // SourceID length claim
	inner = append(inner, bytes.Repeat([]byte{'x'}, 28)...) // payload falls far short
	frame = append([]byte{KindBatch}, binary.AppendUvarint(nil, uint64(len(inner)))...)
	frame = append(frame, inner...)
	if _, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile string length: err = %v, want ErrBadFrame", err)
	}
}

// TestTruncatedFramesError walks every prefix of a valid multi-message
// stream: each must produce a clean error (EOF at a frame boundary,
// ErrBadFrame inside one), never a panic or a bogus success.
func TestTruncatedFramesError(t *testing.T) {
	var enc Encoder
	batch := sampleBatch()
	reply := sampleReply()
	full := enc.AppendBatch(nil, batch)
	full = enc.AppendReply(full, reply)
	for n := 0; n < len(full); n++ {
		d := NewDecoder(bytes.NewReader(full[:n]))
		env1, err := d.ReadCacheBound()
		if err == nil {
			// The first frame fit: the second must fail.
			if !reflect.DeepEqual(*env1.Batch, batch) {
				t.Fatalf("prefix %d: first frame decoded wrong", n)
			}
			if _, err2 := d.ReadCacheBound(); err2 == nil {
				t.Fatalf("prefix %d: truncated second frame decoded", n)
			}
		}
	}
}

// TestTrailingGarbageRejected: extra bytes after a message's last field make
// the frame malformed even when every field parsed.
func TestTrailingGarbageRejected(t *testing.T) {
	var enc Encoder
	frame := enc.AppendPoll(nil, samplePoll())
	// Splice one junk byte inside the payload (and fix the length prefix by
	// rebuilding the frame by hand).
	kind := frame[0]
	length, hdr := binary.Uvarint(frame[1:])
	payload := append([]byte(nil), frame[1+hdr:1+hdr+int(length)]...)
	payload = append(payload, 0xEE)
	tampered := append([]byte{kind}, binary.AppendUvarint(nil, uint64(len(payload)))...)
	tampered = append(tampered, payload...)
	if _, err := NewDecoder(bytes.NewReader(tampered)).ReadSourceBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing garbage: err = %v, want ErrBadFrame", err)
	}
}

// TestWrongDirectionRejected: a cache-bound frame on the source-bound reader
// (and vice versa) is a protocol violation, not a silent skip.
func TestWrongDirectionRejected(t *testing.T) {
	var enc Encoder
	batch := enc.AppendBatch(nil, sampleBatch())
	if _, err := NewDecoder(bytes.NewReader(batch)).ReadSourceBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("batch on source-bound reader: err = %v", err)
	}
	poll := enc.AppendPoll(nil, samplePoll())
	if _, err := NewDecoder(bytes.NewReader(poll)).ReadCacheBound(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("poll on cache-bound reader: err = %v", err)
	}
}

// TestEncodeSteadyStateZeroAlloc: after warm-up, encoding into a reused
// buffer through a reused Encoder performs no allocations — the codec's
// core contract.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	var enc Encoder
	batch := sampleBatch()
	fb := sampleFeedback()
	buf := enc.AppendBatch(nil, batch) // warm up scratch + dst
	allocs := testing.AllocsPerRun(100, func() {
		buf = enc.AppendBatch(buf[:0], batch)
		buf = enc.AppendFeedback(buf[:0], fb)
	})
	if allocs > 0 {
		t.Errorf("steady-state encode allocated %.1f times per run, want 0", allocs)
	}
}

// TestFrameRefcount: a pre-encoded frame survives until its last holder
// releases it, and the pooled buffer is reused afterwards.
func TestFrameRefcount(t *testing.T) {
	rs := sampleBatch().Refreshes
	f := NewBatchFrame(rs, 42)
	f.Retain()
	want := append([]byte(nil), f.Bytes()...)
	f.Release()
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatal("frame bytes changed while a reference was held")
	}
	got, err := NewDecoder(bytes.NewReader(f.Bytes())).ReadCacheBound()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Batch.Refreshes, rs) {
		t.Errorf("frame decode mismatch:\n got %+v\nwant %+v", got.Batch.Refreshes, rs)
	}
	f.Release()
	if raceEnabled {
		return // AllocsPerRun counts race-detector instrumentation
	}
	// Steady-state: building and releasing frames is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		f := NewBatchFrame(rs, 42)
		f.Release()
	})
	if allocs > 0 {
		t.Errorf("pooled frame encode allocated %.1f times per run, want 0", allocs)
	}
}

// TestNonMinimalVarintAccepted: decoders accept padded (non-minimal) varint
// encodings — decode(encode(decode(x))) is identity even when encode(x)
// re-canonicalizes.
func TestNonMinimalVarintAccepted(t *testing.T) {
	var enc Encoder
	frame := enc.AppendPoll(nil, wire.Poll{CacheID: "c", SentUnix: 1})
	// Re-encode the frame's length prefix non-minimally: 0x80|v, 0x00.
	length, hdr := binary.Uvarint(frame[1:])
	if length >= 0x80 {
		t.Fatalf("test assumes a short frame, got length %d", length)
	}
	padded := append([]byte{frame[0]}, byte(0x80|length), 0x00)
	padded = append(padded, frame[1+hdr:]...)
	got, err := NewDecoder(bytes.NewReader(padded)).ReadSourceBound()
	if err != nil {
		t.Fatalf("padded length prefix rejected: %v", err)
	}
	if got.Poll == nil || got.Poll.CacheID != "c" {
		t.Errorf("got %+v", got)
	}
}
