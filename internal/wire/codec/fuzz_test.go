package codec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bestsync/internal/wire"
)

// decodeAll drains a stream through both direction readers, returning every
// successfully decoded envelope. Any error ends the drain (the transport
// contract: decode errors are terminal).
func decodeAll(t *testing.T, data []byte, sourceBound bool) (envs []any, err error) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(data))
	for {
		var env any
		if sourceBound {
			env, err = d.ReadSourceBound()
		} else {
			env, err = d.ReadCacheBound()
		}
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("decode error outside the documented set: %v", err)
			}
			return envs, err
		}
		envs = append(envs, env)
	}
}

// reencode encodes a decoded envelope back to frame bytes.
func reencode(t *testing.T, env any) []byte {
	t.Helper()
	var enc Encoder
	var out []byte
	var err error
	switch e := env.(type) {
	case wire.CacheBound:
		out, err = enc.AppendCacheBound(nil, e)
	case wire.SourceBound:
		out, err = enc.AppendSourceBound(nil, e)
	default:
		t.Fatalf("unexpected envelope type %T", env)
	}
	if err != nil {
		t.Fatalf("re-encoding a decoded envelope failed: %v", err)
	}
	return out
}

// FuzzDecodeEnvelope feeds arbitrary bytes to both direction decoders. The
// properties under test: the decoder never panics, never returns an error
// outside {io.EOF, ErrBadFrame, ErrFrameTooLarge}, and anything it DOES
// decode survives a canonical re-encode → decode round trip unchanged
// (decode ∘ encode ∘ decode = decode, even for non-minimal varint inputs).
func FuzzDecodeEnvelope(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sourceBound := range []bool{false, true} {
			envs, _ := decodeAll(t, data, sourceBound)
			for _, env := range envs {
				canonical := reencode(t, env)
				again, err := decodeAll(t, canonical, sourceBound)
				if err != io.EOF || len(again) != 1 {
					t.Fatalf("canonical re-encode failed to decode: %v (%d envelopes)", err, len(again))
				}
				// Compare via the canonical encoding (bit-exact even for
				// NaN floats, where DeepEqual's == would disagree).
				if again2 := reencode(t, again[0]); !bytes.Equal(canonical, again2) {
					t.Fatalf("decode∘encode∘decode drifted:\n first %+v\nsecond %+v", env, again[0])
				}
			}
		}
	})
}

// seedCorpus adds one valid frame of every kind plus classic hostile shapes;
// the same seeds are checked into testdata/fuzz/FuzzDecodeEnvelope (written
// by TestWriteSeedCorpus -update-golden) so the corpus replays in plain
// `go test` runs too.
func seedCorpus(f *testing.F) {
	for _, seed := range seedInputs() {
		f.Add(seed)
	}
}

func seedInputs() [][]byte {
	var enc Encoder
	batch := sampleBatch()
	reply := sampleReply()
	fb := sampleFeedback()
	poll := samplePoll()
	full := enc.AppendBatch(nil, batch)
	return [][]byte{
		enc.AppendHello(nil, wire.Hello{SourceID: "s1"}),
		enc.AppendBatch(nil, batch),
		enc.AppendReply(nil, reply),
		enc.AppendFeedback(nil, fb),
		enc.AppendPoll(nil, poll),
		// Two frames back to back.
		enc.AppendFeedback(enc.AppendPoll(nil, poll), fb),
		// Hostile shapes: truncation, oversized length, hostile counts, junk.
		full[:len(full)/2],
		{KindBatch, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		{KindBatch, 0x02, 0xff, 0xff},
		{0x00},
		{Magic, Version},
		bytes.Repeat([]byte{0xa5}, 64),
		// Hybrid-policy optional trailing fields: a capability-bearing hello
		// and a reply carrying a pushed set (appended — earlier seed indices
		// stay stable).
		enc.AppendHello(nil, sampleHelloCoop()),
		enc.AppendReply(nil, sampleHybridReply()),
		// Peer-face trailing segments: a reply with per-item provenance and
		// a poll with known-version hints (appended, same rule).
		enc.AppendReply(nil, samplePeerReply()),
		enc.AppendPoll(nil, samplePeerPoll()),
	}
}

// TestWriteSeedCorpus (with -update-golden) materializes the seed inputs as
// native Go fuzz corpus files, so `go test` replays them even without -fuzz
// and the hostile shapes are pinned in the repository.
func TestWriteSeedCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("corpus writer; run with -update-golden")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeEnvelope")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// fuzzRefresh builds a Refresh from fuzz-controlled primitives.
func fuzzRefresh(source, object, cache, origin, via string, hops int, oe int64, ov uint64,
	value float64, version uint64, epoch int64, threshold float64, sent int64) wire.Refresh {
	r := wire.Refresh{
		SourceID: source, ObjectID: object, CacheID: cache, Origin: origin,
		Hops: hops, OriginEpoch: oe, OriginVersion: ov,
		Value: value, Version: version, Epoch: epoch, Threshold: threshold, SentUnix: sent,
	}
	if via != "" {
		r.Via = []string{via, via + "'"}
	}
	return r
}

// equalRefresh compares refreshes with bit-exact float semantics, so NaN
// payloads round-tripping to NaN count as equal.
func equalRefresh(a, b wire.Refresh) bool {
	a.Value, b.Value = 0, 0
	a.Threshold, b.Threshold = 0, 0
	av, bv := a, b
	return reflect.DeepEqual(av, bv)
}

// FuzzRoundTrip: encode ∘ decode is the identity on structured messages,
// for arbitrary field values including NaN/Inf floats, empty and non-UTF-8
// strings, and extreme integers.
func FuzzRoundTrip(f *testing.F) {
	f.Add("s1", "s1/obj", "edge", "origin", "relay", 3, int64(7), uint64(9),
		1.5, uint64(2), int64(4), 0.25, int64(99), true, false)
	f.Add("", "", "", "", "", 0, int64(0), uint64(0),
		math.Inf(1), uint64(math.MaxUint64), int64(math.MinInt64), math.NaN(), int64(-1), false, true)
	f.Add("\xff\xfe", "obj\x00id", "", "", "", -5, int64(-3), uint64(1),
		-0.0, uint64(1), int64(1), 2.5, int64(math.MaxInt64), true, true)
	f.Fuzz(func(t *testing.T, source, object, cache, origin, via string, hops int, oe int64, ov uint64,
		value float64, version uint64, epoch int64, threshold float64, sent int64, all, exists bool) {
		var enc Encoder

		r := fuzzRefresh(source, object, cache, origin, via, hops, oe, ov, value, version, epoch, threshold, sent)
		batch := wire.RefreshBatch{Refreshes: []wire.Refresh{r, r}, SentUnix: sent}
		got, err := NewDecoder(bytes.NewReader(enc.AppendBatch(nil, batch))).ReadCacheBound()
		if err != nil {
			t.Fatalf("decoding an encoded batch: %v", err)
		}
		if got.Batch == nil || len(got.Batch.Refreshes) != 2 || got.Batch.SentUnix != sent {
			t.Fatalf("batch shape lost: %+v", got.Batch)
		}
		for i, gr := range got.Batch.Refreshes {
			if !equalRefresh(gr, r) ||
				math.Float64bits(gr.Value) != math.Float64bits(r.Value) ||
				math.Float64bits(gr.Threshold) != math.Float64bits(r.Threshold) {
				t.Fatalf("refresh %d drifted:\n got %+v\nwant %+v", i, gr, r)
			}
		}

		reply := wire.PollReply{SourceID: source, All: all, SentUnix: sent, Items: []wire.PollItem{
			{ObjectID: object, Exists: exists, Value: value, Version: version, Epoch: epoch, LastModifiedUnix: oe},
		}}
		if via != "" {
			reply.Pushed = []string{via, object}
		}
		if origin != "" {
			// Peer-face provenance on the item (with via != "" this also
			// exercises pushed-set + provenance segments together).
			reply.Items[0].Origin = origin
			reply.Items[0].Hops = hops
			reply.Items[0].OriginEpoch = oe
			reply.Items[0].OriginVersion = ov
			if via != "" {
				reply.Items[0].Via = []string{via}
			}
		}
		gotR, err := NewDecoder(bytes.NewReader(enc.AppendReply(nil, reply))).ReadCacheBound()
		if err != nil {
			t.Fatalf("decoding an encoded reply: %v", err)
		}
		it, want := gotR.Reply.Items[0], reply.Items[0]
		if gotR.Reply.SourceID != reply.SourceID || gotR.Reply.All != reply.All ||
			it.ObjectID != want.ObjectID || it.Exists != want.Exists ||
			math.Float64bits(it.Value) != math.Float64bits(want.Value) ||
			it.Version != want.Version || it.Epoch != want.Epoch ||
			it.LastModifiedUnix != want.LastModifiedUnix ||
			it.Origin != want.Origin || it.Hops != want.Hops ||
			it.OriginEpoch != want.OriginEpoch || it.OriginVersion != want.OriginVersion ||
			!reflect.DeepEqual(it.Via, want.Via) ||
			!reflect.DeepEqual(gotR.Reply.Pushed, reply.Pushed) {
			t.Fatalf("reply drifted:\n got %+v\nwant %+v", gotR.Reply, reply)
		}

		hello := wire.Hello{SourceID: source, Capabilities: version}
		frame := enc.AppendHello(nil, hello)
		gotH, err := NewDecoder(bytes.NewReader(frame)).ReadHello()
		if err != nil {
			t.Fatalf("decoding an encoded hello: %v", err)
		}
		if gotH != hello {
			t.Fatalf("hello drifted:\n got %+v\nwant %+v", gotH, hello)
		}

		fb := wire.Feedback{CacheID: cache, SentUnix: sent}
		if object != "" {
			fb.Held = []wire.HeldVersion{{ObjectID: object, Epoch: epoch, Version: version}}
		}
		gotF, err := NewDecoder(bytes.NewReader(enc.AppendFeedback(nil, fb))).ReadSourceBound()
		if err != nil {
			t.Fatalf("decoding an encoded feedback: %v", err)
		}
		if !reflect.DeepEqual(*gotF.Feedback, fb) {
			t.Fatalf("feedback drifted:\n got %+v\nwant %+v", gotF.Feedback, fb)
		}

		poll := wire.Poll{CacheID: cache, SentUnix: sent}
		if object != "" || source != "" {
			poll.ObjectIDs = []string{object, source}
		}
		if origin != "" {
			poll.Known = []wire.KnownVersion{{ObjectID: object, Origin: origin, Epoch: oe, Version: ov}}
		}
		gotP, err := NewDecoder(bytes.NewReader(enc.AppendPoll(nil, poll))).ReadSourceBound()
		if err != nil {
			t.Fatalf("decoding an encoded poll: %v", err)
		}
		if !reflect.DeepEqual(*gotP.Poll, poll) {
			t.Fatalf("poll drifted:\n got %+v\nwant %+v", gotP.Poll, poll)
		}
	})
}
