package codec

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bestsync/internal/wire"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden frames from the current encoder")

// goldenCases pins the canonical encoding of every message type. The sample
// values exercise every field (provenance, held versions, negative epochs,
// discovery polls), so ANY change to the wire format — field order, varint
// rules, frame headers — fails these tests instead of silently producing
// frames old daemons misparse. Bumping the format requires bumping
// codec.Version and regenerating with -update-golden, consciously.
var goldenCases = []struct {
	file   string
	encode func(*Encoder) []byte
	decode func(*Decoder) (any, error)
	want   any
}{
	{
		file:   "hello.bin",
		encode: func(e *Encoder) []byte { return e.AppendHello(nil, wire.Hello{SourceID: "src-7"}) },
		decode: func(d *Decoder) (any, error) { return d.ReadHello() },
		want:   wire.Hello{SourceID: "src-7"},
	},
	{
		file:   "refresh_batch.bin",
		encode: func(e *Encoder) []byte { return e.AppendBatch(nil, sampleBatch()) },
		decode: func(d *Decoder) (any, error) { return d.ReadCacheBound() },
		want:   func() any { b := sampleBatch(); return wire.CacheBound{Batch: &b} }(),
	},
	{
		file:   "poll_reply.bin",
		encode: func(e *Encoder) []byte { return e.AppendReply(nil, sampleReply()) },
		decode: func(d *Decoder) (any, error) { return d.ReadCacheBound() },
		want:   func() any { r := sampleReply(); return wire.CacheBound{Reply: &r} }(),
	},
	{
		file:   "feedback.bin",
		encode: func(e *Encoder) []byte { return e.AppendFeedback(nil, sampleFeedback()) },
		decode: func(d *Decoder) (any, error) { return d.ReadSourceBound() },
		want:   func() any { fb := sampleFeedback(); return wire.SourceBound{Feedback: &fb} }(),
	},
	{
		file:   "poll.bin",
		encode: func(e *Encoder) []byte { return e.AppendPoll(nil, samplePoll()) },
		decode: func(d *Decoder) (any, error) { return d.ReadSourceBound() },
		want:   func() any { p := samplePoll(); return wire.SourceBound{Poll: &p} }(),
	},
	{
		// A discovery poll (empty object list) and an empty batch pin the
		// zero-count encodings.
		file:   "poll_discovery.bin",
		encode: func(e *Encoder) []byte { return e.AppendPoll(nil, wire.Poll{CacheID: "edge-a"}) },
		decode: func(d *Decoder) (any, error) { return d.ReadSourceBound() },
		want:   func() any { p := wire.Poll{CacheID: "edge-a"}; return wire.SourceBound{Poll: &p} }(),
	},
	{
		// The optional trailing capability bits (hybrid cooperation
		// advertisement). hello.bin above pins that their ABSENCE keeps the
		// legacy encoding.
		file:   "hello_coop.bin",
		encode: func(e *Encoder) []byte { return e.AppendHello(nil, sampleHelloCoop()) },
		decode: func(d *Decoder) (any, error) { return d.ReadHello() },
		want:   sampleHelloCoop(),
	},
	{
		// The optional trailing pushed-set segment on a hybrid poll reply.
		file:   "poll_reply_hybrid.bin",
		encode: func(e *Encoder) []byte { return e.AppendReply(nil, sampleHybridReply()) },
		decode: func(d *Decoder) (any, error) { return d.ReadCacheBound() },
		want:   func() any { r := sampleHybridReply(); return wire.CacheBound{Reply: &r} }(),
	},
	{
		// The trailing per-item provenance segment (peer-capable answerer),
		// preceded by the explicit zero-count pushed segment.
		file:   "poll_reply_peer.bin",
		encode: func(e *Encoder) []byte { return e.AppendReply(nil, samplePeerReply()) },
		decode: func(d *Decoder) (any, error) { return d.ReadCacheBound() },
		want:   func() any { r := samplePeerReply(); return wire.CacheBound{Reply: &r} }(),
	},
	{
		// The trailing known-version hint segment on a targeted poll.
		file:   "poll_known.bin",
		encode: func(e *Encoder) []byte { return e.AppendPoll(nil, samplePeerPoll()) },
		decode: func(d *Decoder) (any, error) { return d.ReadSourceBound() },
		want:   func() any { p := samplePeerPoll(); return wire.SourceBound{Poll: &p} }(),
	},
}

// TestGoldenFrames: the encoder must reproduce the checked-in frames
// byte-for-byte, and the checked-in frames must decode to the expected
// structs — cross-version daemons depend on both directions holding.
func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.file)
			var enc Encoder
			got := tc.encode(&enc)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden frame (run with -update-golden after an INTENTIONAL format change): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from the golden frame:\n got %x\nwant %x\n"+
					"this breaks cross-version daemons; if intentional, bump codec.Version and regenerate with -update-golden", got, want)
			}
			d := NewDecoder(bytes.NewReader(want))
			env, err := tc.decode(d)
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(env, tc.want) {
				t.Fatalf("golden frame decoded to:\n %+v\nwant\n %+v", env, tc.want)
			}
			if _, err := d.ReadHello(); err != io.EOF {
				t.Fatalf("trailing bytes after the golden frame: %v", err)
			}
		})
	}
}
