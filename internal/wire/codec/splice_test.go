package codec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bestsync/internal/wire"
)

// samplePatch is the per-hop patch the splice tests apply.
func samplePatch() ForwardPatch {
	return ForwardPatch{SourceID: "relay-2", Epoch: 1700000002000, Threshold: 0.5, SentUnix: 4242}
}

// checkSpliceDifferential asserts the tentpole contract on one (frame, keep
// mask) pair: SpliceForward's bytes equal NewBatchFrame over PatchForward's
// decoded patch, and the spliced frame itself re-parses (a second-tier relay
// can splice a first tier's splice).
func checkSpliceDifferential(t *testing.T, frame []byte, keep []bool, versions []uint64, p ForwardPatch) {
	t.Helper()
	view, err := ParseBatchFrame(frame)
	if err != nil {
		t.Fatalf("ParseBatchFrame: %v", err)
	}
	defer view.Release()
	env, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound()
	if err != nil || env.Batch == nil {
		t.Fatalf("decoding the parseable frame: %v", err)
	}
	if view.Len() != len(env.Batch.Refreshes) || view.SentUnix != env.Batch.SentUnix {
		t.Fatalf("view shape (%d items, sent %d) disagrees with decode (%d, %d)",
			view.Len(), view.SentUnix, len(env.Batch.Refreshes), env.Batch.SentUnix)
	}
	spliced := SpliceForward(view, keep, versions, p)
	defer spliced.Release()
	patched := PatchForward(env.Batch.Refreshes, keep, versions, p)
	want := NewBatchFrame(patched, p.SentUnix)
	defer want.Release()
	if !bytes.Equal(spliced.Bytes(), want.Bytes()) {
		t.Fatalf("spliced frame differs from decode→patch→re-encode:\n got %x\nwant %x", spliced.Bytes(), want.Bytes())
	}
	v2, err := ParseBatchFrame(spliced.Bytes())
	if err != nil {
		t.Fatalf("spliced frame does not re-parse: %v", err)
	}
	v2.Release()
}

func TestSpliceForwardDifferential(t *testing.T) {
	var enc Encoder
	relayed := sampleRefresh()                                                                 // origin + via + explicit axis
	direct := wire.Refresh{SourceID: "s1", ObjectID: "s1/x", Value: 1.5, Version: 9, Epoch: 3} // empty origin, direct axis
	hostileHops := wire.Refresh{SourceID: "s2", ObjectID: "s2/y", Hops: 1,
		Via: []string{"a", "b", "c"}, Value: math.NaN(), Version: 2, Epoch: -7, SentUnix: -1}
	batches := map[string]wire.RefreshBatch{
		"mixed":   {Refreshes: []wire.Refresh{relayed, direct}, SentUnix: 42},
		"direct":  {Refreshes: []wire.Refresh{direct, direct, direct}, SentUnix: -9},
		"hostile": {Refreshes: []wire.Refresh{hostileHops, relayed}, SentUnix: 0},
		"empty":   {SentUnix: 17},
	}
	for name, b := range batches {
		frame := enc.AppendBatch(nil, b)
		n := len(b.Refreshes)
		masks := [][]bool{make([]bool, n)}
		all := make([]bool, n)
		for i := range all {
			all[i] = true
		}
		masks = append(masks, all)
		for i := 0; i < n; i++ {
			m := make([]bool, n)
			m[i] = true
			masks = append(masks, m)
		}
		versions := make([]uint64, n)
		for i := range versions {
			versions[i] = uint64(1000 + i)
		}
		for mi, keep := range masks {
			t.Run(fmt.Sprintf("%s/mask-%d", name, mi), func(t *testing.T) {
				checkSpliceDifferential(t, frame, keep, versions, samplePatch())
			})
		}
	}
}

// TestSplicedFrameDecodes pins the semantic half of the contract: a leaf
// decoding the spliced frame sees exactly the refreshes the fallback path
// would have sent (relay stamp, hop bump, appended path, preserved axis).
func TestSplicedFrameDecodes(t *testing.T) {
	var enc Encoder
	b := sampleBatch()
	frame := enc.AppendBatch(nil, b)
	view, err := ParseBatchFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	keep := []bool{true, true}
	versions := []uint64{100, 7}
	p := samplePatch()
	spliced := SpliceForward(view, keep, versions, p)
	defer spliced.Release()
	env, err := NewDecoder(bytes.NewReader(spliced.Bytes())).ReadCacheBound()
	if err != nil {
		t.Fatalf("decoding the spliced frame: %v", err)
	}
	want := PatchForward(b.Refreshes, keep, versions, p)
	if !reflect.DeepEqual(env.Batch.Refreshes, want) {
		t.Fatalf("spliced frame decoded to:\n %+v\nwant\n %+v", env.Batch.Refreshes, want)
	}
	if env.Batch.SentUnix != p.SentUnix {
		t.Fatalf("spliced batch SentUnix = %d, want %d", env.Batch.SentUnix, p.SentUnix)
	}
	// Spot-check the per-hop patch on the relayed item.
	r := env.Batch.Refreshes[0]
	in := b.Refreshes[0]
	if r.SourceID != p.SourceID || r.Origin != in.Origin || r.Hops != in.Hops+1 ||
		r.OriginEpoch != in.OriginEpoch || r.OriginVersion != in.OriginVersion ||
		r.Version != 100 || r.Epoch != p.Epoch || r.CacheID != "" {
		t.Fatalf("per-hop patch wrong: %+v", r)
	}
	if wantVia := append(append([]string{}, in.Via...), p.SourceID); !reflect.DeepEqual(r.Via, wantVia) {
		t.Fatalf("via = %v, want %v", r.Via, wantVia)
	}
	// The direct item's origin axis must materialize from the sender axis.
	d := env.Batch.Refreshes[1]
	if d.Origin != b.Refreshes[1].SourceID || d.OriginEpoch != b.Refreshes[1].Epoch ||
		d.OriginVersion != b.Refreshes[1].Version {
		t.Fatalf("direct item's origin axis not preserved: %+v", d)
	}
}

// TestParseBatchFrameRejectsNonCanonical: a frame using a legal but
// non-minimal varint on a copied span decodes fine but is splice-ineligible.
func TestParseBatchFrameRejectsNonCanonical(t *testing.T) {
	// One minimal refresh, but SourceID's length prefix (1) encoded in two
	// bytes (0x81 0x00) — legal LEB128, not canonical.
	payload := []byte{
		0x01,            // count
		0x81, 0x00, 'a', // SourceID "a", non-minimal length prefix
		0x01, 'b', // ObjectID "b"
		0x00,       // CacheID ""
		0x00,       // Origin ""
		0x00,       // Hops 0
		0x00,       // Via count 0
		0x00, 0x00, // OriginEpoch, OriginVersion
		0, 0, 0, 0, 0, 0, 0, 0, // Value
		0x00, 0x00, // Version, Epoch
		0, 0, 0, 0, 0, 0, 0, 0, // Threshold
		0x00, // SentUnix
		0x00, // batch SentUnix
	}
	frame := append([]byte{KindBatch, byte(len(payload))}, payload...)
	if _, err := ParseBatchFrame(frame); !errors.Is(err, ErrNonCanonical) {
		t.Fatalf("ParseBatchFrame = %v, want ErrNonCanonical", err)
	}
	env, err := NewDecoder(bytes.NewReader(frame)).ReadCacheBound()
	if err != nil || env.Batch == nil || env.Batch.Refreshes[0].SourceID != "a" {
		t.Fatalf("the decoder must still accept the non-canonical frame: %v %+v", err, env.Batch)
	}
}

func TestParseBatchFrameRejectsNonBatch(t *testing.T) {
	var enc Encoder
	for _, frame := range [][]byte{
		nil,
		enc.AppendHello(nil, wire.Hello{SourceID: "s1"}),
		enc.AppendReply(nil, sampleReply()),
		enc.AppendBatch(nil, sampleBatch())[:5], // truncated
		{KindBatch, 0x05, 0x00, 0x00},           // length prefix ≠ payload
	} {
		if _, err := ParseBatchFrame(frame); err == nil {
			t.Fatalf("ParseBatchFrame accepted %x", frame)
		}
	}
}

// TestReadCacheBoundRetained: the retained frame is byte-identical to the
// inbound one (for canonical input), independent of the decoder's reused
// buffer, and reply envelopes carry no frame.
func TestReadCacheBoundRetained(t *testing.T) {
	var enc Encoder
	frame := enc.AppendBatch(nil, sampleBatch())
	stream := enc.AppendReply(append([]byte{}, frame...), sampleReply())
	d := NewDecoder(bytes.NewReader(stream))
	env, f, err := d.ReadCacheBoundRetained()
	if err != nil || env.Batch == nil || f == nil {
		t.Fatalf("retained batch read: %v (frame %v)", err, f)
	}
	got := append([]byte{}, f.Bytes()...)
	f.Release()
	if !bytes.Equal(got, frame) {
		t.Fatalf("retained frame drifted:\n got %x\nwant %x", got, frame)
	}
	env2, f2, err := d.ReadCacheBoundRetained()
	if err != nil || env2.Reply == nil || f2 != nil {
		t.Fatalf("reply must carry a nil frame: %v %v", err, f2)
	}
	if _, _, err := d.ReadCacheBoundRetained(); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

// TestGoldenSplicedFrame pins the spliced encoding the same way
// testdata/golden pins every other frame: regenerating it requires a
// conscious -update-golden run.
func TestGoldenSplicedFrame(t *testing.T) {
	var enc Encoder
	inbound := enc.AppendBatch(nil, sampleBatch())
	view, err := ParseBatchFrame(inbound)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	spliced := SpliceForward(view, []bool{true, true}, []uint64{100, 7}, samplePatch())
	defer spliced.Release()
	got := spliced.Bytes()

	path := filepath.Join("testdata", "golden", "spliced_batch.bin")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden frame (run with -update-golden after an INTENTIONAL format change): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spliced encoding drifted from the golden frame:\n got %x\nwant %x", got, want)
	}
}

// spliceSeedInputs are the committed FuzzSpliceForward seeds: valid frames
// under interesting masks plus the hostile shapes the raw-bytes path must
// shrug off.
func spliceSeedInputs() []struct {
	data       []byte
	mask, seed uint64
} {
	var enc Encoder
	direct := wire.Refresh{SourceID: "s1", ObjectID: "s1/x", Value: 1.5, Version: 9, Epoch: 3}
	mixed := enc.AppendBatch(nil, sampleBatch())
	directs := enc.AppendBatch(nil, wire.RefreshBatch{Refreshes: []wire.Refresh{direct, direct}, SentUnix: 7})
	empty := enc.AppendBatch(nil, wire.RefreshBatch{SentUnix: 1})
	return []struct {
		data       []byte
		mask, seed uint64
	}{
		{mixed, 3, 1},
		{mixed, 1, 8}, // long relay id: multi-byte string length prefix
		{mixed, 0, 2},
		{directs, 2, 3},
		{empty, 1, 4},
		{mixed[:len(mixed)/2], 3, 5},                // truncated
		{bytes.Repeat([]byte{0xa5}, 40), 1, 6},      // junk
		{[]byte{KindBatch, 0x02, 0xff, 0xff}, 1, 7}, // hostile count
	}
}

// TestWriteSpliceSeedCorpus (with -update-golden) materializes the splice
// fuzz seeds as native corpus files, replayed by plain `go test`.
func TestWriteSpliceSeedCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("corpus writer; run with -update-golden")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSpliceForward")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range spliceSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nuint64(%d)\nuint64(%d)\n",
			seed.data, seed.mask, seed.seed)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzSpliceForward is the differential harness pinning the tentpole
// contract: for ANY frame ParseBatchFrame accepts and ANY skip mask, the
// spliced output is byte-identical to the decode→patch→re-encode reference.
// Frames the parser rejects (malformed, non-canonical) are the fallback
// path's business and out of scope here.
func FuzzSpliceForward(f *testing.F) {
	for _, seed := range spliceSeedInputs() {
		f.Add(seed.data, seed.mask, seed.seed)
	}
	f.Fuzz(func(t *testing.T, data []byte, mask, seed uint64) {
		view, err := ParseBatchFrame(data)
		if err != nil {
			return // splice-ineligible: the runtime falls back to decode→re-encode
		}
		defer view.Release()
		env, err := NewDecoder(bytes.NewReader(data)).ReadCacheBound()
		if err != nil || env.Batch == nil {
			t.Fatalf("ParseBatchFrame accepted a frame the decoder rejects: %v", err)
		}
		rs := env.Batch.Refreshes
		if view.Len() != len(rs) || view.SentUnix != env.Batch.SentUnix {
			t.Fatalf("view shape (%d, %d) disagrees with decode (%d, %d)",
				view.Len(), view.SentUnix, len(rs), env.Batch.SentUnix)
		}
		keep := make([]bool, len(rs))
		versions := make([]uint64, len(rs))
		for i := range rs {
			keep[i] = mask&(1<<(uint(i)%64)) != 0
			versions[i] = seed*31 + uint64(i)
		}
		relayID := fmt.Sprintf("relay-%d", seed%7)
		if seed&8 != 0 {
			relayID = strings.Repeat("R", 130) // multi-byte string length prefix
		}
		p := ForwardPatch{
			SourceID:  relayID,
			Epoch:     int64(seed)*-3 + 11,
			Threshold: float64(seed%100) / 7,
			SentUnix:  int64(seed) - 12345,
		}
		spliced := SpliceForward(view, keep, versions, p)
		defer spliced.Release()
		want := NewBatchFrame(PatchForward(rs, keep, versions, p), p.SentUnix)
		defer want.Release()
		if !bytes.Equal(spliced.Bytes(), want.Bytes()) {
			t.Fatalf("spliced frame differs from decode→patch→re-encode:\n got %x\nwant %x",
				spliced.Bytes(), want.Bytes())
		}
		if v2, err := ParseBatchFrame(spliced.Bytes()); err != nil {
			t.Fatalf("spliced frame does not re-parse: %v", err)
		} else {
			v2.Release()
		}
	})
}
