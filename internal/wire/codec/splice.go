// Splice forwarding: relay-side frame pass-through. A relay that received a
// binary RefreshBatch frame and wants to re-export (a subset of) its items
// does not need to re-serialize them — most bytes of a forwarded refresh are
// identical to the inbound ones. ParseBatchFrame indexes a received frame
// into per-item byte ranges without materializing a single string, and
// AppendSpliced/SpliceForward assemble the outgoing frame by copying the
// invariant spans verbatim (object id, origin, via prefix, origin axis,
// value) and patching only the per-hop fields: the relay's SourceID stamp,
// Hops+1, Via append-self, and the relay's own Version/Epoch/Threshold/
// SentUnix. The contract — pinned by FuzzSpliceForward — is byte-identity:
// the spliced frame equals what decode → patch (PatchForward) →
// NewBatchFrame would produce for the same keep mask.
//
// Byte-identity only holds when the copied inbound spans are canonically
// encoded (minimal-length varints), which everything this codec's own
// encoder emits is. ParseBatchFrame therefore rejects non-canonical
// encodings on every copied span with ErrNonCanonical; callers treat that
// (like any parse error) as "fall back to the decode→re-encode path", never
// as a protocol error.
package codec

import (
	"encoding/binary"
	"errors"
	"sync"

	"bestsync/internal/wire"
)

// ErrNonCanonical reports an inbound frame whose copied spans use
// non-minimal varint encodings: legal to DECODE, but splicing them verbatim
// would break byte-identity with a fresh encode. Callers fall back to the
// decode→re-encode path.
var ErrNonCanonical = errors.New("codec: non-canonical encoding, splice ineligible")

// spliceItem records one refresh's byte ranges inside a batch payload. All
// offsets index the BatchView's payload slice; spans that are copied into
// the forwarded frame include their length prefixes.
type spliceItem struct {
	srcOff, srcEnd       int32 // SourceID string incl. length prefix
	objOff, objEnd       int32 // ObjectID string incl. length prefix
	originOff, originEnd int32 // Origin string incl. length prefix
	viaOff, viaEnd       int32 // Via elements (excl. the count prefix)
	axisOff, axisEnd     int32 // OriginEpoch varint + OriginVersion uvarint
	valOff               int32 // 8-byte little-endian value
	viaCount             int32
	hops                 int64
	originEmpty          bool   // Origin == "": forwarded Origin is the SourceID span
	axisDirect           bool   // OriginEpoch == 0: forwarded axis is (Epoch, Version)
	epoch                int64  // decoded Epoch (axis synthesis when axisDirect)
	version              uint64 // decoded Version (axis synthesis when axisDirect)
}

// BatchView is a lazily indexed view over one binary RefreshBatch frame:
// per-item byte ranges plus the handful of decoded integers splicing needs.
// It holds no reference of its own — the caller must keep the underlying
// Frame retained for the view's lifetime — and is pooled: Release it when
// done.
type BatchView struct {
	b        []byte // payload bytes (aliases the parsed frame)
	items    []spliceItem
	SentUnix int64
}

var batchViewPool = sync.Pool{New: func() any { return &BatchView{} }}

// Len returns the number of items in the viewed batch.
func (v *BatchView) Len() int { return len(v.items) }

// Release returns the view to its pool. The view must not be used after.
func (v *BatchView) Release() {
	v.b = nil
	v.items = v.items[:0]
	batchViewPool.Put(v)
}

// uvarintLen returns the canonical (minimal) encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the canonical encoded length of zigzag-folded v.
func varintLen(v int64) int {
	return uvarintLen(uint64(v<<1) ^ uint64(v>>63))
}

// spanCursor walks a payload tracking offsets, rejecting non-canonical
// varints (see ErrNonCanonical) so every span it delimits can be copied
// verbatim into a canonically encoded frame.
type spanCursor struct {
	b   []byte
	off int
}

func (c *spanCursor) uvarint() (uint64, error) {
	// Single-byte encodings are canonical by construction and the common
	// case for the small integers a batch is mostly made of.
	if c.off < len(c.b) {
		if b := c.b[c.off]; b < 0x80 {
			c.off++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, badFrame("truncated or over-long uvarint at offset %d", c.off)
	}
	if n != uvarintLen(v) {
		return 0, ErrNonCanonical
	}
	c.off += n
	return v, nil
}

func (c *spanCursor) varint() (int64, error) {
	if c.off < len(c.b) {
		if b := c.b[c.off]; b < 0x80 {
			c.off++
			return int64(b>>1) ^ -int64(b&1), nil // zigzag unfold
		}
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, badFrame("truncated or over-long varint at offset %d", c.off)
	}
	if n != varintLen(v) {
		return 0, ErrNonCanonical
	}
	c.off += n
	return v, nil
}

// strSpan delimits one length-prefixed string, returning the span including
// its prefix.
func (c *spanCursor) strSpan() (off, end int32, err error) {
	start := c.off
	n, err := c.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if n > uint64(len(c.b)-c.off) {
		return 0, 0, badFrame("string length %d exceeds %d remaining payload bytes", n, len(c.b)-c.off)
	}
	c.off += int(n)
	return int32(start), int32(c.off), nil
}

func (c *spanCursor) skip(n int) error {
	if len(c.b)-c.off < n {
		return badFrame("truncated field at offset %d", c.off)
	}
	c.off += n
	return nil
}

// ParseBatchFrame indexes one complete binary RefreshBatch frame (header
// included, exactly as Frame.Bytes returns it) into a pooled BatchView. No
// strings are materialized. Frames that are not a batch, are malformed, or
// use non-canonical encodings on a copied span return an error; the caller
// falls back to the ordinary decode path.
func ParseBatchFrame(frame []byte) (*BatchView, error) {
	if len(frame) == 0 || frame[0] != KindBatch {
		return nil, badFrame("not a batch frame")
	}
	length, n := binary.Uvarint(frame[1:])
	if n <= 0 || uint64(len(frame)-1-n) != length {
		return nil, badFrame("frame length prefix does not match payload")
	}
	v := batchViewPool.Get().(*BatchView)
	v.b = frame[1+n:]
	c := spanCursor{b: v.b}
	count, err := c.uvarint()
	if err != nil {
		v.Release()
		return nil, err
	}
	if count*minRefreshEnc > uint64(len(v.b)) {
		v.Release()
		return nil, badFrame("element count %d exceeds payload", count)
	}
	if uint64(cap(v.items)) < count {
		v.items = make([]spliceItem, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var it spliceItem
		if it.srcOff, it.srcEnd, err = c.strSpan(); err != nil {
			v.Release()
			return nil, err
		}
		if it.objOff, it.objEnd, err = c.strSpan(); err != nil {
			v.Release()
			return nil, err
		}
		if _, _, err = c.strSpan(); err != nil { // CacheID: re-stamped, span unused
			v.Release()
			return nil, err
		}
		if it.originOff, it.originEnd, err = c.strSpan(); err != nil {
			v.Release()
			return nil, err
		}
		it.originEmpty = it.originEnd-it.originOff == 1
		if it.hops, err = c.varint(); err != nil {
			v.Release()
			return nil, err
		}
		nVia, err := c.uvarint()
		if err != nil {
			v.Release()
			return nil, err
		}
		if nVia > uint64(len(c.b)-c.off) {
			v.Release()
			return nil, badFrame("via count %d exceeds payload", nVia)
		}
		it.viaCount = int32(nVia)
		it.viaOff = int32(c.off)
		for j := uint64(0); j < nVia; j++ {
			if _, _, err = c.strSpan(); err != nil {
				v.Release()
				return nil, err
			}
		}
		it.viaEnd = int32(c.off)
		it.axisOff = int32(c.off)
		oe, err := c.varint()
		if err != nil {
			v.Release()
			return nil, err
		}
		if _, err = c.uvarint(); err != nil { // OriginVersion
			v.Release()
			return nil, err
		}
		it.axisEnd = int32(c.off)
		it.axisDirect = oe == 0
		it.valOff = int32(c.off)
		if err = c.skip(8); err != nil { // Value
			v.Release()
			return nil, err
		}
		if it.version, err = c.uvarint(); err != nil { // Version
			v.Release()
			return nil, err
		}
		if it.epoch, err = c.varint(); err != nil { // Epoch
			v.Release()
			return nil, err
		}
		if err = c.skip(8); err != nil { // Threshold
			v.Release()
			return nil, err
		}
		if _, err = c.varint(); err != nil { // SentUnix
			v.Release()
			return nil, err
		}
		v.items = append(v.items, it)
	}
	sent, err := c.varint()
	if err != nil {
		v.Release()
		return nil, err
	}
	v.SentUnix = sent
	if c.off != len(v.b) {
		v.Release()
		return nil, badFrame("%d trailing bytes after last field", len(v.b)-c.off)
	}
	return v, nil
}

// ForwardPatch is the per-hop patch a relay applies to every forwarded item:
// its own identity (stamped as SourceID and appended to Via), its epoch, the
// outgoing session's threshold, and the forward time.
type ForwardPatch struct {
	SourceID  string
	Epoch     int64
	Threshold float64
	SentUnix  int64
}

// AppendSpliced appends a forwarded RefreshBatch frame to dst: for every
// item i of v with keep[i], the invariant spans are copied verbatim and the
// per-hop fields patched (versions[i] is the relay's canonical version
// counter for the item's object). The result is byte-identical to
// NewBatchFrame(PatchForward(decoded, keep, versions, p), p.SentUnix).
//
// Unlike the general encoders this does not stage the payload in the scratch
// and re-copy it through appendFrame: the per-item spans make the payload
// length exactly computable up front, so after a pure-arithmetic size pass
// the frame is written once, directly into dst. The patch constants —
// SourceID, Epoch, Threshold, SentUnix, identical for every item of the
// batch — are encoded once and copied per item.
func (e *Encoder) AppendSpliced(dst []byte, v *BatchView, keep []bool, versions []uint64, p ForwardPatch) []byte {
	s := appendString(e.scratch[:0], p.SourceID)
	srcEnd := len(s)
	s = appendVarint(s, p.Epoch)
	epochEnd := len(s)
	s = appendF64(s, p.Threshold)
	s = appendVarint(s, p.SentUnix)
	e.scratch = s
	src, epoch, tail := s[:srcEnd], s[srcEnd:epochEnd], s[epochEnd:] // tail = Threshold + SentUnix
	sentLen := len(tail) - 8

	// Size pass.
	b := v.b
	kept, payload := 0, 0
	for i := range v.items {
		if !keep[i] {
			continue
		}
		kept++
		it := &v.items[i]
		n := 2*srcEnd + int(it.objEnd-it.objOff) + 1 + int(it.viaEnd-it.viaOff) +
			uvarintLen(uint64(it.viaCount)+1) + 8 + uvarintLen(versions[i]) +
			(len(s) - srcEnd) // Epoch + Threshold + SentUnix constants
		hops := it.hops
		if int64(it.viaCount) > hops {
			hops = int64(it.viaCount)
		}
		n += varintLen(hops + 1)
		if it.originEmpty {
			n += int(it.srcEnd - it.srcOff)
		} else {
			n += int(it.originEnd - it.originOff)
		}
		if it.axisDirect {
			n += varintLen(it.epoch) + uvarintLen(it.version)
		} else {
			n += int(it.axisEnd - it.axisOff)
		}
		payload += n
	}
	payload += uvarintLen(uint64(kept)) + sentLen // count prefix + batch SentUnix trailer

	// Write pass.
	dst = append(dst, KindBatch)
	dst = appendUvarint(dst, uint64(payload))
	off := len(dst)
	if cap(dst)-off < payload {
		grown := make([]byte, off, off+payload)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+payload]
	w := dst[off:]
	n := binary.PutUvarint(w, uint64(kept))
	for i := range v.items {
		if !keep[i] {
			continue
		}
		it := &v.items[i]
		n += copy(w[n:], src)                    // SourceID: relay stamp
		n += copy(w[n:], b[it.objOff:it.objEnd]) // ObjectID verbatim
		w[n] = 0x00                              // CacheID "": shared frames are unaddressed
		n++
		if it.originEmpty { // Origin: inbound OriginID()
			n += copy(w[n:], b[it.srcOff:it.srcEnd])
		} else {
			n += copy(w[n:], b[it.originOff:it.originEnd])
		}
		hops := it.hops // depth = max(declared, path length), as Node.reexport
		if int64(it.viaCount) > hops {
			hops = int64(it.viaCount)
		}
		n += binary.PutVarint(w[n:], hops+1)
		n += binary.PutUvarint(w[n:], uint64(it.viaCount)+1) // Via: inbound path + self
		n += copy(w[n:], b[it.viaOff:it.viaEnd])
		n += copy(w[n:], src)
		if it.axisDirect { // origin axis preserved across the hop
			n += binary.PutVarint(w[n:], it.epoch)
			n += binary.PutUvarint(w[n:], it.version)
		} else {
			n += copy(w[n:], b[it.axisOff:it.axisEnd])
		}
		n += copy(w[n:], b[it.valOff:it.valOff+8]) // Value verbatim
		n += binary.PutUvarint(w[n:], versions[i]) // Version: relay's own counter
		n += copy(w[n:], epoch)
		n += copy(w[n:], tail) // Threshold + SentUnix
	}
	copy(w[n:], tail[8:]) // batch SentUnix trailer
	return dst
}

// SpliceForward assembles the forwarded frame for v's kept items into a
// pooled Frame with one reference (exactly like NewBatchFrame).
func SpliceForward(v *BatchView, keep []bool, versions []uint64, p ForwardPatch) *Frame {
	f := framePool.Get().(*Frame)
	f.refs.Store(1)
	f.buf = f.enc.AppendSpliced(f.buf[:0], v, keep, versions, p)
	return f
}

// PatchForward is the reference (decode-side) implementation of the per-hop
// patch: it builds the forwarded refreshes from fully decoded inbound ones.
// SpliceForward's output is byte-identical to encoding PatchForward's — the
// differential contract the fuzz harness pins — and the runtime's fallback
// path produces exactly these refreshes through Provenance bookkeeping.
func PatchForward(rs []wire.Refresh, keep []bool, versions []uint64, p ForwardPatch) []wire.Refresh {
	out := make([]wire.Refresh, 0, len(rs))
	for i := range rs {
		if !keep[i] {
			continue
		}
		r := &rs[i]
		hops := r.Hops
		if l := len(r.Via); l > hops {
			hops = l
		}
		via := make([]string, 0, len(r.Via)+1)
		via = append(append(via, r.Via...), p.SourceID)
		oe, ov := r.OriginAxis()
		out = append(out, wire.Refresh{
			SourceID:      p.SourceID,
			ObjectID:      r.ObjectID,
			Origin:        r.OriginID(),
			Hops:          hops + 1,
			Via:           via,
			OriginEpoch:   oe,
			OriginVersion: ov,
			Value:         r.Value,
			Version:       versions[i],
			Epoch:         p.Epoch,
			Threshold:     p.Threshold,
			SentUnix:      p.SentUnix,
		})
	}
	return out
}
