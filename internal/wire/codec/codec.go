// Package codec is the hand-rolled binary wire format for the hot protocol
// messages (Refresh, RefreshBatch, Feedback, Poll, PollReply and the Hello
// handshake) — the zero-reflection replacement for encoding/gob on the TCP
// hot path. Snapshots and legacy peers keep gob: the codec is negotiated per
// stream (see below), so old and new daemons interoperate.
//
// # Frame layout
//
// A stream is a sequence of self-delimiting frames:
//
//	frame   := kind(1 byte) length(uvarint) payload(length bytes)
//	kind    := 0x01 Hello | 0x02 RefreshBatch | 0x03 PollReply
//	           | 0x04 Feedback | 0x05 Poll
//
// Payload fields are encoded in declaration order with four primitives:
//
//	uvarint := unsigned LEB128 (encoding/binary Uvarint), max 10 bytes
//	varint  := zigzag-folded uvarint (encoding/binary Varint)
//	string  := uvarint byte-length, then raw bytes
//	float64 := 8 bytes, little-endian IEEE 754 bit pattern
//	bool    := 1 byte, 0x00 false / 0x01 true
//
// See docs/algorithm-specifications.md §10 for the per-message field tables;
// testdata/golden/ pins the canonical encoding of every message type.
//
// # Stream negotiation
//
// A binary stream starts with the two-byte prologue {Magic, Version}. Magic
// (0xB5) can never begin an encoding/gob stream — gob's first byte is a
// message length, either 0x00–0x7F (small count) or 0xF8–0xFF (multi-byte
// count) — so a server peeks one byte to tell a new client from an old one
// and answers a binary client by echoing the prologue. A client that never
// receives the echo (an old server kills the connection when the magic byte
// fails its gob decode) redials and speaks plain gob. Gob streams carry no
// prologue at all, byte-for-byte compatible with pre-codec daemons.
//
// # Hostile input
//
// The decoder never panics and never allocates proportionally to what a
// frame CLAIMS, only to what it actually carries: length prefixes are
// bounded by a configurable cap (ErrFrameTooLarge before any allocation),
// string lengths and element counts are checked against the bytes remaining
// in the already-read payload, and slices grow by append as elements decode
// rather than trusting the declared count. Every error is one of ErrBadFrame,
// ErrFrameTooLarge or an underlying read error; a transport must treat any of
// them as fatal for the stream (framing is lost) and close the connection.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Stream negotiation bytes. The prologue {Magic, Version} opens every binary
// stream in both directions (client sends, server echoes to accept).
const (
	// Magic is chosen from 0x80–0xF7, the byte range that cannot start a
	// gob stream, so auto-detection against legacy peers is unambiguous.
	Magic byte = 0xB5
	// Version is the wire-format version. Unknown versions are rejected at
	// the handshake; the format itself is pinned by testdata/golden.
	Version byte = 0x01
)

// Frame kinds.
const (
	KindHello    byte = 0x01
	KindBatch    byte = 0x02 // RefreshBatch (cache-bound)
	KindReply    byte = 0x03 // PollReply (cache-bound)
	KindFeedback byte = 0x04 // Feedback (source-bound)
	KindPoll     byte = 0x05 // Poll (source-bound)
)

// DefaultMaxFrame caps a frame's declared payload length (16 MiB). Far above
// any legitimate frame (a 256-refresh batch is a few tens of KiB) yet small
// enough that a hostile length prefix cannot drive an allocation bomb.
const DefaultMaxFrame = 16 << 20

// maxUvarintLen is the longest accepted uvarint encoding (10 bytes carries
// the full uint64 range).
const maxUvarintLen = binary.MaxVarintLen64

// Decode errors. Both are terminal for the stream: once a frame fails to
// parse, the byte boundary of the next frame is unknowable.
var (
	// ErrBadFrame reports a structurally invalid frame: unknown kind,
	// truncated payload, over-long varint, string or slice count exceeding
	// the payload, or trailing garbage after the last field.
	ErrBadFrame = errors.New("codec: malformed frame")
	// ErrFrameTooLarge reports a length prefix above the decoder's cap. It
	// is returned BEFORE any allocation happens.
	ErrFrameTooLarge = errors.New("codec: frame exceeds size cap")
)

// badFrame wraps ErrBadFrame with context; errors.Is(err, ErrBadFrame) holds.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFrame, fmt.Sprintf(format, args...))
}

// payload is a bounds-checked cursor over one frame's payload bytes. All
// reads return ErrBadFrame-wrapped errors instead of panicking; nothing here
// allocates except str(), whose length is validated against the remaining
// bytes first (and usually resolved from the decoder's intern table instead
// of allocating at all).
type payload struct {
	b   []byte
	off int
	in  *internTable
}

func (p *payload) remaining() int { return len(p.b) - p.off }

// uvarint's single-byte fast path stays small enough to inline; most
// protocol integers (versions, counts, lengths, small epochs) fit one byte.
func (p *payload) uvarint() (uint64, error) {
	if p.off < len(p.b) {
		if c := p.b[p.off]; c < 0x80 {
			p.off++
			return uint64(c), nil
		}
	}
	return p.uvarintSlow()
}

func (p *payload) uvarintSlow() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, badFrame("truncated or over-long uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payload) varint() (int64, error) {
	if p.off < len(p.b) {
		if c := p.b[p.off]; c < 0x80 {
			p.off++
			return int64(c>>1) ^ -int64(c&1), nil // zigzag
		}
	}
	return p.varintSlow()
}

func (p *payload) varintSlow() (int64, error) {
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, badFrame("truncated or over-long varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payload) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(p.remaining()) {
		return "", badFrame("string length %d exceeds %d remaining payload bytes", n, p.remaining())
	}
	raw := p.b[p.off : p.off+int(n)]
	p.off += int(n)
	if p.in != nil && n > 0 && n <= internLimit {
		return p.in.intern(raw), nil
	}
	return string(raw), nil
}

// strSlot is str for fields that are constant per stream (source/cache ids,
// origin): the dedicated slot hits without hashing.
func (p *payload) strSlot(slot *string) (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(p.remaining()) {
		return "", badFrame("string length %d exceeds %d remaining payload bytes", n, p.remaining())
	}
	raw := p.b[p.off : p.off+int(n)]
	p.off += int(n)
	if p.in != nil && n > 0 && n <= internLimit {
		return p.in.slot(slot, raw), nil
	}
	return string(raw), nil
}

// internLimit bounds the string length eligible for interning; identifiers
// (source, cache and object ids) are short and repeat across the frames of a
// stream, long strings are rare enough that copying is fine.
const internLimit = 64

// internTable is a per-decoder direct-mapped cache of recently decoded
// strings. Protocol streams repeat the same identifiers frame after frame —
// the source id on every refresh, the object ids of the live working set —
// so resolving them from the table turns the dominant decode allocation
// (one string copy per id) into a byte comparison. A miss just overwrites
// the slot: the table is an optimization, never a correctness dependency,
// and its memory is bounded by len(entries)·internLimit per connection.
//
// Fields that are constant for a stream's lifetime (a refresh's source id,
// cache id and origin) additionally get dedicated single-entry slots, which
// hit without hashing at all.
type internTable struct {
	entries            [256]string
	src, cache, origin string
}

// slot resolves b against a dedicated single-entry cache, falling back to
// the shared table on a miss. The comparison *s == string(b) does not
// allocate.
func (t *internTable) slot(s *string, b []byte) string {
	if *s == string(b) {
		return *s
	}
	v := t.intern(b)
	*s = v
	return v
}

func (t *internTable) intern(b []byte) string {
	// Hash the length, the first byte and the LAST eight bytes: sequential
	// id sets like "src-7/obj-1234" differ only in trailing digits, so the
	// tail carries the entropy; a single word load beats hashing every
	// byte. Collisions only cost the allocation we would have done anyway;
	// the comparison string(b) == s does not allocate.
	n := len(b)
	h := uint64(n)*0x9E3779B97F4A7C15 ^ uint64(b[0])
	switch {
	case n >= 8:
		h ^= binary.LittleEndian.Uint64(b[n-8:])
	case n >= 4:
		h ^= uint64(binary.LittleEndian.Uint32(b)) |
			uint64(binary.LittleEndian.Uint32(b[n-4:]))<<32
	default:
		for _, c := range b {
			h = (h ^ uint64(c)) * 16777619
		}
	}
	h *= 0x9E3779B97F4A7C15
	i := (h >> 56) % uint64(len(t.entries))
	if s := t.entries[i]; s == string(b) {
		return s
	}
	s := string(b)
	t.entries[i] = s
	return s
}

func (p *payload) f64() (float64, error) {
	if p.remaining() < 8 {
		return 0, badFrame("truncated float64 at offset %d", p.off)
	}
	bits := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return math.Float64frombits(bits), nil
}

func (p *payload) bool() (bool, error) {
	if p.remaining() < 1 {
		return false, badFrame("truncated bool at offset %d", p.off)
	}
	c := p.b[p.off]
	p.off++
	switch c {
	case 0x00:
		return false, nil
	case 0x01:
		return true, nil
	}
	return false, badFrame("bool byte 0x%02x at offset %d", c, p.off-1)
}

// count reads a slice element count and sanity-checks it against the bytes
// remaining: every element occupies at least minElem encoded bytes, so a
// count the payload cannot possibly hold is rejected before any element
// decodes (and before any allocation sized by it).
func (p *payload) count(minElem int) (int, error) {
	n, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	// n ≤ remaining first (so the multiply below cannot overflow: remaining
	// is bounded by the frame cap), then the per-element minimum.
	rem := uint64(p.remaining())
	if n > rem || (minElem > 1 && n*uint64(minElem) > rem) {
		return 0, badFrame("element count %d exceeds %d remaining payload bytes", n, p.remaining())
	}
	return int(n), nil
}

// done verifies the cursor consumed the payload exactly; trailing bytes mean
// a framing bug or tampering and fail the frame.
func (p *payload) done() error {
	if p.off != len(p.b) {
		return badFrame("%d trailing bytes after last field", p.remaining())
	}
	return nil
}

// Append primitives (the encode side mirrors of payload's readers). The
// uvarint/varint helpers peel off the one-byte case — nearly every protocol
// integer — so the common path inlines to a bounds check and a store.

func appendUvarint(dst []byte, v uint64) []byte {
	if v < 0x80 {
		return append(dst, byte(v))
	}
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	if u := uint64(v<<1) ^ uint64(v>>63); u < 0x80 { // zigzag
		return append(dst, byte(u))
	}
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	if len(s) < 0x80 {
		dst = append(dst, byte(len(s)))
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
	}
	return append(dst, s...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 0x01)
	}
	return append(dst, 0x00)
}
