package codec

import (
	"bufio"
	"io"

	"bestsync/internal/wire"
)

// Decoder reads binary frames from a stream. It is not safe for concurrent
// use; the transports run exactly one reader goroutine per connection.
//
// The decoder is hostile-input-safe: any malformed, truncated or oversized
// frame yields ErrBadFrame / ErrFrameTooLarge (never a panic), and memory
// use is bounded by the size cap plus what the frame actually carries — a
// tiny frame CLAIMING a huge payload or element count is rejected before any
// allocation sized by the claim. All decode errors are terminal: the caller
// must close the connection, because the next frame boundary is unknowable.
type Decoder struct {
	r      *bufio.Reader
	max    uint64
	buf    []byte // reusable payload buffer, capacity ≤ max
	intern internTable
}

// NewDecoder wraps r for frame reading with the DefaultMaxFrame size cap.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{r: br, max: DefaultMaxFrame}
}

// SetMaxFrame overrides the payload-size cap (bytes). Frames whose length
// prefix exceeds it fail with ErrFrameTooLarge before any allocation.
func (d *Decoder) SetMaxFrame(n int) {
	if n > 0 {
		d.max = uint64(n)
	}
}

// readFrame reads one frame header and its payload into the reusable buffer,
// returning the kind and a cursor over the payload. io.EOF surfaces
// unchanged on a clean frame boundary; a partial frame reports ErrBadFrame
// (via io.ErrUnexpectedEOF mapping) or the underlying error.
func (d *Decoder) readFrame() (byte, payload, error) {
	kind, err := d.r.ReadByte()
	if err != nil {
		return 0, payload{}, err
	}
	length, err := readUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			err = badFrame("stream ended after frame kind 0x%02x", kind)
		}
		return 0, payload{}, err
	}
	if length > d.max {
		return 0, payload{}, ErrFrameTooLarge
	}
	if uint64(cap(d.buf)) < length {
		d.buf = make([]byte, length)
	}
	d.buf = d.buf[:length]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, payload{}, badFrame("stream ended inside a %d-byte payload", length)
		}
		return 0, payload{}, err
	}
	return kind, payload{b: d.buf, in: &d.intern}, nil
}

// readUvarint is binary.ReadUvarint with the over-length encoding mapped to
// ErrBadFrame and truncation mapped consistently.
func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	for i := 0; i < maxUvarintLen; i++ {
		c, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, badFrame("stream ended inside a length prefix")
			}
			return 0, err
		}
		if c < 0x80 {
			if i == maxUvarintLen-1 && c > 1 {
				return 0, badFrame("length prefix overflows uint64")
			}
			return v | uint64(c)<<(7*i), nil
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
	return 0, badFrame("length prefix longer than %d bytes", maxUvarintLen)
}

// ReadHello reads the stream-opening Hello frame.
func (d *Decoder) ReadHello() (wire.Hello, error) {
	kind, p, err := d.readFrame()
	if err != nil {
		return wire.Hello{}, err
	}
	if kind != KindHello {
		return wire.Hello{}, badFrame("expected hello frame, got kind 0x%02x", kind)
	}
	var h wire.Hello
	if h.SourceID, err = p.str(); err != nil {
		return wire.Hello{}, err
	}
	// Optional trailing capability bits (absent on legacy frames).
	if p.remaining() > 0 {
		if h.Capabilities, err = p.uvarint(); err != nil {
			return wire.Hello{}, err
		}
	}
	return h, p.done()
}

// ReadCacheBound reads the next source→cache envelope (a RefreshBatch or
// PollReply frame).
func (d *Decoder) ReadCacheBound() (wire.CacheBound, error) {
	kind, p, err := d.readFrame()
	if err != nil {
		return wire.CacheBound{}, err
	}
	switch kind {
	case KindBatch:
		b, err := decodeBatch(&p)
		if err != nil {
			return wire.CacheBound{}, err
		}
		return wire.CacheBound{Batch: b}, p.done()
	case KindReply:
		r, err := decodeReply(&p)
		if err != nil {
			return wire.CacheBound{}, err
		}
		return wire.CacheBound{Reply: r}, p.done()
	}
	return wire.CacheBound{}, badFrame("unexpected cache-bound frame kind 0x%02x", kind)
}

// ReadCacheBoundRetained is ReadCacheBound plus, for batch envelopes, a
// retained copy of the raw frame (one reference; Release when done). The
// copy is unavoidable — the decoder's read buffer is reused by the next
// frame — but it lands in a pooled Frame, so a relay's splice-forwarding
// path still allocates nothing in steady state. Reply envelopes and errors
// return a nil frame.
func (d *Decoder) ReadCacheBoundRetained() (wire.CacheBound, *Frame, error) {
	kind, p, err := d.readFrame()
	if err != nil {
		return wire.CacheBound{}, nil, err
	}
	switch kind {
	case KindBatch:
		b, err := decodeBatch(&p)
		if err != nil {
			return wire.CacheBound{}, nil, err
		}
		if err := p.done(); err != nil {
			return wire.CacheBound{}, nil, err
		}
		return wire.CacheBound{Batch: b}, newRetainedBatchFrame(p.b), nil
	case KindReply:
		r, err := decodeReply(&p)
		if err != nil {
			return wire.CacheBound{}, nil, err
		}
		return wire.CacheBound{Reply: r}, nil, p.done()
	}
	return wire.CacheBound{}, nil, badFrame("unexpected cache-bound frame kind 0x%02x", kind)
}

// newRetainedBatchFrame re-frames a decoded batch payload into a pooled
// Frame with one reference. The header is re-emitted (canonically) rather
// than copied — readFrame does not keep the header bytes.
func newRetainedBatchFrame(payload []byte) *Frame {
	f := framePool.Get().(*Frame)
	f.refs.Store(1)
	buf := append(f.buf[:0], KindBatch)
	buf = appendUvarint(buf, uint64(len(payload)))
	f.buf = append(buf, payload...)
	return f
}

// ReadSourceBound reads the next cache→source envelope (a Feedback or Poll
// frame).
func (d *Decoder) ReadSourceBound() (wire.SourceBound, error) {
	kind, p, err := d.readFrame()
	if err != nil {
		return wire.SourceBound{}, err
	}
	switch kind {
	case KindFeedback:
		fb, err := decodeFeedback(&p)
		if err != nil {
			return wire.SourceBound{}, err
		}
		return wire.SourceBound{Feedback: fb}, p.done()
	case KindPoll:
		pl, err := decodePoll(&p)
		if err != nil {
			return wire.SourceBound{}, err
		}
		return wire.SourceBound{Poll: pl}, p.done()
	}
	return wire.SourceBound{}, badFrame("unexpected source-bound frame kind 0x%02x", kind)
}

// sliceCap clamps the initial capacity of a decoded slice: growth beyond it
// happens by append only as elements actually parse, so memory tracks the
// bytes received, not the count a hostile frame declares.
func sliceCap(n, clamp int) int {
	if n < clamp {
		return n
	}
	return clamp
}

// grow extends rs by one zeroed element without copying a struct through the
// stack: within capacity a reslice exposes the already-zeroed backing array
// (the slices here only ever grow from a fresh make).
func grow(rs []wire.Refresh) []wire.Refresh {
	if len(rs) < cap(rs) {
		return rs[:len(rs)+1]
	}
	return append(rs, wire.Refresh{})
}

func decodeBatch(p *payload) (*wire.RefreshBatch, error) {
	n, err := p.count(minRefreshEnc)
	if err != nil {
		return nil, err
	}
	b := &wire.RefreshBatch{}
	if n > 0 {
		b.Refreshes = make([]wire.Refresh, 0, sliceCap(n, 1024))
	}
	for i := 0; i < n; i++ {
		b.Refreshes = grow(b.Refreshes)
		if err := decodeRefresh(p, &b.Refreshes[len(b.Refreshes)-1]); err != nil {
			return nil, err
		}
	}
	if b.SentUnix, err = p.varint(); err != nil {
		return nil, err
	}
	return b, nil
}

func decodeRefresh(p *payload, r *wire.Refresh) error {
	var err error
	if r.SourceID, err = p.strSlot(&p.in.src); err != nil {
		return err
	}
	if r.ObjectID, err = p.str(); err != nil {
		return err
	}
	if r.CacheID, err = p.strSlot(&p.in.cache); err != nil {
		return err
	}
	if r.Origin, err = p.strSlot(&p.in.origin); err != nil {
		return err
	}
	hops, err := p.varint()
	if err != nil {
		return err
	}
	r.Hops = int(hops)
	nVia, err := p.count(1)
	if err != nil {
		return err
	}
	if nVia > 0 {
		r.Via = make([]string, 0, sliceCap(nVia, 64))
		for i := 0; i < nVia; i++ {
			v, err := p.str()
			if err != nil {
				return err
			}
			r.Via = append(r.Via, v)
		}
	}
	if r.OriginEpoch, err = p.varint(); err != nil {
		return err
	}
	if r.OriginVersion, err = p.uvarint(); err != nil {
		return err
	}
	if r.Value, err = p.f64(); err != nil {
		return err
	}
	if r.Version, err = p.uvarint(); err != nil {
		return err
	}
	if r.Epoch, err = p.varint(); err != nil {
		return err
	}
	if r.Threshold, err = p.f64(); err != nil {
		return err
	}
	if r.SentUnix, err = p.varint(); err != nil {
		return err
	}
	return nil
}

// minItemEnc is the smallest encoded PollItem: empty object id (1), bool
// (1), value (8), version (1), epoch (1), last-modified (1).
const minItemEnc = 1 + 1 + 8 + 1 + 1 + 1

func decodeReply(p *payload) (*wire.PollReply, error) {
	var r wire.PollReply
	var err error
	if r.SourceID, err = p.str(); err != nil {
		return nil, err
	}
	if r.All, err = p.bool(); err != nil {
		return nil, err
	}
	n, err := p.count(minItemEnc)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		r.Items = make([]wire.PollItem, 0, sliceCap(n, 1024))
	}
	for i := 0; i < n; i++ {
		var it wire.PollItem
		if it.ObjectID, err = p.str(); err != nil {
			return nil, err
		}
		if it.Exists, err = p.bool(); err != nil {
			return nil, err
		}
		if it.Value, err = p.f64(); err != nil {
			return nil, err
		}
		if it.Version, err = p.uvarint(); err != nil {
			return nil, err
		}
		if it.Epoch, err = p.varint(); err != nil {
			return nil, err
		}
		if it.LastModifiedUnix, err = p.varint(); err != nil {
			return nil, err
		}
		r.Items = append(r.Items, it)
	}
	if r.SentUnix, err = p.varint(); err != nil {
		return nil, err
	}
	// Optional trailing pushed-set segment (hybrid policy; absent on legacy
	// frames and on every reply with an empty push set — unless the
	// provenance segment below follows, which forces an explicit, possibly
	// zero-count, pushed segment first).
	if p.remaining() > 0 {
		np, err := p.count(1)
		if err != nil {
			return nil, err
		}
		if np > 0 {
			r.Pushed = make([]string, 0, sliceCap(np, 4096))
			for i := 0; i < np; i++ {
				id, err := p.str()
				if err != nil {
					return nil, err
				}
				r.Pushed = append(r.Pushed, id)
			}
		}
	}
	// Optional trailing per-item provenance segment (peer-capable answerers
	// only): entries are keyed by item index, strictly increasing.
	if p.remaining() > 0 {
		np, err := p.count(minItemProvEnc)
		if err != nil {
			return nil, err
		}
		last := -1
		for i := 0; i < np; i++ {
			idx64, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			idx := int(idx64)
			if idx64 >= uint64(len(r.Items)) || idx <= last {
				return nil, badFrame("poll-reply provenance index %d out of order or range (items %d)", idx64, len(r.Items))
			}
			last = idx
			it := &r.Items[idx]
			if it.Origin, err = p.strSlot(&p.in.origin); err != nil {
				return nil, err
			}
			hops, err := p.varint()
			if err != nil {
				return nil, err
			}
			it.Hops = int(hops)
			nVia, err := p.count(1)
			if err != nil {
				return nil, err
			}
			if nVia > 0 {
				it.Via = make([]string, 0, sliceCap(nVia, 64))
				for j := 0; j < nVia; j++ {
					v, err := p.str()
					if err != nil {
						return nil, err
					}
					it.Via = append(it.Via, v)
				}
			}
			if it.OriginEpoch, err = p.varint(); err != nil {
				return nil, err
			}
			if it.OriginVersion, err = p.uvarint(); err != nil {
				return nil, err
			}
		}
	}
	return &r, nil
}

// minItemProvEnc is the smallest encoded per-item provenance entry: item
// index (1), empty origin (1), hops (1), via count (1), origin epoch (1),
// origin version (1).
const minItemProvEnc = 6

// minHeldEnc is the smallest encoded HeldVersion: empty object id (1),
// epoch (1), version (1).
const minHeldEnc = 3

func decodeFeedback(p *payload) (*wire.Feedback, error) {
	var fb wire.Feedback
	var err error
	if fb.CacheID, err = p.str(); err != nil {
		return nil, err
	}
	n, err := p.count(minHeldEnc)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		fb.Held = make([]wire.HeldVersion, 0, sliceCap(n, 512))
		for i := 0; i < n; i++ {
			var h wire.HeldVersion
			if h.ObjectID, err = p.str(); err != nil {
				return nil, err
			}
			if h.Epoch, err = p.varint(); err != nil {
				return nil, err
			}
			if h.Version, err = p.uvarint(); err != nil {
				return nil, err
			}
			fb.Held = append(fb.Held, h)
		}
	}
	if fb.SentUnix, err = p.varint(); err != nil {
		return nil, err
	}
	return &fb, nil
}

func decodePoll(p *payload) (*wire.Poll, error) {
	var pl wire.Poll
	var err error
	if pl.CacheID, err = p.str(); err != nil {
		return nil, err
	}
	n, err := p.count(1)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		pl.ObjectIDs = make([]string, 0, sliceCap(n, 4096))
		for i := 0; i < n; i++ {
			id, err := p.str()
			if err != nil {
				return nil, err
			}
			pl.ObjectIDs = append(pl.ObjectIDs, id)
		}
	}
	if pl.SentUnix, err = p.varint(); err != nil {
		return nil, err
	}
	// Optional trailing known-version segment (peer-capable answerers only;
	// absent on legacy frames and on every hint-less poll).
	if p.remaining() > 0 {
		n, err := p.count(minKnownEnc)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			pl.Known = make([]wire.KnownVersion, 0, sliceCap(n, 4096))
			for i := 0; i < n; i++ {
				var k wire.KnownVersion
				if k.ObjectID, err = p.str(); err != nil {
					return nil, err
				}
				if k.Origin, err = p.strSlot(&p.in.origin); err != nil {
					return nil, err
				}
				if k.Epoch, err = p.varint(); err != nil {
					return nil, err
				}
				if k.Version, err = p.uvarint(); err != nil {
					return nil, err
				}
				pl.Known = append(pl.Known, k)
			}
		}
	}
	return &pl, nil
}

// minKnownEnc is the smallest encoded KnownVersion: empty object id (1),
// empty origin (1), epoch (1), version (1).
const minKnownEnc = 4
