package codec

import (
	"sync"
	"sync/atomic"

	"bestsync/internal/wire"
)

// Encoder builds binary frames by appending into caller-supplied buffers.
// The zero value is ready to use. An Encoder owns a reusable scratch buffer
// for the payload (frames are length-prefixed, so the payload is encoded
// before its header), which is why it is not safe for concurrent use — give
// each connection (or goroutine) its own; the transports keep one per
// connection under the connection's write lock, so steady-state encoding
// performs zero allocations.
type Encoder struct {
	scratch []byte
}

// appendFrame frames the encoder's scratch (holding one message payload)
// into dst: kind, payload length, payload bytes.
func (e *Encoder) appendFrame(dst []byte, kind byte) []byte {
	dst = append(dst, kind)
	dst = appendUvarint(dst, uint64(len(e.scratch)))
	return append(dst, e.scratch...)
}

// AppendHello appends a Hello frame to dst and returns the extended buffer.
//
// Capabilities is an OPTIONAL TRAILING field: written only when non-zero, so
// a capability-less hello stays byte-identical to the pre-capability format
// (old decoders would reject the extra bytes as trailing garbage).
func (e *Encoder) AppendHello(dst []byte, h wire.Hello) []byte {
	e.scratch = appendString(e.scratch[:0], h.SourceID)
	if h.Capabilities != 0 {
		e.scratch = appendUvarint(e.scratch, h.Capabilities)
	}
	return e.appendFrame(dst, KindHello)
}

// AppendBatch appends a RefreshBatch frame to dst.
func (e *Encoder) AppendBatch(dst []byte, b wire.RefreshBatch) []byte {
	s := appendUvarint(e.scratch[:0], uint64(len(b.Refreshes)))
	for i := range b.Refreshes {
		s = appendRefresh(s, &b.Refreshes[i])
	}
	e.scratch = appendVarint(s, b.SentUnix)
	return e.appendFrame(dst, KindBatch)
}

// AppendReply appends a PollReply frame to dst.
func (e *Encoder) AppendReply(dst []byte, r wire.PollReply) []byte {
	s := appendString(e.scratch[:0], r.SourceID)
	s = appendBool(s, r.All)
	s = appendUvarint(s, uint64(len(r.Items)))
	for i := range r.Items {
		it := &r.Items[i]
		s = appendString(s, it.ObjectID)
		s = appendBool(s, it.Exists)
		s = appendF64(s, it.Value)
		s = appendUvarint(s, it.Version)
		s = appendVarint(s, it.Epoch)
		s = appendVarint(s, it.LastModifiedUnix)
	}
	s = appendVarint(s, r.SentUnix)
	// Pushed is an OPTIONAL TRAILING segment (hybrid policy only): written
	// only when non-empty so legacy replies stay byte-identical. When any
	// item carries origin provenance (a peer-capable node answering from
	// relayed state) a second trailing segment follows, and then Pushed is
	// ALWAYS written first — possibly with count 0 — so the two segments
	// stay unambiguous: a legacy encoder never emits a zero-count Pushed.
	nProv := 0
	for i := range r.Items {
		if itemHasProv(&r.Items[i]) {
			nProv++
		}
	}
	if len(r.Pushed) > 0 || nProv > 0 {
		s = appendUvarint(s, uint64(len(r.Pushed)))
		for _, id := range r.Pushed {
			s = appendString(s, id)
		}
	}
	if nProv > 0 {
		s = appendUvarint(s, uint64(nProv))
		for i := range r.Items {
			it := &r.Items[i]
			if !itemHasProv(it) {
				continue
			}
			s = appendUvarint(s, uint64(i))
			s = appendString(s, it.Origin)
			s = appendVarint(s, int64(it.Hops))
			s = appendUvarint(s, uint64(len(it.Via)))
			for _, v := range it.Via {
				s = appendString(s, v)
			}
			s = appendVarint(s, it.OriginEpoch)
			s = appendUvarint(s, it.OriginVersion)
		}
	}
	e.scratch = s
	return e.appendFrame(dst, KindReply)
}

// itemHasProv reports whether a poll item carries relay provenance that the
// reply must encode in the trailing provenance segment.
func itemHasProv(it *wire.PollItem) bool {
	return it.Origin != "" || it.Hops != 0 || len(it.Via) > 0 ||
		it.OriginEpoch != 0 || it.OriginVersion != 0
}

// AppendFeedback appends a Feedback frame to dst.
func (e *Encoder) AppendFeedback(dst []byte, fb wire.Feedback) []byte {
	s := appendString(e.scratch[:0], fb.CacheID)
	s = appendUvarint(s, uint64(len(fb.Held)))
	for i := range fb.Held {
		h := &fb.Held[i]
		s = appendString(s, h.ObjectID)
		s = appendVarint(s, h.Epoch)
		s = appendUvarint(s, h.Version)
	}
	e.scratch = appendVarint(s, fb.SentUnix)
	return e.appendFrame(dst, KindFeedback)
}

// AppendPoll appends a Poll frame to dst.
func (e *Encoder) AppendPoll(dst []byte, p wire.Poll) []byte {
	s := appendString(e.scratch[:0], p.CacheID)
	s = appendUvarint(s, uint64(len(p.ObjectIDs)))
	for _, id := range p.ObjectIDs {
		s = appendString(s, id)
	}
	s = appendVarint(s, p.SentUnix)
	// Known is an OPTIONAL TRAILING segment (peer-capable answerers only):
	// written only when non-empty so legacy polls stay byte-identical.
	if len(p.Known) > 0 {
		s = appendUvarint(s, uint64(len(p.Known)))
		for i := range p.Known {
			k := &p.Known[i]
			s = appendString(s, k.ObjectID)
			s = appendString(s, k.Origin)
			s = appendVarint(s, k.Epoch)
			s = appendUvarint(s, k.Version)
		}
	}
	e.scratch = s
	return e.appendFrame(dst, KindPoll)
}

// AppendCacheBound appends the envelope's one payload as a frame — the
// envelope itself has no wire presence; the frame kind IS the discriminator.
// Invalid envelopes (zero or two payloads) report ErrBadFrame.
func (e *Encoder) AppendCacheBound(dst []byte, env wire.CacheBound) ([]byte, error) {
	if err := env.Validate(); err != nil {
		return dst, badFrame("%v", err)
	}
	if env.Batch != nil {
		return e.AppendBatch(dst, *env.Batch), nil
	}
	return e.AppendReply(dst, *env.Reply), nil
}

// AppendSourceBound appends the envelope's one payload as a frame.
func (e *Encoder) AppendSourceBound(dst []byte, env wire.SourceBound) ([]byte, error) {
	if err := env.Validate(); err != nil {
		return dst, badFrame("%v", err)
	}
	if env.Feedback != nil {
		return e.AppendFeedback(dst, *env.Feedback), nil
	}
	return e.AppendPoll(dst, *env.Poll), nil
}

// minRefreshEnc is the smallest possible encoded refresh: four empty strings
// (1 byte each), three 1-byte varints (hops, origin epoch/version... ) — see
// appendRefresh for the field order. The decoder uses it to reject element
// counts a payload cannot possibly hold.
const minRefreshEnc = 4 + // four empty strings
	1 + // hops
	1 + // via count
	1 + 1 + // origin epoch, origin version
	8 + // value
	1 + 1 + // version, epoch
	8 + // threshold
	1 // sent

// appendRefresh appends one refresh's payload fields (no frame header;
// refreshes only travel inside batches).
func appendRefresh(dst []byte, r *wire.Refresh) []byte {
	dst = appendString(dst, r.SourceID)
	dst = appendString(dst, r.ObjectID)
	dst = appendString(dst, r.CacheID)
	dst = appendString(dst, r.Origin)
	dst = appendVarint(dst, int64(r.Hops))
	dst = appendUvarint(dst, uint64(len(r.Via)))
	for _, v := range r.Via {
		dst = appendString(dst, v)
	}
	dst = appendVarint(dst, r.OriginEpoch)
	dst = appendUvarint(dst, r.OriginVersion)
	dst = appendF64(dst, r.Value)
	dst = appendUvarint(dst, r.Version)
	dst = appendVarint(dst, r.Epoch)
	dst = appendF64(dst, r.Threshold)
	dst = appendVarint(dst, r.SentUnix)
	return dst
}

// framePool recycles pre-encoded frame buffers (Frame) so the encode-once
// fan-out path allocates nothing in steady state.
var framePool = sync.Pool{
	New: func() any { return &Frame{buf: make([]byte, 0, 4096)} },
}

// Frame is one pre-encoded wire frame: the exact bytes a binary connection
// writes to its socket. Encoding a batch into a Frame once and handing the
// same Frame to every destination is the encode-once half of fan-out — the
// per-destination cost drops to a write syscall.
//
// Frames are reference-counted pool objects: NewBatchFrame returns a Frame
// with one reference; call Retain before sharing it with another goroutine
// and Release when done. After the last Release the Frame (and its buffer)
// returns to the pool and must not be touched.
type Frame struct {
	buf  []byte
	refs atomic.Int32
	enc  Encoder // scratch travels with the pooled frame to stay reusable
}

// NewBatchFrame encodes one RefreshBatch into a pooled, pre-encoded Frame.
func NewBatchFrame(rs []wire.Refresh, sentUnix int64) *Frame {
	f := framePool.Get().(*Frame)
	f.refs.Store(1)
	f.buf = f.enc.AppendBatch(f.buf[:0], wire.RefreshBatch{Refreshes: rs, SentUnix: sentUnix})
	return f
}

// Bytes returns the frame's encoded bytes. The slice is only valid until the
// last Release.
func (f *Frame) Bytes() []byte { return f.buf }

// Retain adds a reference so a second holder can Release independently.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference; the last one returns the Frame to the pool.
func (f *Frame) Release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}
