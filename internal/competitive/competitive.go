// Package competitive implements the Section 7 extension: cooperation when
// sources and the cache disagree on refresh priorities. A fraction Ψ of the
// cache-side bandwidth is dedicated to satisfying the sources' own
// priorities, divided among sources by one of three options:
//
//  1. all sources receive an equal share;
//  2. shares proportional to the number of cached objects per source;
//  3. shares proportional to each source's contribution to the cache's own
//     objectives, realized as a piggyback credit of Ψ/(1−Ψ) own-priority
//     refreshes per cache-priority refresh.
//
// The share arithmetic itself lives in internal/alloc, shared with the live
// fan-out source (internal/runtime); this package adds the Ψ scaling and
// the option-specific weight derivations.
package competitive

import (
	"fmt"

	"bestsync/internal/alloc"
)

// PiggybackRatio returns the option-3 credit earned per cache-priority
// refresh: Ψ/(1−Ψ) own-priority objects may ride along on average.
func PiggybackRatio(psi float64) float64 {
	if psi <= 0 {
		return 0
	}
	if psi >= 1 {
		return 0
	}
	return psi / (1 - psi)
}

// EqualShares returns per-source own-priority refresh rates under option 1:
// Ψ·C̄/m each.
func EqualShares(psi, meanCacheBW float64, sources int) []float64 {
	if sources <= 0 {
		return nil
	}
	if psi <= 0 || meanCacheBW <= 0 {
		return make([]float64, sources)
	}
	return alloc.Equal(psi*meanCacheBW, sources)
}

// ProportionalShares returns per-source rates under option 2: Ψ·C̄·n_j/N,
// where n_j is the number of cached objects from source j.
func ProportionalShares(psi, meanCacheBW float64, objectCounts []int) []float64 {
	weights := make([]float64, len(objectCounts))
	total := 0
	for j, n := range objectCounts {
		weights[j] = float64(n)
		total += n
	}
	if psi <= 0 || meanCacheBW <= 0 || total == 0 {
		return make([]float64, len(objectCounts))
	}
	return alloc.Proportional(psi*meanCacheBW, weights)
}

// ContributionShares returns per-source rates proportional to contribution
// scores (option 3 expressed as explicit rates rather than piggyback
// credits; useful when the cache prefers rate-based accounting).
// Contributions must be nonnegative.
func ContributionShares(psi, meanCacheBW float64, contributions []float64) ([]float64, error) {
	total := 0.0
	for j, c := range contributions {
		if c < 0 {
			return nil, fmt.Errorf("competitive: negative contribution %v for source %d", c, j)
		}
		total += c
	}
	if psi <= 0 || meanCacheBW <= 0 || total == 0 {
		return make([]float64, len(contributions)), nil
	}
	return alloc.Proportional(psi*meanCacheBW, contributions), nil
}
