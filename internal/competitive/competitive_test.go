package competitive

import (
	"math"
	"testing"
)

func TestPiggybackRatio(t *testing.T) {
	cases := []struct{ psi, want float64 }{
		{0, 0},
		{0.5, 1},
		{0.25, 1.0 / 3},
		{0.75, 3},
		{1, 0}, // degenerate: guard
		{-0.1, 0},
	}
	for _, c := range cases {
		if got := PiggybackRatio(c.psi); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PiggybackRatio(%v) = %v, want %v", c.psi, got, c.want)
		}
	}
}

func TestEqualShares(t *testing.T) {
	shares := EqualShares(0.4, 100, 8)
	for _, s := range shares {
		if s != 5 {
			t.Errorf("share = %v, want 5", s)
		}
	}
	if got := EqualShares(0.4, 100, 0); got != nil {
		t.Errorf("zero sources = %v, want nil", got)
	}
	for _, s := range EqualShares(0, 100, 4) {
		if s != 0 {
			t.Errorf("Ψ=0 share = %v, want 0", s)
		}
	}
}

func TestEqualSharesSumToPsiBandwidth(t *testing.T) {
	shares := EqualShares(0.3, 50, 7)
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-15) > 1e-12 {
		t.Errorf("Σ shares = %v, want 15", sum)
	}
}

func TestProportionalShares(t *testing.T) {
	shares := ProportionalShares(0.5, 100, []int{10, 30, 60})
	want := []float64{5, 15, 30}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Errorf("share %d = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestProportionalSharesEmptyPopulation(t *testing.T) {
	shares := ProportionalShares(0.5, 100, []int{0, 0})
	for _, s := range shares {
		if s != 0 {
			t.Errorf("share = %v, want 0", s)
		}
	}
}

func TestContributionShares(t *testing.T) {
	shares, err := ContributionShares(0.5, 100, []float64{1, 3})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if math.Abs(shares[0]-12.5) > 1e-12 || math.Abs(shares[1]-37.5) > 1e-12 {
		t.Errorf("shares = %v, want [12.5 37.5]", shares)
	}
}

func TestContributionSharesNegative(t *testing.T) {
	if _, err := ContributionShares(0.5, 100, []float64{1, -2}); err == nil {
		t.Error("negative contribution accepted")
	}
}

func TestContributionSharesZeroTotal(t *testing.T) {
	shares, err := ContributionShares(0.5, 100, []float64{0, 0})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, s := range shares {
		if s != 0 {
			t.Errorf("share = %v, want 0", s)
		}
	}
}

func TestAllOptionsConserveBandwidth(t *testing.T) {
	// Whatever the option, the source-dedicated rates must sum to Ψ·C̄.
	const psi, bw = 0.35, 200.0
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if got := sum(EqualShares(psi, bw, 9)); math.Abs(got-psi*bw) > 1e-9 {
		t.Errorf("equal shares sum %v", got)
	}
	if got := sum(ProportionalShares(psi, bw, []int{1, 2, 3})); math.Abs(got-psi*bw) > 1e-9 {
		t.Errorf("proportional shares sum %v", got)
	}
	cs, _ := ContributionShares(psi, bw, []float64{0.2, 0.8, 2})
	if got := sum(cs); math.Abs(got-psi*bw) > 1e-9 {
		t.Errorf("contribution shares sum %v", got)
	}
}
