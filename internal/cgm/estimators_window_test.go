package cgm

import (
	"math"
	"math/rand"
	"testing"
)

// feedPoissonPolls drives est (via the observe callback) with a seeded
// Poisson update stream at rate lambda, polled at a fixed 1s interval, and
// returns the relative estimation error at each requested checkpoint. The
// stream is fully determined by the seed, so the checkpoint errors are
// reproducible run to run.
func feedPoissonPolls(seed int64, lambda float64, checkpoints []int,
	observe func(changed bool, interval, age float64), estimate func() float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	tPrev := 0.0
	lastUpdate := math.Inf(-1)
	nextUpdate := rng.ExpFloat64() / lambda
	errs := make([]float64, 0, len(checkpoints))
	next := 0
	last := checkpoints[len(checkpoints)-1]
	for poll := 1; poll <= last; poll++ {
		now := float64(poll)
		for nextUpdate <= now {
			lastUpdate = nextUpdate
			nextUpdate += rng.ExpFloat64() / lambda
		}
		observe(lastUpdate > tPrev, now-tPrev, now-lastUpdate)
		tPrev = now
		if next < len(checkpoints) && poll == checkpoints[next] {
			errs = append(errs, math.Abs(estimate()-lambda)/lambda)
			next++
		}
	}
	return errs
}

// TestEstimatorsConvergeWithinBoundedWindow pins the convergence CONTRACT the
// hybrid migration controller and the CGM poll scheduler lean on: both
// estimators must be within 25% of a known synthetic rate after a bounded
// number of observations — not merely in the infinite-poll limit — and must
// then STAY inside the band at every later checkpoint (no late divergence).
func TestEstimatorsConvergeWithinBoundedWindow(t *testing.T) {
	const window = 1500 // observations allowed before the 25% band binds
	checkpoints := []int{window, 2500, 4000, 6000}
	for _, lambda := range []float64{0.1, 0.3, 0.5} {
		var e1 LastModifiedEstimator
		errs1 := feedPoissonPolls(11, lambda, checkpoints,
			e1.Observe, e1.Estimate)
		var e2 BinaryEstimator
		errs2 := feedPoissonPolls(11, lambda, checkpoints,
			func(changed bool, interval, _ float64) { e2.Observe(changed, interval) },
			e2.Estimate)
		for i, cp := range checkpoints {
			if errs1[i] > 0.25 {
				t.Errorf("CGM1 λ=%v: %.1f%% off after %d polls, want ≤25%%",
					lambda, 100*errs1[i], cp)
			}
			if errs2[i] > 0.25 {
				t.Errorf("CGM2 λ=%v: %.1f%% off after %d polls, want ≤25%%",
					lambda, 100*errs2[i], cp)
			}
		}
	}
}

// TestEstimatorConvergenceTightens asserts the error band shrinks with more
// data: the mean relative error across seeds at the late checkpoint must not
// exceed the early one (averaged so a single unlucky stream cannot flip the
// comparison).
func TestEstimatorConvergenceTightens(t *testing.T) {
	const lambda = 0.3
	checkpoints := []int{300, 8000}
	var early1, late1, early2, late2 float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		var e1 LastModifiedEstimator
		errs1 := feedPoissonPolls(seed, lambda, checkpoints, e1.Observe, e1.Estimate)
		early1 += errs1[0] / seeds
		late1 += errs1[1] / seeds
		var e2 BinaryEstimator
		errs2 := feedPoissonPolls(seed, lambda, checkpoints,
			func(changed bool, interval, _ float64) { e2.Observe(changed, interval) },
			e2.Estimate)
		early2 += errs2[0] / seeds
		late2 += errs2[1] / seeds
	}
	if late1 > early1 {
		t.Errorf("CGM1 error grew with data: %.3f after %d polls vs %.3f after %d",
			late1, checkpoints[1], early1, checkpoints[0])
	}
	if late2 > early2 {
		t.Errorf("CGM2 error grew with data: %.3f after %d polls vs %.3f after %d",
			late2, checkpoints[1], early2, checkpoints[0])
	}
}

// TestEstimatorsDeterministic pins that the same synthetic stream yields the
// same estimate bit for bit — the property the bounded-window assertions
// above stand on.
func TestEstimatorsDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		var e1 LastModifiedEstimator
		var e2 BinaryEstimator
		feedPoissonPolls(42, 0.3, []int{2000}, e1.Observe, e1.Estimate)
		feedPoissonPolls(42, 0.3, []int{2000},
			func(changed bool, interval, _ float64) { e2.Observe(changed, interval) },
			e2.Estimate)
		return e1.Estimate(), e2.Estimate()
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Errorf("same seed diverged: CGM1 %v vs %v, CGM2 %v vs %v", a1, b1, a2, b2)
	}
}
