package cgm

import "math"

// LastModifiedEstimator is the update-rate estimator available to CGM1
// (Section 6.3): at each poll the cache learns whether the object changed
// and, if so, the exact time of its most recent update. For Poisson updates
// the likelihood of a poll at time t2 (previous poll t1) observing last
// change at time c is λ·e^{−λ(t2−c)} if changed, e^{−λ(t2−t1)} otherwise, so
// the maximum-likelihood estimate is
//
//	λ̂ = X / (Σ_changed (t_poll − t_lastmod) + Σ_unchanged (t_poll − t_prev)).
type LastModifiedEstimator struct {
	changes  int     // X
	exposure float64 // the MLE denominator
	observed float64 // total time covered by polls (for the no-change floor)
}

// Observe records one poll: interval is the time since the previous poll,
// age the time since the object's most recent update (used only when changed
// is true).
func (e *LastModifiedEstimator) Observe(changed bool, interval, age float64) {
	e.observed += interval
	if changed {
		e.changes++
		if age < 0 {
			age = 0
		}
		e.exposure += age
	} else {
		e.exposure += interval
	}
}

// Changes returns the number of polls that detected a change.
func (e *LastModifiedEstimator) Changes() int { return e.changes }

// Estimate returns λ̂. With no observed change the MLE is 0; callers should
// apply a floor such as FloorRate.
func (e *LastModifiedEstimator) Estimate() float64 {
	if e.changes == 0 || e.exposure <= 0 {
		return 0
	}
	return float64(e.changes) / e.exposure
}

// FloorRate returns a conservative lower bound on the update rate when no
// changes have been observed over the estimator's total watch time: roughly
// "half an update per observed period".
func (e *LastModifiedEstimator) FloorRate() float64 {
	if e.observed <= 0 {
		return 0
	}
	return 0.5 / e.observed
}

// BinaryEstimator is the estimator available to CGM2: each poll reveals only
// whether the object changed since the previous poll. It implements Cho &
// Garcia-Molina's bias-reduced estimator for regular polling with average
// interval Ī:
//
//	λ̂ = −ln((n − X + 0.5) / (n + 0.5)) / Ī,
//
// where n is the number of polls and X the number that detected a change.
type BinaryEstimator struct {
	polls       int
	changes     int
	sumInterval float64
}

// Observe records one poll outcome.
func (e *BinaryEstimator) Observe(changed bool, interval float64) {
	e.polls++
	e.sumInterval += interval
	if changed {
		e.changes++
	}
}

// Polls returns the number of observations.
func (e *BinaryEstimator) Polls() int { return e.polls }

// Changes returns the number of change detections.
func (e *BinaryEstimator) Changes() int { return e.changes }

// Estimate returns λ̂ (0 when there is no data or no detected change).
func (e *BinaryEstimator) Estimate() float64 {
	if e.polls == 0 || e.sumInterval <= 0 {
		return 0
	}
	n := float64(e.polls)
	x := float64(e.changes)
	iBar := e.sumInterval / n
	est := -math.Log((n-x+0.5)/(n+0.5)) / iBar
	if est < 0 {
		return 0
	}
	return est
}

// FloorRate mirrors LastModifiedEstimator.FloorRate.
func (e *BinaryEstimator) FloorRate() float64 {
	if e.sumInterval <= 0 {
		return 0
	}
	return 0.5 / e.sumInterval
}
