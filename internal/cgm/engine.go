package cgm

import (
	"fmt"
	"math"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/metric"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// Mode selects which variant of cache-driven synchronization to simulate
// (the three CGM curves of Figure 6).
type Mode int

const (
	// IdealCacheBased assumes the cache knows every λ exactly and can
	// request refreshes for free, so each refresh costs one message (the
	// response) and the allocation is solved once with true rates.
	IdealCacheBased Mode = iota
	// CGM1 polls with round trips (2 messages per refresh) and estimates λ
	// from last-modified timestamps.
	CGM1
	// CGM2 polls with round trips and estimates λ only from
	// changed/unchanged bits.
	CGM2
)

// String names the mode as in Figure 6.
func (m Mode) String() string {
	switch m {
	case IdealCacheBased:
		return "ideal cache-based"
	case CGM1:
		return "CGM1"
	case CGM2:
		return "CGM2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one cache-driven simulation run. The CGM polling model
// assumes no source-side bandwidth limit (Section 6.3), so only the
// cache-side capacity applies.
type Config struct {
	Seed     int64
	Objects  int
	Metric   metric.Kind
	Delta    metric.DeltaFunc
	Duration float64
	Warmup   float64
	Tick     float64 // default 1

	CacheBW bandwidth.Profile
	Rates   []float64 // true Poisson rates λ_i
	Mode    Mode

	// ReSolveEvery is the re-estimation/re-allocation epoch for the
	// practical modes (default 50 s).
	ReSolveEvery float64
}

// Validate checks and fills defaults.
func (c *Config) Validate() error {
	if c.Objects <= 0 {
		return fmt.Errorf("cgm: Objects must be > 0")
	}
	if c.Duration <= 0 || c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("cgm: bad Duration/Warmup %v/%v", c.Duration, c.Warmup)
	}
	if c.Tick == 0 {
		c.Tick = 1
	}
	if c.Tick < 0 {
		return fmt.Errorf("cgm: Tick must be > 0")
	}
	if c.CacheBW == nil {
		return fmt.Errorf("cgm: CacheBW is required")
	}
	if len(c.Rates) != c.Objects {
		return fmt.Errorf("cgm: Rates has length %d, want %d", len(c.Rates), c.Objects)
	}
	if c.ReSolveEvery == 0 {
		c.ReSolveEvery = 50
	}
	if c.ReSolveEvery < 0 {
		return fmt.Errorf("cgm: ReSolveEvery must be > 0")
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	AvgDivergence float64 // unweighted time-averaged divergence per object
	Polls         int
	Resolves      int
	Updates       int
}

type cgmObject struct {
	value      float64
	version    uint64
	lastUpdate float64

	cacheVal  float64
	cacheVer  uint64
	trueD     float64
	trueLastT float64

	polledVer uint64
	lastPoll  float64
	period    float64 // 1/f_i; +Inf = not scheduled

	est1 LastModifiedEstimator
	est2 BinaryEstimator
}

// pollHeap orders pending polls by due time.
type pollHeap struct {
	due  []float64
	objs []int32
}

func (h *pollHeap) Len() int { return len(h.due) }
func (h *pollHeap) less(i, j int) bool {
	if h.due[i] != h.due[j] {
		return h.due[i] < h.due[j]
	}
	return h.objs[i] < h.objs[j]
}
func (h *pollHeap) swap(i, j int) {
	h.due[i], h.due[j] = h.due[j], h.due[i]
	h.objs[i], h.objs[j] = h.objs[j], h.objs[i]
}
func (h *pollHeap) Push(t float64, obj int) {
	h.due = append(h.due, t)
	h.objs = append(h.objs, int32(obj))
	i := h.Len() - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}
func (h *pollHeap) Pop() (float64, int) {
	t, o := h.due[0], int(h.objs[0])
	last := h.Len() - 1
	h.swap(0, last)
	h.due, h.objs = h.due[:last], h.objs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.swap(i, s)
		i = s
	}
	return t, o
}
func (h *pollHeap) Reset() {
	h.due = h.due[:0]
	h.objs = h.objs[:0]
}

// Run executes one cache-driven simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Objects
	objs := make([]cgmObject, n)
	meter := stats.Meter{Warmup: cfg.Warmup}
	var updates eventHeap
	var polls pollHeap
	res := Result{}

	// Refresh cost: practical modes poll with a round trip.
	cost := 1.0
	if cfg.Mode != IdealCacheBased {
		cost = 2.0
	}
	meanBW := cfg.CacheBW.Integral(0, cfg.Duration) / cfg.Duration
	budget := meanBW / cost

	for i := range objs {
		o := &objs[i]
		o.period = math.Inf(1)
		if next := (workload.Poisson{Lambda: cfg.Rates[i]}).NextAfter(0, rng); !math.IsInf(next, 1) {
			updates.Push(next, i)
		}
	}

	vm := workload.RandomWalk{Step: 1}

	// solve recomputes the allocation and rebuilds the poll schedule.
	solve := func(now float64) {
		res.Resolves++
		lambdas := make([]float64, n)
		for i := range objs {
			o := &objs[i]
			switch cfg.Mode {
			case IdealCacheBased:
				lambdas[i] = cfg.Rates[i]
			case CGM1:
				l := o.est1.Estimate()
				if l <= 0 {
					l = o.est1.FloorRate()
				}
				lambdas[i] = l
			case CGM2:
				l := o.est2.Estimate()
				if l <= 0 {
					l = o.est2.FloorRate()
				}
				lambdas[i] = l
			}
		}
		freqs := OptimalAllocation(lambdas, budget)
		polls.Reset()
		for i, f := range freqs {
			if f > 0 {
				objs[i].period = 1 / f
				polls.Push(now+rng.Float64()*objs[i].period, i)
			} else {
				objs[i].period = math.Inf(1)
			}
		}
	}

	// First epoch: the practical modes have no estimates yet, so spread the
	// budget uniformly (the warm-up period absorbs this).
	if cfg.Mode == IdealCacheBased {
		solve(0)
	} else {
		res.Resolves++
		period := float64(n) / budget
		for i := range objs {
			objs[i].period = period
			polls.Push(rng.Float64()*period, i)
		}
	}

	var bucket bandwidth.Bucket
	meterTo := func(i int, t float64) {
		o := &objs[i]
		if t > o.trueLastT {
			meter.Add(o.trueLastT, t, o.trueD, weight.Const(1))
		}
		o.trueLastT = t
	}

	tick := cfg.Tick
	nTicks := int(math.Ceil(cfg.Duration / tick))
	prev := 0.0
	nextSolve := cfg.ReSolveEvery
	for k := 1; k <= nTicks; k++ {
		now := float64(k) * tick
		if now > cfg.Duration {
			now = cfg.Duration
		}
		// Source updates.
		for updates.Len() > 0 && updates.PeekTime() <= now {
			t, i := updates.Pop()
			if t > cfg.Duration {
				break
			}
			o := &objs[i]
			o.value = vm.Next(o.value, t, rng)
			o.version++
			o.lastUpdate = t
			if next := (workload.Poisson{Lambda: cfg.Rates[i]}).NextAfter(t, rng); !math.IsInf(next, 1) {
				updates.Push(next, i)
			}
			meterTo(i, t)
			o.trueD = metric.Divergence(cfg.Metric, cfg.Delta,
				int(o.version-o.cacheVer), o.value, o.cacheVal)
			res.Updates++
		}

		// Polls, limited by cache-side bandwidth.
		bucket.Burst = math.Max(cost, cfg.CacheBW.Rate(now)*tick)
		bucket.Accrue(cfg.CacheBW, prev, now)
		for polls.Len() > 0 && polls.due[0] <= now {
			if !bucket.TryTake(cost) {
				break
			}
			_, i := polls.Pop()
			o := &objs[i]
			changed := o.version != o.polledVer
			interval := now - o.lastPoll
			age := now - o.lastUpdate
			o.est1.Observe(changed, interval, age)
			o.est2.Observe(changed, interval)
			o.lastPoll = now
			o.polledVer = o.version
			meterTo(i, now)
			o.cacheVal = o.value
			o.cacheVer = o.version
			o.trueD = 0
			res.Polls++
			if !math.IsInf(o.period, 1) {
				polls.Push(now+o.period, i)
			}
		}

		// Periodic re-estimation for the practical modes.
		if cfg.Mode != IdealCacheBased && now >= nextSolve {
			solve(now)
			nextSolve += cfg.ReSolveEvery
		}
		prev = now
	}
	for i := range objs {
		meterTo(i, cfg.Duration)
	}
	res.AvgDivergence = meter.Average(cfg.Duration, n)
	return res, nil
}

// MustRun is Run for known-good configurations.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// eventHeap is a local copy of the engine's update-event min-heap (the two
// packages stay independent so each can evolve its event payloads).
type eventHeap struct {
	times []float64
	objs  []int32
}

func (h *eventHeap) Len() int { return len(h.times) }
func (h *eventHeap) less(i, j int) bool {
	if h.times[i] != h.times[j] {
		return h.times[i] < h.times[j]
	}
	return h.objs[i] < h.objs[j]
}
func (h *eventHeap) swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.objs[i], h.objs[j] = h.objs[j], h.objs[i]
}

// Push schedules an update event.
func (h *eventHeap) Push(t float64, obj int) {
	h.times = append(h.times, t)
	h.objs = append(h.objs, int32(obj))
	i := h.Len() - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

// PeekTime returns the earliest event time.
func (h *eventHeap) PeekTime() float64 { return h.times[0] }

// Pop removes the earliest event.
func (h *eventHeap) Pop() (float64, int) {
	t, o := h.times[0], int(h.objs[0])
	last := h.Len() - 1
	h.swap(0, last)
	h.times, h.objs = h.times[:last], h.objs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.swap(i, s)
		i = s
	}
	return t, o
}
