// Package cgm reimplements the cache-driven synchronization baseline of Cho
// & Garcia-Molina ("Synchronizing a database to improve freshness", SIGMOD
// 2000) that Olston & Widom compare against in Section 6.3, together with
// the update-rate estimators from Cho & Garcia-Molina's "Estimating
// frequency of change" (CGM00a).
//
// The CGM policy polls each object i at a fixed frequency f_i chosen to
// maximize total time-averaged freshness Σ F(λ_i, f_i) subject to the
// bandwidth constraint Σ f_i = B, where, for Poisson updates at rate λ and
// uniform refresh interval 1/f,
//
//	F(λ, f) = (1 − e^{−λ/f}) / (λ/f).
//
// The Lagrange condition ∂F/∂f = μ reduces to
//
//	1 − e^{−r}(1 + r) = μλ,  r = λ/f,
//
// which this package solves by Newton iteration inside an outer bisection on
// μ. Olston & Widom note the system "was shown not to be solvable
// mathematically" and tuned μ by repeated simulation runs; numeric root
// finding is equivalent and deterministic. A well-known consequence of the
// condition falls out naturally: objects with μλ ≥ 1 (changing too fast to
// be worth refreshing) receive f = 0.
//
// docs/algorithm-specifications.md §5 summarizes the allocation problem.
package cgm

import "math"

// gOfR computes g(r) = 1 − e^{−r}(1+r), the normalized marginal freshness
// value of refresh bandwidth. g increases from 0 at r=0 to 1 as r→∞.
func gOfR(r float64) float64 {
	return 1 - math.Exp(-r)*(1+r)
}

// solveG returns r such that g(r) = y, for y in (0, 1). It uses Newton
// iteration (g′(r) = r·e^{−r}) with a bisection fallback.
func solveG(y float64) float64 {
	if y <= 0 {
		return 0
	}
	if y >= 1 {
		return math.Inf(1)
	}
	// Initial guess: for small y, g(r) ≈ r²/2; for large y the tail is
	// dominated by e^{−r}, so r ≈ −ln(1−y).
	r := math.Sqrt(2 * y)
	if y > 0.5 {
		r = -math.Log(1-y) + 1
	}
	lo, hi := 0.0, 800.0
	for iter := 0; iter < 100; iter++ {
		g := gOfR(r)
		if math.Abs(g-y) < 1e-13 {
			return r
		}
		if g < y {
			lo = r
		} else {
			hi = r
		}
		deriv := r * math.Exp(-r)
		var next float64
		if deriv > 1e-300 {
			next = r - (g-y)/deriv
		}
		if deriv <= 1e-300 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		r = next
	}
	return r
}

// freqFor returns the refresh frequency the Lagrange condition assigns to an
// object with update rate lambda at multiplier mu. mu must be > 0.
func freqFor(lambda, mu float64) float64 {
	if lambda <= 0 {
		return 0 // a never-changing object needs no refreshing
	}
	y := mu * lambda
	if y >= 1 {
		return 0 // too volatile to be worth bandwidth (CGM's key insight)
	}
	r := solveG(y)
	if r <= 0 {
		return math.Inf(1)
	}
	return lambda / r
}

// OptimalAllocation returns the freshness-maximizing refresh frequencies for
// objects with (estimated) update rates lambdas under total refresh budget
// (refreshes/second). Frequencies sum to ≈ budget; objects judged not worth
// refreshing get 0.
func OptimalAllocation(lambdas []float64, budget float64) []float64 {
	freqs := make([]float64, len(lambdas))
	if budget <= 0 {
		return freqs
	}
	minPos := math.Inf(1)
	anyPos := false
	for _, l := range lambdas {
		if l > 0 {
			anyPos = true
			if l < minPos {
				minPos = l
			}
		}
	}
	if !anyPos {
		return freqs
	}
	total := func(mu float64) float64 {
		s := 0.0
		for _, l := range lambdas {
			f := freqFor(l, mu)
			if math.IsInf(f, 1) {
				return math.Inf(1)
			}
			s += f
		}
		return s
	}
	// total(mu) is decreasing; total(1/minPos) = 0 and total(0+) = ∞.
	lo, hi := 0.0, 1/minPos
	for iter := 0; iter < 100; iter++ {
		mu := (lo + hi) / 2
		if mu == lo || mu == hi {
			break
		}
		if total(mu) > budget {
			lo = mu
		} else {
			hi = mu
		}
	}
	mu := (lo + hi) / 2
	for i, l := range lambdas {
		freqs[i] = freqFor(l, mu)
	}
	return freqs
}

// Freshness returns F(λ, f), the expected time-averaged freshness of an
// object refreshed at uniform intervals 1/f whose updates are Poisson with
// rate λ. F(λ, 0) = 0 for λ > 0; a never-changing object is always fresh.
func Freshness(lambda, f float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if f <= 0 {
		return 0
	}
	r := lambda / f
	if r < 1e-9 {
		// Series expansion avoids cancellation: (1 − e^{−r})/r ≈ 1 − r/2.
		return 1 - r/2
	}
	return (1 - math.Exp(-r)) / r
}
