package cgm_test

import (
	"fmt"

	"bestsync/internal/cgm"
)

// ExampleOptimalAllocation reproduces CGM's counter-intuitive headline: to
// maximize freshness, the fastest-changing object can deserve *no* refresh
// bandwidth at all.
func ExampleOptimalAllocation() {
	lambdas := []float64{0.01, 0.1, 1, 50} // updates/second
	freqs := cgm.OptimalAllocation(lambdas, 2)
	for i, f := range freqs {
		fmt.Printf("λ=%-5g → refresh %.3f/s (freshness %.2f)\n",
			lambdas[i], f, cgm.Freshness(lambdas[i], f))
	}
	// Output:
	// λ=0.01  → refresh 0.166/s (freshness 0.97)
	// λ=0.1   → refresh 0.502/s (freshness 0.91)
	// λ=1     → refresh 1.331/s (freshness 0.70)
	// λ=50    → refresh 0.000/s (freshness 0.00)
}
