package cgm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bestsync/internal/bandwidth"
)

func constProfile(v float64) bandwidth.Profile { return bandwidth.Const(v) }

func TestGOfRMonotone(t *testing.T) {
	prev := -1.0
	for r := 0.0; r < 50; r += 0.1 {
		g := gOfR(r)
		if g < prev {
			t.Fatalf("g not monotone at r=%v", r)
		}
		prev = g
	}
	if g := gOfR(0); g != 0 {
		t.Errorf("g(0) = %v, want 0", g)
	}
	if g := gOfR(100); math.Abs(g-1) > 1e-9 {
		t.Errorf("g(100) = %v, want ≈1", g)
	}
}

func TestSolveGInverts(t *testing.T) {
	for _, y := range []float64{1e-9, 1e-6, 0.001, 0.1, 0.3, 0.5, 0.9, 0.99, 0.9999} {
		r := solveG(y)
		if got := gOfR(r); math.Abs(got-y) > 1e-9 {
			t.Errorf("g(solveG(%v)) = %v", y, got)
		}
	}
}

func TestSolveGEdges(t *testing.T) {
	if r := solveG(0); r != 0 {
		t.Errorf("solveG(0) = %v, want 0", r)
	}
	if r := solveG(1); !math.IsInf(r, 1) {
		t.Errorf("solveG(1) = %v, want +Inf", r)
	}
	if r := solveG(-0.5); r != 0 {
		t.Errorf("solveG(-0.5) = %v, want 0", r)
	}
}

func TestFreqForVolatileObjectsZero(t *testing.T) {
	// μλ ≥ 1 ⇒ the object is too volatile to refresh — CGM's hallmark.
	if f := freqFor(10, 0.2); f != 0 {
		t.Errorf("freqFor(10, 0.2) = %v, want 0", f)
	}
	if f := freqFor(0, 0.1); f != 0 {
		t.Errorf("static object freq = %v, want 0", f)
	}
}

func TestOptimalAllocationSumsToBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		lambdas := make([]float64, n)
		for i := range lambdas {
			lambdas[i] = rng.Float64() * 2
		}
		budget := 1 + rng.Float64()*20
		freqs := OptimalAllocation(lambdas, budget)
		sum := 0.0
		for _, f := range freqs {
			if f < 0 {
				t.Fatalf("negative frequency %v", f)
			}
			sum += f
		}
		if math.Abs(sum-budget) > 1e-6*budget {
			t.Errorf("trial %d: Σf = %v, want %v", trial, sum, budget)
		}
	}
}

func TestOptimalAllocationZeroBudget(t *testing.T) {
	freqs := OptimalAllocation([]float64{1, 2}, 0)
	for _, f := range freqs {
		if f != 0 {
			t.Errorf("zero budget gave f = %v", f)
		}
	}
}

func TestOptimalAllocationAllStatic(t *testing.T) {
	freqs := OptimalAllocation([]float64{0, 0}, 10)
	for _, f := range freqs {
		if f != 0 {
			t.Errorf("static objects got f = %v", f)
		}
	}
}

func TestOptimalAllocationBeatsUniformAndProportional(t *testing.T) {
	// The optimal allocation must achieve at least the freshness of the
	// uniform and proportional heuristics (CGM00b's headline comparison).
	rng := rand.New(rand.NewSource(2))
	lambdas := make([]float64, 100)
	for i := range lambdas {
		lambdas[i] = math.Exp(rng.NormFloat64()) // skewed rates
	}
	budget := 30.0
	total := func(freqs []float64) float64 {
		s := 0.0
		for i, f := range freqs {
			s += Freshness(lambdas[i], f)
		}
		return s
	}
	opt := OptimalAllocation(lambdas, budget)
	uniform := make([]float64, len(lambdas))
	prop := make([]float64, len(lambdas))
	sumL := 0.0
	for _, l := range lambdas {
		sumL += l
	}
	for i := range uniform {
		uniform[i] = budget / float64(len(lambdas))
		prop[i] = budget * lambdas[i] / sumL
	}
	fOpt, fUni, fProp := total(opt), total(uniform), total(prop)
	if fOpt < fUni-1e-6 {
		t.Errorf("optimal %v below uniform %v", fOpt, fUni)
	}
	if fOpt < fProp-1e-6 {
		t.Errorf("optimal %v below proportional %v", fOpt, fProp)
	}
	// CGM00b: proportional is *worse* than uniform for freshness.
	if fProp > fUni {
		t.Logf("note: proportional (%v) beat uniform (%v) on this draw", fProp, fUni)
	}
}

// Property: allocation is monotone in budget (more bandwidth never reduces
// total achievable freshness).
func TestAllocationMonotoneInBudget(t *testing.T) {
	lambdas := []float64{0.1, 0.5, 1, 2, 5}
	f := func(b1, b2 uint8) bool {
		lo := float64(b1%50) + 0.5
		hi := lo + float64(b2%50) + 0.5
		fl := OptimalAllocation(lambdas, lo)
		fh := OptimalAllocation(lambdas, hi)
		tl, th := 0.0, 0.0
		for i := range lambdas {
			tl += Freshness(lambdas[i], fl[i])
			th += Freshness(lambdas[i], fh[i])
		}
		return th >= tl-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFreshnessProperties(t *testing.T) {
	if f := Freshness(0, 0); f != 1 {
		t.Errorf("static object freshness = %v, want 1", f)
	}
	if f := Freshness(1, 0); f != 0 {
		t.Errorf("unrefreshed object freshness = %v, want 0", f)
	}
	// Freshness increases with f.
	prev := 0.0
	for _, f := range []float64{0.1, 0.5, 1, 5, 50} {
		fr := Freshness(1, f)
		if fr <= prev {
			t.Fatalf("freshness not increasing at f=%v", f)
		}
		prev = fr
	}
	if prev > 1 {
		t.Errorf("freshness %v exceeds 1", prev)
	}
	// Series branch vs direct formula continuity.
	a := Freshness(1e-10, 1)
	if math.Abs(a-1) > 1e-9 {
		t.Errorf("tiny-r freshness = %v, want ≈1", a)
	}
}

func TestLastModifiedEstimatorRecovers(t *testing.T) {
	// Simulate Poisson updates at rate λ polled every second; the MLE
	// should recover λ.
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.05, 0.3, 1.0} {
		var est LastModifiedEstimator
		tPrev := 0.0
		lastUpdate := math.Inf(-1)
		nextUpdate := rng.ExpFloat64() / lambda
		for poll := 1; poll <= 20000; poll++ {
			now := float64(poll)
			for nextUpdate <= now {
				lastUpdate = nextUpdate
				nextUpdate += rng.ExpFloat64() / lambda
			}
			changed := lastUpdate > tPrev
			est.Observe(changed, now-tPrev, now-lastUpdate)
			tPrev = now
		}
		got := est.Estimate()
		if math.Abs(got-lambda) > 0.15*lambda {
			t.Errorf("λ=%v: estimate %v (off by %.1f%%)",
				lambda, got, 100*math.Abs(got-lambda)/lambda)
		}
	}
}

func TestBinaryEstimatorRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, lambda := range []float64{0.05, 0.3, 1.0} {
		var est BinaryEstimator
		tPrev := 0.0
		lastUpdate := math.Inf(-1)
		nextUpdate := rng.ExpFloat64() / lambda
		for poll := 1; poll <= 20000; poll++ {
			now := float64(poll)
			for nextUpdate <= now {
				lastUpdate = nextUpdate
				nextUpdate += rng.ExpFloat64() / lambda
			}
			est.Observe(lastUpdate > tPrev, now-tPrev)
			tPrev = now
		}
		got := est.Estimate()
		if math.Abs(got-lambda) > 0.2*lambda {
			t.Errorf("λ=%v: estimate %v", lambda, got)
		}
	}
}

func TestEstimatorsEmptyAndFloors(t *testing.T) {
	var e1 LastModifiedEstimator
	var e2 BinaryEstimator
	if e1.Estimate() != 0 || e2.Estimate() != 0 {
		t.Error("empty estimators should return 0")
	}
	if e1.FloorRate() != 0 || e2.FloorRate() != 0 {
		t.Error("empty floors should be 0")
	}
	e1.Observe(false, 10, 0)
	e2.Observe(false, 10)
	if e1.Estimate() != 0 || e2.Estimate() != 0 {
		t.Error("no-change estimators should return 0")
	}
	if e1.FloorRate() != 0.05 {
		t.Errorf("e1 floor = %v, want 0.05", e1.FloorRate())
	}
	if e2.FloorRate() != 0.05 {
		t.Errorf("e2 floor = %v, want 0.05", e2.FloorRate())
	}
}

func TestBinaryEstimatorUnderestimatesFastObjects(t *testing.T) {
	// With polls slower than updates the binary estimator saturates — the
	// reason CGM2 trails CGM1 in Figure 6.
	var est BinaryEstimator
	for i := 0; i < 1000; i++ {
		est.Observe(true, 1) // every poll sees a change
	}
	got := est.Estimate()
	if got > 10 {
		t.Errorf("saturated estimate %v unexpectedly large", got)
	}
}

func TestModeString(t *testing.T) {
	if IdealCacheBased.String() != "ideal cache-based" ||
		CGM1.String() != "CGM1" || CGM2.String() != "CGM2" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Objects: 10, Duration: 100, CacheBW: nil}
	if _, err := Run(good); err == nil {
		t.Error("nil CacheBW accepted")
	}
	cases := []func(*Config){
		func(c *Config) { c.Objects = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = 500 },
		func(c *Config) { c.Rates = []float64{1} },
		func(c *Config) { c.Tick = -1 },
		func(c *Config) { c.ReSolveEvery = -5 },
	}
	for i, mut := range cases {
		cfg := testConfig(IdealCacheBased, 1)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func testConfig(mode Mode, seed int64) Config {
	n := 50
	rates := make([]float64, n)
	rng := rand.New(rand.NewSource(seed + 100))
	for i := range rates {
		rates[i] = 0.02 + rng.Float64()*0.3
	}
	return Config{
		Seed:     seed,
		Objects:  n,
		Duration: 400,
		Warmup:   100,
		CacheBW:  constProfile(10),
		Rates:    rates,
		Mode:     mode,
	}
}

func TestRunModesOrdering(t *testing.T) {
	// Figure 6's within-family ordering: ideal cache-based ≤ CGM1 ≤ CGM2
	// (staleness, averaged over seeds).
	var ideal, c1, c2 float64
	for seed := int64(0); seed < 4; seed++ {
		cfgI := testConfig(IdealCacheBased, seed)
		cfgI.CacheBW = constProfile(15)
		cfg1 := cfgI
		cfg1.Mode = CGM1
		cfg2 := cfgI
		cfg2.Mode = CGM2
		ideal += MustRun(cfgI).AvgDivergence
		c1 += MustRun(cfg1).AvgDivergence
		c2 += MustRun(cfg2).AvgDivergence
	}
	if ideal > c1*1.05 {
		t.Errorf("ideal %v worse than CGM1 %v", ideal/4, c1/4)
	}
	if c1 > c2*1.10 {
		t.Errorf("CGM1 %v much worse than CGM2 %v", c1/4, c2/4)
	}
}

func TestRunStalenessInRange(t *testing.T) {
	res := MustRun(testConfig(CGM2, 7))
	if res.AvgDivergence < 0 || res.AvgDivergence > 1 {
		t.Errorf("staleness %v out of [0,1]", res.AvgDivergence)
	}
	if res.Polls == 0 {
		t.Error("no polls happened")
	}
	if res.Resolves < 2 {
		t.Errorf("resolves = %d, want ≥ 2", res.Resolves)
	}
}

func TestRunMoreBandwidthFresher(t *testing.T) {
	lo := testConfig(IdealCacheBased, 3)
	lo.CacheBW = constProfile(5)
	hi := testConfig(IdealCacheBased, 3)
	hi.CacheBW = constProfile(40)
	rl, rh := MustRun(lo), MustRun(hi)
	if rh.AvgDivergence >= rl.AvgDivergence {
		t.Errorf("more bandwidth: %v not fresher than %v",
			rh.AvgDivergence, rl.AvgDivergence)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := MustRun(testConfig(CGM1, 5))
	b := MustRun(testConfig(CGM1, 5))
	if a != b {
		t.Errorf("same seed differed: %+v vs %+v", a, b)
	}
}
