package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bestsync/internal/weight"
)

func TestMeterBasic(t *testing.T) {
	m := Meter{}
	m.Add(0, 10, 2, weight.Const(1)) // 20
	m.Add(10, 15, 4, weight.Const(3))
	if got := m.Total(); got != 80 {
		t.Errorf("Total = %v, want 80", got)
	}
	if got := m.Average(20, 1); got != 4 {
		t.Errorf("Average = %v, want 4", got)
	}
	if got := m.Average(20, 4); got != 1 {
		t.Errorf("Average per 4 objects = %v, want 1", got)
	}
}

func TestMeterWarmupClipping(t *testing.T) {
	m := Meter{Warmup: 10}
	m.Add(0, 5, 100, weight.Const(1)) // entirely before warmup — ignored
	m.Add(5, 15, 2, weight.Const(1))  // half counted: 2*5 = 10
	m.Add(15, 20, 1, weight.Const(1)) // 5
	if got := m.Total(); got != 15 {
		t.Errorf("Total = %v, want 15", got)
	}
	if got := m.Average(20, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Average = %v, want 1.5", got)
	}
}

func TestMeterZeroDivergenceFree(t *testing.T) {
	m := Meter{}
	m.Add(0, 100, 0, weight.Const(5))
	if m.Total() != 0 {
		t.Errorf("Total = %v, want 0", m.Total())
	}
}

func TestMeterDegenerate(t *testing.T) {
	m := Meter{}
	m.Add(5, 5, 3, weight.Const(1))
	m.Add(5, 4, 3, weight.Const(1))
	if m.Total() != 0 {
		t.Errorf("Total = %v, want 0", m.Total())
	}
	if m.Average(0, 10) != 0 {
		t.Errorf("Average over empty window = %v, want 0", m.Average(0, 10))
	}
	if m.Average(10, 0) != 0 {
		t.Errorf("Average over zero objects = %v, want 0", m.Average(10, 0))
	}
}

func TestMeterSineWeight(t *testing.T) {
	w := weight.Sine{Base: 2, Amp: 0.5, Period: 8, Phase: 0.3}
	m := Meter{}
	m.Add(1, 6, 3, w)
	want := 3 * w.Integral(1, 6)
	if got := m.Total(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", w.Stddev())
	}
}

func TestWelfordSmallN(t *testing.T) {
	var w Welford
	if w.Var() != 0 {
		t.Errorf("Var with n=0 = %v, want 0", w.Var())
	}
	w.Add(3)
	if w.Var() != 0 {
		t.Errorf("Var with n=1 = %v, want 0", w.Var())
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Name: "test"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	s.Sort()
	for i, want := range []float64{1, 2, 3} {
		if s.Points[i].X != want {
			t.Errorf("point %d X = %v, want %v", i, s.Points[i].X, want)
		}
	}
}

func TestTableWriteTo(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Headers: []string{"a", "long-header"},
	}
	tb.AddRow("1", "2")
	tb.AddRowf(3.14159, "x")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Errorf("missing title/header in output:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"x", "y"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	want := "x,y\n1,2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestPlotASCII(t *testing.T) {
	s := Series{Name: "curve"}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	var buf bytes.Buffer
	PlotASCII(&buf, "parabola", []Series{s}, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "parabola") || !strings.Contains(out, "curve") {
		t.Errorf("plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("plot has no points:\n%s", out)
	}
}

func TestPlotASCIIEmpty(t *testing.T) {
	var buf bytes.Buffer
	PlotASCII(&buf, "empty", nil, 0, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty plot output: %q", buf.String())
	}
}

func TestPlotASCIIConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not panic or divide by zero.
	s := Series{Name: "flat"}
	s.Add(1, 5)
	s.Add(1, 5)
	var buf bytes.Buffer
	PlotASCII(&buf, "flat", []Series{s}, 20, 5)
	if buf.Len() == 0 {
		t.Error("no output for constant series")
	}
}
