// Package stats measures time-averaged weighted divergence (the paper's
// objective, Section 3.3) and provides small series/table helpers used by
// the experiment harness.
//
// The divergence of an object is piecewise constant between events, so the
// meter accumulates exact interval contributions W̄·D·Δt using the weight
// functions' closed-form integrals. Intervals are clipped to the measurement
// window [warmup, end], implementing the paper's "initial warm-up period".
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"bestsync/internal/weight"
)

// Meter accumulates ∫ W(t)·D(t) dt over a measurement window.
type Meter struct {
	Warmup float64 // measurement starts here
	total  float64
}

// Add records that divergence d held over [t0, t1] with weight w. The
// interval is clipped to [Warmup, ∞).
func (m *Meter) Add(t0, t1, d float64, w weight.Fn) {
	if d == 0 || t1 <= t0 {
		return
	}
	if t1 <= m.Warmup {
		return
	}
	if t0 < m.Warmup {
		t0 = m.Warmup
	}
	m.total += d * w.Integral(t0, t1)
}

// Total returns the accumulated weighted divergence integral.
func (m *Meter) Total() float64 { return m.total }

// Average returns the time-averaged weighted divergence per object over
// [Warmup, end].
func (m *Meter) Average(end float64, objects int) float64 {
	span := end - m.Warmup
	if span <= 0 || objects <= 0 {
		return 0
	}
	return m.total / span / float64(objects)
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Point is one (x, y) pair of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Sort orders points by x.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of values formatted with %g for floats.
func (t *Table) AddRowf(vals ...interface{}) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	write := func(cells []string) error {
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// PlotASCII renders series as a crude ASCII scatter plot, good enough to
// eyeball the shape of a paper figure in a terminal.
func PlotASCII(w io.Writer, title string, series []Series, width, height int) {
	if width <= 0 {
		width = 70
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if minX > maxX {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@', '%'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "y: [%.4g, %.4g]\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "x: [%.4g, %.4g]\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
}
