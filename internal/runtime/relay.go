package runtime

import (
	"fmt"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
)

// RelayConfig configures a relay node — a cache tier that re-exports the
// refreshes it applies toward a set of downstream children. It is the
// tree-shaped view of NodeConfig: children are simply the relay's peers,
// and every field maps one-to-one onto the symmetric peer-face abstraction
// (see peer.go).
type RelayConfig struct {
	// ID is the relay's identity on both faces: it is the cache id stamped
	// on upstream feedback AND the source id its children see on
	// re-exported refreshes. Default "relay".
	ID string
	// Cache configures the upstream-facing cache (processing bandwidth,
	// shards, queue depth). Its ID, OnApply and Now fields are owned by the
	// relay and must be left zero.
	Cache CacheConfig
	// ChildBandwidth is the downstream send budget in messages/second,
	// divided across the children by their share weights (Section 7
	// allocation) — the relay's own bandwidth tier, independent of the
	// upstream source's budget. Default 1000 (with TotalBandwidth set:
	// half the total).
	ChildBandwidth float64
	// TotalBandwidth, when positive, puts the relay's two faces under one
	// shared budget: Cache.Bandwidth (intake processing) and
	// ChildBandwidth (downstream sends) become the initial split —
	// defaulting to half each — and the periodic rebalance pass shifts
	// budget between the faces from observed backlog. Zero keeps the faces
	// on their independent static budgets.
	TotalBandwidth float64
	// Rebalance, when positive, enables the periodic re-allocation passes
	// (see NodeConfig.Rebalance).
	Rebalance time.Duration
	// Metric selects the divergence metric driving child refresh
	// priorities; Delta and PriorityFn refine it as on SourceConfig.
	Metric     metric.Kind
	Delta      metric.DeltaFunc
	PriorityFn priority.Fn
	// Tick is the child send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the child-facing threshold algorithm; zero means paper
	// defaults.
	Params core.Params
	// MaxHops bounds re-export depth (see NodeConfig.MaxHops). Default 8.
	MaxHops int
	// ChildPolicy selects the synchronization policy of the downstream
	// face (see NodeConfig.PeerPolicy).
	ChildPolicy Policy
	// Hybrid tunes the child-face migration controller when ChildPolicy is
	// PolicyHybrid.
	Hybrid HybridConfig
	// Group configures session-group fan-out on the downstream face.
	Group GroupConfig
	// SpliceForward enables the zero-copy re-export fast path: inbound
	// binary frames are retained and splice-patched straight onto the
	// downstream face instead of being decoded and re-encoded per hop (see
	// NodeConfig.SpliceForward).
	SpliceForward bool
	// Now overrides the clock for both faces (tests); defaults to
	// time.Now.
	Now func() time.Time
}

// RelayStats is a relay's per-tier statistics breakdown: the upstream face
// (a cache consuming refreshes) and the downstream face (a fan-out source
// re-exporting them), plus the re-export decisions in between. It is the
// tree-vocabulary view of NodeStats.
type RelayStats struct {
	// Upstream counts the cache face: refreshes applied from the tier
	// above, feedback sent to it, stale drops.
	Upstream CacheStats
	// Downstream counts the source face: updates fanned into child
	// sessions, refreshes sent on, per-child session breakdown.
	Downstream SourceStats
	// Forwarded counts applied refreshes re-exported as child updates.
	Forwarded int
	// SuppressedBatches counts apply batches whose re-export was skipped
	// because the relay had no live children — the source-mutex round trip
	// is not paid when nothing downstream would receive the updates. The
	// first child to (re)attach is seeded from the store instead.
	SuppressedBatches int
	// ThresholdSuppressed counts updates whose per-child scheduling
	// fan-out was deferred because every live child session was provably
	// within its threshold — the re-export reached the store and the
	// source's object state, but no per-session observe work was spent
	// until the next flush tick (by which point most such updates have
	// been superseded or still need no send).
	ThresholdSuppressed int
	// Looped counts refreshes rejected at intake because this relay was
	// already on their path (Via) or was their origin — the message
	// crossed a topology cycle and came back. Mirrored in
	// Upstream.Rejected.
	Looped int
	// HopLimited counts refreshes dropped from re-export because
	// forwarding would exceed MaxHops.
	HopLimited int
	// SplicedBatches/SplicedRefreshes/SpliceFallbacks count the zero-copy
	// re-export path (RelayConfig.SpliceForward); see NodeStats.
	SplicedBatches   int
	SplicedRefreshes int
	SpliceFallbacks  int
	// UpBandwidth and DownBandwidth are the current face budgets: the
	// cache face's processing rate and the child face's send rate. With
	// TotalBandwidth set they move on every face rebalance pass;
	// otherwise they are the static configured values.
	UpBandwidth   float64
	DownBandwidth float64
	// FaceRebalances counts completed up/down face re-allocation passes.
	FaceRebalances int
}

// Relay is a middle tier in a cache→cache hierarchy: toward its upstream it
// is an ordinary Cache and toward its children a fan-out Source whose
// updates are the refreshes it just applied. Since the peer-face refactor
// it is a thin tree-vocabulary wrapper over Node — AddChild is AddPeer,
// the upstream face is the intake face — kept so tree deployments (and the
// cachesyncd -children flag) read in tree terms. All protocol behaviour
// (provenance, loop-avoidance, face rebalancing, threshold suppression)
// lives on Node; see peer.go.
type Relay struct {
	n *Node
}

// NewRelay starts a relay node: upstream is the endpoint the tier above
// sends refreshes to (the relay serves it as a cache), children are the
// downstream destinations (the relay dials them as a source). Close the
// relay (not the endpoint) to shut down.
func NewRelay(cfg RelayConfig, upstream transport.CacheEndpoint, children []Destination) (*Relay, error) {
	if cfg.ID == "" {
		cfg.ID = "relay"
	}
	if cfg.Cache.ID != "" || cfg.Cache.OnApply != nil || cfg.Cache.Reject != nil || cfg.Cache.Now != nil {
		return nil, fmt.Errorf("runtime: RelayConfig.Cache.{ID,OnApply,Reject,Now} are owned by the relay; configure RelayConfig.ID/Now instead")
	}
	n, err := NewNode(NodeConfig{
		ID:             cfg.ID,
		Intake:         cfg.Cache,
		PeerBandwidth:  cfg.ChildBandwidth,
		TotalBandwidth: cfg.TotalBandwidth,
		Rebalance:      cfg.Rebalance,
		Metric:         cfg.Metric,
		Delta:          cfg.Delta,
		PriorityFn:     cfg.PriorityFn,
		Tick:           cfg.Tick,
		Params:         cfg.Params,
		MaxHops:        cfg.MaxHops,
		PeerPolicy:     cfg.ChildPolicy,
		Hybrid:         cfg.Hybrid,
		Group:          cfg.Group,
		SpliceForward:  cfg.SpliceForward,
		Now:            cfg.Now,
	}, upstream, children)
	if err != nil {
		return nil, err
	}
	return &Relay{n: n}, nil
}

// AddChild starts a sync session toward a new downstream cache on a
// running relay, re-dividing the child budget across all children; the new
// child is synchronized from the relay's full store. See Node.AddPeer.
func (r *Relay) AddChild(d Destination) error { return r.n.AddPeer(d) }

// RemoveChild stops the session toward the child whose Destination.CacheID
// is cacheID and re-divides the child budget across the survivors. See
// Node.RemovePeer.
func (r *Relay) RemoveChild(cacheID string) error { return r.n.RemovePeer(cacheID) }

// ReexportStore re-exports every locally cached entry to the children as
// if it had just been applied — the warm-up path for a relay restarted
// from a snapshot. See Node.ReexportStore.
func (r *Relay) ReexportStore() { r.n.ReexportStore() }

// ID returns the relay's identity (shared by both faces).
func (r *Relay) ID() string { return r.n.ID() }

// Cache returns the upstream-facing cache, for reads (Get/Len), snapshots
// and the HTTP status handler.
func (r *Relay) Cache() *Cache { return r.n.Cache() }

// Node returns the underlying symmetric node, for callers that want to mix
// tree and mesh vocabulary on one instance.
func (r *Relay) Node() *Node { return r.n }

// Get returns the relay's local copy of an object.
func (r *Relay) Get(objectID string) (Entry, bool) { return r.n.Get(objectID) }

// Len returns the number of locally cached objects.
func (r *Relay) Len() int { return r.n.Len() }

// Stats snapshots both faces and the re-export counters.
func (r *Relay) Stats() RelayStats {
	ns := r.n.Stats()
	return RelayStats{
		Upstream:            ns.Intake,
		Downstream:          ns.Peers,
		Forwarded:           ns.Forwarded,
		SuppressedBatches:   ns.SuppressedBatches,
		ThresholdSuppressed: ns.ThresholdSuppressed,
		Looped:              ns.Looped,
		HopLimited:          ns.HopLimited,
		SplicedBatches:      ns.SplicedBatches,
		SplicedRefreshes:    ns.SplicedRefreshes,
		SpliceFallbacks:     ns.SpliceFallbacks,
		UpBandwidth:         ns.IntakeBandwidth,
		DownBandwidth:       ns.PeerBandwidth,
		FaceRebalances:      ns.FaceRebalances,
	}
}

// Close stops the upstream cache first (no new applies, so no new
// re-exports) and then the downstream source, returning the first error.
func (r *Relay) Close() error { return r.n.Close() }
