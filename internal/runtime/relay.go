package runtime

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"bestsync/internal/alloc"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// RelayConfig configures a relay node — a cache tier that re-exports the
// refreshes it applies toward a set of downstream children.
type RelayConfig struct {
	// ID is the relay's identity on both faces: it is the cache id stamped
	// on upstream feedback AND the source id its children see on
	// re-exported refreshes. Default "relay".
	ID string
	// Cache configures the upstream-facing cache (processing bandwidth,
	// shards, queue depth). Its ID, OnApply and Now fields are owned by the
	// relay and must be left zero.
	Cache CacheConfig
	// ChildBandwidth is the downstream send budget in messages/second,
	// divided across the children by their share weights (Section 7
	// allocation) — the relay's own bandwidth tier, independent of the
	// upstream source's budget. Default 1000 (with TotalBandwidth set:
	// half the total).
	ChildBandwidth float64
	// TotalBandwidth, when positive, puts the relay's two faces under one
	// shared budget: Cache.Bandwidth (intake processing) and
	// ChildBandwidth (downstream sends) become the initial split —
	// defaulting to half each — and the periodic rebalance pass shifts
	// budget between the faces from observed backlog, so intake capacity
	// the upstream is not using can be spent on the children and vice
	// versa. Zero keeps the faces on their independent static budgets.
	TotalBandwidth float64
	// Rebalance, when positive, enables the periodic re-allocation passes:
	// child-session shares are re-weighted from observed feedback and
	// divergence (SourceConfig.Rebalance on the child face), and — with
	// TotalBandwidth — the up/down face split is re-derived from each
	// face's backlog and budget use every interval. Zero keeps all shares
	// static.
	Rebalance time.Duration
	// Metric selects the divergence metric driving child refresh
	// priorities; Delta and PriorityFn refine it as on SourceConfig.
	Metric     metric.Kind
	Delta      metric.DeltaFunc
	PriorityFn priority.Fn
	// Tick is the child send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the child-facing threshold algorithm; zero means paper
	// defaults.
	Params core.Params
	// MaxHops bounds re-export depth: a refresh that has already crossed
	// MaxHops relay tiers is applied locally but not forwarded (counted in
	// RelayStats.HopLimited). Default 8.
	MaxHops int
	// ChildPolicy selects the synchronization policy of the downstream
	// face (SourceConfig.Policy): the default push re-exports applied
	// refreshes source-initiated; PolicyHybrid lets each child session
	// push its hot head and answer polls for its cold tail (a polling
	// relay tier — children then run a hybrid cache face toward this
	// relay). Pure cache-driven child policies (ideal/cgm1/cgm2) are also
	// accepted: the child face only answers polls, and the re-export hook
	// degenerates to store updates the children discover on their own
	// schedule. Child destinations must be poll-capable connections for
	// any polling ChildPolicy.
	ChildPolicy Policy
	// Hybrid tunes the child-face migration controller when ChildPolicy is
	// PolicyHybrid (SourceConfig.Hybrid); the zero value means the
	// documented defaults.
	Hybrid HybridConfig
	// Group configures session-group fan-out on the downstream face
	// (SourceConfig.Group): eligible children share one scheduling pass and
	// one encode per batch. Zero value keeps per-child sessions.
	Group GroupConfig
	// Now overrides the clock for both faces (tests); defaults to
	// time.Now.
	Now func() time.Time
}

// RelayStats is a relay's per-tier statistics breakdown: the upstream face
// (a cache consuming refreshes) and the downstream face (a fan-out source
// re-exporting them), plus the re-export decisions in between.
type RelayStats struct {
	// Upstream counts the cache face: refreshes applied from the tier
	// above, feedback sent to it, stale drops.
	Upstream CacheStats
	// Downstream counts the source face: updates fanned into child
	// sessions, refreshes sent on, per-child session breakdown.
	Downstream SourceStats
	// Forwarded counts applied refreshes re-exported as child updates.
	Forwarded int
	// SuppressedBatches counts apply batches whose re-export was skipped
	// because the relay had no live children — the source-mutex round trip
	// is not paid when nothing downstream would receive the updates. The
	// first child to (re)attach is seeded from the store instead.
	SuppressedBatches int
	// Looped counts refreshes rejected at intake because this relay was
	// already on their path (Via) or was their origin — the message
	// crossed a topology cycle and came back. Mirrored in
	// Upstream.Rejected.
	Looped int
	// HopLimited counts refreshes dropped from re-export because
	// forwarding would exceed MaxHops.
	HopLimited int
	// UpBandwidth and DownBandwidth are the current face budgets: the
	// cache face's processing rate and the child face's send rate. With
	// TotalBandwidth set they move on every face rebalance pass;
	// otherwise they are the static configured values.
	UpBandwidth   float64
	DownBandwidth float64
	// FaceRebalances counts completed up/down face re-allocation passes.
	FaceRebalances int
}

// Relay is a middle tier in a cache→cache hierarchy: toward its upstream it
// is an ordinary Cache (it applies refreshes, sends surplus-driven
// feedback, and back-pressures when saturated); toward its children it is a
// fan-out Source whose updates are the refreshes it just applied. Each
// applied refresh becomes a core-tracked update in every child session, so
// divergence at the relay — the delta its children have not yet been sent —
// drives child scheduling with the relay's own bandwidth budget and share
// allocation, independent of the upstream tier's.
//
// Provenance and loop-avoidance: re-exported refreshes keep the origin
// source id (wire.Refresh.Origin) and carry an incremented hop count and
// the path of relays traversed (wire.Refresh.Hops/.Via). A refresh whose
// path already contains this relay — or whose origin is the relay itself —
// crossed a topology cycle and is rejected at intake, never applied or
// re-exported (RelayStats.Looped; see rejectCycle for why applying it
// would be worse than dropping it). A refresh that has already crossed
// MaxHops tiers is applied locally but not forwarded
// (RelayStats.HopLimited).
//
// Divergence composition: the divergence a leaf sees against the origin is
// at most the upstream staleness (origin value vs relay copy — the upstream
// session's tracker) plus the relay's un-forwarded delta (relay copy vs
// what the leaf was sent — the child session's tracker); see
// docs/algorithm-specifications.md §8.
type Relay struct {
	cfg   RelayConfig
	cache *Cache
	src   *Source

	mu         sync.Mutex
	forwarded  int
	looped     int
	hopLimited int
	suppressed int  // apply batches not re-exported (no live children)
	storeAhead bool // suppression happened: the source's objs lag the store
	// Face-rebalance state (TotalBandwidth + Rebalance): smoothed
	// contribution scores per face, the operator's configured split as
	// base weights, and the observation-window marks.
	faceReb          *alloc.Rebalancer
	upBW, downBW     float64
	upBase, downBase float64
	faceRebalances   int
	lastUpApplied    int
	lastDownSent     int

	stop      chan struct{}
	closeOnce sync.Once
}

// NewRelay starts a relay node: upstream is the endpoint the tier above
// sends refreshes to (the relay serves it as a cache), children are the
// downstream destinations (the relay dials them as a source). Close the
// relay (not the endpoint) to shut down.
func NewRelay(cfg RelayConfig, upstream transport.CacheEndpoint, children []Destination) (*Relay, error) {
	if cfg.ID == "" {
		cfg.ID = "relay"
	}
	if cfg.Cache.ID != "" || cfg.Cache.OnApply != nil || cfg.Cache.Reject != nil || cfg.Cache.Now != nil {
		return nil, fmt.Errorf("runtime: RelayConfig.Cache.{ID,OnApply,Reject,Now} are owned by the relay; configure RelayConfig.ID/Now instead")
	}
	if cfg.Cache.Policy.CacheDriven() {
		// The relay's re-export hook rides the apply path, which pushed
		// AND hybrid-polled refreshes both take — but a PURE cache-driven
		// upstream face has no feedback channel for the held-version acks
		// the re-export machinery leans on, so only push and hybrid are
		// supported upstream.
		return nil, fmt.Errorf("runtime: relay upstream faces support the push and hybrid policies (got %v)", cfg.Cache.Policy)
	}
	if cfg.TotalBandwidth > 0 {
		// Shared face budget: unset faces default to half the total each;
		// explicitly set faces are kept as a RATIO and normalized so the
		// initial split already sums to the total — otherwise the first
		// rebalance pass would snap the aggregate from Σfaces to
		// TotalBandwidth, a silent mid-run budget cliff.
		up, down := cfg.Cache.Bandwidth, cfg.ChildBandwidth
		switch {
		case up <= 0 && down <= 0:
			up, down = cfg.TotalBandwidth/2, cfg.TotalBandwidth/2
		case up <= 0:
			if down >= cfg.TotalBandwidth {
				down = cfg.TotalBandwidth / 2
			}
			up = cfg.TotalBandwidth - down
		case down <= 0:
			if up >= cfg.TotalBandwidth {
				up = cfg.TotalBandwidth / 2
			}
			down = cfg.TotalBandwidth - up
		default:
			scale := cfg.TotalBandwidth / (up + down)
			up, down = up*scale, down*scale
		}
		cfg.Cache.Bandwidth, cfg.ChildBandwidth = up, down
	}
	if cfg.ChildBandwidth <= 0 {
		cfg.ChildBandwidth = 1000
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 8
	}
	r := &Relay{cfg: cfg, stop: make(chan struct{})}
	src, err := NewFanoutSource(SourceConfig{
		ID:         cfg.ID,
		Metric:     cfg.Metric,
		Delta:      cfg.Delta,
		PriorityFn: cfg.PriorityFn,
		Bandwidth:  cfg.ChildBandwidth,
		Tick:       cfg.Tick,
		Params:     cfg.Params,
		Policy:     cfg.ChildPolicy,
		Hybrid:     cfg.Hybrid,
		Rebalance:  cfg.Rebalance,
		Group:      cfg.Group,
		Now:        cfg.Now,
	}, children)
	if err != nil {
		return nil, err
	}
	r.src = src
	cacheCfg := cfg.Cache
	cacheCfg.ID = cfg.ID
	cacheCfg.Now = cfg.Now
	cacheCfg.OnApply = r.reexport
	cacheCfg.Reject = r.rejectCycle
	r.cache = NewCache(cacheCfg, upstream)
	r.upBW = r.cache.Bandwidth()
	r.downBW = cfg.ChildBandwidth
	// The configured split is the faces' base-weight ratio: it scales their
	// contribution scores and is what an all-idle window falls back to, so
	// an operator's asymmetric split survives rebalancing instead of
	// snapping to half-half.
	r.upBase, r.downBase = r.upBW, r.downBW
	if cfg.TotalBandwidth > 0 && cfg.Rebalance > 0 {
		// Faces must not starve each other outright: a face floored at a
		// fifth of its fair half keeps absorbing or sending enough to
		// regrow its demand signal and earn the budget back.
		r.faceReb = &alloc.Rebalancer{FloorFrac: 0.2}
		go r.rebalanceFaces()
	}
	return r, nil
}

// AddChild starts a sync session toward a new downstream cache on a
// running relay, re-dividing the child budget across all children; the new
// child is synchronized from the relay's full store. See
// Source.AddDestination.
//
// If re-exports were suppressed while the relay had no children, the
// source's object set lags the store, so the store is re-exported once to
// bring the child face back in step (for the value-deviation metric the
// surviving children see no extra sends from this — their re-observed
// divergence is zero).
func (r *Relay) AddChild(d Destination) error {
	if err := r.src.AddDestination(d); err != nil {
		return err
	}
	r.mu.Lock()
	behind := r.storeAhead
	r.storeAhead = false
	r.mu.Unlock()
	if behind {
		r.ReexportStore()
	}
	return nil
}

// RemoveChild stops the session toward the child whose Destination.CacheID
// is cacheID and re-divides the child budget across the survivors. See
// Source.RemoveDestination.
func (r *Relay) RemoveChild(cacheID string) error { return r.src.RemoveDestination(cacheID) }

// rebalanceFaces is the relay's up/down budget pass: every Rebalance
// interval it scores each face by observed demand — budget actually used
// during the window plus backlog still waiting (intake queue on the cache
// face, over-threshold objects on the child face) — smooths the scores,
// and re-splits TotalBandwidth between Cache.SetBandwidth and
// Source.SetBandwidth. A face that spent its budget and still has work
// queued earns more; an idle face decays toward the floor, surrendering
// intake capacity the upstream is not using to the children (and vice
// versa).
func (r *Relay) rebalanceFaces() {
	ticker := time.NewTicker(r.cfg.Rebalance)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		cs := r.cache.Stats()
		ss := r.src.Stats()
		r.mu.Lock()
		// Window deltas over aggregates that can shrink: RemoveChild takes
		// the removed session's historical refreshes out of the source
		// aggregate, so a removal window would otherwise read as hugely
		// negative use and zero the face's budget.
		upUsed := max(0, cs.Refreshes-r.lastUpApplied)
		r.lastUpApplied = cs.Refreshes
		downUsed := max(0, ss.Refreshes-r.lastDownSent)
		r.lastDownSent = ss.Refreshes
		// Down-face backlog counts only sessions that can deliver: a
		// redialing child's queue holds the whole store but its sends go
		// nowhere, and letting that phantom backlog capture budget from
		// the intake face is the same starvation the session-level
		// rebalancer guards against.
		pending := 0
		for _, sess := range ss.Sessions {
			if !sess.Ended && !sess.Redialing {
				pending += sess.Pending
			}
		}
		r.faceReb.Observe([]alloc.Consumer{
			{ID: "up", Base: r.upBase, Demand: float64(upUsed + r.cache.backlog())},
			{ID: "down", Base: r.downBase, Demand: float64(downUsed + pending)},
		})
		w := r.faceReb.Weights([]string{"up", "down"}, []float64{r.upBase, r.downBase})
		shares := alloc.Proportional(r.cfg.TotalBandwidth, w)
		r.upBW, r.downBW = shares[0], shares[1]
		r.faceRebalances++
		r.mu.Unlock()
		r.cache.SetBandwidth(shares[0])
		r.src.SetBandwidth(shares[1])
	}
}

// rejectCycle drops refreshes that crossed a topology cycle (this relay is
// already on their path, or is their origin) before they reach the store.
// Rejecting at intake — rather than applying and merely skipping the
// re-export — matters because each hop re-issues epochs: a cycled copy
// applied under the cycle peer's newer epoch would capture the entry and
// shadow every subsequent direct refresh as stale.
func (r *Relay) rejectCycle(ref wire.Refresh) bool {
	if ref.OriginID() != r.cfg.ID && !slices.Contains(ref.Via, r.cfg.ID) {
		return false
	}
	r.mu.Lock()
	r.looped++
	r.mu.Unlock()
	return true
}

// reexport converts a batch of applied upstream refreshes into child
// updates. It runs on the cache's shard workers, so refreshes for one
// object arrive in apply order while distinct objects may be re-exported
// concurrently — the same ordering contract Update gives a plain source.
//
// Loop check: a refresh is dropped from re-export when this relay already
// appears on its path — either as the origin or anywhere in the Via path
// vector. The path check is what bounds real topology cycles (A→B→A): in a
// cycle the origin is the root source at every hop and never matches, but
// the cycle's relays accumulate on Via, so the second visit is caught.
func (r *Relay) reexport(applied []wire.Refresh) {
	if r.src.LiveDestinations() == 0 {
		// No live children: skip the source-mutex round trip entirely —
		// today's apply batch has nobody to go to. The storeAhead flag
		// makes AddChild seed the next child from the store, which has
		// everything these suppressed batches carried.
		r.mu.Lock()
		r.suppressed++
		r.storeAhead = true
		r.mu.Unlock()
		return
	}
	var looped, hopLimited int
	updates := make([]RelayedUpdate, 0, len(applied))
	for _, ref := range applied {
		origin := ref.OriginID()
		if origin == r.cfg.ID || slices.Contains(ref.Via, r.cfg.ID) {
			looped++ // defense in depth; rejectCycle already filters these
			continue
		}
		// Depth = max of the declared hop count and the path length, so a
		// sender under-reporting Hops cannot bypass the ceiling (Via is
		// what relays actually append to; Hops is the displayed summary).
		hops := ref.Hops
		if l := len(ref.Via); l > hops {
			hops = l
		}
		if hops+1 > r.cfg.MaxHops {
			hopLimited++
			continue
		}
		via := make([]string, 0, len(ref.Via)+1)
		via = append(append(via, ref.Via...), r.cfg.ID)
		oe, ov := ref.OriginAxis() // preserved unchanged across every hop
		updates = append(updates, RelayedUpdate{
			ObjectID: ref.ObjectID,
			Value:    ref.Value,
			Prov:     Provenance{Origin: origin, Hops: hops + 1, Via: via, Epoch: oe, Version: ov},
		})
	}
	// One lock round-trip for the whole apply batch: shard workers must
	// not serialize on the source mutex message by message.
	r.src.UpdateFromAll(updates)
	r.mu.Lock()
	r.forwarded += len(updates)
	r.looped += looped
	r.hopLimited += hopLimited
	r.mu.Unlock()
}

// ReexportStore re-exports every locally cached entry to the children as
// if it had just been applied. This is the warm-up path for a relay
// restarted from a snapshot: LoadSnapshot installs entries directly into
// the store without passing through the apply hook, so without this call
// the children would only learn snapshot-restored objects when the origin
// next updates them. Provenance is taken from the stored entries and the
// usual loop/hop guards apply.
//
// The re-export happens under each shard's lock: a live apply for the same
// object is thereby serialized against the snapshot read, so a racing
// fresher value always reaches the child sessions after — never before —
// the snapshot one (the lock order shard→source is taken nowhere else in
// reverse).
//
// Snapshot-age protection: the snapshot is as old as its last save, and
// although each re-export carries this incarnation's fresh sender epoch, it
// preserves the ORIGIN's version axis — so a child holding a newer value
// drops the stale re-export at intake (the origin-axis staleness guard) and
// acknowledges its held version on feedback (wire.Feedback.Held), which
// cancels this relay's remaining queued re-sends for objects the child is
// already at-or-ahead of (SessionStats.HeldSkips). The child never
// regresses; the only waste is the re-exports that race ahead of its first
// feedback.
func (r *Relay) ReexportStore() {
	for _, sh := range r.cache.shards {
		sh.mu.Lock()
		batch := make([]wire.Refresh, 0, len(sh.store))
		for id, e := range sh.store {
			batch = append(batch, wire.Refresh{
				SourceID:      e.Source,
				ObjectID:      id,
				Origin:        e.Origin,
				Hops:          e.Hops,
				Via:           e.Via,
				OriginEpoch:   e.OriginEpoch,
				OriginVersion: e.OriginVersion,
				Value:         e.Value,
				Version:       e.Version,
				Epoch:         e.Epoch,
			})
		}
		if len(batch) > 0 {
			r.reexport(batch)
		}
		sh.mu.Unlock()
	}
}

// ID returns the relay's identity (shared by both faces).
func (r *Relay) ID() string { return r.cfg.ID }

// Cache returns the upstream-facing cache, for reads (Get/Len), snapshots
// and the HTTP status handler. The store it serves is the relay's local
// copy of everything applied so far.
func (r *Relay) Cache() *Cache { return r.cache }

// Get returns the relay's local copy of an object.
func (r *Relay) Get(objectID string) (Entry, bool) { return r.cache.Get(objectID) }

// Len returns the number of locally cached objects.
func (r *Relay) Len() int { return r.cache.Len() }

// Stats snapshots both faces and the re-export counters.
func (r *Relay) Stats() RelayStats {
	st := RelayStats{
		Upstream:   r.cache.Stats(),
		Downstream: r.src.Stats(),
	}
	r.mu.Lock()
	st.Forwarded = r.forwarded
	st.Looped = r.looped
	st.HopLimited = r.hopLimited
	st.SuppressedBatches = r.suppressed
	st.UpBandwidth = r.upBW
	st.DownBandwidth = r.downBW
	st.FaceRebalances = r.faceRebalances
	r.mu.Unlock()
	return st
}

// Close stops the upstream cache first (no new applies, so no new
// re-exports) and then the downstream source, returning the first error.
// In-flight child refreshes are cut off with the connections, exactly as
// for a plain fan-out source.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() { close(r.stop) })
	err := r.cache.Close()
	if serr := r.src.Close(); err == nil {
		err = serr
	}
	return err
}
