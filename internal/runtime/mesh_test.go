package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// pinnedParams returns a threshold configuration frozen at th: α = ω = 1
// means neither sends nor feedback ever move it, so tests can reason about
// exactly which deviations cross a tier.
func pinnedParams(th float64) core.Params {
	return core.Params{Alpha: 1, Omega: 1, InitialThreshold: th, DisableBeta: true}
}

// TestSourceSuppressWithinThreshold exercises the threshold-aware fan-out
// suppression at the source level: updates provably within every live
// session's threshold defer the per-session scheduling work (counted in
// SourceStats.SuppressedObserves) without sending anything, and a later
// over-threshold jump still propagates — the deferral moves bookkeeping,
// never data.
func TestSourceSuppressWithinThreshold(t *testing.T) {
	local := transport.NewLocal(64)
	cache := NewCache(CacheConfig{ID: "c1", Bandwidth: 4000, Tick: 5 * time.Millisecond}, local)
	defer cache.Close()
	conn, err := local.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Params:                  pinnedParams(5),
		SuppressWithinThreshold: true,
	}, []Destination{{CacheID: "c1", Conn: conn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// The area priority of an object is the area ABOVE its divergence
	// curve: a value that appears at time t and then holds still carries a
	// frozen priority of value·t. Waiting before the first update makes
	// that area clear the pinned threshold deterministically, anchoring
	// the session's sent-state the suppression guard compares against.
	time.Sleep(200 * time.Millisecond)
	src.Update("s1/x", 100)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("s1/x")
		return ok && e.Value == 100
	}, "initial value to reach the cache")

	// Sub-threshold jitter: every wiggle stays within 0.25 of the sent
	// value against a threshold pinned at 5.
	for i := 0; i < 20; i++ {
		src.Update("s1/x", 100+0.25*float64(1-2*(i%2)))
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().SuppressedObserves >= 5
	}, "below-threshold updates to be deferred")
	if st := src.Stats(); st.Sessions[0].Refreshes > 2 {
		t.Errorf("sub-threshold jitter was sent: session refreshes = %d, want ≤ 2", st.Sessions[0].Refreshes)
	}

	// An over-threshold jump must cut through the deferral: the ≥100 ms
	// wiggle window spent near the sent value prices the jump's area at
	// ≥100·0.1 = 10, past the pinned 5.
	src.Update("s1/x", 200)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("s1/x")
		return ok && e.Value == 200
	}, "over-threshold jump to propagate")
}

// TestRelayThresholdSuppressed pins the satellite counter end to end: a
// relay tier whose child session is provably within its (frozen) threshold
// defers the re-export fan-out and reports it as
// RelayStats.ThresholdSuppressed, while the child keeps the last
// over-threshold value.
func TestRelayThresholdSuppressed(t *testing.T) {
	childNet := transport.NewLocal(64)
	child := NewCache(CacheConfig{ID: "leaf", Bandwidth: 4000, Tick: 5 * time.Millisecond}, childNet)
	defer child.Close()
	childConn, err := childNet.Dial("relay-1")
	if err != nil {
		t.Fatal(err)
	}
	upNet := transport.NewLocal(64)
	relay, err := NewRelay(RelayConfig{
		ID:     "relay-1",
		Cache:  CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond},
		Metric: metric.ValueDeviation,
		Tick:   5 * time.Millisecond,
		Params: pinnedParams(5),
	}, upNet, []Destination{{CacheID: "leaf", Conn: childConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	upConn, err := upNet.Dial("origin")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "origin", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6), // the origin forwards everything
	}, []Destination{{CacheID: "relay-1", Conn: upConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Hold before the first update so its area priority (value·elapsed)
	// clears the relay tier's pinned threshold — a flat divergence curve
	// accrues nothing after the step.
	time.Sleep(200 * time.Millisecond)
	src.Update("origin/x", 50)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := child.Get("origin/x")
		return ok && e.Value == 50
	}, "initial value to reach the leaf")

	// Jitter within the child threshold reaches the relay (the origin's
	// threshold is ~zero) but must not fan out to the child session.
	for i := 0; i < 20; i++ {
		src.Update("origin/x", 50+0.25*float64(1-2*(i%2)))
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 2*time.Second, func() bool {
		return relay.Stats().ThresholdSuppressed >= 5
	}, "relay to defer below-threshold re-exports")
	if e, _ := child.Get("origin/x"); e.Value != 50 {
		t.Errorf("leaf saw sub-threshold jitter: value = %v, want 50", e.Value)
	}

	src.Update("origin/x", 200)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := child.Get("origin/x")
		return ok && e.Value == 200
	}, "over-threshold jump to traverse both tiers")
}

// TestMeshMutualPeersNoRecirculation is the two-node mesh acceptance test:
// A and B are mutual peers (each dials the other), the origin feeds only A.
// Every update must reach B exactly one hop laterally, and no copy may
// circulate more than once — B's echo of A's re-export is rejected at A's
// intake by the path-vector guard (or never sent at all once split horizon
// learns the peer identity), so every entry in the mesh has a path no
// longer than one hop.
func TestMeshMutualPeersNoRecirculation(t *testing.T) {
	epA := transport.NewLocal(64)
	epB := transport.NewLocal(64)

	connAtoB, err := epB.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	nodeA, err := NewNode(NodeConfig{
		ID:            "A",
		Intake:        CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 4000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		Params:        pinnedParams(1e-6),
	}, epA, []Destination{{CacheID: "B", Conn: connAtoB}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	connBtoA, err := epA.Dial("B")
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := NewNode(NodeConfig{
		ID:            "B",
		Intake:        CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 4000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		Params:        pinnedParams(1e-6),
	}, epB, []Destination{{CacheID: "A", Conn: connBtoA}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	originConn, err := epA.Dial("origin")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "origin", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6),
	}, []Destination{{CacheID: "A", Conn: originConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const objects = 5
	for i := 0; i < objects; i++ {
		src.Update(fmt.Sprintf("origin/obj-%d", i), float64(10*(i+1)))
	}
	for i := 0; i < objects; i++ {
		id, want := fmt.Sprintf("origin/obj-%d", i), float64(10*(i+1))
		waitFor(t, 3*time.Second, func() bool {
			e, ok := nodeB.Get(id)
			return ok && e.Value == want
		}, fmt.Sprintf("%s to reach B laterally", id))
	}

	// B's copies came exactly one hop through A; A's came straight from
	// the origin. A longer Via anywhere would mean a copy went around the
	// A↔B cycle.
	for i := 0; i < objects; i++ {
		id := fmt.Sprintf("origin/obj-%d", i)
		if e, _ := nodeB.Get(id); e.Source != "A" || e.Origin != "origin" || e.Hops != 1 ||
			len(e.Via) != 1 || e.Via[0] != "A" {
			t.Errorf("B entry %s provenance = source %q origin %q hops %d via %v, want A/origin/1/[A]",
				id, e.Source, e.Origin, e.Hops, e.Via)
		}
		if e, _ := nodeA.Get(id); e.Source != "origin" || e.Origin != "" || len(e.Via) != 0 {
			t.Errorf("A entry %s provenance = source %q origin %q via %v, want direct origin copy",
				id, e.Source, e.Origin, e.Via)
		}
	}

	// Every echo B actually sent back to A was rejected at A's intake —
	// the cycle is cut after one lateral hop. (Split horizon usually stops
	// the echoes from being sent at all; both counters then read zero.)
	waitFor(t, 2*time.Second, func() bool {
		return nodeA.Stats().Looped == nodeB.Stats().Peers.Refreshes
	}, "every echo from B to be rejected at A")
	ast, bst := nodeA.Stats(), nodeB.Stats()
	if ast.Intake.Rejected != ast.Looped {
		t.Errorf("A rejected=%d looped=%d, want the counters mirrored", ast.Intake.Rejected, ast.Looped)
	}
	if ast.Intake.PeerServed != 0 {
		t.Errorf("A peer-served = %d, want 0 (all its copies are direct)", ast.Intake.PeerServed)
	}
	if bst.Intake.PeerServed < objects {
		t.Errorf("B peer-served = %d, want ≥ %d (every object arrived laterally)", bst.Intake.PeerServed, objects)
	}
	if bst.Looped != 0 {
		t.Errorf("B looped = %d, want 0 (nothing should ever come back around to B)", bst.Looped)
	}
}

// TestLateralPollServing covers the cache-driven half of the peer face: a
// polling cache attached to a node is served the node's RELAYED copies —
// provenance intact — straight from the lateral store, and once the cache
// advertises what it already holds (wire.Poll.Known) the node stops
// re-sending fresh items (SessionStats.PollOmits).
func TestLateralPollServing(t *testing.T) {
	transport.SetDialCapabilities(wire.CapPeer)
	defer transport.SetDialCapabilities(0)

	// Polling cache C, whose only "source" is node A's peer face.
	epC := transport.NewLocal(64)
	pollCache := NewCache(CacheConfig{
		ID: "C", Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Policy: PolicyIdeal,
		Poll: PollConfig{
			ReSolveEvery: 150 * time.Millisecond,
			Seed:         1,
			TrueRate:     func(string) float64 { return 5 },
		},
	}, epC)
	defer pollCache.Close()

	connAtoC, err := epC.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	epA := transport.NewLocal(64)
	nodeA, err := NewNode(NodeConfig{
		ID:            "A",
		Intake:        CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 4000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		PeerPolicy:    PolicyIdeal, // pure poll face: lateral serving only
	}, epA, []Destination{{CacheID: "C", Conn: connAtoC}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	originConn, err := epA.Dial("origin")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "origin", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6),
	}, []Destination{{CacheID: "A", Conn: originConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("origin/x", 7)
	src.Update("origin/y", 9)

	// C discovers and installs A's relayed copies through polls, with the
	// origin-axis provenance stamped on the reply items: the poll-served
	// copy is attributable exactly like a pushed one.
	for _, tc := range []struct {
		id   string
		want float64
	}{{"origin/x", 7}, {"origin/y", 9}} {
		waitFor(t, 3*time.Second, func() bool {
			e, ok := pollCache.Get(tc.id)
			return ok && e.Value == tc.want
		}, tc.id+" to be poll-served laterally")
		e, _ := pollCache.Get(tc.id)
		if e.Source != "A" || e.Origin != "origin" || e.Hops != 1 || len(e.Via) != 1 || e.Via[0] != "A" {
			t.Errorf("%s provenance = source %q origin %q hops %d via %v, want A/origin/1/[A]",
				tc.id, e.Source, e.Origin, e.Hops, e.Via)
		}
	}
	if st := pollCache.Stats(); st.PeerServed < 2 {
		t.Errorf("poll cache peer-served = %d, want ≥ 2 (both copies arrived through an intermediary)", st.PeerServed)
	}

	// With the values unchanged, C's subsequent polls carry known-version
	// hints and A omits the fresh items from its replies.
	waitFor(t, 3*time.Second, func() bool {
		return nodeA.Stats().Peers.PollOmits > 0
	}, "known-version hints to suppress redundant reply items")
}

// deepChainEndpoint abstracts the transport for the deep-chain test.
type deepChainEndpoint struct {
	ep      transport.CacheEndpoint
	dial    func(srcID string) transport.SourceConn
	cleanup func()
}

func newDeepChainEndpoint(t *testing.T, tcp bool) deepChainEndpoint {
	t.Helper()
	if tcp {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ep := transport.Serve(ln, 64)
		addr := ln.Addr().String()
		return deepChainEndpoint{
			ep: ep,
			dial: func(srcID string) transport.SourceConn {
				conn, err := transport.Dial(addr, srcID)
				if err != nil {
					t.Fatal(err)
				}
				return conn
			},
			cleanup: func() { ep.Close() },
		}
	}
	local := transport.NewLocal(64)
	return deepChainEndpoint{
		ep: local,
		dial: func(srcID string) transport.SourceConn {
			conn, err := local.Dial(srcID)
			if err != nil {
				t.Fatal(err)
			}
			return conn
		},
		cleanup: func() { local.Close() },
	}
}

// deepChain is origin → n1 → n2 → n3 → n4: three Node tiers re-exporting
// down a chain, a plain cache as the final tier.
type deepChain struct {
	src   *Source
	nodes []*Node // n1, n2, n3
	tail  *Cache  // n4
}

func buildDeepChain(t *testing.T, tcp bool, maxHops int, tierThreshold float64) (*deepChain, func()) {
	t.Helper()
	var cleanups []func()
	eps := make([]deepChainEndpoint, 4)
	for i := range eps {
		eps[i] = newDeepChainEndpoint(t, tcp)
		cleanups = append(cleanups, eps[i].cleanup)
	}
	tail := NewCache(CacheConfig{ID: "n4", Bandwidth: 4000, Tick: 5 * time.Millisecond}, eps[3].ep)
	cleanups = append(cleanups, func() { tail.Close() })

	nodes := make([]*Node, 3)
	for i := 2; i >= 0; i-- { // n3 first: each tier dials the one below
		id := fmt.Sprintf("n%d", i+1)
		downID := fmt.Sprintf("n%d", i+2)
		peer := Destination{CacheID: downID, Conn: eps[i+1].dial(id)}
		node, err := NewNode(NodeConfig{
			ID:            id,
			Intake:        CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond},
			PeerBandwidth: 4000,
			Metric:        metric.ValueDeviation,
			Tick:          5 * time.Millisecond,
			Params:        pinnedParams(tierThreshold),
			MaxHops:       maxHops,
		}, eps[i].ep, []Destination{peer})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		cleanups = append(cleanups, func() { node.Close() })
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "origin", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6), // the origin itself filters nothing
	}, []Destination{{CacheID: "n1", Conn: eps[0].dial("origin")}})
	if err != nil {
		t.Fatal(err)
	}
	cleanups = append(cleanups, func() { src.Close() })
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	return &deepChain{src: src, nodes: nodes, tail: tail}, cleanup
}

// TestDeepChainThresholdsAndHops runs the >3-tier chain on both transports
// and pins the two depth limits: per-tier thresholds stop sub-threshold
// jitter mid-chain (the composition of §8 across tiers), and MaxHops stops
// re-export at the configured depth even for over-threshold values.
func TestDeepChainThresholdsAndHops(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := "local"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			t.Run("thresholds-bind", func(t *testing.T) {
				chain, cleanup := buildDeepChain(t, tcp, 0 /* default MaxHops */, 5)
				defer cleanup()

				// Hold before the first update: each tier's session prices
				// the arriving step at value·(apply time since that tier
				// started), so the pause puts it past every pinned 5.
				time.Sleep(250 * time.Millisecond)
				chain.src.Update("origin/x", 100)
				waitFor(t, 5*time.Second, func() bool {
					e, ok := chain.tail.Get("origin/x")
					return ok && e.Value == 100
				}, "initial value to traverse all four tiers")
				if e, _ := chain.tail.Get("origin/x"); e.Origin != "origin" || e.Hops != 3 ||
					len(e.Via) != 3 || e.Via[0] != "n1" || e.Via[1] != "n2" || e.Via[2] != "n3" {
					t.Errorf("tier-4 provenance = origin %q hops %d via %v, want origin/3/[n1 n2 n3]",
						e.Origin, e.Hops, e.Via)
				}

				// Jitter within each tier's frozen threshold: n1 keeps
				// applying it (the origin forwards everything), but the
				// n1→n2 session is provably within threshold, so nothing
				// moves past tier 2.
				for i := 0; i < 20; i++ {
					chain.src.Update("origin/x", 100+0.25*float64(1-2*(i%2)))
					time.Sleep(5 * time.Millisecond)
				}
				waitFor(t, 3*time.Second, func() bool {
					e, ok := chain.nodes[0].Get("origin/x")
					return ok && e.Value != 100
				}, "jitter to reach tier 2")
				waitFor(t, 3*time.Second, func() bool {
					return chain.nodes[0].Stats().ThresholdSuppressed >= 5
				}, "tier 2 to defer the sub-threshold fan-out")
				if e, _ := chain.tail.Get("origin/x"); e.Value != 100 {
					t.Errorf("tier 4 saw sub-threshold jitter: value = %v, want 100", e.Value)
				}

				chain.src.Update("origin/x", 200)
				waitFor(t, 5*time.Second, func() bool {
					e, ok := chain.tail.Get("origin/x")
					return ok && e.Value == 200
				}, "over-threshold jump to traverse all four tiers")
			})

			t.Run("maxhops-bind", func(t *testing.T) {
				// MaxHops 2 lets a value cross two re-exports (reaching
				// n3) and stops the third: n3 applies but must not
				// forward, and n4 never hears of the object.
				chain, cleanup := buildDeepChain(t, tcp, 2, 1e-6)
				defer cleanup()

				chain.src.Update("origin/y", 42)
				waitFor(t, 5*time.Second, func() bool {
					e, ok := chain.nodes[2].Get("origin/y")
					return ok && e.Value == 42
				}, "value to reach tier 3 (two hops)")
				waitFor(t, 3*time.Second, func() bool {
					return chain.nodes[2].Stats().HopLimited >= 1
				}, "tier 3 to drop the re-export at the hop ceiling")
				time.Sleep(150 * time.Millisecond) // would-be delivery window
				if _, ok := chain.tail.Get("origin/y"); ok {
					t.Error("tier 4 received a value beyond MaxHops")
				}
			})
		})
	}
}
