package runtime

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// StatusObject is one cached entry in a status report.
type StatusObject struct {
	ID        string    `json:"id"`
	Value     float64   `json:"value"`
	Version   uint64    `json:"version"`
	Source    string    `json:"source"`
	Origin    string    `json:"origin,omitempty"` // originating node when relayed
	Hops      int       `json:"hops,omitempty"`   // relay tiers the copy crossed
	Refreshed time.Time `json:"refreshed"`
	AgeMillis int64     `json:"age_ms"`
}

// Status is the cache's observability snapshot, merged across shards.
type Status struct {
	CacheID    string  `json:"cache_id"`
	Policy     string  `json:"policy"` // push | ideal | cgm1 | cgm2
	Objects    int     `json:"objects"`
	Sources    int     `json:"sources"`
	Refreshes  int     `json:"refreshes"`
	Feedbacks  int     `json:"feedbacks"`
	Stale      int     `json:"stale_dropped"`
	Misrouted  int     `json:"misrouted,omitempty"`
	Rejected   int     `json:"rejected,omitempty"` // dropped by the intake filter (relay loop guard)
	Divergence float64 `json:"divergence_absorbed"`
	Bandwidth  float64 `json:"bandwidth_msgs_per_s"`
	Shards     int     `json:"shards"`
	ApplyRate  float64 `json:"apply_rate_msgs_per_s"`
	// Poll-policy counters (zero/omitted under push): poll requests sent,
	// reply items received, completed allocation solves.
	Polls       int            `json:"polls,omitempty"`
	PollReplies int            `json:"poll_replies,omitempty"`
	Resolves    int            `json:"resolves,omitempty"`
	Sample      []StatusObject `json:"sample,omitempty"`
}

// Status returns a snapshot including up to sample cached objects (the most
// recently refreshed first).
func (c *Cache) Status(sample int) Status {
	st := c.Stats()
	out := Status{
		CacheID:     c.cfg.ID,
		Policy:      c.cfg.Policy.String(),
		Objects:     c.Len(),
		Sources:     st.Sources,
		Refreshes:   st.Refreshes,
		Feedbacks:   st.Feedbacks,
		Stale:       st.Stale,
		Misrouted:   st.Misrouted,
		Rejected:    st.Rejected,
		Divergence:  st.Divergence,
		Bandwidth:   c.Bandwidth(),
		Shards:      len(c.shards),
		ApplyRate:   c.ApplyRate(),
		Polls:       st.Polls,
		PollReplies: st.PollReplies,
		Resolves:    st.Resolves,
	}
	if sample <= 0 {
		return out
	}
	now := c.cfg.Now()
	var objs []StatusObject
	for _, sh := range c.shards {
		sh.mu.Lock()
		for id, e := range sh.store {
			objs = append(objs, StatusObject{
				ID:        id,
				Value:     e.Value,
				Version:   e.Version,
				Source:    e.Source,
				Origin:    e.Origin,
				Hops:      e.Hops,
				Refreshed: e.Refreshed,
				AgeMillis: now.Sub(e.Refreshed).Milliseconds(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(objs, func(i, j int) bool {
		if !objs[i].Refreshed.Equal(objs[j].Refreshed) {
			return objs[i].Refreshed.After(objs[j].Refreshed)
		}
		return objs[i].ID < objs[j].ID
	})
	if len(objs) > sample {
		objs = objs[:sample]
	}
	out.Sample = objs
	return out
}

// StatusHandler serves the cache status as JSON — mount it on a mux for
// operational visibility:
//
//	http.Handle("/status", cache.StatusHandler(100))
func (c *Cache) StatusHandler(sample int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Status(sample)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
