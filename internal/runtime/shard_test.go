package runtime

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// shardedCache builds a cache with an explicit shard count over a Local
// network with an unconstrained processing budget.
func shardedCache(shards int, net transport.CacheEndpoint) *Cache {
	return NewCache(CacheConfig{
		Bandwidth: 1e7,
		Tick:      2 * time.Millisecond,
		Shards:    shards,
	}, net)
}

// pump sends n distinct-object refreshes in batches of batch and waits for
// all of them to be applied.
func pump(t *testing.T, c *Cache, conn transport.SourceConn, n, batch int) {
	t.Helper()
	rs := make([]wire.Refresh, 0, batch)
	for i := 0; i < n; i++ {
		rs = append(rs, wire.Refresh{
			SourceID: "s1",
			ObjectID: fmt.Sprintf("s1/obj-%d", i),
			Value:    float64(i),
			Version:  1,
		})
		if len(rs) == batch || i == n-1 {
			if err := conn.SendBatch(rs); err != nil {
				t.Fatal(err)
			}
			rs = rs[:0]
		}
	}
	waitFor(t, 5*time.Second, func() bool { return c.Len() == n },
		fmt.Sprintf("%d objects to be applied", n))
}

func TestSingleShardBehavesLikeUnsharded(t *testing.T) {
	net := transport.NewLocal(64)
	c := shardedCache(1, net)
	defer c.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pump(t, c, conn, 50, 8)
	if c.Shards() != 1 {
		t.Errorf("shards = %d, want 1", c.Shards())
	}
	st := c.Stats()
	if st.Refreshes != 50 {
		t.Errorf("refreshes = %d, want 50", st.Refreshes)
	}
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(fmt.Sprintf("s1/obj-%d", i)); !ok {
			t.Fatalf("object %d missing", i)
		}
	}
}

func TestMoreShardsThanObjects(t *testing.T) {
	net := transport.NewLocal(64)
	c := shardedCache(32, net)
	defer c.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pump(t, c, conn, 3, 3) // 3 objects across 32 shards
	if got := c.Len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
	st := c.Stats()
	if st.Refreshes != 3 {
		t.Errorf("refreshes = %d, want 3", st.Refreshes)
	}
}

func TestShardStatsMerge(t *testing.T) {
	net := transport.NewLocal(64)
	c := shardedCache(4, net)
	defer c.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pump(t, c, conn, 200, 16)

	// Stats must account for every applied refresh across all shards, and
	// the store must be spread over more than one shard.
	st := c.Stats()
	if st.Refreshes != 200 {
		t.Errorf("merged refreshes = %d, want 200", st.Refreshes)
	}
	populated := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		if len(sh.store) > 0 {
			populated++
		}
		sh.mu.Unlock()
	}
	if populated < 2 {
		t.Errorf("only %d of 4 shards populated — hash not spreading", populated)
	}
}

func TestShardedStaleAndDivergenceAccounting(t *testing.T) {
	net := transport.NewLocal(64)
	c := shardedCache(4, net)
	defer c.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(ver uint64, val float64) {
		if err := conn.SendRefresh(wire.Refresh{
			SourceID: "s1", ObjectID: "s1/x", Version: ver, Value: val,
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(2, 10)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := c.Get("s1/x")
		return ok && e.Version == 2
	}, "version 2 to land")
	send(1, 99) // stale: lower version, same (zero) epoch
	send(3, 14) // |14-10| = 4 divergence absorbed
	waitFor(t, 2*time.Second, func() bool {
		e, _ := c.Get("s1/x")
		return e.Version == 3
	}, "version 3 to land")
	waitFor(t, 2*time.Second, func() bool { return c.Stats().Stale == 1 },
		"stale drop to be counted")
	st := c.Stats()
	if st.Divergence != 4 {
		t.Errorf("divergence = %v, want 4", st.Divergence)
	}
	if e, _ := c.Get("s1/x"); e.Value != 14 {
		t.Errorf("value = %v, want 14", e.Value)
	}
}

func TestSnapshotAcrossShardCounts(t *testing.T) {
	// A snapshot saved by an 8-shard cache must load into a 2-shard cache
	// (and vice versa): the on-disk format is shard-free.
	netA := transport.NewLocal(64)
	a := shardedCache(8, netA)
	defer a.Close()
	connA, err := netA.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	pump(t, a, connA, 40, 8)

	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	netB := transport.NewLocal(4)
	b := shardedCache(2, netB)
	defer b.Close()
	if err := b.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 40 {
		t.Fatalf("restored %d objects, want 40", b.Len())
	}
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("s1/obj-%d", i)
		e, ok := b.Get(id)
		if !ok || e.Value != float64(i) {
			t.Errorf("object %s = %+v (ok=%v)", id, e, ok)
		}
	}
}

func TestApplyRateGauge(t *testing.T) {
	net := transport.NewLocal(64)
	c := shardedCache(2, net)
	defer c.Close()
	if got := c.ApplyRate(); got != 0 {
		t.Errorf("initial apply rate = %v, want 0", got)
	}
	st := c.Status(0)
	if st.Shards != 2 {
		t.Errorf("status shards = %d, want 2", st.Shards)
	}
}
