package runtime

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// fakeConn is a controllable transport.SourceConn: it records sent
// refreshes and can be told to fail the next N sends.
type fakeConn struct {
	mu       sync.Mutex
	failNext int
	sent     []wire.Refresh
	fb       chan wire.Feedback
	closed   bool
}

func newFakeConn() *fakeConn {
	return &fakeConn{fb: make(chan wire.Feedback, 4)}
}

func (c *fakeConn) SendRefresh(r wire.Refresh) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("fakeConn: closed")
	}
	if c.failNext > 0 {
		c.failNext--
		return errors.New("fakeConn: injected send failure")
	}
	c.sent = append(c.sent, r)
	return nil
}

func (c *fakeConn) SendBatch(rs []wire.Refresh) error {
	for _, r := range rs {
		if err := c.SendRefresh(r); err != nil {
			return err
		}
	}
	return nil
}

func (c *fakeConn) Feedback() <-chan wire.Feedback { return c.fb }

func (c *fakeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.fb)
	}
	return nil
}

func (c *fakeConn) setFailures(n int) {
	c.mu.Lock()
	c.failNext = n
	c.mu.Unlock()
}

func (c *fakeConn) sentMsgs() []wire.Refresh {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.Refresh(nil), c.sent...)
}

// fakeClock is a manually advanced clock for deterministic session tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestSession builds a single-destination source whose session is driven
// manually: the huge tick keeps the background loop from ever flushing, and
// beta is disabled so threshold arithmetic is exactly α and ω.
func newTestSession(t *testing.T, conn *fakeConn, clock *fakeClock) (*Source, *syncSession) {
	t.Helper()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	src, err := NewFanoutSource(SourceConfig{
		ID:        "s1",
		Metric:    metric.ValueDeviation,
		Bandwidth: 1000,
		Tick:      time.Hour,
		Params:    params,
		Now:       clock.Now,
	}, []Destination{{CacheID: "c1", Conn: conn}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src, src.sessions[0]
}

// TestFlushRetriesAfterSendError is the regression test for the
// lost-refresh bug: sent-state used to be committed (tracker reset, queue
// entry removed, threshold raised) BEFORE SendRefresh, so a send error
// silently dropped the refresh forever. Now a failed send leaves the object
// scheduled and the refresh goes out on the next flush.
func TestFlushRetriesAfterSendError(t *testing.T) {
	conn := newFakeConn()
	clock := newFakeClock()
	src, ss := newTestSession(t, conn, clock)

	clock.advance(time.Second)
	src.Update("x", 42) // priority 1s × 42 ≫ threshold 1

	conn.setFailures(2)
	thBefore := src.Stats().Threshold
	ss.flush(1) // fails: must not commit anything
	if got := len(conn.sentMsgs()); got != 0 {
		t.Fatalf("send failed but %d refreshes recorded", got)
	}
	st := src.Stats()
	if st.SendErrors != 1 {
		t.Errorf("send errors = %d, want 1", st.SendErrors)
	}
	if st.Refreshes != 0 {
		t.Errorf("refreshes = %d, want 0 after failed send", st.Refreshes)
	}
	if st.Pending != 1 {
		t.Errorf("pending = %d, want 1 (object must stay scheduled)", st.Pending)
	}
	if st.Threshold != thBefore {
		t.Errorf("threshold moved %v → %v on a FAILED send", thBefore, st.Threshold)
	}

	ss.flush(1) // second injected failure
	if got := src.Stats().SendErrors; got != 2 {
		t.Errorf("send errors = %d, want 2", got)
	}

	ss.flush(1) // conn healthy again: the refresh must finally go out
	sent := conn.sentMsgs()
	if len(sent) != 1 {
		t.Fatalf("refresh lost after transient send errors: %d sent", len(sent))
	}
	if sent[0].ObjectID != "x" || sent[0].Value != 42 {
		t.Errorf("sent %+v, want x=42", sent[0])
	}
	st = src.Stats()
	if st.Refreshes != 1 || st.Pending != 0 {
		t.Errorf("after recovery: refreshes=%d pending=%d, want 1/0",
			st.Refreshes, st.Pending)
	}
}

// TestFlushCommitsResidualOnRacingUpdate: an update landing between message
// construction and the send commit leaves a residual divergence, and the
// object stays scheduled so the newer value is sent too.
func TestFlushCommitsResidualOnRacingUpdate(t *testing.T) {
	conn := newFakeConn()
	clock := newFakeClock()
	src, ss := newTestSession(t, conn, clock)

	clock.advance(time.Second)
	src.Update("x", 10)
	ss.flush(1)
	clock.advance(time.Second)
	src.Update("x", 20)
	ss.flush(1)
	sent := conn.sentMsgs()
	if len(sent) != 2 || sent[1].Value != 20 {
		t.Fatalf("sent %+v, want two refreshes ending at 20", sent)
	}
	// The session's view now matches the canonical value: nothing pending.
	if p := src.Stats().Pending; p != 0 {
		t.Errorf("pending = %d, want 0", p)
	}
}

// TestSessionThresholdInterplay drives OnFeedback/OnRefreshSent through a
// session and checks the Section 5 feedback loop end to end: the threshold
// rises by α per refresh sent, falls by ω on feedback — and holds still
// when the session is send-limited (feedback must not re-open the floodgate
// of a source already at capacity).
func TestSessionThresholdInterplay(t *testing.T) {
	const (
		alpha = core.DefaultAlpha
		omega = core.DefaultOmega
	)
	// Each step performs one protocol event and gives the expected
	// threshold as a function of the previous one.
	type step struct {
		name string
		do   func(src *Source, ss *syncSession, conn *fakeConn, clock *fakeClock)
		want func(prev float64) float64
	}
	update := func(val float64) func(*Source, *syncSession, *fakeConn, *fakeClock) {
		return func(src *Source, _ *syncSession, _ *fakeConn, clock *fakeClock) {
			clock.advance(time.Second)
			src.Update("x", val)
		}
	}
	flush := func(budget float64) func(*Source, *syncSession, *fakeConn, *fakeClock) {
		return func(_ *Source, ss *syncSession, _ *fakeConn, _ *fakeClock) {
			ss.flush(budget)
		}
	}
	feedback := func(_ *Source, ss *syncSession, _ *fakeConn, _ *fakeClock) {
		ss.onFeedback(wire.Feedback{CacheID: "remote-7"})
	}
	same := func(prev float64) float64 { return prev }

	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "send raises by alpha, feedback drops by omega",
			steps: []step{
				{"update", update(1000), same},
				{"send", flush(1), func(p float64) float64 { return p * alpha }},
				{"feedback", feedback, func(p float64) float64 { return p / omega }},
				{"update2", update(2000), same},
				{"send2", flush(1), func(p float64) float64 { return p * alpha }},
			},
		},
		{
			name: "feedback ignored while send-limited",
			steps: []step{
				{"update", update(1000), same},
				// flush with zero budget: the over-threshold object cannot
				// be sent, so the session marks itself send-limited.
				{"starve", flush(0), same},
				{"feedback ignored", feedback, same},
				// Budget returns: the send itself still raises the
				// threshold, and the session is no longer limited.
				{"send", flush(1), func(p float64) float64 { return p * alpha }},
				{"feedback lands", feedback, func(p float64) float64 { return p / omega }},
			},
		},
		{
			name: "failed send leaves threshold untouched",
			steps: []step{
				{"update", update(1000), same},
				{"fail", func(_ *Source, ss *syncSession, conn *fakeConn, _ *fakeClock) {
					conn.setFailures(1)
					ss.flush(1)
				}, same},
				{"retry succeeds", flush(1), func(p float64) float64 { return p * alpha }},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := newFakeConn()
			clock := newFakeClock()
			src, ss := newTestSession(t, conn, clock)
			prev := src.Stats().Threshold
			if prev != 1 {
				t.Fatalf("initial threshold = %v, want 1", prev)
			}
			for _, s := range tc.steps {
				s.do(src, ss, conn, clock)
				got := src.Stats().Threshold
				want := s.want(prev)
				if math.Abs(got-want) > 1e-9*want {
					t.Fatalf("after %q: threshold = %v, want %v", s.name, got, want)
				}
				prev = got
			}
		})
	}
}

// TestSessionRedialRecovers: with Destination.Redial set, a dead connection
// no longer ends the session — it redials with backoff (surviving an initial
// failure), resets sent-state so a peer that restarted empty is fully
// re-synchronized, and counts the reconnect.
func TestSessionRedialRecovers(t *testing.T) {
	conn1 := newFakeConn()
	conn2 := newFakeConn()
	clock := newFakeClock()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	redials := make(chan int, 8)
	attempt := 0
	src, err := NewFanoutSource(SourceConfig{
		ID:        "s1",
		Metric:    metric.ValueDeviation,
		Bandwidth: 1000,
		Tick:      time.Hour, // flushes are driven manually
		Params:    params,
		Now:       clock.Now,
	}, []Destination{{
		CacheID: "c1",
		Conn:    conn1,
		Redial: func() (transport.SourceConn, error) {
			attempt++
			redials <- attempt
			if attempt == 1 {
				return nil, errors.New("still down")
			}
			return conn2, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ss := src.sessions[0]

	clock.advance(time.Second)
	src.Update("x", 42)
	ss.flush(1)
	if got := len(conn1.sentMsgs()); got != 1 {
		t.Fatalf("pre-failure refresh count = %d, want 1", got)
	}
	if p := src.Stats().Sessions[0].Pending; p != 0 {
		t.Fatalf("pending = %d before the failure, want 0", p)
	}
	ss.onFeedback(wire.Feedback{CacheID: "old-peer"})
	if got := src.Stats().Sessions[0].RemoteID; got != "old-peer" {
		t.Fatalf("remote id = %q before the failure, want old-peer", got)
	}

	// Kill the connection: the session must retry the redial until it
	// succeeds instead of ending.
	conn1.Close()
	waitFor(t, 5*time.Second, func() bool {
		return src.Stats().Sessions[0].Reconnects == 1
	}, "session to reconnect")
	if attempt != 2 {
		t.Errorf("redial attempts = %d, want 2 (one failure, one success)", attempt)
	}
	// The replacement peer may be a different instance: the learned
	// identity must not survive the reconnect (a stale CacheID stamp would
	// count as misrouted on the new peer until its first feedback).
	if got := src.Stats().Sessions[0].RemoteID; got != "" {
		t.Errorf("remote id %q survived the reconnect, want cleared", got)
	}

	// Sent-state was reset: the object is re-scheduled even though its
	// value never changed, so a peer that restarted empty still gets it.
	if p := src.Stats().Sessions[0].Pending; p != 1 {
		t.Errorf("pending = %d after reconnect, want 1 (sent-state reset)", p)
	}
	ss.flush(1)
	sent := conn2.sentMsgs()
	if len(sent) != 1 || sent[0].ObjectID != "x" || sent[0].Value != 42 {
		t.Fatalf("replacement connection received %+v, want the re-registration of x=42", sent)
	}
	if got := len(conn1.sentMsgs()); got != 1 {
		t.Errorf("dead connection received more refreshes after close: %d", got)
	}
}

// TestSessionLearnsRemoteID: the cache identity stamped on feedback becomes
// the session's RemoteID and is stamped on subsequent refreshes.
func TestSessionLearnsRemoteID(t *testing.T) {
	conn := newFakeConn()
	clock := newFakeClock()
	src, ss := newTestSession(t, conn, clock)

	clock.advance(time.Second)
	src.Update("x", 100)
	ss.flush(1)
	if sent := conn.sentMsgs(); sent[0].CacheID != "" {
		t.Errorf("refresh before any feedback stamped CacheID %q, want empty",
			sent[0].CacheID)
	}
	ss.onFeedback(wire.Feedback{CacheID: "the-real-cache"})
	st := src.Stats()
	if st.Sessions[0].RemoteID != "the-real-cache" {
		t.Errorf("remote id = %q, want the-real-cache", st.Sessions[0].RemoteID)
	}
	clock.advance(time.Second)
	src.Update("x", 200)
	ss.flush(1)
	sent := conn.sentMsgs()
	if got := sent[len(sent)-1].CacheID; got != "the-real-cache" {
		t.Errorf("refresh after feedback stamped CacheID %q, want the-real-cache", got)
	}
}

// TestSessionStampsProvenance: UpdateFrom's origin and hop count travel on
// the outgoing refresh, and plain Update leaves them zero.
func TestSessionStampsProvenance(t *testing.T) {
	conn := newFakeConn()
	clock := newFakeClock()
	src, ss := newTestSession(t, conn, clock)

	clock.advance(time.Second)
	src.Update("local-obj", 100)
	src.UpdateFrom("relayed-obj", 200, Provenance{
		Origin: "origin-src", Hops: 3, Via: []string{"relay-a", "relay-b", "relay-c"},
	})
	ss.flush(2)
	sent := conn.sentMsgs()
	if len(sent) != 2 {
		t.Fatalf("sent %d refreshes, want 2", len(sent))
	}
	byID := map[string]wire.Refresh{}
	for _, r := range sent {
		byID[r.ObjectID] = r
	}
	if r := byID["local-obj"]; r.Origin != "" || r.Hops != 0 || r.Via != nil {
		t.Errorf("local update stamped origin %q hops %d via %v, want zero provenance", r.Origin, r.Hops, r.Via)
	}
	r := byID["relayed-obj"]
	if r.Origin != "origin-src" || r.Hops != 3 {
		t.Errorf("relayed update stamped origin %q hops %d, want origin-src/3", r.Origin, r.Hops)
	}
	if len(r.Via) != 3 || r.Via[0] != "relay-a" || r.Via[2] != "relay-c" {
		t.Errorf("relayed update stamped via %v, want [relay-a relay-b relay-c]", r.Via)
	}
}
