package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

// TestTCPEndToEnd runs the full live stack over a loopback TCP connection:
// cachesyncd-style cache node, sourceagent-style source nodes, real wire
// protocol.
func TestTCPEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.Serve(ln, 64)
	cache := NewCache(CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond}, ep)
	defer func() {
		cache.Close()
		ep.Close()
	}()

	const m = 3
	srcs := make([]*Source, m)
	for j := 0; j < m; j++ {
		id := fmt.Sprintf("agent-%d", j)
		conn, err := transport.Dial(ln.Addr().String(), id)
		if err != nil {
			t.Fatal(err)
		}
		srcs[j] = NewSource(SourceConfig{
			ID:        id,
			Metric:    metric.ValueDeviation,
			Bandwidth: 10000,
			Tick:      5 * time.Millisecond,
		}, conn)
		defer srcs[j].Close()
	}

	for round := 1; round <= 5; round++ {
		for j, s := range srcs {
			s.Update(fmt.Sprintf("agent-%d/val", j), float64(round*10+j))
		}
		time.Sleep(20 * time.Millisecond)
	}

	waitFor(t, 5*time.Second, func() bool {
		for j := 0; j < m; j++ {
			e, ok := cache.Get(fmt.Sprintf("agent-%d/val", j))
			if !ok || e.Value != float64(50+j) {
				return false
			}
		}
		return true
	}, "all agents' final values at the cache")

	st := cache.Stats()
	if st.Sources != m {
		t.Errorf("cache sees %d sources, want %d", st.Sources, m)
	}
	for j, s := range srcs {
		if s.Stats().Feedbacks == 0 {
			t.Errorf("source %d never received feedback over TCP", j)
		}
	}
}

// TestTCPSourceReconnect exercises the failure path: a source's process
// restarts (new connection, same id) and synchronization resumes.
func TestTCPSourceReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.Serve(ln, 64)
	cache := NewCache(CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond}, ep)
	defer func() {
		cache.Close()
		ep.Close()
	}()

	conn1, err := transport.Dial(ln.Addr().String(), "phoenix")
	if err != nil {
		t.Fatal(err)
	}
	src1 := NewSource(SourceConfig{
		ID: "phoenix", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, conn1)
	src1.Update("x", 1)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := cache.Get("x")
		return ok && e.Value == 1
	}, "first incarnation to sync")
	src1.Close()

	conn2, err := transport.Dial(ln.Addr().String(), "phoenix")
	if err != nil {
		t.Fatal(err)
	}
	src2 := NewSource(SourceConfig{
		ID: "phoenix", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, conn2)
	defer src2.Close()
	src2.Update("x", 2)
	src2.Update("x", 7)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := cache.Get("x")
		return ok && e.Value == 7
	}, "second incarnation to sync")
}

// TestEpochSupersedesVersion guards the restart semantics: a reborn source
// with a *lower* version counter but newer epoch must still win.
func TestEpochSupersedesVersion(t *testing.T) {
	net := transport.NewLocal(8)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(epoch int64, version uint64, value float64) {
		msg := refreshMsg("s1", "x", version, value)
		msg.Epoch = epoch
		if err := conn.SendRefresh(msg); err != nil {
			t.Fatal(err)
		}
	}
	send(100, 9, 1.0) // long-lived first incarnation
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("x")
		return ok && e.Version == 9
	}, "first incarnation")
	send(200, 1, 2.0) // restarted source: version reset, epoch advanced
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("x")
		return ok && e.Value == 2.0
	}, "second incarnation to supersede")
	send(100, 10, 3.0) // straggler from the dead incarnation — ignored
	time.Sleep(50 * time.Millisecond)
	if e, _ := cache.Get("x"); e.Value != 2.0 {
		t.Errorf("stale-incarnation refresh overwrote value: %v", e.Value)
	}
}
