// Peer faces: the symmetric node abstraction behind both the classic
// relay tree and the cooperative cache mesh.
//
// Historically the runtime had two asymmetric faces — a Cache toward the
// upstream and a fan-out Source toward children — glued together by Relay.
// Node keeps the same two engines but treats every link as a PEER LINK: the
// intake face accepts refreshes and poll replies from anyone (upstream,
// lateral neighbor), and the peer face pushes applied values to — and
// answers polls from — every attached peer out of the same local sharded
// store. Freshness is decided by the origin-axis guard (wire.Refresh
// .OriginAxis), never by link direction, so the same Node works as a tree
// tier (peers = children), a ring member (peer = successor), or a mesh
// participant (peers = all neighbors); loop safety is the PR 3 path-vector
// machinery (Via, split horizon, MaxHops), which is direction-agnostic.
package runtime

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"bestsync/internal/alloc"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// NodeConfig configures a cooperative node — a cache tier that re-exports
// the refreshes it applies toward a set of attached peers (children in a
// tree, neighbors in a ring or mesh).
type NodeConfig struct {
	// ID is the node's identity on both faces: the cache id stamped on
	// intake feedback AND the source id its peers see on re-exported
	// refreshes and poll replies. Default "node".
	ID string
	// Intake configures the intake-facing cache (processing bandwidth,
	// shards, queue depth). Its ID, OnApply, Reject and Now fields are
	// owned by the node and must be left zero.
	Intake CacheConfig
	// PeerBandwidth is the peer-face send budget in messages/second,
	// divided across the attached peers by their share weights (Section 7
	// allocation). Default 1000 (with TotalBandwidth set: half the total).
	PeerBandwidth float64
	// TotalBandwidth, when positive, puts the node's two faces under one
	// shared budget; see RelayConfig.TotalBandwidth (identical semantics).
	TotalBandwidth float64
	// Rebalance enables the periodic re-allocation passes on both the
	// peer-session shares and (with TotalBandwidth) the face split.
	Rebalance time.Duration
	// Metric selects the divergence metric driving peer refresh
	// priorities; Delta and PriorityFn refine it as on SourceConfig.
	Metric     metric.Kind
	Delta      metric.DeltaFunc
	PriorityFn priority.Fn
	// Tick is the peer send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the peer-facing threshold algorithm; zero means paper
	// defaults.
	Params core.Params
	// MaxHops bounds re-export depth: a refresh that has already crossed
	// MaxHops tiers is applied locally but not forwarded (counted in
	// NodeStats.HopLimited). Default 8.
	MaxHops int
	// PeerPolicy selects the synchronization policy of the peer face
	// (SourceConfig.Policy): push re-exports applied refreshes
	// source-initiated; PolicyHybrid pushes each peer's hot head and
	// answers polls for its cold tail; pure cache-driven policies only
	// answer polls. Peer destinations must be poll-capable connections for
	// any polling PeerPolicy.
	PeerPolicy Policy
	// Hybrid tunes the peer-face migration controller when PeerPolicy is
	// PolicyHybrid.
	Hybrid HybridConfig
	// Group configures session-group fan-out on the peer face
	// (SourceConfig.Group).
	Group GroupConfig
	// SpliceForward enables the zero-copy relay fast path: when the intake
	// transport can retain inbound binary frames (transport.FrameRetainer),
	// applied batches are re-exported by splice-patching the retained frame
	// — eligible items' bytes copied verbatim, only the per-hop fields
	// rewritten — and fanning the result through the session group, instead
	// of decoding, re-observing and re-encoding every refresh. Requires
	// group delivery on a push peer face with the value-deviation metric;
	// every other shape falls back to the classic path transparently (see
	// docs/algorithm-specifications.md §14).
	SpliceForward bool
	// Now overrides the clock for both faces (tests); defaults to
	// time.Now.
	Now func() time.Time
}

// NodeStats is a node's per-face statistics breakdown plus the re-export
// decisions in between.
type NodeStats struct {
	// Intake counts the cache face: refreshes applied from other nodes,
	// feedback sent, stale drops, lateral (peer-served) applies.
	Intake CacheStats
	// Peers counts the source face: updates fanned into peer sessions,
	// refreshes sent on, polls answered, per-peer session breakdown.
	Peers SourceStats
	// Forwarded counts applied refreshes re-exported as peer updates.
	Forwarded int
	// SuppressedBatches counts apply batches whose re-export was skipped
	// because the node had no live peers.
	SuppressedBatches int
	// ThresholdSuppressed counts updates whose per-peer scheduling fan-out
	// was deferred because every live peer session was provably within its
	// threshold (SourceStats.SuppressedObserves on the peer face).
	ThresholdSuppressed int
	// Looped counts refreshes rejected at intake because this node was
	// already on their path (Via) or was their origin. Mirrored in
	// Intake.Rejected.
	Looped int
	// HopLimited counts refreshes dropped from re-export because
	// forwarding would exceed MaxHops.
	HopLimited int
	// SplicedBatches counts apply batches re-exported over the zero-copy
	// splice path (NodeConfig.SpliceForward); SplicedRefreshes counts the
	// refreshes those batches broadcast. SpliceFallbacks counts framed
	// batches that arrived splice-eligible but fell back whole to the
	// classic decode→update→re-encode path (no group members, wrong
	// policy/metric shape, unparseable frame).
	SplicedBatches   int
	SplicedRefreshes int
	SpliceFallbacks  int
	// IntakeBandwidth and PeerBandwidth are the current face budgets.
	IntakeBandwidth float64
	PeerBandwidth   float64
	// FaceRebalances counts completed face re-allocation passes.
	FaceRebalances int
}

// Node is a cooperative cache node: toward every link it behaves as the
// paper's protocol demands — it applies whatever fresher-on-the-origin-axis
// refreshes arrive on its intake endpoint, and toward its attached peers it
// is a fan-out Source whose updates are the refreshes it just applied and
// whose poll answers come from the same store, stamped with the stored
// provenance (lateral serving). Relay is the tree-shaped compatibility
// wrapper over Node.
//
// Provenance and loop-avoidance: re-exported refreshes keep the origin
// source id (wire.Refresh.Origin) and carry an incremented hop count and
// the path of nodes traversed (wire.Refresh.Hops/.Via). A refresh whose
// path already contains this node — or whose origin is the node itself —
// crossed a topology cycle and is rejected at intake, never applied or
// re-exported (NodeStats.Looped; see rejectCycle). A refresh that has
// already crossed MaxHops tiers is applied locally but not forwarded
// (NodeStats.HopLimited). Lateral poll answers add no hop of their own —
// the stored Via already ends with this node, and the ASKER's re-export is
// what appends the asker; split horizon (session.answerPoll) keeps a value
// from being served back to a peer already on its path.
//
// Divergence composition across tiers is unchanged from the tree case; see
// docs/algorithm-specifications.md §8 and §13.
type Node struct {
	cfg   NodeConfig
	cache *Cache
	src   *Source

	mu         sync.Mutex
	forwarded  int
	looped     int
	hopLimited int
	suppressed int  // apply batches not re-exported (no live peers)
	storeAhead bool // suppression happened: the source's objs lag the store
	// Splice-forwarding counters (NodeConfig.SpliceForward).
	splicedBatches   int
	splicedRefreshes int
	spliceFallbacks  int
	// Face-rebalance state (TotalBandwidth + Rebalance): smoothed
	// contribution scores per face, the operator's configured split as
	// base weights, and the observation-window marks.
	faceReb          *alloc.Rebalancer
	upBW, downBW     float64
	upBase, downBase float64
	faceRebalances   int
	lastUpApplied    int
	lastDownSent     int

	stop      chan struct{}
	closeOnce sync.Once
}

// NewNode starts a cooperative node: intake is the endpoint other nodes
// send refreshes to (and poll this node through), peers are the
// destinations this node dials and keeps synchronized. Close the node (not
// the endpoint) to shut down.
func NewNode(cfg NodeConfig, intake transport.CacheEndpoint, peers []Destination) (*Node, error) {
	if cfg.ID == "" {
		cfg.ID = "node"
	}
	if cfg.Intake.ID != "" || cfg.Intake.OnApply != nil || cfg.Intake.Reject != nil || cfg.Intake.Now != nil {
		return nil, fmt.Errorf("runtime: NodeConfig.Intake.{ID,OnApply,Reject,Now} are owned by the node; configure NodeConfig.ID/Now instead")
	}
	if cfg.Intake.Policy.CacheDriven() {
		// The node's re-export hook rides the apply path, which pushed AND
		// hybrid-polled refreshes both take — but a PURE cache-driven intake
		// face has no feedback channel for the held-version acks the
		// re-export machinery leans on, so only push and hybrid are
		// supported on the intake face.
		return nil, fmt.Errorf("runtime: node intake faces support the push and hybrid policies (got %v)", cfg.Intake.Policy)
	}
	if cfg.TotalBandwidth > 0 {
		// Shared face budget: unset faces default to half the total each;
		// explicitly set faces are kept as a RATIO and normalized so the
		// initial split already sums to the total — otherwise the first
		// rebalance pass would snap the aggregate from Σfaces to
		// TotalBandwidth, a silent mid-run budget cliff.
		up, down := cfg.Intake.Bandwidth, cfg.PeerBandwidth
		switch {
		case up <= 0 && down <= 0:
			up, down = cfg.TotalBandwidth/2, cfg.TotalBandwidth/2
		case up <= 0:
			if down >= cfg.TotalBandwidth {
				down = cfg.TotalBandwidth / 2
			}
			up = cfg.TotalBandwidth - down
		case down <= 0:
			if up >= cfg.TotalBandwidth {
				up = cfg.TotalBandwidth / 2
			}
			down = cfg.TotalBandwidth - up
		default:
			scale := cfg.TotalBandwidth / (up + down)
			up, down = up*scale, down*scale
		}
		cfg.Intake.Bandwidth, cfg.PeerBandwidth = up, down
	}
	if cfg.PeerBandwidth <= 0 {
		cfg.PeerBandwidth = 1000
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 8
	}
	n := &Node{cfg: cfg, stop: make(chan struct{})}
	src, err := NewFanoutSource(SourceConfig{
		ID:         cfg.ID,
		Metric:     cfg.Metric,
		Delta:      cfg.Delta,
		PriorityFn: cfg.PriorityFn,
		Bandwidth:  cfg.PeerBandwidth,
		Tick:       cfg.Tick,
		Params:     cfg.Params,
		Policy:     cfg.PeerPolicy,
		Hybrid:     cfg.Hybrid,
		Rebalance:  cfg.Rebalance,
		Group:      cfg.Group,
		Now:        cfg.Now,
		// Threshold-aware suppression: an intake burst that leaves every
		// peer within its threshold skips the per-session scheduling
		// fan-out entirely (deferred to the next flush tick). Pure win on a
		// relay tier, where most applied refreshes are below-threshold
		// jitter for every peer.
		SuppressWithinThreshold: true,
	}, peers)
	if err != nil {
		return nil, err
	}
	n.src = src
	cacheCfg := cfg.Intake
	cacheCfg.ID = cfg.ID
	cacheCfg.Now = cfg.Now
	cacheCfg.OnApply = n.reexport
	cacheCfg.Reject = n.rejectCycle
	if cfg.SpliceForward {
		// Zero-copy re-export: ask the intake transport to retain inbound
		// binary frames and route framed apply batches through the splice
		// hook. Transports without frame retention (Local, gob) simply never
		// produce a retained frame, so every batch takes the classic path.
		cacheCfg.OnForward = n.onForward
		if fr, ok := intake.(transport.FrameRetainer); ok {
			fr.RetainFrames(true)
		}
	}
	n.cache = NewCache(cacheCfg, intake)
	n.upBW = n.cache.Bandwidth()
	n.downBW = cfg.PeerBandwidth
	// The configured split is the faces' base-weight ratio: it scales their
	// contribution scores and is what an all-idle window falls back to, so
	// an operator's asymmetric split survives rebalancing instead of
	// snapping to half-half.
	n.upBase, n.downBase = n.upBW, n.downBW
	if cfg.TotalBandwidth > 0 && cfg.Rebalance > 0 {
		// Faces must not starve each other outright: a face floored at a
		// fifth of its fair half keeps absorbing or sending enough to
		// regrow its demand signal and earn the budget back.
		n.faceReb = &alloc.Rebalancer{FloorFrac: 0.2}
		go n.rebalanceFaces()
	}
	return n, nil
}

// AddPeer starts a sync session toward a new peer on a running node,
// re-dividing the peer budget across all peers; the new peer is
// synchronized from the node's full store. See Source.AddDestination.
//
// If re-exports were suppressed while the node had no peers, the source's
// object set lags the store, so the store is re-exported once to bring the
// peer face back in step (for the value-deviation metric the surviving
// peers see no extra sends from this — their re-observed divergence is
// zero).
func (n *Node) AddPeer(d Destination) error {
	if err := n.src.AddDestination(d); err != nil {
		return err
	}
	n.mu.Lock()
	behind := n.storeAhead
	n.storeAhead = false
	n.mu.Unlock()
	if behind {
		n.ReexportStore()
	}
	return nil
}

// RemovePeer stops the session toward the peer whose Destination.CacheID is
// cacheID and re-divides the peer budget across the survivors. See
// Source.RemoveDestination.
func (n *Node) RemovePeer(cacheID string) error { return n.src.RemoveDestination(cacheID) }

// rebalanceFaces is the node's intake/peer budget pass: every Rebalance
// interval it scores each face by observed demand — budget actually used
// during the window plus backlog still waiting (intake queue on the cache
// face, over-threshold objects on the peer face) — smooths the scores, and
// re-splits TotalBandwidth between Cache.SetBandwidth and
// Source.SetBandwidth. A face that spent its budget and still has work
// queued earns more; an idle face decays toward the floor, surrendering
// intake capacity the upstream is not using to the peers (and vice versa).
func (n *Node) rebalanceFaces() {
	ticker := time.NewTicker(n.cfg.Rebalance)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		cs := n.cache.Stats()
		ss := n.src.Stats()
		n.mu.Lock()
		// Window deltas over aggregates that can shrink: RemovePeer takes
		// the removed session's historical refreshes out of the source
		// aggregate, so a removal window would otherwise read as hugely
		// negative use and zero the face's budget.
		upUsed := max(0, cs.Refreshes-n.lastUpApplied)
		n.lastUpApplied = cs.Refreshes
		downUsed := max(0, ss.Refreshes-n.lastDownSent)
		n.lastDownSent = ss.Refreshes
		// Peer-face backlog counts only sessions that can deliver: a
		// redialing peer's queue holds the whole store but its sends go
		// nowhere, and letting that phantom backlog capture budget from
		// the intake face is the same starvation the session-level
		// rebalancer guards against.
		pending := 0
		for _, sess := range ss.Sessions {
			if !sess.Ended && !sess.Redialing {
				pending += sess.Pending
			}
		}
		n.faceReb.Observe([]alloc.Consumer{
			{ID: "up", Base: n.upBase, Demand: float64(upUsed + n.cache.backlog())},
			{ID: "down", Base: n.downBase, Demand: float64(downUsed + pending)},
		})
		w := n.faceReb.Weights([]string{"up", "down"}, []float64{n.upBase, n.downBase})
		shares := alloc.Proportional(n.cfg.TotalBandwidth, w)
		n.upBW, n.downBW = shares[0], shares[1]
		n.faceRebalances++
		n.mu.Unlock()
		n.cache.SetBandwidth(shares[0])
		n.src.SetBandwidth(shares[1])
	}
}

// rejectCycle drops refreshes that crossed a topology cycle (this node is
// already on their path, or is their origin) before they reach the store.
// Rejecting at intake — rather than applying and merely skipping the
// re-export — matters because each hop re-issues epochs: a cycled copy
// applied under the cycle peer's newer epoch would capture the entry and
// shadow every subsequent direct refresh as stale. The same guard filters
// poll-installed refreshes (Cache.installPolled), so a mesh neighbor
// serving this node's own re-export back over a poll reply is dropped
// identically.
func (n *Node) rejectCycle(ref wire.Refresh) bool {
	if ref.OriginID() != n.cfg.ID && !slices.Contains(ref.Via, n.cfg.ID) {
		return false
	}
	n.mu.Lock()
	n.looped++
	n.mu.Unlock()
	return true
}

// reexport converts a batch of applied refreshes into peer updates. It runs
// on the cache's shard workers, so refreshes for one object arrive in apply
// order while distinct objects may be re-exported concurrently — the same
// ordering contract Update gives a plain source.
//
// Loop check: a refresh is dropped from re-export when this node already
// appears on its path — either as the origin or anywhere in the Via path
// vector. The path check is what bounds real topology cycles (A→B→A): in a
// cycle the origin is the root source at every hop and never matches, but
// the cycle's nodes accumulate on Via, so the second visit is caught.
func (n *Node) reexport(applied []wire.Refresh) {
	if n.src.LiveDestinations() == 0 {
		// No live peers: skip the source-mutex round trip entirely —
		// today's apply batch has nobody to go to. The storeAhead flag
		// makes AddPeer seed the next peer from the store, which has
		// everything these suppressed batches carried.
		n.mu.Lock()
		n.suppressed++
		n.storeAhead = true
		n.mu.Unlock()
		return
	}
	var looped, hopLimited int
	memo := viaMemo{id: n.cfg.ID}
	updates := make([]RelayedUpdate, 0, len(applied))
	for _, ref := range applied {
		origin := ref.OriginID()
		if origin == n.cfg.ID || slices.Contains(ref.Via, n.cfg.ID) {
			looped++ // defense in depth; rejectCycle already filters these
			continue
		}
		// Depth = max of the declared hop count and the path length, so a
		// sender under-reporting Hops cannot bypass the ceiling (Via is
		// what nodes actually append to; Hops is the displayed summary).
		hops := ref.Hops
		if l := len(ref.Via); l > hops {
			hops = l
		}
		if hops+1 > n.cfg.MaxHops {
			hopLimited++
			continue
		}
		// One appended path per distinct inbound Via in the batch (almost
		// always exactly one — everything arrived through the same
		// upstream), not one allocation per refresh.
		via := memo.path(ref.Via)
		oe, ov := ref.OriginAxis() // preserved unchanged across every hop
		updates = append(updates, RelayedUpdate{
			ObjectID: ref.ObjectID,
			Value:    ref.Value,
			Prov:     Provenance{Origin: origin, Hops: hops + 1, Via: via, Epoch: oe, Version: ov},
		})
	}
	// One lock round-trip for the whole apply batch: shard workers must
	// not serialize on the source mutex message by message.
	n.src.UpdateFromAll(updates)
	n.mu.Lock()
	n.forwarded += len(updates)
	n.looped += looped
	n.hopLimited += hopLimited
	n.mu.Unlock()
}

// ReexportStore re-exports every locally cached entry to the peers as if it
// had just been applied. This is the warm-up path for a node restarted from
// a snapshot, and the catch-up path for the first peer attached after a
// suppressed stretch; see Relay.ReexportStore for the full
// snapshot-age-protection contract (held-version feedback keeps peers from
// regressing).
//
// The re-export happens under each shard's lock: a live apply for the same
// object is thereby serialized against the snapshot read, so a racing
// fresher value always reaches the peer sessions after — never before —
// the snapshot one (the lock order shard→source is taken nowhere else in
// reverse).
func (n *Node) ReexportStore() {
	for _, sh := range n.cache.shards {
		sh.mu.Lock()
		batch := make([]wire.Refresh, 0, len(sh.store))
		for id, e := range sh.store {
			batch = append(batch, wire.Refresh{
				SourceID:      e.Source,
				ObjectID:      id,
				Origin:        e.Origin,
				Hops:          e.Hops,
				Via:           e.Via,
				OriginEpoch:   e.OriginEpoch,
				OriginVersion: e.OriginVersion,
				Value:         e.Value,
				Version:       e.Version,
				Epoch:         e.Epoch,
			})
		}
		if len(batch) > 0 {
			n.reexport(batch)
		}
		sh.mu.Unlock()
	}
}

// ID returns the node's identity (shared by both faces).
func (n *Node) ID() string { return n.cfg.ID }

// Cache returns the intake-facing cache, for reads (Get/Len), snapshots
// and the HTTP status handler. The store it serves is the node's local
// copy of everything applied so far.
func (n *Node) Cache() *Cache { return n.cache }

// Source returns the peer-facing fan-out source, for stats and tests.
func (n *Node) Source() *Source { return n.src }

// Get returns the node's local copy of an object.
func (n *Node) Get(objectID string) (Entry, bool) { return n.cache.Get(objectID) }

// Len returns the number of locally cached objects.
func (n *Node) Len() int { return n.cache.Len() }

// Stats snapshots both faces and the re-export counters.
func (n *Node) Stats() NodeStats {
	st := NodeStats{
		Intake: n.cache.Stats(),
		Peers:  n.src.Stats(),
	}
	st.ThresholdSuppressed = st.Peers.SuppressedObserves
	n.mu.Lock()
	st.Forwarded = n.forwarded
	st.Looped = n.looped
	st.HopLimited = n.hopLimited
	st.SuppressedBatches = n.suppressed
	st.SplicedBatches = n.splicedBatches
	st.SplicedRefreshes = n.splicedRefreshes
	st.SpliceFallbacks = n.spliceFallbacks
	st.IntakeBandwidth = n.upBW
	st.PeerBandwidth = n.downBW
	st.FaceRebalances = n.faceRebalances
	n.mu.Unlock()
	return st
}

// Close stops the intake cache first (no new applies, so no new
// re-exports) and then the peer-facing source, returning the first error.
// In-flight peer refreshes are cut off with the connections, exactly as
// for a plain fan-out source.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.stop) })
	err := n.cache.Close()
	if serr := n.src.Close(); err == nil {
		err = serr
	}
	return err
}
