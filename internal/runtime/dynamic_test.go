package runtime

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// TestAddDestinationSyncsExistingObjects: a destination added at runtime is
// fully synchronized from the canonical state (every existing object is
// re-registered as never-sent) and the send budget is re-divided across
// the enlarged session set.
func TestAddDestinationSyncsExistingObjects(t *testing.T) {
	conn1 := newFakeConn()
	clock := newFakeClock()
	src, ss1 := newTestSession(t, conn1, clock)

	clock.advance(time.Second)
	src.Update("a", 10)
	src.Update("b", 20)
	ss1.flush(2)
	if got := len(conn1.sentMsgs()); got != 2 {
		t.Fatalf("pre-add refreshes = %d, want 2", got)
	}
	if got := src.Stats().Sessions[0].Share; got != 1000 {
		t.Fatalf("single session share = %v, want the full 1000", got)
	}

	conn2 := newFakeConn()
	if err := src.AddDestination(Destination{CacheID: "c2", Conn: conn2}); err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if len(st.Sessions) != 2 {
		t.Fatalf("sessions = %d after add, want 2", len(st.Sessions))
	}
	for i, sess := range st.Sessions {
		if math.Abs(sess.Share-500) > 1e-9 {
			t.Errorf("session %d share = %v after add, want 500 (re-divided)", i, sess.Share)
		}
	}
	// The new session owes the cache everything that already exists.
	if p := st.Sessions[1].Pending; p != 2 {
		t.Fatalf("new session pending = %d, want 2 (full re-sync)", p)
	}
	src.mu.Lock()
	ss2 := src.sessions[1]
	src.mu.Unlock()
	ss2.flush(2)
	sent := conn2.sentMsgs()
	if len(sent) != 2 {
		t.Fatalf("new destination received %d refreshes, want both objects", len(sent))
	}
	byID := map[string]float64{}
	for _, r := range sent {
		byID[r.ObjectID] = r.Value
	}
	if byID["a"] != 10 || byID["b"] != 20 {
		t.Errorf("new destination received %v, want a=10 b=20", byID)
	}

	// Duplicate labels are rejected (RemoveDestination is keyed by them).
	if err := src.AddDestination(Destination{CacheID: "c2", Conn: newFakeConn()}); err == nil {
		t.Error("duplicate CacheID accepted")
	}
}

// TestRemoveDestinationRedividesBandwidth: removing a destination stops its
// session, closes its connection, and hands its share to the survivors,
// whose scheduling state is untouched.
func TestRemoveDestinationRedividesBandwidth(t *testing.T) {
	conns := []*fakeConn{newFakeConn(), newFakeConn()}
	clock := newFakeClock()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 1000,
		Tick: time.Hour, Params: params, Now: clock.Now,
	}, []Destination{
		{CacheID: "c0", Conn: conns[0]},
		{CacheID: "c1", Conn: conns[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	clock.advance(time.Second)
	src.Update("x", 7)

	if err := src.RemoveDestination("nope"); err == nil {
		t.Error("unknown destination removal succeeded")
	}
	if err := src.RemoveDestination("c0"); err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if len(st.Sessions) != 1 || st.Sessions[0].CacheID != "c1" {
		t.Fatalf("sessions after remove = %+v, want only c1", st.Sessions)
	}
	if got := st.Sessions[0].Share; got != 1000 {
		t.Errorf("survivor share = %v, want the full 1000", got)
	}
	if p := st.Sessions[0].Pending; p != 1 {
		t.Errorf("survivor pending = %d, want its scheduled object untouched", p)
	}
	conns[0].mu.Lock()
	closed := conns[0].closed
	conns[0].mu.Unlock()
	if !closed {
		t.Error("removed destination's connection left open")
	}
	// The survivor still works: flush delivers the pending refresh.
	src.mu.Lock()
	ss := src.sessions[0]
	src.mu.Unlock()
	ss.flush(1)
	if got := len(conns[1].sentMsgs()); got != 1 {
		t.Errorf("survivor received %d refreshes after the removal, want 1", got)
	}
}

// TestEndedSessionExcludedFromAggregates: a session whose feedback channel
// closes with no Redial hook ends; it must be flagged, its share re-divided
// to the survivors, and the aggregate threshold mean must ignore it —
// previously a dead session counted forever and skewed the mean.
func TestEndedSessionExcludedFromAggregates(t *testing.T) {
	conns := []*fakeConn{newFakeConn(), newFakeConn()}
	clock := newFakeClock()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 800,
		Tick: time.Hour, Params: params, Now: clock.Now,
	}, []Destination{
		{CacheID: "dead", Conn: conns[0]},
		{CacheID: "live", Conn: conns[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Drive the live session's threshold away from the dead one's so the
	// mean would visibly skew if the dead threshold still counted.
	src.mu.Lock()
	liveSS := src.sessions[1]
	src.mu.Unlock()
	liveSS.onFeedback(wire.Feedback{CacheID: "live-cache"})
	liveSS.onFeedback(wire.Feedback{CacheID: "live-cache"})

	conns[0].Close() // feedback channel closes; no Redial → session ends
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Sessions[0].Ended
	}, "session to end")

	st := src.Stats()
	if !st.Sessions[0].Ended || st.Sessions[1].Ended {
		t.Fatalf("ended flags = %v/%v, want true/false", st.Sessions[0].Ended, st.Sessions[1].Ended)
	}
	if got := st.Sessions[0].Share; got != 0 {
		t.Errorf("dead session share = %v, want 0", got)
	}
	if got := st.Sessions[1].Share; got != 800 {
		t.Errorf("survivor share = %v, want the full 800", got)
	}
	// The aggregate threshold must be exactly the live session's, not the
	// two-session mean.
	if want := st.Sessions[1].Threshold; math.Abs(st.Threshold-want) > 1e-12 {
		t.Errorf("aggregate threshold = %v, want the live session's %v (dead one excluded)",
			st.Threshold, want)
	}
}

// TestRemoveDestinationPrefersLiveOverEndedGhost: AddDestination may reuse
// the label of an ended session, leaving a dead ghost with the same
// CacheID at a lower index. RemoveDestination must remove the LIVE
// session, not report success after detaching the ghost.
func TestRemoveDestinationPrefersLiveOverEndedGhost(t *testing.T) {
	conns := []*fakeConn{newFakeConn(), newFakeConn()}
	clock := newFakeClock()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 600,
		Tick: time.Hour, Params: params, Now: clock.Now,
	}, []Destination{
		{CacheID: "c", Conn: conns[0]},
		{CacheID: "other", Conn: conns[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	conns[0].Close() // "c" ends (no Redial)
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Sessions[0].Ended
	}, "first session to end")
	replacement := newFakeConn()
	if err := src.AddDestination(Destination{CacheID: "c", Conn: replacement}); err != nil {
		t.Fatalf("re-using an ended session's label: %v", err)
	}
	if err := src.RemoveDestination("c"); err != nil {
		t.Fatal(err)
	}
	replacement.mu.Lock()
	closed := replacement.closed
	replacement.mu.Unlock()
	if !closed {
		t.Error("live replacement session survived RemoveDestination (the ended ghost was matched instead)")
	}
	for _, sess := range src.Stats().Sessions {
		if sess.CacheID == "c" && !sess.Ended {
			t.Errorf("live session %q still present after removal", sess.CacheID)
		}
	}
}

// TestRelayTotalBandwidthNormalizesFaces: explicitly configured face
// budgets that do not sum to TotalBandwidth are kept as a ratio and
// normalized, so the first rebalance pass cannot snap the aggregate to a
// different total mid-run.
func TestRelayTotalBandwidthNormalizesFaces(t *testing.T) {
	cases := []struct {
		name           string
		cacheBW, child float64
		wantUp, wantDn float64
	}{
		{"both unset", 0, 0, 60, 60},
		{"both set, wrong sum", 100, 100, 60, 60},
		{"ratio preserved", 90, 30, 90, 30},
		{"one set", 0, 40, 80, 40},
		{"one set over total", 0, 500, 60, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local := transport.NewLocal(4)
			child := transport.NewLocal(4)
			conn, err := child.Dial("r")
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRelay(RelayConfig{
				ID:             "r",
				Cache:          CacheConfig{Bandwidth: tc.cacheBW},
				ChildBandwidth: tc.child,
				TotalBandwidth: 120,
			}, local, []Destination{{Conn: conn}})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				r.Close()
				local.Close()
				child.Close()
			}()
			st := r.Stats()
			if math.Abs(st.UpBandwidth-tc.wantUp) > 1e-9 || math.Abs(st.DownBandwidth-tc.wantDn) > 1e-9 {
				t.Errorf("faces = %.1f/%.1f, want %.1f/%.1f (sum must be the 120 total)",
					st.UpBandwidth, st.DownBandwidth, tc.wantUp, tc.wantDn)
			}
		})
	}
}

// TestRebalanceShiftsShareToResponsiveCache: with periodic re-allocation
// enabled, a session that both holds outstanding divergence and keeps
// hearing feedback earns share from one with the same demand but a silent
// cache (the live option-3 contribution score).
func TestRebalanceShiftsShareToResponsiveCache(t *testing.T) {
	conns := []*fakeConn{newFakeConn(), newFakeConn()}
	clock := newFakeClock()
	params := core.DefaultParams(1, 1000)
	params.DisableBeta = true
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 100,
		Tick: time.Hour, Params: params, Now: clock.Now,
		Rebalance: 5 * time.Millisecond,
	}, []Destination{
		{CacheID: "responsive", Conn: conns[0]},
		{CacheID: "silent", Conn: conns[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	clock.advance(time.Second)
	src.Update("x", 50) // equal outstanding divergence on both sessions
	src.mu.Lock()
	responsive := src.sessions[0]
	src.mu.Unlock()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				responsive.onFeedback(wire.Feedback{CacheID: "r"})
			}
		}
	}()
	waitFor(t, 5*time.Second, func() bool {
		st := src.Stats()
		return st.Rebalances > 3 && st.Sessions[0].Share > st.Sessions[1].Share*1.5
	}, "share to shift toward the responsive session")
	// Shares still sum to the budget: re-weighting moves bandwidth, never
	// mints it.
	st := src.Stats()
	if sum := st.Sessions[0].Share + st.Sessions[1].Share; math.Abs(sum-100) > 1e-6 {
		t.Errorf("shares sum to %v, want the 100 budget", sum)
	}
}

// TestAddRemoveDestinationLocalIntegration runs the live churn sequence on
// the in-process transport with real ticking sessions: start with one
// cache, add a second mid-stream, remove the first, and verify every
// refresh the survivors needed arrived (no lost refreshes).
func TestAddRemoveDestinationLocalIntegration(t *testing.T) {
	nets := []*transport.Local{transport.NewLocal(64), transport.NewLocal(64)}
	caches := make([]*Cache, 2)
	for i, n := range nets {
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("cache-%d", i), Bandwidth: 10000, Tick: 5 * time.Millisecond,
		}, n)
		defer caches[i].Close()
	}
	conn0, err := nets[0].Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, []Destination{{CacheID: "c0", Conn: conn0}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("alpha", 1)
	src.Update("beta", 2)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := caches[0].Get("beta")
		return ok && e.Value == 2
	}, "pre-add values on cache 0")

	conn1, err := nets[1].Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddDestination(Destination{CacheID: "c1", Conn: conn1}); err != nil {
		t.Fatal(err)
	}
	// The added cache catches up on the full existing state.
	waitFor(t, 2*time.Second, func() bool {
		a, okA := caches[1].Get("alpha")
		b, okB := caches[1].Get("beta")
		return okA && okB && a.Value == 1 && b.Value == 2
	}, "added cache to receive the full store")

	if err := src.RemoveDestination("c0"); err != nil {
		t.Fatal(err)
	}
	src.Update("alpha", 11)
	src.Update("gamma", 3)
	waitFor(t, 2*time.Second, func() bool {
		a, okA := caches[1].Get("alpha")
		g, okG := caches[1].Get("gamma")
		return okA && okG && a.Value == 11 && g.Value == 3
	}, "survivor to keep receiving after the removal")
	st := src.Stats()
	if len(st.Sessions) != 1 || st.Sessions[0].CacheID != "c1" {
		t.Fatalf("sessions = %+v, want only c1", st.Sessions)
	}
	if st.Sessions[0].Share != 10000 {
		t.Errorf("survivor share = %v, want the full budget", st.Sessions[0].Share)
	}
	// The removed cache saw nothing after its removal.
	if _, ok := caches[0].Get("gamma"); ok {
		t.Error("removed cache received post-removal refreshes")
	}
}

// TestAddRemoveDestinationTCPIntegration is the same churn sequence over
// the real TCP transport: live re-division of the budget with real
// listeners, framing and feedback.
func TestAddRemoveDestinationTCPIntegration(t *testing.T) {
	const n = 2
	caches := make([]*Cache, n)
	eps := make([]transport.CacheEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = transport.Serve(ln, 64)
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("tcp-dyn-%d", i), Bandwidth: 10000, Tick: 5 * time.Millisecond,
		}, eps[i])
		addrs[i] = ln.Addr().String()
		defer func(i int) {
			caches[i].Close()
			eps[i].Close()
		}(i)
	}

	conn0, err := transport.Dial(addrs[0], "agent-dyn")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "agent-dyn", Metric: metric.ValueDeviation,
		Bandwidth: 2000, Tick: 5 * time.Millisecond,
	}, []Destination{{CacheID: addrs[0], Conn: conn0}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for k := 0; k < 4; k++ {
		src.Update(fmt.Sprintf("agent-dyn/obj-%d", k), float64(10+k))
	}
	waitFor(t, 5*time.Second, func() bool {
		e, ok := caches[0].Get("agent-dyn/obj-3")
		return ok && e.Value == 13
	}, "cache 0 to sync before the add")

	conn1, err := transport.Dial(addrs[1], "agent-dyn")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddDestination(Destination{CacheID: addrs[1], Conn: conn1}); err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	for i, sess := range st.Sessions {
		if math.Abs(sess.Share-1000) > 1e-9 {
			t.Errorf("session %d share = %v after add, want 1000", i, sess.Share)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		for k := 0; k < 4; k++ {
			e, ok := caches[1].Get(fmt.Sprintf("agent-dyn/obj-%d", k))
			if !ok || e.Value != float64(10+k) {
				return false
			}
		}
		return true
	}, "added TCP cache to receive the full store")

	if err := src.RemoveDestination(addrs[0]); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		src.Update(fmt.Sprintf("agent-dyn/obj-%d", k), float64(20+k))
	}
	waitFor(t, 5*time.Second, func() bool {
		for k := 0; k < 4; k++ {
			e, ok := caches[1].Get(fmt.Sprintf("agent-dyn/obj-%d", k))
			if !ok || e.Value != float64(20+k) {
				return false
			}
		}
		return true
	}, "survivor to converge on post-removal values (no lost refreshes)")
	if got := src.Stats().Sessions; len(got) != 1 || got[0].Share != 2000 {
		t.Errorf("sessions after removal = %+v, want one at the full 2000", got)
	}
}

// TestRateUpdateVsFlushRace hammers every share-moving path — SetBandwidth,
// AddDestination/RemoveDestination and the periodic rebalance pass —
// against live ticking sessions under load. Run with -race; correctness
// here is "no data race and a clean shutdown".
func TestRateUpdateVsFlushRace(t *testing.T) {
	local := transport.NewLocal(64)
	cache := NewCache(CacheConfig{Bandwidth: 100000, Tick: time.Millisecond}, local)
	defer cache.Close()
	conn, err := local.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 5000,
		Tick: time.Millisecond, Rebalance: 2 * time.Millisecond,
	}, []Destination{{CacheID: "c0", Conn: conn}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // updater
		defer wg.Done()
		v := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v++
			for k := 0; k < 4; k++ {
				src.Update(fmt.Sprintf("obj-%d", k), v)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() { // bandwidth mover
		defer wg.Done()
		bws := []float64{1000, 8000, 3000}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.SetBandwidth(bws[i%len(bws)])
			time.Sleep(time.Millisecond)
		}
	}()
	// Topology churn on the same source, from the test goroutine.
	for i := 0; i < 10; i++ {
		c, err := local.Dial(fmt.Sprintf("tmp-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("churn-%d", i)
		if err := src.AddDestination(Destination{CacheID: id, Conn: c}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		if err := src.RemoveDestination(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := src.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
}

// TestRedialVsReallocationRace races session redials (connections killed
// repeatedly, redial closures re-dialing) against destination add/remove
// and the rebalance pass. Run with -race.
func TestRedialVsReallocationRace(t *testing.T) {
	local := transport.NewLocal(64)
	cache := NewCache(CacheConfig{Bandwidth: 100000, Tick: time.Millisecond}, local)
	defer cache.Close()

	dial := func(id string) transport.SourceConn {
		c, err := local.Dial(id)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mkDest := func(id string) Destination {
		return Destination{
			CacheID: id,
			Conn:    dial(id),
			Redial: func() (transport.SourceConn, error) {
				return local.Dial(id)
			},
		}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "flap", Metric: metric.ValueDeviation, Bandwidth: 5000,
		Tick: time.Millisecond, Rebalance: 2 * time.Millisecond,
	}, []Destination{mkDest("flap"), mkDest("flap-2")})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // updater keeps demand flowing
		defer wg.Done()
		v := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v++
			src.Update("x", v)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() { // connection killer forces redials
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.mu.Lock()
			var conn transport.SourceConn
			if len(src.sessions) > 0 {
				conn = src.sessions[i%len(src.sessions)].dest.Conn
			}
			src.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("flap-extra-%d", i)
		if err := src.AddDestination(mkDest(id)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(4 * time.Millisecond)
		if err := src.RemoveDestination(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := src.Close(); err != nil {
		t.Fatalf("close after redial churn: %v", err)
	}
}
