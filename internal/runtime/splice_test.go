package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

func TestViaMemo(t *testing.T) {
	m := viaMemo{id: "relay"}
	p1 := m.path([]string{"a", "b"})
	p2 := m.path([]string{"a", "b"})
	if &p1[0] != &p2[0] {
		t.Error("identical Via paths did not share one backing array")
	}
	if len(p1) != 3 || p1[0] != "a" || p1[1] != "b" || p1[2] != "relay" {
		t.Errorf("path = %v, want [a b relay]", p1)
	}
	p3 := m.path(nil)
	if len(p3) != 1 || p3[0] != "relay" {
		t.Errorf("empty-Via path = %v, want [relay]", p3)
	}
	p4 := m.path([]string{"a"})
	if len(p4) != 2 || p4[1] != "relay" {
		t.Errorf("path = %v, want [a relay]", p4)
	}
	if got := m.path([]string{"a", "b"}); &got[0] != &p1[0] {
		t.Error("memo lost the first path after later inserts")
	}
}

// spliceTier is a 3-tier chain over real binary TCP: a root fan-out source
// dials a relay node whose peer face runs session-group delivery, and the
// relay dials two leaf caches. With splice enabled, the relay's re-exports
// ride the retained inbound frames.
type spliceTier struct {
	src    *Source
	node   *Node
	leaves []*Cache
}

func buildSpliceTier(t *testing.T, leaves int, splice bool) (*spliceTier, func()) {
	t.Helper()
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) {
		cleanup()
		t.Fatal(err)
	}

	tier := &spliceTier{leaves: make([]*Cache, leaves)}
	peers := make([]Destination, leaves)
	for i := 0; i < leaves; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		ep := transport.Serve(ln, 64)
		leaf := NewCache(CacheConfig{
			ID: fmt.Sprintf("leaf-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, ep)
		tier.leaves[i] = leaf
		cleanups = append(cleanups, func() { leaf.Close(); ep.Close() })
		conn, err := transport.DialCodec(ln.Addr().String(), "relay", transport.CodecBinary)
		if err != nil {
			fail(err)
		}
		peers[i] = Destination{CacheID: fmt.Sprintf("leaf-%d", i), Conn: conn}
	}

	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	upEp := transport.Serve(upLn, 64)
	cleanups = append(cleanups, func() { upEp.Close() })
	node, err := NewNode(NodeConfig{
		ID:            "relay",
		Intake:        CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 10000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		Params:        pinnedParams(1e-6),
		Group:         GroupConfig{Enabled: true},
		SpliceForward: splice,
	}, upEp, peers)
	if err != nil {
		fail(err)
	}
	tier.node = node
	cleanups = append(cleanups, func() { node.Close() })

	srcConn, err := transport.DialCodec(upLn.Addr().String(), "root", transport.CodecBinary)
	if err != nil {
		fail(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "root", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6),
	}, []Destination{{CacheID: "relay", Conn: srcConn}})
	if err != nil {
		fail(err)
	}
	tier.src = src
	cleanups = append(cleanups, func() { src.Close() })
	return tier, cleanup
}

// runSpliceTier drives the same update schedule through a tier and waits for
// every leaf to hold the final values, returning each leaf's view.
func runSpliceTier(t *testing.T, tier *spliceTier, objects, rounds int) [][]Entry {
	t.Helper()
	for round := 1; round <= rounds; round++ {
		for k := 0; k < objects; k++ {
			tier.src.Update(fmt.Sprintf("root/obj-%d", k), float64(round*100+k))
		}
		time.Sleep(30 * time.Millisecond)
	}
	views := make([][]Entry, len(tier.leaves))
	for i, leaf := range tier.leaves {
		i, leaf := i, leaf
		waitFor(t, 5*time.Second, func() bool {
			for k := 0; k < objects; k++ {
				e, ok := leaf.Get(fmt.Sprintf("root/obj-%d", k))
				if !ok || e.Value != float64(rounds*100+k) {
					return false
				}
			}
			return true
		}, fmt.Sprintf("leaf %d to hold all final values", i))
		views[i] = make([]Entry, objects)
		for k := 0; k < objects; k++ {
			views[i][k], _ = leaf.Get(fmt.Sprintf("root/obj-%d", k))
		}
	}
	return views
}

// TestSpliceForwardEndToEnd proves the zero-copy relay path delivers: with
// splice enabled on a binary-TCP 3-tier chain, leaves converge to the
// root's values with full relay provenance, the relay actually splices
// (stats prove the fast path ran, not a silent fallback), and the group's
// frame refcounting quiesces to zero.
func TestSpliceForwardEndToEnd(t *testing.T) {
	tier, cleanup := buildSpliceTier(t, 2, true)
	defer cleanup()

	views := runSpliceTier(t, tier, 4, 5)
	for i, view := range views {
		for k, e := range view {
			if e.Origin != "root" || e.Hops != 1 || len(e.Via) != 1 || e.Via[0] != "relay" {
				t.Errorf("leaf %d obj %d provenance = origin %q hops %d via %v, want root/1/[relay]",
					i, k, e.Origin, e.Hops, e.Via)
			}
			if e.OriginEpoch == 0 {
				t.Errorf("leaf %d obj %d lost the origin axis (OriginEpoch = 0)", i, k)
			}
			if e.Source != "relay" {
				t.Errorf("leaf %d obj %d sender = %q, want relay (the spliced per-hop stamp)", i, k, e.Source)
			}
		}
	}

	ns := tier.node.Stats()
	if ns.SplicedBatches == 0 || ns.SplicedRefreshes == 0 {
		t.Errorf("splice path never ran: SplicedBatches=%d SplicedRefreshes=%d (fallbacks=%d)",
			ns.SplicedBatches, ns.SplicedRefreshes, ns.SpliceFallbacks)
	}
	if ns.Peers.Group == nil {
		t.Fatal("peer face reports no session group")
	}
	if ns.Peers.Group.SplicedBatches != ns.SplicedBatches {
		t.Errorf("group SplicedBatches = %d, node reports %d",
			ns.Peers.Group.SplicedBatches, ns.SplicedBatches)
	}

	// Frame refcount quiescence: once deliveries drain, every spliced frame
	// must have been released (no leak, no double-release panic earlier).
	g := tier.node.src.group
	waitFor(t, 2*time.Second, func() bool {
		return g.framesLive.Load() == 0
	}, "spliced frames to be released at quiescence")
}

// TestSpliceMatchesFallback runs the identical schedule through a
// splice-enabled and a splice-disabled chain and compares every leaf's final
// state: values, provenance path, hop count and origin axis must be
// indistinguishable — the fast path is an optimization, never a semantic.
func TestSpliceMatchesFallback(t *testing.T) {
	spliced, cleanupA := buildSpliceTier(t, 2, true)
	defer cleanupA()
	classic, cleanupB := buildSpliceTier(t, 2, false)
	defer cleanupB()

	const objects, rounds = 4, 5
	va := runSpliceTier(t, spliced, objects, rounds)
	vb := runSpliceTier(t, classic, objects, rounds)

	if n := classic.node.Stats().SplicedBatches; n != 0 {
		t.Fatalf("control chain spliced %d batches with SpliceForward off", n)
	}
	for i := range va {
		for k := range va[i] {
			a, b := va[i][k], vb[i][k]
			if a.Value != b.Value || a.Origin != b.Origin || a.Hops != b.Hops ||
				len(a.Via) != len(b.Via) || a.Via[0] != b.Via[0] ||
				a.OriginVersion != b.OriginVersion || a.Source != b.Source {
				t.Errorf("leaf %d obj %d diverges: splice=%+v classic=%+v", i, k, a, b)
			}
		}
	}
}

// TestSpliceFallbackOnLocalTransport: the Local transport never retains
// frames, so a splice-enabled node over it must run the classic re-export
// path end to end — same delivery, zero spliced batches.
func TestSpliceFallbackOnLocalTransport(t *testing.T) {
	leafNet := transport.NewLocal(64)
	leaf := NewCache(CacheConfig{ID: "leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
	defer leaf.Close()
	peerConn, err := leafNet.Dial("relay")
	if err != nil {
		t.Fatal(err)
	}

	upNet := transport.NewLocal(64)
	defer upNet.Close()
	node, err := NewNode(NodeConfig{
		ID:            "relay",
		Intake:        CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 10000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		Params:        pinnedParams(1e-6),
		Group:         GroupConfig{Enabled: true},
		SpliceForward: true,
	}, upNet, []Destination{{CacheID: "leaf", Conn: peerConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	srcConn, err := upNet.Dial("root")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "root", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6),
	}, []Destination{{CacheID: "relay", Conn: srcConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("root/x", 42)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := leaf.Get("root/x")
		return ok && e.Value == 42
	}, "value to traverse the local-transport chain")

	ns := node.Stats()
	if ns.SplicedBatches != 0 || ns.SpliceFallbacks != 0 {
		t.Errorf("local transport produced framed batches: spliced=%d fallbacks=%d, want 0/0",
			ns.SplicedBatches, ns.SpliceFallbacks)
	}
	if ns.Forwarded == 0 {
		t.Error("classic re-export path did not forward")
	}
}

// TestSpliceRespectsThreshold: the splice gate consults the group's shared
// threshold exactly like the flush scheduler — a sub-threshold inbound
// refresh advances the relay's canonical state (polls and re-syncs see it)
// but is not broadcast, spliced or otherwise.
func TestSpliceRespectsThreshold(t *testing.T) {
	leafLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	leafEp := transport.Serve(leafLn, 64)
	defer leafEp.Close()
	leaf := NewCache(CacheConfig{ID: "leaf-0", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafEp)
	defer leaf.Close()
	peerConn, err := transport.DialCodec(leafLn.Addr().String(), "relay", transport.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}

	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upEp := transport.Serve(upLn, 64)
	defer upEp.Close()
	node, err := NewNode(NodeConfig{
		ID:            "relay",
		Intake:        CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		PeerBandwidth: 10000,
		Metric:        metric.ValueDeviation,
		Tick:          5 * time.Millisecond,
		Params:        pinnedParams(5), // relay tier filters moves < 5
		Group:         GroupConfig{Enabled: true},
		SpliceForward: true,
	}, upEp, []Destination{{CacheID: "leaf-0", Conn: peerConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	srcConn, err := transport.DialCodec(upLn.Addr().String(), "root", transport.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "root", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
		Params: pinnedParams(1e-6), // the root filters nothing
	}, []Destination{{CacheID: "relay", Conn: srcConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("root/x", 100)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := leaf.Get("root/x")
		return ok && e.Value == 100
	}, "first value to broadcast (never-sent state)")

	// Sub-threshold jitter: applied by the relay, withheld from the leaf.
	src.Update("root/x", 101)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := node.Get("root/x")
		return ok && e.Value == 101
	}, "relay to apply the jitter")
	time.Sleep(100 * time.Millisecond)
	if e, _ := leaf.Get("root/x"); e.Value != 100 {
		t.Errorf("sub-threshold jitter crossed the relay tier: leaf sees %v, want 100", e.Value)
	}

	// An over-threshold move broadcasts again — the withheld state did not
	// wedge the object.
	src.Update("root/x", 200)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := leaf.Get("root/x")
		return ok && e.Value == 200
	}, "over-threshold move to broadcast")
}
