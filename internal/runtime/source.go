package runtime

import (
	"fmt"
	"sync"
	"time"

	"bestsync/internal/alloc"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
)

// SourceConfig configures a live source node.
type SourceConfig struct {
	// ID identifies the source to its caches.
	ID string
	// Metric selects the divergence metric driving refresh priorities.
	Metric metric.Kind
	// Delta is the value-deviation function (nil = |V1 − V2|).
	Delta metric.DeltaFunc
	// PriorityFn selects the refresh-priority function; the zero value
	// (AreaGeneral) suits value deviation; use the Poisson special cases
	// for staleness/lag (Section 8.1).
	PriorityFn priority.Fn
	// Bandwidth is the source-side send budget in messages/second. A
	// fan-out source divides it across its sync sessions by the
	// destinations' share weights (Section 7 allocation, internal/alloc).
	// The division is live: AddDestination/RemoveDestination re-divide it
	// across the surviving sessions, and SetBandwidth replaces it at
	// runtime.
	Bandwidth float64
	// Rebalance, when positive, enables the periodic re-allocation pass:
	// every Rebalance interval the session shares are re-derived from
	// observed per-session feedback rates and outstanding divergence (the
	// paper's option-3 contribution scores computed live — see
	// alloc.Rebalancer), so a starved-but-responsive cache earns share
	// from an idle or saturated one. Zero keeps the static Section 7
	// split: shares move only when the destination set or the total
	// bandwidth changes.
	Rebalance time.Duration
	// Tick is the send-loop interval (default 100 ms).
	Tick time.Duration
	// Policy selects the synchronization policy toward the caches. Under
	// the default PolicyPush the sessions run the paper's §5 protocol
	// (priority queue, adaptive threshold, source-initiated refreshes).
	// Under a cache-driven policy (ideal/cgm1/cgm2) the sessions instead
	// ANSWER the caches' polls from the local store — no priorities, no
	// thresholds, no pushes — pacing replies with the same per-session
	// token-bucket share of Bandwidth so message accounting stays
	// comparable. Cache-driven policies require every destination
	// connection to implement transport.PollConn (both provided transports
	// and the Batcher do). PolicyHybrid runs both regimes per session —
	// push-set objects flow through the §5 machinery, poll-set objects are
	// answered like a cache-driven policy — against one shared token
	// bucket, with the Hybrid migration controller moving objects between
	// the sets; it needs poll-capable connections too.
	Policy Policy
	// Hybrid tunes the per-object migration controller under PolicyHybrid
	// (zero fields mean the documented defaults); ignored under every
	// other policy.
	Hybrid HybridConfig
	// Params tunes the threshold algorithm; zero means paper defaults.
	// All sessions share the same parameters; each session applies them
	// to its own independent threshold.
	Params core.Params
	// Weight assigns refresh weights (importance × popularity) per object;
	// nil means weight 1 for all.
	Weight func(objectID string) float64
	// SuppressWithinThreshold, when set, defers the per-session scheduling
	// fan-out of an update that is PROVABLY within every live session's
	// threshold: the canonical object state still advances (the store stays
	// correct, polls answer the new value), but no observe/requeue work is
	// spent until the next flush tick replays the deferred objects. Only
	// exact-bound configurations are eligible — the value-deviation metric
	// with the default delta, pure-push individual sessions — and any
	// session outside that shape (hybrid, grouped, redialing, never-sent)
	// disables the deferral for the update at hand, so behaviour never
	// changes, only bookkeeping timing. Relays (Node) enable this: most
	// re-exported refreshes are below-threshold jitter for every peer.
	// Counted in SourceStats.SuppressedObserves.
	SuppressWithinThreshold bool
	// Group enables session-group delivery: push-policy destinations with
	// the default share weight register into one SessionGroup that runs a
	// single scheduling pass and a single encode per batch and fans the
	// shared frame to all members (see GroupConfig). Destinations with an
	// explicit non-default weight, and every destination under a
	// cache-driven policy, keep their individual sessions.
	Group GroupConfig
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// SourceStats counts protocol activity. The top-level counters aggregate
// across all sync sessions (for a single-cache source they are exactly the
// session's own); Sessions carries the per-destination breakdown. Sessions
// that ended (connection gone, no redial) keep their historical counters in
// the aggregates but are excluded from Pending and the Threshold mean — a
// dead session's frozen threshold says nothing about the live topology.
type SourceStats struct {
	// Policy names the synchronization policy the source runs (push, or a
	// cache-driven poll mode where Refreshes counts reply items delivered).
	Policy     string
	Updates    int
	Refreshes  int
	Feedbacks  int
	SendErrors int
	Pending    int
	// PollsAnswered counts poll requests answered across all sessions
	// (cache-driven policies only).
	PollsAnswered int
	// PollOmits counts poll items withheld from replies across all
	// sessions: split horizon (the poller is on the value's path) or a
	// known-version hint proving the poller already at-or-ahead.
	PollOmits int
	// SuppressedObserves counts updates whose per-session scheduling
	// fan-out was deferred because every live session was provably within
	// its threshold (SourceConfig.SuppressWithinThreshold).
	SuppressedObserves int
	// Rebalances counts completed periodic re-allocation passes
	// (SourceConfig.Rebalance).
	Rebalances int
	// Threshold is the mean local threshold across live sessions (a
	// single-cache source reports its one threshold unchanged). Grouped
	// sessions share one threshold, counted once.
	Threshold float64
	Sessions  []SessionStats
	// Group carries the session-group breakdown when group delivery is
	// enabled and has members; nil otherwise.
	Group *GroupStats
	// Hybrid aggregates the per-session migration controllers under
	// PolicyHybrid (set sizes summed across sessions, cumulative
	// promotions/demotions); nil under every other policy.
	Hybrid *HybridStats
}

// objState is the canonical (destination-independent) state of one locally
// cached object: its current value and update history. What each
// downstream cache has been sent — and therefore how far it has diverged —
// is per-session state (sessObj in session.go).
type objState struct {
	id      string
	value   float64
	version uint64
	// prov carries multi-tier provenance (wire.Refresh.Origin/Hops/Via):
	// the zero value means the value was produced locally; a relay
	// re-exporting an applied refresh records the originating source, the
	// incremented hop count and the relay path so downstream refreshes
	// stay attributable and loop-avoidable.
	prov Provenance
	// Poisson-rate estimate (Section 8.1): total updates over total
	// observed time.
	updates int
	firstAt float64
	// lastUnix is the wall-clock time of the most recent update
	// (nanoseconds) — the last-modified metadata a poll reply carries for
	// the CGM1 estimator.
	lastUnix int64
	// deferred marks an object whose per-session observe fan-out was
	// suppressed (SourceConfig.SuppressWithinThreshold); the next flush
	// tick replays it from canonical state.
	deferred bool
}

// Provenance describes where a re-exported value came from: the producing
// source, the number of relay tiers it has crossed counting the exporting
// relay, and the path of relay ids it took (oldest first, ending with the
// exporting relay). A relay drops a refresh from re-export when its own id
// already appears on the path — the path-vector loop check that bounds
// topology cycles. Epoch/Version carry the ORIGIN's version axis for the
// value, preserved unchanged across hops (wire.Refresh.OriginAxis), so
// caches can compare copies of the same origin object across relay
// incarnations. The zero value means "produced locally".
type Provenance struct {
	Origin  string
	Hops    int
	Via     []string
	Epoch   int64
	Version uint64
}

// Source is a live source node. Applications call Update whenever a local
// object changes; the node decides, independently per downstream cache,
// when each object is worth a refresh message.
//
// A Source is a thin coordinator: the actual scheduling state lives in one
// syncSession per destination cache. Update fans the canonical change into
// every session; each session's own goroutine then drives the Section 5
// protocol toward its cache with its allocated share of the send budget,
// so per-cache thresholds converge independently and a stalled cache
// back-pressures only its own session.
type Source struct {
	cfg SourceConfig

	mu       sync.Mutex
	sessions []*syncSession // live + ended (removed ones are detached)
	// group is the session group when cfg.Group.Enabled on a push source;
	// immutable after construction (its member set is what changes).
	group   *SessionGroup
	reb     *alloc.Rebalancer
	seq     int // next default CacheID ordinal (never reused)
	objs    map[string]*objState
	ids     []string // intern table: queue key → object id
	idx     map[string]int
	updates int
	// suppressedObserves and deferredKeys implement
	// SourceConfig.SuppressWithinThreshold: queue keys of objects whose
	// observe fan-out was deferred, replayed by replayDeferredLocked.
	suppressedObserves int
	deferredKeys       []int
	// bandwidth is the live total send budget; cfg.Bandwidth is only its
	// initial value (SetBandwidth replaces it at runtime).
	bandwidth  float64
	rebalances int
	started    time.Time

	stop chan struct{}
}

// NewSource starts a source node sending through conn — the single-cache
// special case of NewFanoutSource.
func NewSource(cfg SourceConfig, conn transport.SourceConn) *Source {
	s, err := NewFanoutSource(cfg, []Destination{{Conn: conn}})
	if err != nil {
		// Unreachable: a one-destination config cannot fail validation
		// (the only error is a nil conn, which panicked before this
		// refactor too, just later and less clearly).
		panic(err)
	}
	return s
}

// NewFanoutSource starts a source node synchronizing every destination
// cache. cfg.Bandwidth is divided across destinations in proportion to
// their Weights (all-default weights mean equal shares); each destination
// gets its own sync session, threshold and feedback loop.
func NewFanoutSource(cfg SourceConfig, dests []Destination) (*Source, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("runtime: fan-out source needs at least one destination")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
		cfg.Params.ExpectedFeedbackPeriod = 4 * cfg.Tick.Seconds()
	}
	for i := range dests {
		if dests[i].Conn == nil {
			return nil, fmt.Errorf("runtime: destination %d has a nil connection", i)
		}
		if cfg.Policy.Polls() {
			if _, ok := dests[i].Conn.(transport.PollConn); !ok {
				return nil, fmt.Errorf("runtime: policy %v needs poll-capable connections; destination %d is not a transport.PollConn", cfg.Policy, i)
			}
		}
		if dests[i].CacheID == "" {
			dests[i].CacheID = fmt.Sprintf("cache-%d", i)
		}
		if dests[i].Weight <= 0 {
			dests[i].Weight = 1
		}
	}
	s := &Source{
		cfg:       cfg,
		objs:      map[string]*objState{},
		idx:       map[string]int{},
		seq:       len(dests),
		bandwidth: cfg.Bandwidth,
		started:   cfg.Now().Add(-time.Millisecond),
		stop:      make(chan struct{}),
	}
	if cfg.Rebalance > 0 {
		s.reb = &alloc.Rebalancer{}
	}
	// Group delivery is pure-push machinery: a hybrid session's poll set
	// and migration state are inherently per-destination.
	if cfg.Group.Enabled && cfg.Policy == PolicyPush {
		// The group's flusher goroutine starts here, so everything below
		// runs under the lock.
		s.group = newSessionGroup(s, cfg.Group)
	}
	s.mu.Lock()
	s.sessions = make([]*syncSession, len(dests))
	for i, d := range dests {
		ss := newSyncSession(s, d)
		s.sessions[i] = ss
		if s.group != nil && d.Weight == 1 {
			// The store is empty at construction, so a fresh member is
			// trivially synchronized and joins directly.
			s.group.attachLocked(ss)
		}
	}
	s.reallocateLocked()
	s.mu.Unlock()
	for _, ss := range s.sessions {
		go ss.loop()
	}
	if cfg.Rebalance > 0 {
		go s.rebalanceLoop()
	}
	return s, nil
}

// AddDestination starts a sync session toward a new downstream cache on a
// running source, re-dividing the send budget across all live sessions. The
// new session starts with every existing object registered as never-sent,
// so the cache is fully synchronized from scratch — exactly the redial
// contract. An empty CacheID is defaulted to a fresh "cache-<n>" label; a
// CacheID already in use by a live session is an error (RemoveDestination
// is keyed by it).
func (s *Source) AddDestination(d Destination) error {
	if d.Conn == nil {
		return fmt.Errorf("runtime: destination has a nil connection")
	}
	if s.cfg.Policy.Polls() {
		if _, ok := d.Conn.(transport.PollConn); !ok {
			return fmt.Errorf("runtime: policy %v needs poll-capable connections", s.cfg.Policy)
		}
	}
	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		return fmt.Errorf("runtime: source is closed")
	default:
	}
	if d.CacheID == "" {
		d.CacheID = fmt.Sprintf("cache-%d", s.seq)
	}
	s.seq++
	for _, ss := range s.sessions {
		if !ss.ended && ss.dest.CacheID == d.CacheID {
			s.mu.Unlock()
			return fmt.Errorf("runtime: destination %q already exists", d.CacheID)
		}
	}
	if d.Weight <= 0 {
		d.Weight = 1
	}
	ss := newSyncSession(s, d)
	if !s.cfg.Policy.CacheDriven() {
		if s.group != nil && d.Weight == 1 && len(s.ids) == 0 {
			// Empty store: nothing to re-sync, join the group directly.
			s.group.attachLocked(ss)
		} else {
			now := s.now()
			ss.objs = make([]*sessObj, len(s.ids))
			for k := range ss.objs {
				ss.objs[k] = &sessObj{}
			}
			for k, id := range s.ids {
				ss.observeLocked(s.objs[id], k, now)
			}
			// With a non-empty store the member starts on the individual
			// path — the full from-scratch sync — and attaches to the group
			// once its queue drains (syncSession.maybeRejoin).
			ss.wantGroup = s.group != nil && d.Weight == 1
		}
	}
	s.sessions = append(s.sessions, ss)
	s.reallocateLocked()
	s.mu.Unlock()
	go ss.loop()
	return nil
}

// RemoveDestination stops the sync session whose Destination.CacheID is
// cacheID, closes its connection, waits for its loop to exit, and
// re-divides the send budget across the survivors — their in-flight
// refreshes and scheduling state are untouched, only their rates move. The
// removed session's historical counters leave the aggregate Stats with it.
func (s *Source) RemoveDestination(cacheID string) error {
	s.mu.Lock()
	// Prefer the live session: AddDestination allows re-using the label of
	// an ended session, so an ended ghost with the same CacheID may sit at
	// a lower index — removing it instead would report success while the
	// live session kept sending. The ghost is only matched (as cleanup)
	// when no live session carries the label.
	var victim *syncSession
	idx := -1
	for i, ss := range s.sessions {
		if ss.dest.CacheID != cacheID {
			continue
		}
		if !ss.ended {
			victim, idx = ss, i
			break
		}
		if victim == nil {
			victim, idx = ss, i
		}
	}
	if victim == nil {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no destination %q", cacheID)
	}
	if s.group != nil {
		// A grouped victim leaves the broadcast set first (no re-sync: it
		// is leaving the topology, not falling back to individual sends).
		s.group.detachLocked(victim, false)
	}
	s.sessions = append(s.sessions[:idx], s.sessions[idx+1:]...)
	if s.reb != nil {
		s.reb.Forget(cacheID)
	}
	s.reallocateLocked()
	s.mu.Unlock()
	close(victim.stop)
	// Unblock the loop and wait for it to exit. The connection must be
	// closed to release a back-pressured send (or the feedback read), and
	// it must be re-read each attempt: a redial that was already past its
	// stop check can swap in a fresh connection after we snapshot — closing
	// only the stale one would leave the loop wedged in a send on the new
	// one and this wait hanging forever. Close is idempotent on every
	// provided transport, so re-closing is harmless.
	for {
		s.mu.Lock()
		conn := victim.dest.Conn
		s.mu.Unlock()
		conn.Close()
		select {
		case <-victim.done:
			return nil
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// SetBandwidth replaces the total send budget at runtime and re-divides it
// across the live sessions at their current weights. Non-positive values
// are ignored.
func (s *Source) SetBandwidth(b float64) {
	if b <= 0 {
		return
	}
	s.mu.Lock()
	s.bandwidth = b
	s.reallocateLocked()
	s.mu.Unlock()
}

// Bandwidth returns the current total send budget.
func (s *Source) Bandwidth() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bandwidth
}

// LiveDestinations counts sessions that can still deliver — everything not
// permanently ended (a redialing session counts: its peer is expected
// back). A relay consults this to skip re-export work entirely when nothing
// downstream would receive it.
func (s *Source) LiveDestinations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ss := range s.sessions {
		if !ss.ended {
			n++
		}
	}
	return n
}

// reallocateLocked re-divides the send budget across the live sessions:
// effective weights come from the rebalancer's contribution scores when
// periodic re-allocation is enabled, from the static destination weights
// otherwise. Ended sessions are stripped to rate zero so a dead session
// never holds share a live one could spend. Caller holds s.mu; sessions
// pick the new rates up on their next tick (see syncSession.loop).
func (s *Source) reallocateLocked() {
	live := make([]*syncSession, 0, len(s.sessions))
	ids := make([]string, 0, len(s.sessions)+1)
	bases := make([]float64, 0, len(s.sessions)+1)
	for _, ss := range s.sessions {
		if ss.ended {
			ss.rate = 0
			ss.weight = 0
			continue
		}
		if ss.grouped {
			continue // accounted through the group's one consumer below
		}
		live = append(live, ss)
		ids = append(ids, ss.dest.CacheID)
		bases = append(bases, ss.dest.Weight)
	}
	// The group competes as a single consumer whose base weight is its
	// member count (every member has the default weight 1), so grouped and
	// individual destinations earn the same per-destination share. The
	// group then schedules at the PER-MEMBER rate — one scheduled refresh
	// fans to all members, keeping total egress within the budget.
	groupIdx := -1
	if s.group != nil && len(s.group.members) > 0 {
		groupIdx = len(ids)
		ids = append(ids, groupConsumerID)
		bases = append(bases, float64(len(s.group.members)))
	}
	if len(ids) == 0 {
		if s.group != nil {
			s.group.rate = 0
		}
		return
	}
	weights := bases
	if s.reb != nil {
		weights = s.reb.Weights(ids, bases)
	}
	rates := alloc.Proportional(s.bandwidth, weights)
	for i, ss := range live {
		ss.rate = rates[i]
		ss.weight = weights[i]
	}
	if groupIdx >= 0 {
		g := s.group
		g.rate = rates[groupIdx] / float64(len(g.members))
		for _, m := range g.members {
			m.rate = g.rate
			m.weight = 1
		}
	} else if s.group != nil {
		s.group.rate = 0
	}
}

// rebalanceLoop is the periodic re-allocation pass (SourceConfig.Rebalance):
// each interval it folds every live session's observation window — feedback
// messages heard and outstanding divergence — into the rebalancer's
// contribution scores and re-divides the budget by the smoothed weights.
func (s *Source) rebalanceLoop() {
	ticker := time.NewTicker(s.cfg.Rebalance)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.rebalanceOnce()
		}
	}
}

// rebalanceOnce runs one re-allocation pass (exported to tests via the
// loop's ticker; the daemons only ever drive it periodically).
func (s *Source) rebalanceOnce() {
	s.mu.Lock()
	cons := make([]alloc.Consumer, 0, len(s.sessions)+1)
	if s.group != nil && len(s.group.members) > 0 {
		g := s.group
		fb := g.feedbacks - g.windowFb
		g.windowFb = g.feedbacks
		cons = append(cons, alloc.Consumer{
			ID:        groupConsumerID,
			Base:      float64(len(g.members)),
			Feedbacks: float64(fb),
			Demand:    g.demand,
		})
	}
	for _, ss := range s.sessions {
		if ss.ended || ss.grouped {
			continue
		}
		// ss.demand is maintained incrementally by observeLocked and the
		// flush commit (both already under s.mu), so this pass is
		// O(sessions) instead of O(sessions × objects) under the send-path
		// mutex. A session whose connection is down (redialing) reports
		// zero demand: its trackers grow without bound while the peer is
		// gone, and un-spendable share allocated to a dead pipe would
		// starve the sessions that can deliver — on reconnect the full
		// re-sync rebuilds its demand and it earns share back immediately.
		demand := ss.demand
		if ss.redialing {
			demand = 0
		}
		fb := ss.feedbacks - ss.windowFeedbacks
		ss.windowFeedbacks = ss.feedbacks
		cons = append(cons, alloc.Consumer{
			ID:        ss.dest.CacheID,
			Base:      ss.dest.Weight,
			Feedbacks: float64(fb),
			Demand:    demand,
		})
	}
	if len(cons) > 0 {
		s.reb.Observe(cons)
		s.reallocateLocked()
	}
	s.rebalances++
	s.mu.Unlock()
}

// now returns seconds since the source started (the protocol time base).
func (s *Source) now() float64 {
	return s.cfg.Now().Sub(s.started).Seconds()
}

// originAxisLocked returns the origin-axis (epoch, version) an outgoing
// refresh for o would carry: the preserved origin axis for a re-exported
// value, this source's own incarnation and version counter for a locally
// produced one. Held-version feedback is compared against exactly this
// axis. The key is prov.Epoch, not prov.Origin — mirroring
// wire.Refresh.OriginAxis, which receivers (and therefore their acks)
// fall back to the sender axis for when OriginEpoch is zero; keying the
// two sides differently would let a Provenance with Origin set but no
// epoch (a legal UpdateFrom call) compare acks across mismatched axes
// and permanently held-skip the object. Caller holds s.mu.
func (s *Source) originAxisLocked(o *objState) (int64, uint64) {
	if o.prov.Epoch != 0 {
		return o.prov.Epoch, o.prov.Version
	}
	return s.started.UnixNano(), o.version
}

// Update records a new value for a locally produced object, recomputing its
// refresh priority in every sync session.
func (s *Source) Update(objectID string, value float64) {
	s.UpdateFrom(objectID, value, Provenance{})
}

// UpdateFrom records a new value that originated on another node; prov is
// stamped onto outgoing refreshes. A zero Provenance is exactly Update — a
// locally produced value. Relays use this to re-export applied refreshes so
// downstream tiers can attribute them and detect loops.
func (s *Source) UpdateFrom(objectID string, value float64, prov Provenance) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updateLocked(objectID, value, prov, now)
}

// RelayedUpdate is one element of an UpdateFromAll batch.
type RelayedUpdate struct {
	ObjectID string
	Value    float64
	Prov     Provenance
}

// UpdateFromAll records a batch of re-exported values under a single lock
// acquisition. This is the relay hot path: one shard-worker apply batch
// becomes one lock round-trip instead of one per refresh, so the sharded
// cache's parallel workers don't serialize on the source mutex message by
// message.
func (s *Source) UpdateFromAll(updates []RelayedUpdate) {
	if len(updates) == 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.updateLocked(u.ObjectID, u.Value, u.Prov, now)
	}
}

// updateLocked is the shared body of Update/UpdateFrom/UpdateFromAll.
// Caller holds s.mu.
func (s *Source) updateLocked(objectID string, value float64, prov Provenance, now float64) {
	cacheDriven := s.cfg.Policy.CacheDriven()
	o, ok := s.objs[objectID]
	if !ok {
		o = &objState{id: objectID, firstAt: now}
		s.objs[objectID] = o
		s.idx[objectID] = len(s.ids)
		s.ids = append(s.ids, objectID)
		if !cacheDriven {
			if s.group != nil {
				s.group.objs = append(s.group.objs, &groupObj{})
			}
			for _, ss := range s.sessions {
				// Ended sessions never observe or flush again; growing their
				// (released) per-object state with every new object would leak
				// in a long-running source with dead destinations. Grouped
				// sessions keep no per-object state at all — that is the
				// group's memory win.
				if !ss.ended && !ss.grouped {
					ss.objs = append(ss.objs, &sessObj{})
				}
			}
		}
	}
	o.value = value
	o.version++
	o.updates++
	o.prov = prov
	o.lastUnix = s.cfg.Now().UnixNano()
	s.updates++
	if cacheDriven {
		// Poll-answering sessions keep no per-object scheduling state: the
		// caches decide what to ask for and when, so there is nothing to
		// observe or rank here.
		return
	}
	key := s.idx[objectID]
	if s.cfg.SuppressWithinThreshold && ok && s.group == nil && s.withinAllThresholdsLocked(o) {
		// Every live session is provably within its threshold for this
		// value: skip the whole scheduling fan-out. The canonical state
		// above already advanced, so polls and later re-syncs see the new
		// value; the next flush tick replays the object through
		// observeLocked (idempotent over canonical state), at which point
		// most such updates have been superseded or still need no send.
		if !o.deferred {
			o.deferred = true
			s.deferredKeys = append(s.deferredKeys, key)
		}
		s.suppressedObserves++
		return
	}
	if o.deferred {
		// The update broke out of the threshold band (or eligibility):
		// observe normally below — the fan-out reads canonical state, so
		// one pass also covers everything deferred before it.
		o.deferred = false
	}
	// The group observes once for its whole cohort — the O(1)-per-update
	// dispatch that replaces the per-session loop below for grouped
	// members. Both paths are allocation-free in steady state.
	if s.group != nil {
		s.group.observeLocked(o, key, now)
	}
	for _, ss := range s.sessions {
		if !ss.ended && !ss.grouped {
			ss.observeLocked(o, key, now)
		}
	}
}

// withinAllThresholdsLocked reports whether o's new value is PROVABLY
// within every live session's current threshold — the precondition for
// deferring the observe fan-out. Provable requires the exact-bound shape:
// the value-deviation metric with the default |V1−V2| delta, and every
// live session individual, push-only, connected, and with a known
// last-sent value. Anything else (hybrid poll sets, group scheduling,
// redial re-syncs, a never-sent object, a custom delta) makes the bound
// unavailable and disables the deferral. Caller holds s.mu.
func (s *Source) withinAllThresholdsLocked(o *objState) bool {
	if s.cfg.Metric != metric.ValueDeviation || s.cfg.Delta != nil {
		return false
	}
	key := s.idx[o.id]
	for _, ss := range s.sessions {
		if ss.ended {
			continue
		}
		if ss.redialing || ss.grouped || ss.hyb != nil || key >= len(ss.objs) {
			return false
		}
		so := ss.objs[key]
		if so.sentVer == 0 {
			return false
		}
		d := o.value - so.sentVal
		if d < 0 {
			d = -d
		}
		if d >= ss.eng.Threshold() {
			return false
		}
	}
	return true
}

// replayDeferredLocked re-runs the observe fan-out for every object whose
// scheduling work was deferred by the within-threshold suppression. Called
// at the top of each flush tick (and from Stats, so Pending stays
// truthful); observeLocked reads canonical state, so replaying once covers
// any number of suppressed updates. Caller holds s.mu.
func (s *Source) replayDeferredLocked(now float64) {
	if len(s.deferredKeys) == 0 {
		return
	}
	for _, key := range s.deferredKeys {
		o := s.objs[s.ids[key]]
		if !o.deferred {
			continue // superseded by an over-threshold update already observed
		}
		o.deferred = false
		for _, ss := range s.sessions {
			if !ss.ended && !ss.grouped {
				ss.observeLocked(o, key, now)
			}
		}
	}
	s.deferredKeys = s.deferredKeys[:0]
}

// Stats returns a snapshot of protocol counters, aggregated and per
// session.
func (s *Source) Stats() SourceStats {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deferred observes would otherwise under-report Pending until the next
	// flush tick; replaying here keeps the snapshot truthful.
	s.replayDeferredLocked(now)
	st := SourceStats{
		Policy:             s.cfg.Policy.String(),
		Updates:            s.updates,
		Rebalances:         s.rebalances,
		SuppressedObserves: s.suppressedObserves,
		Sessions:           make([]SessionStats, 0, len(s.sessions)),
	}
	live := 0
	for _, ss := range s.sessions {
		sess := ss.statsLocked()
		st.Refreshes += sess.Refreshes
		st.Feedbacks += sess.Feedbacks
		st.SendErrors += sess.SendErrors
		st.PollsAnswered += sess.PollsAnswered
		st.PollOmits += sess.PollOmits
		if sess.Hybrid != nil {
			if st.Hybrid == nil {
				st.Hybrid = &HybridStats{}
			}
			st.Hybrid.PushObjects += sess.Hybrid.PushObjects
			st.Hybrid.PollObjects += sess.Hybrid.PollObjects
			st.Hybrid.Promotions += sess.Hybrid.Promotions
			st.Hybrid.Demotions += sess.Hybrid.Demotions
			st.Hybrid.PolledItems += sess.Hybrid.PolledItems
		}
		if !sess.Ended && !sess.Grouped {
			// An ended session's queue will never drain and its frozen
			// threshold describes nothing: both would skew the aggregate
			// view of the live topology (historical counters above still
			// aggregate — those sends happened). Grouped sessions share the
			// group's one queue and threshold, folded in once below.
			st.Pending += sess.Pending
			st.Threshold += sess.Threshold
			live++
		}
		st.Sessions = append(st.Sessions, sess)
	}
	if s.group != nil && len(s.group.members) > 0 {
		gs := s.group.statsLocked()
		st.Group = &gs
		st.Pending += gs.Pending
		st.Threshold += gs.Threshold
		live++
	}
	if live > 0 {
		st.Threshold /= float64(live)
	}
	return st
}

// Close stops the node and all of its connections, returning the first
// connection-close error. Connections are closed before waiting for the
// session loops: a session can be blocked inside a back-pressured send
// (the paper's network queueing), and only tearing its connection down
// unblocks that send — otherwise one stalled cache would wedge shutdown
// of the whole fan-out source.
func (s *Source) Close() error {
	select {
	case <-s.stop:
		return nil
	default:
	}
	close(s.stop)
	// Snapshot sessions and connections under the lock: a redial may swap
	// a session's connection, and AddDestination/RemoveDestination may
	// reshape the session set concurrently. Any connection installed after
	// s.stop closed is cleaned up by the redialing session itself; a
	// session removed concurrently is waited on by its remover.
	s.mu.Lock()
	sessions := append([]*syncSession(nil), s.sessions...)
	conns := make([]transport.SourceConn, len(sessions))
	for i, ss := range sessions {
		conns[i] = ss.dest.Conn
	}
	s.mu.Unlock()
	var err error
	for _, conn := range conns {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, ss := range sessions {
		<-ss.done
	}
	if s.group != nil {
		// After the flusher exits (it watches s.stop) nothing enqueues to
		// the workers; they drain their remaining items — sends fail fast
		// on the closed connections — so every shared-frame reference is
		// released before close returns.
		s.group.close()
	}
	return err
}
