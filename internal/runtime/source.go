package runtime

import (
	"sync"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// SourceConfig configures a live source node.
type SourceConfig struct {
	// ID identifies the source to the cache.
	ID string
	// Metric selects the divergence metric driving refresh priorities.
	Metric metric.Kind
	// Delta is the value-deviation function (nil = |V1 − V2|).
	Delta metric.DeltaFunc
	// PriorityFn selects the refresh-priority function; the zero value
	// (AreaGeneral) suits value deviation; use the Poisson special cases
	// for staleness/lag (Section 8.1).
	PriorityFn priority.Fn
	// Bandwidth is the source-side send budget in messages/second.
	Bandwidth float64
	// Tick is the send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the threshold algorithm; zero means paper defaults.
	Params core.Params
	// Weight assigns refresh weights (importance × popularity) per object;
	// nil means weight 1 for all.
	Weight func(objectID string) float64
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// SourceStats counts protocol activity.
type SourceStats struct {
	Updates   int
	Refreshes int
	Feedbacks int
	Pending   int
	Threshold float64
}

// objState tracks one locally cached object's divergence and priority
// inputs.
type objState struct {
	id      string
	value   float64
	version uint64
	sentVal float64
	sentVer uint64
	tracker metric.Tracker
	// Poisson-rate estimate (Section 8.1): total updates over total
	// observed time.
	updates int
	firstAt float64
}

// Source is a live source node. Applications call Update whenever a local
// object changes; the node decides when each object is worth a refresh
// message.
type Source struct {
	cfg  SourceConfig
	conn transport.SourceConn
	eng  *core.Source

	mu      sync.Mutex
	objs    map[string]*objState
	ids     []string // intern table: queue key → object id
	idx     map[string]int
	stats   SourceStats
	started time.Time

	stop chan struct{}
	done chan struct{}
}

// NewSource starts a source node sending through conn.
func NewSource(cfg SourceConfig, conn transport.SourceConn) *Source {
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
		cfg.Params.ExpectedFeedbackPeriod = 4 * cfg.Tick.Seconds()
	}
	s := &Source{
		cfg:     cfg,
		conn:    conn,
		eng:     core.NewSource(0, cfg.Params, core.PositiveFeedback),
		objs:    map[string]*objState{},
		idx:     map[string]int{},
		started: cfg.Now().Add(-time.Millisecond),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.loop()
	return s
}

// now returns seconds since the source started (the protocol time base).
func (s *Source) now() float64 {
	return s.cfg.Now().Sub(s.started).Seconds()
}

// Update records a new value for an object, recomputing its refresh
// priority.
func (s *Source) Update(objectID string, value float64) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objs[objectID]
	if !ok {
		o = &objState{id: objectID, firstAt: now}
		s.objs[objectID] = o
		s.idx[objectID] = len(s.ids)
		s.ids = append(s.ids, objectID)
		// A brand-new object starts synchronized-at-zero: its initial
		// value must be propagated, so treat creation as an update from a
		// zero baseline.
	}
	o.value = value
	o.version++
	o.updates++
	d := metric.Divergence(s.cfg.Metric, s.cfg.Delta,
		int(o.version-o.sentVer), o.value, o.sentVal)
	if o.sentVer == 0 && d == 0 {
		// Nothing has ever been sent: the cache holds no copy at all, so
		// even a value that matches the zero baseline must be propagated
		// to register the object.
		d = 1
	}
	o.tracker.Update(now, d)
	s.stats.Updates++
	s.requeueLocked(o, now)
}

// requeueLocked recomputes o's priority and syncs the engine queue.
func (s *Source) requeueLocked(o *objState, now float64) {
	w := 1.0
	if s.cfg.Weight != nil {
		w = s.cfg.Weight(o.id)
	}
	lambda := 0.0
	if span := now - o.firstAt; span > 0 && o.updates > 1 {
		lambda = float64(o.updates) / span
	}
	p := priority.Compute(s.cfg.PriorityFn, priority.Inputs{
		Now:         now,
		LastRefresh: o.tracker.LastReset(),
		Divergence:  o.tracker.Current(),
		Integral:    o.tracker.Integral(now),
		Weight:      w,
		Lambda:      lambda,
		Updates:     o.tracker.UpdatesBehind(),
	})
	key := s.idx[o.id]
	if p > 0 {
		s.eng.Queue.Upsert(key, p)
	} else {
		s.eng.Queue.Remove(key)
	}
}

// Stats returns a snapshot of protocol counters.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Pending = s.eng.Queue.Len()
	st.Threshold = s.eng.Threshold()
	return st
}

// Close stops the node and its connection.
func (s *Source) Close() error {
	select {
	case <-s.stop:
		return nil
	default:
	}
	close(s.stop)
	<-s.done
	return s.conn.Close()
}

func (s *Source) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	budget := 0.0
	burst := s.cfg.Bandwidth * s.cfg.Tick.Seconds() * 2
	if burst < 1 {
		burst = 1
	}
	for {
		select {
		case <-s.stop:
			return
		case _, ok := <-s.conn.Feedback():
			if !ok {
				return // connection gone
			}
			s.mu.Lock()
			s.eng.OnFeedback(s.now())
			s.stats.Feedbacks++
			s.mu.Unlock()
		case <-ticker.C:
			budget += s.cfg.Bandwidth * s.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			budget = s.flush(budget)
		}
	}
}

// flush sends over-threshold objects while budget remains, returning the
// leftover budget.
func (s *Source) flush(budget float64) float64 {
	now := s.now()
	for budget >= 1 {
		s.mu.Lock()
		key, _, ok := s.eng.ShouldSend()
		if !ok {
			s.eng.SetLimited(false)
			s.mu.Unlock()
			return budget
		}
		id := s.ids[key]
		o := s.objs[id]
		msg := wire.Refresh{
			SourceID:  s.cfg.ID,
			ObjectID:  id,
			Value:     o.value,
			Version:   o.version,
			Epoch:     s.started.UnixNano(),
			Threshold: s.eng.Threshold(),
			SentUnix:  s.cfg.Now().UnixNano(),
		}
		o.sentVal = o.value
		o.sentVer = o.version
		o.tracker.Reset(now, 0)
		s.eng.Queue.Remove(key)
		s.eng.OnRefreshSent(now)
		s.eng.ClampThreshold()
		s.stats.Refreshes++
		s.mu.Unlock()

		// Send outside the lock: a saturated cache applies back-pressure
		// here, which is exactly the paper's network queueing.
		if err := s.conn.SendRefresh(msg); err != nil {
			return budget
		}
		budget--
	}
	s.mu.Lock()
	_, _, want := s.eng.ShouldSend()
	s.eng.SetLimited(want)
	s.mu.Unlock()
	return budget
}
