package runtime

import (
	"fmt"
	"sync"
	"time"

	"bestsync/internal/alloc"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
)

// SourceConfig configures a live source node.
type SourceConfig struct {
	// ID identifies the source to its caches.
	ID string
	// Metric selects the divergence metric driving refresh priorities.
	Metric metric.Kind
	// Delta is the value-deviation function (nil = |V1 − V2|).
	Delta metric.DeltaFunc
	// PriorityFn selects the refresh-priority function; the zero value
	// (AreaGeneral) suits value deviation; use the Poisson special cases
	// for staleness/lag (Section 8.1).
	PriorityFn priority.Fn
	// Bandwidth is the source-side send budget in messages/second. A
	// fan-out source divides it across its sync sessions by the
	// destinations' share weights (Section 7 allocation, internal/alloc).
	Bandwidth float64
	// Tick is the send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the threshold algorithm; zero means paper defaults.
	// All sessions share the same parameters; each session applies them
	// to its own independent threshold.
	Params core.Params
	// Weight assigns refresh weights (importance × popularity) per object;
	// nil means weight 1 for all.
	Weight func(objectID string) float64
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// SourceStats counts protocol activity. The top-level counters aggregate
// across all sync sessions (for a single-cache source they are exactly the
// session's own); Sessions carries the per-destination breakdown.
type SourceStats struct {
	Updates    int
	Refreshes  int
	Feedbacks  int
	SendErrors int
	Pending    int
	// Threshold is the mean local threshold across sessions (a
	// single-cache source reports its one threshold unchanged).
	Threshold float64
	Sessions  []SessionStats
}

// objState is the canonical (destination-independent) state of one locally
// cached object: its current value and update history. What each
// downstream cache has been sent — and therefore how far it has diverged —
// is per-session state (sessObj in session.go).
type objState struct {
	id      string
	value   float64
	version uint64
	// prov carries multi-tier provenance (wire.Refresh.Origin/Hops/Via):
	// the zero value means the value was produced locally; a relay
	// re-exporting an applied refresh records the originating source, the
	// incremented hop count and the relay path so downstream refreshes
	// stay attributable and loop-avoidable.
	prov Provenance
	// Poisson-rate estimate (Section 8.1): total updates over total
	// observed time.
	updates int
	firstAt float64
}

// Provenance describes where a re-exported value came from: the producing
// source, the number of relay tiers it has crossed counting the exporting
// relay, and the path of relay ids it took (oldest first, ending with the
// exporting relay). A relay drops a refresh from re-export when its own id
// already appears on the path — the path-vector loop check that bounds
// topology cycles. The zero value means "produced locally".
type Provenance struct {
	Origin string
	Hops   int
	Via    []string
}

// Source is a live source node. Applications call Update whenever a local
// object changes; the node decides, independently per downstream cache,
// when each object is worth a refresh message.
//
// A Source is a thin coordinator: the actual scheduling state lives in one
// syncSession per destination cache. Update fans the canonical change into
// every session; each session's own goroutine then drives the Section 5
// protocol toward its cache with its allocated share of the send budget,
// so per-cache thresholds converge independently and a stalled cache
// back-pressures only its own session.
type Source struct {
	cfg      SourceConfig
	sessions []*syncSession

	mu      sync.Mutex
	objs    map[string]*objState
	ids     []string // intern table: queue key → object id
	idx     map[string]int
	updates int
	started time.Time

	stop chan struct{}
}

// NewSource starts a source node sending through conn — the single-cache
// special case of NewFanoutSource.
func NewSource(cfg SourceConfig, conn transport.SourceConn) *Source {
	s, err := NewFanoutSource(cfg, []Destination{{Conn: conn}})
	if err != nil {
		// Unreachable: a one-destination config cannot fail validation
		// (the only error is a nil conn, which panicked before this
		// refactor too, just later and less clearly).
		panic(err)
	}
	return s
}

// NewFanoutSource starts a source node synchronizing every destination
// cache. cfg.Bandwidth is divided across destinations in proportion to
// their Weights (all-default weights mean equal shares); each destination
// gets its own sync session, threshold and feedback loop.
func NewFanoutSource(cfg SourceConfig, dests []Destination) (*Source, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("runtime: fan-out source needs at least one destination")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
		cfg.Params.ExpectedFeedbackPeriod = 4 * cfg.Tick.Seconds()
	}
	weights := make([]float64, len(dests))
	for i := range dests {
		if dests[i].Conn == nil {
			return nil, fmt.Errorf("runtime: destination %d has a nil connection", i)
		}
		if dests[i].CacheID == "" {
			dests[i].CacheID = fmt.Sprintf("cache-%d", i)
		}
		if dests[i].Weight <= 0 {
			dests[i].Weight = 1
		}
		weights[i] = dests[i].Weight
	}
	rates := alloc.Proportional(cfg.Bandwidth, weights)
	s := &Source{
		cfg:     cfg,
		objs:    map[string]*objState{},
		idx:     map[string]int{},
		started: cfg.Now().Add(-time.Millisecond),
		stop:    make(chan struct{}),
	}
	s.sessions = make([]*syncSession, len(dests))
	for i, d := range dests {
		s.sessions[i] = newSyncSession(s, d, rates[i])
	}
	for _, ss := range s.sessions {
		go ss.loop()
	}
	return s, nil
}

// now returns seconds since the source started (the protocol time base).
func (s *Source) now() float64 {
	return s.cfg.Now().Sub(s.started).Seconds()
}

// Update records a new value for a locally produced object, recomputing its
// refresh priority in every sync session.
func (s *Source) Update(objectID string, value float64) {
	s.UpdateFrom(objectID, value, Provenance{})
}

// UpdateFrom records a new value that originated on another node; prov is
// stamped onto outgoing refreshes. A zero Provenance is exactly Update — a
// locally produced value. Relays use this to re-export applied refreshes so
// downstream tiers can attribute them and detect loops.
func (s *Source) UpdateFrom(objectID string, value float64, prov Provenance) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updateLocked(objectID, value, prov, now)
}

// RelayedUpdate is one element of an UpdateFromAll batch.
type RelayedUpdate struct {
	ObjectID string
	Value    float64
	Prov     Provenance
}

// UpdateFromAll records a batch of re-exported values under a single lock
// acquisition. This is the relay hot path: one shard-worker apply batch
// becomes one lock round-trip instead of one per refresh, so the sharded
// cache's parallel workers don't serialize on the source mutex message by
// message.
func (s *Source) UpdateFromAll(updates []RelayedUpdate) {
	if len(updates) == 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.updateLocked(u.ObjectID, u.Value, u.Prov, now)
	}
}

// updateLocked is the shared body of Update/UpdateFrom/UpdateFromAll.
// Caller holds s.mu.
func (s *Source) updateLocked(objectID string, value float64, prov Provenance, now float64) {
	o, ok := s.objs[objectID]
	if !ok {
		o = &objState{id: objectID, firstAt: now}
		s.objs[objectID] = o
		s.idx[objectID] = len(s.ids)
		s.ids = append(s.ids, objectID)
		for _, ss := range s.sessions {
			ss.objs = append(ss.objs, &sessObj{})
		}
	}
	o.value = value
	o.version++
	o.updates++
	o.prov = prov
	s.updates++
	key := s.idx[objectID]
	for _, ss := range s.sessions {
		ss.observeLocked(o, key, now)
	}
}

// Stats returns a snapshot of protocol counters, aggregated and per
// session.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SourceStats{
		Updates:  s.updates,
		Sessions: make([]SessionStats, 0, len(s.sessions)),
	}
	for _, ss := range s.sessions {
		sess := ss.statsLocked()
		st.Refreshes += sess.Refreshes
		st.Feedbacks += sess.Feedbacks
		st.SendErrors += sess.SendErrors
		st.Pending += sess.Pending
		st.Threshold += sess.Threshold
		st.Sessions = append(st.Sessions, sess)
	}
	st.Threshold /= float64(len(s.sessions))
	return st
}

// Close stops the node and all of its connections, returning the first
// connection-close error. Connections are closed before waiting for the
// session loops: a session can be blocked inside a back-pressured send
// (the paper's network queueing), and only tearing its connection down
// unblocks that send — otherwise one stalled cache would wedge shutdown
// of the whole fan-out source.
func (s *Source) Close() error {
	select {
	case <-s.stop:
		return nil
	default:
	}
	close(s.stop)
	// Snapshot the connections under the lock: a redial may swap a
	// session's connection concurrently. Any connection installed after
	// s.stop closed is cleaned up by the redialing session itself.
	s.mu.Lock()
	conns := make([]transport.SourceConn, len(s.sessions))
	for i, ss := range s.sessions {
		conns[i] = ss.dest.Conn
	}
	s.mu.Unlock()
	var err error
	for _, conn := range conns {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, ss := range s.sessions {
		<-ss.done
	}
	return err
}
