package runtime

import (
	"fmt"
	"sync"
	"time"

	"bestsync/internal/alloc"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
)

// SourceConfig configures a live source node.
type SourceConfig struct {
	// ID identifies the source to its caches.
	ID string
	// Metric selects the divergence metric driving refresh priorities.
	Metric metric.Kind
	// Delta is the value-deviation function (nil = |V1 − V2|).
	Delta metric.DeltaFunc
	// PriorityFn selects the refresh-priority function; the zero value
	// (AreaGeneral) suits value deviation; use the Poisson special cases
	// for staleness/lag (Section 8.1).
	PriorityFn priority.Fn
	// Bandwidth is the source-side send budget in messages/second. A
	// fan-out source divides it across its sync sessions by the
	// destinations' share weights (Section 7 allocation, internal/alloc).
	Bandwidth float64
	// Tick is the send-loop interval (default 100 ms).
	Tick time.Duration
	// Params tunes the threshold algorithm; zero means paper defaults.
	// All sessions share the same parameters; each session applies them
	// to its own independent threshold.
	Params core.Params
	// Weight assigns refresh weights (importance × popularity) per object;
	// nil means weight 1 for all.
	Weight func(objectID string) float64
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// SourceStats counts protocol activity. The top-level counters aggregate
// across all sync sessions (for a single-cache source they are exactly the
// session's own); Sessions carries the per-destination breakdown.
type SourceStats struct {
	Updates    int
	Refreshes  int
	Feedbacks  int
	SendErrors int
	Pending    int
	// Threshold is the mean local threshold across sessions (a
	// single-cache source reports its one threshold unchanged).
	Threshold float64
	Sessions  []SessionStats
}

// objState is the canonical (destination-independent) state of one locally
// cached object: its current value and update history. What each
// downstream cache has been sent — and therefore how far it has diverged —
// is per-session state (sessObj in session.go).
type objState struct {
	id      string
	value   float64
	version uint64
	// Poisson-rate estimate (Section 8.1): total updates over total
	// observed time.
	updates int
	firstAt float64
}

// Source is a live source node. Applications call Update whenever a local
// object changes; the node decides, independently per downstream cache,
// when each object is worth a refresh message.
//
// A Source is a thin coordinator: the actual scheduling state lives in one
// syncSession per destination cache. Update fans the canonical change into
// every session; each session's own goroutine then drives the Section 5
// protocol toward its cache with its allocated share of the send budget,
// so per-cache thresholds converge independently and a stalled cache
// back-pressures only its own session.
type Source struct {
	cfg      SourceConfig
	sessions []*syncSession

	mu      sync.Mutex
	objs    map[string]*objState
	ids     []string // intern table: queue key → object id
	idx     map[string]int
	updates int
	started time.Time

	stop chan struct{}
}

// NewSource starts a source node sending through conn — the single-cache
// special case of NewFanoutSource.
func NewSource(cfg SourceConfig, conn transport.SourceConn) *Source {
	s, err := NewFanoutSource(cfg, []Destination{{Conn: conn}})
	if err != nil {
		// Unreachable: a one-destination config cannot fail validation
		// (the only error is a nil conn, which panicked before this
		// refactor too, just later and less clearly).
		panic(err)
	}
	return s
}

// NewFanoutSource starts a source node synchronizing every destination
// cache. cfg.Bandwidth is divided across destinations in proportion to
// their Weights (all-default weights mean equal shares); each destination
// gets its own sync session, threshold and feedback loop.
func NewFanoutSource(cfg SourceConfig, dests []Destination) (*Source, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("runtime: fan-out source needs at least one destination")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
		cfg.Params.ExpectedFeedbackPeriod = 4 * cfg.Tick.Seconds()
	}
	weights := make([]float64, len(dests))
	for i := range dests {
		if dests[i].Conn == nil {
			return nil, fmt.Errorf("runtime: destination %d has a nil connection", i)
		}
		if dests[i].CacheID == "" {
			dests[i].CacheID = fmt.Sprintf("cache-%d", i)
		}
		if dests[i].Weight <= 0 {
			dests[i].Weight = 1
		}
		weights[i] = dests[i].Weight
	}
	rates := alloc.Proportional(cfg.Bandwidth, weights)
	s := &Source{
		cfg:     cfg,
		objs:    map[string]*objState{},
		idx:     map[string]int{},
		started: cfg.Now().Add(-time.Millisecond),
		stop:    make(chan struct{}),
	}
	s.sessions = make([]*syncSession, len(dests))
	for i, d := range dests {
		s.sessions[i] = newSyncSession(s, d, rates[i])
	}
	for _, ss := range s.sessions {
		go ss.loop()
	}
	return s, nil
}

// now returns seconds since the source started (the protocol time base).
func (s *Source) now() float64 {
	return s.cfg.Now().Sub(s.started).Seconds()
}

// Update records a new value for an object, recomputing its refresh
// priority in every sync session.
func (s *Source) Update(objectID string, value float64) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objs[objectID]
	if !ok {
		o = &objState{id: objectID, firstAt: now}
		s.objs[objectID] = o
		s.idx[objectID] = len(s.ids)
		s.ids = append(s.ids, objectID)
		for _, ss := range s.sessions {
			ss.objs = append(ss.objs, &sessObj{})
		}
	}
	o.value = value
	o.version++
	o.updates++
	s.updates++
	key := s.idx[objectID]
	for _, ss := range s.sessions {
		ss.observeLocked(o, key, now)
	}
}

// Stats returns a snapshot of protocol counters, aggregated and per
// session.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SourceStats{
		Updates:  s.updates,
		Sessions: make([]SessionStats, 0, len(s.sessions)),
	}
	for _, ss := range s.sessions {
		sess := ss.statsLocked()
		st.Refreshes += sess.Refreshes
		st.Feedbacks += sess.Feedbacks
		st.SendErrors += sess.SendErrors
		st.Pending += sess.Pending
		st.Threshold += sess.Threshold
		st.Sessions = append(st.Sessions, sess)
	}
	st.Threshold /= float64(len(s.sessions))
	return st
}

// Close stops the node and all of its connections, returning the first
// connection-close error. Connections are closed before waiting for the
// session loops: a session can be blocked inside a back-pressured send
// (the paper's network queueing), and only tearing its connection down
// unblocks that send — otherwise one stalled cache would wedge shutdown
// of the whole fan-out source.
func (s *Source) Close() error {
	select {
	case <-s.stop:
		return nil
	default:
	}
	close(s.stop)
	var err error
	for _, ss := range s.sessions {
		if cerr := ss.dest.Conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, ss := range s.sessions {
		<-ss.done
	}
	return err
}
