package runtime

import (
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

// TestDialDestinationsDeferred: a destination that is down at construction
// must not fail the whole set — it starts on a dead stub connection and the
// session's redial loop connects once the peer comes up, after which the
// full object set is synchronized.
func TestDialDestinationsDeferred(t *testing.T) {
	// Reserve an address, then shut it down so the initial dial fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dests, deferred := DialDestinations([]string{addr}, nil, "s1", nil)
	if len(dests) != 1 || len(deferred) != 1 || deferred[0] != addr {
		t.Fatalf("dests=%d deferred=%v, want 1 destination deferred", len(dests), deferred)
	}

	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.Update("s1/x", 77)

	// Bring the cache up on the reserved address: the session's backoff
	// loop finds it and delivers the update.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	ep := transport.Serve(ln2, 16)
	cache := NewCache(CacheConfig{ID: "late-cache", Bandwidth: 10000, Tick: 5 * time.Millisecond}, ep)
	defer func() {
		cache.Close()
		ep.Close()
	}()

	waitFor(t, 5*time.Second, func() bool {
		e, ok := cache.Get("s1/x")
		return ok && e.Value == 77
	}, "the late-starting cache to receive the update")
	if got := src.Stats().Sessions[0].Reconnects; got < 1 {
		t.Errorf("reconnects = %d, want ≥ 1 (the initial connection was a stub)", got)
	}
}
