package runtime

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// GroupConfig enables session-group delivery on a push-mode fan-out source:
// destinations with compatible scheduling state (push policy, default share
// weight, full-replica cohort) register into one SessionGroup that runs ONE
// scheduling pass and ONE encode per batch, then fans the shared
// pre-encoded frame to every member through a small pool of sender workers.
// Origin cost per batch drops from O(members × schedule+encode) to one
// schedule+encode plus O(members) queue hand-offs.
type GroupConfig struct {
	// Enabled turns group delivery on. Only push-policy sources group;
	// cache-driven policies have no source-side scheduling to share.
	Enabled bool
	// Workers is the sender worker pool size (default 4). Members are
	// sharded across workers, so one back-pressured connection stalls at
	// most 1/Workers of the cohort until its queue overruns and the member
	// detaches.
	Workers int
	// Queue is the per-member bound on outstanding group batches (default
	// 8). A member whose connection cannot drain Queue batches is detached
	// to its individual session path (full re-sync, exactly the redial
	// contract) rather than back-pressuring the whole cohort.
	Queue int
	// MaxBatch caps refreshes per group batch (default 64, matching the
	// transport Batcher's default framing).
	MaxBatch int
}

func (c GroupConfig) withDefaults() GroupConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// GroupStats is the session group's slice of SourceStats.
type GroupStats struct {
	// Members is the current attached-member count; detached members run
	// their individual session path and re-attach once fully re-synced.
	Members int
	// Batches counts group batches scheduled; Scheduled counts the
	// refreshes inside them (one per object pick, independent of cohort
	// size); Delivered counts member deliveries (refreshes × recipients).
	Batches   int
	Scheduled int
	Delivered int64
	// Fallbacks counts member-filtered sends: a batch that would have
	// carried a held-acked or split-horizoned object to a member is
	// re-cut for that member alone, the rest of the cohort still shares
	// the one frame.
	Fallbacks int
	// Detaches counts members dropped to the individual path (connection
	// loss, queue overrun, removal); Rejoins counts returns to the group
	// after a full individual re-sync caught the member up.
	Detaches int
	Rejoins  int
	// QueueOverruns counts detaches caused specifically by a member's
	// outbound queue exceeding GroupConfig.Queue.
	QueueOverruns int
	SendErrors    int64
	// SplicedBatches counts broadcasts that bypassed the flush scheduler
	// entirely: a relay's inbound frame was splice-patched and fanned to
	// the cohort directly from the apply path (Source.forwardSpliced).
	// SplicedRefreshes counts the refreshes those broadcasts carried (both
	// are also folded into Batches/Scheduled).
	SplicedBatches   int
	SplicedRefreshes int
	// Pending and Threshold describe the shared scheduling engine.
	Pending   int
	Threshold float64
	// MemberShare is the per-member send rate (the group's aggregate
	// Section 7 share divided by the member count); the group schedules at
	// this rate because one scheduled refresh reaches every member.
	MemberShare float64
}

// groupConsumerID is the rebalancer identity of the whole group: the group
// competes for bandwidth as one consumer whose base weight is its member
// count, so grouped and individual destinations keep comparable shares.
const groupConsumerID = "(group)"

// groupObj is the group's shared view of one object: the value/version last
// scheduled for broadcast and the divergence accumulated against it — the
// cohort-wide analogue of sessObj. Per-member divergence (held acks, split
// horizon) stays on the members and is applied per batch.
type groupObj struct {
	sentVal float64
	sentVer uint64
	tracker metric.Tracker
}

// groupBatch is one broadcast's shared payload: the refresh slice every
// member send references and, when any member speaks the binary framing,
// the one pre-encoded frame. It is reference-counted so the pooled buffers
// return exactly when the last member send has finished, and pooled itself
// so steady-state broadcasting allocates nothing.
type groupBatch struct {
	g     *SessionGroup
	rs    []wire.Refresh
	frame *codec.Frame
	refs  atomic.Int32
}

var groupBatchPool = sync.Pool{New: func() any { return &groupBatch{} }}

func (b *groupBatch) release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	if b.frame != nil {
		b.frame.Release()
		b.g.framesLive.Add(-1)
		b.frame = nil
	}
	b.rs = b.rs[:0]
	b.g = nil
	groupBatchPool.Put(b)
}

// sendItem is one member's slice of a broadcast, queued to a sender worker.
type sendItem struct {
	sess *syncSession
	conn transport.SourceConn
	fs   transport.FrameSender // non-nil: send frame instead of batch
	// frame is a retained reference released after the send; batch is the
	// shared-buffer refcount (nil for a member-filtered fallback slice).
	frame *codec.Frame
	batch *groupBatch
	rs    []wire.Refresh
	n     int // refreshes carried (counter commit on success)
}

// groupWorker drains a FIFO of sendItems. The queue is structurally
// unbounded; the per-member inflight counters bound it at members × Queue.
type groupWorker struct {
	g      *SessionGroup
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sendItem
	head   int
	closed bool
	done   chan struct{}
}

// memberPlan is one member's delivery decision for a batch, made under the
// source mutex and executed outside it.
type memberPlan struct {
	m      *syncSession
	conn   transport.SourceConn
	fs     transport.FrameSender
	shared bool
	rs     []wire.Refresh // fallback slice when !shared
}

// SessionGroup coalesces the compatible members of a fan-out into one
// scheduling pass, one encode, and one flush ticker. Scheduling state
// (engine, objs, members, counters other than the atomics) is guarded by
// src.mu; the flusher goroutine plans each broadcast under the lock and
// hands the shared batch to the sender workers outside it, so a slow
// member's TCP back-pressure never holds the scheduler.
type SessionGroup struct {
	src *Source
	cfg GroupConfig

	// Guarded by src.mu.
	eng       *core.Source
	objs      []*groupObj // parallel to src.ids
	members   []*syncSession
	rate      float64 // per-member share, msgs/s (aggregate / members)
	demand    float64 // Σ tracker.Current() (rebalancer signal)
	feedbacks int     // member feedback heard while grouped
	windowFb  int     // feedbacks already folded into the rebalancer
	batches   int
	scheduled int
	fallbacks int
	detaches  int
	rejoins   int
	overruns  int
	// budget is the group's shared send-token bucket, accrued at the
	// per-member rate by accrueLocked and spent one token per scheduled
	// refresh by both the flush ticker (broadcastOnce) and the splice
	// fast path (Source.forwardSpliced) — one bucket, so splicing never
	// overspends the share the rebalancer granted the group.
	budget     float64
	lastAccrue float64 // protocol time of the last budget accrual
	// splicedBatches/splicedRefreshes count forwardSpliced broadcasts.
	splicedBatches   int
	splicedRefreshes int
	next             int                 // round-robin worker assignment cursor
	restricted       map[string]struct{} // per-batch split-horizon identity set (reused)
	planBuf          []memberPlan        // per-batch plan scratch (reused)
	overrunBuf       []*syncSession      // per-batch overrun scratch (reused)

	// Atomics shared with the sender workers.
	delivered  atomic.Int64
	sendErrors atomic.Int64
	// framesLive tracks shared frames created minus fully released — zero
	// whenever the group is quiescent. Tests assert on it to prove the
	// refcounting neither leaks nor double-releases under member failures,
	// detaches and close.
	framesLive atomic.Int64

	workers   []*groupWorker
	workerBuf [][]sendItem // per-worker enqueue scratch (reused)
	done      chan struct{}
}

func newSessionGroup(s *Source, cfg GroupConfig) *SessionGroup {
	cfg = cfg.withDefaults()
	g := &SessionGroup{
		src:        s,
		cfg:        cfg,
		eng:        core.NewSource(0, s.cfg.Params, core.PositiveFeedback),
		restricted: map[string]struct{}{},
		lastAccrue: s.now(),
		done:       make(chan struct{}),
	}
	g.workers = make([]*groupWorker, cfg.Workers)
	g.workerBuf = make([][]sendItem, cfg.Workers)
	for i := range g.workers {
		w := &groupWorker{g: g, done: make(chan struct{})}
		w.cond = sync.NewCond(&w.mu)
		g.workers[i] = w
		go w.run()
	}
	go g.loop()
	return g
}

// attachLocked adds a fully synchronized member to the group. Its per-object
// session state collapses to the shared group state — the O(members ×
// objects) memory the group exists to avoid — keeping only the small
// per-member exclusion set: held acks ahead of the canonical axis. Caller
// holds src.mu and reallocates after.
func (g *SessionGroup) attachLocked(m *syncSession) {
	s := g.src
	if m.memberHeld == nil {
		m.memberHeld = map[string]wire.HeldVersion{}
	}
	for k, so := range m.objs {
		if so.heldEpoch != 0 {
			id := s.ids[k]
			m.memberHeld[id] = wire.HeldVersion{ObjectID: id, Epoch: so.heldEpoch, Version: so.heldVer}
		}
	}
	for id, h := range m.heldPending {
		if cur, ok := m.memberHeld[id]; !ok || h.Epoch > cur.Epoch ||
			(h.Epoch == cur.Epoch && h.Version > cur.Version) {
			m.memberHeld[id] = h
		}
	}
	m.heldPending = map[string]wire.HeldVersion{}
	m.objs = nil
	m.demand = 0
	m.grouped = true
	m.wantGroup = true
	m.detached = make(chan struct{})
	m.groupConn = m.dest.Conn
	m.groupFS = nil
	if fs, ok := m.dest.Conn.(transport.FrameSender); ok && fs.FramesEnabled() {
		m.groupFS = fs
	}
	m.workerIdx = g.next % len(g.workers)
	g.next++
	g.members = append(g.members, m)
}

// detachLocked drops a member back to its individual session path. With
// resync the member's per-object state is rebuilt zeroed and every object
// re-observed — the full re-sync contract redial uses, conservative because
// the group cannot know which broadcasts the member actually received (its
// held acks survive, so objects the cache proved it holds are not re-sent).
// Without resync the member is leaving the topology (removal/shutdown) and
// keeps no state. Caller holds src.mu and reallocates after.
func (g *SessionGroup) detachLocked(m *syncSession, resync bool) {
	if !m.grouped {
		return
	}
	m.grouped = false
	for i, mm := range g.members {
		if mm == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	g.detaches++
	close(m.detached)
	m.groupConn, m.groupFS = nil, nil
	if !resync {
		return
	}
	s := g.src
	now := s.now()
	m.objs = make([]*sessObj, len(s.ids))
	for k := range m.objs {
		m.objs[k] = &sessObj{}
	}
	for id, h := range m.memberHeld {
		if key, ok := s.idx[id]; ok {
			m.objs[key].heldEpoch, m.objs[key].heldVer = h.Epoch, h.Version
		} else if len(m.heldPending) < maxHeldPending {
			m.heldPending[id] = h
		}
	}
	clear(m.memberHeld)
	m.demand = 0
	for k, id := range s.ids {
		m.observeLocked(s.objs[id], k, now)
	}
}

// observeLocked folds a canonical-state change into the group's shared
// tracker and priority queue — the group-delivery analogue of
// syncSession.observeLocked, run once per update instead of once per
// member. Allocation-free in steady state (tracker update + heap upsert).
// Per-member exclusions (held acks, split horizon) are applied per batch at
// broadcast time, not here. Caller holds src.mu.
func (g *SessionGroup) observeLocked(o *objState, key int, now float64) {
	gobj := g.objs[key]
	d := metric.Divergence(g.src.cfg.Metric, g.src.cfg.Delta,
		int(o.version-gobj.sentVer), o.value, gobj.sentVal)
	if gobj.sentVer == 0 && d == 0 {
		// Never broadcast: members hold no copy, register the object.
		d = 1
	}
	g.demand += d - gobj.tracker.Current()
	gobj.tracker.Update(now, d)
	g.requeueLocked(o, key, now)
}

// requeueLocked recomputes an object's broadcast priority. Caller holds
// src.mu.
func (g *SessionGroup) requeueLocked(o *objState, key int, now float64) {
	s := g.src
	w := 1.0
	if s.cfg.Weight != nil {
		w = s.cfg.Weight(o.id)
	}
	lambda := 0.0
	if span := now - o.firstAt; span > 0 && o.updates > 1 {
		lambda = float64(o.updates) / span
	}
	gobj := g.objs[key]
	p := priority.Compute(s.cfg.PriorityFn, priority.Inputs{
		Now:         now,
		LastRefresh: gobj.tracker.LastReset(),
		Divergence:  gobj.tracker.Current(),
		Integral:    gobj.tracker.Integral(now),
		Weight:      w,
		Lambda:      lambda,
		Updates:     gobj.tracker.UpdatesBehind(),
	})
	if p > 0 {
		g.eng.Queue.Upsert(key, p)
	} else {
		g.eng.Queue.Remove(key)
	}
}

// loop is the group's one flush ticker — the coalesced replacement for
// per-session tickers and per-Batcher flush timers. Budget accrues at the
// PER-MEMBER rate: one scheduled refresh reaches every member, so charging
// the aggregate rate per broadcast would overspend egress by the member
// count. The bucket itself lives on the group (g.budget) so the splice
// fast path spends from the same allowance between ticks.
func (g *SessionGroup) loop() {
	defer close(g.done)
	s := g.src
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			for g.broadcastOnce() {
			}
		}
	}
}

// accrueLocked tops the shared token bucket up for the time elapsed since
// the last accrual, clamped to the burst allowance. Called at the top of
// every spend site (broadcastOnce, forwardSpliced) rather than only on the
// tick, so splice broadcasts landing between ticks draw on real elapsed
// budget instead of a stale snapshot. Caller holds src.mu.
func (g *SessionGroup) accrueLocked(now float64) {
	dt := now - g.lastAccrue
	if dt <= 0 {
		return
	}
	g.lastAccrue = now
	g.budget += g.rate * dt
	if burst := tokenBurst(g.rate, g.src.cfg.Tick); g.budget > burst {
		g.budget = burst
	}
}

// broadcastOnce runs one scheduling pass and fans the resulting batch to
// every member: the shared refresh slice is built and committed under the
// source mutex, the frame is encoded once outside it, and each member's
// send is queued to its sharded worker. Returns false when nothing was over
// threshold or the token bucket ran dry.
//
// Shared sent-state is committed at schedule time, not delivery time: the
// group never retries or reschedules for one member. A member that misses a
// batch — excluded, queue-overrun, send failed, detached mid-flight — is
// healed by its individual re-sync path, the same contract redial has
// always had.
func (g *SessionGroup) broadcastOnce() bool {
	s := g.src
	now := s.now()
	b := groupBatchPool.Get().(*groupBatch)
	b.g = g
	b.refs.Store(1) // the flusher's own reference, dropped after enqueueing

	s.mu.Lock()
	g.accrueLocked(now)
	sentUnix := s.cfg.Now().UnixNano()
	epoch := s.started.UnixNano()
	for g.budget >= 1 && len(b.rs) < g.cfg.MaxBatch {
		key, _, ok := g.eng.ShouldSend()
		if !ok {
			g.eng.SetLimited(false)
			break
		}
		o := s.objs[s.ids[key]]
		b.rs = append(b.rs, wire.Refresh{
			SourceID: s.cfg.ID,
			ObjectID: o.id,
			// No CacheID stamp: the frame is shared by the whole cohort, so
			// it cannot carry any single member's identity. Caches treat an
			// empty stamp as unaddressed, never as misrouted; the
			// member-filtered fallback copies below are stamped normally.
			Origin:        o.prov.Origin,
			Hops:          o.prov.Hops,
			Via:           o.prov.Via,
			OriginEpoch:   o.prov.Epoch,
			OriginVersion: o.prov.Version,
			Value:         o.value,
			Version:       o.version,
			Epoch:         epoch,
			Threshold:     g.eng.Threshold(),
			SentUnix:      sentUnix,
		})
		gobj := g.objs[key]
		g.demand -= gobj.tracker.Current()
		gobj.sentVal, gobj.sentVer = o.value, o.version
		gobj.tracker.Reset(now, 0)
		g.eng.Queue.Remove(key)
		g.eng.OnRefreshSent(now)
		g.eng.ClampThreshold()
		g.scheduled++
		g.budget--
	}
	if len(b.rs) == 0 {
		s.mu.Unlock()
		b.g = nil
		groupBatchPool.Put(b)
		return false
	}
	_, _, want := g.eng.ShouldSend()
	g.eng.SetLimited(want)
	g.batches++

	// Split-horizon pre-pass: the identities on the batch's provenance
	// paths. Empty whenever every value is locally produced (the common
	// case at an origin), making the per-member check below a two-flag
	// test.
	clear(g.restricted)
	for i := range b.rs {
		r := &b.rs[i]
		if r.Origin != "" {
			g.restricted[r.Origin] = struct{}{}
		}
		for _, v := range r.Via {
			g.restricted[v] = struct{}{}
		}
	}

	// Plan each member's delivery under the lock; execute outside it.
	plan := g.planBuf[:0]
	overrun := g.overrunBuf[:0]
	needFrame := false
	for _, m := range g.members {
		if int(m.inflight.Load()) >= g.cfg.Queue {
			// The member's connection is not draining: detach it below
			// rather than let one slow peer back-pressure the cohort.
			overrun = append(overrun, m)
			continue
		}
		mrs, shared := g.memberRefreshesLocked(m, b.rs)
		if !shared && len(mrs) == 0 {
			continue // everything in this batch is excluded for the member
		}
		if shared && m.groupFS != nil {
			needFrame = true
		}
		if !shared {
			g.fallbacks++
		}
		plan = append(plan, memberPlan{m: m, conn: m.groupConn, fs: m.groupFS, shared: shared, rs: mrs})
	}
	s.mu.Unlock()

	if needFrame {
		b.frame = codec.NewBatchFrame(b.rs, sentUnix)
		g.framesLive.Add(1)
	}
	buckets := g.workerBuf
	for _, p := range plan {
		it := sendItem{sess: p.m, conn: p.conn}
		if p.shared {
			b.refs.Add(1)
			it.batch = b
			it.n = len(b.rs)
			if p.fs != nil {
				b.frame.Retain()
				it.frame = b.frame
				it.fs = p.fs
			} else {
				it.rs = b.rs
			}
		} else {
			it.rs = p.rs
			it.n = len(p.rs)
		}
		p.m.inflight.Add(1)
		buckets[p.m.workerIdx] = append(buckets[p.m.workerIdx], it)
	}
	for wi, items := range buckets {
		if len(items) == 0 {
			continue
		}
		w := g.workers[wi]
		w.mu.Lock()
		w.queue = append(w.queue, items...)
		w.cond.Signal()
		w.mu.Unlock()
		buckets[wi] = items[:0]
	}
	b.release()
	g.planBuf = plan[:0]

	if len(overrun) > 0 {
		s.mu.Lock()
		for _, m := range overrun {
			if m.grouped {
				g.overruns++
				g.detachLocked(m, true)
			}
		}
		s.reallocateLocked()
		s.mu.Unlock()
	}
	g.overrunBuf = overrun[:0]
	return true
}

// memberRefreshesLocked decides a member's view of a batch: (nil, true)
// means the member takes the shared batch unfiltered — the fast path —
// while (slice, false) is a member-specific copy with held-acked and
// split-horizoned objects removed (possibly empty: nothing to send). Stale
// held acks (at-or-behind the canonical origin axis, so they can never
// exclude a future send either) are pruned on the way, returning the member
// to the fast path. Caller holds src.mu.
func (g *SessionGroup) memberRefreshesLocked(m *syncSession, rs []wire.Refresh) ([]wire.Refresh, bool) {
	restricted := false
	if m.remoteID != "" {
		_, restricted = g.restricted[m.remoteID]
	}
	if !restricted && len(m.memberHeld) == 0 {
		return nil, true
	}
	excluded := 0
	var out []wire.Refresh
	for i := range rs {
		r := &rs[i]
		drop := restricted && (r.Origin == m.remoteID || slices.Contains(r.Via, m.remoteID))
		// drop==true is the split horizon: the member produced or already
		// relayed this value; its loop guard would reject the send anyway.
		if !drop {
			if h, ok := m.memberHeld[r.ObjectID]; ok {
				if oe, ov := r.OriginAxis(); heldAtOrAhead(h.Epoch, h.Version, oe, ov) {
					// Held-skip: the member acknowledged holding this origin
					// version or newer; a send would be dropped as stale
					// there.
					m.heldSkips++
					drop = true
				} else {
					delete(m.memberHeld, r.ObjectID)
				}
			}
		}
		if drop {
			// Materialize the member copy on the first exclusion; the kept
			// prefix is exactly rs[:i].
			if out == nil {
				out = append(make([]wire.Refresh, 0, len(rs)-1), rs[:i]...)
			}
			excluded++
			continue
		}
		if out != nil {
			out = append(out, *r)
		}
	}
	if excluded == 0 {
		return nil, true
	}
	// Member-specific copies can be addressed to the member.
	for i := range out {
		out[i].CacheID = m.remoteID
	}
	return out, false
}

// process executes one member send on a worker. A failed send means the
// connection is broken (both provided transports only fail closed), so it
// is closed outright: the member's feedback stream then ends and its
// session leaves the group through the standard redial path. References are
// released unconditionally — failure paths must not leak the shared frame.
func (g *SessionGroup) process(it sendItem) {
	var err error
	if it.fs != nil {
		err = it.fs.SendFrame(it.frame)
	} else {
		err = it.conn.SendBatch(it.rs)
	}
	if it.frame != nil {
		it.frame.Release()
	}
	if it.batch != nil {
		it.batch.release()
	}
	it.sess.inflight.Add(-1)
	if err != nil {
		g.sendErrors.Add(1)
		it.sess.groupSendErrors.Add(1)
		it.conn.Close()
		return
	}
	g.delivered.Add(int64(it.n))
	it.sess.groupSent.Add(int64(it.n))
}

func (w *groupWorker) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for w.head == len(w.queue) && !w.closed {
			w.cond.Wait()
		}
		if w.head == len(w.queue) {
			w.mu.Unlock()
			return
		}
		it := w.queue[w.head]
		w.queue[w.head] = sendItem{} // drop references for GC/pooling
		w.head++
		if w.head == len(w.queue) {
			w.queue = w.queue[:0]
			w.head = 0
		}
		w.mu.Unlock()
		w.g.process(it)
	}
}

// close joins the flusher and drains the workers. Called by Source.Close
// after s.stop is closed and the session loops have exited; the flusher
// exits on s.stop, so no new work is queued once it is joined. Workers
// finish their remaining queue (sends fail fast on the closed connections)
// so every outstanding frame reference is released.
func (g *SessionGroup) close() {
	<-g.done
	for _, w := range g.workers {
		w.mu.Lock()
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	for _, w := range g.workers {
		<-w.done
	}
}

// statsLocked snapshots the group counters. Caller holds src.mu.
func (g *SessionGroup) statsLocked() GroupStats {
	return GroupStats{
		Members:          len(g.members),
		Batches:          g.batches,
		Scheduled:        g.scheduled,
		Delivered:        g.delivered.Load(),
		Fallbacks:        g.fallbacks,
		Detaches:         g.detaches,
		Rejoins:          g.rejoins,
		QueueOverruns:    g.overruns,
		SendErrors:       g.sendErrors.Load(),
		SplicedBatches:   g.splicedBatches,
		SplicedRefreshes: g.splicedRefreshes,
		Pending:          g.eng.Queue.Len(),
		Threshold:        g.eng.Threshold(),
		MemberShare:      g.rate,
	}
}
