package runtime

import (
	"slices"
	"sync/atomic"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// SessionStats is one sync session's slice of SourceStats: the protocol
// counters of a single source→cache pairing.
type SessionStats struct {
	// CacheID is the local destination label (Destination.CacheID).
	CacheID string
	// RemoteID is the id the cache reports about itself, learned from the
	// CacheID stamped on its feedback messages; empty until the first
	// feedback arrives (or when the cache has no id configured).
	RemoteID string
	// Share is the session's allocated send rate in messages/second — its
	// Section 7 slice of the source's bandwidth. Shares are live: they
	// move when destinations are added or removed, when SetBandwidth
	// replaces the total, and on every periodic re-allocation pass.
	Share float64
	// Weight is the effective share weight behind Share at the last
	// allocation: the static Destination.Weight, or the smoothed
	// contribution score when periodic re-allocation is enabled.
	Weight float64
	// Ended reports a session that exited permanently (connection gone
	// with no redial hook). Its counters are historical; its share has
	// been re-divided across the surviving sessions.
	Ended bool
	// Redialing reports a session whose connection is down and being
	// redialed with backoff: still alive, but unable to deliver until the
	// peer returns (the rebalancers treat its demand as zero meanwhile).
	Redialing  bool
	Refreshes  int
	Feedbacks  int
	SendErrors int
	Reconnects int
	Pending    int
	Threshold  float64
	// PollsAnswered counts poll requests this session answered from the
	// source store (cache-driven policies; Refreshes then counts the reply
	// items delivered).
	PollsAnswered int
	// HeldSkips counts sends skipped because the cache's held-version
	// feedback proved it already at-or-ahead of the scheduled value on the
	// origin axis (push policy).
	HeldSkips int
	// PollOmits counts poll items withheld from this session's replies:
	// split horizon (the poller produced or already relayed the value) or
	// a known-version hint proving the poller already at-or-ahead on the
	// same origin axis (cache-driven and hybrid policies).
	PollOmits int
	// Grouped reports a session currently attached to the source's session
	// group: its refreshes arrive via group broadcasts (counted in
	// Refreshes here as well), Threshold mirrors the shared group
	// threshold, and Pending is zero — the group's queue is reported once
	// in SourceStats.Group.
	Grouped bool
	// Hybrid carries the migration controller's regime split and migration
	// counters under PolicyHybrid; nil under every other policy.
	Hybrid *HybridStats
}

// sessObj is one session's view of one object: the value/version last
// successfully sent to THIS session's cache and the divergence accumulated
// against it. The canonical object state (current value, version, update
// counts) lives in Source.objState; sessions only track what their cache
// is missing. heldEpoch/heldVer record the newest origin-axis version the
// cache has ACKNOWLEDGED holding (wire.Feedback.Held); zero epoch = no ack
// yet. A scheduled send whose origin axis is at-or-behind the ack is
// skipped — the cache provably already has it.
type sessObj struct {
	sentVal   float64
	sentVer   uint64
	heldEpoch int64
	heldVer   uint64
	tracker   metric.Tracker
}

// syncSession drives the Section 5 protocol toward one downstream cache:
// it owns the per-destination scheduling state — divergence trackers
// relative to what that cache has been sent, the priority queue, the
// core.Source threshold engine, the token-bucket send budget — plus the
// connection and its feedback stream. A Source fans every Update into all
// of its sessions; each session then converges independently, so a slow or
// throttled cache never holds back the others.
//
// Locking: all scheduling state (objs, engine, counters) is guarded by the
// owning Source's mutex; only the session's own goroutine (loop/flush)
// sends on the connection, and sends happen outside the lock so that
// cache-side back-pressure — the paper's network queueing — stalls just
// this session.
type syncSession struct {
	src  *Source
	dest Destination
	eng  *core.Source

	// Guarded by src.mu. objs is parallel to src.ids (the intern table):
	// entry k is this session's view of object src.ids[k]. dest.Conn is
	// also guarded by src.mu: a redial swaps it while flush and Close read
	// it. rate and weight are re-assigned by reallocateLocked whenever the
	// topology or the rebalancer moves shares; the loop re-reads rate each
	// tick rather than freezing it at start.
	rate            float64 // allocated share of the source bandwidth, msgs/s
	weight          float64 // effective weight behind rate at last allocation
	ended           bool    // loop exited permanently (no redial)
	redialing       bool    // connection down, redial loop running
	demand          float64 // running Σ tracker.Current() over objs (rebalancer signal)
	objs            []*sessObj
	refreshes       int
	feedbacks       int
	windowFeedbacks int // feedbacks already folded into the rebalancer
	sendErrors      int
	reconnects      int
	pollsAnswered   int
	pollOmits       int
	heldSkips       int
	remoteID        string
	// heldPending buffers held-version acks for objects the source has not
	// produced yet (a cache can ack ahead of a relay's snapshot re-export);
	// observeLocked folds them into the sessObj when the object appears.
	heldPending map[string]wire.HeldVersion
	// hyb is the per-object migration controller under PolicyHybrid (nil
	// otherwise): it decides which objects this session pushes and which
	// it leaves to the cache's poll schedule. Guarded by src.mu.
	hyb *hybridController

	// Group-delivery state. grouped/wantGroup/memberHeld/workerIdx/
	// groupConn/groupFS/detached are guarded by src.mu; the atomics are
	// shared with the group's sender workers. While grouped, objs is nil —
	// the shared groupObj state replaces it — and memberHeld carries the
	// only per-member scheduling state left: held acks AHEAD of the
	// canonical origin axis (anything at-or-behind is pruned, it can never
	// exclude a send).
	grouped    bool
	wantGroup  bool // group-eligible: re-attach when fully synced
	workerIdx  int
	memberHeld map[string]wire.HeldVersion
	groupConn  transport.SourceConn
	groupFS    transport.FrameSender
	detached   chan struct{} // closed by the group on detach

	inflight        atomic.Int32 // group batches queued, not yet sent
	groupSent       atomic.Int64 // refreshes delivered via group sends
	groupSendErrors atomic.Int64

	stop chan struct{} // closed by RemoveDestination
	done chan struct{}
}

func newSyncSession(src *Source, dest Destination) *syncSession {
	ss := &syncSession{
		src:         src,
		dest:        dest,
		eng:         core.NewSource(0, src.cfg.Params, core.PositiveFeedback),
		heldPending: map[string]wire.HeldVersion{},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if src.cfg.Policy == PolicyHybrid {
		ss.hyb = newHybridController(src.cfg.Hybrid)
	}
	return ss
}

// heldAtOrAhead reports whether an acknowledged held version (he, hv)
// covers the origin-axis version (oe, ov) a send would carry.
func heldAtOrAhead(he int64, hv uint64, oe int64, ov uint64) bool {
	if he == 0 {
		return false // no ack recorded
	}
	return oe < he || (oe == he && ov <= hv)
}

// markDeliveredLocked commits object key as already-at-the-cache without a
// send: sent-state snaps to the canonical value, accumulated divergence is
// released from the rebalancer demand, and the object leaves the queue.
// Caller holds src.mu.
func (ss *syncSession) markDeliveredLocked(o *objState, key int, now float64) {
	so := ss.objs[key]
	ss.demand -= so.tracker.Current()
	so.sentVal, so.sentVer = o.value, o.version
	so.tracker.Reset(now, 0)
	ss.eng.Queue.Remove(key)
	ss.heldSkips++
}

// observeLocked folds a canonical-state change for object key into this
// session's divergence tracker and priority queue. Caller holds src.mu.
func (ss *syncSession) observeLocked(o *objState, key int, now float64) {
	if ss.remoteID != "" &&
		(o.prov.Origin == ss.remoteID || slices.Contains(o.prov.Via, ss.remoteID)) {
		// Split horizon: the peer produced or already relayed this value,
		// so its loop guard is guaranteed to reject a send — don't burn
		// this session's bandwidth share advertising it back. (Until the
		// peer's identity is learned from feedback the send happens and is
		// rejected remotely — same outcome, one wasted message.) Zero the
		// tracker too: divergence toward an object this session will never
		// send must not linger as rebalancer demand, where it would earn
		// share the session cannot spend.
		so := ss.objs[key]
		ss.demand -= so.tracker.Current()
		so.tracker.Reset(now, 0)
		ss.eng.Queue.Remove(key)
		return
	}
	so := ss.objs[key]
	if h, ok := ss.heldPending[o.id]; ok {
		// An ack that arrived before the object existed here (a cache
		// acking ahead of a relay's snapshot re-export) applies now.
		delete(ss.heldPending, o.id)
		if h.Epoch > so.heldEpoch || (h.Epoch == so.heldEpoch && h.Version > so.heldVer) {
			so.heldEpoch, so.heldVer = h.Epoch, h.Version
		}
	}
	if oe, ov := ss.src.originAxisLocked(o); heldAtOrAhead(so.heldEpoch, so.heldVer, oe, ov) {
		// Held-skip: the cache acknowledged holding this origin version (or
		// newer), so a send is guaranteed to be dropped as stale there —
		// don't spend share on it, don't let it linger as demand.
		ss.markDeliveredLocked(o, key, now)
		return
	}
	d := metric.Divergence(ss.src.cfg.Metric, ss.src.cfg.Delta,
		int(o.version-so.sentVer), o.value, so.sentVal)
	if so.sentVer == 0 && d == 0 {
		// Nothing has ever been sent to this cache: it holds no copy at
		// all, so even a value matching the zero baseline must be
		// propagated to register the object.
		d = 1
	}
	if ss.hyb != nil {
		ss.hyb.observe(key, d-so.tracker.Current(), now)
	}
	ss.demand += d - so.tracker.Current()
	so.tracker.Update(now, d)
	ss.requeueLocked(o, key, now)
}

// requeueLocked recomputes object key's refresh priority for this session
// and syncs the engine queue. Under the hybrid policy only push-set
// objects are queued: a poll-set object stays fully tracked — divergence
// and demand keep accumulating, which is what a later promotion ranks it
// by — but the cache's poll schedule owns its freshness, so queueing it
// here would double-spend the shared budget. Caller holds src.mu.
func (ss *syncSession) requeueLocked(o *objState, key int, now float64) {
	s := ss.src
	if ss.hyb != nil && !ss.hyb.pushed(key) {
		ss.eng.Queue.Remove(key)
		return
	}
	w := 1.0
	if s.cfg.Weight != nil {
		w = s.cfg.Weight(o.id)
	}
	lambda := 0.0
	if span := now - o.firstAt; span > 0 && o.updates > 1 {
		lambda = float64(o.updates) / span
	}
	so := ss.objs[key]
	p := priority.Compute(s.cfg.PriorityFn, priority.Inputs{
		Now:         now,
		LastRefresh: so.tracker.LastReset(),
		Divergence:  so.tracker.Current(),
		Integral:    so.tracker.Integral(now),
		Weight:      w,
		Lambda:      lambda,
		Updates:     so.tracker.UpdatesBehind(),
	})
	if p > 0 {
		ss.eng.Queue.Upsert(key, p)
	} else {
		ss.eng.Queue.Remove(key)
	}
}

// statsLocked snapshots the session counters. Caller holds src.mu.
func (ss *syncSession) statsLocked() SessionStats {
	pending := ss.eng.Queue.Len()
	threshold := ss.eng.Threshold()
	if ss.grouped {
		// The member's own engine idles while grouped; the shared group
		// engine is what schedules for it.
		pending = 0
		threshold = ss.src.group.eng.Threshold()
	}
	st := SessionStats{
		CacheID:       ss.dest.CacheID,
		RemoteID:      ss.remoteID,
		Share:         ss.rate,
		Weight:        ss.weight,
		Ended:         ss.ended,
		Redialing:     ss.redialing,
		Grouped:       ss.grouped,
		Refreshes:     ss.refreshes + int(ss.groupSent.Load()),
		Feedbacks:     ss.feedbacks,
		SendErrors:    ss.sendErrors + int(ss.groupSendErrors.Load()),
		Reconnects:    ss.reconnects,
		Pending:       pending,
		Threshold:     threshold,
		PollsAnswered: ss.pollsAnswered,
		PollOmits:     ss.pollOmits,
		HeldSkips:     ss.heldSkips,
	}
	if ss.hyb != nil {
		hs := ss.hyb.statsLocked()
		st.Hybrid = &hs
	}
	return st
}

// onFeedback applies one feedback message from this session's cache. A
// grouped member's feedback feeds the SHARED engine — every member's
// feedback moves the one group threshold — while its held acks stay
// per-member, driving the member's batch exclusions.
func (ss *syncSession) onFeedback(f wire.Feedback) {
	s := ss.src
	s.mu.Lock()
	if f.CacheID != "" {
		ss.remoteID = f.CacheID
	}
	if ss.grouped {
		g := s.group
		g.eng.OnFeedback(s.now())
		g.feedbacks++
		ss.feedbacks++
		for _, h := range f.Held {
			ss.recordHeldGroupedLocked(h)
		}
		s.mu.Unlock()
		return
	}
	ss.eng.OnFeedback(s.now())
	ss.feedbacks++
	if len(f.Held) > 0 && !ss.ended && !s.cfg.Policy.CacheDriven() {
		now := s.now()
		for _, h := range f.Held {
			ss.recordHeldLocked(h, now)
		}
	}
	s.mu.Unlock()
}

// recordHeldGroupedLocked folds one held-version ack into a grouped
// member's exclusion set. Only acks AHEAD of the canonical origin axis are
// kept — an at-or-behind ack can never exclude a future send (the axis only
// moves forward), so the set stays proportional to how far the cache ran
// ahead, not to the store. Caller holds src.mu.
func (ss *syncSession) recordHeldGroupedLocked(h wire.HeldVersion) {
	s := ss.src
	if cur, ok := ss.memberHeld[h.ObjectID]; ok &&
		(h.Epoch < cur.Epoch || (h.Epoch == cur.Epoch && h.Version <= cur.Version)) {
		return // older than what we already know the cache holds
	}
	if o, ok := s.objs[h.ObjectID]; ok {
		if oe, ov := s.originAxisLocked(o); !heldAtOrAhead(h.Epoch, h.Version, oe, ov) {
			delete(ss.memberHeld, h.ObjectID)
			return
		}
	} else if len(ss.memberHeld) >= maxHeldPending {
		return // parked unknown-object acks are an optimization, bounded
	}
	ss.memberHeld[h.ObjectID] = h
}

// maxHeldPending bounds the parked acks for objects this source has not
// produced yet; beyond it new unknown-object acks are dropped (they are an
// optimization, not a correctness channel).
const maxHeldPending = 4096

// recordHeldLocked folds one held-version ack into the session: the newest
// ack per object is kept, and an object whose scheduled send the ack now
// covers is cancelled on the spot — this is what lets a relay restored from
// a stale snapshot stop re-exporting to a child that is already ahead.
// Caller holds src.mu.
func (ss *syncSession) recordHeldLocked(h wire.HeldVersion, now float64) {
	s := ss.src
	key, ok := s.idx[h.ObjectID]
	if !ok {
		if len(ss.heldPending) < maxHeldPending {
			if p, dup := ss.heldPending[h.ObjectID]; !dup ||
				h.Epoch > p.Epoch || (h.Epoch == p.Epoch && h.Version > p.Version) {
				ss.heldPending[h.ObjectID] = h
			}
		}
		return
	}
	so := ss.objs[key]
	if h.Epoch < so.heldEpoch || (h.Epoch == so.heldEpoch && h.Version <= so.heldVer) {
		return // older than what we already know the cache holds
	}
	so.heldEpoch, so.heldVer = h.Epoch, h.Version
	o := s.objs[h.ObjectID]
	if so.sentVer == o.version && so.sentVal == o.value {
		return // nothing pending toward this cache anyway
	}
	if oe, ov := s.originAxisLocked(o); heldAtOrAhead(so.heldEpoch, so.heldVer, oe, ov) {
		ss.markDeliveredLocked(o, key, now)
	}
}

// loop is the session's send loop: it accrues budget at the session's
// allocated rate, flushes over-threshold objects, and folds in feedback
// from its cache. One loop goroutine runs per session, so N caches drain
// concurrently and one blocked connection stalls only its own session.
//
// The allocated rate is re-read under src.mu on every tick — never frozen
// at loop start — because shares move at runtime: AddDestination and
// RemoveDestination re-divide the budget, SetBandwidth replaces it, and
// the periodic re-allocation pass re-weights sessions. The burst ceiling
// is recomputed from the same read, so a share increase raises the
// session's burst on the next tick and a decrease caps any budget already
// accrued at the old, higher rate.
func (ss *syncSession) loop() {
	defer close(ss.done)
	s := ss.src
	if s.cfg.Policy == PolicyHybrid {
		ss.hybridLoop()
		return
	}
	if s.cfg.Policy.CacheDriven() {
		ss.pollLoop()
		return
	}
	// A group-eligible session alternates between two bodies: while
	// attached it only relays feedback (no ticker — the group's one flush
	// ticker schedules for the whole cohort), and after a detach it runs
	// the full individual push body until maybeRejoin re-attaches it.
	for {
		s.mu.Lock()
		grouped := ss.grouped
		s.mu.Unlock()
		var again bool
		if grouped {
			again = ss.groupLoop()
		} else {
			again = ss.pushLoop()
		}
		if !again {
			return
		}
	}
}

// groupLoop is the session body while attached to the group: no ticker, no
// flushes — just feedback relay into the shared engine and the member's
// exclusion set. Returns true when the session should continue on the
// individual path (detached, or connection lost), false on shutdown or
// removal.
func (ss *syncSession) groupLoop() bool {
	s := ss.src
	s.mu.Lock()
	if !ss.grouped {
		s.mu.Unlock()
		return true
	}
	fb := ss.dest.Conn.Feedback()
	detached := ss.detached
	s.mu.Unlock()
	for {
		select {
		case <-s.stop:
			return false
		case <-ss.stop:
			return false // removed from the fan-out; the remover closes the conn
		case <-detached:
			return true // the group dropped us (overrun/removal); go individual
		case f, ok := <-fb:
			if !ok {
				// Connection gone. Leave the group so the broadcast stops
				// feeding a dead pipe, rebuild individual state, and let the
				// push body redial (or end) under the standard full-resync
				// contract — a redialing member receives no group sends.
				s.mu.Lock()
				s.group.detachLocked(ss, true)
				s.reallocateLocked()
				s.mu.Unlock()
				return true
			}
			ss.onFeedback(f)
		}
	}
}

// maybeRejoin re-attaches a group-eligible session once its individual path
// has caught the cache up: nothing sendable left (the queue is empty or
// holds only below-threshold residuals — divergence the engine tolerates by
// definition, so waiting for an empty queue would park a member on the
// individual path forever under sustained load), no outstanding group
// sends, connection up. Called from the push body after each flush.
func (ss *syncSession) maybeRejoin() bool {
	s := ss.src
	if s.group == nil || !ss.wantGroup {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss.grouped || ss.ended || ss.redialing {
		return false
	}
	if ss.inflight.Load() != 0 {
		return false
	}
	if _, _, sendable := ss.eng.ShouldSend(); sendable {
		return false
	}
	s.group.attachLocked(ss)
	s.group.rejoins++
	s.reallocateLocked()
	return true
}

// pushLoop is the individual-session push body. Returns true when the
// session re-attached to the group (continue in groupLoop), false on
// shutdown, removal, or permanent end.
func (ss *syncSession) pushLoop() bool {
	s := ss.src
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	budget := 0.0
	s.mu.Lock()
	fb := ss.dest.Conn.Feedback()
	s.mu.Unlock()
	for {
		select {
		case <-s.stop:
			return false
		case <-ss.stop:
			return false // removed from the fan-out; the remover closes the conn
		case f, ok := <-fb:
			if !ok {
				if ss.dest.Redial == nil {
					ss.end() // connection gone for good; survivors inherit the share
					return false
				}
				if !ss.redial() {
					return false // shutdown or removal won the race against the redial
				}
				s.mu.Lock()
				fb = ss.dest.Conn.Feedback()
				s.mu.Unlock()
				continue
			}
			ss.onFeedback(f)
		case <-ticker.C:
			s.mu.Lock()
			rate := ss.rate
			s.mu.Unlock()
			burst := tokenBurst(rate, s.cfg.Tick)
			budget += rate * s.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			budget = ss.flush(budget)
			if ss.maybeRejoin() {
				return true
			}
		}
	}
}

// pollLoop is the session's body under a cache-driven policy: instead of
// pushing over-threshold refreshes, it answers the cache's polls from the
// source's canonical store. Replies are paced by the session's allocated
// token-bucket share exactly like push refreshes — a reply's items spend
// budget, and when the bucket is empty the loop stops reading polls, so the
// poll channel backs up and the cache's best-effort polls are dropped until
// the source can afford to answer (the cache re-polls on its period).
//
// Disconnect handling is identical to the push loop: the feedback channel
// closing is the signal, redial (when configured) re-establishes the
// connection, and a session without a redial hook ends. Nothing is re-sent
// on reconnect — a polling cache re-asks for what it wants.
func (ss *syncSession) pollLoop() {
	s := ss.src
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	budget := 0.0
	s.mu.Lock()
	conn := ss.dest.Conn
	s.mu.Unlock()
	pc, ok := conn.(transport.PollConn)
	if !ok {
		// Construction and AddDestination validate this; a redial hook
		// returning a poll-less connection is the only way here. Treat it
		// as a dead connection: end, surrendering the share.
		ss.end()
		return
	}
	fb := conn.Feedback()
	polls := pc.Polls()
	for {
		in := polls
		if budget < 1 {
			in = nil
		}
		select {
		case <-s.stop:
			return
		case <-ss.stop:
			return // removed from the fan-out; the remover closes the conn
		case f, fbOK := <-fb:
			if !fbOK {
				if ss.dest.Redial == nil {
					ss.end()
					return
				}
				if !ss.redial() {
					return // shutdown or removal won the race
				}
				s.mu.Lock()
				conn = ss.dest.Conn
				s.mu.Unlock()
				if pc, ok = conn.(transport.PollConn); !ok {
					ss.end()
					return
				}
				fb = conn.Feedback()
				polls = pc.Polls()
				continue
			}
			// The CGM baseline has no feedback, but a cache may still
			// identify itself; record it like the push path does.
			ss.onFeedback(f)
		case p, pOK := <-in:
			if !pOK {
				polls = nil // the feedback close drives the redial
				continue
			}
			budget -= float64(ss.answerPoll(pc, p))
		case <-ticker.C:
			s.mu.Lock()
			rate := ss.rate
			s.mu.Unlock()
			burst := tokenBurst(rate, s.cfg.Tick)
			budget += rate * s.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
		}
	}
}

// hybridLoop is the session's body under the hybrid policy: the push
// loop's flush ticker and the poll loop's answer path fused over ONE
// token bucket, so the hot head's refreshes and the cold tail's poll
// replies spend the same allocated share — the equal-budget invariant the
// policy comparison rests on. Poll intake is gated at the poll round-trip
// cost (an answer the bucket cannot cover is left in the channel, where
// transport back-pressure drops best-effort polls until the source can
// afford them); each answered reply is charged the full round trip, the
// conservative bound Policy.MessageCost reports. A separate migration
// ticker closes the controller's scoring window: promoted objects enter
// the priority queue carrying the divergence their trackers accumulated
// while polled, demoted ones leave it and fall back to the cache's poll
// schedule. Disconnect handling is the poll loop's: the feedback channel
// closing drives the redial, and the standard full-resync on reconnect
// re-observes every object — through the poll-set gate, so only push-set
// objects re-queue.
func (ss *syncSession) hybridLoop() {
	s := ss.src
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	migrate := time.NewTicker(s.cfg.Hybrid.withDefaults().MigrateEvery)
	defer migrate.Stop()
	budget := 0.0
	s.mu.Lock()
	conn := ss.dest.Conn
	s.mu.Unlock()
	pc, ok := conn.(transport.PollConn)
	if !ok {
		// Construction and AddDestination validate this; a redial hook
		// returning a poll-less connection is the only way here.
		ss.end()
		return
	}
	fb := conn.Feedback()
	polls := pc.Polls()
	for {
		in := polls
		if budget < pollRoundTrip {
			in = nil
		}
		select {
		case <-s.stop:
			return
		case <-ss.stop:
			return // removed from the fan-out; the remover closes the conn
		case f, fbOK := <-fb:
			if !fbOK {
				if ss.dest.Redial == nil {
					ss.end()
					return
				}
				if !ss.redial() {
					return // shutdown or removal won the race
				}
				s.mu.Lock()
				conn = ss.dest.Conn
				s.mu.Unlock()
				if pc, ok = conn.(transport.PollConn); !ok {
					ss.end()
					return
				}
				fb = conn.Feedback()
				polls = pc.Polls()
				continue
			}
			ss.onFeedback(f)
		case p, pOK := <-in:
			if !pOK {
				polls = nil // the feedback close drives the redial
				continue
			}
			budget -= pollRoundTrip * float64(ss.answerPoll(pc, p))
		case <-ticker.C:
			s.mu.Lock()
			rate := ss.rate
			s.mu.Unlock()
			burst := tokenBurst(rate, s.cfg.Tick)
			budget += rate * s.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			budget = ss.flush(budget)
		case <-migrate.C:
			ss.migrateOnce()
		}
	}
}

// migrateOnce runs one migration pass: the controller re-scores every
// object and the session applies the regime moves to its priority queue.
func (ss *syncSession) migrateOnce() {
	s := ss.src
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss.ended || ss.objs == nil {
		return
	}
	promoted, demoted := ss.hyb.migrate(now)
	for _, key := range promoted {
		if key < len(ss.objs) {
			// The tracker kept accumulating while the object was polled,
			// so the promotion ranks it by its real outstanding divergence.
			ss.requeueLocked(s.objs[s.ids[key]], key, now)
		}
	}
	for _, key := range demoted {
		ss.eng.Queue.Remove(key)
	}
}

// answerPoll builds and sends the reply to one poll from the canonical
// store, returning the budget it spent: one unit per targeted item, and a
// flat one unit for a discovery reply — the full-store listing is universe
// METADATA (the cache registers ids from it, never values), so charging it
// per item would bill a control-plane message at data-plane rates and
// starve the targeted replies that actually move values. An empty object
// list is the discovery poll: the whole store is returned with All set.
// Counters commit only after a successful send, the same rule as the push
// path's flush; Refreshes counts targeted items only (the value
// transfers).
//
// Under the hybrid policy the reply additionally advertises the session's
// current push set (wire.PollReply.Pushed) so a cooperation-aware cache
// stops polling objects the source is already pushing, and each answered
// targeted item is charged to the migration controller at the poll
// round-trip cost and committed as delivered — the cache installs exactly
// the replied value, so the session's sent-state advances as if the value
// had been pushed.
func (ss *syncSession) answerPoll(pc transport.PollConn, p wire.Poll) int {
	s := ss.src
	s.mu.Lock()
	if p.CacheID != "" {
		ss.remoteID = p.CacheID // polls identify the peer like feedback does
	}
	var known map[string]wire.KnownVersion
	if len(p.Known) > 0 {
		known = make(map[string]wire.KnownVersion, len(p.Known))
		for _, k := range p.Known {
			known[k.ObjectID] = k
		}
	}
	epoch := s.started.UnixNano()
	reply := wire.PollReply{SourceID: s.cfg.ID, SentUnix: s.cfg.Now().UnixNano()}
	if len(p.ObjectIDs) == 0 {
		reply.All = true
		reply.Items = make([]wire.PollItem, 0, len(s.ids))
		for _, id := range s.ids {
			o := s.objs[id]
			if !ss.servableLocked(o, known) {
				continue
			}
			reply.Items = append(reply.Items, pollItemLocked(o, epoch))
		}
	} else {
		reply.Items = make([]wire.PollItem, 0, len(p.ObjectIDs))
		for _, id := range p.ObjectIDs {
			if o, ok := s.objs[id]; ok {
				if !ss.servableLocked(o, known) {
					continue
				}
				reply.Items = append(reply.Items, pollItemLocked(o, epoch))
			} else {
				reply.Items = append(reply.Items, wire.PollItem{ObjectID: id})
			}
		}
	}
	if ss.hyb != nil {
		reply.Pushed = ss.hyb.pushSet(s.ids)
	}
	s.mu.Unlock()

	// Send outside the lock: cache-side back-pressure stalls only this
	// session, exactly like a push refresh send.
	if err := pc.SendReply(reply); err != nil {
		s.mu.Lock()
		ss.sendErrors++
		s.mu.Unlock()
		return 0
	}
	cost := len(reply.Items)
	if reply.All {
		cost = 1 // metadata listing, not value transfers
	}
	now := s.now()
	s.mu.Lock()
	ss.pollsAnswered++
	if !reply.All {
		ss.refreshes += len(reply.Items)
		if ss.hyb != nil && !ss.ended {
			ss.hyb.polled += len(reply.Items)
			for _, it := range reply.Items {
				ss.commitPolledLocked(it, now)
			}
		}
	}
	s.mu.Unlock()
	return cost
}

// commitPolledLocked records one answered targeted poll item with the
// hybrid migration controller and advances the session's sent-state to
// the replied value — the flush commit's twin for the poll regime, with
// the residual (updates that landed after the reply was built) left on
// the tracker. Caller holds src.mu.
func (ss *syncSession) commitPolledLocked(it wire.PollItem, now float64) {
	s := ss.src
	key, ok := s.idx[it.ObjectID]
	if !ok || key >= len(ss.objs) {
		return
	}
	ss.hyb.charge(key, pollRoundTrip)
	if !it.Exists {
		return
	}
	o := s.objs[it.ObjectID]
	so := ss.objs[key]
	if it.Version <= so.sentVer {
		return // a push already delivered something at-or-ahead
	}
	so.sentVal, so.sentVer = it.Value, it.Version
	d := metric.Divergence(s.cfg.Metric, s.cfg.Delta,
		int(o.version-so.sentVer), o.value, so.sentVal)
	ss.demand += d - so.tracker.Current()
	so.tracker.Reset(now, d)
	ss.requeueLocked(o, key, now)
}

// servableLocked reports whether object o belongs in a reply to this
// session's poller. Excluded on two grounds, both safe as plain omission (a
// poll reply is best-effort; the poller's estimator simply sees no change):
// split horizon — the poller produced or already relayed the value, so its
// intake loop guard is guaranteed to reject it — and a known-version hint
// (wire.Poll.Known) proving the poller already at-or-ahead on the SAME
// origin axis; hints for a different origin are ignored, because epochs
// from different origins are incomparable. Caller holds src.mu.
func (ss *syncSession) servableLocked(o *objState, known map[string]wire.KnownVersion) bool {
	s := ss.src
	if ss.remoteID != "" &&
		(o.prov.Origin == ss.remoteID || slices.Contains(o.prov.Via, ss.remoteID)) {
		ss.pollOmits++
		return false
	}
	if k, ok := known[o.id]; ok {
		origin := o.prov.Origin
		if origin == "" {
			origin = s.cfg.ID // locally produced: this source is the origin
		}
		if k.Origin == origin {
			if oe, ov := s.originAxisLocked(o); heldAtOrAhead(k.Epoch, k.Version, oe, ov) {
				ss.pollOmits++
				return false
			}
		}
	}
	return true
}

// pollItemLocked snapshots one object's poll answer, carrying the object's
// provenance so a peer that installs the replied value can re-export it
// with the loop-avoidance path and origin axis intact — the lateral-serving
// half of the peer-face protocol. Locally produced values keep the zero
// provenance (and the legacy frame encoding). Caller holds src.mu.
func pollItemLocked(o *objState, epoch int64) wire.PollItem {
	return wire.PollItem{
		ObjectID:         o.id,
		Exists:           true,
		Value:            o.value,
		Version:          o.version,
		Epoch:            epoch,
		LastModifiedUnix: o.lastUnix,
		Origin:           o.prov.Origin,
		Hops:             o.prov.Hops,
		Via:              o.prov.Via,
		OriginEpoch:      o.prov.Epoch,
		OriginVersion:    o.prov.Version,
	}
}

// end marks the session permanently dead and re-divides its share across
// the surviving sessions: a session that can never send again must not
// keep a slice of the budget (nor skew the aggregate threshold mean — see
// Source.Stats). Its per-object state is released — nothing will ever
// observe or flush it again — while the counters stay for the ENDED stats
// row.
func (ss *syncSession) end() {
	s := ss.src
	s.mu.Lock()
	ss.ended = true
	ss.wantGroup = false
	ss.objs = nil
	ss.demand = 0
	s.reallocateLocked()
	s.mu.Unlock()
}

// Reconnect backoff bounds: the first redial attempt waits
// redialMinBackoff, each failure doubles the wait up to redialMaxBackoff,
// and the loop only gives up when the source shuts down.
const (
	redialMinBackoff = 50 * time.Millisecond
	redialMaxBackoff = 5 * time.Second
)

// redial re-establishes this session's connection with exponential backoff,
// returning false when the source shuts down first. On success the session's
// sent-state is reset: the peer may have restarted empty, so every object is
// re-registered as never-sent and re-ranked for refresh from scratch. For a
// peer that in fact kept its store, the re-sends are harmless — the cache's
// (epoch, version) staleness guards drop anything it already holds.
func (ss *syncSession) redial() bool {
	s := ss.src
	// Release the dead connection first: a Batcher wrapping it keeps a
	// flush goroutine (and retries its re-buffered batch) until closed.
	// Close is idempotent on every provided transport, so racing
	// Source.Close's own snapshot-and-close is harmless. While the redial
	// runs, the session is flagged so the rebalance pass does not let its
	// ever-growing demand (nothing resets while the peer is gone) capture
	// share from sessions that can actually spend it.
	s.mu.Lock()
	ss.redialing = true
	old := ss.dest.Conn
	s.mu.Unlock()
	old.Close()
	backoff := redialMinBackoff
	for {
		select {
		case <-s.stop:
			return false
		case <-ss.stop:
			return false // removed from the fan-out mid-backoff
		case <-time.After(backoff):
		}
		conn, err := ss.dest.Redial()
		if err != nil {
			backoff *= 2
			if backoff > redialMaxBackoff {
				backoff = redialMaxBackoff
			}
			continue
		}
		now := s.now()
		s.mu.Lock()
		select {
		case <-s.stop:
			// Shutdown raced the redial: Close may have already snapshotted
			// the old connection, so this one is ours to clean up.
			s.mu.Unlock()
			conn.Close()
			return false
		default:
		}
		select {
		case <-ss.stop:
			// Removal raced the redial: the remover closed the connection
			// it saw, so this fresh one is ours to clean up.
			s.mu.Unlock()
			conn.Close()
			return false
		default:
		}
		ss.dest.Conn = conn
		ss.redialing = false
		ss.reconnects++
		// The peer may be a different instance now (failover, redeploy):
		// forget the old identity so re-sent refreshes carry no stale
		// CacheID stamp (which the new peer would count as misrouted)
		// until its own feedback reveals who it is.
		ss.remoteID = ""
		ss.demand = 0 // rebuilt by the observe loop over the zeroed trackers
		// Forget held acks with the rest of the peer state: the replacement
		// instance may hold nothing, and a stale ack would wrongly skip its
		// re-sync (the zeroed sessObjs below drop per-object acks too).
		ss.heldPending = map[string]wire.HeldVersion{}
		for key := range ss.objs {
			*ss.objs[key] = sessObj{}
			ss.observeLocked(s.objs[s.ids[key]], key, now)
		}
		s.mu.Unlock()
		return true
	}
}

// flush sends over-threshold objects while budget remains, returning the
// leftover budget.
//
// Sent-state is committed only AFTER a successful send: on error the
// tracker, queue entry and threshold are left untouched, so the refresh is
// retried on the next flush instead of being silently dropped (a failed
// send must not look like a delivered one). If updates raced in while the
// send was in flight, the tracker restarts at the residual divergence
// between the canonical value and what was actually sent and the object is
// re-ranked from that residual.
func (ss *syncSession) flush(budget float64) float64 {
	s := ss.src
	if s.cfg.SuppressWithinThreshold {
		// Observe work deferred by the within-threshold suppression replays
		// here, before sendability is consulted — the deferral only ever
		// moves bookkeeping to this point, never past a send decision.
		now := s.now()
		s.mu.Lock()
		s.replayDeferredLocked(now)
		s.mu.Unlock()
	}
	for budget >= 1 {
		s.mu.Lock()
		key, _, ok := ss.eng.ShouldSend()
		if !ok {
			ss.eng.SetLimited(false)
			s.mu.Unlock()
			return budget
		}
		o := s.objs[s.ids[key]]
		msg := wire.Refresh{
			SourceID: s.cfg.ID,
			ObjectID: o.id,
			// Stamp the cache identity learned from feedback (not the
			// local label): the advisory mismatch counter on the cache
			// then only fires on genuine miswiring, never on operators
			// labeling destinations differently than caches name
			// themselves.
			CacheID: ss.remoteID,
			// Provenance for multi-tier topologies: a relay re-exports with
			// the originating source, incremented hop count, relay path and
			// the origin's preserved version axis; locally produced values
			// carry the zero provenance (their origin axis IS Epoch/Version).
			Origin:        o.prov.Origin,
			Hops:          o.prov.Hops,
			Via:           o.prov.Via,
			OriginEpoch:   o.prov.Epoch,
			OriginVersion: o.prov.Version,
			Value:         o.value,
			Version:       o.version,
			Epoch:         s.started.UnixNano(),
			Threshold:     ss.eng.Threshold(),
			SentUnix:      s.cfg.Now().UnixNano(),
		}
		conn := ss.dest.Conn
		s.mu.Unlock()

		// Send outside the lock: a saturated cache applies back-pressure
		// here, which is exactly the paper's network queueing — and it
		// stalls only this session. The connection is snapshotted under the
		// lock above because a redial may swap it concurrently.
		if err := conn.SendRefresh(msg); err != nil {
			s.mu.Lock()
			ss.sendErrors++
			s.mu.Unlock()
			return budget
		}

		now := s.now()
		s.mu.Lock()
		so := ss.objs[key]
		so.sentVal = msg.Value
		so.sentVer = msg.Version
		// Residual divergence: updates that landed while the send was in
		// flight. The tracker restarts at the residual and the object is
		// re-ranked from it — a priority a racing Update computed against
		// the OLD sent-state must not linger in the heap, where it would
		// overstate the residual and bypass the threshold filter. At the
		// commit instant the area priority restarts at zero, so the object
		// leaves the queue until the next update re-ranks it (the §8.2
		// event-driven discipline; same as a zero-residual send).
		d := metric.Divergence(s.cfg.Metric, s.cfg.Delta,
			int(o.version-so.sentVer), o.value, so.sentVal)
		ss.demand += d - so.tracker.Current()
		so.tracker.Reset(now, d)
		ss.requeueLocked(o, key, now)
		ss.eng.OnRefreshSent(now)
		ss.eng.ClampThreshold()
		ss.refreshes++
		if ss.hyb != nil {
			ss.hyb.charge(key, 1)
		}
		s.mu.Unlock()
		budget--
	}
	s.mu.Lock()
	_, _, want := ss.eng.ShouldSend()
	ss.eng.SetLimited(want)
	s.mu.Unlock()
	return budget
}

// Destination describes one downstream cache of a fan-out source.
type Destination struct {
	// CacheID is the local label for this destination in stats and
	// diagnostics. Outgoing refreshes are stamped with the cache's
	// self-reported identity once feedback reveals it (SessionStats
	// distinguishes the two as CacheID vs RemoteID). Defaults to
	// "cache-<i>".
	CacheID string
	// Conn is the connection to the cache. Wrap it in a transport.Batcher
	// for batched framing; batches never span destinations.
	Conn transport.SourceConn
	// Weight is the destination's share weight for dividing
	// SourceConfig.Bandwidth across sessions (Section 7 share allocation);
	// non-positive means 1 (equal shares when all are defaulted).
	Weight float64
	// Redial, when non-nil, re-establishes the connection after the
	// current one dies: the session retries it with exponential backoff
	// (50 ms doubling to 5 s) until it succeeds or the source closes,
	// then resets its sent-state so a peer that restarted empty is fully
	// re-synchronized. Return a connection wrapped the same way as Conn
	// (e.g. in a transport.Batcher). Nil keeps the old behavior: a dead
	// connection permanently ends its session.
	Redial func() (transport.SourceConn, error)
}
