package runtime

import (
	"fmt"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// TestHybridConfigDefaults pins the documented defaults and that explicit
// values survive withDefaults.
func TestHybridConfigDefaults(t *testing.T) {
	d := HybridConfig{}.withDefaults()
	if d.Promote != 8 || d.Demote != 2 || d.Gain != 0.4 || d.MigrateEvery != 500*time.Millisecond {
		t.Errorf("defaults = %+v, want {8 2 0.4 500ms}", d)
	}
	if d.Demote >= d.Promote {
		t.Errorf("default band inverted: demote %v ≥ promote %v", d.Demote, d.Promote)
	}
	c := HybridConfig{Promote: 3, Demote: 0.5, Gain: 1, MigrateEvery: time.Second}.withDefaults()
	if c.Promote != 3 || c.Demote != 0.5 || c.Gain != 1 || c.MigrateEvery != time.Second {
		t.Errorf("explicit config mangled: %+v", c)
	}
	if g := (HybridConfig{Gain: 1.5}).withDefaults().Gain; g != 0.4 {
		t.Errorf("out-of-range gain kept: %v", g)
	}
}

// hybridStep is one scoring window fed to the controller under test: an
// optional observed update (divergence delta at a given time) and the
// migrations the window's closing migrate pass must produce for object 0.
type hybridStep struct {
	div      float64 // divergence delta observed this window (0 = idle window)
	at       float64 // protocol time of the observation
	end      float64 // window end = migrate time
	promoted bool
	demoted  bool
}

// TestHybridControllerMigrationThresholds drives the controller through
// hand-computed windows with Gain 1 (divPerMsg = the latest window verbatim)
// so each score is exact: score = div × λ̂ × pollRoundTrip, with λ̂ the CGM1
// MLE over the synthetic per-window observations.
func TestHybridControllerMigrationThresholds(t *testing.T) {
	cases := []struct {
		name  string
		cfg   HybridConfig
		steps []hybridStep
	}{
		{
			// Window 1: λ̂ = 1 change / 0.5s age = 2, div 2 → score 2·2·2 = 8,
			// exactly the promote threshold (≥ promotes).
			name: "promote at threshold",
			cfg:  HybridConfig{Gain: 1},
			steps: []hybridStep{
				{div: 2, at: 0.5, end: 1, promoted: true},
			},
		},
		{
			// Same shape with div 1.9 → score 7.6 < 8: stays polled.
			name: "below promote stays polled",
			cfg:  HybridConfig{Gain: 1},
			steps: []hybridStep{
				{div: 1.9, at: 0.5, end: 1},
			},
		},
		{
			// Promoted hot, then a near-idle window: λ̂ = 2/(0.5+0.5) = 2,
			// div 0.2 → score 0.8 ≤ 2 demotes.
			name: "demote when the signal dies",
			cfg:  HybridConfig{Gain: 1},
			steps: []hybridStep{
				{div: 2, at: 0.5, end: 1, promoted: true},
				{div: 0.2, at: 1.5, end: 2, demoted: true},
			},
		},
		{
			// A pushed object whose score lands inside the (2, 8) hysteresis
			// band migrates in neither direction.
			name: "band holds the current regime",
			cfg:  HybridConfig{Gain: 1},
			steps: []hybridStep{
				{div: 2, at: 0.5, end: 1, promoted: true},
				{div: 1, at: 1.5, end: 2}, // λ̂ = 2, score 4: in the band
			},
		},
		{
			// An object nobody updates never earns its way into the push set:
			// λ̂ falls back to the 0.5/observed floor and div stays 0.
			name: "idle object never promotes",
			cfg:  HybridConfig{Gain: 1},
			steps: []hybridStep{
				{end: 1}, {end: 2}, {end: 3},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hc := newHybridController(tc.cfg)
			for i, step := range tc.steps {
				if step.div > 0 {
					hc.observe(0, step.div, step.at)
				}
				promoted, demoted := hc.migrate(step.end)
				if got := len(promoted) == 1; got != step.promoted {
					t.Fatalf("step %d: promoted=%v, want %v", i, got, step.promoted)
				}
				if got := len(demoted) == 1; got != step.demoted {
					t.Fatalf("step %d: demoted=%v, want %v", i, got, step.demoted)
				}
			}
			wantPush := 0
			var wantProm, wantDem int
			for _, step := range tc.steps {
				if step.promoted {
					wantPush, wantProm = 1, wantProm+1
				}
				if step.demoted {
					wantPush, wantDem = 0, wantDem+1
				}
			}
			st := hc.statsLocked()
			if st.PushObjects != wantPush || st.Promotions != wantProm || st.Demotions != wantDem {
				t.Errorf("stats = %+v, want push=%d promotions=%d demotions=%d",
					st, wantPush, wantProm, wantDem)
			}
			if hc.pushed(0) != (wantPush == 1) {
				t.Errorf("pushed(0) = %v, want %v", hc.pushed(0), wantPush == 1)
			}
		})
	}
}

// TestHybridControllerChargeDividesDivergence pins the messages-worth half of
// the score: the same divergence spread over more messages scores lower, so
// an object whose refreshes buy little synchronization drops out of the push
// set first.
func TestHybridControllerChargeDividesDivergence(t *testing.T) {
	cheap := newHybridController(HybridConfig{Gain: 1})
	costly := newHybridController(HybridConfig{Gain: 1})
	for _, hc := range []*hybridController{cheap, costly} {
		hc.observe(0, 4, 0.5)
	}
	costly.charge(0, 4) // same divergence, four messages spent
	p1, _ := cheap.migrate(1)
	p2, _ := costly.migrate(1)
	// cheap: score 4·2·2 = 16 promotes; costly: (4/4)·2·2 = 4 does not.
	if len(p1) != 1 {
		t.Errorf("uncharged object not promoted")
	}
	if len(p2) != 0 {
		t.Errorf("message-heavy object promoted despite low divergence per message")
	}
}

// TestHybridControllerHysteresisPreventsFlapping feeds the SAME oscillating
// update pattern — one hot window (div 4 observed at the window start), one
// idle window, repeated — to a controller with a wide hysteresis band and to
// one whose demote threshold sits just under its promote threshold. The
// narrow band converts every oscillation into a migration pair; the wide
// band absorbs the swing: one promotion, then steady.
func TestHybridControllerHysteresisPreventsFlapping(t *testing.T) {
	drive := func(cfg HybridConfig) HybridStats {
		hc := newHybridController(cfg)
		now := 0.0
		for w := 0; w < 12; w++ {
			if w%2 == 0 {
				hc.observe(0, 4, now) // update at the window start: age = 1 at migrate
			}
			now++
			hc.migrate(now)
		}
		return hc.statsLocked()
	}
	narrow := drive(HybridConfig{Promote: 2, Demote: 1.5, Gain: 0.5})
	wide := drive(HybridConfig{Promote: 2, Demote: 0.9, Gain: 0.5})
	if got := wide.Promotions + wide.Demotions; got != 1 {
		t.Errorf("wide band migrated %d times (%+v), want exactly the initial promotion", got, wide)
	}
	if wide.PushObjects != 1 {
		t.Errorf("wide band ended with the object out of the push set: %+v", wide)
	}
	if narrow.Promotions+narrow.Demotions < 4 {
		t.Errorf("narrow band did not flap (%+v) — the oscillation no longer exercises hysteresis", narrow)
	}
}

// TestHybridBudgetConservation runs a live hybrid source↔cache pair and
// audits the ISSUE's single-bucket contract: pushes (1 message), answered
// targeted poll items (the 2-message round trip) and discovery listings all
// drain ONE source-side token bucket, so their combined spend stays under
// bandwidth × elapsed regardless of how the migration controller splits the
// object set.
func TestHybridBudgetConservation(t *testing.T) {
	transport.SetDialCapabilities(wire.CapCooperative)
	defer transport.SetDialCapabilities(0)

	const (
		srcBW   = 50.0
		objects = 32
		hot     = 4
	)
	local := transport.NewLocal(64)
	start := time.Now()
	cache := NewCache(CacheConfig{
		ID: "hyb-cache", Bandwidth: 400, Tick: 10 * time.Millisecond,
		Policy: PolicyHybrid,
		Poll:   PollConfig{ReSolveEvery: 150 * time.Millisecond, Seed: 1},
	}, local)
	defer cache.Close()
	conn, err := local.Dial("hyb-src")
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(SourceConfig{
		ID: "hyb-src", Metric: metric.ValueDeviation,
		Bandwidth: srcBW, Tick: 10 * time.Millisecond,
		Policy: PolicyHybrid,
		Hybrid: HybridConfig{Promote: 0.5, Demote: 0.05, Gain: 0.5, MigrateEvery: 100 * time.Millisecond},
	}, conn)
	defer src.Close()

	// Skewed workload: a hot head the controller should promote, a cold
	// tail it should leave to the poll half.
	values := make([]float64, objects)
	for i := 0; i < objects; i++ {
		values[i] = 1
		src.Update(fmt.Sprintf("hyb-src/obj-%d", i), values[i])
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	step := 0
	for time.Now().Before(deadline) {
		i := step % hot
		if step%301 == 0 { // occasional cold-tail update keeps λ̂ alive
			i = hot + step%(objects-hot)
		}
		values[i]++
		src.Update(fmt.Sprintf("hyb-src/obj-%d", i), values[i])
		step++
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // drain in-flight polls and pushes

	st := src.Stats()
	elapsed := time.Since(start).Seconds()
	h := st.Hybrid
	if h == nil {
		t.Fatal("hybrid source reports no HybridStats")
	}
	cs := cache.Stats()
	pushes := st.Refreshes - h.PolledItems
	discovery := cs.PollReplies - h.PolledItems
	if pushes <= 0 {
		t.Errorf("push half idle: refreshes=%d polled=%d", st.Refreshes, h.PolledItems)
	}
	if h.PolledItems <= 0 {
		t.Errorf("poll half delivered nothing: %+v", h)
	}
	if h.Promotions == 0 {
		t.Errorf("migration controller never promoted: %+v", h)
	}
	if discovery < 0 {
		t.Fatalf("discovery listings negative: cache replies=%d, source polled items=%d",
			cs.PollReplies, h.PolledItems)
	}
	spend := float64(pushes) + 2*float64(h.PolledItems) + float64(discovery)
	// The bucket itself allows bandwidth × elapsed plus one tick's burst;
	// the 10% margin absorbs timer jitter between our clock and the loops'.
	limit := srcBW*elapsed*1.10 + tokenBurst(srcBW, 10*time.Millisecond)
	if spend > limit {
		t.Errorf("hybrid spend %.0f msgs exceeds the shared bucket's %.0f (pushes=%d polled=%d discovery=%d over %.2fs)",
			spend, limit, pushes, h.PolledItems, discovery, elapsed)
	}
}
