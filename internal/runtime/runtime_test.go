package runtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

func refreshMsg(src, obj string, ver uint64, val float64) wire.Refresh {
	return wire.Refresh{SourceID: src, ObjectID: obj, Version: ver, Value: val}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func fastCache(net transport.CacheEndpoint, bw float64) *Cache {
	return NewCache(CacheConfig{Bandwidth: bw, Tick: 5 * time.Millisecond}, net)
}

func fastSource(id string, conn transport.SourceConn, bw float64) *Source {
	return NewSource(SourceConfig{
		ID:        id,
		Metric:    metric.ValueDeviation,
		Bandwidth: bw,
		Tick:      5 * time.Millisecond,
	}, conn)
}

func TestLocalEndToEnd(t *testing.T) {
	net := transport.NewLocal(64)
	cache := fastCache(net, 10000)
	defer cache.Close()

	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 10000)
	defer src.Close()

	src.Update("temp", 21.5)
	src.Update("humidity", 0.4)
	src.Update("temp", 22.0)

	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("temp")
		return ok && e.Value == 22.0
	}, "temp to reach 22.0")
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("humidity")
		return ok && e.Value == 0.4
	}, "humidity to reach 0.4")

	if e, _ := cache.Get("temp"); e.Source != "s1" {
		t.Errorf("entry source = %q, want s1", e.Source)
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d objects, want 2", cache.Len())
	}
}

func TestMultipleSources(t *testing.T) {
	net := transport.NewLocal(64)
	cache := fastCache(net, 10000)
	defer cache.Close()

	const m = 5
	srcs := make([]*Source, m)
	for j := 0; j < m; j++ {
		id := fmt.Sprintf("s%d", j)
		conn, err := net.Dial(id)
		if err != nil {
			t.Fatal(err)
		}
		srcs[j] = fastSource(id, conn, 10000)
		defer srcs[j].Close()
		srcs[j].Update(fmt.Sprintf("obj-%d", j), float64(j))
	}
	waitFor(t, 2*time.Second, func() bool { return cache.Len() == m },
		"all objects cached")
	st := cache.Stats()
	if st.Sources != m {
		t.Errorf("stats sources = %d, want %d", st.Sources, m)
	}
	if st.Refreshes < m {
		t.Errorf("stats refreshes = %d, want ≥ %d", st.Refreshes, m)
	}
}

func TestFeedbackReachesSources(t *testing.T) {
	net := transport.NewLocal(64)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 10000)
	defer src.Close()

	src.Update("x", 1)
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Feedbacks > 0
	}, "feedback to arrive")
}

func TestThresholdThrottlesUnderLoad(t *testing.T) {
	// A constrained cache (20 msgs/s) watching a source producing many
	// fast-changing objects should result in fewer refreshes than updates.
	net := transport.NewLocal(8)
	cache := fastCache(net, 20)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 1000)
	defer src.Close()

	rng := rand.New(rand.NewSource(1))
	stop := time.After(400 * time.Millisecond)
	vals := map[string]float64{}
tickLoop:
	for {
		select {
		case <-stop:
			break tickLoop
		default:
			id := fmt.Sprintf("obj-%d", rng.Intn(50))
			vals[id] += rng.Float64() - 0.5
			src.Update(id, vals[id])
			time.Sleep(time.Millisecond)
		}
	}
	st := src.Stats()
	if st.Updates == 0 {
		t.Fatal("no updates recorded")
	}
	if st.Refreshes >= st.Updates {
		t.Errorf("refreshes (%d) not throttled below updates (%d)",
			st.Refreshes, st.Updates)
	}
	if st.Refreshes == 0 {
		t.Error("no refreshes at all")
	}
}

func TestSourceCloseIdempotent(t *testing.T) {
	net := transport.NewLocal(4)
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 100)
	if err := src.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestCacheCloseIdempotent(t *testing.T) {
	net := transport.NewLocal(4)
	cache := fastCache(net, 100)
	if err := cache.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cache.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestStaleDuplicateIgnored(t *testing.T) {
	net := transport.NewLocal(4)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Drive the transport directly to force an out-of-order delivery.
	send := func(version uint64, value float64) {
		if err := conn.SendRefresh(refreshMsg("s1", "x", version, value)); err != nil {
			t.Fatal(err)
		}
	}
	send(2, 20)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("x")
		return ok && e.Version == 2
	}, "version 2 to land")
	send(1, 10) // stale duplicate
	time.Sleep(50 * time.Millisecond)
	if e, _ := cache.Get("x"); e.Value != 20 {
		t.Errorf("stale refresh overwrote value: %v", e.Value)
	}
}

func TestUnknownMetricDefaultsSafe(t *testing.T) {
	// Staleness metric with the Poisson priority still refreshes.
	net := transport.NewLocal(16)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(SourceConfig{
		ID:        "s1",
		Metric:    metric.Staleness,
		Bandwidth: 10000,
		Tick:      5 * time.Millisecond,
	}, conn)
	defer src.Close()
	src.Update("a", 1)
	src.Update("a", 2)
	waitFor(t, 2*time.Second, func() bool {
		_, ok := cache.Get("a")
		return ok
	}, "staleness-metric object to sync")
}
