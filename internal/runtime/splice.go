// Splice forwarding: the relay re-export hot path that shares the retained
// inbound frame between the apply pipeline and the peer-face broadcast.
//
// The classic path decodes every inbound refresh, re-observes it per session
// and re-encodes a fresh frame for the children — paying the full codec cost
// twice per hop even though most bytes are forwarded verbatim. When a batch
// arrives with its retained wire frame (transport.InboundBatch.Frame), the
// node instead parses the frame into per-item byte ranges (codec.BatchView)
// and assembles the outgoing frame by copying eligible items' bytes and
// patching only the per-hop fields: SourceID stamp, Hops+1, Via append-self,
// re-issued Version/Epoch/Threshold/SentUnix, preserved origin axis. The
// spliced frame is byte-identical to what decode→patch→codec.NewBatchFrame
// would produce (pinned by FuzzSpliceForward), so receivers cannot tell the
// difference.
//
// Eligibility and fallback (see docs/algorithm-specifications.md §14): the
// fast path requires an attached session group, the push policy, the
// value-deviation metric with the default delta, and a parseable canonical
// frame; anything else — and every individual (non-grouped) session, gob
// member, held-ack or split-horizon exclusion, threshold-suppressed or
// budget-starved item — falls back to the classic machinery per batch, per
// member, or per item without changing what any receiver observes.
package runtime

import (
	"slices"
	"sync"

	"bestsync/internal/metric"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// spliceScratch is the per-batch working state of one onForward call,
// pooled so the hot path allocates nothing per batch once warm. It plays the
// role the SessionGroup's shared planBuf/overrunBuf/workerBuf scratch plays
// for the flusher — but the splice path runs on cache shard workers,
// concurrently with the flusher and with other shards' batches, so the
// scratch must be call-owned rather than group-owned. Slices are resized,
// never cleared: every consumer writes before it reads (provs and versions
// are only read at indices the keep mask selects, which the loop assigned).
type spliceScratch struct {
	memo     viaMemo
	provs    []Provenance
	versions []uint64
	plan     []memberPlan
	overrun  []*syncSession
	buckets  [][]sendItem
}

var spliceScratchPool = sync.Pool{New: func() any { return new(spliceScratch) }}

// grab readies a pooled scratch for a batch of n refreshes.
func (sc *spliceScratch) grab(id string, n int) {
	sc.memo.id = id
	sc.memo.in = sc.memo.in[:0]
	sc.memo.out = sc.memo.out[:0]
	if cap(sc.provs) < n {
		sc.provs = make([]Provenance, n)
	}
	sc.provs = sc.provs[:n]
	if cap(sc.versions) < n {
		sc.versions = make([]uint64, n)
	}
	sc.versions = sc.versions[:n]
}

// viaMemo builds the forwarded Via path (inbound path + self) once per
// distinct inbound path in a batch: every refresh of an apply batch that
// took the same route shares one backing array instead of allocating its
// own copy per refresh. Provenance paths are never mutated downstream
// (every consumer copies on append), so the sharing is safe.
type viaMemo struct {
	id  string
	in  [][]string
	out [][]string
}

// path returns via + [self], memoized by path content. The memo is a linear
// scan: a batch almost always carries one distinct inbound path (everything
// came through the same upstream), rarely a handful.
func (v *viaMemo) path(via []string) []string {
	for i, k := range v.in {
		if slices.Equal(k, via) {
			return v.out[i]
		}
	}
	p := make([]string, 0, len(via)+1)
	p = append(append(p, via...), v.id)
	v.in = append(v.in, via)
	v.out = append(v.out, p)
	return p
}

// onForward is the framed-batch re-export hook (CacheConfig.OnForward): the
// splice-forwarding counterpart of reexport. rs, keep and the retained
// frame's encoded items are index-aligned; keep[i] marks refreshes the
// intake actually installed. The hook owns the frame reference.
func (n *Node) onForward(rs []wire.Refresh, frame *codec.Frame, keep []bool) {
	if n.src.LiveDestinations() == 0 {
		n.mu.Lock()
		n.suppressed++
		n.storeAhead = true
		n.mu.Unlock()
		frame.Release()
		return
	}
	// Refine the mask with the re-export guards (same rules as reexport):
	// loop check and hop ceiling both clear keep[i], which excludes the item
	// from the spliced frame AND from the peer-face update — exactly the
	// classic path's `continue`.
	var looped, hopLimited, live int
	sc := spliceScratchPool.Get().(*spliceScratch)
	sc.grab(n.cfg.ID, len(rs))
	provs := sc.provs
	for i := range rs {
		if !keep[i] {
			continue
		}
		ref := &rs[i]
		origin := ref.OriginID()
		if origin == n.cfg.ID || slices.Contains(ref.Via, n.cfg.ID) {
			looped++ // defense in depth; rejectCycle already filters these
			keep[i] = false
			continue
		}
		hops := ref.Hops
		if l := len(ref.Via); l > hops {
			hops = l
		}
		if hops+1 > n.cfg.MaxHops {
			hopLimited++
			keep[i] = false
			continue
		}
		oe, ov := ref.OriginAxis()
		provs[i] = Provenance{Origin: origin, Hops: hops + 1, Via: sc.memo.path(ref.Via), Epoch: oe, Version: ov}
		live++
	}
	if live == 0 {
		spliceScratchPool.Put(sc)
		frame.Release()
		n.mu.Lock()
		n.looped += looped
		n.hopLimited += hopLimited
		n.mu.Unlock()
		return
	}
	scheduled, handled := n.src.forwardSpliced(rs, frame, keep, sc)
	frame.Release()
	if !handled {
		// Classic path: one UpdateFromAll round-trip, re-encode at flush.
		updates := make([]RelayedUpdate, 0, live)
		for i := range rs {
			if keep[i] {
				updates = append(updates, RelayedUpdate{ObjectID: rs[i].ObjectID, Value: rs[i].Value, Prov: provs[i]})
			}
		}
		n.src.UpdateFromAll(updates)
	}
	spliceScratchPool.Put(sc)
	n.mu.Lock()
	n.forwarded += live
	n.looped += looped
	n.hopLimited += hopLimited
	if handled {
		n.splicedBatches++
		n.splicedRefreshes += scheduled
	} else {
		n.spliceFallbacks++
	}
	n.mu.Unlock()
}

// forwardSpliced attempts the splice broadcast of one applied batch. rs,
// keep and provs are index-aligned with the retained frame's encoded items;
// keep[i] marks the applied, forward-eligible refreshes. It returns handled
// = false when the whole batch is ineligible — no session group, wrong
// policy/metric shape, or an unparseable/non-canonical frame — in which
// case nothing happened and the caller runs the classic UpdateFromAll path.
//
// When handled, every kept item advanced the canonical object state under
// one lock acquisition, and each item either boarded the spliced frame
// (scheduled, counted in the return) or fell back to the normal scheduling
// machinery (within the group threshold, out of send budget, or stale
// against a concurrently applied newer copy — the per-item fallback the
// docs' matrix describes). The frame reference stays with the CALLER; the
// spliced output is an independent frame, so the inbound one may be
// released as soon as this returns.
func (s *Source) forwardSpliced(rs []wire.Refresh, frame *codec.Frame, keep []bool, sc *spliceScratch) (scheduled int, handled bool) {
	g := s.group
	if g == nil || s.cfg.Policy != PolicyPush || s.cfg.Metric != metric.ValueDeviation || s.cfg.Delta != nil {
		return 0, false
	}
	view, err := codec.ParseBatchFrame(frame.Bytes())
	if err != nil {
		return 0, false
	}
	defer view.Release()
	if view.Len() != len(rs) {
		return 0, false // frame/batch drift; the transport contract makes this unreachable
	}
	now := s.now()
	nowUnix := s.cfg.Now().UnixNano()
	provs, versions := sc.provs, sc.versions

	s.mu.Lock()
	if len(g.members) == 0 {
		s.mu.Unlock()
		return 0, false
	}
	g.accrueLocked(now)
	threshold := g.eng.Threshold()
	for i := range rs {
		if !keep[i] {
			continue
		}
		o, ok := s.objs[rs[i].ObjectID]
		if !ok {
			o = &objState{id: rs[i].ObjectID, firstAt: now}
			s.objs[o.id] = o
			s.idx[o.id] = len(s.ids)
			s.ids = append(s.ids, o.id)
			g.objs = append(g.objs, &groupObj{})
			for _, ss := range s.sessions {
				if !ss.ended && !ss.grouped {
					ss.objs = append(ss.objs, &sessObj{})
				}
			}
		} else if o.prov.Epoch != 0 && o.prov.Origin == provs[i].Origin &&
			(provs[i].Epoch < o.prov.Epoch ||
				(provs[i].Epoch == o.prov.Epoch && provs[i].Version <= o.prov.Version)) {
			// Batch-level forwarding completes out of apply order across
			// batches: a later batch touching the same object may have
			// advanced the canonical state already. At-or-behind on the
			// origin axis means this item is superseded — skip it (the
			// newer copy was or will be forwarded by its own batch).
			keep[i] = false
			continue
		}
		o.value = rs[i].Value
		o.version++
		o.updates++
		o.prov = provs[i]
		o.lastUnix = nowUnix
		s.updates++
		key := s.idx[o.id]
		if o.deferred {
			o.deferred = false
		}
		// Individual (non-grouped) sessions keep the classic observe path.
		for _, ss := range s.sessions {
			if !ss.ended && !ss.grouped {
				ss.observeLocked(o, key, now)
			}
		}
		gobj := g.objs[key]
		send := gobj.sentVer == 0 // never broadcast: members hold no copy
		if !send {
			d := o.value - gobj.sentVal
			if d < 0 {
				d = -d
			}
			send = d >= threshold
		}
		if !send || g.budget < 1 {
			// Within threshold or out of budget: the normal scheduling
			// machinery picks the object up at the next flush tick.
			g.observeLocked(o, key, now)
			keep[i] = false
			continue
		}
		g.budget--
		g.demand -= gobj.tracker.Current()
		gobj.sentVal, gobj.sentVer = o.value, o.version
		gobj.tracker.Reset(now, 0)
		g.eng.Queue.Remove(key)
		g.eng.OnRefreshSent(now)
		g.eng.ClampThreshold()
		g.scheduled++
		scheduled++
		versions[i] = o.version
	}
	if scheduled == 0 {
		// Everything deferred to the classic scheduler — still handled: the
		// canonical state advanced and every observe ran.
		s.mu.Unlock()
		return 0, true
	}
	_, _, want := g.eng.ShouldSend()
	g.eng.SetLimited(want)
	g.batches++
	g.splicedBatches++
	g.splicedRefreshes += scheduled

	fp := codec.ForwardPatch{
		SourceID:  s.cfg.ID,
		Epoch:     s.started.UnixNano(),
		Threshold: g.eng.Threshold(),
		SentUnix:  nowUnix,
	}
	// Split-horizon pre-pass over the OUTGOING provenance (origin + via,
	// which already ends with this node's id — no member carries it).
	clear(g.restricted)
	for i := range rs {
		if !keep[i] {
			continue
		}
		g.restricted[provs[i].Origin] = struct{}{}
		for _, v := range provs[i].Via {
			g.restricted[v] = struct{}{}
		}
	}
	// The decoded reference patch, materialized only when some member
	// cannot take the spliced bytes (gob conn, held ack, split horizon).
	// codec.PatchForward is the same reference implementation the splice
	// differential fuzz pins SpliceForward against, so both representations
	// of the batch are interchangeable by construction.
	var patched []wire.Refresh
	patchedFor := func() []wire.Refresh {
		if patched == nil {
			patched = codec.PatchForward(rs, keep, versions, fp)
		}
		return patched
	}
	// Plan member deliveries under the lock, execute outside — the same
	// two-phase shape as broadcastOnce, but with call-owned plan buffers
	// (from the pooled scratch): this runs on a cache shard worker,
	// concurrently with the flusher's own use of the shared group scratch.
	plan := sc.plan[:0]
	overrun := sc.overrun[:0]
	needFrame := false
	for _, m := range g.members {
		if int(m.inflight.Load()) >= g.cfg.Queue {
			overrun = append(overrun, m)
			continue
		}
		var mrs []wire.Refresh
		shared := true
		needsFilter := len(m.memberHeld) > 0
		if !needsFilter && m.remoteID != "" {
			_, needsFilter = g.restricted[m.remoteID]
		}
		if needsFilter {
			mrs, shared = g.memberRefreshesLocked(m, patchedFor())
			if !shared && len(mrs) == 0 {
				continue
			}
			if !shared {
				g.fallbacks++
			}
		}
		if shared && m.groupFS != nil {
			needFrame = true
		}
		plan = append(plan, memberPlan{m: m, conn: m.groupConn, fs: m.groupFS, shared: shared, rs: mrs})
	}
	s.mu.Unlock()

	b := groupBatchPool.Get().(*groupBatch)
	b.g = g
	b.refs.Store(1)
	if needFrame {
		// The splice itself: kept items' bytes verbatim, per-hop fields
		// patched, skipped items never touched.
		b.frame = codec.SpliceForward(view, keep, versions, fp)
		g.framesLive.Add(1)
	}
	for _, p := range plan {
		if p.shared && p.fs == nil {
			b.rs = patchedFor() // gob members need the decoded form
			break
		}
	}
	if cap(sc.buckets) < len(g.workers) {
		sc.buckets = make([][]sendItem, len(g.workers))
	}
	buckets := sc.buckets[:len(g.workers)]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for _, p := range plan {
		it := sendItem{sess: p.m, conn: p.conn}
		if p.shared {
			b.refs.Add(1)
			it.batch = b
			it.n = scheduled
			if p.fs != nil {
				b.frame.Retain()
				it.frame = b.frame
				it.fs = p.fs
			} else {
				it.rs = b.rs
			}
		} else {
			it.rs = p.rs
			it.n = len(p.rs)
		}
		p.m.inflight.Add(1)
		buckets[p.m.workerIdx] = append(buckets[p.m.workerIdx], it)
	}
	for wi, items := range buckets {
		if len(items) == 0 {
			continue
		}
		w := g.workers[wi]
		w.mu.Lock()
		w.queue = append(w.queue, items...)
		w.cond.Signal()
		w.mu.Unlock()
	}
	b.release()

	if len(overrun) > 0 {
		s.mu.Lock()
		for _, m := range overrun {
			if m.grouped {
				g.overruns++
				g.detachLocked(m, true)
			}
		}
		s.reallocateLocked()
		s.mu.Unlock()
	}
	// Hand any regrown buffers back to the scratch so their capacity is
	// reused by the next batch; the workers copied every enqueued item.
	sc.plan, sc.overrun = plan[:0], overrun[:0]
	return scheduled, true
}
