package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

// pollHarness is one cache-driven source↔cache pairing on either transport.
type pollHarness struct {
	cache   *Cache
	src     *Source
	cleanup func()
}

func newPollHarness(t *testing.T, tcp bool, policy Policy, objects int) *pollHarness {
	t.Helper()
	cacheCfg := CacheConfig{
		ID:        "poll-cache",
		Bandwidth: 4000,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
		Poll: PollConfig{
			ReSolveEvery: 250 * time.Millisecond,
			Seed:         1,
			TrueRate:     func(string) float64 { return 5 },
		},
	}
	srcCfg := SourceConfig{
		ID:        "poll-src",
		Metric:    metric.ValueDeviation,
		Bandwidth: 4000,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
	}
	var (
		ep      transport.CacheEndpoint
		conn    transport.SourceConn
		cleanup func()
	)
	if tcp {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ep = transport.Serve(ln, 64)
		conn, err = transport.Dial(ln.Addr().String(), srcCfg.ID)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		local := transport.NewLocal(64)
		ep = local
		var err error
		conn, err = local.Dial(srcCfg.ID)
		if err != nil {
			t.Fatal(err)
		}
	}
	cache := NewCache(cacheCfg, ep)
	src := NewSource(srcCfg, conn)
	cleanup = func() {
		src.Close()
		cache.Close()
		ep.Close()
	}
	return &pollHarness{cache: cache, src: src, cleanup: cleanup}
}

// runPollWorkload updates the objects continuously for the window, then
// waits for one more poll cycle so the final values are observable.
func (h *pollHarness) runPollWorkload(objects int, window time.Duration) []float64 {
	values := make([]float64, objects)
	deadline := time.Now().Add(window)
	step := 0
	for time.Now().Before(deadline) {
		i := step % objects
		values[i] += 1
		h.src.Update(fmt.Sprintf("poll-src/obj-%d", i), values[i])
		step++
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(400 * time.Millisecond) // ≥ one poll period + apply drain
	return values
}

func testPollPolicy(t *testing.T, tcp bool, policy Policy) {
	const objects = 16
	h := newPollHarness(t, tcp, policy, objects)
	defer h.cleanup()

	values := h.runPollWorkload(objects, 1200*time.Millisecond)

	for i, want := range values {
		id := fmt.Sprintf("poll-src/obj-%d", i)
		e, ok := h.cache.Get(id)
		if !ok {
			t.Fatalf("%v: object %s never reached the cache", policy, id)
		}
		if e.Value != want {
			t.Errorf("%v: object %s = %v, want %v (one poll period behind is a test bug, not a protocol one)",
				policy, id, e.Value, want)
		}
	}

	cs := h.cache.Stats()
	if cs.Polls == 0 {
		t.Errorf("%v: cache sent no polls", policy)
	}
	if cs.PollReplies == 0 {
		t.Errorf("%v: cache received no poll replies", policy)
	}
	if cs.Resolves == 0 {
		t.Errorf("%v: allocation never re-solved", policy)
	}
	if cs.Refreshes == 0 {
		t.Errorf("%v: no values installed", policy)
	}
	if cs.Feedbacks != 0 {
		t.Errorf("%v: cache sent %d feedback messages; cache-driven policies must send none", policy, cs.Feedbacks)
	}

	st := h.src.Stats()
	if st.Policy != policy.String() {
		t.Errorf("source policy = %q, want %q", st.Policy, policy)
	}
	if st.PollsAnswered == 0 {
		t.Errorf("%v: source answered no polls", policy)
	}
	if st.Refreshes == 0 {
		t.Errorf("%v: source delivered no reply items", policy)
	}
}

func TestPollModeLocal(t *testing.T) {
	for _, policy := range []Policy{PolicyIdeal, PolicyCGM1, PolicyCGM2} {
		t.Run(policy.String(), func(t *testing.T) { testPollPolicy(t, false, policy) })
	}
}

func TestPollModeTCP(t *testing.T) {
	testPollPolicy(t, true, PolicyCGM1)
}

// TestPollPolicyRequiresPollConn pins the construction-time validation: a
// cache-driven source must reject connections that cannot carry polls.
func TestPollPolicyRequiresPollConn(t *testing.T) {
	fc := newFakeConn()
	_, err := NewFanoutSource(SourceConfig{
		ID: "s", Policy: PolicyCGM1, Bandwidth: 10,
	}, []Destination{{Conn: fc}})
	if err == nil {
		t.Fatal("poll-less connection accepted under a cache-driven policy")
	}
}

// TestParsePolicy pins the -mode flag grammar.
func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"push": PolicyPush, "": PolicyPush,
		"poll": PolicyIdeal, "ideal": PolicyIdeal, "IDEAL": PolicyIdeal,
		"cgm1": PolicyCGM1, "CGM2": PolicyCGM2,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("gossip"); err == nil {
		t.Error("unknown policy accepted")
	}
	if PolicyCGM1.MessageCost() != 2 || PolicyIdeal.MessageCost() != 1 || PolicyPush.MessageCost() != 1 {
		t.Error("message costs drifted from the §6.3 model")
	}
}
