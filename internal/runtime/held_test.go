package runtime

import (
	"bytes"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// TestOriginAxisGuardNoRegression pins the snapshot-age fix at the cache:
// a relay RESTART re-issues a fresh sender epoch, so its re-export of an
// old value passes the per-sender staleness guard — before the origin-axis
// guard, that regressed any cache that was ahead of the relay's snapshot.
func TestOriginAxisGuardNoRegression(t *testing.T) {
	net := transport.NewLocal(16)
	cache := NewCache(CacheConfig{ID: "leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, net)
	defer cache.Close()
	conn, err := net.Dial("relay")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(senderEpoch int64, senderVer uint64, originVer uint64, value float64) {
		t.Helper()
		if err := conn.SendRefresh(wire.Refresh{
			SourceID: "relay", ObjectID: "root/x",
			Origin: "root", Hops: 1, Via: []string{"relay"},
			OriginEpoch: 50, OriginVersion: originVer,
			Value: value, Version: senderVer, Epoch: senderEpoch,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Relay incarnation 1 delivers origin version 5.
	send(100, 7, 5, 50)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("root/x")
		return ok && e.Value == 50
	}, "initial relayed value")

	// Incarnation 2 (fresh, larger sender epoch) re-exports its snapshot-age
	// copy: origin version 3. The per-sender guard alone would apply it.
	send(200, 1, 3, 30)
	waitFor(t, 2*time.Second, func() bool {
		return cache.Stats().Stale >= 1
	}, "stale drop of the snapshot-age re-export")
	if e, _ := cache.Get("root/x"); e.Value != 50 {
		t.Fatalf("cache regressed to %v; the origin-axis guard must keep 50", e.Value)
	}

	// The same incarnation delivering genuinely newer origin state must
	// still get through — the guard compares versions, not incarnations.
	send(200, 2, 6, 60)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := cache.Get("root/x")
		return ok && e.Value == 60
	}, "newer origin version from the restarted relay")

	// And the origin axis survived on the entry for the next hop.
	if e, _ := cache.Get("root/x"); e.OriginEpoch != 50 || e.OriginVersion != 6 {
		t.Errorf("entry origin axis = (%d, %d), want (50, 6)", e.OriginEpoch, e.OriginVersion)
	}
}

// TestSessionHeldSkip pins the sender half: a held-version ack recorded
// from feedback cancels scheduled sends the cache is already at-or-ahead
// of — including acks that arrive BEFORE the object exists at this source
// (the relay-restored-from-snapshot ordering).
func TestSessionHeldSkip(t *testing.T) {
	fc := newFakeConn()
	src := NewSource(SourceConfig{
		ID: "relay", Metric: metric.ValueDeviation,
		Bandwidth: 1000, Tick: 2 * time.Millisecond,
	}, fc)
	defer src.Close()

	// The cache acks origin version 5 before the relay has the object.
	fc.fb <- wire.Feedback{CacheID: "child", Held: []wire.HeldVersion{
		{ObjectID: "root/x", Epoch: 50, Version: 5},
	}}
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Feedbacks == 1
	}, "feedback processed")

	// The snapshot-age value (origin version 3) is observed: covered by the
	// ack, so it must be skipped, not sent.
	src.UpdateFrom("root/x", 30, Provenance{
		Origin: "root", Hops: 1, Via: []string{"relay"}, Epoch: 50, Version: 3,
	})
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Sessions[0].HeldSkips == 1
	}, "held-skip of the covered value")
	time.Sleep(20 * time.Millisecond) // several flush ticks
	if got := len(fc.sentMsgs()); got != 0 {
		t.Fatalf("covered value was sent anyway (%d refreshes)", got)
	}
	if pending := src.Stats().Pending; pending != 0 {
		t.Errorf("skipped object still queued (pending=%d)", pending)
	}

	// A newer origin version is NOT covered: it must go out, stamped with
	// the preserved origin axis.
	src.UpdateFrom("root/x", 60, Provenance{
		Origin: "root", Hops: 1, Via: []string{"relay"}, Epoch: 50, Version: 6,
	})
	waitFor(t, 2*time.Second, func() bool {
		return len(fc.sentMsgs()) == 1
	}, "uncovered value sent")
	sent := fc.sentMsgs()[0]
	if sent.Origin != "root" || sent.OriginEpoch != 50 || sent.OriginVersion != 6 {
		t.Errorf("sent refresh origin axis = %q (%d, %d), want root (50, 6)",
			sent.Origin, sent.OriginEpoch, sent.OriginVersion)
	}
}

// TestReexportStoreSkipsAheadChild is the end-to-end regression test for
// the ROADMAP's snapshot-age window: a relay restarts from a snapshot
// OLDER than what its child holds, re-exports the restored store, and the
// child must come out unharmed — the stale re-export is either cancelled
// at the relay (held-version feedback) or dropped at the child (origin-axis
// guard), never applied.
func TestReexportStoreSkipsAheadChild(t *testing.T) {
	leafNet := transport.NewLocal(16)
	leaf := NewCache(CacheConfig{ID: "leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
	defer leaf.Close()

	newRelay := func() (*Relay, transport.SourceConn) {
		childConn, err := leafNet.Dial("relay-r")
		if err != nil {
			t.Fatal(err)
		}
		upNet := transport.NewLocal(16)
		relay, err := NewRelay(RelayConfig{
			ID:             "relay-r",
			Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
			ChildBandwidth: 10000,
			Metric:         metric.ValueDeviation,
			Tick:           5 * time.Millisecond,
		}, upNet, []Destination{{CacheID: "leaf", Conn: childConn}})
		if err != nil {
			t.Fatal(err)
		}
		up, err := upNet.Dial("root")
		if err != nil {
			t.Fatal(err)
		}
		return relay, up
	}

	relay1, up1 := newRelay()
	send := func(up transport.SourceConn, version uint64, value float64) {
		t.Helper()
		if err := up.SendRefresh(wire.Refresh{
			SourceID: "root", ObjectID: "root/obj",
			Value: value, Version: version, Epoch: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot the relay at origin version 2...
	send(up1, 1, 10)
	send(up1, 2, 20)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := relay1.Get("root/obj")
		return ok && e.Version == 2
	}, "relay 1 at version 2")
	var snap bytes.Buffer
	if err := relay1.Cache().SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// ...then advance the child PAST the snapshot before the relay "dies".
	send(up1, 3, 30)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := leaf.Get("root/obj")
		return ok && e.Value == 30
	}, "leaf ahead of the snapshot")
	relay1.Close()

	// Restart: same relay identity, snapshot-age store, same child.
	relay2, up2 := newRelay()
	defer relay2.Close()
	if err := relay2.Cache().LoadSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	relay2.ReexportStore()

	// The re-export resolves as a held-skip at the relay or a stale drop at
	// the child — one of the two must fire, and the child must keep 30.
	waitFor(t, 2*time.Second, func() bool {
		heldSkips := 0
		for _, sess := range relay2.Stats().Downstream.Sessions {
			heldSkips += sess.HeldSkips
		}
		return heldSkips > 0 || leaf.Stats().Stale > 0
	}, "stale re-export neutralized (held-skip or origin-guard drop)")
	if e, _ := leaf.Get("root/obj"); e.Value != 30 {
		t.Fatalf("child regressed to %v after snapshot re-export; want 30", e.Value)
	}

	// Fresh origin progress still flows through the restarted relay.
	send(up2, 4, 40)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := leaf.Get("root/obj")
		return ok && e.Value == 40
	}, "post-restart updates reach the child")
}
