package runtime

import (
	"time"

	"bestsync/internal/cgm"
)

// HybridConfig tunes the per-object migration controller behind
// PolicyHybrid (SourceConfig.Hybrid). Each sync session classifies every
// object into a push set (source-initiated refreshes through the §5
// threshold machinery) or a poll set (cache-driven CGM polling); the
// controller re-scores all objects once per MigrateEvery window and moves
// them across a hysteresis band:
//
//	score = divPerMsg × λ̂ × pollCost
//
// where divPerMsg is the EWMA-smoothed divergence observed per message
// spent on the object (how much synchronization value one message buys —
// the push-side signal), λ̂ is the live CGM1 last-modified estimate of the
// object's update rate fed from the source's own update stream (the
// poll-side cost driver: tracking rate λ by polling costs ≈ 2λ messages
// per second), and pollCost is the practical poll round trip (2). An
// object scores high when it changes often AND its messages move real
// divergence — exactly the hot head push serves best; a cold-tail object
// decays toward zero and is cheaper to poll at its cgm.OptimalAllocation
// frequency.
type HybridConfig struct {
	// Promote is the score at or above which a polled object joins the
	// push set. Default 8.
	Promote float64
	// Demote is the score at or below which a pushed object returns to
	// the poll set. Must sit below Promote — the band between the two is
	// the hysteresis dead zone that keeps an object whose score hovers
	// near one threshold from flapping between regimes. Default 2.
	Demote float64
	// Gain is the EWMA smoothing gain for the divergence-per-message
	// signal, the same shape alloc.Rebalancer uses for contribution
	// scores: 1 trusts only the latest window, small values average long.
	// Default 0.4.
	Gain float64
	// MigrateEvery is the scoring window: the controller re-scores and
	// migrates once per interval. Default 500ms.
	MigrateEvery time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (h HybridConfig) withDefaults() HybridConfig {
	if h.Promote <= 0 {
		h.Promote = 8
	}
	if h.Demote <= 0 {
		h.Demote = 2
	}
	if h.Gain <= 0 || h.Gain > 1 {
		h.Gain = 0.4
	}
	if h.MigrateEvery <= 0 {
		h.MigrateEvery = 500 * time.Millisecond
	}
	return h
}

// HybridStats is the migration controller's observable state: the current
// regime split and the cumulative migrations (SessionStats.Hybrid per
// session, SourceStats.Hybrid aggregated).
type HybridStats struct {
	// PushObjects and PollObjects are the current set sizes.
	PushObjects int
	PollObjects int
	// Promotions and Demotions count poll→push and push→poll migrations.
	Promotions int
	Demotions  int
	// PolledItems counts the values delivered through the poll half —
	// targeted poll-reply items answered from the store. The push half's
	// deliveries are SessionStats.Refreshes minus this.
	PolledItems int
}

// hybridObj is the controller's per-object state: the current regime,
// the open scoring window's raw observations, the smoothed score input,
// and the rate estimator.
type hybridObj struct {
	pushed bool
	// Window accumulators, reset each migrate pass.
	divWin  float64 // divergence growth observed this window
	msgsWin float64 // messages charged against this object this window
	chgWin  int     // updates observed this window
	// divPerMsg is the EWMA of divWin/max(msgsWin,1) across windows.
	divPerMsg float64
	// lastMod is the protocol time of the most recent observed update,
	// feeding the estimator's last-modified ages.
	lastMod float64
	est1    cgm.LastModifiedEstimator
}

// hybridController is one sync session's migration controller. All state
// is guarded by the owning Source's mutex, like the rest of the session's
// scheduling state; only migrate is called off the session's own loop.
// Objects start in the POLL set: a new object has no divergence-per-message
// history, and polling is the regime that builds one without the source
// committing push bandwidth to it.
type hybridController struct {
	cfg  HybridConfig
	objs []*hybridObj

	lastMigrate float64 // protocol time of the last migrate pass (window start)
	pushCount   int
	promotions  int
	demotions   int
	polled      int // targeted poll-reply items answered (poll-half deliveries)
}

func newHybridController(cfg HybridConfig) *hybridController {
	return &hybridController{cfg: cfg.withDefaults()}
}

// ensure grows the per-object table through key (the source's intern
// index), mirroring how sessObj slices grow with the store.
func (hc *hybridController) ensure(key int) *hybridObj {
	for len(hc.objs) <= key {
		hc.objs = append(hc.objs, &hybridObj{})
	}
	return hc.objs[key]
}

// pushed reports object key's current regime.
func (hc *hybridController) pushed(key int) bool {
	return hc.ensure(key).pushed
}

// observe folds one canonical update into object key's open window:
// divDelta is the divergence growth the update produced toward this
// session's cache (zero when the value walked back toward the sent copy).
func (hc *hybridController) observe(key int, divDelta, now float64) {
	ho := hc.ensure(key)
	ho.chgWin++
	if divDelta > 0 {
		ho.divWin += divDelta
	}
	ho.lastMod = now
}

// charge records msgs messages spent on object key this window — 1 per
// push refresh sent, the poll round-trip cost per targeted poll answered.
func (hc *hybridController) charge(key int, msgs float64) {
	hc.ensure(key).msgsWin += msgs
}

// migrate closes the scoring window: every object's estimator absorbs the
// window's change observation, its divergence-per-message EWMA updates,
// and its score is compared against the hysteresis band. Returned are the
// intern keys promoted into the push set and demoted out of it; the caller
// re-queues the former and removes the latter from its priority queue.
func (hc *hybridController) migrate(now float64) (promoted, demoted []int) {
	window := now - hc.lastMigrate
	hc.lastMigrate = now
	if window <= 0 {
		return nil, nil
	}
	for key, ho := range hc.objs {
		// The source observes its own update stream, so the controller
		// feeds the estimator one synthetic "poll" per window: changed if
		// any update landed, with the true last-modified age — the same
		// observation a CGM1 cache would extract, at zero message cost.
		age := now - ho.lastMod
		if age < 0 {
			age = 0
		}
		ho.est1.Observe(ho.chgWin > 0, window, age)
		lambda := ho.est1.Estimate()
		if lambda <= 0 {
			lambda = ho.est1.FloorRate()
		}
		inst := ho.divWin
		if ho.msgsWin > 1 {
			inst = ho.divWin / ho.msgsWin
		}
		ho.divPerMsg += hc.cfg.Gain * (inst - ho.divPerMsg)
		score := ho.divPerMsg * lambda * pollRoundTrip
		switch {
		case !ho.pushed && score >= hc.cfg.Promote:
			ho.pushed = true
			hc.pushCount++
			hc.promotions++
			promoted = append(promoted, key)
		case ho.pushed && score <= hc.cfg.Demote:
			ho.pushed = false
			hc.pushCount--
			hc.demotions++
			demoted = append(demoted, key)
		}
		ho.divWin, ho.msgsWin, ho.chgWin = 0, 0, 0
	}
	return promoted, demoted
}

// pollRoundTrip is the practical poll cost in messages (request +
// response), the factor that converts an update rate into a poll-side
// message rate when scoring.
const pollRoundTrip = 2

// pushSet returns the ids of the objects currently in the push set, in
// intern order; ids is the source's intern table. The slice is freshly
// allocated — it is handed to the wire layer as PollReply.Pushed.
func (hc *hybridController) pushSet(ids []string) []string {
	if hc.pushCount == 0 {
		return nil
	}
	out := make([]string, 0, hc.pushCount)
	for key, ho := range hc.objs {
		if ho.pushed && key < len(ids) {
			out = append(out, ids[key])
		}
	}
	return out
}

// statsLocked snapshots the controller. Caller holds the source mutex.
func (hc *hybridController) statsLocked() HybridStats {
	return HybridStats{
		PushObjects: hc.pushCount,
		PollObjects: len(hc.objs) - hc.pushCount,
		Promotions:  hc.promotions,
		Demotions:   hc.demotions,
		PolledItems: hc.polled,
	}
}
