package runtime

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the serialized cache store.
type snapshot struct {
	Version int
	Store   map[string]Entry
}

// SaveSnapshot writes the current store to w (gob-encoded). A cache daemon
// can persist across restarts without re-fetching every object from its
// sources. Shards are serialized into one flat map, so snapshots survive
// shard-count changes between runs.
func (c *Cache) SaveSnapshot(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Store: map[string]Entry{}}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for id, e := range sh.store {
			snap.Store[id] = e
		}
		sh.mu.Unlock()
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadSnapshot merges a previously saved store into the cache, distributing
// entries to their owning shards. A live entry always wins over a snapshot
// entry from a different sender, and wins over a same-sender snapshot entry
// unless that one is newer (by source epoch, then version) — so loading an
// old snapshot under traffic never regresses the store. The cross-sender
// rule mirrors applyLocked's per-sender staleness guard: epochs from
// different nodes are incomparable wall-clock starts, and comparing them
// would let a snapshot entry from a later-booted sender (larger epoch, any
// age) overwrite a live feed.
func (c *Cache) LoadSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("runtime: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("runtime: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	for id, e := range snap.Store {
		sh := c.shardFor(id)
		sh.mu.Lock()
		cur, ok := sh.store[id]
		if !ok || (cur.Source == e.Source &&
			(cur.Epoch < e.Epoch || (cur.Epoch == e.Epoch && cur.Version < e.Version))) {
			sh.store[id] = e
		}
		sh.mu.Unlock()
	}
	return nil
}

// SaveSnapshotFile atomically writes the store to path (temp file + rename),
// so a crash mid-save never corrupts the previous snapshot.
func (c *Cache) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := c.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshotFile loads a snapshot from path; a missing file is not an
// error (first boot).
func (c *Cache) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadSnapshot(f)
}
