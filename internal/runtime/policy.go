package runtime

import (
	"fmt"
	"strings"
)

// Policy selects the synchronization policy a source↔cache pairing runs —
// the pluggable axis the in-network-caching literature calls the
// cooperation policy. The same transports, stores and budget machinery
// serve every policy; what changes is WHO decides when an object's new
// value crosses the wire:
//
//   - PolicyPush: the paper's source-cooperative protocol (§5–7). The
//     source watches its objects, ranks them with the Section 3 priority
//     functions, and pushes those above its adaptive threshold; the cache
//     answers with surplus-driven feedback. One message per refresh.
//   - PolicyIdeal, PolicyCGM1, PolicyCGM2: the cache-driven polling
//     baseline of §6.3 (Cho & Garcia-Molina). The CACHE schedules per-object
//     poll frequencies from cgm.OptimalAllocation and asks; the source only
//     answers. Ideal assumes known update rates and free requests (one
//     message per refresh — the response); CGM1/CGM2 estimate rates live
//     (last-modified / binary change bit) and pay the round trip (two
//     messages per refresh).
//   - PolicyHybrid: per-OBJECT policy selection. Each session classifies
//     its objects into a push set (hot head: source-initiated refreshes
//     through the §5 threshold machinery) and a poll set (cold tail:
//     cache-driven CGM polling), migrating objects between the regimes from
//     live estimator signals (see HybridConfig). Both regimes charge the
//     same per-session token bucket, so the equal-budget comparison with
//     the pure policies stays honest.
//
// Sources and caches must agree on the policy: a push source never polls
// and a polling cache sends no feedback, so a mismatched pairing simply
// synchronizes nothing.
type Policy int

const (
	// PolicyPush is the source-cooperative push protocol (default).
	PolicyPush Policy = iota
	// PolicyIdeal is ideal cache-based polling: known update rates, free
	// poll requests (1 msg/refresh). Live deployments supply the "known"
	// rates via PollConfig.TrueRate; without it the policy degrades to
	// CGM1's estimates (still at ideal message cost).
	PolicyIdeal
	// PolicyCGM1 is cache-driven polling with the last-modified estimator
	// (2 msgs/refresh).
	PolicyCGM1
	// PolicyCGM2 is cache-driven polling with the binary change-bit
	// estimator (2 msgs/refresh).
	PolicyCGM2
	// PolicyHybrid pushes the hot head and polls the cold tail, per object,
	// with a migration controller moving objects between the regimes.
	PolicyHybrid
)

// String names the policy as in Figure 6 (flag-friendly forms).
func (p Policy) String() string {
	switch p {
	case PolicyPush:
		return "push"
	case PolicyIdeal:
		return "ideal"
	case PolicyCGM1:
		return "cgm1"
	case PolicyCGM2:
		return "cgm2"
	case PolicyHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a -mode flag value. "poll" is accepted as an alias for
// "ideal" (the generic cache-driven mode).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "push":
		return PolicyPush, nil
	case "poll", "ideal":
		return PolicyIdeal, nil
	case "cgm1":
		return PolicyCGM1, nil
	case "cgm2":
		return PolicyCGM2, nil
	case "hybrid":
		return PolicyHybrid, nil
	default:
		return PolicyPush, fmt.Errorf("runtime: unknown sync policy %q (want push, poll/ideal, cgm1, cgm2 or hybrid)", s)
	}
}

// CacheDriven reports whether the cache ALONE initiates synchronization
// (the pure polling policies). Hybrid is neither pure regime: use Polls /
// Pushes for capability checks.
func (p Policy) CacheDriven() bool { return p != PolicyPush && p != PolicyHybrid }

// Polls reports whether the policy involves cache-driven polling at all —
// every policy except pure push. Nodes running a polling policy need a poll
// endpoint/connection.
func (p Policy) Polls() bool { return p != PolicyPush }

// Pushes reports whether the policy involves source-initiated refreshes —
// pure push and the hybrid's hot head.
func (p Policy) Pushes() bool { return p == PolicyPush || p == PolicyHybrid }

// MessageCost is the number of wire messages one refreshed object costs
// under this policy: 1 for push (the refresh) and ideal polling (free
// requests, per §6.3), 2 for the practical polling modes (request +
// response). Hybrid reports its poll regime's round-trip cost (2); its push
// regime charges 1 internally, so 2 is the conservative per-refresh bound an
// equal-budget comparison should assume. Equal-budget comparisons divide the
// message budget by this cost to get the refresh budget.
func (p Policy) MessageCost() float64 {
	switch p {
	case PolicyCGM1, PolicyCGM2, PolicyHybrid:
		return 2
	default:
		return 1
	}
}
