// Package runtime is a live, goroutine-based implementation of the paper's
// cooperative synchronization protocol, reusing the pure protocol logic of
// internal/core. A Cache node consumes refresh batches under a token-bucket
// processing budget (the cache-side bandwidth) and spends surplus budget on
// positive feedback to the highest-threshold sources; Source nodes watch
// locally updated objects, rank them with the Section 3 priority functions,
// and send those above their adaptive local threshold.
//
// Wall-clock time replaces the simulator's virtual clock; everything else —
// the α/ω/β threshold rules, piggybacked thresholds, surplus-driven feedback
// — is the same code path exercised by the experiments.
//
// # Fan-out
//
// A Source can synchronize several caches at once (NewFanoutSource): it
// runs one self-contained sync session per destination — its own
// divergence trackers, priority queue, threshold engine and send budget —
// and divides the source-side bandwidth across sessions with the Section 7
// share allocation (internal/alloc). Sessions converge independently: a
// starved cache throttles only its own session's threshold while
// well-provisioned caches keep receiving at full rate. Feedback is
// attributed per connection, and caches stamp their identity on it
// (wire.Feedback.CacheID) so sessions can report who is on the other end.
// See docs/algorithm-specifications.md §7.
//
// # Hierarchy
//
// A Relay composes both nodes into a middle tier: a Cache facing its
// upstream whose applied refreshes are re-exported (via the OnApply hook
// and Source.UpdateFrom) as updates to a fan-out Source facing its
// children, with provenance (wire.Refresh.Origin/Hops), loop-avoidance and
// a hop ceiling. Divergence accounting composes per hop; see
// docs/algorithm-specifications.md §8.
//
// # Sharding
//
// The cache store is split into N independent shards, each with its own
// lock, bounded apply queue, worker goroutine, and divergence/bandwidth
// counters. A refresh is routed to the shard owning the hash of its object
// key; object keys are source-qualified by convention ("source/obj-n"), so
// the hash distributes (source, object-key) pairs across shards. A central
// dispatcher goroutine owns the protocol state that is inherently global —
// the token-bucket budget, the per-source threshold tracker, and feedback
// targeting — and fans incoming batches out to the shard queues; workers
// apply refreshes to their shard's store in parallel. Per-shard statistics
// are merged periodically (once per second) into rate gauges for the
// status endpoint and merged on demand by Stats.
//
// # Back-pressure
//
// Every stage is bounded: transport batch channel → dispatcher (gated by
// the token bucket) → per-shard queues (ShardQueue batches deep) → worker.
// When a shard's worker falls behind, its queue fills and the dispatcher
// blocks, which in turn fills the transport channel and stalls the sources'
// SendRefresh calls — the network queueing of the paper's model, now with
// parallel drains.
//
// docs/algorithm-specifications.md §6 specifies the shard/batch semantics
// and the full back-pressure chain.
package runtime

import (
	"hash/maphash"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// CacheConfig configures a live cache node.
type CacheConfig struct {
	// ID identifies this cache to its sources: it is stamped on outgoing
	// feedback (wire.Feedback.CacheID) so fan-out sources can attribute
	// feedback to the right sync session, and compared against the
	// advisory CacheID on incoming refreshes (mismatches are applied but
	// counted in CacheStats.Misrouted). Default "cache".
	ID string
	// Bandwidth is the refresh-processing budget in messages/second.
	Bandwidth float64
	// Tick is the protocol interval (default 100 ms): budget accrual,
	// surplus detection and feedback all run once per tick.
	Tick time.Duration
	// Shards is the number of independent store shards (default
	// GOMAXPROCS). One worker goroutine drains each shard's queue.
	Shards int
	// ShardQueue is the per-shard apply-queue depth in batches (default
	// 64). A full queue blocks the dispatcher — see the package's
	// back-pressure contract.
	ShardQueue int
	// Params tunes the threshold algorithm; zero means paper defaults.
	Params core.Params
	// Policy selects the synchronization policy this cache runs. The
	// default, PolicyPush, is the paper's source-cooperative protocol: the
	// cache consumes pushed refreshes and spends surplus budget on
	// feedback. The cache-driven policies (ideal/cgm1/cgm2) instead start a
	// poll scheduler that discovers the object universe from connected
	// sources and polls each object at its cgm.OptimalAllocation frequency
	// under the same Bandwidth, counted in messages (surplus feedback is
	// disabled — the CGM baseline has none, and unaccounted feedback would
	// skew equal-budget comparisons). PolicyHybrid runs both halves: the
	// cache consumes pushed refreshes AND polls the cold tail — the poll
	// scheduler skips objects a cooperating source advertises as push-set
	// (wire.PollReply.Pushed) — and keeps the push policy's feedback and
	// held-version acks, which the source's push half depends on. Polling
	// policies (including hybrid) require the endpoint to implement
	// transport.PollEndpoint (both provided transports do); NewCache
	// panics otherwise.
	Policy Policy
	// Poll tunes the cache-driven policies; ignored under PolicyPush.
	Poll PollConfig
	// OnApply, when non-nil, is called by the shard workers with every
	// refresh that was actually installed into the store (stale drops are
	// excluded), outside the shard lock. Refreshes for the same object are
	// delivered in apply order (they always land on the same shard);
	// different objects may be reported concurrently from different
	// workers. This is the re-export hook a Relay uses to turn applied
	// refreshes into updates for its own downstream tier.
	OnApply func([]wire.Refresh)
	// OnForward, when non-nil, replaces OnApply for batches that arrive
	// with a retained wire frame (transport.InboundBatch.Frame): once every
	// shard worker has finished the batch, it is called exactly once with
	// the batch's refreshes, the retained frame, and a keep mask aligned
	// 1:1 with both (keep[i] is true iff rs[i] was actually installed —
	// stale drops and Reject hits are false). Ownership of the frame
	// reference transfers to the hook, which must Release it. Unlike
	// OnApply it runs outside any shard lock but also outside apply order
	// across batches — consumers needing per-object ordering must re-check
	// against their own state. Frameless batches are unaffected and keep
	// the OnApply contract. This is the splice-forwarding entry: a Relay
	// uses it to re-export the inbound bytes without re-encoding.
	OnForward func(rs []wire.Refresh, frame *codec.Frame, keep []bool)
	// Reject, when non-nil, is consulted by the dispatcher for every
	// incoming refresh before it reaches the apply path; returning true
	// drops it (counted in CacheStats.Rejected). The piggybacked threshold
	// is still observed — rejection is about the payload, not the
	// protocol. A Relay uses this to drop refreshes that crossed a
	// topology cycle: applying one would let the cycle peer's re-issued
	// epoch capture the entry and shadow direct refreshes.
	Reject func(wire.Refresh) bool
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Entry is one cached object copy. Source is the node the refresh arrived
// from; in a relay hierarchy Origin names the node the value was first
// produced on, Hops the relay tiers it crossed, and Via the relay path it
// took (zero/empty for a copy received directly from its origin). Keeping
// Via on the entry lets a relay restored from a snapshot re-export with the
// original path intact, so the loop guard still holds across restarts.
// OriginEpoch/OriginVersion preserve the origin's own version axis for
// relayed copies (zero when direct — Epoch/Version then ARE the origin
// axis); they are what makes a copy comparable to a re-export from a
// DIFFERENT incarnation of the same relay, which re-issues Epoch/Version.
type Entry struct {
	Value         float64
	Version       uint64
	Epoch         int64 // source incarnation the version belongs to
	Source        string
	Origin        string
	OriginEpoch   int64
	OriginVersion uint64
	Hops          int
	Via           []string
	Refreshed     time.Time
}

// OriginID returns the node the cached value was first produced on.
func (e Entry) OriginID() string {
	if e.Origin != "" {
		return e.Origin
	}
	return e.Source
}

// OriginAxis returns the (epoch, version) the value had at its origin —
// the explicit origin-axis fields for a relayed copy, the sender's own
// Epoch/Version for a direct one (mirrors wire.Refresh.OriginAxis).
func (e Entry) OriginAxis() (epoch int64, version uint64) {
	if e.OriginEpoch != 0 {
		return e.OriginEpoch, e.OriginVersion
	}
	return e.Epoch, e.Version
}

// CacheStats counts protocol activity. The poll counters are zero under the
// push policy; Refreshes counts installed values under every policy (a poll
// reply item that changed the store counts exactly like an applied push
// refresh).
type CacheStats struct {
	Refreshes int
	Feedbacks int
	Sources   int
	Stale     int // refreshes dropped as stale duplicates or old epochs
	Misrouted int // refreshes whose advisory CacheID named another cache
	Rejected  int // refreshes dropped by the CacheConfig.Reject filter
	// PeerServed counts installed refreshes that reached this cache through
	// an intermediary rather than straight from their origin (the applied
	// copy's OriginID differs from the sender) — lateral serving in a mesh,
	// or relay tiers in a tree. Zero in a star topology.
	PeerServed  int
	Divergence  float64 // cumulative |Δvalue| absorbed by applied refreshes
	Polls       int     // poll request messages sent (cache-driven policies)
	PollReplies int     // poll-reply messages received (per targeted item; one per discovery listing)
	Resolves    int     // completed cgm allocation solves
}

// shardStats is the per-shard slice of CacheStats, owned by the shard's
// worker under the shard lock.
type shardStats struct {
	refreshes  int
	stale      int
	peerServed int
	divergence float64
}

// applyTask is one unit of work on a shard queue: either a plain refresh
// slice (the classic path) or a framed batch's slice of indices into the
// shared batchRef (the splice-forwarding path, where the keep mask must stay
// aligned with the retained frame).
type applyTask struct {
	rs   []wire.Refresh // plain path; nil when ref is set
	ref  *batchRef      // framed path: shared per-batch state
	idxs []int          // framed path: indices into ref.rs owned by this shard
}

// batchRef is the shared state of one framed batch in flight across shard
// workers. The last worker to finish (pending hits zero) fires OnForward,
// handing over the frame reference. Refs are pooled: the keep mask and the
// per-shard index buckets are reused across batches, so OnForward's rs/keep
// arguments are valid only for the duration of the call (the hook decodes
// or copies what it needs before returning — n.onForward does).
type batchRef struct {
	c       *Cache
	rs      []wire.Refresh
	frame   *codec.Frame
	keep    []bool
	parts   [][]int
	pending atomic.Int32
}

var batchRefPool = sync.Pool{New: func() any { return new(batchRef) }}

// grabBatchRef readies a pooled ref for a framed batch: keep mask zeroed to
// length len(rs), one (emptied) index bucket per shard.
func (c *Cache) grabBatchRef(rs []wire.Refresh, frame *codec.Frame) *batchRef {
	b := batchRefPool.Get().(*batchRef)
	b.c, b.rs, b.frame = c, rs, frame
	if cap(b.keep) < len(rs) {
		b.keep = make([]bool, len(rs))
	}
	b.keep = b.keep[:len(rs)]
	clear(b.keep)
	if cap(b.parts) < len(c.shards) {
		b.parts = make([][]int, len(c.shards))
	}
	b.parts = b.parts[:len(c.shards)]
	for i := range b.parts {
		b.parts[i] = b.parts[i][:0]
	}
	return b
}

func (b *batchRef) done() {
	if b.pending.Add(-1) == 0 {
		b.c.cfg.OnForward(b.rs, b.frame, b.keep)
		b.recycle()
	}
}

func (b *batchRef) recycle() {
	b.c, b.rs, b.frame = nil, nil, nil
	batchRefPool.Put(b)
}

// shard is one independent slice of the cache store.
type shard struct {
	mu    sync.Mutex
	store map[string]Entry
	stats shardStats
	queue chan applyTask
	// acks buffers held-version acknowledgements per sender — the origin
	// axis of entries this shard applied from relayed refreshes, or held
	// on to while dropping a sender's stale re-send. The dispatcher's
	// surplus-feedback pass drains them onto outgoing wire.Feedback.Held
	// (bounded per message), so senders learn what this cache already
	// holds and skip the rest. Lazily allocated; nil until the first ack.
	acks map[string]map[string]wire.HeldVersion
}

// Cache is a live cache node.
type Cache struct {
	cfg    CacheConfig
	ep     transport.CacheEndpoint
	ps     *pollScheduler // non-nil for cache-driven policies
	shards []*shard
	seed   maphash.Seed

	mu        sync.Mutex // guards tracker, source table, central counters
	tracker   *core.Cache
	srcIdx    map[string]int
	srcIDs    []string
	fbSent    int
	misrouted int
	rejected  int

	// outstanding counts refreshes dispatched to shard queues but not yet
	// applied; the surplus-feedback rule requires a fully drained cache,
	// not just an empty intake channel.
	outstanding atomic.Int64

	// bw is the live processing budget in messages/second (float64 bits);
	// cfg.Bandwidth is only its initial value. The loop re-reads it every
	// tick, so SetBandwidth (a relay shifting budget between its faces)
	// takes effect within one tick.
	bw atomic.Uint64

	rateMu    sync.Mutex // guards the periodically merged gauges
	applyRate float64    // refreshes applied per second, last merge window
	lastMerge mergeMark

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // shard workers
}

// mergeMark remembers the last periodic stats merge.
type mergeMark struct {
	at        time.Time
	refreshes int
}

// NewCache starts a cache node consuming from ep. Close the cache (not the
// endpoint) to shut down.
func NewCache(cfg CacheConfig, ep transport.CacheEndpoint) *Cache {
	if cfg.ID == "" {
		cfg.ID = "cache"
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Shards <= 0 {
		cfg.Shards = stdruntime.GOMAXPROCS(0)
	}
	if cfg.ShardQueue <= 0 {
		cfg.ShardQueue = 64
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
	}
	c := &Cache{
		cfg:    cfg,
		ep:     ep,
		seed:   maphash.MakeSeed(),
		srcIdx: map[string]int{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.lastMerge.at = cfg.Now()
	c.bw.Store(math.Float64bits(cfg.Bandwidth))
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			store: map[string]Entry{},
			queue: make(chan applyTask, cfg.ShardQueue),
		}
		c.wg.Add(1)
		go c.worker(c.shards[i])
	}
	if cfg.Policy.Polls() {
		pe, ok := ep.(transport.PollEndpoint)
		if !ok {
			panic("runtime: a polling policy requires a transport.PollEndpoint (both provided transports implement it)")
		}
		c.ps = newPollScheduler(c, pe, cfg.Poll)
		go c.ps.loop()
	}
	go c.loop()
	return c
}

// shardIndex routes an object key to its owning shard.
func (c *Cache) shardIndex(objectID string) int {
	if len(c.shards) == 1 {
		return 0
	}
	return int(maphash.String(c.seed, objectID) % uint64(len(c.shards)))
}

func (c *Cache) shardFor(objectID string) *shard {
	return c.shards[c.shardIndex(objectID)]
}

// Get returns the cached copy of an object.
func (c *Cache) Get(objectID string) (Entry, bool) {
	sh := c.shardFor(objectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.store[objectID]
	return e, ok
}

// Len returns the number of cached objects.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.store)
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the configured shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Stats merges the per-shard counters with the central protocol counters.
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Refreshes += sh.stats.refreshes
		s.Stale += sh.stats.stale
		s.PeerServed += sh.stats.peerServed
		s.Divergence += sh.stats.divergence
		sh.mu.Unlock()
	}
	c.mu.Lock()
	s.Feedbacks = c.fbSent
	s.Sources = len(c.srcIdx)
	s.Misrouted = c.misrouted
	s.Rejected = c.rejected
	c.mu.Unlock()
	if c.ps != nil {
		s.Polls, s.PollReplies, s.Resolves = c.ps.snapshotCounters()
		// The source intern table is push machinery (fed by piggybacked
		// thresholds); under a poll policy the connected set is the
		// meaningful count.
		s.Sources = len(c.ep.Sources())
	}
	return s
}

// Policy returns the synchronization policy this cache runs.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

// ID returns the cache's configured identifier.
func (c *Cache) ID() string { return c.cfg.ID }

// ApplyRate returns the refresh-apply throughput (messages/second) measured
// over the most recent periodic stats-merge window.
func (c *Cache) ApplyRate() float64 {
	c.rateMu.Lock()
	defer c.rateMu.Unlock()
	return c.applyRate
}

// Bandwidth returns the current processing budget in messages/second.
func (c *Cache) Bandwidth() float64 {
	return math.Float64frombits(c.bw.Load())
}

// SetBandwidth replaces the processing budget at runtime; the dispatcher
// picks the new rate up on its next tick. Non-positive values are ignored.
// A relay uses this to shift budget between its cache face and its child
// face from observed backlog.
func (c *Cache) SetBandwidth(b float64) {
	if b > 0 {
		c.bw.Store(math.Float64bits(b))
	}
}

// backlog approximates the refreshes accepted but not yet applied: those
// dispatched to shard queues plus batches still waiting at the intake
// channel (counted as one each — the channel holds batches, not messages,
// so this is a floor). It is the cache face's observable demand signal for
// a relay's up/down budget split.
func (c *Cache) backlog() int {
	return int(c.outstanding.Load()) + len(c.ep.Batches())
}

// Close stops the dispatcher and the shard workers.
func (c *Cache) Close() error {
	select {
	case <-c.stop:
		return nil
	default:
	}
	close(c.stop)
	<-c.done
	if c.ps != nil {
		// The poll scheduler also feeds the shard queues (installPolled);
		// closing them under its feet would panic a send racing shutdown.
		<-c.ps.done
	}
	for _, sh := range c.shards {
		close(sh.queue)
	}
	c.wg.Wait()
	return nil
}

// sourceIndex interns a source id for the core threshold tracker. Caller
// holds c.mu.
func (c *Cache) sourceIndex(id string) int {
	if idx, ok := c.srcIdx[id]; ok {
		return idx
	}
	idx := len(c.srcIDs)
	c.srcIdx[id] = idx
	c.srcIDs = append(c.srcIDs, id)
	// Re-size the tracker preserving known thresholds (they re-learn from
	// the next piggybacks, which arrive with every refresh) and warm-up
	// greeting counts (a permanently silent peer link must not re-earn
	// warm-up feedback priority every time a new source connects).
	fresh := core.NewCache(len(c.srcIDs))
	if c.tracker != nil {
		for i := 0; i < idx; i++ {
			if th, heard := c.tracker.KnownThreshold(i); heard {
				fresh.ObserveThreshold(i, th)
			} else {
				fresh.SetGreets(i, c.tracker.Greets(i))
			}
		}
	}
	c.tracker = fresh
	return idx
}

// mergeInterval paces the periodic merge of per-shard counters into the
// rate gauges served by Status.
const mergeInterval = time.Second

// tokenBurst is the token-bucket capacity for a budget of rate msgs/second
// at the given tick: two ticks' accrual, floored at 2 whole messages. The
// floor matters — with capacity below 1 + rate·tick, the cap truncates the
// fractional remainder on every accrual cycle, silently taxing any budget
// of 0.5–1 messages per tick down to one send every two ticks instead of
// its allocated rate. Shared by the cache dispatcher and the sync-session
// send loops, which both re-read their (possibly re-allocated) rate each
// tick.
func tokenBurst(rate float64, tick time.Duration) float64 {
	b := rate * tick.Seconds() * 2
	if b < 2 {
		return 2
	}
	return b
}

func (c *Cache) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	budget := 0.0
	batches := c.ep.Batches()
	for {
		// Gate the intake on the token bucket: with no budget left the
		// dispatcher stops reading, the transport channel fills, and
		// sources feel back-pressure.
		in := batches
		if budget < 1 {
			in = nil
		}
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			// Re-read the budget each tick: SetBandwidth may have moved it
			// (a relay re-splitting its face budgets).
			bw := c.Bandwidth()
			burst := tokenBurst(bw, c.cfg.Tick)
			budget += bw * c.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			// Surplus → positive feedback to highest-threshold sources,
			// but only when truly drained: nothing waiting at the intake
			// and nothing still queued for the shard workers. A backlogged
			// apply path must not advertise spare capacity. Cache-driven
			// policies send none: feedback is push machinery, the CGM
			// baseline has no analogue, and unaccounted feedback messages
			// would skew equal-budget policy comparisons (the poll
			// scheduler owns the whole message budget there).
			if !c.cfg.Policy.CacheDriven() &&
				len(batches) == 0 && c.outstanding.Load() == 0 && budget >= 1 {
				budget -= float64(c.sendFeedback(int(budget)))
			}
			c.maybeMergeStats()
		case b, ok := <-in:
			if !ok {
				batches = nil // endpoint closed; keep serving reads
				continue
			}
			// A batch spends one budget unit per refresh; a large batch
			// may push the bucket negative, which simply delays the next
			// intake — the same accounting a message-at-a-time drain
			// converges to.
			budget -= float64(len(b.Refreshes))
			c.dispatch(b)
		}
	}
}

// dispatch observes piggybacked thresholds and fans a batch's refreshes out
// to the owning shards. Shard-queue sends block when a worker is behind
// (back-pressure) but abort on shutdown.
func (c *Cache) dispatch(b transport.InboundBatch) {
	c.mu.Lock()
	for i := range b.Refreshes {
		r := &b.Refreshes[i]
		c.tracker.ObserveThreshold(c.sourceIndex(r.SourceID), r.Threshold)
		if r.CacheID != "" && r.CacheID != c.cfg.ID {
			// Advisory destination mismatch: still applied (the connection
			// is authoritative) but counted for operators debugging fan-out
			// wiring.
			c.misrouted++
		}
	}
	c.mu.Unlock()
	if b.Frame != nil && c.cfg.OnForward != nil {
		c.dispatchFramed(b)
		return
	}
	if b.Frame != nil {
		// Nobody downstream wants the bytes; drop the reference now rather
		// than thread it through the plain path.
		b.Frame.Release()
	}
	if c.cfg.Reject != nil {
		kept := b.Refreshes[:0]
		for _, r := range b.Refreshes {
			if !c.cfg.Reject(r) {
				kept = append(kept, r)
			}
		}
		if dropped := len(b.Refreshes) - len(kept); dropped > 0 {
			c.mu.Lock()
			c.rejected += dropped
			c.mu.Unlock()
		}
		b.Refreshes = kept
		if len(b.Refreshes) == 0 {
			return
		}
	}
	c.fanout(b.Refreshes)
}

// dispatchFramed routes a framed batch to the shards without compacting the
// refresh slice: the keep mask (not slice surgery) records Reject hits and
// stale drops, so index i of the mask, the refreshes, and the retained
// frame's encoded items always line up. The last shard worker to finish
// fires OnForward exactly once.
func (c *Cache) dispatchFramed(b transport.InboundBatch) {
	rs := b.Refreshes
	ref := c.grabBatchRef(rs, b.Frame)
	keep := ref.keep
	rejected := 0
	live := 0
	for i := range rs {
		if c.cfg.Reject != nil && c.cfg.Reject(rs[i]) {
			rejected++
			continue
		}
		keep[i] = true
		live++
	}
	if rejected > 0 {
		c.mu.Lock()
		c.rejected += rejected
		c.mu.Unlock()
	}
	if live == 0 {
		b.Frame.Release()
		ref.recycle()
		return
	}
	if len(c.shards) == 1 {
		idxs := ref.parts[0]
		for i := range rs {
			if keep[i] {
				idxs = append(idxs, i)
			}
		}
		ref.parts[0] = idxs
		ref.pending.Store(1)
		c.outstanding.Add(int64(live))
		c.enqueue(c.shards[0], applyTask{ref: ref, idxs: idxs})
		return
	}
	parts := ref.parts
	for i := range rs {
		if !keep[i] {
			continue
		}
		si := c.shardIndex(rs[i].ObjectID)
		parts[si] = append(parts[si], i)
	}
	n := int32(0)
	for _, p := range parts {
		if len(p) > 0 {
			n++
		}
	}
	ref.pending.Store(n)
	c.outstanding.Add(int64(live))
	for si, p := range parts {
		if len(p) > 0 {
			c.enqueue(c.shards[si], applyTask{ref: ref, idxs: p})
		}
	}
}

// installPolled is the poll scheduler's entry into the apply path: the
// refreshes built from a poll reply's items take the same sharded route —
// staleness guards, divergence accounting, OnApply — as pushed ones, but
// bypass the push-protocol observation (poll replies piggyback no
// thresholds and name no advisory destination). The Reject filter DOES
// apply: a poll reply from a lateral peer can carry a value this node is
// already on the path of (the peer answered before learning our identity),
// and installing it would re-circulate the cycle the intake guard exists
// to break.
func (c *Cache) installPolled(rs []wire.Refresh) {
	if c.cfg.Reject != nil {
		kept := rs[:0]
		for _, r := range rs {
			if !c.cfg.Reject(r) {
				kept = append(kept, r)
			}
		}
		if dropped := len(rs) - len(kept); dropped > 0 {
			c.mu.Lock()
			c.rejected += dropped
			c.mu.Unlock()
		}
		rs = kept
		if len(rs) == 0 {
			return
		}
	}
	c.fanout(rs)
}

// fanout routes refreshes to their owning shards' apply queues, tracking
// them as outstanding until the workers drain them. Shard-queue sends block
// when a worker is behind (back-pressure) but abort on shutdown.
func (c *Cache) fanout(rs []wire.Refresh) {
	c.outstanding.Add(int64(len(rs)))
	if len(c.shards) == 1 {
		c.enqueue(c.shards[0], applyTask{rs: rs})
		return
	}
	parts := make([][]wire.Refresh, len(c.shards))
	for _, r := range rs {
		i := c.shardIndex(r.ObjectID)
		parts[i] = append(parts[i], r)
	}
	for i, p := range parts {
		if len(p) > 0 {
			c.enqueue(c.shards[i], applyTask{rs: p})
		}
	}
}

func (c *Cache) enqueue(sh *shard, t applyTask) {
	select {
	case sh.queue <- t:
	case <-c.stop:
		// Shutdown abort: a framed batch's OnForward never fires (pending
		// never drains), stranding the frame's pool object — harmless, the
		// process is winding down.
	}
}

// worker drains one shard's queue, applying refreshes under the shard lock
// and reporting the applied ones to the OnApply hook (plain tasks) or, via
// the batch countdown, the OnForward hook (framed tasks) outside it.
func (c *Cache) worker(sh *shard) {
	defer c.wg.Done()
	for t := range sh.queue {
		now := c.cfg.Now()
		if t.ref != nil {
			ref := t.ref
			sh.mu.Lock()
			for _, i := range t.idxs {
				if !c.applyLocked(sh, ref.rs[i], now) {
					ref.keep[i] = false
				}
			}
			sh.mu.Unlock()
			c.outstanding.Add(-int64(len(t.idxs)))
			ref.done()
			continue
		}
		rs := t.rs
		var applied []wire.Refresh
		sh.mu.Lock()
		for _, r := range rs {
			if c.applyLocked(sh, r, now) && c.cfg.OnApply != nil {
				applied = append(applied, r)
			}
		}
		sh.mu.Unlock()
		if len(applied) > 0 {
			c.cfg.OnApply(applied)
		}
		c.outstanding.Add(-int64(len(rs)))
	}
}

// applyLocked installs one refresh into the shard store, reporting whether
// it was applied (false = dropped as stale). Caller holds sh.mu.
func (c *Cache) applyLocked(sh *shard, r wire.Refresh, now time.Time) bool {
	cur, ok := sh.store[r.ObjectID]
	// The (epoch, version) staleness guard is per sender: epochs from
	// different nodes are incomparable wall-clock starts, so comparing
	// them across senders would let one upstream's restart permanently
	// shadow a redundant upstream's live feed (a diamond topology). A
	// refresh from a different sender than the cached copy's is applied —
	// last writer wins across redundant feeds.
	if ok && r.SourceID == cur.Source {
		if r.Epoch == cur.Epoch && r.Version <= cur.Version {
			// Stale or duplicate within the same source incarnation: an
			// equal (epoch, version) carries the identical value by
			// construction, so re-applying it would only inflate counters —
			// and, at a relay, re-broadcast it to every child. Reconnect
			// re-sends from a peer that never restarted land here.
			sh.stats.stale++
			c.recordAckLocked(sh, r.SourceID, r.ObjectID, cur)
			return false
		}
		if r.Epoch < cur.Epoch {
			sh.stats.stale++ // message from a superseded incarnation
			c.recordAckLocked(sh, r.SourceID, r.ObjectID, cur)
			return false
		}
	}
	// The origin-axis staleness guard closes the gap the per-sender guard
	// cannot: a relay RESTART re-issues a fresh sender epoch, so its
	// re-export of a snapshot-age value would pass the guard above and
	// regress a cache that was ahead of the snapshot. The origin's own
	// (epoch, version) is preserved unchanged across hops and incarnations,
	// so for two copies from the SAME origin it is always comparable — an
	// at-or-behind copy is dropped no matter which sender incarnation
	// delivered it. Different origins stay last-writer-wins as before.
	if ok && r.OriginID() == cur.OriginID() {
		re, rv := r.OriginAxis()
		ce, cv := cur.OriginAxis()
		if re < ce || (re == ce && rv <= cv) {
			sh.stats.stale++
			c.recordAckLocked(sh, r.SourceID, r.ObjectID, cur)
			return false
		}
	}
	if ok {
		d := r.Value - cur.Value
		if d < 0 {
			d = -d
		}
		sh.stats.divergence += d
	}
	entry := Entry{
		Value:     r.Value,
		Version:   r.Version,
		Epoch:     r.Epoch,
		Source:    r.SourceID,
		Hops:      r.Hops,
		Via:       r.Via,
		Refreshed: now,
	}
	if r.Origin != "" && r.Origin != r.SourceID {
		entry.Origin = r.Origin
		entry.OriginEpoch = r.OriginEpoch
		entry.OriginVersion = r.OriginVersion
		sh.stats.peerServed++
		// Applied relayed copies are acknowledged too: the ack lets the
		// relay skip re-sending them after ITS restart (direct senders
		// need no apply-path ack — their re-sends fall into the stale
		// branches above, which ack on the spot — so the single-tier hot
		// path stays map-free).
		c.recordAckLocked(sh, r.SourceID, r.ObjectID, entry)
	}
	sh.store[r.ObjectID] = entry
	sh.stats.refreshes++
	return true
}

// recordAckLocked buffers a held-version acknowledgement toward sender:
// "for this object I hold held's origin-axis version". No-op under
// cache-driven policies — they send no feedback to carry the acks. Caller
// holds sh.mu.
func (c *Cache) recordAckLocked(sh *shard, sender, objectID string, held Entry) {
	if c.cfg.Policy.CacheDriven() {
		return
	}
	e, v := held.OriginAxis()
	if sh.acks == nil {
		sh.acks = map[string]map[string]wire.HeldVersion{}
	}
	m := sh.acks[sender]
	if m == nil {
		m = map[string]wire.HeldVersion{}
		sh.acks[sender] = m
	}
	m[objectID] = wire.HeldVersion{ObjectID: objectID, Epoch: e, Version: v}
}

// maxHeldPerFeedback bounds the held-version acks piggybacked on one
// feedback message; the excess stays buffered for the next one.
const maxHeldPerFeedback = 256

// takeAcks drains up to maxHeldPerFeedback buffered acks toward sourceID.
func (c *Cache) takeAcks(sourceID string) []wire.HeldVersion {
	var out []wire.HeldVersion
	for _, sh := range c.shards {
		sh.mu.Lock()
		if m := sh.acks[sourceID]; m != nil {
			for obj, h := range m {
				if len(out) >= maxHeldPerFeedback {
					break
				}
				out = append(out, h)
				delete(m, obj)
			}
		}
		sh.mu.Unlock()
		if len(out) >= maxHeldPerFeedback {
			break
		}
	}
	return out
}

// maybeMergeStats periodically folds the per-shard counters into the rate
// gauges exposed by Status/ApplyRate.
func (c *Cache) maybeMergeStats() {
	now := c.cfg.Now()
	c.rateMu.Lock()
	elapsed := now.Sub(c.lastMerge.at)
	if elapsed < mergeInterval {
		c.rateMu.Unlock()
		return
	}
	prev := c.lastMerge
	c.rateMu.Unlock()

	total := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		total += sh.stats.refreshes
		sh.mu.Unlock()
	}

	c.rateMu.Lock()
	c.applyRate = float64(total-prev.refreshes) / elapsed.Seconds()
	c.lastMerge = mergeMark{at: now, refreshes: total}
	c.rateMu.Unlock()
}

// sendFeedback spends up to k surplus units on feedback messages and
// returns how many were sent. Connected sources the cache has not yet heard
// a refresh from rank first: their local thresholds are unknown and possibly
// stuck above all their priorities (the warm-up case), and only feedback can
// bring them down.
func (c *Cache) sendFeedback(k int) int {
	connected := c.ep.Sources()
	c.mu.Lock()
	for _, id := range connected {
		c.sourceIndex(id)
	}
	if c.tracker == nil {
		c.mu.Unlock()
		return 0
	}
	targets := c.tracker.PickFeedbackTargets(k, false)
	ids := make([]string, 0, len(targets))
	for _, idx := range targets {
		ids = append(ids, c.srcIDs[idx])
	}
	c.mu.Unlock()
	sent := 0
	now := c.cfg.Now().UnixNano()
	for _, id := range ids {
		// Piggyback pending held-version acks (best effort: a lost
		// feedback loses its acks, and the origin-axis staleness guard —
		// not the ack channel — is what guarantees no regression).
		fb := wire.Feedback{CacheID: c.cfg.ID, Held: c.takeAcks(id), SentUnix: now}
		if err := c.ep.SendFeedback(id, fb); err == nil {
			sent++
		}
	}
	c.mu.Lock()
	c.fbSent += sent
	c.mu.Unlock()
	return sent
}
