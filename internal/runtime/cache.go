// Package runtime is a live, goroutine-based implementation of the paper's
// cooperative synchronization protocol, reusing the pure protocol logic of
// internal/core. A Cache node consumes refresh messages under a token-bucket
// processing budget (the cache-side bandwidth) and spends surplus budget on
// positive feedback to the highest-threshold sources; Source nodes watch
// locally updated objects, rank them with the Section 3 priority functions,
// and send those above their adaptive local threshold.
//
// Wall-clock time replaces the simulator's virtual clock; everything else —
// the α/ω/β threshold rules, piggybacked thresholds, surplus-driven feedback
// — is the same code path exercised by the experiments.
package runtime

import (
	"sync"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// CacheConfig configures a live cache node.
type CacheConfig struct {
	// Bandwidth is the refresh-processing budget in messages/second.
	Bandwidth float64
	// Tick is the protocol interval (default 100 ms): budget accrual,
	// surplus detection and feedback all run once per tick.
	Tick time.Duration
	// Params tunes the threshold algorithm; zero means paper defaults.
	Params core.Params
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Entry is one cached object copy.
type Entry struct {
	Value     float64
	Version   uint64
	Epoch     int64 // source incarnation the version belongs to
	Source    string
	Refreshed time.Time
}

// CacheStats counts protocol activity.
type CacheStats struct {
	Refreshes int
	Feedbacks int
	Sources   int
}

// Cache is a live cache node.
type Cache struct {
	cfg CacheConfig
	ep  transport.CacheEndpoint

	mu      sync.Mutex
	store   map[string]Entry
	tracker *core.Cache // threshold tracking, sized dynamically
	srcIdx  map[string]int
	srcIDs  []string
	stats   CacheStats

	stop chan struct{}
	done chan struct{}
}

// NewCache starts a cache node consuming from ep. Close the cache (not the
// endpoint) to shut down.
func NewCache(cfg CacheConfig, ep transport.CacheEndpoint) *Cache {
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams(1, cfg.Bandwidth)
	}
	c := &Cache{
		cfg:    cfg,
		ep:     ep,
		store:  map[string]Entry{},
		srcIdx: map[string]int{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.loop()
	return c
}

// Get returns the cached copy of an object.
func (c *Cache) Get(objectID string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.store[objectID]
	return e, ok
}

// Len returns the number of cached objects.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.store)
}

// Stats returns a snapshot of protocol counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Sources = len(c.srcIdx)
	return s
}

// Close stops the cache loop.
func (c *Cache) Close() error {
	select {
	case <-c.stop:
		return nil
	default:
	}
	close(c.stop)
	<-c.done
	return nil
}

// sourceIndex interns a source id for the core threshold tracker.
func (c *Cache) sourceIndex(id string) int {
	if idx, ok := c.srcIdx[id]; ok {
		return idx
	}
	idx := len(c.srcIDs)
	c.srcIdx[id] = idx
	c.srcIDs = append(c.srcIDs, id)
	// Re-size the tracker preserving nothing: thresholds re-learn from the
	// next piggybacks, which arrive with every refresh.
	fresh := core.NewCache(len(c.srcIDs))
	if c.tracker != nil {
		for i := 0; i < idx; i++ {
			if th, heard := c.tracker.KnownThreshold(i); heard {
				fresh.ObserveThreshold(i, th)
			}
		}
	}
	c.tracker = fresh
	return idx
}

func (c *Cache) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	budget := 0.0
	burst := c.cfg.Bandwidth * c.cfg.Tick.Seconds() * 2
	if burst < 1 {
		burst = 1
	}
	refreshes := c.ep.Refreshes()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			budget += c.cfg.Bandwidth * c.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			// Drain refreshes up to the budget.
			drained := false
			for budget >= 1 {
				select {
				case r := <-refreshes:
					c.apply(r)
					budget--
				default:
					drained = true
				}
				if drained {
					break
				}
			}
			// Surplus → positive feedback to highest-threshold sources.
			if drained && budget >= 1 {
				budget -= float64(c.sendFeedback(int(budget)))
			}
		}
	}
}

// apply installs one refresh into the store.
func (c *Cache) apply(r wire.Refresh) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.store[r.ObjectID]
	if ok && r.Epoch == cur.Epoch && r.Version < cur.Version {
		return // stale duplicate within the same source incarnation
	}
	if ok && r.Epoch < cur.Epoch {
		return // message from a superseded incarnation
	}
	c.store[r.ObjectID] = Entry{
		Value:     r.Value,
		Version:   r.Version,
		Epoch:     r.Epoch,
		Source:    r.SourceID,
		Refreshed: c.cfg.Now(),
	}
	c.tracker.ObserveThreshold(c.sourceIndex(r.SourceID), r.Threshold)
	c.stats.Refreshes++
}

// sendFeedback spends up to k surplus units on feedback messages and
// returns how many were sent. Connected sources the cache has not yet heard
// a refresh from rank first: their local thresholds are unknown and possibly
// stuck above all their priorities (the warm-up case), and only feedback can
// bring them down.
func (c *Cache) sendFeedback(k int) int {
	connected := c.ep.Sources()
	c.mu.Lock()
	for _, id := range connected {
		c.sourceIndex(id)
	}
	if c.tracker == nil {
		c.mu.Unlock()
		return 0
	}
	targets := c.tracker.PickFeedbackTargets(k, false)
	ids := make([]string, 0, len(targets))
	for _, idx := range targets {
		ids = append(ids, c.srcIDs[idx])
	}
	c.mu.Unlock()
	sent := 0
	for _, id := range ids {
		if err := c.ep.SendFeedback(id); err == nil {
			sent++
		}
	}
	c.mu.Lock()
	c.stats.Feedbacks += sent
	c.mu.Unlock()
	return sent
}
