package runtime

import (
	"slices"
	"sync"

	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// deadConn stands in for a destination that could not be dialed at
// construction: every send fails and the feedback (and poll) channels are
// already closed, so the owning session falls straight into its
// redial-with-backoff loop and connects once the peer comes up.
type deadConn struct {
	fb    chan wire.Feedback
	polls chan wire.Poll
}

func newDeadConn() *deadConn {
	c := &deadConn{fb: make(chan wire.Feedback), polls: make(chan wire.Poll)}
	close(c.fb)
	close(c.polls)
	return c
}

func (c *deadConn) SendRefresh(wire.Refresh) error { return transport.ErrClosed }
func (c *deadConn) SendBatch([]wire.Refresh) error { return transport.ErrClosed }
func (c *deadConn) Feedback() <-chan wire.Feedback { return c.fb }
func (c *deadConn) Polls() <-chan wire.Poll        { return c.polls }
func (c *deadConn) SendReply(wire.PollReply) error { return transport.ErrClosed }
func (c *deadConn) Close() error                   { return nil }

// DialDestinations dials every address and builds the fan-out destinations
// a daemon passes to NewFanoutSource or NewRelay: each connection is
// wrapped via wrap (nil = use as-is, e.g. pass a transport.Batcher
// constructor for batched framing) and gets a Redial closure that re-dials
// and re-wraps the same way, so sessions survive peer restarts. weights[i]
// is the destination's Section 7 share weight (0 or a nil slice = default,
// equal shares).
//
// An address that cannot be dialed right now does NOT fail the whole set —
// a node must not refuse to boot because one peer is down when its sessions
// can redial with backoff anyway. Such destinations start on a dead stub
// connection (the session connects on its first redial) and are returned in
// deferred so the caller can log them.
//
// Addresses are dialed concurrently (bounded at dialConcurrency) so a
// 1k-destination boot takes one connect round-trip, not the sum of them;
// the returned destinations keep the address order, and deferred is sorted
// for stable logs.
//
// This is the one place the sourceagent and cachesyncd daemons build their
// destination sets, so the wrap/redial semantics cannot drift between them.
func DialDestinations(addrs []string, weights []float64, sourceID string, wrap func(transport.SourceConn) transport.SourceConn) (dests []Destination, deferred []string) {
	if wrap == nil {
		wrap = func(c transport.SourceConn) transport.SourceConn { return c }
	}
	dests = make([]Destination, len(addrs))
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex // guards deferred
		sem = make(chan struct{}, dialConcurrency)
	)
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w := 0.0
			if weights != nil {
				w = weights[i]
			}
			var conn transport.SourceConn
			if c, err := transport.Dial(addr, sourceID); err == nil {
				conn = wrap(c)
			} else {
				conn = newDeadConn()
				mu.Lock()
				deferred = append(deferred, addr)
				mu.Unlock()
			}
			dests[i] = Destination{
				CacheID: addr,
				Conn:    conn,
				Weight:  w,
				Redial: func() (transport.SourceConn, error) {
					c, err := transport.Dial(addr, sourceID)
					if err != nil {
						return nil, err
					}
					return wrap(c), nil
				},
			}
		}(i, addr)
	}
	wg.Wait()
	slices.Sort(deferred)
	return dests, deferred
}

// dialConcurrency bounds the parallel connection attempts DialDestinations
// and transport.DialAll make at once — enough to amortize connect latency
// across a 10k-destination boot without an unbounded goroutine/file-
// descriptor burst.
const dialConcurrency = 64
