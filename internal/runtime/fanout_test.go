package runtime

import (
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

// TestFanoutLocalThreeCaches: one source drives three in-process caches;
// every cache converges to the source's final values, and each session
// reports independent activity.
func TestFanoutLocalThreeCaches(t *testing.T) {
	const n = 3
	nets := make([]*transport.Local, n)
	caches := make([]*Cache, n)
	dests := make([]Destination, n)
	for i := 0; i < n; i++ {
		nets[i] = transport.NewLocal(64)
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("cache-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, nets[i])
		defer caches[i].Close()
		conn, err := nets[i].Dial("s1")
		if err != nil {
			t.Fatal(err)
		}
		dests[i] = Destination{CacheID: fmt.Sprintf("cache-%d", i), Conn: conn}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("temp", 21.5)
	src.Update("humidity", 0.4)
	src.Update("temp", 22.0)

	for i := 0; i < n; i++ {
		i := i
		waitFor(t, 2*time.Second, func() bool {
			e, ok := caches[i].Get("temp")
			return ok && e.Value == 22.0
		}, fmt.Sprintf("cache %d temp to reach 22.0", i))
		waitFor(t, 2*time.Second, func() bool {
			e, ok := caches[i].Get("humidity")
			return ok && e.Value == 0.4
		}, fmt.Sprintf("cache %d humidity to reach 0.4", i))
	}

	st := src.Stats()
	if len(st.Sessions) != n {
		t.Fatalf("sessions = %d, want %d", len(st.Sessions), n)
	}
	total := 0
	for i, sess := range st.Sessions {
		if sess.Refreshes < 2 {
			t.Errorf("session %d sent %d refreshes, want ≥ 2", i, sess.Refreshes)
		}
		if sess.CacheID != fmt.Sprintf("cache-%d", i) {
			t.Errorf("session %d cache id = %q", i, sess.CacheID)
		}
		total += sess.Refreshes
	}
	if st.Refreshes != total {
		t.Errorf("aggregate refreshes %d ≠ sum of sessions %d", st.Refreshes, total)
	}
}

// TestFanoutTCPEndToEnd is the 1 source → 3 caches TCP topology end to end:
// real listeners, real wire protocol, per-cache feedback and independently
// converging thresholds.
func TestFanoutTCPEndToEnd(t *testing.T) {
	const n = 3
	caches := make([]*Cache, n)
	eps := make([]transport.CacheEndpoint, n)
	addrs := make([]string, n)
	// Cache 0 is starved (tiny budget) while 1 and 2 have plenty: their
	// sessions must converge to different thresholds.
	bws := []float64{30, 10000, 10000}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = transport.Serve(ln, 64)
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("tcp-cache-%d", i), Bandwidth: bws[i],
			Tick: 5 * time.Millisecond,
		}, eps[i])
		addrs[i] = ln.Addr().String()
		defer func(i int) {
			caches[i].Close()
			eps[i].Close()
		}(i)
	}

	conns, err := transport.DialAll(addrs, "agent-1")
	if err != nil {
		t.Fatal(err)
	}
	dests := make([]Destination, n)
	for i, c := range conns {
		dests[i] = Destination{CacheID: fmt.Sprintf("dest-%d", i), Conn: c}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "agent-1", Metric: metric.ValueDeviation,
		Bandwidth: 3000, Tick: 5 * time.Millisecond,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for round := 1; round <= 5; round++ {
		for k := 0; k < 4; k++ {
			src.Update(fmt.Sprintf("agent-1/val-%d", k), float64(round*10+k))
		}
		time.Sleep(20 * time.Millisecond)
	}

	for i := 0; i < n; i++ {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			for k := 0; k < 4; k++ {
				e, ok := caches[i].Get(fmt.Sprintf("agent-1/val-%d", k))
				if !ok || e.Value != float64(50+k) {
					return false
				}
			}
			return true
		}, fmt.Sprintf("cache %d to hold all final values", i))
		if st := caches[i].Stats(); st.Sources != 1 {
			t.Errorf("cache %d sees %d sources, want 1", i, st.Sources)
		}
	}

	// The well-provisioned caches have surplus bandwidth, so their sessions
	// must have heard feedback and learned the remote identity.
	waitFor(t, 5*time.Second, func() bool {
		st := src.Stats()
		return st.Sessions[1].Feedbacks > 0 && st.Sessions[2].Feedbacks > 0
	}, "feedback on the fast sessions")
	st := src.Stats()
	for _, i := range []int{1, 2} {
		if got := st.Sessions[i].RemoteID; got != fmt.Sprintf("tcp-cache-%d", i) {
			t.Errorf("session %d learned remote id %q, want tcp-cache-%d", i, got, i)
		}
	}
	// Sessions converge independently: the starved cache's session must not
	// share the threshold trajectory of the fast ones. (Feedback drops a
	// threshold by ω=10 per message, so any feedback disparity separates
	// them by orders of magnitude; just assert they are not locked together.)
	if st.Sessions[0].Threshold == st.Sessions[1].Threshold &&
		st.Sessions[0].Feedbacks != st.Sessions[1].Feedbacks {
		t.Errorf("independent sessions report identical thresholds %v despite different feedback (%d vs %d)",
			st.Sessions[0].Threshold, st.Sessions[0].Feedbacks, st.Sessions[1].Feedbacks)
	}
}

// TestFanoutShareAllocation: Section 7 share weights divide the send budget
// proportionally.
func TestFanoutShareAllocation(t *testing.T) {
	nets := make([]*transport.Local, 2)
	dests := make([]Destination, 2)
	for i := range nets {
		nets[i] = transport.NewLocal(64)
		conn, err := nets[i].Dial("s1")
		if err != nil {
			t.Fatal(err)
		}
		dests[i] = Destination{Conn: conn, Weight: float64(i*2 + 1)} // 1 and 3
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation, Bandwidth: 100,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	st := src.Stats()
	if got := st.Sessions[0].Share; math.Abs(got-25) > 1e-9 {
		t.Errorf("session 0 share = %v, want 25", got)
	}
	if got := st.Sessions[1].Share; math.Abs(got-75) > 1e-9 {
		t.Errorf("session 1 share = %v, want 75", got)
	}
	if st.Sessions[0].CacheID != "cache-0" || st.Sessions[1].CacheID != "cache-1" {
		t.Errorf("default cache ids = %q, %q", st.Sessions[0].CacheID, st.Sessions[1].CacheID)
	}
}

// TestFanoutRespectsAggregateBudget: with a tiny total budget split across
// three fast caches, the aggregate send rate stays within the budget (plus
// burst slack) instead of tripling.
func TestFanoutRespectsAggregateBudget(t *testing.T) {
	const n = 3
	const bandwidth = 40.0 // msgs/s total across all sessions
	nets := make([]*transport.Local, n)
	caches := make([]*Cache, n)
	dests := make([]Destination, n)
	for i := 0; i < n; i++ {
		nets[i] = transport.NewLocal(64)
		caches[i] = NewCache(CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond}, nets[i])
		defer caches[i].Close()
		conn, err := nets[i].Dial("s1")
		if err != nil {
			t.Fatal(err)
		}
		dests[i] = Destination{Conn: conn}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: bandwidth, Tick: 5 * time.Millisecond,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Flood with updates for a fixed window.
	const window = 500 * time.Millisecond
	start := time.Now()
	v := 0.0
	for time.Since(start) < window {
		v++
		for k := 0; k < 8; k++ {
			src.Update(fmt.Sprintf("obj-%d", k), v)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	st := src.Stats()
	// Budget + one burst of slack per session (burst = 2 ticks of share,
	// with a floor of 1 message).
	limit := bandwidth*elapsed + 2*n
	if float64(st.Refreshes) > limit {
		t.Errorf("sent %d refreshes in %.2fs: exceeds shared budget %.0f msgs/s (limit %.0f)",
			st.Refreshes, elapsed, bandwidth, limit)
	}
	if st.Refreshes == 0 {
		t.Error("no refreshes at all")
	}
}
