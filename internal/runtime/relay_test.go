package runtime

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// TestRelayThreeTierLocal is the hierarchy smoke test on the in-process
// transport: source → relay → 2 leaves. Updates applied at the relay are
// re-exported and must converge on every leaf, with provenance (origin
// source, hop count) recorded on the leaf copies.
func TestRelayThreeTierLocal(t *testing.T) {
	const leaves = 2
	leafNets := make([]*transport.Local, leaves)
	leafCaches := make([]*Cache, leaves)
	children := make([]Destination, leaves)
	for i := 0; i < leaves; i++ {
		leafNets[i] = transport.NewLocal(64)
		leafCaches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("leaf-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, leafNets[i])
		defer leafCaches[i].Close()
		conn, err := leafNets[i].Dial("relay-1")
		if err != nil {
			t.Fatal(err)
		}
		children[i] = Destination{CacheID: fmt.Sprintf("leaf-%d", i), Conn: conn}
	}

	upNet := transport.NewLocal(64)
	relay, err := NewRelay(RelayConfig{
		ID:             "relay-1",
		Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		ChildBandwidth: 10000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
	}, upNet, children)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	upConn, err := upNet.Dial("root-src")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "root-src", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, []Destination{{CacheID: "relay-1", Conn: upConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("root-src/temp", 21.5)
	src.Update("root-src/humidity", 0.4)
	src.Update("root-src/temp", 22.0)

	// The relay tier converges first...
	waitFor(t, 2*time.Second, func() bool {
		e, ok := relay.Get("root-src/temp")
		return ok && e.Value == 22.0
	}, "relay to apply the final temp")
	// ...and every leaf converges through it.
	for i := 0; i < leaves; i++ {
		i := i
		waitFor(t, 2*time.Second, func() bool {
			e, ok := leafCaches[i].Get("root-src/temp")
			return ok && e.Value == 22.0
		}, fmt.Sprintf("leaf %d temp via relay", i))
		waitFor(t, 2*time.Second, func() bool {
			e, ok := leafCaches[i].Get("root-src/humidity")
			return ok && e.Value == 0.4
		}, fmt.Sprintf("leaf %d humidity via relay", i))
	}

	// Provenance: the relay's copy came one hop from the origin source; the
	// leaf copies came from the relay but kept the origin and crossed one
	// relay tier.
	if e, _ := relay.Get("root-src/temp"); e.Source != "root-src" || e.Origin != "" || e.Hops != 0 {
		t.Errorf("relay entry provenance = source %q origin %q hops %d, want root-src/(empty)/0",
			e.Source, e.Origin, e.Hops)
	}
	for i := 0; i < leaves; i++ {
		e, _ := leafCaches[i].Get("root-src/temp")
		if e.Source != "relay-1" || e.Origin != "root-src" || e.Hops != 1 {
			t.Errorf("leaf %d entry provenance = source %q origin %q hops %d, want relay-1/root-src/1",
				i, e.Source, e.Origin, e.Hops)
		}
	}

	st := relay.Stats()
	if st.Forwarded < 2 {
		t.Errorf("relay forwarded %d refreshes, want ≥ 2", st.Forwarded)
	}
	if st.Looped != 0 || st.HopLimited != 0 {
		t.Errorf("unexpected drops: looped=%d hopLimited=%d", st.Looped, st.HopLimited)
	}
	if st.Upstream.Refreshes < 2 {
		t.Errorf("relay upstream applied %d refreshes, want ≥ 2", st.Upstream.Refreshes)
	}
	if len(st.Downstream.Sessions) != leaves {
		t.Fatalf("relay runs %d child sessions, want %d", len(st.Downstream.Sessions), leaves)
	}
	for i, sess := range st.Downstream.Sessions {
		if sess.Refreshes < 2 {
			t.Errorf("child session %d sent %d refreshes, want ≥ 2", i, sess.Refreshes)
		}
	}
}

// TestRelayThreeTierTCP is the full 3-tier chain over real TCP: a source
// dials the relay's listener, the relay dials two leaf listeners, and
// two-hop feedback (leaf → relay session, relay cache → source session)
// flows back up.
func TestRelayThreeTierTCP(t *testing.T) {
	const leaves = 2
	leafCaches := make([]*Cache, leaves)
	leafEps := make([]transport.CacheEndpoint, leaves)
	children := make([]Destination, leaves)
	for i := 0; i < leaves; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		leafEps[i] = transport.Serve(ln, 64)
		leafCaches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("tcp-leaf-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, leafEps[i])
		conn, err := transport.Dial(ln.Addr().String(), "tcp-relay")
		if err != nil {
			t.Fatal(err)
		}
		children[i] = Destination{CacheID: fmt.Sprintf("tcp-leaf-%d", i), Conn: conn}
		defer func(i int) {
			leafCaches[i].Close()
			leafEps[i].Close()
		}(i)
	}

	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upEp := transport.Serve(upLn, 64)
	defer upEp.Close()
	relay, err := NewRelay(RelayConfig{
		ID:             "tcp-relay",
		Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		ChildBandwidth: 10000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
	}, upEp, children)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	srcConn, err := transport.Dial(upLn.Addr().String(), "tcp-root")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "tcp-root", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
	}, []Destination{{CacheID: "tcp-relay", Conn: srcConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for round := 1; round <= 5; round++ {
		for k := 0; k < 4; k++ {
			src.Update(fmt.Sprintf("tcp-root/val-%d", k), float64(round*10+k))
		}
		time.Sleep(20 * time.Millisecond)
	}

	for i := 0; i < leaves; i++ {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			for k := 0; k < 4; k++ {
				e, ok := leafCaches[i].Get(fmt.Sprintf("tcp-root/val-%d", k))
				if !ok || e.Value != float64(50+k) {
					return false
				}
			}
			return true
		}, fmt.Sprintf("leaf %d to hold all final values through the relay", i))
		if e, _ := leafCaches[i].Get("tcp-root/val-0"); e.Origin != "tcp-root" || e.Hops != 1 {
			t.Errorf("leaf %d provenance = origin %q hops %d, want tcp-root/1", i, e.Origin, e.Hops)
		}
	}

	// Feedback composes across tiers: well-provisioned leaves feed the
	// relay's child sessions, and the relay's surplus feeds the source.
	waitFor(t, 5*time.Second, func() bool {
		rst := relay.Stats()
		if rst.Downstream.Feedbacks == 0 || rst.Upstream.Feedbacks == 0 {
			return false
		}
		return src.Stats().Feedbacks > 0
	}, "feedback on both tiers")
	rst := relay.Stats()
	for i, sess := range rst.Downstream.Sessions {
		if sess.RemoteID != fmt.Sprintf("tcp-leaf-%d", i) && sess.Feedbacks > 0 {
			t.Errorf("child session %d learned remote id %q, want tcp-leaf-%d", i, sess.RemoteID, i)
		}
	}
	if got := src.Stats().Sessions[0].RemoteID; got != "tcp-relay" {
		t.Errorf("source session learned remote id %q, want tcp-relay", got)
	}
}

// TestRelayLoopAvoidance: a refresh that crossed a topology cycle — the
// relay is its origin or already on its path vector — is rejected at
// intake: never applied (a cycled copy re-issued under the peer's newer
// epoch would capture the entry) and never re-exported.
func TestRelayLoopAvoidance(t *testing.T) {
	leafNet := transport.NewLocal(16)
	leaf := NewCache(CacheConfig{ID: "leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
	defer leaf.Close()
	childConn, err := leafNet.Dial("relay-x")
	if err != nil {
		t.Fatal(err)
	}

	upNet := transport.NewLocal(16)
	relay, err := NewRelay(RelayConfig{
		ID:             "relay-x",
		Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		ChildBandwidth: 10000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
	}, upNet, []Destination{{CacheID: "leaf", Conn: childConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	up, err := upNet.Dial("peer-relay")
	if err != nil {
		t.Fatal(err)
	}
	// A refresh that originated on relay-x and looped through a peer tier.
	looped := wire.Refresh{
		SourceID: "peer-relay", ObjectID: "relay-x/own-obj",
		Origin: "relay-x", Hops: 2, Value: 7, Version: 1, Epoch: 1,
	}
	if err := up.SendRefresh(looped); err != nil {
		t.Fatal(err)
	}
	// The realistic cycle case (A→B→A): the origin is the root source at
	// every hop, but relay-x already appears on the path vector — the Via
	// check, not the origin check, must catch it.
	if err := up.SendRefresh(wire.Refresh{
		SourceID: "peer-relay", ObjectID: "root/cycled-obj",
		Origin: "root", Hops: 2, Via: []string{"relay-x", "peer-relay"},
		Value: 5, Version: 1, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A normal refresh from the peer for contrast.
	if err := up.SendRefresh(wire.Refresh{
		SourceID: "peer-relay", ObjectID: "peer-relay/obj",
		Value: 3, Version: 1, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, func() bool {
		st := relay.Stats()
		return st.Looped == 2 && st.Forwarded == 1
	}, "loop rejects (origin + path) and normal forward to be counted")
	// Cycled refreshes are rejected before the store: applying one would
	// let the peer's re-issued epoch capture the entry.
	if _, ok := relay.Get("relay-x/own-obj"); ok {
		t.Error("origin-looped refresh was applied to the relay store")
	}
	if _, ok := relay.Get("root/cycled-obj"); ok {
		t.Error("path-cycled refresh was applied to the relay store")
	}
	if got := relay.Stats().Upstream.Rejected; got != 2 {
		t.Errorf("upstream rejected = %d, want 2", got)
	}
	// Only the non-looped object ever reaches the leaf, carrying the
	// relay on its path vector.
	waitFor(t, 2*time.Second, func() bool {
		e, ok := leaf.Get("peer-relay/obj")
		return ok && e.Value == 3
	}, "non-looped object at the leaf")
	if e, _ := leaf.Get("peer-relay/obj"); len(e.Via) != 1 || e.Via[0] != "relay-x" {
		t.Errorf("leaf entry path = %v, want [relay-x]", e.Via)
	}
	if _, ok := leaf.Get("relay-x/own-obj"); ok {
		t.Error("origin-looped refresh was re-exported to the leaf")
	}
	if _, ok := leaf.Get("root/cycled-obj"); ok {
		t.Error("path-cycled refresh was re-exported to the leaf")
	}
}

// TestRelayCycleTerminates wires a genuine cycle — relay A and relay B are
// each other's children — and proves an update entering at A converges
// instead of circulating: B applies A's re-export and forwards it back,
// A rejects the returning copy via the path check, and A's store keeps the
// direct entry so later direct refreshes are not shadowed by B's re-issued
// epoch.
func TestRelayCycleTerminates(t *testing.T) {
	upA := transport.NewLocal(16)
	upB := transport.NewLocal(16)
	connAtoB, err := upB.Dial("relay-a") // A's child session → B's upstream
	if err != nil {
		t.Fatal(err)
	}
	connBtoA, err := upA.Dial("relay-b") // B's child session → A's upstream
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, up transport.CacheEndpoint, child transport.SourceConn, childID string) *Relay {
		relay, err := NewRelay(RelayConfig{
			ID:             id,
			Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
			ChildBandwidth: 10000,
			Metric:         metric.ValueDeviation,
			Tick:           5 * time.Millisecond,
		}, up, []Destination{{CacheID: childID, Conn: child}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { relay.Close() })
		return relay
	}
	relayA := mk("relay-a", upA, connAtoB, "relay-b")
	relayB := mk("relay-b", upB, connBtoA, "relay-a")

	src, err := upA.Dial("root")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SendRefresh(wire.Refresh{
		SourceID: "root", ObjectID: "root/x", Value: 11, Version: 1, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// A applies and forwards to B; B applies and schedules the value back
	// toward A. Depending on timing, B either sends it (A rejects it at
	// intake: Looped) or has already learned A's identity from feedback
	// and suppresses the send entirely (split horizon) — both terminate
	// the cycle.
	waitFor(t, 2*time.Second, func() bool {
		a, b := relayA.Stats(), relayB.Stats()
		return a.Forwarded == 1 && b.Forwarded == 1
	}, "one forward per relay")
	waitFor(t, 2*time.Second, func() bool {
		e, ok := relayB.Get("root/x")
		return ok && e.Value == 11
	}, "relay B to hold the one-hop copy")
	if e, ok := relayA.Get("root/x"); !ok || e.Source != "root" || e.Hops != 0 {
		t.Errorf("relay A entry = %+v ok=%v, want the direct copy from root", e, ok)
	}
	if e, _ := relayB.Get("root/x"); e.Source != "relay-a" || e.Hops != 1 {
		t.Errorf("relay B entry = %+v, want the one-hop copy via relay-a", e)
	}

	// Once B has learned A's identity from feedback, split horizon stops
	// even the guaranteed-rejected sends: further updates circulate
	// exactly once and generate no new loop traffic at all.
	waitFor(t, 5*time.Second, func() bool {
		sess := relayB.Stats().Downstream.Sessions
		return len(sess) == 1 && sess[0].RemoteID == "relay-a"
	}, "relay B to learn relay A's identity")
	loopedBefore := relayA.Stats().Looped
	// A later direct update must still land at A (its entry was never
	// captured by B's re-issued epoch) and propagate to B.
	if err := src.SendRefresh(wire.Refresh{
		SourceID: "root", ObjectID: "root/x", Value: 12, Version: 2, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		a, _ := relayA.Get("root/x")
		b, _ := relayB.Get("root/x")
		return a.Value == 12 && b.Value == 12
	}, "the direct update to propagate around the cycle exactly once")
	time.Sleep(100 * time.Millisecond) // window for any (wrong) loop send
	if got := relayA.Stats().Looped; got != loopedBefore {
		t.Errorf("loop rejections grew %d → %d after split horizon engaged", loopedBefore, got)
	}
}

// TestRelayHopLimit: forwarding stops once a refresh has crossed MaxHops
// relay tiers — the flood-suppression backstop for deep or miswired
// topologies.
func TestRelayHopLimit(t *testing.T) {
	leafNet := transport.NewLocal(16)
	leaf := NewCache(CacheConfig{ID: "leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
	defer leaf.Close()
	childConn, err := leafNet.Dial("relay-h")
	if err != nil {
		t.Fatal(err)
	}

	upNet := transport.NewLocal(16)
	relay, err := NewRelay(RelayConfig{
		ID:             "relay-h",
		Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		ChildBandwidth: 10000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
		MaxHops:        2,
	}, upNet, []Destination{{CacheID: "leaf", Conn: childConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	up, err := upNet.Dial("upstream-relay")
	if err != nil {
		t.Fatal(err)
	}
	// Already crossed 2 tiers: forwarding would make it 3 > MaxHops.
	if err := up.SendRefresh(wire.Refresh{
		SourceID: "upstream-relay", ObjectID: "root/deep-obj",
		Origin: "root", Hops: 2, Value: 9, Version: 1, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// One tier so far: forwarding makes it 2 = MaxHops, still allowed.
	if err := up.SendRefresh(wire.Refresh{
		SourceID: "upstream-relay", ObjectID: "root/shallow-obj",
		Origin: "root", Hops: 1, Value: 4, Version: 1, Epoch: 1,
	}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, func() bool {
		st := relay.Stats()
		return st.HopLimited == 1 && st.Forwarded == 1
	}, "hop-limit drop and in-limit forward to be counted")
	waitFor(t, 2*time.Second, func() bool {
		e, ok := leaf.Get("root/shallow-obj")
		return ok && e.Value == 4 && e.Hops == 2 && e.Origin == "root"
	}, "in-limit object at the leaf with hops=2")
	if _, ok := leaf.Get("root/deep-obj"); ok {
		t.Error("hop-limited refresh was re-exported to the leaf")
	}
	if e, ok := relay.Get("root/deep-obj"); !ok || e.Value != 9 {
		t.Errorf("hop-limited refresh must still be applied locally: %+v ok=%v", e, ok)
	}
}

// TestRelayReexportStore: snapshot loading bypasses the apply hook, so a
// relay restarted from a snapshot must explicitly re-seed its children —
// ReexportStore pushes every restored entry through the normal re-export
// path, guards included.
func TestRelayReexportStore(t *testing.T) {
	newRelayWithLeaf := func(id string) (*Relay, *Cache, transport.SourceConn) {
		leafNet := transport.NewLocal(16)
		leaf := NewCache(CacheConfig{ID: id + "-leaf", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
		t.Cleanup(func() { leaf.Close() })
		childConn, err := leafNet.Dial(id)
		if err != nil {
			t.Fatal(err)
		}
		upNet := transport.NewLocal(16)
		relay, err := NewRelay(RelayConfig{
			ID:             id,
			Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
			ChildBandwidth: 10000,
			Metric:         metric.ValueDeviation,
			Tick:           5 * time.Millisecond,
		}, upNet, []Destination{{CacheID: id + "-leaf", Conn: childConn}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { relay.Close() })
		up, err := upNet.Dial("root")
		if err != nil {
			t.Fatal(err)
		}
		return relay, leaf, up
	}

	// Populate the first relay from upstream, snapshot its store.
	relay1, _, up1 := newRelayWithLeaf("gen1")
	for k := 0; k < 3; k++ {
		if err := up1.SendRefresh(wire.Refresh{
			SourceID: "root", ObjectID: fmt.Sprintf("root/obj-%d", k),
			Value: float64(10 + k), Version: 1, Epoch: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return relay1.Len() == 3 }, "relay 1 to apply the objects")
	var buf bytes.Buffer
	if err := relay1.Cache().SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh relay restores the snapshot: the store is populated but the
	// children know nothing until ReexportStore runs.
	relay2, leaf2, _ := newRelayWithLeaf("gen2")
	if err := relay2.Cache().LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if relay2.Len() != 3 {
		t.Fatalf("restored %d objects, want 3", relay2.Len())
	}
	if fwd := relay2.Stats().Forwarded; fwd != 0 {
		t.Fatalf("snapshot load alone forwarded %d refreshes, want 0", fwd)
	}
	relay2.ReexportStore()
	for k := 0; k < 3; k++ {
		k := k
		waitFor(t, 2*time.Second, func() bool {
			e, ok := leaf2.Get(fmt.Sprintf("root/obj-%d", k))
			return ok && e.Value == float64(10+k) && e.Origin == "root" && e.Hops == 1
		}, fmt.Sprintf("restored obj-%d at the new relay's leaf", k))
	}
	if st := relay2.Stats(); st.Forwarded != 3 {
		t.Errorf("re-exported %d restored objects, want 3", st.Forwarded)
	}
}

// TestRelaySuppressesReexportWithoutChildren: a relay whose children are
// all gone must stop paying the re-export path for every apply batch — and
// the first child to attach afterwards must still receive everything the
// suppressed batches carried (seeded from the store).
func TestRelaySuppressesReexportWithoutChildren(t *testing.T) {
	leafNet := transport.NewLocal(16)
	leaf := NewCache(CacheConfig{ID: "leaf-a", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNet)
	defer leaf.Close()
	childConn, err := leafNet.Dial("relay-s")
	if err != nil {
		t.Fatal(err)
	}
	upNet := transport.NewLocal(16)
	relay, err := NewRelay(RelayConfig{
		ID:             "relay-s",
		Cache:          CacheConfig{Bandwidth: 10000, Tick: 5 * time.Millisecond},
		ChildBandwidth: 10000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
	}, upNet, []Destination{{CacheID: "leaf-a", Conn: childConn}})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	up, err := upNet.Dial("root")
	if err != nil {
		t.Fatal(err)
	}
	send := func(obj string, version uint64, value float64) {
		t.Helper()
		if err := up.SendRefresh(wire.Refresh{
			SourceID: "root", ObjectID: obj, Value: value, Version: version, Epoch: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	send("root/a", 1, 1)
	waitFor(t, 2*time.Second, func() bool {
		e, ok := leaf.Get("root/a")
		return ok && e.Value == 1
	}, "baseline flow through the relay")
	if relay.Stats().SuppressedBatches != 0 {
		t.Fatal("suppression counted while a child was attached")
	}

	// Child leaves: subsequent applies must be suppressed, not forwarded.
	if err := relay.RemoveChild("leaf-a"); err != nil {
		t.Fatal(err)
	}
	forwardedBefore := relay.Stats().Forwarded
	send("root/a", 2, 2)
	send("root/b", 1, 7)
	waitFor(t, 2*time.Second, func() bool {
		return relay.Stats().SuppressedBatches > 0
	}, "apply batches suppressed with no children")
	waitFor(t, 2*time.Second, func() bool {
		e, ok := relay.Get("root/b")
		return ok && e.Value == 7
	}, "relay store still applies while suppressing")
	if fwd := relay.Stats().Forwarded; fwd != forwardedBefore {
		t.Errorf("forwarded grew %d → %d with no children", forwardedBefore, fwd)
	}

	// A new child attaches: the suppressed window's state arrives anyway,
	// seeded from the relay store.
	leafNetB := transport.NewLocal(16)
	leafB := NewCache(CacheConfig{ID: "leaf-b", Bandwidth: 10000, Tick: 5 * time.Millisecond}, leafNetB)
	defer leafB.Close()
	connB, err := leafNetB.Dial("relay-s")
	if err != nil {
		t.Fatal(err)
	}
	if err := relay.AddChild(Destination{CacheID: "leaf-b", Conn: connB}); err != nil {
		t.Fatal(err)
	}
	for obj, want := range map[string]float64{"root/a": 2, "root/b": 7} {
		obj, want := obj, want
		waitFor(t, 2*time.Second, func() bool {
			e, ok := leafB.Get(obj)
			return ok && e.Value == want
		}, "new child seeded with "+obj)
	}
}

// TestRelayConfigValidation: the relay owns the cache's identity and hooks.
func TestRelayConfigValidation(t *testing.T) {
	upNet := transport.NewLocal(1)
	leafNet := transport.NewLocal(1)
	conn, err := leafNet.Dial("r")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := NewRelay(RelayConfig{
		Cache: CacheConfig{ID: "already-set"},
	}, upNet, []Destination{{Conn: conn}}); err == nil {
		t.Error("RelayConfig with Cache.ID set was accepted")
	}
	if _, err := NewRelay(RelayConfig{}, upNet, nil); err == nil {
		t.Error("relay with no children was accepted")
	}
}
