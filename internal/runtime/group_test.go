package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// frameConn is a fakeConn that also speaks the binary frame path
// (transport.FrameSender): received frames are decoded back into refreshes
// so tests can assert on exactly what a group member was sent, whichever
// path delivered it. Every successful receive is acknowledged with positive
// feedback under the member's self-reported identity — the behaviour of an
// underloaded cache, which keeps the source's threshold engine in its
// sending regime (see deliverySink in cmd/syncbench).
type frameConn struct {
	fakeConn
	id     string
	frames int // decoded frames received (guarded by fakeConn.mu)
}

func newFrameConn(id string) *frameConn {
	return &frameConn{id: id, fakeConn: fakeConn{fb: make(chan wire.Feedback, 4)}}
}

func decodeBatchFrame(b []byte) ([]wire.Refresh, error) {
	cb, err := codec.NewDecoder(bytes.NewReader(b)).ReadCacheBound()
	if err != nil {
		return nil, err
	}
	if cb.Batch == nil {
		return nil, errors.New("frame is not a refresh batch")
	}
	return cb.Batch.Refreshes, nil
}

func (c *frameConn) ack() {
	// Taken under the conn mutex: Close marks closed before closing the
	// feedback channel under the same lock, so this can never send on a
	// closed channel even when Source.Close races a delivery.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	select {
	case c.fb <- wire.Feedback{CacheID: c.id, SentUnix: time.Now().UnixNano()}:
	default:
	}
}

func (c *frameConn) SendFrame(f *codec.Frame) error {
	rs, err := decodeBatchFrame(f.Bytes())
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("frameConn: closed")
	}
	if c.failNext > 0 {
		c.failNext--
		c.mu.Unlock()
		return errors.New("frameConn: injected frame failure")
	}
	c.frames++
	c.sent = append(c.sent, rs...)
	c.mu.Unlock()
	c.ack()
	return nil
}

func (c *frameConn) FramesEnabled() bool { return true }

func (c *frameConn) SendBatch(rs []wire.Refresh) error {
	if err := c.fakeConn.SendBatch(rs); err != nil {
		return err
	}
	c.ack()
	return nil
}

func (c *frameConn) SendRefresh(r wire.Refresh) error {
	if err := c.fakeConn.SendRefresh(r); err != nil {
		return err
	}
	c.ack()
	return nil
}

func (c *frameConn) frameCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// feed pushes one feedback message into the member's stream and waits for
// the source to fold it in. Only reliable before any refresh has been
// delivered (auto-acks would race the counter afterwards).
func (c *frameConn) feed(t *testing.T, src *Source, f wire.Feedback) {
	t.Helper()
	before := src.Stats().Feedbacks
	c.fb <- f
	waitFor(t, 2*time.Second, func() bool {
		return src.Stats().Feedbacks > before
	}, "feedback to be folded in")
}

func newGroupSource(t *testing.T, conns []transport.SourceConn, cfg GroupConfig) *Source {
	t.Helper()
	cfg.Enabled = true
	dests := make([]Destination, len(conns))
	for i, c := range conns {
		dests[i] = Destination{CacheID: fmt.Sprintf("member-%d", i), Conn: c}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "gs", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
		Group: cfg,
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// pump drives the listed objects with monotonically growing values until
// cond holds. The area-above-divergence priority (AreaGeneral) needs
// divergence to keep accruing before an object clears the refresh
// threshold — a one-shot update to a constant value schedules ~nothing —
// so tests exercise the group path the way a live workload would: a
// continuing stream of changes.
func groupPump(t *testing.T, src *Source, ids []string, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for v := 1.0; !cond(); v++ {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", msg)
		}
		for _, id := range ids {
			src.Update(id, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// received reports whether the member has been sent a refresh for objectID.
func received(c *frameConn, objectID string) bool {
	for _, r := range c.sentMsgs() {
		if r.ObjectID == objectID {
			return true
		}
	}
	return false
}

// TestGroupFanoutLocalMatchesPerSession runs the same 1→4 workload twice
// over the in-process transport — once per-session, once grouped — and
// requires both topologies to apply the identical final state at every
// cache. This is the group path's core correctness contract: encode-once
// delivery must be invisible to the caches.
func TestGroupFanoutLocalMatchesPerSession(t *testing.T) {
	const n = 4
	run := func(grouped bool) {
		nets := make([]*transport.Local, n)
		caches := make([]*Cache, n)
		dests := make([]Destination, n)
		for i := 0; i < n; i++ {
			nets[i] = transport.NewLocal(64)
			caches[i] = NewCache(CacheConfig{
				ID: fmt.Sprintf("cache-%d", i), Bandwidth: 10000,
				Tick: 5 * time.Millisecond,
			}, nets[i])
			defer caches[i].Close()
			conn, err := nets[i].Dial("s1")
			if err != nil {
				t.Fatal(err)
			}
			dests[i] = Destination{CacheID: fmt.Sprintf("cache-%d", i), Conn: conn}
		}
		src, err := NewFanoutSource(SourceConfig{
			ID: "s1", Metric: metric.ValueDeviation,
			Bandwidth: 10000, Tick: 5 * time.Millisecond,
			Group: GroupConfig{Enabled: grouped},
		}, dests)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()

		want := map[string]float64{}
		for round := 1; round <= 3; round++ {
			for k := 0; k < 5; k++ {
				id := fmt.Sprintf("s1/obj-%d", k)
				v := float64(round*10 + k)
				src.Update(id, v)
				want[id] = v
			}
		}
		for i := 0; i < n; i++ {
			i := i
			waitFor(t, 5*time.Second, func() bool {
				for id, v := range want {
					if e, ok := caches[i].Get(id); !ok || e.Value != v {
						return false
					}
				}
				return true
			}, fmt.Sprintf("cache %d to apply the full final state (grouped=%v)", i, grouped))
		}

		st := src.Stats()
		if grouped {
			if st.Group == nil || st.Group.Members != n {
				t.Fatalf("group stats = %+v, want %d members", st.Group, n)
			}
			if st.Group.Batches == 0 || st.Group.Delivered == 0 {
				t.Errorf("group did not broadcast: %+v", st.Group)
			}
			for i, sess := range st.Sessions {
				if !sess.Grouped {
					t.Errorf("session %d not grouped", i)
				}
				if sess.Refreshes == 0 {
					t.Errorf("session %d reports no refreshes despite group delivery", i)
				}
			}
		} else if st.Group != nil {
			t.Errorf("ungrouped run reports group stats %+v", st.Group)
		}
	}
	run(false)
	run(true)
}

// TestGroupFanoutTCP drives group delivery over the real wire: binary-codec
// TCP connections take the shared-frame path end to end and every cache
// applies the full final state.
func TestGroupFanoutTCP(t *testing.T) {
	const n = 3
	caches := make([]*Cache, n)
	eps := make([]transport.CacheEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = transport.Serve(ln, 64)
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("tcp-cache-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, eps[i])
		addrs[i] = ln.Addr().String()
		defer func(i int) {
			caches[i].Close()
			eps[i].Close()
		}(i)
	}
	conns, err := transport.DialAll(addrs, "agent-1")
	if err != nil {
		t.Fatal(err)
	}
	dests := make([]Destination, n)
	for i, c := range conns {
		dests[i] = Destination{CacheID: fmt.Sprintf("dest-%d", i), Conn: c}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "agent-1", Metric: metric.ValueDeviation,
		Bandwidth: 3000, Tick: 5 * time.Millisecond,
		Group: GroupConfig{Enabled: true},
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for round := 1; round <= 5; round++ {
		for k := 0; k < 4; k++ {
			src.Update(fmt.Sprintf("agent-1/val-%d", k), float64(round*10+k))
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			for k := 0; k < 4; k++ {
				e, ok := caches[i].Get(fmt.Sprintf("agent-1/val-%d", k))
				if !ok || e.Value != float64(50+k) {
					return false
				}
			}
			return true
		}, fmt.Sprintf("cache %d to hold all final values", i))
	}
	st := src.Stats()
	if st.Group == nil || st.Group.Members != n {
		t.Fatalf("group stats = %+v, want %d members", st.Group, n)
	}
	if st.Group.Delivered == 0 {
		t.Error("no group deliveries over TCP")
	}
	// Binary TCP connections negotiate frames, so the broadcasts must have
	// used the encode-once path, not per-member re-encoding.
	if st.Group.Batches == 0 {
		t.Error("no group batches over TCP")
	}
}

// TestGroupHeldSkipExclusion: a member that acknowledged holding a version
// AHEAD of the canonical origin axis must be excluded from broadcasts of
// that object — it would only drop the send as stale — while the rest of
// the cohort still receives it, and member-filtered copies are addressed
// with the member's self-reported identity.
func TestGroupHeldSkipExclusion(t *testing.T) {
	a, b := newFrameConn("remote-a"), newFrameConn("remote-b")
	src := newGroupSource(t, []transport.SourceConn{a, b}, GroupConfig{})
	defer src.Close()

	// Member a acks object "x" at a far-future origin epoch: ahead of
	// anything this source will ever schedule.
	a.feed(t, src, wire.Feedback{CacheID: "remote-a", Held: []wire.HeldVersion{
		{ObjectID: "gs/x", Epoch: time.Now().Add(time.Hour).UnixNano(), Version: 99},
	}})

	groupPump(t, src, []string{"gs/x", "gs/y"}, func() bool {
		return received(b, "gs/x") && received(b, "gs/y") && received(a, "gs/y")
	}, "cohort delivery with one member excluded from gs/x")

	for _, r := range a.sentMsgs() {
		if r.ObjectID == "gs/x" {
			t.Fatalf("member received held-acked object: %+v", r)
		}
		if r.CacheID != "" && r.CacheID != "remote-a" {
			t.Errorf("member-filtered refresh stamped %q, want remote-a or unaddressed", r.CacheID)
		}
	}
	st := src.Stats()
	if st.Group.Fallbacks == 0 {
		t.Error("no member-filtered sends recorded despite held exclusion")
	}
	if st.Sessions[0].HeldSkips == 0 {
		t.Error("held member reports no held skips")
	}
}

// TestGroupSplitHorizonExclusion: a member that is the ORIGIN of a relayed
// value (or on its Via path) must not have that value advertised back to it
// by a group broadcast; the rest of the cohort still receives it.
func TestGroupSplitHorizonExclusion(t *testing.T) {
	a, b := newFrameConn("peer-a"), newFrameConn("peer-b")
	src := newGroupSource(t, []transport.SourceConn{a, b}, GroupConfig{})
	defer src.Close()

	// Member a identifies itself; values it originated are then re-exported
	// through this source alongside a local object.
	a.feed(t, src, wire.Feedback{CacheID: "peer-a"})
	deadline := time.Now().Add(5 * time.Second)
	for v := 1.0; ; v++ {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for split-horizon delivery")
		}
		src.UpdateFrom("peer-a/obj", v, Provenance{
			Origin: "peer-a", Hops: 1, Via: []string{"relay-1"},
			Epoch: 123, Version: uint64(v),
		})
		src.Update("gs/local", v)
		if received(b, "peer-a/obj") && received(b, "gs/local") && received(a, "gs/local") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, r := range a.sentMsgs() {
		if r.ObjectID == "peer-a/obj" {
			t.Fatalf("origin member received its own value back: %+v", r)
		}
	}
}

// TestGroupRedialResyncRejoin: a member whose connection dies leaves the
// group (receiving nothing meanwhile), redials, is fully re-synchronized on
// its individual path, and re-attaches once caught up — with the final
// state identical to the cohort's.
func TestGroupRedialResyncRejoin(t *testing.T) {
	const n = 2
	nets := make([]*transport.Local, n)
	caches := make([]*Cache, n)
	dests := make([]Destination, n)
	for i := 0; i < n; i++ {
		i := i
		nets[i] = transport.NewLocal(64)
		caches[i] = NewCache(CacheConfig{
			ID: fmt.Sprintf("cache-%d", i), Bandwidth: 10000,
			Tick: 5 * time.Millisecond,
		}, nets[i])
		defer caches[i].Close()
		conn, err := nets[i].Dial("s1")
		if err != nil {
			t.Fatal(err)
		}
		dests[i] = Destination{
			CacheID: fmt.Sprintf("cache-%d", i),
			Conn:    conn,
			Redial:  func() (transport.SourceConn, error) { return nets[i].Dial("s1") },
		}
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "s1", Metric: metric.ValueDeviation,
		Bandwidth: 10000, Tick: 5 * time.Millisecond,
		Group: GroupConfig{Enabled: true},
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	src.Update("s1/a", 1)
	src.Update("s1/b", 2)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := caches[0].Get("s1/b")
		return ok && e.Value == 2
	}, "initial group delivery to land")

	// Kill member 0's connection: the group must drop it (no stale sends
	// into a dead pipe) and the session must redial and re-sync.
	src.mu.Lock()
	dead := src.sessions[0].dest.Conn
	src.mu.Unlock()
	dead.Close()

	waitFor(t, 5*time.Second, func() bool {
		st := src.Stats()
		return st.Group != nil && st.Group.Detaches >= 1 && st.Sessions[0].Reconnects >= 1
	}, "member to detach and reconnect")

	// New state produced while the member is (or was) away must arrive via
	// the individual re-sync, then the member re-attaches.
	src.Update("s1/c", 3)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := caches[0].Get("s1/c")
		return ok && e.Value == 3
	}, "re-synced member to receive post-failure state")
	waitFor(t, 5*time.Second, func() bool {
		st := src.Stats()
		return st.Group.Rejoins >= 1 && st.Sessions[0].Grouped
	}, "member to rejoin the group after catching up")

	// Group delivery must work again for the rejoined member.
	src.Update("s1/d", 4)
	for i := 0; i < n; i++ {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			e, ok := caches[i].Get("s1/d")
			return ok && e.Value == 4
		}, fmt.Sprintf("cache %d to receive post-rejoin broadcast", i))
	}
	if fl := src.group.framesLive.Load(); fl != 0 {
		t.Errorf("framesLive = %d after quiesce, want 0", fl)
	}
}

// TestGroupSendFailureDetach: a frame send failing mid-broadcast must not
// leak the shared frame, must not disturb the other members, and must push
// the failed member out through the standard detach path.
func TestGroupSendFailureDetach(t *testing.T) {
	a, b := newFrameConn("fail-a"), newFrameConn("ok-b")
	src := newGroupSource(t, []transport.SourceConn{a, b}, GroupConfig{})
	defer src.Close()

	groupPump(t, src, []string{"gs/one"}, func() bool {
		return received(a, "gs/one") && received(b, "gs/one")
	}, "initial broadcast to land on both members")

	a.setFailures(1)
	groupPump(t, src, []string{"gs/two"}, func() bool {
		st := src.Stats()
		return st.Group != nil && st.Group.SendErrors >= 1 && st.Group.Detaches >= 1
	}, "failed member to detach")
	waitFor(t, 5*time.Second, func() bool {
		return received(b, "gs/two")
	}, "surviving member to receive the batch")
	waitFor(t, 5*time.Second, func() bool {
		return src.group.framesLive.Load() == 0
	}, "all shared frames to be released after the failure")
	st := src.Stats()
	if st.Group.Members != 1 {
		t.Errorf("members = %d after failure, want 1", st.Group.Members)
	}
	if !st.Sessions[1].Grouped || st.Sessions[0].Grouped {
		t.Errorf("grouped flags = %v/%v, want failed member out, survivor in",
			st.Sessions[0].Grouped, st.Sessions[1].Grouped)
	}
}

// blockingConn is a frame-capable connection whose sends block until
// released (or until the connection closes) — a peer that stopped draining.
type blockingConn struct {
	fb      chan wire.Feedback
	release chan struct{}
	closed  chan struct{}
}

func newBlockingConn() *blockingConn {
	return &blockingConn{
		fb:      make(chan wire.Feedback, 4),
		release: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (c *blockingConn) wait() error {
	select {
	case <-c.release:
		return nil
	case <-c.closed:
		return errors.New("blockingConn: closed")
	}
}

func (c *blockingConn) SendRefresh(wire.Refresh) error { return c.wait() }
func (c *blockingConn) SendBatch([]wire.Refresh) error { return c.wait() }
func (c *blockingConn) SendFrame(*codec.Frame) error   { return c.wait() }
func (c *blockingConn) FramesEnabled() bool            { return true }
func (c *blockingConn) Feedback() <-chan wire.Feedback { return c.fb }
func (c *blockingConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// TestGroupQueueOverrunDetach: a member whose connection stops draining is
// detached once its outstanding-batch bound is hit, instead of
// back-pressuring the whole cohort; the healthy member keeps receiving.
func TestGroupQueueOverrunDetach(t *testing.T) {
	blocked := newBlockingConn()
	healthy := newFrameConn("ok")
	src := newGroupSource(t, []transport.SourceConn{blocked, healthy},
		GroupConfig{Workers: 2, Queue: 1})
	defer src.Close()

	// Distinct objects so every tick has something over threshold.
	for i := 0; ; i++ {
		src.Update(fmt.Sprintf("gs/o-%d", i%8), float64(i))
		st := src.Stats()
		if st.Group != nil && st.Group.QueueOverruns >= 1 {
			break
		}
		if i > 10000 {
			t.Fatal("no queue overrun despite a blocked member")
		}
		time.Sleep(time.Millisecond)
	}
	st := src.Stats()
	if st.Sessions[0].Grouped {
		t.Error("blocked member still grouped after overrun")
	}
	if !st.Sessions[1].Grouped {
		t.Error("healthy member was detached along with the blocked one")
	}
	waitFor(t, 5*time.Second, func() bool {
		return len(healthy.sentMsgs()) > 0
	}, "healthy member to keep receiving")

	// Release the blocked send so the worker and the individual path can
	// drain, then verify no frame leaked.
	close(blocked.release)
	waitFor(t, 5*time.Second, func() bool {
		return src.group.framesLive.Load() == 0
	}, "shared frames to drain after release")
}

// TestGroupCloseReleasesFrames: closing the source with broadcasts still
// queued behind a blocked member must release every shared frame — the
// workers drain their queues against the closed connections.
func TestGroupCloseReleasesFrames(t *testing.T) {
	blocked := newBlockingConn()
	healthy := newFrameConn("ok")
	src := newGroupSource(t, []transport.SourceConn{blocked, healthy},
		GroupConfig{Workers: 1, Queue: 8})

	// Let some broadcasts queue up behind the blocked connection.
	groupPump(t, src, []string{"gs/o-0", "gs/o-1", "gs/o-2", "gs/o-3"}, func() bool {
		st := src.Stats()
		return st.Group != nil && st.Group.Batches >= 1
	}, "broadcasts to be scheduled")

	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if fl := src.group.framesLive.Load(); fl != 0 {
		t.Fatalf("framesLive = %d after Close, want 0 (leak or double-release)", fl)
	}
}

// TestGroupRemoveDestination: removing a grouped member shrinks the
// broadcast set without re-sync (it is leaving, not falling back) and the
// survivors keep converging.
func TestGroupRemoveDestination(t *testing.T) {
	a, b := newFrameConn("rm-a"), newFrameConn("rm-b")
	src := newGroupSource(t, []transport.SourceConn{a, b}, GroupConfig{})
	defer src.Close()

	groupPump(t, src, []string{"gs/x"}, func() bool {
		return received(a, "gs/x")
	}, "initial broadcast")

	if err := src.RemoveDestination("member-0"); err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.Group == nil || st.Group.Members != 1 {
		t.Fatalf("members = %+v, want 1 after removal", st.Group)
	}
	before := len(a.sentMsgs())
	groupPump(t, src, []string{"gs/y"}, func() bool {
		return received(b, "gs/y")
	}, "survivor to keep receiving broadcasts")
	// Keep the workload flowing a little longer: the removed member must
	// see none of it.
	for v := 0; v < 25; v++ {
		src.Update("gs/y", float64(1000+v))
		time.Sleep(2 * time.Millisecond)
	}
	if after := len(a.sentMsgs()); after != before {
		t.Errorf("removed member still receiving (%d -> %d)", before, after)
	}
}

// TestGroupLateJoinerSyncsBeforeAttach: a destination added to a running
// group source with a non-empty store starts on the individual path, is
// fully synchronized from scratch, and only then joins the group.
func TestGroupLateJoinerSyncsBeforeAttach(t *testing.T) {
	a := newFrameConn("early")
	src := newGroupSource(t, []transport.SourceConn{a}, GroupConfig{})
	defer src.Close()

	groupPump(t, src, []string{"gs/x", "gs/y"}, func() bool {
		return received(a, "gs/x") && received(a, "gs/y")
	}, "seed state to broadcast")

	late := newFrameConn("late")
	if err := src.AddDestination(Destination{CacheID: "late", Conn: late}); err != nil {
		t.Fatal(err)
	}
	// Keep the workload flowing: the late joiner re-syncs on its individual
	// path and re-attaches at the first tick its queue drains (between
	// updates); with the event-driven priority discipline a stopped
	// workload would leave a below-threshold residual parked forever.
	groupPump(t, src, []string{"gs/x", "gs/y"}, func() bool {
		st := src.Stats()
		return received(late, "gs/x") && received(late, "gs/y") &&
			st.Group != nil && st.Group.Members == 2
	}, "late joiner to re-synchronize and attach")
}
