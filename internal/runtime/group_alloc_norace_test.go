//go:build !race

// The allocation assertions are meaningless under -race (the detector
// instruments allocations), so this file is excluded from the race job.

package runtime

import (
	"fmt"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
)

// TestGroupUpdateSteadyStateAllocs pins the tentpole's hot-path property:
// once the store and the group are warm, Source.Update with group dispatch
// is allocation-free — one shared tracker/heap touch per update instead of
// one per member, with no per-update garbage.
func TestGroupUpdateSteadyStateAllocs(t *testing.T) {
	conns := []transport.SourceConn{newFrameConn("al-a"), newFrameConn("al-b")}
	dests := make([]Destination, len(conns))
	for i, c := range conns {
		dests[i] = Destination{CacheID: fmt.Sprintf("member-%d", i), Conn: c}
	}
	// A starved budget keeps the flusher idle so the measurement sees the
	// pure observe/requeue path, not racing broadcasts.
	src, err := NewFanoutSource(SourceConfig{
		ID: "al", Metric: metric.ValueDeviation,
		Bandwidth: 0.001, Tick: time.Hour,
		Group: GroupConfig{Enabled: true},
	}, dests)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const objects = 16
	ids := make([]string, objects)
	for i := range ids {
		ids[i] = fmt.Sprintf("al/obj-%d", i)
		src.Update(ids[i], 1) // warm the store, sessions and group state
	}

	v := 2.0
	avg := testing.AllocsPerRun(200, func() {
		for _, id := range ids {
			src.Update(id, v)
		}
		v++
	})
	perUpdate := avg / objects
	if perUpdate > 0.0625 { // tolerate a stray background allocation
		t.Fatalf("steady-state group Update allocates %.3f allocs/update, want 0", perUpdate)
	}
}
