package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// fastMigration is the test-speed migration controller: a low promote
// threshold and short windows so the hot head crosses into the push set
// within a few hundred milliseconds.
var fastMigration = HybridConfig{
	Promote: 0.5, Demote: 0.05, Gain: 0.5, MigrateEvery: 100 * time.Millisecond,
}

// testHybridThreeTier runs the full hybrid hierarchy — one hybrid source,
// a hybrid relay tier (hybrid upstream cache face AND hybrid child face),
// two hybrid leaf caches — under a skewed workload with monotonically
// increasing values, kills the relay→leaf-0 connection mid-run, and then
// asserts that after the dust settles every leaf holds every object's final
// value: nothing lost to the regime split, nothing regressed by the redial,
// and migrations observable at both pushing tiers.
func testHybridThreeTier(t *testing.T, tcp bool) {
	transport.SetDialCapabilities(wire.CapCooperative)
	defer transport.SetDialCapabilities(0)

	const (
		leaves  = 2
		objects = 12
		hot     = 3
	)
	hybridCache := func(id string) CacheConfig {
		return CacheConfig{
			ID: id, Bandwidth: 4000, Tick: 5 * time.Millisecond,
			Policy: PolicyHybrid,
			Poll:   PollConfig{ReSolveEvery: 150 * time.Millisecond, Seed: 1},
		}
	}

	leafCaches := make([]*Cache, leaves)
	children := make([]Destination, leaves)
	var closeLeaf0Conn func()
	for i := 0; i < leaves; i++ {
		id := fmt.Sprintf("hyb-leaf-%d", i)
		var (
			ep   transport.CacheEndpoint
			dial func() (transport.SourceConn, error)
		)
		if tcp {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ep = transport.Serve(ln, 64)
			addr := ln.Addr().String()
			dial = func() (transport.SourceConn, error) { return transport.Dial(addr, "hyb-relay") }
		} else {
			local := transport.NewLocal(64)
			ep = local
			dial = func() (transport.SourceConn, error) { return local.Dial("hyb-relay") }
		}
		leafCaches[i] = NewCache(hybridCache(id), ep)
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		children[i] = Destination{CacheID: id, Conn: conn, Redial: dial}
		if i == 0 {
			closeLeaf0Conn = func() { conn.Close() }
		}
		defer func(i int) {
			leafCaches[i].Close()
			ep.Close()
		}(i)
	}

	var (
		upEp   transport.CacheEndpoint
		upDial func() (transport.SourceConn, error)
	)
	if tcp {
		upLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		upEp = transport.Serve(upLn, 64)
		addr := upLn.Addr().String()
		upDial = func() (transport.SourceConn, error) { return transport.Dial(addr, "hyb-root") }
	} else {
		upLocal := transport.NewLocal(64)
		upEp = upLocal
		upDial = func() (transport.SourceConn, error) { return upLocal.Dial("hyb-root") }
	}
	defer upEp.Close()
	relay, err := NewRelay(RelayConfig{
		ID:             "hyb-relay",
		Cache:          CacheConfig{Bandwidth: 4000, Tick: 5 * time.Millisecond, Policy: PolicyHybrid, Poll: PollConfig{ReSolveEvery: 150 * time.Millisecond, Seed: 2}},
		ChildBandwidth: 4000,
		Metric:         metric.ValueDeviation,
		Tick:           5 * time.Millisecond,
		ChildPolicy:    PolicyHybrid,
		Hybrid:         fastMigration,
	}, upEp, children)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	upConn, err := upDial()
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFanoutSource(SourceConfig{
		ID: "hyb-root", Metric: metric.ValueDeviation,
		Bandwidth: 4000, Tick: 5 * time.Millisecond,
		Policy: PolicyHybrid,
		Hybrid: fastMigration,
	}, []Destination{{CacheID: "hyb-relay", Conn: upConn, Redial: upDial}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Phase 1: skewed workload — the hot head updates every couple of
	// milliseconds, the cold tail is registered once and then only nudged —
	// long enough for the migration controllers to split the object set.
	values := make([]float64, objects)
	update := func(i int) {
		values[i]++
		src.Update(fmt.Sprintf("hyb-root/obj-%d", i), values[i])
	}
	for i := 0; i < objects; i++ {
		update(i)
	}
	runPhase := func(d time.Duration) {
		deadline := time.Now().Add(d)
		for step := 0; time.Now().Before(deadline); step++ {
			update(step % hot)
			if step%100 == 99 {
				update(hot + step%(objects-hot)) // occasional cold-tail change
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	runPhase(600 * time.Millisecond)

	waitFor(t, 5*time.Second, func() bool {
		return src.Stats().Hybrid != nil && src.Stats().Hybrid.Promotions > 0
	}, "root source to promote its hot head")

	// Mid-run failure: kill the relay→leaf-0 connection. The child session
	// must redial and resynchronize rather than end.
	closeLeaf0Conn()
	waitFor(t, 5*time.Second, func() bool {
		for _, sess := range relay.Stats().Downstream.Sessions {
			if sess.CacheID == "hyb-leaf-0" && sess.Reconnects >= 1 {
				return true
			}
		}
		return false
	}, "relay child session to redial leaf 0")

	// Phase 2: keep the workload running across the reconnect, then bump
	// every object once so each has a known, strictly higher final value.
	runPhase(400 * time.Millisecond)
	for i := 0; i < objects; i++ {
		update(i)
	}

	// Values only ever increase, so holding the final value also proves no
	// leaf regressed an object after the redial or a poll→push migration.
	for li := 0; li < leaves; li++ {
		li := li
		waitFor(t, 10*time.Second, func() bool {
			for i := 0; i < objects; i++ {
				e, ok := leafCaches[li].Get(fmt.Sprintf("hyb-root/obj-%d", i))
				if !ok || e.Value != values[i] {
					return false
				}
			}
			return true
		}, fmt.Sprintf("leaf %d to hold every final value", li))
	}

	// Migration is observable end to end: the root's controller split the
	// set and promoted, and the relay's child face reports its own hybrid
	// stats (the polling relay tier of the ISSUE).
	st := src.Stats()
	if st.Hybrid == nil || st.Hybrid.Promotions == 0 || st.Hybrid.PushObjects == 0 {
		t.Errorf("root hybrid stats missing or idle: %+v", st.Hybrid)
	}
	rh := relay.Stats().Downstream.Hybrid
	if rh == nil {
		t.Fatal("relay child face reports no hybrid stats")
	}
	if rh.PushObjects+rh.PollObjects == 0 {
		t.Errorf("relay child face classified nothing: %+v", rh)
	}
}

func TestHybridThreeTierLocal(t *testing.T) { testHybridThreeTier(t, false) }
func TestHybridThreeTierTCP(t *testing.T)   { testHybridThreeTier(t, true) }
