package runtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bestsync/internal/transport"
)

func TestStatusSnapshot(t *testing.T) {
	net := transport.NewLocal(16)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 10000)
	defer src.Close()
	src.Update("a", 1)
	src.Update("b", 2)
	waitFor(t, 2*time.Second, func() bool { return cache.Len() == 2 }, "objects cached")

	st := cache.Status(10)
	if st.Objects != 2 {
		t.Errorf("objects = %d, want 2", st.Objects)
	}
	if len(st.Sample) != 2 {
		t.Fatalf("sample = %d entries, want 2", len(st.Sample))
	}
	for _, o := range st.Sample {
		if o.Source != "s1" || o.AgeMillis < 0 {
			t.Errorf("bad sample entry %+v", o)
		}
	}

	// Sampling limit respected.
	if got := cache.Status(1); len(got.Sample) != 1 {
		t.Errorf("sample limit ignored: %d entries", len(got.Sample))
	}
	// Zero sample omits the listing.
	if got := cache.Status(0); got.Sample != nil {
		t.Errorf("sample = %v, want nil", got.Sample)
	}
}

func TestStatusHandler(t *testing.T) {
	net := transport.NewLocal(16)
	cache := fastCache(net, 10000)
	defer cache.Close()
	conn, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	src := fastSource("s1", conn, 10000)
	defer src.Close()
	src.Update("x", 42)
	waitFor(t, 2*time.Second, func() bool { return cache.Len() == 1 }, "object cached")

	srv := httptest.NewServer(cache.StatusHandler(10))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 || len(st.Sample) != 1 || st.Sample[0].Value != 42 {
		t.Errorf("unexpected status %+v", st)
	}

	// Non-GET rejected.
	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
