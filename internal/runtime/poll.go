package runtime

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"bestsync/internal/cgm"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// PollConfig tunes the cache-driven sync policies (CacheConfig.Policy
// ideal/cgm1/cgm2); it is ignored under the push policy.
type PollConfig struct {
	// ReSolveEvery is the re-estimation / re-allocation epoch: every
	// interval the scheduler re-estimates each object's update rate, solves
	// cgm.OptimalAllocation for new per-object poll frequencies, and
	// re-sends a discovery poll to every connected source so objects that
	// appeared since the last epoch join the schedule. Default 30 s.
	ReSolveEvery time.Duration
	// TrueRate supplies the known per-object update rate (updates/second)
	// for PolicyIdeal — the §6.3 ideal assumes the cache knows every λ
	// exactly. Nil makes ideal fall back to CGM1's live estimates (at
	// ideal's 1-message cost); the practical modes ignore it.
	TrueRate func(objectID string) float64
	// Seed fixes the poll-phase randomization (tests/benchmarks); 0 derives
	// one from the clock.
	Seed int64
}

// pollObj is the scheduler's view of one remote object: the identity of the
// source that owns it, the ORIGIN-AXIS (epoch, version) observed at the
// last poll — the change detector; the origin axis, not the answerer's own,
// so a peer relaying another node's value and the origin itself count as
// the same version and a cache polling both never sees a phantom change —
// and the live CGM estimators its polls feed. pushed marks an object a
// cooperating hybrid source advertises as push-set (wire.PollReply.Pushed):
// the scheduler stops polling it — the source's refreshes own its freshness
// — until the source demotes it again.
type pollObj struct {
	id       string
	sourceID string
	pushed   bool
	epoch    int64
	version  uint64
	lastPoll float64 // protocol seconds of the last processed observation
	period   float64 // 1/f from the last solve; +Inf = not scheduled
	est1     cgm.LastModifiedEstimator
	est2     cgm.BinaryEstimator
}

// pollQueue is a due-time min-heap over scheduler object indexes (the same
// shape as the syncsim engine's poll heap, kept local so the live scheduler
// and the simulator can evolve independently).
type pollQueue struct {
	due  []float64
	objs []int32
}

func (h *pollQueue) Len() int { return len(h.due) }
func (h *pollQueue) less(i, j int) bool {
	if h.due[i] != h.due[j] {
		return h.due[i] < h.due[j]
	}
	return h.objs[i] < h.objs[j]
}
func (h *pollQueue) swap(i, j int) {
	h.due[i], h.due[j] = h.due[j], h.due[i]
	h.objs[i], h.objs[j] = h.objs[j], h.objs[i]
}
func (h *pollQueue) Push(t float64, obj int) {
	h.due = append(h.due, t)
	h.objs = append(h.objs, int32(obj))
	i := h.Len() - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}
func (h *pollQueue) Pop() (float64, int) {
	t, o := h.due[0], int(h.objs[0])
	last := h.Len() - 1
	h.swap(0, last)
	h.due, h.objs = h.due[:last], h.objs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.swap(i, s)
		i = s
	}
	return t, o
}
func (h *pollQueue) Reset() {
	h.due = h.due[:0]
	h.objs = h.objs[:0]
}

// pollScheduler drives a cache-driven policy on a live cache: it discovers
// the object universe from connected sources, polls each object at the
// frequency cgm.OptimalAllocation assigns it under the cache's message
// budget, feeds the replies to the live CGM estimators, and installs
// changed values through the same sharded apply path refreshes take.
//
// # Message accounting
//
// The cache's Bandwidth is a MESSAGE budget, as in the push policy, so the
// two are comparable at equal configuration: a targeted poll of one object
// costs Policy.MessageCost() (2 for the practical modes — request +
// response; 1 for ideal, whose requests are free per §6.3) and is charged
// when the poll is sent. EVERY value transfer pays that per-refresh price:
// a discovery (full-store) reply only registers the object universe — ids
// and schedule slots, never values — and is charged flat (one request
// message at send, zero for ideal, plus one reply message at receipt), so
// re-discovering new objects each epoch cannot smuggle an uncharged bulk
// sync past the comparison. The token bucket accrues at the live Bandwidth
// each tick with the shared burst floor; an over-spend pushes it negative,
// delaying future polls until amortized.
//
// All scheduler state is confined to the loop goroutine; only the counters
// behind statMu are read from outside (Stats/Status).
type pollScheduler struct {
	c   *Cache
	pe  transport.PollEndpoint
	cfg PollConfig
	rng *rand.Rand

	// Loop-local state (no locking needed).
	objects []*pollObj
	index   map[string]int // object id → objects index
	known   map[string]bool
	queue   pollQueue
	// coop reports which connected peers advertised the cooperation
	// capability in their Hello (nil when the transport cannot say, in
	// which case Pushed advertisements are ignored — a non-cooperating or
	// legacy source must not be able to turn the cache's polling off).
	coop cooperationReporter
	// pushedBy is the last applied push set per cooperating source, the
	// diff base for marking and unmarking pollObjs as replies arrive.
	pushedBy map[string]map[string]bool
	// peers reports which connected sources advertised the peer-serving
	// capability (wire.CapPeer); known-version hints are only attached to
	// polls toward those (nil when the transport cannot say).
	peers peerReporter

	// Hybrid shared-budget accounting (loop-local): the poll bucket must
	// leave room for the push half, so each tick deducts the refreshes the
	// push regime landed since the last one. installs counts this
	// scheduler's own polled installs (charged at poll-send time already)
	// so they are not deducted twice; lastPushed is the watermark of
	// observed push applies.
	installs   int
	lastPushed int

	// done is closed when the loop goroutine exits; Cache.Close waits on
	// it before closing the shard queues, because processReply installs
	// values through them.
	done chan struct{}

	statMu    sync.Mutex
	polls     int // poll request messages: one per targeted object, one per discovery
	replyMsgs int // reply messages: one per targeted item, one per discovery listing
	resolves  int // completed allocation solves
}

func newPollScheduler(c *Cache, pe transport.PollEndpoint, cfg PollConfig) *pollScheduler {
	if cfg.ReSolveEvery <= 0 {
		cfg.ReSolveEvery = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = c.cfg.Now().UnixNano()
	}
	ps := &pollScheduler{
		c:        c,
		pe:       pe,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		index:    map[string]int{},
		known:    map[string]bool{},
		pushedBy: map[string]map[string]bool{},
		done:     make(chan struct{}),
	}
	if c.cfg.Policy == PolicyHybrid {
		ps.coop, _ = pe.(cooperationReporter)
	}
	ps.peers, _ = pe.(peerReporter)
	return ps
}

// cooperationReporter is the optional transport capability a hybrid cache
// consults before honoring a source's Pushed advertisements: whether the
// peer's Hello carried wire.CapCooperative. Both provided transports
// implement it.
type cooperationReporter interface {
	PeerCooperates(sourceID string) bool
}

// peerReporter is the optional transport capability the scheduler consults
// before attaching known-version hints (wire.Poll.Known) to a targeted
// poll: whether the answering source's Hello carried wire.CapPeer. A
// pre-peer binary decoder would reject the trailing Known segment as a bad
// frame, so the hints are only sent to peers that advertised the
// capability. Both provided transports implement it.
type peerReporter interface {
	PeerServesPeers(sourceID string) bool
}

// snapshotCounters returns the externally visible counters.
func (ps *pollScheduler) snapshotCounters() (polls, replyMsgs, resolves int) {
	ps.statMu.Lock()
	defer ps.statMu.Unlock()
	return ps.polls, ps.replyMsgs, ps.resolves
}

// pollBudget is the refresh budget: the live message budget divided by the
// policy's per-refresh message cost.
func (ps *pollScheduler) pollBudget() float64 {
	return ps.c.Bandwidth() / ps.c.cfg.Policy.MessageCost()
}

// loop is the scheduler goroutine, started by NewCache for cache-driven
// policies and stopped with the cache.
func (ps *pollScheduler) loop() {
	defer close(ps.done)
	c := ps.c
	cost := c.cfg.Policy.MessageCost()
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	start := c.cfg.Now()
	now := func() float64 { return c.cfg.Now().Sub(start).Seconds() }
	budget := 0.0
	replies := ps.pe.Replies()
	nextSolve := ps.cfg.ReSolveEvery.Seconds()
	for {
		select {
		case <-c.stop:
			return
		case r, ok := <-replies:
			if !ok {
				replies = nil
				continue
			}
			budget -= ps.processReply(r, now())
		case <-ticker.C:
			bw := c.Bandwidth()
			burst := tokenBurst(bw, c.cfg.Tick)
			budget += bw * c.cfg.Tick.Seconds()
			if budget > burst {
				budget = burst
			}
			if c.cfg.Policy == PolicyHybrid {
				// One cache-side budget across both regimes: refreshes the
				// push half landed since the last tick (total applies minus
				// this scheduler's own installs, which poll sends already
				// paid for) come out of the poll bucket, so the cache polls
				// only with budget the pushes are not using — the mirror of
				// the source's shared push/answer token bucket.
				pushed := c.Stats().Refreshes - ps.installs
				if d := pushed - ps.lastPushed; d > 0 {
					budget -= float64(d)
				}
				ps.lastPushed = pushed
			}
			t := now()
			budget -= ps.discoverNew(cost)
			budget -= ps.sendDue(t, cost, budget)
			if t >= nextSolve {
				ps.solve(t)
				nextSolve += ps.cfg.ReSolveEvery.Seconds()
			}
		}
	}
}

// discoverNew sends a discovery poll to every connected source the
// scheduler has not seen yet, returning the budget spent (the request
// message; free under ideal).
func (ps *pollScheduler) discoverNew(cost float64) float64 {
	spent := 0.0
	for _, id := range ps.pe.Sources() {
		if ps.known[id] {
			continue
		}
		ps.known[id] = true
		spent += ps.discover(id, cost)
	}
	return spent
}

// discover sends one full-store poll.
func (ps *pollScheduler) discover(sourceID string, cost float64) float64 {
	p := wire.Poll{CacheID: ps.c.cfg.ID, SentUnix: ps.c.cfg.Now().UnixNano()}
	if err := ps.pe.SendPoll(sourceID, p); err != nil {
		return 0
	}
	ps.statMu.Lock()
	ps.polls++
	ps.statMu.Unlock()
	return cost - 1 // the request message; the reply is charged per item
}

// sendDue pops every due object the budget covers and sends the polls,
// batched per source (one Poll message naming all of a source's due
// objects), returning the budget spent. Each popped object is immediately
// re-scheduled one period ahead — pacing is by period, not by reply
// latency, so a lost poll or reply only costs one observation.
func (ps *pollScheduler) sendDue(t, cost, budget float64) float64 {
	if ps.queue.Len() == 0 || ps.queue.due[0] > t || budget < cost {
		return 0
	}
	batch := map[string][]string{}
	spent := 0.0
	for ps.queue.Len() > 0 && ps.queue.due[0] <= t && budget-spent >= cost {
		_, i := ps.queue.Pop()
		o := ps.objects[i]
		if math.IsInf(o.period, 1) {
			continue // de-scheduled by a solve after this entry was pushed
		}
		if o.pushed {
			continue // the source pushes this one; stop paying to ask
		}
		batch[o.sourceID] = append(batch[o.sourceID], o.id)
		spent += cost
		ps.queue.Push(t+o.period, i)
	}
	sent := 0
	for src, ids := range batch {
		p := wire.Poll{
			CacheID:   ps.c.cfg.ID,
			ObjectIDs: ids,
			SentUnix:  ps.c.cfg.Now().UnixNano(),
		}
		if ps.peers != nil && ps.peers.PeerServesPeers(src) {
			// Advisory held-version hints: a peer-serving answerer omits
			// items the hints prove this cache already holds at-or-ahead,
			// saving the reply bytes (the change detector sees no item and
			// simply observes no change).
			p.Known = ps.knownFor(ids)
		}
		if err := ps.pe.SendPoll(src, p); err != nil {
			spent -= cost * float64(len(ids)) // refund: nothing hit the wire
			continue
		}
		sent += len(ids)
	}
	ps.statMu.Lock()
	ps.polls += sent
	ps.statMu.Unlock()
	return spent
}

// processReply folds one poll reply into the estimators and the store,
// returning the budget charged at receipt.
//
// A discovery reply (All) is a universe listing: unknown objects are
// registered and scheduled — with a zero change-detection baseline, so
// their first TARGETED poll observes a change and installs the value at
// full per-refresh cost — but no values are installed and no estimator is
// fed from it. Targeted replies are the real observations: change
// detection against the last-polled (epoch, version), estimator feeding,
// and installation of changed values through the sharded apply path.
func (ps *pollScheduler) processReply(r wire.PollReply, t float64) float64 {
	if r.All {
		created := 0
		for _, it := range r.Items {
			if !it.Exists {
				continue
			}
			if _, ok := ps.index[it.ObjectID]; ok {
				continue // known: its targeted polls carry the observations
			}
			ps.index[it.ObjectID] = len(ps.objects)
			ps.objects = append(ps.objects, &pollObj{
				id:       it.ObjectID,
				sourceID: r.SourceID,
				lastPoll: t,
				period:   math.Inf(1),
			})
			created++
		}
		if created > 0 {
			ps.scheduleNew(t, created)
		}
		ps.applyPushed(r, t)
		ps.statMu.Lock()
		ps.replyMsgs++ // the listing reply is one (metadata) message
		ps.statMu.Unlock()
		return 1
	}

	wallNow := ps.c.cfg.Now()
	var install []wire.Refresh
	created := 0
	for _, it := range r.Items {
		i, ok := ps.index[it.ObjectID]
		if !ok {
			if !it.Exists {
				continue
			}
			// A targeted answer for an object we had not registered yet
			// (possible when a reply outruns the discovery that named it):
			// this poll was paid for, so install and schedule.
			oe, ov := it.OriginAxis()
			o := &pollObj{
				id:       it.ObjectID,
				sourceID: r.SourceID,
				epoch:    oe,
				version:  ov,
				lastPoll: t,
				period:   math.Inf(1),
			}
			ps.index[it.ObjectID] = len(ps.objects)
			ps.objects = append(ps.objects, o)
			created++
			install = append(install, ps.refreshFor(r.SourceID, it))
			continue
		}
		o := ps.objects[i]
		o.sourceID = r.SourceID
		// Change detection runs on the origin axis: a lateral peer's relayed
		// copy and the origin's own answer carry the same origin (epoch,
		// version), so switching which node answers never fabricates a
		// change (the answerer's own Epoch would differ per node).
		oe, ov := it.OriginAxis()
		changed := it.Exists && (oe != o.epoch || ov != o.version)
		interval := t - o.lastPoll
		if interval > 0 {
			age := 0.0
			if it.LastModifiedUnix > 0 {
				age = wallNow.Sub(time.Unix(0, it.LastModifiedUnix)).Seconds()
				if age < 0 {
					age = 0 // cross-node clock skew must not poison the MLE
				}
			}
			o.est1.Observe(changed, interval, age)
			o.est2.Observe(changed, interval)
			o.lastPoll = t
		}
		if changed {
			o.epoch, o.version = oe, ov
			install = append(install, ps.refreshFor(r.SourceID, it))
		}
	}
	if created > 0 {
		ps.scheduleNew(t, created)
	}
	ps.applyPushed(r, t)
	if len(install) > 0 {
		ps.installs += len(install)
		ps.c.installPolled(install)
	}
	ps.statMu.Lock()
	ps.replyMsgs += len(r.Items)
	ps.statMu.Unlock()
	return 0 // targeted polls were charged in full at send time
}

// applyPushed folds a cooperating hybrid source's push-set advertisement
// (wire.PollReply.Pushed) into the schedule: newly pushed objects stop
// being polled — their queue entries are dropped as they surface — and
// objects that left the push set resume immediately on their last solved
// period (or the provisional uniform slice) instead of waiting out the
// re-solve epoch, during which a demoted object's updates would go
// unwatched by both regimes. The advertisement is authoritative per reply:
// a cooperating source with an empty push set clears every prior mark. A
// source that never advertised wire.CapCooperative in its Hello is ignored
// entirely — Pushed is advisory, and only the capability handshake makes
// it trustworthy enough to turn polling off.
func (ps *pollScheduler) applyPushed(r wire.PollReply, t float64) {
	if ps.coop == nil || !ps.coop.PeerCooperates(r.SourceID) {
		return
	}
	prev := ps.pushedBy[r.SourceID]
	if len(r.Pushed) == 0 && len(prev) == 0 {
		return
	}
	next := make(map[string]bool, len(r.Pushed))
	for _, id := range r.Pushed {
		next[id] = true
		if i, ok := ps.index[id]; ok {
			ps.objects[i].pushed = true
		}
	}
	for id := range prev {
		if next[id] {
			continue
		}
		i, ok := ps.index[id]
		if !ok {
			continue
		}
		o := ps.objects[i]
		o.pushed = false
		if math.IsInf(o.period, 1) {
			budget := ps.pollBudget()
			if budget <= 0 {
				continue
			}
			o.period = float64(len(ps.objects)) / budget
		}
		ps.queue.Push(t+ps.rng.Float64()*o.period, i)
	}
	ps.pushedBy[r.SourceID] = next
}

// knownFor builds the known-version hints for a targeted poll from the
// cache store: the origin identity and origin-axis version of each held
// copy. Objects not in the store yield no hint (the answerer must reply).
func (ps *pollScheduler) knownFor(ids []string) []wire.KnownVersion {
	var known []wire.KnownVersion
	for _, id := range ids {
		if e, ok := ps.c.Get(id); ok {
			oe, ov := e.OriginAxis()
			known = append(known, wire.KnownVersion{
				ObjectID: id, Origin: e.OriginID(), Epoch: oe, Version: ov,
			})
		}
	}
	return known
}

// refreshFor converts one poll answer into the refresh the apply path
// installs — same staleness guards, stats and OnApply hook as a pushed
// refresh, with the answer's provenance carried through so a node that
// re-exports the polled value keeps the loop-avoidance path and origin
// axis intact (lateral serving would otherwise break the mesh's loop
// guards).
func (ps *pollScheduler) refreshFor(sourceID string, it wire.PollItem) wire.Refresh {
	return wire.Refresh{
		SourceID:      sourceID,
		ObjectID:      it.ObjectID,
		CacheID:       ps.c.cfg.ID,
		Origin:        it.Origin,
		Hops:          it.Hops,
		Via:           it.Via,
		OriginEpoch:   it.OriginEpoch,
		OriginVersion: it.OriginVersion,
		Value:         it.Value,
		Version:       it.Version,
		Epoch:         it.Epoch,
		SentUnix:      it.LastModifiedUnix,
	}
}

// scheduleNew gives the n newest objects a provisional uniform slice of the
// poll budget (the engine's pre-estimate phase) so they are polled before
// the next solve re-derives real frequencies.
func (ps *pollScheduler) scheduleNew(t float64, n int) {
	budget := ps.pollBudget()
	if budget <= 0 {
		return
	}
	period := float64(len(ps.objects)) / budget
	for i := len(ps.objects) - n; i < len(ps.objects); i++ {
		ps.objects[i].period = period
		ps.queue.Push(t+ps.rng.Float64()*period, i)
	}
}

// solve re-estimates every object's update rate, recomputes the optimal
// allocation under the current budget, rebuilds the poll schedule with
// randomized phases, and re-discovers connected sources so new objects
// join the universe.
//
// Objects whose source is not currently connected are carried with a zero
// rate, which the allocator maps to frequency 0 — a departed source's
// objects must not keep capturing poll budget from live ones. Their
// estimator state is retained: if the source reconnects, the next solve
// folds them straight back into the allocation.
func (ps *pollScheduler) solve(t float64) {
	n := len(ps.objects)
	if n > 0 {
		connected := map[string]bool{}
		for _, id := range ps.pe.Sources() {
			connected[id] = true
		}
		lambdas := make([]float64, n)
		for i, o := range ps.objects {
			// Push-set objects carry a zero rate, which the allocator maps
			// to frequency 0: their poll budget flows to the cold tail the
			// cache still owns (mirrors the disconnected-source rule).
			if connected[o.sourceID] && !o.pushed {
				lambdas[i] = ps.lambdaFor(o)
			}
		}
		freqs := cgm.OptimalAllocation(lambdas, ps.pollBudget())
		ps.queue.Reset()
		for i, f := range freqs {
			if f > 0 {
				ps.objects[i].period = 1 / f
				ps.queue.Push(t+ps.rng.Float64()*ps.objects[i].period, i)
			} else {
				ps.objects[i].period = math.Inf(1)
			}
		}
	}
	ps.statMu.Lock()
	ps.resolves++
	ps.statMu.Unlock()
	// Re-discover: objects created at the sources since the last epoch are
	// invisible to targeted polls. The known set is reset so next tick's
	// discoverNew re-polls every connected source's full store. Under the
	// hybrid policy the push stream registers new objects in the cache
	// store as they appear, so the (budget-charged) re-discovery is
	// skipped while the store holds nothing this scheduler has not
	// registered — an object created in the push set and demoted later
	// shows up as a store surplus and triggers the listing again.
	if ps.c.cfg.Policy != PolicyHybrid || ps.c.Len() > len(ps.objects) {
		ps.known = map[string]bool{}
	}
}

// lambdaFor picks the update-rate estimate the configured policy allows.
func (ps *pollScheduler) lambdaFor(o *pollObj) float64 {
	switch ps.c.cfg.Policy {
	case PolicyIdeal:
		if ps.cfg.TrueRate != nil {
			return ps.cfg.TrueRate(o.id)
		}
		fallthrough // degrade to CGM1 estimates (documented on PollConfig)
	case PolicyCGM1:
		if l := o.est1.Estimate(); l > 0 {
			return l
		}
		return o.est1.FloorRate()
	case PolicyCGM2:
		if l := o.est2.Estimate(); l > 0 {
			return l
		}
		return o.est2.FloorRate()
	case PolicyHybrid:
		// The hybrid's poll regime runs CGM1: poll replies carry
		// last-modified metadata, so the stronger estimator is available.
		if l := o.est1.Estimate(); l > 0 {
			return l
		}
		return o.est1.FloorRate()
	default:
		return 0
	}
}
