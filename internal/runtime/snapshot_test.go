package runtime

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bestsync/internal/transport"
)

func cacheWithEntries(t *testing.T, entries map[string]Entry) *Cache {
	t.Helper()
	net := transport.NewLocal(4)
	c := fastCache(net, 1000)
	for id, e := range entries {
		sh := c.shardFor(id)
		sh.mu.Lock()
		sh.store[id] = e
		sh.mu.Unlock()
	}
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	now := time.Now().Round(0)
	src := cacheWithEntries(t, map[string]Entry{
		"a": {Value: 1.5, Version: 3, Epoch: 10, Source: "s1", Refreshed: now},
		"b": {Value: -2, Version: 1, Epoch: 10, Source: "s2", Refreshed: now},
	})
	defer src.Close()

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	dst := cacheWithEntries(t, nil)
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatalf("load: %v", err)
	}
	if dst.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", dst.Len())
	}
	e, ok := dst.Get("a")
	if !ok || e.Value != 1.5 || e.Version != 3 || e.Source != "s1" {
		t.Errorf("entry a = %+v", e)
	}
}

func TestSnapshotLoadNeverRegresses(t *testing.T) {
	// The live store has newer data than the snapshot; loading must keep
	// the live entries.
	var buf bytes.Buffer
	old := cacheWithEntries(t, map[string]Entry{
		"x": {Value: 1, Version: 1, Epoch: 5},
		"y": {Value: 9, Version: 9, Epoch: 5},
	})
	if err := old.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	old.Close()

	live := cacheWithEntries(t, map[string]Entry{
		"x": {Value: 2, Version: 7, Epoch: 5}, // newer version, same epoch
		"y": {Value: 3, Version: 1, Epoch: 6}, // newer epoch, lower version
	})
	defer live.Close()
	if err := live.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if e, _ := live.Get("x"); e.Value != 2 {
		t.Errorf("x regressed to %v", e.Value)
	}
	if e, _ := live.Get("y"); e.Value != 3 {
		t.Errorf("y regressed to %v", e.Value)
	}
}

// TestSnapshotLoadNeverRegressesAcrossSenders is the regression test for
// the cross-sender snapshot bug: LoadSnapshot used to compare
// (Epoch, Version) across different senders — exactly what applyLocked
// forbids, because epochs from different nodes are incomparable wall-clock
// starts. A stale snapshot entry from a later-booted sender (larger epoch)
// would overwrite the live entry despite the "never regresses the store"
// promise. The live entry must win whenever the senders differ.
func TestSnapshotLoadNeverRegressesAcrossSenders(t *testing.T) {
	var buf bytes.Buffer
	old := cacheWithEntries(t, map[string]Entry{
		// The snapshot's copy came from "s-late", a sender that booted
		// recently (big epoch) — but the value itself is old.
		"x": {Value: 1, Version: 9, Epoch: 100, Source: "s-late"},
		// Same-sender entry that IS newer than the live copy: still wins.
		"y": {Value: 8, Version: 5, Epoch: 100, Source: "s1"},
	})
	if err := old.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	old.Close()

	live := cacheWithEntries(t, map[string]Entry{
		// The live feed for x comes from a different sender with a small
		// epoch (it booted long ago) and must not be shadowed.
		"x": {Value: 2, Version: 3, Epoch: 5, Source: "s-early"},
		"y": {Value: 7, Version: 2, Epoch: 100, Source: "s1"},
	})
	defer live.Close()
	if err := live.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if e, _ := live.Get("x"); e.Value != 2 || e.Source != "s-early" {
		t.Errorf("cross-sender snapshot entry overwrote live copy: %+v", e)
	}
	if e, _ := live.Get("y"); e.Value != 8 {
		t.Errorf("same-sender newer snapshot entry lost: %+v", e)
	}
}

func TestSnapshotFileAtomicAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")

	c := cacheWithEntries(t, map[string]Entry{
		"k": {Value: 7, Version: 2, Epoch: 1},
	})
	defer c.Close()

	// Loading a missing file is fine (first boot).
	if err := c.LoadSnapshotFile(path); err != nil {
		t.Fatalf("missing-file load: %v", err)
	}
	if err := c.SaveSnapshotFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	fresh := cacheWithEntries(t, nil)
	defer fresh.Close()
	if err := fresh.LoadSnapshotFile(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if e, ok := fresh.Get("k"); !ok || e.Value != 7 {
		t.Errorf("restored entry = %+v (ok=%v)", e, ok)
	}
	// No stray temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

func TestSnapshotCorruptInput(t *testing.T) {
	c := cacheWithEntries(t, nil)
	defer c.Close()
	if err := c.LoadSnapshot(strings.NewReader("not a gob stream")); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestSnapshotVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	c := cacheWithEntries(t, nil)
	defer c.Close()
	if err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Tamper: re-encode with a wrong version by decoding and rewriting is
	// overkill; simply verify the version constant is enforced by loading
	// a hand-built stream.
	var tampered bytes.Buffer
	enc := gob.NewEncoder(&tampered)
	if err := enc.Encode(snapshot{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadSnapshot(&tampered); err == nil {
		t.Error("version-mismatched snapshot accepted")
	}
}
