package netsim

import (
	"testing"

	"bestsync/internal/bandwidth"
)

func TestLinkDeliverRequiresCapacity(t *testing.T) {
	l := NewLink(bandwidth.Const(1), 0)
	l.Enqueue(Message{Object: 1})
	if _, ok := l.Deliver(); ok {
		t.Fatal("delivered with no accrued capacity")
	}
	l.Advance(1, 10) // 1 token
	m, ok := l.Deliver()
	if !ok || m.Object != 1 {
		t.Fatalf("Deliver = (%+v, %v), want object 1", m, ok)
	}
	if _, ok := l.Deliver(); ok {
		t.Fatal("delivered beyond capacity")
	}
}

func TestLinkFIFO(t *testing.T) {
	l := NewLink(bandwidth.Const(10), 0)
	for i := 0; i < 5; i++ {
		l.Enqueue(Message{Object: i})
	}
	l.Advance(1, 10)
	for i := 0; i < 5; i++ {
		m, ok := l.Deliver()
		if !ok || m.Object != i {
			t.Fatalf("delivery %d = (%+v, %v)", i, m, ok)
		}
	}
}

func TestLinkQueueGrowsUnderOverload(t *testing.T) {
	l := NewLink(bandwidth.Const(1), 0)
	for tick := 1; tick <= 10; tick++ {
		// 3 msgs/s offered, 1/s capacity.
		for i := 0; i < 3; i++ {
			l.Enqueue(Message{})
		}
		l.Advance(float64(tick), 1)
		for {
			if _, ok := l.Deliver(); !ok {
				break
			}
		}
	}
	if got := l.QueueLen(); got != 20 {
		t.Errorf("queue length after overload = %d, want 20", got)
	}
	if l.PeakQueue() < 20 {
		t.Errorf("peak queue = %d, want ≥ 20", l.PeakQueue())
	}
}

func TestLinkBoundedQueueDrops(t *testing.T) {
	l := NewLink(bandwidth.Const(0), 3)
	for i := 0; i < 5; i++ {
		l.Enqueue(Message{})
	}
	if l.QueueLen() != 3 {
		t.Errorf("queue length = %d, want 3", l.QueueLen())
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
	if l.Enqueued() != 3 {
		t.Errorf("enqueued = %d, want 3", l.Enqueued())
	}
}

func TestLinkTryConsumeSharesCapacity(t *testing.T) {
	// Feedback and refresh delivery draw from the same cache-side budget.
	l := NewLink(bandwidth.Const(2), 0)
	l.Advance(1, 10) // 2 tokens
	if !l.TryConsume(1) {
		t.Fatal("TryConsume failed with 2 tokens")
	}
	l.Enqueue(Message{})
	if _, ok := l.Deliver(); !ok {
		t.Fatal("Deliver failed with 1 token left")
	}
	if l.TryConsume(1) {
		t.Fatal("TryConsume succeeded with 0 tokens")
	}
}

func TestLinkBurstCap(t *testing.T) {
	l := NewLink(bandwidth.Const(100), 0)
	l.Advance(10, 5) // 1000 earned, capped at 5
	if l.Tokens() != 5 {
		t.Errorf("tokens = %v, want 5 (burst cap)", l.Tokens())
	}
}

func TestLinkCompaction(t *testing.T) {
	// Push and drain enough messages to trigger internal compaction; FIFO
	// order must be preserved throughout.
	l := NewLink(bandwidth.Const(1e9), 0)
	next := 0
	seq := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			l.Enqueue(Message{Object: seq})
			seq++
		}
		l.Advance(float64(round+1), 1e9)
		for i := 0; i < 60; i++ {
			m, ok := l.Deliver()
			if !ok {
				t.Fatal("unexpected empty delivery")
			}
			if m.Object != next {
				t.Fatalf("got object %d, want %d", m.Object, next)
			}
			next++
		}
	}
	for {
		m, ok := l.Deliver()
		if !ok {
			break
		}
		if m.Object != next {
			t.Fatalf("drain: got %d, want %d", m.Object, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("delivered %d messages, want %d", next, seq)
	}
}

func TestLinkFractionalRateAccumulates(t *testing.T) {
	// 0.5 msgs/s: one delivery every two seconds.
	l := NewLink(bandwidth.Const(0.5), 0)
	for i := 0; i < 10; i++ {
		l.Enqueue(Message{})
	}
	delivered := 0
	for tick := 1; tick <= 10; tick++ {
		l.Advance(float64(tick), 1)
		for {
			if _, ok := l.Deliver(); !ok {
				break
			}
			delivered++
		}
	}
	if delivered != 5 {
		t.Errorf("delivered %d in 10s at 0.5/s, want 5", delivered)
	}
}
