// Package netsim implements the paper's network model (Section 1.2): "a
// standard underlying network model where any messages for which there is
// not enough capacity become enqueued for later transmission". All messages
// have unit size (Section 6).
//
// A Link couples a FIFO message queue with a token bucket fed by a
// bandwidth.Profile. When sources push refreshes faster than the cache-side
// capacity drains them, the queue grows and deliveries lag — the flooding
// regime the threshold-setting algorithm must avoid.
package netsim

import (
	"bestsync/internal/bandwidth"
)

// MsgKind distinguishes protocol message types. Every kind costs one unit of
// link capacity.
type MsgKind int

const (
	// MsgRefresh carries a fresh object value from a source to the cache.
	MsgRefresh MsgKind = iota
	// MsgFeedback is a positive-feedback message from the cache asking a
	// source to lower its threshold (Section 5).
	MsgFeedback
	// MsgRaise is a negative-feedback message asking a source to raise its
	// threshold; only used by the ablation variant, which the paper argues
	// is unstable.
	MsgRaise
	// MsgPollRequest and MsgPollResponse model CGM-style polling round
	// trips (Section 6.3).
	MsgPollRequest
	// MsgPollResponse is the source's reply to a poll.
	MsgPollResponse
)

// BatchEntry is one object refresh inside a batched message (the Section
// 10.1 packaging extension).
type BatchEntry struct {
	Object  int
	Value   float64
	Version uint64
}

// Message is a protocol message. Size defaults to one unit; the Section 10.1
// extensions (non-uniform object sizes, delta encoding, batching) set larger
// or fractional sizes.
type Message struct {
	Kind      MsgKind
	Source    int          // originating (or target) source id
	Object    int          // global object index, when applicable
	Value     float64      // object value carried by refreshes / poll responses
	Version   uint64       // source version number of Value
	Threshold float64      // piggybacked local threshold (Section 5)
	Sent      float64      // enqueue time
	Size      float64      // bandwidth units consumed; ≤0 means 1
	Entries   []BatchEntry // additional refreshes packaged into this message
}

// Cost returns the bandwidth the message consumes.
func (m *Message) Cost() float64 {
	if m.Size <= 0 {
		return 1
	}
	return m.Size
}

// Link is a capacity-constrained FIFO channel.
type Link struct {
	profile  bandwidth.Profile
	bucket   bandwidth.Bucket
	lastT    float64
	queue    []Message
	head     int
	peakQ    int
	enqueued int
	dropped  int
	maxQueue int // 0 = unbounded
}

// NewLink creates a link governed by profile. maxQueue bounds the number of
// queued messages (0 = unbounded, the paper's model); overflow counts as
// dropped, used only for failure-injection tests.
func NewLink(profile bandwidth.Profile, maxQueue int) *Link {
	return &Link{profile: profile, maxQueue: maxQueue}
}

// Advance accrues capacity up to time now. burst caps accumulated unused
// capacity (normally max(1, capacity of one tick)).
func (l *Link) Advance(now, burst float64) {
	l.bucket.Burst = burst
	l.bucket.Accrue(l.profile, l.lastT, now)
	l.lastT = now
}

// Rate returns the instantaneous capacity at time t.
func (l *Link) Rate(t float64) float64 { return l.profile.Rate(t) }

// Enqueue appends a message to the queue. It returns false if the queue is
// bounded and full (the message is dropped).
func (l *Link) Enqueue(m Message) bool {
	if l.maxQueue > 0 && l.QueueLen() >= l.maxQueue {
		l.dropped++
		return false
	}
	l.queue = append(l.queue, m)
	l.enqueued++
	if q := l.QueueLen(); q > l.peakQ {
		l.peakQ = q
	}
	return true
}

// Deliver pops the next message if enough capacity for it is available.
// Large messages block the FIFO head until capacity accrues.
func (l *Link) Deliver() (Message, bool) {
	if l.QueueLen() == 0 || !l.bucket.TryTake(l.queue[l.head].Cost()) {
		return Message{}, false
	}
	m := l.queue[l.head]
	l.head++
	// Compact occasionally so the backing array doesn't grow without bound.
	if l.head > 1024 && l.head*2 >= len(l.queue) {
		n := copy(l.queue, l.queue[l.head:])
		l.queue = l.queue[:n]
		l.head = 0
	}
	return m, true
}

// TryConsume spends n units of capacity without delivering a message; the
// cache uses this for outbound feedback, which shares cache-side bandwidth
// with inbound refreshes (Section 5).
func (l *Link) TryConsume(n float64) bool { return l.bucket.TryTake(n) }

// Tokens returns the currently available capacity.
func (l *Link) Tokens() float64 { return l.bucket.Tokens }

// QueueLen returns the number of queued (undelivered) messages.
func (l *Link) QueueLen() int { return len(l.queue) - l.head }

// PeakQueue returns the maximum queue length observed.
func (l *Link) PeakQueue() int { return l.peakQ }

// Enqueued returns the total number of messages accepted.
func (l *Link) Enqueued() int { return l.enqueued }

// Dropped returns the number of messages rejected by a bounded queue.
func (l *Link) Dropped() int { return l.dropped }
