package bound_test

import (
	"fmt"

	"bestsync/internal/bound"
)

// ExampleOptimalPeriods shows the closed-form Section 9 schedule: refresh
// frequency proportional to sqrt(weight × max-rate), equalizing the
// priority every object reaches at its refresh instant.
func ExampleOptimalPeriods() {
	maxRates := []float64{0.25, 1, 4} // units/second worst case
	weights := []float64{1, 1, 1}
	periods, err := bound.OptimalPeriods(maxRates, weights, 3.5) // 3.5 refreshes/s
	if err != nil {
		panic(err)
	}
	for i, T := range periods {
		fmt.Printf("R=%-4g → refresh every %.2fs, guaranteed bound ≤ %.2f\n",
			maxRates[i], T, bound.Bound(maxRates[i], T, 0))
	}
	// Output:
	// R=0.25 → refresh every 2.00s, guaranteed bound ≤ 0.50
	// R=1    → refresh every 1.00s, guaranteed bound ≤ 1.00
	// R=4    → refresh every 0.50s, guaranteed bound ≤ 2.00
}
