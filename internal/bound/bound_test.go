package bound

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoundFormula(t *testing.T) {
	if got := Bound(2, 5, 1); got != 12 {
		t.Errorf("Bound = %v, want 12", got)
	}
	if got := Bound(2, -1, 1); got != 2 {
		t.Errorf("Bound with negative elapsed = %v, want 2 (clamped)", got)
	}
}

func TestPriorityFormula(t *testing.T) {
	if got := Priority(2, 4, 3); got != 48 {
		t.Errorf("Priority = %v, want 48", got)
	}
	if got := Priority(2, -4, 3); got != 0 {
		t.Errorf("Priority negative elapsed = %v, want 0", got)
	}
}

func TestTrackerAverage(t *testing.T) {
	// R=1, L=0, refresh every 10s: bound ramps 0→10, average 5.
	tr := NewTracker(1, 0)
	for now := 10.0; now <= 100; now += 10 {
		tr.Refresh(now)
	}
	got := tr.Average(100)
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("Average = %v, want 5", got)
	}
}

func TestTrackerWithLatency(t *testing.T) {
	tr := NewTracker(2, 3)
	tr.Refresh(10)
	// Over [0,10]: ∫2(τ+3)dτ = 2(50+30) = 160 → avg 16.
	got := tr.Average(10)
	if math.Abs(got-16) > 1e-9 {
		t.Errorf("Average = %v, want 16", got)
	}
	if cur := tr.Current(12); math.Abs(cur-2*(2+3)) > 1e-9 {
		t.Errorf("Current = %v, want 10", cur)
	}
}

func TestTrackerNoDoubleCount(t *testing.T) {
	tr := NewTracker(1, 0)
	tr.Refresh(10)
	a := tr.Average(20)
	b := tr.Average(20) // idempotent
	if a != b {
		t.Errorf("repeated Average differed: %v vs %v", a, b)
	}
}

func TestTrackerZeroTime(t *testing.T) {
	tr := NewTracker(1, 0)
	if got := tr.Average(0); got != 0 {
		t.Errorf("Average(0) = %v, want 0", got)
	}
}

func TestOptimalPeriodsSatisfyBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		rates := make([]float64, n)
		weights := make([]float64, n)
		for i := range rates {
			rates[i] = rng.Float64() * 5
			weights[i] = 0.5 + rng.Float64()*9.5
		}
		budget := 1 + rng.Float64()*10
		periods, err := OptimalPeriods(rates, weights, budget)
		if err != nil {
			t.Fatalf("OptimalPeriods: %v", err)
		}
		sum := 0.0
		for _, p := range periods {
			if !math.IsInf(p, 1) {
				sum += 1 / p
			}
		}
		if math.Abs(sum-budget) > 1e-9*budget {
			t.Errorf("trial %d: Σ1/T = %v, want %v", trial, sum, budget)
		}
	}
}

func TestOptimalPeriodsEqualizesPriority(t *testing.T) {
	// At the optimum every refreshed object reaches the same priority
	// R·T²/2·w at its refresh instant — the threshold T⋆ of Equation (1).
	rates := []float64{0.5, 1, 2, 4}
	weights := []float64{1, 2, 3, 4}
	periods, err := OptimalPeriods(rates, weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := Priority(rates[0], periods[0], weights[0])
	for i := 1; i < len(rates); i++ {
		p := Priority(rates[i], periods[i], weights[i])
		if math.Abs(p-first)/first > 1e-9 {
			t.Errorf("priority at refresh differs: object %d has %v, object 0 has %v",
				i, p, first)
		}
	}
}

func TestOptimalPeriodsBeatPerturbations(t *testing.T) {
	// Local optimality: shifting bandwidth between any two objects (keeping
	// Σ1/T fixed) must not lower the average bound.
	rates := []float64{0.2, 1, 3}
	weights := []float64{5, 1, 2}
	const budget = 2.0
	periods, err := OptimalPeriods(rates, weights, budget)
	if err != nil {
		t.Fatal(err)
	}
	base := AverageBound(rates, weights, periods, 0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(3), rng.Intn(3)
		if i == j {
			continue
		}
		eps := (rng.Float64() - 0.5) * 0.1
		fi := 1/periods[i] + eps
		fj := 1/periods[j] - eps
		if fi <= 0 || fj <= 0 {
			continue
		}
		perturbed := append([]float64(nil), periods...)
		perturbed[i] = 1 / fi
		perturbed[j] = 1 / fj
		if got := AverageBound(rates, weights, perturbed, 0); got < base-1e-9 {
			t.Fatalf("perturbation beat optimum: %v < %v", got, base)
		}
	}
}

func TestOptimalPeriodsZeroRateObjects(t *testing.T) {
	periods, err := OptimalPeriods([]float64{0, 1}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(periods[0], 1) {
		t.Errorf("zero-rate object period = %v, want +Inf", periods[0])
	}
	if math.Abs(1/periods[1]-2) > 1e-9 {
		t.Errorf("all budget should go to the changing object, T = %v", periods[1])
	}
}

func TestOptimalPeriodsAllStatic(t *testing.T) {
	periods, err := OptimalPeriods([]float64{0, 0}, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods {
		if !math.IsInf(p, 1) {
			t.Errorf("static population got period %v", p)
		}
	}
	if got := AverageBound([]float64{0, 0}, []float64{1, 1}, periods, 1); got != 0 {
		t.Errorf("static average bound = %v, want 0", got)
	}
}

func TestOptimalPeriodsErrors(t *testing.T) {
	if _, err := OptimalPeriods([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := OptimalPeriods([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := OptimalPeriods([]float64{-1}, []float64{1}, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestAverageBoundUnrefreshedVolatile(t *testing.T) {
	got := AverageBound([]float64{1}, []float64{1}, []float64{math.Inf(1)}, 0)
	if !math.IsInf(got, 1) {
		t.Errorf("unrefreshed volatile object bound = %v, want +Inf", got)
	}
}
