// Package bound implements Section 9: guaranteed upper bounds on divergence
// for objects with known maximum divergence rates, and the scheduling policy
// that minimizes the average bound.
//
// With R_i the maximum divergence rate of object O_i and L_i an upper bound
// on refresh latency, the divergence bound at time t is
//
//	B(O_i, t) = R_i · ((t − t_last(i)) + L_i),
//
// and the optimal priority for minimizing the time-averaged bound is
//
//	P(O_i, t) = R_i · (t − t_last(i))² / 2 · W(O_i, t).
package bound

import (
	"fmt"
	"math"
)

// Bound returns B(O, t) given the object's maximum divergence rate, the
// elapsed time since its last refresh, and the refresh latency bound L.
func Bound(maxRate, sinceRefresh, latency float64) float64 {
	if sinceRefresh < 0 {
		sinceRefresh = 0
	}
	return maxRate * (sinceRefresh + latency)
}

// Priority returns the Section 9 refresh priority.
func Priority(maxRate, sinceRefresh, w float64) float64 {
	if sinceRefresh < 0 {
		sinceRefresh = 0
	}
	return maxRate * sinceRefresh * sinceRefresh / 2 * w
}

// Tracker accumulates the exact time integral of an object's divergence
// bound across refreshes, for measuring time-averaged bounds.
type Tracker struct {
	MaxRate float64 // R
	Latency float64 // L

	lastRefresh float64
	acc         float64
	accTo       float64
}

// NewTracker starts tracking at time 0 with the object just refreshed.
func NewTracker(maxRate, latency float64) *Tracker {
	return &Tracker{MaxRate: maxRate, Latency: latency}
}

// Refresh records a refresh at time now, folding the bound accumulated since
// the previous refresh into the running integral.
func (t *Tracker) Refresh(now float64) {
	t.advance(now)
	t.lastRefresh = now
}

func (t *Tracker) advance(now float64) {
	if now <= t.accTo {
		return
	}
	// ∫ R(τ − t_last + L) dτ over [accTo, now], piecewise linear.
	a := t.accTo - t.lastRefresh
	b := now - t.lastRefresh
	t.acc += t.MaxRate * ((b*b-a*a)/2 + t.Latency*(b-a))
	t.accTo = now
}

// Average returns the time-averaged bound over [0, now].
func (t *Tracker) Average(now float64) float64 {
	if now <= 0 {
		return 0
	}
	t.advance(now)
	return t.acc / now
}

// Current returns B(O, now).
func (t *Tracker) Current(now float64) float64 {
	return Bound(t.MaxRate, now-t.lastRefresh, t.Latency)
}

// OptimalPeriods returns the refresh periods T_i that minimize the total
// weighted time-averaged bound Σ w_i·R_i·(T_i/2 + L_i) subject to the
// bandwidth constraint Σ 1/T_i = budget. The Lagrange condition gives the
// closed form
//
//	T_i = Σ_j sqrt(w_j·R_j) / (budget · sqrt(w_i·R_i)).
//
// Objects with w_i·R_i = 0 never need refreshing (period +Inf).
func OptimalPeriods(maxRates, weights []float64, budget float64) ([]float64, error) {
	if len(maxRates) != len(weights) {
		return nil, fmt.Errorf("bound: %d rates but %d weights", len(maxRates), len(weights))
	}
	if budget <= 0 {
		return nil, fmt.Errorf("bound: budget must be > 0, got %v", budget)
	}
	n := len(maxRates)
	periods := make([]float64, n)
	sumRoot := 0.0
	for i := 0; i < n; i++ {
		if maxRates[i] < 0 || weights[i] < 0 {
			return nil, fmt.Errorf("bound: negative rate or weight at %d", i)
		}
		sumRoot += math.Sqrt(weights[i] * maxRates[i])
	}
	if sumRoot == 0 {
		for i := range periods {
			periods[i] = math.Inf(1)
		}
		return periods, nil
	}
	for i := 0; i < n; i++ {
		wr := math.Sqrt(weights[i] * maxRates[i])
		if wr == 0 {
			periods[i] = math.Inf(1)
			continue
		}
		periods[i] = sumRoot / (budget * wr)
	}
	return periods, nil
}

// AverageBound returns the steady-state time-averaged weighted bound
// achieved by refreshing each object at its given period:
// Σ w_i·R_i·(T_i/2 + L_i) / n.
func AverageBound(maxRates, weights, periods []float64, latency float64) float64 {
	total := 0.0
	for i := range maxRates {
		if math.IsInf(periods[i], 1) {
			if maxRates[i] > 0 {
				return math.Inf(1)
			}
			continue
		}
		total += weights[i] * maxRates[i] * (periods[i]/2 + latency)
	}
	return total / float64(len(maxRates))
}
