// Package adminhttp implements the small HTTP admin surface shared by the
// daemons: adding and removing fan-out destinations on a running node
// (sourceagent's /caches/*, cachesyncd's /children/*). Both daemons build
// their handlers here so the dial/wrap/redial semantics of a destination
// added over HTTP cannot drift from one added with a boot flag — the
// handlers route through runtime.DialDestinations exactly like the flags
// do.
package adminhttp

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

// RegisterPprof mounts the standard net/http/pprof handlers under
// /debug/pprof/ on mux. The daemons call this behind their -pprof flag so
// CPU and heap profiles of a live node are one curl away without the
// blanket side effects of importing net/http/pprof into the default mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// AddHandler returns a POST handler that dials ?addr=host:port (optional
// &weight=w, a positive Section 7 share weight) and hands the resulting
// destination to add. An address that is down right now is still added —
// it starts on a dead stub connection and the session's redial loop
// connects when the peer appears, the same deferred-dial contract the boot
// flags have. wrap decorates the connection (and every redial) the same
// way the daemon wraps its boot-time destinations, e.g. in a
// transport.Batcher; nil means use it as-is.
func AddHandler(add func(runtime.Destination) error, sourceID string, wrap func(transport.SourceConn) transport.SourceConn) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed (POST)", http.StatusMethodNotAllowed)
			return
		}
		addr := r.FormValue("addr")
		if addr == "" {
			http.Error(w, "missing addr=host:port", http.StatusBadRequest)
			return
		}
		weight := 0.0
		if ws := r.FormValue("weight"); ws != "" {
			var err error
			weight, err = strconv.ParseFloat(ws, 64)
			if err != nil || weight <= 0 {
				http.Error(w, "weight must be a positive number", http.StatusBadRequest)
				return
			}
		}
		dests, deferred := runtime.DialDestinations([]string{addr}, []float64{weight}, sourceID, wrap)
		if err := add(dests[0]); err != nil {
			dests[0].Conn.Close()
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if len(deferred) > 0 {
			fmt.Fprintf(w, "added %s (unreachable now, session will keep redialing)\n", addr)
			return
		}
		fmt.Fprintf(w, "added %s\n", addr)
	}
}

// RemoveHandler returns a POST handler that removes the destination whose
// label is ?addr=host:port (destinations added by flag or by AddHandler
// are labeled with their dial address).
func RemoveHandler(remove func(addr string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed (POST)", http.StatusMethodNotAllowed)
			return
		}
		addr := r.FormValue("addr")
		if addr == "" {
			http.Error(w, "missing addr=host:port", http.StatusBadRequest)
			return
		}
		if err := remove(addr); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "removed %s\n", addr)
	}
}
