package adminhttp

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

// adminFixture is the daemon wiring in miniature: a live TCP cache, a
// fan-out source that can add/remove destinations at runtime, and the mux
// both daemons build from this package's handlers plus the cache's status
// handler.
type adminFixture struct {
	mux       *http.ServeMux
	cacheAddr string
	src       *runtime.Source
}

func newAdminFixture(t *testing.T) *adminFixture {
	t.Helper()
	// The destination cache the admin endpoint will add/remove.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.Serve(ln, 16)
	cache := runtime.NewCache(runtime.CacheConfig{
		ID: "admin-cache", Bandwidth: 1000, Tick: 5 * time.Millisecond,
	}, ep)
	t.Cleanup(func() { cache.Close(); ep.Close() })

	// A seed destination so the source can boot (sources need ≥ 1).
	seedNet := transport.NewLocal(16)
	seedCache := runtime.NewCache(runtime.CacheConfig{
		ID: "seed", Bandwidth: 1000, Tick: 5 * time.Millisecond,
	}, seedNet)
	t.Cleanup(func() { seedCache.Close(); seedNet.Close() })
	seedConn, err := seedNet.Dial("admin-src")
	if err != nil {
		t.Fatal(err)
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID: "admin-src", Metric: metric.ValueDeviation,
		Bandwidth: 100, Tick: 5 * time.Millisecond,
	}, []runtime.Destination{{CacheID: "seed", Conn: seedConn}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })

	mux := http.NewServeMux()
	mux.Handle("/status", cache.StatusHandler(10))
	mux.HandleFunc("/caches/add", AddHandler(src.AddDestination, "admin-src", nil))
	mux.HandleFunc("/caches/remove", RemoveHandler(src.RemoveDestination))
	return &adminFixture{mux: mux, cacheAddr: ln.Addr().String(), src: src}
}

func (f *adminFixture) do(t *testing.T, method, target string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	f.mux.ServeHTTP(rec, req)
	return rec
}

func TestStatusGet(t *testing.T) {
	f := newAdminFixture(t)
	rec := f.do(t, http.MethodGet, "/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var st runtime.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status body does not decode: %v", err)
	}
	if st.CacheID != "admin-cache" || st.Policy != "push" {
		t.Errorf("status = id %q policy %q, want admin-cache/push", st.CacheID, st.Policy)
	}

	if rec := f.do(t, http.MethodPost, "/status"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /status = %d, want 405", rec.Code)
	}
}

func TestAddRemoveHappyPath(t *testing.T) {
	f := newAdminFixture(t)
	addr := url.QueryEscape(f.cacheAddr)

	rec := f.do(t, http.MethodPost, "/caches/add?addr="+addr+"&weight=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("add = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "added") {
		t.Errorf("add body %q lacks confirmation", rec.Body.String())
	}
	found := false
	for _, sess := range f.src.Stats().Sessions {
		if sess.CacheID == f.cacheAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("added destination %s not among sessions", f.cacheAddr)
	}

	// Duplicate labels conflict (RemoveDestination is keyed by them).
	if rec := f.do(t, http.MethodPost, "/caches/add?addr="+addr); rec.Code != http.StatusConflict {
		t.Errorf("duplicate add = %d, want 409", rec.Code)
	}

	rec = f.do(t, http.MethodPost, "/caches/remove?addr="+addr)
	if rec.Code != http.StatusOK {
		t.Fatalf("remove = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	for _, sess := range f.src.Stats().Sessions {
		if sess.CacheID == f.cacheAddr && !sess.Ended {
			t.Errorf("removed destination still live")
		}
	}
}

func TestAddRejectsMalformedRequests(t *testing.T) {
	f := newAdminFixture(t)
	cases := []struct {
		name   string
		method string
		target string
		want   int
	}{
		{"wrong method", http.MethodGet, "/caches/add?addr=x:1", http.StatusMethodNotAllowed},
		{"missing addr", http.MethodPost, "/caches/add", http.StatusBadRequest},
		{"non-numeric weight", http.MethodPost, "/caches/add?addr=x:1&weight=heavy", http.StatusBadRequest},
		{"negative weight", http.MethodPost, "/caches/add?addr=x:1&weight=-2", http.StatusBadRequest},
		{"zero weight", http.MethodPost, "/caches/add?addr=x:1&weight=0", http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := f.do(t, c.method, c.target); rec.Code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, rec.Code, c.want)
		}
	}
}

func TestRemoveErrors(t *testing.T) {
	f := newAdminFixture(t)
	if rec := f.do(t, http.MethodGet, "/caches/remove?addr=x:1"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("wrong method = %d, want 405", rec.Code)
	}
	if rec := f.do(t, http.MethodPost, "/caches/remove"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing addr = %d, want 400", rec.Code)
	}
	if rec := f.do(t, http.MethodPost, "/caches/remove?addr=ghost:1"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown destination = %d, want 404", rec.Code)
	}
}

func TestUnknownRoute(t *testing.T) {
	f := newAdminFixture(t)
	if rec := f.do(t, http.MethodGet, "/children/recycle"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", rec.Code)
	}
}

// TestAddDefersUnreachable: the deferred-dial contract — an address that is
// down right now is still added (the session's redial loop connects later)
// and the response says so.
func TestAddDefersUnreachable(t *testing.T) {
	f := newAdminFixture(t)
	// A listener we open and immediately close: the port is valid syntax
	// but refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	rec := f.do(t, http.MethodPost, "/caches/add?addr="+url.QueryEscape(dead))
	if rec.Code != http.StatusOK {
		t.Fatalf("deferred add = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "redialing") {
		t.Errorf("deferred add body %q does not mention redialing", rec.Body.String())
	}
}

// TestRegisterPprof: the -pprof wiring must expose the standard profiling
// endpoints on the daemon mux — and only when registered.
func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	for _, target := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", target, rec.Code)
		}
	}

	// Without registration the daemon must not leak the endpoints.
	bare := http.NewServeMux()
	bare.HandleFunc("/caches/add", AddHandler(nil, "x", nil))
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	bare.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unregistered GET /debug/pprof/ = %d, want 404", rec.Code)
	}
}
