package experiments

import (
	"fmt"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/cgm"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/stats"
	"bestsync/internal/workload"
)

// f4Config is one cell of the Figure 4 grid.
type f4Config struct {
	m, n   int
	bs, bc float64
	mB     float64
}

// F4RatioToIdeal reproduces Figure 4: across a large grid of source counts,
// object counts, bandwidths and bandwidth change rates, plot the ratio of
// our algorithm's average divergence to the idealized scenario's divergence,
// against the theoretically achievable (ideal) divergence — one panel per
// metric. The paper's shape: ratios up to ≈4 when achievable divergence is
// tiny (the absolute gap is still small there), approaching 1 as achievable
// divergence grows.
func F4RatioToIdeal(scale Scale, seed int64) Output {
	ms := []int{1, 10, 100}
	ns := []int{1, 10, 100}
	bss := []float64{10, 100}
	bcs := []float64{10, 100, 1000}
	mbs := []float64{0, 0.25}
	duration, warmup := 400.0, 100.0
	if scale == Full {
		ms = []int{1, 10, 100, 1000}
		ns = []int{1, 10, 100}
		bss = []float64{10, 100}
		bcs = []float64{10, 100, 1000, 10000, 100000}
		mbs = []float64{0, 0.005, 0.05, 0.25}
		duration, warmup = 5000, 1000
	}
	var grid []f4Config
	maxObjects := 1000
	if scale == Full {
		maxObjects = 100000
	}
	for _, m := range ms {
		for _, n := range ns {
			if m*n > maxObjects {
				continue
			}
			for _, bs := range bss {
				for _, bc := range bcs {
					// Skip cells where cache bandwidth dwarfs the whole
					// population by 100×; both schedulers are trivially
					// near-zero there.
					if bc > float64(m*n)*100 {
						continue
					}
					for _, mB := range mbs {
						grid = append(grid, f4Config{m, n, bs, bc, mB})
					}
				}
			}
		}
	}

	var figs []Figure
	summary := stats.Table{
		Title:   "F4 summary: ratio of our algorithm to ideal divergence",
		Headers: []string{"metric", "configs", "median ratio", "p90 ratio", "max ratio"},
	}
	for _, mk := range metric.Kinds() {
		ser := stats.Series{Name: "ratio actual/ideal"}
		var ratios []float64
		for ci, gc := range grid {
			runSeed := seed + int64(ci)
			rng := rand.New(rand.NewSource(runSeed + 31))
			rates, weights := fluctuatingPopulation(rng, gc.m*gc.n)
			base := engine.Config{
				Seed:             runSeed,
				Sources:          gc.m,
				ObjectsPerSource: gc.n,
				Metric:           mk,
				PriorityFn:       PriorityForMetric(mk),
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Fluctuating(gc.bc, gc.mB, 0),
				SourceBW:         bandwidth.Fluctuating(gc.bs, gc.mB, 2),
				Rates:            rates,
				Weights:          weights,
			}
			base.Policy = engine.IdealCooperative
			ideal := engine.MustRun(base).AvgDivergence
			base.Policy = engine.Cooperative
			actual := engine.MustRun(base).AvgDivergence
			if ideal <= 1e-9 {
				continue // ratio undefined at zero achievable divergence
			}
			ratio := actual / ideal
			ser.Add(ideal, ratio)
			ratios = append(ratios, ratio)
		}
		ser.Sort()
		figs = append(figs, Figure{
			Title:  fmt.Sprintf("Figure 4 (%s metric)", mk),
			XLabel: "theoretically achievable divergence",
			YLabel: "ratio of actual to ideal divergence",
			Series: []stats.Series{ser},
		})
		med, p90, max := quantiles(ratios)
		summary.AddRowf(mk.String(), len(ratios), med, p90, max)
	}
	return Output{Name: "F4 comparison against the idealized scenario",
		Tables: []stats.Table{summary}, Figures: figs}
}

func quantiles(xs []float64) (med, p90, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2], s[len(s)*9/10], s[len(s)-1]
}

// F5Buoys reproduces Figure 5: wind-vector monitoring over m = 40 ocean
// buoys (n = 2 numeric components each, one measurement every 10 minutes, 7
// days with the first as warm-up), value-deviation metric Δ = |V1 − V2|,
// cache-side bandwidth limited to 1–80 messages/minute — fixed in the first
// panel, fluctuating with m_B = 0.25 (per minute) in the second. Our traces
// are synthetic OU wind processes (see DESIGN.md §4). The paper's shape:
// divergence falls steeply with bandwidth and our algorithm closely tracks
// the ideal scenario.
func F5Buoys(scale Scale, seed int64) Output {
	cfgB := workload.DefaultBuoyConfig()
	bandwidths := []float64{1, 2, 5, 10, 20, 40, 80}
	if scale == Quick {
		cfgB.Days = 2
	} else {
		bandwidths = []float64{1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80}
	}
	warmupDays := 1.0
	const buoys, comps = 40, 2
	rng := rand.New(rand.NewSource(seed + 4242))
	fleet := workload.GenBuoyFleet(rng, cfgB, buoys, comps)

	var figs []Figure
	for _, fluct := range []bool{false, true} {
		ours := stats.Series{Name: "our algorithm"}
		ideal := stats.Series{Name: "ideal scenario"}
		for bi, bpm := range bandwidths {
			perSec := bpm / 60
			var prof bandwidth.Profile = bandwidth.Const(perSec)
			if fluct {
				// m_B = 0.25 per *minute* (the experiment's bandwidth unit).
				prof = bandwidth.Fluctuating(perSec, 0.25/60, 0)
			}
			base := engine.Config{
				Seed:             seed + int64(bi),
				Sources:          buoys,
				ObjectsPerSource: comps,
				Metric:           metric.ValueDeviation,
				Duration:         cfgB.Days * 86400,
				Warmup:           warmupDays * 86400,
				Tick:             60,
				CacheBW:          prof,
				Traces:           fleet,
			}
			base.Policy = engine.Cooperative
			ours.Add(bpm, engine.MustRun(base).AvgDivergence)
			base.Policy = engine.IdealCooperative
			ideal.Add(bpm, engine.MustRun(base).AvgDivergence)
		}
		title := "Figure 5: fixed bandwidth"
		if fluct {
			title = "Figure 5: fluctuating bandwidth"
		}
		figs = append(figs, Figure{
			Title:  title,
			XLabel: "available bandwidth (messages/minute)",
			YLabel: "average divergence (value deviation)",
			Series: []stats.Series{ours, ideal},
		})
	}
	tb := stats.Table{
		Title:   "F5: average value deviation on wind-buoy data",
		Headers: []string{"bandwidth/min", "fixed ours", "fixed ideal", "fluct ours", "fluct ideal"},
	}
	for i := range figs[0].Series[0].Points {
		tb.AddRowf(
			figs[0].Series[0].Points[i].X,
			figs[0].Series[0].Points[i].Y,
			figs[0].Series[1].Points[i].Y,
			figs[1].Series[0].Points[i].Y,
			figs[1].Series[1].Points[i].Y,
		)
	}
	return Output{Name: "F5 wind-buoy data", Tables: []stats.Table{tb}, Figures: figs}
}

// F6VsCGM reproduces Figure 6: cooperative scheduling versus the
// cache-driven CGM family. For m sources of n = 10 objects each, the
// cache-side bandwidth is a fraction (0.1–0.9) of the total object count,
// held constant (m_B = 0); source-side bandwidth is unlimited (the CGM
// polling model assumes none). Average unweighted staleness over 500 s after
// warm-up. Expected ordering at low fractions: ideal cooperative ≤ ours ≤
// ideal cache-based ≤ CGM1 ≤ CGM2, with a wide cooperative-vs-polled gap.
func F6VsCGM(scale Scale, seed int64) Output {
	ms := []int{10, 100}
	fractions := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	duration, warmup := 400.0, 100.0
	seeds := 2
	if scale == Full {
		ms = []int{10, 100, 1000}
		fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		duration, warmup = 600, 100
		seeds = 3
	}
	const n = 10
	var figs []Figure
	var tables []stats.Table
	for _, m := range ms {
		names := []string{"ideal cooperative", "our algorithm", "ideal cache-based", "CGM1", "CGM2"}
		series := make([]stats.Series, len(names))
		for i, nm := range names {
			series[i] = stats.Series{Name: nm}
		}
		tb := stats.Table{
			Title:   fmt.Sprintf("F6: m = %d sources (average staleness)", m),
			Headers: append([]string{"bw fraction"}, names...),
		}
		for _, frac := range fractions {
			bc := frac * float64(m*n)
			vals := make([]float64, len(names))
			for s := 0; s < seeds; s++ {
				runSeed := seed + int64(s)
				rng := rand.New(rand.NewSource(runSeed + int64(m)*13 + int64(frac*100)))
				rates := workload.UniformRates(rng, m*n, 0.05, 1.0)
				eng := engine.Config{
					Seed:             runSeed,
					Sources:          m,
					ObjectsPerSource: n,
					Metric:           metric.Staleness,
					PriorityFn:       PriorityForMetric(metric.Staleness),
					Duration:         duration,
					Warmup:           warmup,
					CacheBW:          bandwidth.Const(bc),
					Rates:            rates,
				}
				eng.Policy = engine.IdealCooperative
				vals[0] += engine.MustRun(eng).AvgDivergence
				eng.Policy = engine.Cooperative
				vals[1] += engine.MustRun(eng).AvgDivergence
				cg := cgm.Config{
					Seed:     runSeed,
					Objects:  m * n,
					Metric:   metric.Staleness,
					Duration: duration,
					Warmup:   warmup,
					CacheBW:  bandwidth.Const(bc),
					Rates:    rates,
				}
				cg.Mode = cgm.IdealCacheBased
				vals[2] += cgm.MustRun(cg).AvgDivergence
				cg.Mode = cgm.CGM1
				vals[3] += cgm.MustRun(cg).AvgDivergence
				cg.Mode = cgm.CGM2
				vals[4] += cgm.MustRun(cg).AvgDivergence
			}
			row := []interface{}{frac}
			for i := range vals {
				vals[i] /= float64(seeds)
				series[i].Add(frac, vals[i])
				row = append(row, vals[i])
			}
			tb.AddRowf(row...)
		}
		figs = append(figs, Figure{
			Title:  fmt.Sprintf("Figure 6: m = %d sources", m),
			XLabel: "bandwidth fraction",
			YLabel: "average divergence (staleness)",
			Series: series,
		})
		tables = append(tables, tb)
	}
	return Output{Name: "F6 comparison against cache-based synchronization",
		Tables: tables, Figures: figs}
}
