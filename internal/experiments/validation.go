package experiments

import (
	"bestsync/internal/bandwidth"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
	"bestsync/internal/workload"

	"math/rand"
)

// E1Validation reproduces the first Section 4.3 experiment: a single source
// with n objects, a cache accepting up to 10 refreshes/second, uniformly
// random update probabilities, and all weights 1. Under every divergence
// metric, the paper reports that the overall time-averaged divergence of the
// area priority and of the simple weighted-divergence priority differ by
// less than 10% — skew is what separates them (see E2).
func E1Validation(scale Scale, seed int64) Output {
	sizes := []int{10, 100}
	duration, warmup := 600.0, 100.0
	seeds := 2
	if scale == Full {
		sizes = []int{1, 10, 100, 1000}
		duration, warmup = 2000, 400
		seeds = 5
	}
	tb := stats.Table{
		Title:   "E1 (§4.3): our priority vs simple weighted divergence, uniform parameters",
		Headers: []string{"metric", "n", "div(ours)", "div(simple)", "increase%"},
	}
	for _, mk := range metric.Kinds() {
		for _, n := range sizes {
			var ours, simple float64
			for s := 0; s < seeds; s++ {
				runSeed := seed + int64(s)
				rng := rand.New(rand.NewSource(runSeed + 999))
				rates := workload.UniformRates(rng, n, 0.01, 1.0)
				base := engine.Config{
					Seed:             runSeed,
					Sources:          1,
					ObjectsPerSource: n,
					Metric:           mk,
					Duration:         duration,
					Warmup:           warmup,
					CacheBW:          bandwidth.Const(10),
					Policy:           engine.IdealCooperative,
					Rates:            rates,
				}
				base.PriorityFn = PriorityForMetric(mk)
				ours += engine.MustRun(base).AvgDivergence
				base.PriorityFn = priority.SimpleDivergence
				simple += engine.MustRun(base).AvgDivergence
			}
			ours /= float64(seeds)
			simple /= float64(seeds)
			tb.AddRowf(mk.String(), n, ours, simple, pct(ours, simple))
		}
	}
	return Output{Name: "E1 priority validation (uniform)", Tables: []stats.Table{tb}}
}

// E2Skew reproduces the second Section 4.3 experiment: n = 100 objects, a
// randomly selected half weighted 10 and the rest 1; an independently
// selected half updated with probability 0.01 per second and the rest
// updated consistently every second. The paper reports the simple priority
// increases overall divergence by 64% (staleness), 74% (lag) and 84% (value
// deviation) over the area priority.
func E2Skew(scale Scale, seed int64) Output {
	duration, warmup := 800.0, 200.0
	seeds := 3
	if scale == Full {
		duration, warmup = 3000, 600
		seeds = 7
	}
	const n = 100
	tb := stats.Table{
		Title:   "E2 (§4.3): skewed weights and rates (paper: +64%/+74%/+84%)",
		Headers: []string{"metric", "div(ours)", "div(simple)", "increase%"},
	}
	for _, mk := range metric.Kinds() {
		var ours, simple float64
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 777))
			ws := workload.SkewedHalf(rng, n, 1, 10)
			weights := make([]weight.Fn, n)
			for i, w := range ws {
				weights[i] = weight.Const(w)
			}
			rs := workload.SkewedHalf(rng, n, 0.01, 1.0)
			procs := make([]workload.UpdateProcess, n)
			rates := make([]float64, n)
			for i, r := range rs {
				rates[i] = r
				if r == 1.0 {
					// "updated consistently every second"
					procs[i] = workload.Periodic{Interval: 1}
				} else {
					procs[i] = workload.Poisson{Lambda: r}
				}
			}
			base := engine.Config{
				Seed:             runSeed,
				Sources:          1,
				ObjectsPerSource: n,
				Metric:           mk,
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(10),
				Policy:           engine.IdealCooperative,
				Rates:            rates,
				Processes:        procs,
				Weights:          weights,
			}
			base.PriorityFn = PriorityForMetric(mk)
			ours += engine.MustRun(base).AvgDivergence
			base.PriorityFn = priority.SimpleDivergence
			simple += engine.MustRun(base).AvgDivergence
		}
		ours /= float64(seeds)
		simple /= float64(seeds)
		tb.AddRowf(mk.String(), ours, simple, pct(ours, simple))
	}
	return Output{Name: "E2 priority validation (skewed)", Tables: []stats.Table{tb}}
}
