package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"bestsync/internal/metric"
	"bestsync/internal/priority"
)

func TestRegistryAndOrderConsistent(t *testing.T) {
	reg := Registry()
	order := Order()
	if len(reg) != len(order) {
		t.Fatalf("registry has %d entries, order %d", len(reg), len(order))
	}
	for _, id := range order {
		if reg[id] == nil {
			t.Errorf("order id %q missing from registry", id)
		}
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestPriorityForMetric(t *testing.T) {
	if PriorityForMetric(metric.Staleness) != priority.PoissonStaleness {
		t.Error("staleness should map to PoissonStaleness")
	}
	if PriorityForMetric(metric.Lag) != priority.PoissonLag {
		t.Error("lag should map to PoissonLag")
	}
	if PriorityForMetric(metric.ValueDeviation) != priority.AreaGeneral {
		t.Error("value deviation should map to AreaGeneral")
	}
}

func TestPct(t *testing.T) {
	if got := pct(2, 3); got != 50 {
		t.Errorf("pct(2,3) = %v, want 50", got)
	}
	if got := pct(0, 3); got != 0 {
		t.Errorf("pct(0,3) = %v, want 0", got)
	}
}

// parse extracts float from a rendered cell.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestE1OutputShape(t *testing.T) {
	out := E1Validation(Quick, 1)
	if len(out.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(out.Tables))
	}
	tb := out.Tables[0]
	if len(tb.Rows) != 6 { // 3 metrics × 2 sizes (quick)
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// Uniform parameters: the two priorities should be in the same
	// ballpark (the paper reports <10%; we allow slack for short runs).
	for _, row := range tb.Rows {
		inc := parse(t, row[4])
		if inc > 60 || inc < -30 {
			t.Errorf("E1 %s n=%s: increase %v%% too extreme for uniform parameters",
				row[0], row[1], inc)
		}
	}
}

func TestE2SkewSeparatesPriorities(t *testing.T) {
	out := E2Skew(Quick, 1)
	tb := out.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ours := parse(t, row[1])
		simple := parse(t, row[2])
		if simple <= ours {
			t.Errorf("E2 %s: simple (%v) should exceed ours (%v) under skew",
				row[0], simple, ours)
		}
		inc := parse(t, row[3])
		if inc < 15 {
			t.Errorf("E2 %s: increase only %v%%, want substantial (paper: 64-84%%)",
				row[0], inc)
		}
	}
}

func TestP1OutputShape(t *testing.T) {
	out := P1ParamSweep(Quick, 1)
	if len(out.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (grid + best)", len(out.Tables))
	}
	grid := out.Tables[0]
	if len(grid.Rows) != 12 { // 4 alphas × 3 omegas (quick)
		t.Fatalf("grid rows = %d, want 12", len(grid.Rows))
	}
	best := parse(t, out.Tables[1].Rows[0][2])
	worst := best
	for _, row := range grid.Rows {
		v := parse(t, row[2])
		if v < best-1e-9 {
			t.Errorf("best table (%v) not the minimum (%v)", best, v)
		}
		if v > worst {
			worst = v
		}
	}
	// The paper found the algorithm "not overly sensitive" but some
	// settings clearly worse; the sweep should show a spread.
	if worst < best*1.05 {
		t.Errorf("sweep shows no spread: best %v worst %v", best, worst)
	}
}

func TestF5ShapeAndTracking(t *testing.T) {
	out := F5Buoys(Quick, 1)
	if len(out.Figures) != 2 {
		t.Fatalf("figures = %d, want 2 (fixed + fluctuating)", len(out.Figures))
	}
	for _, fig := range out.Figures {
		ours, ideal := fig.Series[0], fig.Series[1]
		if len(ours.Points) != len(ideal.Points) || len(ours.Points) == 0 {
			t.Fatalf("%s: bad series lengths", fig.Title)
		}
		// Divergence decreases with bandwidth (first vs last point).
		first, last := ours.Points[0].Y, ours.Points[len(ours.Points)-1].Y
		if last >= first {
			t.Errorf("%s: divergence did not fall with bandwidth (%v → %v)",
				fig.Title, first, last)
		}
		// Our algorithm tracks the ideal: never better, never wildly worse.
		for i := range ours.Points {
			o, id := ours.Points[i].Y, ideal.Points[i].Y
			if o < id-1e-9 {
				t.Errorf("%s: ours (%v) beat ideal (%v) at %v msgs/min",
					fig.Title, o, id, ours.Points[i].X)
			}
			if id > 0.02 && o > id*4 {
				t.Errorf("%s: ours (%v) too far above ideal (%v) at %v msgs/min",
					fig.Title, o, id, ours.Points[i].X)
			}
		}
	}
}

func TestF6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("F6 quick grid takes ~5s")
	}
	out := F6VsCGM(Quick, 1)
	if len(out.Figures) != 2 { // m = 10, 100 (quick)
		t.Fatalf("figures = %d, want 2", len(out.Figures))
	}
	for _, fig := range out.Figures {
		// Series order: ideal coop, ours, ideal cache-based, CGM1, CGM2.
		idealCoop, ours, icb := fig.Series[0], fig.Series[1], fig.Series[2]
		cgm1, cgm2 := fig.Series[3], fig.Series[4]
		for i := range idealCoop.Points {
			x := idealCoop.Points[i].X
			ic, o := idealCoop.Points[i].Y, ours.Points[i].Y
			b, c1, c2 := icb.Points[i].Y, cgm1.Points[i].Y, cgm2.Points[i].Y
			if o < ic*0.99 {
				t.Errorf("%s x=%v: ours (%v) beat ideal cooperative (%v)",
					fig.Title, x, o, ic)
			}
			if o > b*1.10 {
				t.Errorf("%s x=%v: ours (%v) worse than ideal cache-based (%v)",
					fig.Title, x, o, b)
			}
			if c1 < b-0.02 || c2 < b-0.02 {
				t.Errorf("%s x=%v: practical CGM (%v/%v) beat ideal cache-based (%v)",
					fig.Title, x, c1, c2, b)
			}
			// The headline: cooperative decisively beats polling at low
			// bandwidth fractions.
			if x <= 0.35 && o >= c1 {
				t.Errorf("%s x=%v: ours (%v) did not beat CGM1 (%v)",
					fig.Title, x, o, c1)
			}
		}
	}
}

func TestA1PositiveWins(t *testing.T) {
	out := A1FeedbackPolarity(Quick, 1)
	tb := out.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	pos := parse(t, tb.Rows[0][1])
	neg := parse(t, tb.Rows[1][1])
	if neg <= pos {
		t.Errorf("negative feedback (%v) should lose to positive (%v)", neg, pos)
	}
	posQ := parse(t, tb.Rows[0][2])
	negQ := parse(t, tb.Rows[1][2])
	if negQ <= posQ {
		t.Errorf("negative feedback queue (%v) should exceed positive (%v)", negQ, posQ)
	}
}

func TestA2BetaHelpsQueues(t *testing.T) {
	out := A2BetaAblation(Quick, 1)
	tb := out.Tables[0]
	enabledQ := parse(t, tb.Rows[0][2])
	disabledQ := parse(t, tb.Rows[1][2])
	if disabledQ <= enabledQ {
		t.Errorf("β disabled peak queue (%v) should exceed enabled (%v)",
			disabledQ, enabledQ)
	}
}

func TestA3TargetingHelps(t *testing.T) {
	out := A3FeedbackTargeting(Quick, 1)
	tb := out.Tables[0]
	targeted := parse(t, tb.Rows[0][1])
	random := parse(t, tb.Rows[1][1])
	if random < targeted*0.95 {
		t.Errorf("random targeting (%v) should not beat threshold targeting (%v)",
			random, targeted)
	}
}

func TestE7TradeoffDirection(t *testing.T) {
	out := E7Competitive(Quick, 1)
	if len(out.Tables) != 3 {
		t.Fatalf("tables = %d, want 3 (one per share option)", len(out.Tables))
	}
	for _, tb := range out.Tables {
		first := tb.Rows[0]
		last := tb.Rows[len(tb.Rows)-1]
		srcFirst := parse(t, first[2])
		srcLast := parse(t, last[2])
		if srcLast > srcFirst*1.05 {
			t.Errorf("%s: source-objective divergence rose with Ψ (%v → %v)",
				tb.Title, srcFirst, srcLast)
		}
	}
}

func TestE8BoundPriorityWins(t *testing.T) {
	out := E8Bounding(Quick, 1)
	tb := out.Tables[0]
	boundPri := parse(t, tb.Rows[0][1])
	divPri := parse(t, tb.Rows[1][1])
	opt := parse(t, tb.Rows[2][1])
	if boundPri > divPri {
		t.Errorf("bound priority (%v) should beat divergence priority (%v)",
			boundPri, divPri)
	}
	if boundPri < opt-1e-9 {
		t.Errorf("bound priority (%v) beat the closed-form optimum (%v)?", boundPri, opt)
	}
	if boundPri > opt*1.6 {
		t.Errorf("bound priority (%v) too far above optimum (%v)", boundPri, opt)
	}
}

func TestE9ProjectionSavesSamples(t *testing.T) {
	out := E9Sampling(Quick, 1)
	tb := out.Tables[0]
	proj := parse(t, tb.Rows[0][1])
	fixed := parse(t, tb.Rows[1][1])
	if proj >= fixed {
		t.Errorf("projection (%v samples) should use fewer than fixed grid (%v)",
			proj, fixed)
	}
}

func TestOutputWriteTo(t *testing.T) {
	out := E8Bounding(Quick, 1)
	var buf bytes.Buffer
	if _, err := out.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !strings.Contains(buf.String(), "E8") {
		t.Errorf("output missing experiment name:\n%s", buf.String())
	}
}

func TestF4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("F4 quick grid takes ~10s")
	}
	out := F4RatioToIdeal(Quick, 1)
	if len(out.Figures) != 3 {
		t.Fatalf("figures = %d, want 3 (one per metric)", len(out.Figures))
	}
	summary := out.Tables[0]
	for _, row := range summary.Rows {
		configs := parse(t, row[1])
		med := parse(t, row[2])
		if configs < 20 {
			t.Errorf("%s: only %v configs measured", row[0], configs)
		}
		// Ratios are ≥ 1 up to noise and typically close to 1.
		if med < 0.95 || med > 2.5 {
			t.Errorf("%s: median ratio %v outside plausible band", row[0], med)
		}
	}
	// Every plotted ratio must be ≥ ~1 (ideal is a lower bound).
	for _, fig := range out.Figures {
		for _, p := range fig.Series[0].Points {
			if p.Y < 0.9 {
				t.Errorf("%s: ratio %v at x=%v below 1", fig.Title, p.Y, p.X)
			}
		}
	}
}
