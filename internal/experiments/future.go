package experiments

import (
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// E10CostAware studies the first non-uniform-cost extension of Section 10.1:
// objects have different message sizes, and the priority weight gains a
// factor inversely proportional to cost. Cost-aware prioritization should
// buy more weighted synchrony per unit of bandwidth than cost-blind
// prioritization.
func E10CostAware(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 5, 20, 600.0, 150.0, 3
	if scale == Full {
		m, n, duration, warmup, seeds = 20, 50, 3000, 600, 5
	}
	N := m * n
	tb := stats.Table{
		Title:   "E10 (§10.1): non-uniform refresh costs",
		Headers: []string{"priority", "avg weighted divergence", "refreshes delivered"},
	}
	for _, aware := range []bool{true, false} {
		var div float64
		var refr int
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 1010))
			rates := workload.UniformRates(rng, N, 0.05, 0.5)
			sizes := make([]float64, N)
			weights := make([]weight.Fn, N)
			for i := range sizes {
				// Sizes span 1–16 units, uncorrelated with importance.
				sizes[i] = 1 + float64(rng.Intn(16))
				weights[i] = weight.Const(1 + rng.Float64()*9)
			}
			cfg := engine.Config{
				Seed:             runSeed,
				Sources:          m,
				ObjectsPerSource: n,
				Metric:           metric.ValueDeviation,
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(float64(N)), // ≈1 unit/object/s
				Rates:            rates,
				Weights:          weights,
				Sizes:            sizes,
				CostAware:        aware,
			}
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			refr += r.RefreshesDelivered
		}
		name := "cost-blind W"
		if aware {
			name = "cost-aware W/size (paper §10.1)"
		}
		tb.AddRowf(name, div/float64(seeds), refr/seeds)
	}
	return Output{Name: "E10 non-uniform refresh costs", Tables: []stats.Table{tb}}
}

// E11DeltaEncoding studies the delta-encoding extension of Section 10.1:
// refresh messages encode the difference from the cached copy, so a copy one
// update behind costs a fraction of a full transfer, while long-stale copies
// converge to full cost. Under the same bandwidth, delta encoding should buy
// markedly lower divergence for large objects.
func E11DeltaEncoding(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 5, 20, 600.0, 150.0, 3
	if scale == Full {
		m, n, duration, warmup, seeds = 20, 50, 3000, 600, 5
	}
	N := m * n
	tb := stats.Table{
		Title:   "E11 (§10.1): delta-encoded refresh messages (full size 8, delta 1/update)",
		Headers: []string{"encoding", "avg divergence", "refreshes delivered"},
	}
	for _, delta := range []float64{0, 1} {
		var div float64
		var refr int
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 1111))
			rates := workload.UniformRates(rng, N, 0.05, 0.5)
			sizes := make([]float64, N)
			for i := range sizes {
				sizes[i] = 8
			}
			cfg := engine.Config{
				Seed:             runSeed,
				Sources:          m,
				ObjectsPerSource: n,
				Metric:           metric.ValueDeviation,
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(float64(N)),
				Rates:            rates,
				Sizes:            sizes,
				DeltaSize:        delta,
			}
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			refr += r.RefreshesDelivered
		}
		name := "full transfers"
		if delta > 0 {
			name = "delta encoding"
		}
		tb.AddRowf(name, div/float64(seeds), refr/seeds)
	}
	return Output{Name: "E11 delta encoding", Tables: []stats.Table{tb}}
}

// E12Batching explores the packaging tradeoff of Section 10.1: batching
// several refreshes into one message amortizes per-message overhead but
// delays refreshes while the batch fills. With a meaningful per-message
// header cost, a moderate batch size should beat both extremes.
func E12Batching(scale Scale, seed int64) Output {
	batches := []int{1, 2, 4, 8, 16}
	m, n, duration, warmup, seeds := 5, 20, 600.0, 150.0, 3
	if scale == Full {
		batches = []int{1, 2, 4, 8, 16, 32}
		m, n, duration, warmup, seeds = 20, 50, 3000, 600, 5
	}
	N := m * n
	const overhead = 2.0 // header costs 2 units; each refresh payload 1
	tb := stats.Table{
		Title:   "E12 (§10.1): refresh batching (per-message header cost 2)",
		Headers: []string{"batch size", "avg divergence", "messages", "refreshes"},
	}
	ser := stats.Series{Name: "avg divergence"}
	for _, k := range batches {
		var div float64
		var refr, msgs int
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 1212))
			rates := workload.UniformRates(rng, N, 0.1, 1.0)
			cfg := engine.Config{
				Seed:             runSeed,
				Sources:          m,
				ObjectsPerSource: n,
				Metric:           metric.ValueDeviation,
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(float64(N) / 2),
				Rates:            rates,
				BatchMax:         k,
				BatchOverhead:    overhead,
				BatchWait:        3,
			}
			if k <= 1 {
				// Unbatched baseline still pays the header on every
				// message: model it as size 1+overhead per object.
				cfg.BatchMax = 0
				sizes := make([]float64, N)
				for i := range sizes {
					sizes[i] = 1 + overhead
				}
				cfg.Sizes = sizes
			}
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			refr += r.RefreshesDelivered
			msgs += r.RefreshesSent
		}
		div /= float64(seeds)
		tb.AddRowf(k, div, msgs/seeds, refr/seeds)
		ser.Add(float64(k), div)
	}
	fig := Figure{
		Title:  "E12: batching tradeoff",
		XLabel: "batch size K",
		YLabel: "avg divergence",
		Series: []stats.Series{ser},
	}
	return Output{Name: "E12 refresh batching", Tables: []stats.Table{tb}, Figures: []Figure{fig}}
}

// E13MutualConsistency studies the Section 10.1 [UNR+01] extension: objects
// grouped into mutual-consistency units are refreshed atomically, so the
// cache never serves a mixed-version view — at the price of coarser
// scheduling (the whole group moves when any member is worth refreshing).
// The experiment measures both the divergence cost of grouping and the
// inconsistency exposure it removes.
func E13MutualConsistency(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 5, 20, 600.0, 150.0, 3
	groupSize := 4
	if scale == Full {
		m, n, duration, warmup, seeds = 20, 40, 3000, 600, 5
	}
	N := m * n
	tb := stats.Table{
		Title: "E13 (§10.1): mutual-consistency groups (group size 4)",
		Headers: []string{"mode", "avg divergence", "refreshes",
			"mixed-version exposure"},
	}
	for _, grouped := range []bool{false, true} {
		var div, mixed float64
		var refr int
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 1414))
			rates := workload.UniformRates(rng, N, 0.05, 0.5)
			cfg := engine.Config{
				Seed:             runSeed,
				Sources:          m,
				ObjectsPerSource: n,
				Metric:           metric.ValueDeviation,
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(float64(N) / 4),
				Rates:            rates,
			}
			groups := make([]int, N)
			for i := range groups {
				// Consecutive objects within a source form groups.
				groups[i] = i / groupSize
			}
			cfg.Groups = groups
			cfg.GroupsMeasureOnly = !grouped
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			refr += r.RefreshesDelivered
			mixed += r.GroupMixedExposure
		}
		name := "independent refreshes"
		if grouped {
			name = "atomic group refreshes"
		}
		tb.AddRowf(name, div/float64(seeds), refr/seeds, mixed/float64(seeds))
	}
	return Output{Name: "E13 mutual consistency", Tables: []stats.Table{tb}}
}

// A4RateEstimation studies the Section 10.1 "longer history period"
// question: the Poisson priorities need λ estimates, and under
// non-stationary update rates the since-last-refresh estimator (Section 8.1)
// adapts faster while the windowed estimator predicts more stably. The
// oracle (true current rates) bounds both.
func A4RateEstimation(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 5, 20, 800.0, 200.0, 3
	if scale == Full {
		m, n, duration, warmup, seeds = 20, 50, 4000, 800, 5
	}
	N := m * n
	tb := stats.Table{
		Title:   "A4 (§8.1/§10.1): λ estimators under switching update rates (staleness)",
		Headers: []string{"estimator", "avg staleness"},
	}
	for _, est := range []engine.RateEstimation{
		engine.RateOracle, engine.RateSinceRefresh, engine.RateWindowed,
	} {
		var div float64
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			rng := rand.New(rand.NewSource(runSeed + 1313))
			procs := make([]workload.UpdateProcess, N)
			rates := make([]float64, N)
			for i := range procs {
				lo := 0.02 + rng.Float64()*0.05
				hi := lo * (5 + rng.Float64()*15)
				period := 100 + rng.Float64()*100
				procs[i] = &workload.SwitchingPoisson{
					Low: lo, High: hi, Period: period,
					Offset: rng.Float64() * period,
				}
				rates[i] = (lo + hi) / 2 // what the oracle believes
			}
			cfg := engine.Config{
				Seed:             runSeed,
				Sources:          m,
				ObjectsPerSource: n,
				Metric:           metric.Staleness,
				PriorityFn:       PriorityForMetric(metric.Staleness),
				Duration:         duration,
				Warmup:           warmup,
				CacheBW:          bandwidth.Const(float64(N) / 8),
				Rates:            rates,
				Processes:        procs,
				RateEstimation:   est,
				RateWindow:       150,
			}
			div += engine.MustRun(cfg).AvgDivergence
		}
		tb.AddRowf(est.String(), div/float64(seeds))
	}
	return Output{Name: "A4 rate estimation under drift", Tables: []stats.Table{tb}}
}
