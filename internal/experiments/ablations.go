package experiments

import (
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/stats"
)

// ablationBase builds the constrained, fluctuating configuration the
// feedback ablations share.
func ablationBase(seed int64, m, n int, duration, warmup float64) engine.Config {
	rng := rand.New(rand.NewSource(seed + 222))
	rates, weights := fluctuatingPopulation(rng, m*n)
	return engine.Config{
		Seed:             seed,
		Sources:          m,
		ObjectsPerSource: n,
		Metric:           metric.ValueDeviation,
		Duration:         duration,
		Warmup:           warmup,
		CacheBW:          bandwidth.Fluctuating(float64(m*n)/10, 0.25, 0),
		SourceBW:         bandwidth.Const(float64(n)),
		Rates:            rates,
		Weights:          weights,
	}
}

// A1FeedbackPolarity compares the paper's positive-feedback design against
// the negative-feedback strawman Section 5 argues is unstable (slow-down
// messages starve exactly when the network floods) and against frozen
// thresholds. Expect positive to win on divergence and to keep the network
// queue far shorter.
func A1FeedbackPolarity(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 10, 10, 600.0, 150.0, 2
	if scale == Full {
		m, n, duration, warmup, seeds = 50, 20, 3000, 600, 4
	}
	tb := stats.Table{
		Title:   "A1 (§5): feedback polarity under fluctuating, constrained bandwidth",
		Headers: []string{"policy", "avg divergence", "peak queue", "feedback msgs"},
	}
	for _, pol := range []core.FeedbackPolicy{
		core.PositiveFeedback, core.NegativeFeedback, core.NoFeedback,
	} {
		var div float64
		var peak, fb int
		for s := 0; s < seeds; s++ {
			cfg := ablationBase(seed+int64(s), m, n, duration, warmup)
			cfg.Feedback = pol
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			peak += r.PeakQueue
			fb += r.FeedbackSent
		}
		tb.AddRowf(pol.String(), div/float64(seeds), peak/seeds, fb/seeds)
	}
	return Output{Name: "A1 feedback polarity", Tables: []stats.Table{tb}}
}

// A2BetaAblation isolates the β flood accelerator: a step profile crashes
// cache bandwidth to near-zero mid-run and then restores it. With β enabled,
// sources raise thresholds sharply as soon as feedback goes missing, keeping
// the queue (and post-recovery divergence) small; without it, thresholds
// drift up only by α per refresh and the network floods.
func A2BetaAblation(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 10, 10, 900.0, 150.0, 2
	if scale == Full {
		m, n, duration, warmup, seeds = 50, 20, 3000, 300, 4
	}
	tb := stats.Table{
		Title:   "A2 (§5): β accelerator under a bandwidth collapse",
		Headers: []string{"variant", "avg divergence", "peak queue"},
	}
	for _, disable := range []bool{false, true} {
		var div float64
		var peak int
		for s := 0; s < seeds; s++ {
			cfg := ablationBase(seed+int64(s), m, n, duration, warmup)
			normal := float64(m*n) / 5
			cfg.CacheBW = bandwidth.Step{
				Times: []float64{0, duration / 3, 2 * duration / 3},
				Rates: []float64{normal, normal / 50, normal},
			}
			cfg.Params = core.DefaultParams(m, 0) // feedback period auto-derived
			cfg.Params.DisableBeta = disable
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			peak += r.PeakQueue
		}
		name := "beta enabled"
		if disable {
			name = "beta disabled"
		}
		tb.AddRowf(name, div/float64(seeds), peak/seeds)
	}
	return Output{Name: "A2 beta accelerator ablation", Tables: []stats.Table{tb}}
}

// A3FeedbackTargeting isolates the value of piggybacked thresholds: the
// paper's cache directs surplus feedback at the highest-threshold sources;
// the ablation picks targets uniformly at random. With heterogeneous update
// rates across sources, targeted feedback finds the starved sources faster.
func A3FeedbackTargeting(scale Scale, seed int64) Output {
	m, n, duration, warmup, seeds := 20, 10, 600.0, 150.0, 3
	if scale == Full {
		m, n, duration, warmup, seeds = 100, 10, 3000, 600, 5
	}
	tb := stats.Table{
		Title:   "A3 (§5): feedback target selection",
		Headers: []string{"targeting", "avg divergence", "feedback msgs"},
	}
	for _, random := range []bool{false, true} {
		var div float64
		var fb int
		for s := 0; s < seeds; s++ {
			runSeed := seed + int64(s)
			cfg := ablationBase(runSeed, m, n, duration, warmup)
			// Heterogeneous sources: source j's objects update ~j× faster,
			// so the right thresholds differ wildly across sources.
			rng := rand.New(rand.NewSource(runSeed + 333))
			for i := range cfg.Rates {
				srcBoost := 0.05 + float64(i/n)/float64(m)*2
				cfg.Rates[i] = srcBoost * (0.5 + rng.Float64())
			}
			cfg.Processes = nil
			cfg.RandomFeedbackTargets = random
			r := engine.MustRun(cfg)
			div += r.AvgDivergence
			fb += r.FeedbackSent
		}
		name := "highest-threshold (paper)"
		if random {
			name = "uniform random"
		}
		tb.AddRowf(name, div/float64(seeds), fb/seeds)
	}
	return Output{Name: "A3 feedback targeting ablation", Tables: []stats.Table{tb}}
}
