package experiments

import (
	"math"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/bound"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/sampling"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
)

// E7Competitive studies the Section 7 extension: as the fraction Ψ of
// cache-side bandwidth dedicated to source priorities grows, divergence
// under the sources' objective falls while divergence under the cache's
// objective rises — the knob that makes cooperation appealing to sources
// whose interests conflict with the cache's.
func E7Competitive(scale Scale, seed int64) Output {
	psis := []float64{0, 0.2, 0.4, 0.6}
	m, n, duration, warmup, seeds := 5, 10, 500.0, 100.0, 2
	if scale == Full {
		psis = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}
		m, n, duration, warmup, seeds = 20, 20, 2000, 400, 4
	}
	var figs []Figure
	var tables []stats.Table
	for share := 1; share <= 3; share++ {
		cacheSer := stats.Series{Name: "cache-objective divergence"}
		srcSer := stats.Series{Name: "source-objective divergence"}
		tb := stats.Table{
			Title:   "E7 (§7): share option " + shareName(share),
			Headers: []string{"psi", "cache-objective div", "source-objective div"},
		}
		for _, psi := range psis {
			var cd, sd float64
			for s := 0; s < seeds; s++ {
				runSeed := seed + int64(s)
				N := m * n
				cacheW := make([]weight.Fn, N)
				srcW := make([]weight.Fn, N)
				for i := 0; i < N; i++ {
					// Disjoint interests: the cache values even objects,
					// sources value odd ones (the Web retailer vs indexer
					// scenario of Section 7).
					if i%2 == 0 {
						cacheW[i] = weight.Const(10)
						srcW[i] = weight.Const(1)
					} else {
						cacheW[i] = weight.Const(1)
						srcW[i] = weight.Const(10)
					}
				}
				rng := rand.New(rand.NewSource(runSeed + 808))
				rates := make([]float64, N)
				for i := range rates {
					rates[i] = 0.05 + rng.Float64()*0.5
				}
				cfg := engine.Config{
					Seed:             runSeed,
					Sources:          m,
					ObjectsPerSource: n,
					Metric:           metric.ValueDeviation,
					Duration:         duration,
					Warmup:           warmup,
					CacheBW:          bandwidth.Const(float64(N) / 5),
					SourceBW:         bandwidth.Const(float64(n)),
					Rates:            rates,
					Weights:          cacheW,
					Competitive: &engine.Competitive{
						Psi: psi, Share: share, SourceWeights: srcW,
					},
				}
				r := engine.MustRun(cfg)
				cd += r.AvgDivergence
				sd += r.SourceAvgDivergence
			}
			cd /= float64(seeds)
			sd /= float64(seeds)
			cacheSer.Add(psi, cd)
			srcSer.Add(psi, sd)
			tb.AddRowf(psi, cd, sd)
		}
		figs = append(figs, Figure{
			Title:  "E7: share option " + shareName(share),
			XLabel: "psi (fraction for source priorities)",
			YLabel: "avg weighted divergence",
			Series: []stats.Series{cacheSer, srcSer},
		})
		tables = append(tables, tb)
	}
	return Output{Name: "E7 cooperation in competitive environments",
		Tables: tables, Figures: figs}
}

func shareName(opt int) string {
	switch opt {
	case 1:
		return "1 (equal shares)"
	case 2:
		return "2 (proportional to objects)"
	default:
		return "3 (piggyback by contribution)"
	}
}

// E8Bounding evaluates Section 9: for objects with known maximum divergence
// rates, scheduling by the bound-minimizing priority R(t−t_last)²/2·W yields
// a lower time-averaged divergence bound than scheduling by realized
// divergence, and approaches the closed-form optimum Σ√(wR) analysis.
func E8Bounding(scale Scale, seed int64) Output {
	m, n, duration, seeds := 4, 10, 600.0, 3
	if scale == Full {
		m, n, duration, seeds = 20, 20, 3000, 5
	}
	N := m * n
	tb := stats.Table{
		Title:   "E8 (§9): minimizing guaranteed divergence bounds",
		Headers: []string{"scheduler", "avg bound", "vs closed-form optimum"},
	}
	var boundPri, divPri, optimum float64
	for s := 0; s < seeds; s++ {
		runSeed := seed + int64(s)
		rng := rand.New(rand.NewSource(runSeed + 99))
		maxRates := make([]float64, N)
		rates := make([]float64, N)
		for i := range maxRates {
			maxRates[i] = 0.1 + rng.Float64()*2
			// Actual update rate scaled under the max rate.
			rates[i] = maxRates[i] / 2
		}
		budget := float64(N) / 4
		cfg := engine.Config{
			Seed:             runSeed,
			Sources:          m,
			ObjectsPerSource: n,
			Metric:           metric.ValueDeviation,
			Duration:         duration,
			CacheBW:          bandwidth.Const(budget),
			Rates:            rates,
			MaxRates:         maxRates,
			Policy:           engine.IdealCooperative,
		}
		cfg.PriorityFn = priority.BoundArea
		boundPri += engine.MustRun(cfg).AvgBound
		cfg.PriorityFn = priority.AreaGeneral
		divPri += engine.MustRun(cfg).AvgBound

		ones := make([]float64, N)
		for i := range ones {
			ones[i] = 1
		}
		periods, err := bound.OptimalPeriods(maxRates, ones, budget)
		if err != nil {
			panic(err)
		}
		optimum += bound.AverageBound(maxRates, ones, periods, 0)
	}
	boundPri /= float64(seeds)
	divPri /= float64(seeds)
	optimum /= float64(seeds)
	tb.AddRowf("bound priority (§9)", boundPri, boundPri/optimum)
	tb.AddRowf("divergence priority (§3.3)", divPri, divPri/optimum)
	tb.AddRowf("closed-form optimum", optimum, 1.0)
	return Output{Name: "E8 divergence bounding", Tables: []stats.Table{tb}}
}

// E9Sampling measures the Section 8.2.1 sampling monitor: across objects
// with varied divergence rates, projection-scheduled sampling needs far
// fewer samples than a fixed fine-grained schedule to detect threshold
// crossings with comparable lag.
func E9Sampling(scale Scale, seed int64) Output {
	objects, seeds := 50, 2
	if scale == Full {
		objects, seeds = 500, 5
	}
	tb := stats.Table{
		Title: "E9 (§8.2.1): sampling monitor vs fixed-grid sampling",
		Headers: []string{"scheduler", "samples/object", "mean detection lag",
			"mean overshoot%"},
	}
	type outcome struct {
		samples  int
		lag      float64
		overPct  float64
		detected int
	}
	run := func(projection bool) outcome {
		var out outcome
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s) + 606))
			for o := 0; o < objects; o++ {
				rho := 0.05 + rng.Float64()*2
				threshold := 20 + rng.Float64()*200
				trueCross := math.Sqrt(2 * threshold / rho)
				m := sampling.NewMonitor(0)
				now := 0.0
				det := math.Inf(1)
				for step := 0; step < 100000; step++ {
					var next float64
					if projection {
						next = m.NextSampleTime(now, threshold, 1, 0.8, 10)
						if math.IsInf(next, 1) {
							next = now + 10
						}
					} else {
						next = now + 0.25
					}
					now = next
					m.Sample(now, rho*now)
					out.samples++
					if m.Priority(now) >= threshold {
						det = now
						break
					}
				}
				if !math.IsInf(det, 1) {
					out.detected++
					out.lag += det - trueCross
					out.overPct += (det - trueCross) / trueCross * 100
				}
			}
		}
		return out
	}
	for _, projection := range []bool{true, false} {
		o := run(projection)
		name := "projection (§8.2.1)"
		if !projection {
			name = "fixed 0.25s grid"
		}
		den := float64(o.detected)
		if den == 0 {
			den = 1
		}
		tb.AddRowf(name,
			float64(o.samples)/float64(objects*seeds), o.lag/den, o.overPct/den)
	}
	return Output{Name: "E9 sampling-based priority monitoring", Tables: []stats.Table{tb}}
}
