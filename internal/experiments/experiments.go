// Package experiments defines one runner per experiment in the paper's
// evaluation — the in-text validations of Section 4.3 (E1, E2), the
// parameter study of Section 6.1 (P1), Figures 4–6 (F4, F5, F6) — plus the
// ablations and extension studies indexed in DESIGN.md (A1–A3, E7–E9).
//
// Each runner accepts a Scale: Quick runs a reduced grid suitable for
// iteration and CI; Full runs the paper's grid (Section 6 parameters).
// Output tables/figures mirror the rows and curves the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/stats"
)

// Scale selects the experiment grid size.
type Scale int

const (
	// Quick is a reduced grid (seconds per experiment).
	Quick Scale = iota
	// Full is the paper's grid (minutes to hours).
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Figure is one plot of the paper: named curves over a shared x-axis.
type Figure struct {
	Title          string
	XLabel, YLabel string
	Series         []stats.Series
}

// Output bundles everything an experiment produces.
type Output struct {
	Name    string
	Tables  []stats.Table
	Figures []Figure
}

// WriteTo renders tables and ASCII figures.
func (o *Output) WriteTo(w io.Writer) (int64, error) {
	fmt.Fprintf(w, "== %s ==\n\n", o.Name)
	for i := range o.Tables {
		if _, err := o.Tables[i].WriteTo(w); err != nil {
			return 0, err
		}
		fmt.Fprintln(w)
	}
	for _, f := range o.Figures {
		stats.PlotASCII(w, fmt.Sprintf("%s  [y: %s, x: %s]", f.Title, f.YLabel, f.XLabel),
			f.Series, 72, 18)
		fmt.Fprintln(w)
	}
	return 0, nil
}

// Runner executes one experiment.
type Runner func(scale Scale, seed int64) Output

// Registry maps experiment ids (as used by cmd/syncbench) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"e1":  E1Validation,
		"e2":  E2Skew,
		"p1":  P1ParamSweep,
		"f4":  F4RatioToIdeal,
		"f5":  F5Buoys,
		"f6":  F6VsCGM,
		"a1":  A1FeedbackPolarity,
		"a2":  A2BetaAblation,
		"a3":  A3FeedbackTargeting,
		"a4":  A4RateEstimation,
		"e7":  E7Competitive,
		"e8":  E8Bounding,
		"e9":  E9Sampling,
		"e10": E10CostAware,
		"e11": E11DeltaEncoding,
		"e12": E12Batching,
		"e13": E13MutualConsistency,
	}
}

// Order lists experiment ids in presentation order.
func Order() []string {
	ids := []string{"e1", "e2", "p1", "f4", "f5", "f6", "a1", "a2", "a3", "a4",
		"e7", "e8", "e9", "e10", "e11", "e12", "e13"}
	reg := Registry()
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			panic("experiments: Order out of sync with Registry: " + id)
		}
	}
	if len(ids) != len(reg) {
		extra := []string{}
		for id := range reg {
			if !contains(ids, id) {
				extra = append(extra, id)
			}
		}
		sort.Strings(extra)
		panic(fmt.Sprintf("experiments: Registry has unlisted ids %v", extra))
	}
	return ids
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// PriorityForMetric returns the refresh-priority function the paper's
// sources use for each divergence metric: the model-based Section 3.4
// special cases for staleness and lag (Section 8.1 — these metrics depend
// only on update times, which sources observe), and the general realized
// area-above-the-curve priority for value deviation.
func PriorityForMetric(k metric.Kind) priority.Fn {
	switch k {
	case metric.Staleness:
		return priority.PoissonStaleness
	case metric.Lag:
		return priority.PoissonLag
	default:
		return priority.AreaGeneral
	}
}

// pct returns the percentage increase of b over a.
func pct(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return (b - a) / a * 100
}
