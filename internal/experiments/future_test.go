package experiments

import (
	"testing"
)

func TestE10CostAwareWins(t *testing.T) {
	out := E10CostAware(Quick, 1)
	tb := out.Tables[0]
	aware := parse(t, tb.Rows[0][1])
	blind := parse(t, tb.Rows[1][1])
	if aware >= blind {
		t.Errorf("cost-aware (%v) should beat cost-blind (%v)", aware, blind)
	}
}

func TestE11DeltaEncodingWins(t *testing.T) {
	out := E11DeltaEncoding(Quick, 1)
	tb := out.Tables[0]
	full := parse(t, tb.Rows[0][1])
	delta := parse(t, tb.Rows[1][1])
	if delta >= full {
		t.Errorf("delta encoding (%v) should beat full transfers (%v)", delta, full)
	}
	fullRefr := parse(t, tb.Rows[0][2])
	deltaRefr := parse(t, tb.Rows[1][2])
	if deltaRefr <= fullRefr {
		t.Errorf("delta refreshes (%v) should exceed full (%v)", deltaRefr, fullRefr)
	}
}

func TestE12BatchingSweetSpot(t *testing.T) {
	out := E12Batching(Quick, 1)
	tb := out.Tables[0]
	first := parse(t, tb.Rows[0][1])             // K=1
	last := parse(t, tb.Rows[len(tb.Rows)-1][1]) // largest K
	best := first
	for _, row := range tb.Rows {
		if v := parse(t, row[1]); v < best {
			best = v
		}
	}
	// Some interior batch size should beat the unbatched baseline.
	if best >= first {
		t.Errorf("no batch size beat the unbatched baseline (%v)", first)
	}
	// And the largest batch should be worse than the best (delay cost),
	// with slack for noise.
	if last < best*1.05 {
		t.Logf("note: largest batch (%v) nearly optimal (%v)", last, best)
	}
}

func TestA4EstimatorOrdering(t *testing.T) {
	out := A4RateEstimation(Quick, 1)
	tb := out.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	// All estimators must produce sane staleness values; the exact
	// ordering is workload-dependent, but nothing should collapse.
	for _, row := range tb.Rows {
		v := parse(t, row[1])
		if v <= 0 || v >= 1 {
			t.Errorf("%s staleness = %v out of (0,1)", row[0], v)
		}
	}
}

func TestE13ConsistencyTradeoff(t *testing.T) {
	out := E13MutualConsistency(Quick, 1)
	tb := out.Tables[0]
	indepDiv := parse(t, tb.Rows[0][1])
	groupDiv := parse(t, tb.Rows[1][1])
	indepExp := parse(t, tb.Rows[0][3])
	groupExp := parse(t, tb.Rows[1][3])
	if groupExp != 0 {
		t.Errorf("atomic groups exposure = %v, want 0", groupExp)
	}
	if indepExp <= 0 {
		t.Errorf("independent exposure = %v, want > 0", indepExp)
	}
	if groupDiv <= indepDiv {
		t.Errorf("grouping should cost divergence: grouped %v vs independent %v",
			groupDiv, indepDiv)
	}
}

func TestNewExperimentsRegistered(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"e10", "e11", "e12", "e13", "a4"} {
		if reg[id] == nil {
			t.Errorf("experiment %q not registered", id)
		}
	}
}
