package experiments

import (
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// fluctuatingPopulation builds the Section 6 synthetic population: Poisson
// rates assigned uniformly at random and weights fluctuating as sine waves
// with random amplitudes and periods.
func fluctuatingPopulation(rng *rand.Rand, n int) ([]float64, []weight.Fn) {
	rates := workload.UniformRates(rng, n, 0.01, 1.0)
	weights := make([]weight.Fn, n)
	for i := range weights {
		weights[i] = weight.RandomSine(rng, 1+rng.Float64()*4, 0.8, 50, 500)
	}
	return rates, weights
}

// P1ParamSweep reproduces the Section 6.1 parameter study: sweep the
// threshold increase factor α and decrease factor ω over fluctuating-
// bandwidth configurations and report average divergence. The paper found
// α = 1.1, ω = 10 best, with low sensitivity nearby (α = 1.2, ω = 20
// similar).
func P1ParamSweep(scale Scale, seed int64) Output {
	alphas := []float64{1.05, 1.1, 1.3, 2.0}
	omegas := []float64{2, 10, 100}
	m, n := 10, 10
	duration, warmup := 600.0, 150.0
	seeds := 2
	if scale == Full {
		alphas = []float64{1.01, 1.05, 1.1, 1.2, 1.5, 2.0}
		omegas = []float64{2, 5, 10, 20, 50, 100}
		m, n = 50, 20
		duration, warmup = 3000, 600
		seeds = 4
	}
	tb := stats.Table{
		Title:   "P1 (§6.1): threshold parameter sweep (paper best: α=1.1, ω=10)",
		Headers: []string{"alpha", "omega", "avg divergence"},
	}
	bestA, bestO, bestD := 0.0, 0.0, -1.0
	for _, a := range alphas {
		for _, o := range omegas {
			total := 0.0
			for s := 0; s < seeds; s++ {
				runSeed := seed + int64(s)
				rng := rand.New(rand.NewSource(runSeed + 555))
				rates, weights := fluctuatingPopulation(rng, m*n)
				cfg := engine.Config{
					Seed:             runSeed,
					Sources:          m,
					ObjectsPerSource: n,
					Metric:           metric.ValueDeviation,
					Duration:         duration,
					Warmup:           warmup,
					CacheBW:          bandwidth.Fluctuating(float64(m*n)/4, 0.05, 0),
					SourceBW:         bandwidth.Fluctuating(float64(n), 0.05, 1),
					Rates:            rates,
					Weights:          weights,
					Params: core.Params{
						Alpha:            a,
						Omega:            o,
						InitialThreshold: 1,
					},
				}
				total += engine.MustRun(cfg).AvgDivergence
			}
			avg := total / float64(seeds)
			tb.AddRowf(a, o, avg)
			if bestD < 0 || avg < bestD {
				bestA, bestO, bestD = a, o, avg
			}
		}
	}
	summary := stats.Table{
		Title:   "P1 best setting",
		Headers: []string{"alpha*", "omega*", "avg divergence"},
	}
	summary.AddRowf(bestA, bestO, bestD)
	return Output{Name: "P1 threshold parameter sweep", Tables: []stats.Table{tb, summary}}
}
