// Package bandwidth models the fluctuating bandwidth constraints of Olston &
// Widom (SIGMOD 2002), Section 6: the cache-side capacity C(t) and the
// per-source capacities B_j(t). In the paper's simulations, "the available
// cache-side and source-side bandwidth fluctuate over time following a sine
// wave pattern" whose maximum relative rate of change is the parameter m_B;
// m_B = 0 means constant bandwidth.
//
// All messages have unit size (one message consumes one unit of bandwidth),
// so capacity is expressed in messages per second. Capacity accrues into
// token buckets; fractional rates (e.g. one message per minute for the wind
// buoy experiment) accumulate across ticks until a whole message can be
// sent.
package bandwidth

import (
	"math"
)

// Profile is a time-varying capacity in messages per second.
type Profile interface {
	// Rate returns the instantaneous capacity at time t.
	Rate(t float64) float64
	// Integral returns the total capacity available over [t0, t1].
	Integral(t0, t1 float64) float64
}

// Const is a constant capacity.
type Const float64

// Rate implements Profile.
func (c Const) Rate(float64) float64 { return float64(c) }

// Integral implements Profile.
func (c Const) Integral(t0, t1 float64) float64 { return float64(c) * (t1 - t0) }

// Sine is a sinusoidally fluctuating capacity
//
//	B(t) = Mean · (1 + Amp·sin(2πt/Period + Phase)).
type Sine struct {
	Mean   float64
	Amp    float64 // relative amplitude in [0,1]
	Period float64
	Phase  float64
}

// Rate implements Profile.
func (s Sine) Rate(t float64) float64 {
	return s.Mean * (1 + s.Amp*math.Sin(2*math.Pi*t/s.Period+s.Phase))
}

// Integral implements Profile.
func (s Sine) Integral(t0, t1 float64) float64 {
	omega := 2 * math.Pi / s.Period
	return s.Mean*(t1-t0) +
		s.Mean*s.Amp/omega*(math.Cos(omega*t0+s.Phase)-math.Cos(omega*t1+s.Phase))
}

// DefaultAmp is the relative amplitude used by Fluctuating. The paper
// specifies only the mean bandwidth and the maximum relative change rate
// m_B; we fix the amplitude at 0.5 and derive the period (see DESIGN.md §4).
const DefaultAmp = 0.5

// Fluctuating builds the paper's fluctuation model from a mean capacity and
// the maximum relative change rate m_B: with B(t) = B̄(1 + A·sin(2πt/P + φ))
// the peak of |B′(t)|/B̄ is A·2π/P, so P = 2πA/m_B. maxChange = 0 yields a
// constant profile.
func Fluctuating(mean, maxChange, phase float64) Profile {
	if maxChange <= 0 {
		return Const(mean)
	}
	return Sine{
		Mean:   mean,
		Amp:    DefaultAmp,
		Period: 2 * math.Pi * DefaultAmp / maxChange,
		Phase:  phase,
	}
}

// Step is a piecewise-constant capacity, used for failure-injection and
// ablation experiments (e.g. a sudden bandwidth collapse). Times must be
// strictly increasing; Rates[i] applies on [Times[i], Times[i+1]). Before
// Times[0] the capacity is Rates[0].
type Step struct {
	Times []float64
	Rates []float64
}

// Rate implements Profile.
func (s Step) Rate(t float64) float64 {
	r := s.Rates[0]
	for i, ti := range s.Times {
		if t < ti {
			break
		}
		r = s.Rates[i]
	}
	return r
}

// Integral implements Profile by summing over the constant segments.
func (s Step) Integral(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	total := 0.0
	cur := t0
	for cur < t1 {
		r := s.Rate(cur)
		next := t1
		for _, ti := range s.Times {
			if ti > cur && ti < next {
				next = ti
			}
		}
		total += r * (next - cur)
		cur = next
	}
	return total
}

// Bucket is a token bucket fed from a Profile. Tokens accrue continuously
// and are capped at Burst to prevent an idle link from saving up an
// unbounded burst; Burst should normally be max(1, one tick's capacity).
type Bucket struct {
	Tokens float64
	Burst  float64
}

// Accrue adds capacity earned over [t0, t1] under profile p, clamped to the
// burst limit.
func (b *Bucket) Accrue(p Profile, t0, t1 float64) {
	b.Tokens += p.Integral(t0, t1)
	if b.Burst > 0 && b.Tokens > b.Burst {
		b.Tokens = b.Burst
	}
}

// TryTake consumes n tokens if available and reports whether it did.
func (b *Bucket) TryTake(n float64) bool {
	if b.Tokens+1e-9 < n {
		return false
	}
	b.Tokens -= n
	return true
}

// Whole returns the number of whole messages currently sendable.
func (b *Bucket) Whole() int {
	if b.Tokens < 0 {
		return 0
	}
	return int(b.Tokens + 1e-9)
}
