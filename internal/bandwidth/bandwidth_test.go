package bandwidth

import (
	"math"
	"testing"
	"testing/quick"
)

func numericIntegral(p Profile, t0, t1 float64) float64 {
	const steps = 20000
	h := (t1 - t0) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		a := t0 + float64(i)*h
		sum += (p.Rate(a) + p.Rate(a+h)) / 2 * h
	}
	return sum
}

func TestConstProfile(t *testing.T) {
	p := Const(10)
	if p.Rate(42) != 10 {
		t.Errorf("Rate = %v, want 10", p.Rate(42))
	}
	if p.Integral(2, 7) != 50 {
		t.Errorf("Integral = %v, want 50", p.Integral(2, 7))
	}
}

func TestSineIntegralMatchesNumeric(t *testing.T) {
	p := Sine{Mean: 20, Amp: 0.5, Period: 13, Phase: 0.7}
	want := numericIntegral(p, 3, 29)
	got := p.Integral(3, 29)
	if math.Abs(got-want) > 1e-4*(1+want) {
		t.Errorf("Integral = %v, want %v", got, want)
	}
}

func TestSineRateNonNegative(t *testing.T) {
	p := Sine{Mean: 5, Amp: 1, Period: 10}
	for tm := 0.0; tm < 20; tm += 0.05 {
		if p.Rate(tm) < 0 {
			t.Fatalf("Rate(%v) = %v < 0", tm, p.Rate(tm))
		}
	}
}

func TestFluctuatingZeroChangeIsConst(t *testing.T) {
	p := Fluctuating(7, 0, 0)
	if _, ok := p.(Const); !ok {
		t.Fatalf("Fluctuating(7,0,0) = %T, want Const", p)
	}
	if p.Rate(5) != 7 {
		t.Errorf("Rate = %v, want 7", p.Rate(5))
	}
}

func TestFluctuatingPeakChangeRate(t *testing.T) {
	// The max of |dB/dt|/mean should equal m_B.
	for _, mB := range []float64{0.005, 0.05, 0.25} {
		p := Fluctuating(100, mB, 0).(Sine)
		maxRel := 0.0
		dt := p.Period / 10000
		for tm := 0.0; tm < p.Period; tm += dt {
			rel := math.Abs(p.Rate(tm+dt)-p.Rate(tm)) / dt / p.Mean
			if rel > maxRel {
				maxRel = rel
			}
		}
		if math.Abs(maxRel-mB) > 0.02*mB {
			t.Errorf("m_B=%v: observed peak relative change %v", mB, maxRel)
		}
	}
}

func TestFluctuatingMeanPreserved(t *testing.T) {
	p := Fluctuating(40, 0.05, 0).(Sine)
	avg := p.Integral(0, p.Period*4) / (p.Period * 4)
	if math.Abs(avg-40) > 1e-9 {
		t.Errorf("average over whole periods = %v, want 40", avg)
	}
}

func TestStepRate(t *testing.T) {
	p := Step{Times: []float64{0, 10, 20}, Rates: []float64{5, 1, 8}}
	cases := []struct{ t, want float64 }{
		{0, 5}, {9.99, 5}, {10, 1}, {15, 1}, {20, 8}, {100, 8},
	}
	for _, c := range cases {
		if got := p.Rate(c.t); got != c.want {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepIntegral(t *testing.T) {
	p := Step{Times: []float64{0, 10}, Rates: []float64{5, 1}}
	// [2,14] = 8s at 5 + 4s at 1 = 44
	if got := p.Integral(2, 14); math.Abs(got-44) > 1e-12 {
		t.Errorf("Integral(2,14) = %v, want 44", got)
	}
	if got := p.Integral(7, 7); got != 0 {
		t.Errorf("empty integral = %v, want 0", got)
	}
	if got := p.Integral(12, 10); got != 0 {
		t.Errorf("reversed integral = %v, want 0", got)
	}
}

func TestBucketAccrueAndTake(t *testing.T) {
	b := Bucket{Burst: 10}
	b.Accrue(Const(2), 0, 3) // 6 tokens
	if !b.TryTake(5) {
		t.Fatal("TryTake(5) failed with 6 tokens")
	}
	if b.TryTake(2) {
		t.Fatal("TryTake(2) succeeded with 1 token")
	}
	if !b.TryTake(1) {
		t.Fatal("TryTake(1) failed with 1 token")
	}
}

func TestBucketBurstCap(t *testing.T) {
	b := Bucket{Burst: 3}
	b.Accrue(Const(100), 0, 10)
	if b.Tokens != 3 {
		t.Errorf("Tokens = %v, want capped at 3", b.Tokens)
	}
}

func TestBucketNoBurstCapWhenZero(t *testing.T) {
	b := Bucket{}
	b.Accrue(Const(100), 0, 10)
	if b.Tokens != 1000 {
		t.Errorf("Tokens = %v, want 1000 (uncapped)", b.Tokens)
	}
}

func TestBucketFractionalAccumulation(t *testing.T) {
	// One message per minute: after 60 one-second accruals a message fits.
	b := Bucket{Burst: 2}
	p := Const(1.0 / 60)
	sent := 0
	for tick := 0; tick < 600; tick++ {
		b.Accrue(p, float64(tick), float64(tick+1))
		for b.TryTake(1) {
			sent++
		}
	}
	if sent != 10 {
		t.Errorf("sent %d messages in 600s at 1/min, want 10", sent)
	}
}

func TestBucketWhole(t *testing.T) {
	b := Bucket{Tokens: 3.7}
	if b.Whole() != 3 {
		t.Errorf("Whole = %d, want 3", b.Whole())
	}
	b.Tokens = -1
	if b.Whole() != 0 {
		t.Errorf("Whole with negative tokens = %d, want 0", b.Whole())
	}
	// Float fuzz just below an integer should round up via epsilon.
	b.Tokens = 2.9999999999
	if b.Whole() != 3 {
		t.Errorf("Whole(2.9999999999) = %d, want 3", b.Whole())
	}
}

// Property: token conservation — total taken never exceeds total accrued.
func TestBucketConservation(t *testing.T) {
	f := func(accruals []uint8) bool {
		b := Bucket{}
		total := 0.0
		taken := 0.0
		for _, a := range accruals {
			amt := float64(a) / 16
			b.Accrue(Const(amt), 0, 1)
			total += amt
			for b.TryTake(1) {
				taken++
			}
		}
		return taken <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Sine integral additivity.
func TestSineIntegralAdditive(t *testing.T) {
	p := Sine{Mean: 10, Amp: 0.5, Period: 9, Phase: 0.2}
	f := func(a, s1, s2 uint8) bool {
		t0 := float64(a) / 4
		t1 := t0 + float64(s1)/8
		t2 := t1 + float64(s2)/8
		whole := p.Integral(t0, t2)
		split := p.Integral(t0, t1) + p.Integral(t1, t2)
		return math.Abs(whole-split) < 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBucketAccrueTake(b *testing.B) {
	bk := Bucket{Burst: 100}
	p := Sine{Mean: 10, Amp: 0.5, Period: 60}
	for i := 0; i < b.N; i++ {
		bk.Accrue(p, float64(i), float64(i+1))
		bk.TryTake(1)
	}
}
