package priority

import "math"

func inf() float64           { return math.Inf(1) }
func sqrt(x float64) float64 { return math.Sqrt(x) }

// Queue is an indexed max-heap of (object id, priority) pairs supporting
// O(log n) upsert and removal by id. Object ids are small dense integers
// (indices into the engine's object table), so positions are tracked in a
// slice rather than a map.
//
// Sources use a Queue to locate their highest-priority modified object
// whenever spare source-side bandwidth becomes available (Section 8), and
// the idealized global scheduler uses one per source plus a queue of
// sources.
type Queue struct {
	ids  []int     // heap of object ids
	pri  []float64 // pri[k] is the priority of ids[k]
	pos  []int     // pos[id] = index in ids, or -1
	size int
}

// NewQueue returns a queue sized for ids in [0, capacity).
func NewQueue(capacity int) *Queue {
	q := &Queue{pos: make([]int, capacity)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Len returns the number of entries.
func (q *Queue) Len() int { return q.size }

// Contains reports whether id is in the queue.
func (q *Queue) Contains(id int) bool {
	return id >= 0 && id < len(q.pos) && q.pos[id] >= 0
}

// Priority returns the stored priority for id, or 0 if absent.
func (q *Queue) Priority(id int) float64 {
	if !q.Contains(id) {
		return 0
	}
	return q.pri[q.pos[id]]
}

// grow extends the position table to accommodate id.
func (q *Queue) grow(id int) {
	for len(q.pos) <= id {
		q.pos = append(q.pos, -1)
	}
}

// Upsert inserts id with the given priority, or updates its priority if
// already present.
func (q *Queue) Upsert(id int, pri float64) {
	q.grow(id)
	if k := q.pos[id]; k >= 0 {
		old := q.pri[k]
		q.pri[k] = pri
		if pri > old {
			q.up(k)
		} else if pri < old {
			q.down(k)
		}
		return
	}
	if q.size == len(q.ids) {
		q.ids = append(q.ids, id)
		q.pri = append(q.pri, pri)
	} else {
		q.ids[q.size] = id
		q.pri[q.size] = pri
	}
	q.pos[id] = q.size
	q.size++
	q.up(q.size - 1)
}

// Remove deletes id from the queue if present.
func (q *Queue) Remove(id int) {
	if !q.Contains(id) {
		return
	}
	k := q.pos[id]
	q.swap(k, q.size-1)
	q.pos[id] = -1
	q.size--
	if k < q.size {
		q.down(k)
		q.up(k)
	}
}

// Max returns the id and priority of the highest-priority entry without
// removing it. ok is false when the queue is empty.
func (q *Queue) Max() (id int, pri float64, ok bool) {
	if q.size == 0 {
		return 0, 0, false
	}
	return q.ids[0], q.pri[0], true
}

// PopMax removes and returns the highest-priority entry.
func (q *Queue) PopMax() (id int, pri float64, ok bool) {
	if q.size == 0 {
		return 0, 0, false
	}
	id, pri = q.ids[0], q.pri[0]
	q.Remove(id)
	return id, pri, true
}

func (q *Queue) swap(i, j int) {
	if i == j {
		return
	}
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.pri[i], q.pri[j] = q.pri[j], q.pri[i]
	q.pos[q.ids[i]] = i
	q.pos[q.ids[j]] = j
}

func (q *Queue) up(k int) {
	for k > 0 {
		parent := (k - 1) / 2
		if q.pri[parent] >= q.pri[k] {
			break
		}
		q.swap(parent, k)
		k = parent
	}
}

func (q *Queue) down(k int) {
	for {
		l, r := 2*k+1, 2*k+2
		largest := k
		if l < q.size && q.pri[l] > q.pri[largest] {
			largest = l
		}
		if r < q.size && q.pri[r] > q.pri[largest] {
			largest = r
		}
		if largest == k {
			return
		}
		q.swap(k, largest)
		k = largest
	}
}
