// Package priority implements the refresh-priority policy of Olston & Widom
// (SIGMOD 2002), Sections 3.3–3.4 and 9, together with an indexed max-heap
// used by sources and the idealized global scheduler to track the
// highest-priority modified objects.
//
// docs/algorithm-specifications.md §3 gives the formulas side by side.
package priority

import "fmt"

// Fn selects a refresh-priority function.
type Fn int

const (
	// AreaGeneral is the paper's general priority (Section 3.3): the
	// weighted area above the divergence curve since the last refresh,
	//
	//	P = [(t_now − t_last)·D(t_now) − ∫ D dτ] · W(t_now).
	//
	// It applies to any divergence metric and uses realized divergence
	// history, requiring no model of future updates.
	AreaGeneral Fn = iota

	// SimpleDivergence is the intuitive-but-inferior strawman of Section
	// 4.3: P = D(t_now)·W(t_now). The paper shows it loses badly under
	// skewed weights and update rates.
	SimpleDivergence

	// PoissonStaleness is the Section 3.4 special case for the staleness
	// metric under Poisson updates: P = D_s/λ · W.
	PoissonStaleness

	// PoissonLag is the Section 3.4 special case for the lag metric under
	// Poisson updates: P = D_l(D_l+1)/(2λ) · W.
	PoissonLag

	// BoundArea is the Section 9 priority that minimizes the average upper
	// bound on divergence for objects with known maximum divergence rate R:
	// P = R·(t_now − t_last)²/2 · W.
	BoundArea
)

// String returns a short identifier for the priority function.
func (f Fn) String() string {
	switch f {
	case AreaGeneral:
		return "area-general"
	case SimpleDivergence:
		return "simple-divergence"
	case PoissonStaleness:
		return "poisson-staleness"
	case PoissonLag:
		return "poisson-lag"
	case BoundArea:
		return "bound-area"
	default:
		return fmt.Sprintf("Fn(%d)", int(f))
	}
}

// Inputs carries everything any of the priority functions may need. Callers
// fill in the fields relevant to the chosen Fn.
type Inputs struct {
	Now         float64 // current time t_now
	LastRefresh float64 // t_last
	Divergence  float64 // D(O, t_now)
	Integral    float64 // ∫_{t_last}^{t_now} D(O,τ) dτ
	Weight      float64 // W(O, t_now)
	Lambda      float64 // estimated Poisson update rate λ
	Updates     int     // updates since last refresh (lag metric)
	MaxRate     float64 // known maximum divergence rate R (BoundArea)
}

// Compute returns the weighted refresh priority for function f.
func Compute(f Fn, in Inputs) float64 {
	switch f {
	case AreaGeneral:
		return ((in.Now-in.LastRefresh)*in.Divergence - in.Integral) * in.Weight
	case SimpleDivergence:
		return in.Divergence * in.Weight
	case PoissonStaleness:
		if in.Lambda <= 0 {
			return 0
		}
		s := 0.0
		if in.Updates > 0 {
			s = 1
		}
		return s / in.Lambda * in.Weight
	case PoissonLag:
		if in.Lambda <= 0 {
			return 0
		}
		d := float64(in.Updates)
		return d * (d + 1) / (2 * in.Lambda) * in.Weight
	case BoundArea:
		dt := in.Now - in.LastRefresh
		return in.MaxRate * dt * dt / 2 * in.Weight
	default:
		panic(fmt.Sprintf("priority: unknown function %d", int(f)))
	}
}

// ProjectedCrossing returns the time t_future at which an object's priority
// is expected to reach threshold T, per Section 8.2.1, assuming divergence
// grows linearly at estimated rate rho:
//
//	t_future = t_last + sqrt((t_now − t_last)² + 2(T − P(t_now))/(ρ·W)).
//
// It returns now when the priority already exceeds the threshold and +Inf
// when rho or w is nonpositive (no growth predicted).
func ProjectedCrossing(now, lastRefresh, currentPriority, threshold, rho, w float64) float64 {
	if currentPriority >= threshold {
		return now
	}
	if rho <= 0 || w <= 0 {
		return inf()
	}
	dt := now - lastRefresh
	rad := dt*dt + 2*(threshold-currentPriority)/(rho*w)
	return lastRefresh + sqrt(rad)
}
