package priority

import (
	"math"
	"testing"
)

func TestFnString(t *testing.T) {
	cases := map[Fn]string{
		AreaGeneral:      "area-general",
		SimpleDivergence: "simple-divergence",
		PoissonStaleness: "poisson-staleness",
		PoissonLag:       "poisson-lag",
		BoundArea:        "bound-area",
		Fn(77):           "Fn(77)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Fn(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestComputeAreaGeneral(t *testing.T) {
	in := Inputs{Now: 10, LastRefresh: 2, Divergence: 3, Integral: 14, Weight: 2}
	// ((10-2)*3 − 14) * 2 = (24-14)*2 = 20
	if got := Compute(AreaGeneral, in); got != 20 {
		t.Errorf("AreaGeneral = %v, want 20", got)
	}
}

func TestComputeSimpleDivergence(t *testing.T) {
	in := Inputs{Divergence: 4, Weight: 2.5}
	if got := Compute(SimpleDivergence, in); got != 10 {
		t.Errorf("SimpleDivergence = %v, want 10", got)
	}
}

func TestComputePoissonStaleness(t *testing.T) {
	in := Inputs{Updates: 3, Lambda: 0.5, Weight: 2}
	// Ds=1; 1/0.5 * 2 = 4
	if got := Compute(PoissonStaleness, in); got != 4 {
		t.Errorf("PoissonStaleness = %v, want 4", got)
	}
	in.Updates = 0
	if got := Compute(PoissonStaleness, in); got != 0 {
		t.Errorf("PoissonStaleness up-to-date = %v, want 0", got)
	}
	in.Updates = 1
	in.Lambda = 0
	if got := Compute(PoissonStaleness, in); got != 0 {
		t.Errorf("PoissonStaleness λ=0 = %v, want 0", got)
	}
}

func TestComputePoissonStalenessFavorsSlowObjects(t *testing.T) {
	// Among stale objects, the slowest-changing gets highest priority.
	slow := Compute(PoissonStaleness, Inputs{Updates: 1, Lambda: 0.01, Weight: 1})
	fast := Compute(PoissonStaleness, Inputs{Updates: 1, Lambda: 1.0, Weight: 1})
	if slow <= fast {
		t.Errorf("slow=%v should exceed fast=%v", slow, fast)
	}
}

func TestComputePoissonLag(t *testing.T) {
	in := Inputs{Updates: 3, Lambda: 2, Weight: 4}
	// 3*4/(2*2) * 4 = 12
	if got := Compute(PoissonLag, in); got != 12 {
		t.Errorf("PoissonLag = %v, want 12", got)
	}
	in.Lambda = 0
	if got := Compute(PoissonLag, in); got != 0 {
		t.Errorf("PoissonLag λ=0 = %v, want 0", got)
	}
}

func TestComputePoissonLagSquareGrowth(t *testing.T) {
	// Priority grows roughly with the square of the updates behind.
	p10 := Compute(PoissonLag, Inputs{Updates: 10, Lambda: 1, Weight: 1})
	p20 := Compute(PoissonLag, Inputs{Updates: 20, Lambda: 1, Weight: 1})
	ratio := p20 / p10
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("doubling lag should ~quadruple priority, got ratio %v", ratio)
	}
}

func TestComputeBoundArea(t *testing.T) {
	in := Inputs{Now: 7, LastRefresh: 3, MaxRate: 2, Weight: 3}
	// 2*16/2*3 = 48
	if got := Compute(BoundArea, in); got != 48 {
		t.Errorf("BoundArea = %v, want 48", got)
	}
}

func TestComputeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compute with unknown Fn did not panic")
		}
	}()
	Compute(Fn(99), Inputs{})
}

func TestProjectedCrossing(t *testing.T) {
	// Already above threshold → now.
	if got := ProjectedCrossing(5, 0, 10, 8, 1, 1); got != 5 {
		t.Errorf("already above threshold: got %v, want 5", got)
	}
	// No growth → +Inf.
	if got := ProjectedCrossing(5, 0, 1, 8, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("rho=0: got %v, want +Inf", got)
	}
	if got := ProjectedCrossing(5, 0, 1, 8, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("w=0: got %v, want +Inf", got)
	}
}

func TestProjectedCrossingConsistentWithLinearModel(t *testing.T) {
	// With divergence growing linearly at rate rho from a refresh at t_last,
	// P(t) = rho·(t−t_last)²/2 · w. Verify the projection inverts this.
	const (
		tLast = 2.0
		rho   = 0.5
		w     = 3.0
		T     = 40.0
	)
	now := 6.0
	dt := now - tLast
	p := rho * dt * dt / 2 * w
	tf := ProjectedCrossing(now, tLast, p, T, rho, w)
	// At tf, the model priority should equal T.
	dtf := tf - tLast
	pf := rho * dtf * dtf / 2 * w
	if math.Abs(pf-T) > 1e-9 {
		t.Errorf("priority at projected time = %v, want %v", pf, T)
	}
	if tf <= now {
		t.Errorf("projection %v should be after now %v", tf, now)
	}
}

func TestAreaGeneralZeroWeightZeroPriority(t *testing.T) {
	in := Inputs{Now: 10, LastRefresh: 0, Divergence: 5, Integral: 10, Weight: 0}
	if got := Compute(AreaGeneral, in); got != 0 {
		t.Errorf("zero weight priority = %v, want 0", got)
	}
}
