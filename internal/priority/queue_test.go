package priority

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueEmpty(t *testing.T) {
	q := NewQueue(4)
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
	if _, _, ok := q.Max(); ok {
		t.Error("Max on empty queue returned ok")
	}
	if _, _, ok := q.PopMax(); ok {
		t.Error("PopMax on empty queue returned ok")
	}
}

func TestQueueBasicOrdering(t *testing.T) {
	q := NewQueue(8)
	q.Upsert(0, 3)
	q.Upsert(1, 7)
	q.Upsert(2, 1)
	q.Upsert(3, 5)
	want := []int{1, 3, 0, 2}
	for _, w := range want {
		id, _, ok := q.PopMax()
		if !ok || id != w {
			t.Fatalf("PopMax = %d (ok=%v), want %d", id, ok, w)
		}
	}
}

func TestQueueUpsertUpdates(t *testing.T) {
	q := NewQueue(4)
	q.Upsert(0, 1)
	q.Upsert(1, 2)
	q.Upsert(0, 10) // raise
	if id, pri, _ := q.Max(); id != 0 || pri != 10 {
		t.Fatalf("after raise: Max = (%d,%v), want (0,10)", id, pri)
	}
	q.Upsert(0, 0.5) // lower
	if id, _, _ := q.Max(); id != 1 {
		t.Fatalf("after lower: Max = %d, want 1", id)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(4)
	q.Upsert(0, 5)
	q.Upsert(1, 9)
	q.Upsert(2, 3)
	q.Remove(1)
	if q.Contains(1) {
		t.Error("Contains(1) after Remove")
	}
	if id, _, _ := q.Max(); id != 0 {
		t.Errorf("Max after remove = %d, want 0", id)
	}
	q.Remove(1) // idempotent
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestQueueRemoveAbsentNoop(t *testing.T) {
	q := NewQueue(2)
	q.Remove(17) // beyond capacity, absent — must not panic
	q.Upsert(0, 1)
	q.Remove(1)
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestQueueGrowsBeyondCapacity(t *testing.T) {
	q := NewQueue(1)
	for i := 0; i < 100; i++ {
		q.Upsert(i, float64(i))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	if id, _, _ := q.Max(); id != 99 {
		t.Errorf("Max = %d, want 99", id)
	}
}

func TestQueuePriorityLookup(t *testing.T) {
	q := NewQueue(4)
	q.Upsert(2, 6.5)
	if got := q.Priority(2); got != 6.5 {
		t.Errorf("Priority(2) = %v, want 6.5", got)
	}
	if got := q.Priority(3); got != 0 {
		t.Errorf("Priority(absent) = %v, want 0", got)
	}
}

// checkInvariants validates the heap property and the position map.
func checkInvariants(t *testing.T, q *Queue) {
	t.Helper()
	for k := 0; k < q.size; k++ {
		l, r := 2*k+1, 2*k+2
		if l < q.size && q.pri[l] > q.pri[k] {
			t.Fatalf("heap violation at %d/%d", k, l)
		}
		if r < q.size && q.pri[r] > q.pri[k] {
			t.Fatalf("heap violation at %d/%d", k, r)
		}
		if q.pos[q.ids[k]] != k {
			t.Fatalf("position map broken for id %d", q.ids[k])
		}
	}
}

func TestQueueRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const n = 200
		q := NewQueue(n)
		ref := map[int]float64{}
		for op := 0; op < 2000; op++ {
			id := rng.Intn(n)
			switch rng.Intn(3) {
			case 0, 1:
				p := rng.Float64() * 100
				q.Upsert(id, p)
				ref[id] = p
			case 2:
				q.Remove(id)
				delete(ref, id)
			}
		}
		checkInvariants(t, q)
		if q.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", q.Len(), len(ref))
		}
		// Drain and compare against sorted reference.
		type pair struct {
			id  int
			pri float64
		}
		var want []pair
		for id, p := range ref {
			want = append(want, pair{id, p})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].pri > want[j].pri })
		for i := range want {
			_, pri, ok := q.PopMax()
			if !ok {
				t.Fatalf("queue drained early at %d", i)
			}
			if pri != want[i].pri {
				t.Fatalf("pop %d: pri = %v, want %v", i, pri, want[i].pri)
			}
		}
	}
}

// Property: after any sequence of upserts, PopMax yields non-increasing
// priorities.
func TestQueuePopMonotone(t *testing.T) {
	f := func(pris []float64) bool {
		q := NewQueue(len(pris))
		for i, p := range pris {
			q.Upsert(i, p)
		}
		prev, first := 0.0, true
		for {
			_, p, ok := q.PopMax()
			if !ok {
				break
			}
			if !first && p > prev {
				return false
			}
			prev, first = p, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueueUpsertPop(b *testing.B) {
	const n = 1024
	q := NewQueue(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Upsert(rng.Intn(n), rng.Float64())
		if i%4 == 3 {
			q.PopMax()
		}
	}
}
