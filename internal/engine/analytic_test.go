package engine

import (
	"math"
	"testing"

	"bestsync/internal/bandwidth"
	"bestsync/internal/metric"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// TestAnalyticQueueingScenario pins the engine's bookkeeping against a
// hand-computed scenario with known updates, a known bottleneck, and the
// ideal scheduler (no threshold dynamics to reason about).
//
// Setup: one source, two trace-driven objects, cache bandwidth exactly 1
// message/second, value-deviation metric, duration 10 s.
//
//	object A: jumps to 4 at t=1.5  (priority grows fast: D=4)
//	object B: jumps to 1 at t=1.2  (D=1)
//
// Timeline under the ideal scheduler (refresh slots at whole-second ticks,
// burst 1):
//
//	t=2: one slot. A has priority (2−0)·4−4·0.5 = 6, B has (2)·1−0.8 = 1.2.
//	     A refreshed at t=2.
//	t=3: B refreshed at t=3.
//
// Divergence integrals: A contributes 4·(2−1.5) = 2.0; B contributes
// 1·(3−1.2) = 1.8. Total 3.8 over 10 s across 2 objects → 0.19.
func TestAnalyticQueueingScenario(t *testing.T) {
	traces := []*workload.Trace{
		{Times: []float64{1.5}, Values: []float64{4}},
		{Times: []float64{1.2}, Values: []float64{1}},
	}
	cfg := Config{
		Seed:             1,
		Sources:          1,
		ObjectsPerSource: 2,
		Metric:           metric.ValueDeviation,
		Duration:         10,
		CacheBW:          bandwidth.Const(1),
		Policy:           IdealCooperative,
		Traces:           traces,
	}
	res := MustRun(cfg)
	if res.RefreshesDelivered != 2 {
		t.Fatalf("refreshes = %d, want 2", res.RefreshesDelivered)
	}
	want := (4*0.5 + 1*1.8) / 10 / 2
	if math.Abs(res.AvgDivergence-want) > 1e-9 {
		t.Errorf("AvgDivergence = %v, want %v", res.AvgDivergence, want)
	}
}

// TestAnalyticWeightedMeasurement checks the weighted integral against a
// closed-form computation with a sine weight.
func TestAnalyticWeightedMeasurement(t *testing.T) {
	// One object, never refreshed (zero bandwidth): D = 3 from t=2 on.
	traces := []*workload.Trace{
		{Times: []float64{2}, Values: []float64{3}},
	}
	w := weight.Sine{Base: 2, Amp: 0.5, Period: 7, Phase: 0.3}
	cfg := Config{
		Seed:             1,
		Sources:          1,
		ObjectsPerSource: 1,
		Metric:           metric.ValueDeviation,
		Duration:         10,
		CacheBW:          bandwidth.Const(0),
		Traces:           traces,
		Weights:          []weight.Fn{w},
	}
	res := MustRun(cfg)
	want := 3 * w.Integral(2, 10) / 10
	if math.Abs(res.AvgDivergence-want) > 1e-9 {
		t.Errorf("AvgDivergence = %v, want %v", res.AvgDivergence, want)
	}
}

// TestAnalyticLagMetric pins lag accounting: three updates, no refresh.
func TestAnalyticLagMetric(t *testing.T) {
	traces := []*workload.Trace{
		{Times: []float64{1, 2, 3}, Values: []float64{5, 6, 7}},
	}
	cfg := Config{
		Seed:             1,
		Sources:          1,
		ObjectsPerSource: 1,
		Metric:           metric.Lag,
		Duration:         4,
		CacheBW:          bandwidth.Const(0),
		Traces:           traces,
	}
	res := MustRun(cfg)
	// Lag: 1 over [1,2), 2 over [2,3), 3 over [3,4) → ∫ = 6 over 4 s.
	if math.Abs(res.AvgDivergence-1.5) > 1e-9 {
		t.Errorf("avg lag = %v, want 1.5", res.AvgDivergence)
	}
}

// TestAnalyticStalenessWindow pins the warmup clipping: staleness starts
// inside the warmup window and is partially clipped.
func TestAnalyticStalenessWindow(t *testing.T) {
	traces := []*workload.Trace{
		{Times: []float64{3}, Values: []float64{1}},
	}
	cfg := Config{
		Seed:             1,
		Sources:          1,
		ObjectsPerSource: 1,
		Metric:           metric.Staleness,
		Duration:         10,
		Warmup:           5,
		CacheBW:          bandwidth.Const(0),
		Traces:           traces,
	}
	res := MustRun(cfg)
	// Stale over [3,10]; measured window [5,10] → 5 stale seconds / 5 s = 1.
	if math.Abs(res.AvgDivergence-1) > 1e-9 {
		t.Errorf("avg staleness = %v, want 1", res.AvgDivergence)
	}
}

// TestAnalyticCooperativeDelivery pins the cooperative path end to end with
// a single object and generous thresholds driven to the floor by feedback.
func TestAnalyticCooperativeDelivery(t *testing.T) {
	traces := []*workload.Trace{
		{Times: []float64{2.5}, Values: []float64{2}},
	}
	cfg := Config{
		Seed:             1,
		Sources:          1,
		ObjectsPerSource: 1,
		Metric:           metric.ValueDeviation,
		Duration:         20,
		CacheBW:          bandwidth.Const(5),
		Traces:           traces,
		Policy:           Cooperative,
	}
	res := MustRun(cfg)
	if res.RefreshesDelivered != 1 {
		t.Fatalf("refreshes = %d, want 1", res.RefreshesDelivered)
	}
	// The update at 2.5 has priority 2·2.5 = 5 ≥ T₀=1, so it is sent at the
	// t=3 tick and delivered the same tick: D=2 over [2.5, 3) → 1.0 total.
	want := 2 * 0.5 / 20 / 1
	if math.Abs(res.AvgDivergence-want) > 1e-9 {
		t.Errorf("AvgDivergence = %v, want %v", res.AvgDivergence, want)
	}
}

// TestSameSeedSameWorkloadAcrossPolicies verifies the rng isolation that F4
// depends on: the update sequence must be identical whichever policy runs.
func TestSameSeedSameWorkloadAcrossPolicies(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = Cooperative
	a := MustRun(cfg)
	cfg.Policy = IdealCooperative
	b := MustRun(cfg)
	if a.Updates != b.Updates {
		t.Errorf("update counts differ across policies: %d vs %d (workload not isolated)",
			a.Updates, b.Updates)
	}
	cfg.Policy = Cooperative
	cfg.RandomFeedbackTargets = true
	c := MustRun(cfg)
	if c.Updates != a.Updates {
		t.Errorf("protocol randomness perturbed the workload: %d vs %d",
			c.Updates, a.Updates)
	}
}
