package engine

// eventHeap is a binary min-heap of pending object-update events ordered by
// time. Ties break on object index so runs are deterministic.
type eventHeap struct {
	times []float64
	objs  []int32
}

func (h *eventHeap) Len() int { return len(h.times) }

func (h *eventHeap) less(i, j int) bool {
	if h.times[i] != h.times[j] {
		return h.times[i] < h.times[j]
	}
	return h.objs[i] < h.objs[j]
}

func (h *eventHeap) swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.objs[i], h.objs[j] = h.objs[j], h.objs[i]
}

// Push schedules an update for obj at time t.
func (h *eventHeap) Push(t float64, obj int) {
	h.times = append(h.times, t)
	h.objs = append(h.objs, int32(obj))
	i := h.Len() - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// PeekTime returns the earliest scheduled time; callers must check Len > 0.
func (h *eventHeap) PeekTime() float64 { return h.times[0] }

// Pop removes and returns the earliest event.
func (h *eventHeap) Pop() (t float64, obj int) {
	t, obj = h.times[0], int(h.objs[0])
	last := h.Len() - 1
	h.swap(0, last)
	h.times = h.times[:last]
	h.objs = h.objs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return t, obj
}
