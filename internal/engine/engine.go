package engine

import (
	"math"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/competitive"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/netsim"
	"bestsync/internal/priority"
	"bestsync/internal/stats"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// object is the full simulation state of one data object.
type object struct {
	src int

	// Source copy.
	value   float64
	version uint64
	proc    workload.UpdateProcess
	vm      workload.ValueModel
	trace   *workload.Trace
	trIdx   int
	w       weight.Fn
	srcW    weight.Fn // competitive mode: the source's own weight
	lambda  float64
	maxRate float64

	// Source's scheduling view: divergence relative to the value last sent.
	sent    metric.Tracker
	sentVal float64
	sentVer uint64
	ownPri  float64 // competitive mode: priority under the source objective

	// Sliding-window rate estimation (RateWindowed): update counts in the
	// current and previous windows of length RateWindow.
	winEpoch int64
	winCur   int
	winPrev  int

	// Mutual-consistency tracking (Groups): the cached version of this
	// object was current at the source during [vTime, vNext).
	vTime float64
	vNext float64 // +Inf until the source updates past the cached version

	// Cache view: divergence relative to the value actually delivered.
	cacheVal  float64
	cacheVer  uint64
	trueD     float64
	trueLastT float64
	trueSrcD  float64 // competitive: same divergence, metered under srcW
	lastDeliv float64 // delivery time of the newest applied refresh (bounds)
}

type engine struct {
	cfg *Config
	rng *rand.Rand
	// protoRng serves protocol-level randomness (e.g. random feedback
	// targets) so that consuming it never perturbs the workload sequence:
	// runs with the same seed see identical updates regardless of policy.
	protoRng *rand.Rand

	objs    []object
	sources []*core.Source
	cache   *core.Cache

	// Per-source queues under the source objective (competitive mode).
	ownQueues []*priority.Queue
	ownBudget []bandwidth.Bucket // option 1/2 rate shares
	ownCredit []float64          // option 3 piggyback credits
	ownRates  []float64          // cached Section 7 share allocation

	srcBuckets []bandwidth.Bucket
	link       *netsim.Link
	srcQueue   *priority.Queue // IdealCooperative: source → top object priority
	stash      []int

	meter    stats.Meter // cache-objective weighted divergence
	srcMeter stats.Meter // source-objective weighted divergence
	boundAcc float64     // ∫ bound dt (Section 9)

	// surplusEWMA tracks recent cache-side surplus to pace feedback (see
	// cooperativeTick).
	surplusEWMA float64

	// minBurst is the minimum token-bucket burst so that the largest
	// possible message can always eventually be sent.
	minBurst float64
	// groupMembers maps a mutual-consistency group id to its objects.
	groupMembers map[int][]int
	// groupState accumulates each group's mixed-version exposure.
	groupState map[int]*groupConsistency
	// lastSendAt supports BatchWait (per-source time of last send).
	lastSendAt []float64
	// batchBuf is scratch space for batch assembly.
	batchBuf []int

	events eventHeap

	res Result
}

// Run executes one simulation and returns its measurements. The
// configuration is validated (and defaults filled) first.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e := newEngine(&cfg)
	e.run()
	return e.res, nil
}

// MustRun is Run for known-good configurations (experiments, benchmarks).
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func newEngine(cfg *Config) *engine {
	n := cfg.N()
	e := &engine{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		protoRng:   rand.New(rand.NewSource(cfg.Seed + 0x9e3779b9)),
		objs:       make([]object, n),
		sources:    make([]*core.Source, cfg.Sources),
		cache:      core.NewCache(cfg.Sources),
		srcBuckets: make([]bandwidth.Bucket, cfg.Sources),
		link:       netsim.NewLink(cfg.CacheBW, cfg.MaxQueue),
		meter:      stats.Meter{Warmup: cfg.Warmup},
		srcMeter:   stats.Meter{Warmup: cfg.Warmup},
	}
	for j := range e.sources {
		e.sources[j] = core.NewSource(j, cfg.Params, cfg.Feedback)
	}
	e.lastSendAt = make([]float64, cfg.Sources)
	e.minBurst = 1
	if cfg.Sizes != nil {
		for _, s := range cfg.Sizes {
			if s > e.minBurst {
				e.minBurst = s
			}
		}
	}
	if cfg.BatchMax > 1 {
		e.minBurst = cfg.BatchOverhead + float64(cfg.BatchMax)*e.minBurst
	}
	if cfg.Groups != nil {
		e.groupMembers = map[int][]int{}
		e.groupState = map[int]*groupConsistency{}
		for i, g := range cfg.Groups {
			if g >= 0 {
				e.groupMembers[g] = append(e.groupMembers[g], i)
				if e.groupState[g] == nil {
					e.groupState[g] = &groupConsistency{}
				}
			}
		}
		for i := range e.objs {
			e.objs[i].vNext = math.Inf(1)
		}
		maxSize := 1.0
		for _, members := range e.groupMembers {
			total := 0.0
			for _, i := range members {
				if cfg.Sizes != nil {
					total += cfg.Sizes[i]
				} else {
					total++
				}
			}
			if total > maxSize {
				maxSize = total
			}
		}
		if maxSize > e.minBurst {
			e.minBurst = maxSize
		}
	}
	if cfg.Policy == IdealCooperative {
		e.srcQueue = priority.NewQueue(cfg.Sources)
	}
	if cfg.Competitive != nil {
		e.ownQueues = make([]*priority.Queue, cfg.Sources)
		for j := range e.ownQueues {
			e.ownQueues[j] = priority.NewQueue(0)
		}
		e.ownBudget = make([]bandwidth.Bucket, cfg.Sources)
		e.ownCredit = make([]float64, cfg.Sources)
	}
	for i := range e.objs {
		o := &e.objs[i]
		o.src = cfg.SourceOf(i)
		o.w = weight.Const(1)
		if cfg.Weights != nil && cfg.Weights[i] != nil {
			o.w = cfg.Weights[i]
		}
		o.srcW = o.w
		if cfg.Competitive != nil && cfg.Competitive.SourceWeights != nil {
			o.srcW = cfg.Competitive.SourceWeights[i]
		}
		if cfg.Rates != nil {
			o.lambda = cfg.Rates[i]
		}
		if cfg.MaxRates != nil {
			o.maxRate = cfg.MaxRates[i]
		}
		switch {
		case cfg.Traces != nil && cfg.Traces[i] != nil:
			o.trace = cfg.Traces[i]
		case cfg.Processes != nil && cfg.Processes[i] != nil:
			o.proc = cfg.Processes[i]
		default:
			o.proc = workload.Poisson{Lambda: o.lambda}
		}
		o.vm = workload.RandomWalk{Step: 1}
		if cfg.Values != nil && cfg.Values[i] != nil {
			o.vm = cfg.Values[i]
		}
		if o.trace == nil {
			o.value = o.vm.Initial(e.rng)
		}
		o.sentVal = o.value
		o.cacheVal = o.value
		// Schedule the first update.
		if o.trace != nil {
			if o.trace.Len() > 0 {
				e.events.Push(o.trace.Times[0], i)
			}
		} else {
			if t := o.proc.NextAfter(0, e.rng); !math.IsInf(t, 1) {
				e.events.Push(t, i)
			}
		}
	}
	return e
}

func (e *engine) run() {
	cfg := e.cfg
	tick := cfg.Tick
	nTicks := int(math.Ceil(cfg.Duration / tick))
	prev := 0.0
	for k := 1; k <= nTicks; k++ {
		now := float64(k) * tick
		if now > cfg.Duration {
			now = cfg.Duration
		}
		for e.events.Len() > 0 && e.events.PeekTime() <= now {
			t, i := e.events.Pop()
			if t > cfg.Duration {
				break
			}
			e.applyUpdate(i, t)
		}
		switch cfg.Policy {
		case IdealCooperative:
			e.idealTick(prev, now)
		default:
			e.cooperativeTick(prev, now)
		}
		prev = now
	}
	e.finish(cfg.Duration)
}

// applyUpdate advances object i to its new source value at time t.
func (e *engine) applyUpdate(i int, t float64) {
	cfg := e.cfg
	o := &e.objs[i]
	e.res.Updates++

	// New source value.
	if o.trace != nil {
		o.value = o.trace.Values[o.trIdx]
		o.trIdx++
		if o.trIdx < o.trace.Len() {
			e.events.Push(o.trace.Times[o.trIdx], i)
		}
	} else {
		o.value = o.vm.Next(o.value, t, e.rng)
		if next := o.proc.NextAfter(t, e.rng); !math.IsInf(next, 1) {
			e.events.Push(next, i)
		}
	}
	o.version++
	if e.cfg.Groups != nil && math.IsInf(o.vNext, 1) && o.version > o.cacheVer {
		// This update supersedes the cached version: its validity window
		// at the source closes now.
		o.vNext = t
		e.touchGroup(i, t)
	}
	if e.cfg.RateEstimation == RateWindowed {
		epoch := int64(t / e.cfg.RateWindow)
		switch {
		case epoch == o.winEpoch+1:
			o.winPrev, o.winCur = o.winCur, 0
		case epoch > o.winEpoch+1:
			o.winPrev, o.winCur = 0, 0
		}
		o.winEpoch = epoch
		o.winCur++
	}

	// Scheduling view (relative to the value last sent).
	dSent := metric.Divergence(cfg.Metric, cfg.Delta,
		int(o.version-o.sentVer), o.value, o.sentVal)
	o.sent.Update(t, dSent)
	e.requeue(i, t)

	// Measurement view (relative to the value the cache actually holds).
	e.meterTo(i, t)
	o.trueD = metric.Divergence(cfg.Metric, cfg.Delta,
		int(o.version-o.cacheVer), o.value, o.cacheVal)
	o.trueSrcD = o.trueD
}

// meterTo closes the object's current constant-divergence interval at time t.
func (e *engine) meterTo(i int, t float64) {
	o := &e.objs[i]
	if t > o.trueLastT {
		e.meter.Add(o.trueLastT, t, o.trueD, o.w)
		if e.cfg.Competitive != nil {
			e.srcMeter.Add(o.trueLastT, t, o.trueSrcD, o.srcW)
		}
	}
	o.trueLastT = t
}

// requeue recomputes object i's refresh priority and places it in (or drops
// it from) its source's queue.
func (e *engine) requeue(i int, now float64) {
	o := &e.objs[i]
	p := e.schedPriority(i, now)
	q := e.sources[o.src].Queue
	if p > 0 {
		q.Upsert(i, p)
	} else {
		q.Remove(i)
	}
	if e.cfg.Competitive != nil {
		op := e.ownPriority(i, now)
		o.ownPri = op
		if op > 0 {
			e.ownQueues[o.src].Upsert(i, op)
		} else {
			e.ownQueues[o.src].Remove(i)
		}
	}
	if e.srcQueue != nil {
		e.refreshSrcKey(o.src)
	}
}

// refreshSrcKey syncs the ideal scheduler's per-source key with the source's
// current top priority.
func (e *engine) refreshSrcKey(j int) {
	if _, top, ok := e.sources[j].Queue.Max(); ok {
		e.srcQueue.Upsert(j, top)
	} else {
		e.srcQueue.Remove(j)
	}
}

// schedPriority evaluates the configured priority function for object i.
func (e *engine) schedPriority(i int, now float64) float64 {
	o := &e.objs[i]
	w := o.w.At(now)
	if e.cfg.CostAware {
		// Section 10.1: weight inversely proportional to refresh cost.
		w /= e.msgSize(i)
	}
	return priority.Compute(e.cfg.PriorityFn, priority.Inputs{
		Now:         now,
		LastRefresh: o.sent.LastReset(),
		Divergence:  o.sent.Current(),
		Integral:    o.sent.Integral(now),
		Weight:      w,
		Lambda:      e.lambdaFor(i, now),
		Updates:     o.sent.UpdatesBehind(),
		MaxRate:     o.maxRate,
	})
}

// lambdaFor returns the update-rate estimate the configured estimator would
// give the source for object i (Sections 8.1 and 10.1).
func (e *engine) lambdaFor(i int, now float64) float64 {
	o := &e.objs[i]
	switch e.cfg.RateEstimation {
	case RateSinceRefresh:
		span := now - o.sent.LastReset()
		u := o.sent.UpdatesBehind()
		if span <= 0 || u == 0 {
			return 0
		}
		return float64(u) / span
	case RateWindowed:
		tau := e.cfg.RateWindow
		epoch := int64(now / tau)
		cur, prev := o.winCur, o.winPrev
		switch {
		case epoch == o.winEpoch+1:
			prev, cur = cur, 0
		case epoch > o.winEpoch+1:
			prev, cur = 0, 0
		}
		span := now - float64(epoch)*tau + tau
		return float64(prev+cur) / span
	default:
		return o.lambda
	}
}

// fullSize is object i's full-refresh message size.
func (e *engine) fullSize(i int) float64 {
	if e.cfg.Sizes != nil {
		return e.cfg.Sizes[i]
	}
	return 1
}

// msgSize is the bandwidth a refresh of object i costs right now: the full
// size, or the delta encoding when enabled and cheaper (Section 10.1).
func (e *engine) msgSize(i int) float64 {
	full := e.fullSize(i)
	if e.cfg.DeltaSize > 0 {
		o := &e.objs[i]
		if d := e.cfg.DeltaSize * float64(o.version-o.sentVer); d < full {
			if d <= 0 {
				return e.cfg.DeltaSize // at least one delta unit
			}
			return d
		}
	}
	return full
}

// ownPriority is the priority under the source's own objective (Section 7).
func (e *engine) ownPriority(i int, now float64) float64 {
	o := &e.objs[i]
	return priority.Compute(priority.AreaGeneral, priority.Inputs{
		Now:         now,
		LastRefresh: o.sent.LastReset(),
		Divergence:  o.sent.Current(),
		Integral:    o.sent.Integral(now),
		Weight:      o.srcW.At(now),
	})
}

// markSent records that object i's current value was handed to the network
// at time t: the source now schedules relative to this value.
func (e *engine) markSent(i int, t float64) {
	o := &e.objs[i]
	o.sentVal = o.value
	o.sentVer = o.version
	o.sent.Reset(t, 0)
	e.sources[o.src].Queue.Remove(i)
	if e.cfg.Competitive != nil {
		e.ownQueues[o.src].Remove(i)
	}
}

// applyDelivery installs a refresh message (possibly a batch) at the cache.
func (e *engine) applyDelivery(m netsim.Message, t float64) {
	if len(m.Entries) > 0 {
		for _, en := range m.Entries {
			e.applyEntry(en.Object, en.Value, en.Version, m.Sent, t)
		}
		return
	}
	e.applyEntry(m.Object, m.Value, m.Version, m.Sent, t)
}

// applyEntry installs one object refresh at the cache at time t. sent is
// when the carrying message left its source (the instant the delivered
// version is known to have been current).
func (e *engine) applyEntry(obj int, value float64, version uint64, sent, t float64) {
	cfg := e.cfg
	o := &e.objs[obj]
	if version < o.cacheVer {
		// Out-of-order delivery cannot happen on a FIFO link from a single
		// source, but guard anyway: never regress the cache copy.
		return
	}
	e.meterTo(obj, t)
	// Divergence-bound accounting (Section 9): the bound grew linearly at
	// rate R since the previous delivery.
	if o.maxRate > 0 {
		span := t - o.lastDeliv
		base := cfg.RefreshLatency
		e.boundAcc += o.maxRate * (span*span/2 + base*span)
		o.lastDeliv = t
	}
	o.cacheVal = value
	o.cacheVer = version
	o.trueD = metric.Divergence(cfg.Metric, cfg.Delta,
		int(o.version-o.cacheVer), o.value, o.cacheVal)
	o.trueSrcD = o.trueD
	if cfg.Groups != nil {
		o.vTime = sent
		if version == o.version {
			o.vNext = math.Inf(1) // still current; closes at the next update
		} else {
			o.vNext = sent // superseded at some unknown time ≥ sent
		}
		e.touchGroup(obj, t)
	}
	e.res.RefreshesDelivered++
}

// cooperativeTick runs one protocol tick of the paper's algorithm over
// (prev, now].
func (e *engine) cooperativeTick(prev, now float64) {
	cfg := e.cfg
	tick := now - prev
	srcBW := cfg.SourceBW
	if srcBW == nil {
		srcBW = unlimited
	}

	// 1. Sources send refreshes, rotating the starting source for fairness.
	m := cfg.Sources
	start := 0
	if m > 1 {
		start = int(math.Mod(now/cfg.Tick, float64(m)))
	}
	for jj := 0; jj < m; jj++ {
		j := (start + jj) % m
		s := e.sources[j]
		b := &e.srcBuckets[j]
		b.Burst = math.Max(e.minBurst, srcBW.Rate(now)*tick)
		b.Accrue(srcBW, prev, now)

		// Section 7 options 1/2: a dedicated budget for the source's own
		// priorities, replenished at its allocated share of Ψ·C̄.
		if cfg.Competitive != nil && cfg.Competitive.Share != 3 {
			ob := &e.ownBudget[j]
			rate := e.ownShareRate(j)
			ob.Burst = math.Max(1, rate*tick)
			ob.Tokens += rate * tick
			if ob.Tokens > ob.Burst {
				ob.Tokens = ob.Burst
			}
		}

		if cfg.BatchMax > 1 {
			e.sendBatches(j, now, b)
		} else {
			for {
				obj, _, ok := s.ShouldSend()
				if !ok {
					// Below threshold (or empty): options 1/2 may still
					// spend the source's dedicated rate share (Section 7).
					// Option 3 spends credits only alongside cache-priority
					// refreshes.
					if cfg.Competitive == nil || cfg.Competitive.Share == 3 {
						break
					}
					if !e.trySendOwn(j, now, b) {
						break
					}
					continue
				}
				if !b.TryTake(e.sendSize(obj)) {
					break
				}
				e.sendRefresh(j, obj, now)
				s.OnRefreshSent(now)
				if cfg.Competitive != nil && cfg.Competitive.Share == 3 {
					// Option 3: piggyback credit Ψ/(1−Ψ) per cache-priority
					// refresh.
					e.ownCredit[j] += cfg.Competitive.Psi / (1 - cfg.Competitive.Psi)
					for e.ownCredit[j] >= 1 && e.trySendOwn(j, now, b) {
						e.ownCredit[j]--
					}
				}
			}
		}
		// A source is "limited" when it still has an over-threshold object
		// but no source-side bandwidth to send it.
		_, _, want := s.ShouldSend()
		s.SetLimited(want && b.Tokens < 1)
		s.ClampThreshold()
		if cfg.Feedback == core.NegativeFeedback && s.Queue.Len() > 0 {
			// Negative-feedback drift: idle sources with pending changes
			// edge their thresholds down to claim more bandwidth.
			s.SetThreshold(s.Threshold() / cfg.Params.Alpha)
			s.ClampThreshold()
		}
	}

	// 2. The cache-side link delivers as capacity allows.
	e.link.Advance(now, math.Max(e.minBurst, cfg.CacheBW.Rate(now)*tick))
	for {
		msg, ok := e.link.Deliver()
		if !ok {
			break
		}
		e.cache.ObserveThreshold(msg.Source, msg.Threshold)
		e.applyDelivery(msg, now)
	}

	// 3. Feedback from surplus capacity (Section 5).
	if now >= cfg.DropFeedbackUntil {
		switch cfg.Feedback {
		case core.PositiveFeedback:
			leftover := 0
			if e.link.QueueLen() == 0 {
				leftover = int(e.link.Tokens() + 1e-9)
			}
			// Smooth the tick discretization: in continuous operation
			// surplus capacity dribbles out one slot at a time, so feedback
			// reaches sources gradually and each ÷ω burst re-occupies the
			// cache before the next source is fed. Batching a whole tick's
			// surplus into simultaneous feedback would synchronize source
			// bursts (a thundering herd the continuous protocol cannot
			// produce), so budget feedback by a running average of the
			// observed surplus: persistent surplus earns a large budget,
			// momentary drain spikes under starvation do not.
			e.surplusEWMA = 0.9*e.surplusEWMA + 0.1*float64(leftover)
			if e.link.QueueLen() == 0 && leftover > 0 {
				k := leftover
				if budget := int(e.surplusEWMA) + 1; k > budget {
					k = budget
				}
				for _, j := range e.pickTargets(k) {
					if !e.link.TryConsume(1) {
						break
					}
					e.sources[j].OnFeedback(now)
					e.res.FeedbackSent++
				}
			}
		case core.NegativeFeedback:
			// Overloaded: ask the most aggressive (lowest-threshold)
			// sources to slow down — with whatever capacity remains, which
			// under flooding is none. That is the instability the paper
			// warns about.
			backlog := e.link.QueueLen()
			if backlog > int(cfg.CacheBW.Rate(now)*tick) {
				k := minInt(cfg.Sources, backlog)
				for _, j := range e.cache.PickFeedbackTargets(k, true) {
					if !e.link.TryConsume(1) {
						break
					}
					e.sources[j].OnFeedback(now)
					e.res.FeedbackSent++
				}
			}
		}
	}
}

// pickTargets selects feedback targets: highest piggybacked thresholds by
// default (the paper's rule), or uniform random for the A3 ablation.
func (e *engine) pickTargets(k int) []int {
	if !e.cfg.RandomFeedbackTargets {
		return e.cache.PickFeedbackTargets(k, false)
	}
	if k > e.cfg.Sources {
		k = e.cfg.Sources
	}
	if k <= 0 {
		return nil
	}
	perm := e.protoRng.Perm(e.cfg.Sources)
	return perm[:k]
}

// ownShareRate returns source j's Section 7 option-1/2 refresh rate, using
// the share allocators from internal/competitive.
func (e *engine) ownShareRate(j int) float64 {
	if e.ownRates == nil {
		cfg := e.cfg
		switch cfg.Competitive.Share {
		case 1:
			e.ownRates = competitive.EqualShares(
				cfg.Competitive.Psi, meanRate(cfg.CacheBW), cfg.Sources)
		case 2:
			counts := make([]int, cfg.Sources)
			for i := range counts {
				counts[i] = cfg.ObjectsPerSource
			}
			e.ownRates = competitive.ProportionalShares(
				cfg.Competitive.Psi, meanRate(cfg.CacheBW), counts)
		default:
			e.ownRates = make([]float64, cfg.Sources)
		}
	}
	return e.ownRates[j]
}

// trySendOwn sends source j's top own-priority object if budget allows.
func (e *engine) trySendOwn(j int, now float64, srcBucket *bandwidth.Bucket) bool {
	cfg := e.cfg
	if cfg.Competitive == nil {
		return false
	}
	obj, pri, ok := e.ownQueues[j].Max()
	if !ok || pri <= 0 {
		return false
	}
	if cfg.Competitive.Share != 3 {
		if !e.ownBudget[j].TryTake(1) {
			return false
		}
	}
	if !srcBucket.TryTake(1) {
		if cfg.Competitive.Share != 3 {
			e.ownBudget[j].Tokens++ // refund
		}
		return false
	}
	e.sendRefresh(j, obj, now)
	return true
}

// groupOf returns the members refreshed together with obj: its whole
// mutual-consistency group, or just obj itself.
func (e *engine) groupOf(obj int) []int {
	if e.cfg.Groups != nil && !e.cfg.GroupsMeasureOnly {
		if g := e.cfg.Groups[obj]; g >= 0 {
			if members := e.groupMembers[g]; len(members) > 1 {
				return members
			}
		}
	}
	return nil
}

// sendSize is the bandwidth one scheduling decision for obj costs: the
// object's message, or its whole group's.
func (e *engine) sendSize(obj int) float64 {
	members := e.groupOf(obj)
	if members == nil {
		return e.msgSize(obj)
	}
	total := 0.0
	for _, i := range members {
		total += e.msgSize(i)
	}
	return total
}

// sendRefresh enqueues a refresh message for object obj from source j —
// atomically including obj's mutual-consistency group, if any.
func (e *engine) sendRefresh(j, obj int, now float64) {
	members := e.groupOf(obj)
	if members == nil {
		o := &e.objs[obj]
		e.link.Enqueue(netsim.Message{
			Kind:      netsim.MsgRefresh,
			Source:    j,
			Object:    obj,
			Value:     o.value,
			Version:   o.version,
			Threshold: e.sources[j].Threshold(),
			Sent:      now,
			Size:      e.msgSize(obj),
		})
		e.markSent(obj, now)
		e.lastSendAt[j] = now
		e.res.RefreshesSent++
		return
	}
	msg := netsim.Message{
		Kind:      netsim.MsgRefresh,
		Source:    j,
		Object:    -1,
		Threshold: e.sources[j].Threshold(),
		Sent:      now,
		Size:      e.sendSize(obj),
		Entries:   make([]netsim.BatchEntry, 0, len(members)),
	}
	for _, i := range members {
		o := &e.objs[i]
		msg.Entries = append(msg.Entries, netsim.BatchEntry{
			Object: i, Value: o.value, Version: o.version,
		})
		e.markSent(i, now)
		e.res.RefreshesSent++
	}
	e.link.Enqueue(msg)
	e.lastSendAt[j] = now
}

// sendBatches implements the Section 10.1 packaging extension: the source
// collects up to BatchMax over-threshold objects into one message costing
// BatchOverhead plus the packaged sizes. Partial batches wait up to
// BatchWait for more refreshes to accumulate — the tradeoff the paper
// flags: bandwidth amortization versus artificially delayed refreshes.
func (e *engine) sendBatches(j int, now float64, b *bandwidth.Bucket) {
	cfg := e.cfg
	s := e.sources[j]
	for {
		e.batchBuf = e.batchBuf[:0]
		size := cfg.BatchOverhead
		for len(e.batchBuf) < cfg.BatchMax {
			obj, pri, ok := s.ShouldSend()
			if !ok {
				break
			}
			s.Queue.Remove(obj)
			e.batchBuf = append(e.batchBuf, obj)
			size += e.msgSize(obj)
			_ = pri
		}
		if len(e.batchBuf) == 0 {
			return
		}
		partial := len(e.batchBuf) < cfg.BatchMax
		holdable := now-e.lastSendAt[j] < cfg.BatchWait
		if (partial && holdable) || !b.TryTake(size) {
			// Put everything back (priorities are unchanged until sent).
			for _, obj := range e.batchBuf {
				s.Queue.Upsert(obj, e.schedPriority(obj, now))
			}
			return
		}
		msg := netsim.Message{
			Kind:      netsim.MsgRefresh,
			Source:    j,
			Threshold: s.Threshold(),
			Sent:      now,
			Size:      size,
			Entries:   make([]netsim.BatchEntry, 0, len(e.batchBuf)),
		}
		msg.Object = -1
		for _, obj := range e.batchBuf {
			o := &e.objs[obj]
			msg.Entries = append(msg.Entries, netsim.BatchEntry{
				Object: obj, Value: o.value, Version: o.version,
			})
			e.markSent(obj, now)
			s.OnRefreshSent(now)
			e.res.RefreshesSent++
		}
		e.link.Enqueue(msg)
		e.lastSendAt[j] = now
		if partial {
			return
		}
	}
}

// idealTick implements the Section 3.3 idealized scheduler: each unit of
// cache bandwidth refreshes the globally highest-priority object whose
// source has bandwidth, instantly and without messages.
func (e *engine) idealTick(prev, now float64) {
	cfg := e.cfg
	tick := now - prev
	srcBW := cfg.SourceBW
	if srcBW == nil {
		srcBW = unlimited
	}
	e.link.Advance(now, math.Max(e.minBurst, cfg.CacheBW.Rate(now)*tick))
	for j := range e.srcBuckets {
		b := &e.srcBuckets[j]
		b.Burst = math.Max(e.minBurst, srcBW.Rate(now)*tick)
		b.Accrue(srcBW, prev, now)
	}
	e.stash = e.stash[:0]
	for {
		j, top, ok := e.srcQueue.Max()
		if !ok || top <= 0 {
			break
		}
		obj, _, _ := e.sources[j].Queue.Max()
		size := e.sendSize(obj)
		if e.link.Tokens() < size {
			break
		}
		if !e.srcBuckets[j].TryTake(size) {
			// Source-side bandwidth exhausted: set it aside and try the
			// next-best source (Section 3.3: "the object with the second
			// highest priority overall should be refreshed instead").
			e.srcQueue.Remove(j)
			e.stash = append(e.stash, j)
			continue
		}
		e.link.TryConsume(size)
		members := e.groupOf(obj)
		if members == nil {
			e.sources[j].Queue.Remove(obj)
			e.idealRefresh(obj, now)
		} else {
			for _, i := range members {
				e.sources[j].Queue.Remove(i)
				e.idealRefresh(i, now)
			}
		}
		e.refreshSrcKey(j)
	}
	for _, j := range e.stash {
		e.refreshSrcKey(j)
	}
}

// idealRefresh synchronizes an object instantly (no network).
func (e *engine) idealRefresh(i int, t float64) {
	o := &e.objs[i]
	e.meterTo(i, t)
	if o.maxRate > 0 {
		span := t - o.lastDeliv
		base := e.cfg.RefreshLatency
		e.boundAcc += o.maxRate * (span*span/2 + base*span)
		o.lastDeliv = t
	}
	o.cacheVal = o.value
	o.cacheVer = o.version
	o.trueD = 0
	o.trueSrcD = 0
	o.sentVal = o.value
	o.sentVer = o.version
	o.sent.Reset(t, 0)
	if e.cfg.Groups != nil {
		o.vTime = t
		o.vNext = math.Inf(1)
		e.touchGroup(i, t)
	}
	if e.cfg.Competitive != nil {
		e.ownQueues[o.src].Remove(i)
	}
	e.res.RefreshesSent++
	e.res.RefreshesDelivered++
}

// groupConsistency tracks one mutual-consistency group's mixed-version
// exposure: the time during which the cache's view of the group never
// existed at the source. The cached group view is consistent iff the
// members' [vTime, vNext) validity windows intersect.
type groupConsistency struct {
	lastT    float64
	mixed    bool
	mixedAcc float64
}

// touchGroup re-evaluates group consistency after a member's validity
// window changed at time t.
func (e *engine) touchGroup(obj int, t float64) {
	if e.cfg.Groups == nil {
		return
	}
	g := e.cfg.Groups[obj]
	if g < 0 {
		return
	}
	gs := e.groupState[g]
	if gs.mixed {
		gs.mixedAcc += t - gs.lastT
	}
	gs.lastT = t
	maxStart, minEnd := math.Inf(-1), math.Inf(1)
	for _, i := range e.groupMembers[g] {
		o := &e.objs[i]
		if o.vTime > maxStart {
			maxStart = o.vTime
		}
		if o.vNext < minEnd {
			minEnd = o.vNext
		}
	}
	gs.mixed = maxStart > minEnd
}

// finish closes all measurement intervals and assembles the result.
func (e *engine) finish(end float64) {
	cfg := e.cfg
	for i := range e.objs {
		e.meterTo(i, end)
		o := &e.objs[i]
		if o.maxRate > 0 {
			span := end - o.lastDeliv
			e.boundAcc += o.maxRate * (span*span/2 + cfg.RefreshLatency*span)
		}
	}
	n := cfg.N()
	e.res.AvgDivergence = e.meter.Average(end, n)
	if cfg.Competitive != nil {
		e.res.SourceAvgDivergence = e.srcMeter.Average(end, n)
	}
	if cfg.MaxRates != nil {
		// Bound accumulation covers [0, end]; report the full-run average
		// (bounds are deterministic given refresh times, so warmup matters
		// less; experiments use matched windows anyway).
		e.res.AvgBound = e.boundAcc / end / float64(n)
	}
	sum := 0.0
	for _, s := range e.sources {
		sum += s.Threshold()
	}
	e.res.MeanThreshold = sum / float64(cfg.Sources)
	e.res.PeakQueue = e.link.PeakQueue()
	e.res.DroppedMessages = e.link.Dropped()
	if e.groupState != nil {
		total := 0.0
		for _, gs := range e.groupState {
			if gs.mixed {
				gs.mixedAcc += end - gs.lastT
				gs.lastT = end
				gs.mixed = false
			}
			total += gs.mixedAcc
		}
		e.res.GroupMixedExposure = total / end / float64(len(e.groupState))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
