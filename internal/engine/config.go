// Package engine is the discrete-event simulator used for the paper's
// experimental evaluation (Section 6): one cache, m sources with n objects
// each, fluctuating cache-side and source-side bandwidth, unit-size
// messages, and exact measurement of time-averaged weighted divergence.
//
// The simulator is a hybrid: object updates are true discrete events drawn
// from per-object update processes, while protocol actions (source send
// decisions, link deliveries, feedback) run on a fixed tick (1 s by
// default, matching the paper's per-second bandwidth accounting).
package engine

import (
	"fmt"
	"math"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// Policy selects the synchronization scheduler being simulated.
type Policy int

const (
	// Cooperative is the paper's practical algorithm (Section 5): local
	// thresholds, positive feedback, piggybacked threshold tracking, all
	// messages subject to bandwidth constraints.
	Cooperative Policy = iota

	// IdealCooperative is the idealized scenario of Section 3.3: all
	// parties share state for free, and each unit of cache-side bandwidth
	// refreshes the globally highest-priority object (subject to
	// source-side bandwidth), with no message overhead. Its divergence is
	// the "theoretically achievable" baseline of Figures 4–6.
	IdealCooperative
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Cooperative:
		return "cooperative"
	case IdealCooperative:
		return "ideal-cooperative"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Competitive configures the Section 7 extension: a Ψ fraction of cache-side
// bandwidth is dedicated to the sources' own (conflicting) refresh
// priorities.
type Competitive struct {
	// Psi is the fraction of cache-side bandwidth dedicated to source
	// priorities, in [0, 1).
	Psi float64
	// Share selects how the Ψ fraction is divided among sources: 1 = equal
	// shares, 2 = proportional to object count, 3 = piggyback credits
	// proportional to the source's contribution to cache objectives.
	Share int
	// SourceWeights gives each object's weight under the *sources'*
	// objective (len N). The cache's objective uses Config.Weights.
	SourceWeights []weight.Fn
}

// Config describes one simulation run.
type Config struct {
	Seed             int64
	Sources          int // m
	ObjectsPerSource int // n

	Metric     metric.Kind
	Delta      metric.DeltaFunc // for ValueDeviation; nil = |V1−V2|
	PriorityFn priority.Fn      // default AreaGeneral

	Duration float64 // simulated seconds, measurement ends here
	Warmup   float64 // measurement starts here
	Tick     float64 // protocol tick; default 1 s

	CacheBW  bandwidth.Profile // C(t); required
	SourceBW bandwidth.Profile // B_j(t), same for all sources; nil = unlimited

	Policy   Policy
	Params   core.Params         // zero value → core.DefaultParams
	Feedback core.FeedbackPolicy // PositiveFeedback unless overridden

	// Per-object workload, each of length Sources*ObjectsPerSource (object
	// i belongs to source i/ObjectsPerSource). Nil entries and nil slices
	// fall back to defaults: Poisson(Rates[i]) updates, RandomWalk values,
	// weight 1.
	Rates     []float64                // true Poisson rates λ_i
	Processes []workload.UpdateProcess // overrides Poisson(Rates) when set
	Values    []workload.ValueModel
	Weights   []weight.Fn
	Traces    []*workload.Trace // trace-driven objects (overrides process+values)

	// MaxRates R_i enable divergence-bound accounting (Section 9) and the
	// BoundArea priority.
	MaxRates []float64
	// RefreshLatency is L_i (uniform across objects) for bound accounting.
	RefreshLatency float64

	// Competitive enables the Section 7 extension.
	Competitive *Competitive

	// MaxQueue bounds the cache-side link queue (0 = unbounded); used by
	// failure-injection tests.
	MaxQueue int

	// DropFeedbackUntil suppresses all feedback delivery before this time —
	// failure injection for robustness tests.
	DropFeedbackUntil float64

	// RandomFeedbackTargets replaces the paper's highest-threshold feedback
	// targeting with uniform random target selection (ablation A3,
	// isolating the value of piggybacked thresholds).
	RandomFeedbackTargets bool

	// Section 10.1 extensions -------------------------------------------

	// Sizes gives each object's full-refresh message size in bandwidth
	// units (nil = all 1). Non-uniform sizes model objects of different
	// byte lengths.
	Sizes []float64

	// CostAware divides each object's refresh weight by its current
	// message size, the paper's suggested extension for non-uniform costs
	// ("a factor inversely proportional to cost").
	CostAware bool

	// DeltaSize enables delta encoding: a refresh costs
	// min(full size, DeltaSize × updates-behind) — cheap for an object one
	// update behind, converging to the full size for long-stale copies.
	// 0 disables.
	DeltaSize float64

	// BatchMax packages up to this many refreshes into one message
	// (0 or 1 = no batching). A batch costs BatchOverhead plus the sizes
	// of the packaged refreshes.
	BatchMax int

	// BatchOverhead is the fixed per-message header cost when batching.
	BatchOverhead float64

	// BatchWait is how long a source may hold a partial batch hoping for
	// more over-threshold objects before sending it anyway (seconds;
	// default one tick).
	BatchWait float64

	// Groups assigns objects to mutual-consistency groups (Section 10.1's
	// [UNR+01] extension): all objects in a group are refreshed atomically
	// in one message, so the cache never holds a mixed-version view of the
	// group. Groups[i] is object i's group id; objects sharing an id must
	// belong to the same source. -1 (or a unique id) means ungrouped.
	// nil disables grouping.
	Groups []int

	// GroupsMeasureOnly keeps refreshes independent but still measures
	// each group's mixed-version exposure — the baseline E13 compares
	// atomic grouping against.
	GroupsMeasureOnly bool

	// RateEstimation selects how sources obtain the λ estimates used by
	// the Poisson priority functions: the oracle (true rates, default),
	// the Section 8.1 since-last-refresh counter, or a sliding-window
	// estimator (the Section 10.1 "longer history period" variant).
	RateEstimation RateEstimation

	// RateWindow is the sliding-window length for RateWindowed (seconds).
	RateWindow float64
}

// RateEstimation selects the update-rate estimator (Sections 8.1 and 10.1).
type RateEstimation int

const (
	// RateOracle uses the configured true rates.
	RateOracle RateEstimation = iota
	// RateSinceRefresh estimates λ as updates since the last refresh
	// divided by the time since the last refresh (Section 8.1).
	RateSinceRefresh
	// RateWindowed estimates λ over a longer sliding window of recent
	// updates (Section 10.1's future-work suggestion), trading
	// adaptiveness for stability.
	RateWindowed
)

// String names the estimator.
func (r RateEstimation) String() string {
	switch r {
	case RateOracle:
		return "oracle"
	case RateSinceRefresh:
		return "since-refresh"
	case RateWindowed:
		return "windowed"
	default:
		return fmt.Sprintf("RateEstimation(%d)", int(r))
	}
}

// N returns the total object count.
func (c *Config) N() int { return c.Sources * c.ObjectsPerSource }

// SourceOf maps a global object index to its source.
func (c *Config) SourceOf(obj int) int { return obj / c.ObjectsPerSource }

// Validate reports configuration errors and fills defaults in place.
func (c *Config) Validate() error {
	if c.Sources <= 0 || c.ObjectsPerSource <= 0 {
		return fmt.Errorf("engine: need ≥1 source and ≥1 object per source, got m=%d n=%d",
			c.Sources, c.ObjectsPerSource)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("engine: Duration must be > 0, got %v", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("engine: Warmup %v outside [0, Duration)", c.Warmup)
	}
	if c.Tick == 0 {
		c.Tick = 1
	}
	if c.Tick < 0 {
		return fmt.Errorf("engine: Tick must be > 0, got %v", c.Tick)
	}
	if c.CacheBW == nil {
		return fmt.Errorf("engine: CacheBW is required")
	}
	n := c.N()
	check := func(name string, l int) error {
		if l != 0 && l != n {
			return fmt.Errorf("engine: %s has length %d, want %d", name, l, n)
		}
		return nil
	}
	if err := check("Rates", len(c.Rates)); err != nil {
		return err
	}
	if err := check("Processes", len(c.Processes)); err != nil {
		return err
	}
	if err := check("Values", len(c.Values)); err != nil {
		return err
	}
	if err := check("Weights", len(c.Weights)); err != nil {
		return err
	}
	if err := check("Traces", len(c.Traces)); err != nil {
		return err
	}
	if err := check("MaxRates", len(c.MaxRates)); err != nil {
		return err
	}
	if err := check("Sizes", len(c.Sizes)); err != nil {
		return err
	}
	for i, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("engine: Sizes[%d] = %v, must be > 0", i, s)
		}
	}
	if c.DeltaSize < 0 {
		return fmt.Errorf("engine: DeltaSize must be ≥ 0, got %v", c.DeltaSize)
	}
	if c.BatchMax < 0 || c.BatchOverhead < 0 || c.BatchWait < 0 {
		return fmt.Errorf("engine: batch parameters must be ≥ 0")
	}
	if c.BatchMax > 1 && c.BatchWait == 0 {
		c.BatchWait = c.Tick
	}
	if c.RateEstimation == RateWindowed && c.RateWindow <= 0 {
		c.RateWindow = 100
	}
	if err := check("Groups", len(c.Groups)); err != nil {
		return err
	}
	if c.Groups != nil {
		owner := map[int]int{}
		for i, g := range c.Groups {
			if g < 0 {
				continue
			}
			src := c.SourceOf(i)
			if prev, ok := owner[g]; ok && prev != src {
				return fmt.Errorf("engine: group %d spans sources %d and %d", g, prev, src)
			}
			owner[g] = src
		}
		if c.BatchMax > 1 {
			return fmt.Errorf("engine: Groups and BatchMax cannot be combined")
		}
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams(c.Sources, 0)
	}
	if c.Params.ExpectedFeedbackPeriod == 0 {
		// The paper's estimate: total number of sources divided by the
		// average cache-side bandwidth (Section 5). It under-estimates the
		// realized feedback period whenever refreshes consume most of the
		// bandwidth, which makes β fire early — the conservative bias the
		// paper wants ("in the absence of feedback, sources can assume the
		// refresh rate is too fast").
		if mean := meanRate(c.CacheBW); mean > 0 {
			c.Params.ExpectedFeedbackPeriod = float64(c.Sources) / mean
		}
	}
	// Feedback cannot arrive more often than once per tick, so an expected
	// feedback period below the tick would make β fire permanently; floor
	// it at two ticks.
	if c.Params.ExpectedFeedbackPeriod < 2*c.Tick {
		c.Params.ExpectedFeedbackPeriod = 2 * c.Tick
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Competitive != nil {
		if c.Competitive.Psi < 0 || c.Competitive.Psi >= 1 {
			return fmt.Errorf("engine: Psi %v outside [0,1)", c.Competitive.Psi)
		}
		if c.Competitive.Share < 1 || c.Competitive.Share > 3 {
			return fmt.Errorf("engine: Share option %d outside 1..3", c.Competitive.Share)
		}
		if err := check("SourceWeights", len(c.Competitive.SourceWeights)); err != nil {
			return err
		}
	}
	return nil
}

// meanRate estimates a profile's long-run mean capacity.
func meanRate(p bandwidth.Profile) float64 {
	switch b := p.(type) {
	case bandwidth.Const:
		return float64(b)
	case bandwidth.Sine:
		return b.Mean
	default:
		// Average over a long horizon.
		return p.Integral(0, 10000) / 10000
	}
}

// Result summarizes one run.
type Result struct {
	// AvgDivergence is the time-averaged weighted divergence per object
	// over the measurement window — the paper's objective.
	AvgDivergence float64

	// SourceAvgDivergence is AvgDivergence under the sources' own weights
	// (competitive mode only).
	SourceAvgDivergence float64

	// AvgBound is the time-averaged divergence bound per object (Section
	// 9); populated when MaxRates are configured.
	AvgBound float64

	RefreshesSent      int // refresh messages enqueued by sources
	RefreshesDelivered int // refresh messages applied at the cache
	FeedbackSent       int // feedback (or raise) messages sent by the cache
	PeakQueue          int // peak cache-side link queue length
	DroppedMessages    int // messages dropped by a bounded queue

	// MeanThreshold is the mean local threshold across sources at the end
	// of the run.
	MeanThreshold float64

	// GroupMixedExposure is the average fraction of time a
	// mutual-consistency group's cached view corresponded to no single
	// source-side instant (Groups mode only).
	GroupMixedExposure float64

	// Updates is the total number of source updates generated.
	Updates int
}

func (r Result) String() string {
	return fmt.Sprintf("avgDiv=%.5g refreshes=%d/%d feedback=%d peakQ=%d",
		r.AvgDivergence, r.RefreshesDelivered, r.RefreshesSent, r.FeedbackSent, r.PeakQueue)
}

// unlimited is an effectively infinite bandwidth used when SourceBW is nil.
var unlimited = bandwidth.Const(math.MaxFloat64 / 1e6)
