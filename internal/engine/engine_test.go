package engine

import (
	"math"
	"testing"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

// baseConfig returns a small, fast configuration that both policies can run.
func baseConfig() Config {
	return Config{
		Seed:             1,
		Sources:          4,
		ObjectsPerSource: 5,
		Metric:           metric.ValueDeviation,
		Duration:         200,
		Warmup:           50,
		CacheBW:          bandwidth.Const(5),
		SourceBW:         bandwidth.Const(5),
		Rates:            constRates(20, 0.3),
	}
}

func constRates(n int, v float64) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = v
	}
	return r
}

func TestValidateErrors(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Sources = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = 300 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Tick = -2 },
		func(c *Config) { c.CacheBW = nil },
		func(c *Config) { c.Rates = []float64{1} },
		func(c *Config) { c.Weights = []weight.Fn{weight.Const(1)} },
		func(c *Config) { c.Competitive = &Competitive{Psi: 1.5, Share: 1} },
		func(c *Config) { c.Competitive = &Competitive{Psi: 0.5, Share: 9} },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAbundantBandwidthNearZeroDivergence(t *testing.T) {
	for _, pol := range []Policy{Cooperative, IdealCooperative} {
		cfg := baseConfig()
		cfg.Policy = pol
		cfg.CacheBW = bandwidth.Const(1000)
		cfg.SourceBW = bandwidth.Const(1000)
		res := MustRun(cfg)
		// With vastly more bandwidth than updates (≈6 updates/s total) the
		// cache should track closely. Divergence accrues only within the
		// 1-second tick granularity.
		if res.AvgDivergence > 0.45 {
			t.Errorf("%v: AvgDivergence = %v, want small", pol, res.AvgDivergence)
		}
		if res.RefreshesDelivered == 0 {
			t.Errorf("%v: no refreshes delivered", pol)
		}
	}
}

func TestZeroBandwidthNoRefreshes(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheBW = bandwidth.Const(0)
	res := MustRun(cfg)
	if res.RefreshesDelivered != 0 {
		t.Errorf("delivered %d refreshes with zero bandwidth", res.RefreshesDelivered)
	}
	if res.AvgDivergence <= 0 {
		t.Errorf("AvgDivergence = %v, want > 0 (random walk drifts)", res.AvgDivergence)
	}
}

func TestIdealBeatsCooperative(t *testing.T) {
	// The idealized scenario is a lower bound on achievable divergence
	// (Figure 4's denominator). Averaged over seeds it must not lose.
	for _, m := range metric.Kinds() {
		var coop, ideal float64
		for seed := int64(0); seed < 3; seed++ {
			cfg := baseConfig()
			cfg.Seed = seed
			cfg.Metric = m
			cfg.CacheBW = bandwidth.Const(3)
			cfg.Policy = Cooperative
			coop += MustRun(cfg).AvgDivergence
			cfg.Policy = IdealCooperative
			ideal += MustRun(cfg).AvgDivergence
		}
		if ideal > coop*1.10 {
			t.Errorf("%v: ideal %v worse than cooperative %v", m, ideal/3, coop/3)
		}
	}
}

func TestCooperativeSendsFeedback(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheBW = bandwidth.Const(50) // plenty of surplus
	res := MustRun(cfg)
	if res.FeedbackSent == 0 {
		t.Error("no feedback sent despite surplus bandwidth")
	}
}

func TestThresholdsAdaptToBandwidth(t *testing.T) {
	starved := baseConfig()
	starved.CacheBW = bandwidth.Const(1)
	rich := baseConfig()
	rich.CacheBW = bandwidth.Const(100)
	rs, rr := MustRun(starved), MustRun(rich)
	if rs.MeanThreshold <= rr.MeanThreshold {
		t.Errorf("starved threshold %v should exceed rich threshold %v",
			rs.MeanThreshold, rr.MeanThreshold)
	}
}

func TestMoreBandwidthLowersDivergence(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, bw := range []float64{1, 4, 16, 64} {
		total := 0.0
		for seed := int64(0); seed < 3; seed++ {
			cfg := baseConfig()
			cfg.Seed = seed
			cfg.CacheBW = bandwidth.Const(bw)
			total += MustRun(cfg).AvgDivergence
		}
		// Allow small non-monotonicity noise.
		if total > prev*1.15 {
			t.Errorf("divergence rose from %v to %v when bandwidth increased to %v",
				prev/3, total/3, bw)
		}
		prev = total
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := baseConfig()
	a := MustRun(cfg)
	b := MustRun(cfg)
	if a != b {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c := MustRun(cfg)
	if a == c {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestAreaPriorityBeatsSimpleUnderSkew(t *testing.T) {
	// Mini version of Section 4.3's skew experiment: half the objects
	// weighted 10× and half updated 100× more often. Per Section 8.1,
	// sources use the model-based Section 3.4 priority for the staleness
	// metric.
	run := func(fn priority.Fn, seed int64) float64 {
		n := 60
		weights := make([]weight.Fn, n)
		procs := make([]workload.UpdateProcess, n)
		rates := make([]float64, n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				weights[i] = weight.Const(10)
			} else {
				weights[i] = weight.Const(1)
			}
			if i < n/2 {
				rates[i] = 0.01
			} else {
				rates[i] = 1.0
			}
			procs[i] = workload.Poisson{Lambda: rates[i]}
		}
		cfg := Config{
			Seed:             seed,
			Sources:          1,
			ObjectsPerSource: n,
			Metric:           metric.Staleness,
			PriorityFn:       fn,
			Duration:         400,
			Warmup:           100,
			CacheBW:          bandwidth.Const(10),
			Policy:           IdealCooperative,
			Rates:            rates,
			Processes:        procs,
			Weights:          weights,
		}
		return MustRun(cfg).AvgDivergence
	}
	var area, simple float64
	for seed := int64(0); seed < 3; seed++ {
		area += run(priority.PoissonStaleness, seed)
		simple += run(priority.SimpleDivergence, seed)
	}
	if simple < area {
		t.Errorf("simple priority (%v) beat area priority (%v) under skew",
			simple/3, area/3)
	}
	if simple < area*1.2 {
		t.Logf("warning: skew advantage small: simple %v vs area %v", simple/3, area/3)
	}
}

func TestStalenessMetricBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.Metric = metric.Staleness
	res := MustRun(cfg)
	if res.AvgDivergence < 0 || res.AvgDivergence > 1 {
		t.Errorf("average staleness = %v, want within [0,1]", res.AvgDivergence)
	}
}

func TestTraceDrivenRun(t *testing.T) {
	// Two trace objects with known updates; generous bandwidth should sync
	// them almost immediately.
	traces := []*workload.Trace{
		{Times: []float64{10, 20, 30}, Values: []float64{1, 2, 3}},
		{Times: []float64{15, 25}, Values: []float64{5, 6}},
	}
	cfg := Config{
		Seed:             3,
		Sources:          1,
		ObjectsPerSource: 2,
		Metric:           metric.ValueDeviation,
		Duration:         50,
		CacheBW:          bandwidth.Const(100),
		Policy:           IdealCooperative,
		Traces:           traces,
	}
	res := MustRun(cfg)
	if res.Updates != 5 {
		t.Errorf("updates = %d, want 5", res.Updates)
	}
	if res.RefreshesDelivered != 5 {
		t.Errorf("refreshes = %d, want 5 (each update propagated)", res.RefreshesDelivered)
	}
	if res.AvgDivergence > 0.2 {
		t.Errorf("AvgDivergence = %v, want ≈0", res.AvgDivergence)
	}
}

func TestPositiveBeatsNegativeFeedbackUnderFluctuation(t *testing.T) {
	// A1's core claim: with constrained, fluctuating bandwidth the
	// negative-feedback strawman floods the network and loses.
	run := func(policy core.FeedbackPolicy, seed int64) Result {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.Sources = 10
		cfg.ObjectsPerSource = 10
		cfg.Rates = constRates(100, 0.5)
		cfg.CacheBW = bandwidth.Fluctuating(10, 0.25, 0)
		cfg.SourceBW = bandwidth.Const(10)
		cfg.Duration = 500
		cfg.Warmup = 100
		cfg.Feedback = policy
		return MustRun(cfg)
	}
	var pos, neg float64
	var peakPos, peakNeg int
	for seed := int64(0); seed < 3; seed++ {
		rp, rn := run(core.PositiveFeedback, seed), run(core.NegativeFeedback, seed)
		pos += rp.AvgDivergence
		neg += rn.AvgDivergence
		peakPos += rp.PeakQueue
		peakNeg += rn.PeakQueue
	}
	if neg < pos {
		t.Errorf("negative feedback divergence %v beat positive %v", neg/3, pos/3)
	}
	if peakNeg <= peakPos {
		t.Errorf("negative feedback peak queue %d not worse than positive %d",
			peakNeg, peakPos)
	}
}

func TestBoundedQueueDropsCounted(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheBW = bandwidth.Const(0.5)
	cfg.SourceBW = bandwidth.Const(10)
	cfg.MaxQueue = 2
	cfg.Params = core.Params{Alpha: 1.01, Omega: 10, InitialThreshold: 1e-9,
		ExpectedFeedbackPeriod: 1e9} // keep thresholds low → oversend
	res := MustRun(cfg)
	if res.DroppedMessages == 0 {
		t.Error("expected drops with tiny bounded queue and low thresholds")
	}
}

func TestDropFeedbackRecovery(t *testing.T) {
	// Feedback suppressed for the first half: the system must still
	// converge afterwards and deliver refreshes.
	cfg := baseConfig()
	cfg.Duration = 400
	cfg.Warmup = 250
	cfg.DropFeedbackUntil = 200
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes after feedback blackout")
	}
	if res.FeedbackSent == 0 {
		t.Error("no feedback ever sent despite blackout ending")
	}
}

func TestBoundAccountingDecreasesWithBandwidth(t *testing.T) {
	run := func(bw float64) float64 {
		cfg := baseConfig()
		cfg.PriorityFn = priority.BoundArea
		cfg.MaxRates = constRates(20, 1)
		cfg.RefreshLatency = 1
		cfg.CacheBW = bandwidth.Const(bw)
		return MustRun(cfg).AvgBound
	}
	low, high := run(1), run(50)
	if high >= low {
		t.Errorf("AvgBound with high bandwidth (%v) not below low bandwidth (%v)",
			high, low)
	}
	if low <= 0 {
		t.Errorf("AvgBound = %v, want > 0", low)
	}
}

func TestCompetitivePsiHelpsSourceObjective(t *testing.T) {
	// With conflicting objectives, Ψ > 0 should lower divergence under the
	// sources' weights relative to Ψ = 0.
	run := func(psi float64, share int, seed int64) Result {
		n := 40
		cacheW := make([]weight.Fn, n)
		srcW := make([]weight.Fn, n)
		for i := 0; i < n; i++ {
			// The cache values even objects; sources value odd ones.
			if i%2 == 0 {
				cacheW[i] = weight.Const(10)
				srcW[i] = weight.Const(1)
			} else {
				cacheW[i] = weight.Const(1)
				srcW[i] = weight.Const(10)
			}
		}
		cfg := Config{
			Seed:             seed,
			Sources:          4,
			ObjectsPerSource: 10,
			Metric:           metric.ValueDeviation,
			Duration:         400,
			Warmup:           100,
			CacheBW:          bandwidth.Const(8),
			SourceBW:         bandwidth.Const(8),
			Rates:            constRates(n, 0.5),
			Weights:          cacheW,
			Competitive:      &Competitive{Psi: psi, Share: share, SourceWeights: srcW},
		}
		return MustRun(cfg)
	}
	for _, share := range []int{1, 2, 3} {
		var with, without float64
		for seed := int64(0); seed < 3; seed++ {
			with += run(0.4, share, seed).SourceAvgDivergence
			without += run(0, share, seed).SourceAvgDivergence
		}
		if with >= without {
			t.Errorf("share %d: Ψ=0.4 source divergence %v not below Ψ=0 %v",
				share, with/3, without/3)
		}
	}
}

func TestFractionalTickDuration(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 100.5 // not a multiple of tick
	res := MustRun(cfg)
	if res.Updates == 0 {
		t.Error("no updates in fractional-duration run")
	}
}

func TestCoarseTick(t *testing.T) {
	cfg := baseConfig()
	cfg.Tick = 60
	cfg.Duration = 6000
	cfg.Warmup = 600
	cfg.Rates = constRates(20, 0.01)
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes with 60s tick")
	}
}

func TestPolicyString(t *testing.T) {
	if Cooperative.String() != "cooperative" ||
		IdealCooperative.String() != "ideal-cooperative" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestResultString(t *testing.T) {
	r := Result{AvgDivergence: 1.5, RefreshesDelivered: 3, RefreshesSent: 4}
	if r.String() == "" {
		t.Error("empty Result string")
	}
}

func TestMustRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on invalid config")
		}
	}()
	MustRun(Config{})
}

func TestPoissonLagPriorityRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Metric = metric.Lag
	cfg.PriorityFn = priority.PoissonLag
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes under PoissonLag priority")
	}
}

func TestPoissonStalenessPriorityRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Metric = metric.Staleness
	cfg.PriorityFn = priority.PoissonStaleness
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes under PoissonStaleness priority")
	}
}
