package engine

import (
	"math"
	"testing"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/workload"
)

func groupsConfig() Config {
	cfg := baseConfig()
	groups := make([]int, cfg.N())
	for i := range groups {
		groups[i] = i / 5 // one group per source (ObjectsPerSource = 5)
	}
	cfg.Groups = groups
	return cfg
}

func TestGroupsValidation(t *testing.T) {
	cfg := groupsConfig()
	// Groups are i/5, so group 1 spans objects 5..9 (all source 1, with
	// n=5 per source). Pulling object 0 (source 0) into it must fail.
	cfg.Groups[0] = 1
	if _, err := Run(cfg); err == nil {
		t.Error("cross-source group accepted")
	}
	cfg = groupsConfig()
	cfg.Groups = []int{1}
	if _, err := Run(cfg); err == nil {
		t.Error("wrong-length Groups accepted")
	}
	cfg = groupsConfig()
	cfg.BatchMax = 4
	if _, err := Run(cfg); err == nil {
		t.Error("Groups combined with BatchMax accepted")
	}
}

func TestAtomicGroupsZeroExposure(t *testing.T) {
	cfg := groupsConfig()
	res := MustRun(cfg)
	if res.GroupMixedExposure != 0 {
		t.Errorf("atomic groups mixed exposure = %v, want 0", res.GroupMixedExposure)
	}
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes delivered in grouped mode")
	}
	// Group refreshes come in multiples of the group size.
	if res.RefreshesDelivered%5 != 0 {
		t.Errorf("refreshes %d not a multiple of group size 5", res.RefreshesDelivered)
	}
}

func TestIndependentRefreshesHaveExposure(t *testing.T) {
	cfg := groupsConfig()
	cfg.GroupsMeasureOnly = true
	res := MustRun(cfg)
	if res.GroupMixedExposure <= 0 {
		t.Errorf("independent refreshes mixed exposure = %v, want > 0",
			res.GroupMixedExposure)
	}
	if res.GroupMixedExposure > 1 {
		t.Errorf("exposure %v exceeds 1 (it is a time fraction)",
			res.GroupMixedExposure)
	}
}

func TestGroupedCostsMoreDivergence(t *testing.T) {
	// Atomicity is not free: coarser scheduling raises divergence.
	var grouped, free float64
	for s := int64(0); s < 3; s++ {
		cfg := groupsConfig()
		cfg.Seed = s
		grouped += MustRun(cfg).AvgDivergence
		cfg.GroupsMeasureOnly = true
		free += MustRun(cfg).AvgDivergence
	}
	if grouped < free {
		t.Errorf("grouped divergence (%v) below independent (%v)?", grouped/3, free/3)
	}
}

func TestGroupsIdealPolicy(t *testing.T) {
	cfg := groupsConfig()
	cfg.Policy = IdealCooperative
	res := MustRun(cfg)
	if res.GroupMixedExposure != 0 {
		t.Errorf("ideal grouped exposure = %v, want 0", res.GroupMixedExposure)
	}
	if res.RefreshesDelivered%5 != 0 {
		t.Errorf("ideal refreshes %d not a multiple of group size", res.RefreshesDelivered)
	}
}

func TestUngroupedObjectsMixWithGroups(t *testing.T) {
	// Objects marked -1 stay independent even in grouped mode.
	cfg := baseConfig()
	groups := make([]int, cfg.N())
	for i := range groups {
		if i < 5 {
			groups[i] = 0 // one real group in source 0
		} else {
			groups[i] = -1
		}
	}
	cfg.Groups = groups
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Error("no refreshes with mixed grouped/ungrouped population")
	}
}

func TestGroupExposureAnalytic(t *testing.T) {
	// Hand-computed inconsistency: B updates at t=2 but never clears the
	// (static, NoFeedback) threshold 50, so its cached copy stays at
	// version 0 with source-validity window [0,2). A jumps to 100 at t=3,
	// clears the threshold at the t=3 tick, and is delivered once a whole
	// token accrues at t=4 with validity window [3,∞). From t=4 on, the
	// cached pair (A@3, B@0) existed at no single source instant: windows
	// [3,∞) and [0,2) are disjoint. Expected exposure: (10−4)/10 = 0.6.
	traces := []*workload.Trace{
		{Times: []float64{3}, Values: []float64{100}}, // A: big jump
		{Times: []float64{2}, Values: []float64{1}},   // B: small jump, below threshold
	}
	cfg := Config{
		Seed:              1,
		Sources:           1,
		ObjectsPerSource:  2,
		Metric:            metric.ValueDeviation,
		Duration:          10,
		CacheBW:           bandwidth.Const(0.25),
		Traces:            traces,
		Groups:            []int{0, 0},
		GroupsMeasureOnly: true,
		Feedback:          core.NoFeedback,
	}
	cfg.Params = core.Params{Alpha: 1.1, Omega: 10, InitialThreshold: 50}
	res := MustRun(cfg)
	if math.Abs(res.GroupMixedExposure-0.6) > 1e-9 {
		t.Errorf("exposure = %v, want 0.6", res.GroupMixedExposure)
	}
	if res.RefreshesDelivered != 1 {
		t.Errorf("refreshes = %d, want 1 (only A clears the threshold)",
			res.RefreshesDelivered)
	}
}
