package engine

import (
	"math"
	"testing"

	"bestsync/internal/bandwidth"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/workload"
)

func TestSizesValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Sizes = make([]float64, cfg.N())
	for i := range cfg.Sizes {
		cfg.Sizes[i] = 1
	}
	cfg.Sizes[3] = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero size accepted")
	}
	cfg.Sizes = []float64{1}
	if _, err := Run(cfg); err == nil {
		t.Error("wrong-length Sizes accepted")
	}
	cfg = baseConfig()
	cfg.DeltaSize = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative DeltaSize accepted")
	}
	cfg = baseConfig()
	cfg.BatchMax = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative BatchMax accepted")
	}
}

func TestLargeObjectsConsumeMoreBandwidth(t *testing.T) {
	// Same workload, same bandwidth: with every object 4 units instead of
	// 1, roughly a quarter as many refreshes fit.
	small := baseConfig()
	big := baseConfig()
	big.Sizes = make([]float64, big.N())
	for i := range big.Sizes {
		big.Sizes[i] = 4
	}
	rs, rb := MustRun(small), MustRun(big)
	if rb.RefreshesDelivered >= rs.RefreshesDelivered {
		t.Errorf("big objects delivered %d refreshes, small %d — want fewer",
			rb.RefreshesDelivered, rs.RefreshesDelivered)
	}
	ratio := float64(rs.RefreshesDelivered) / float64(rb.RefreshesDelivered)
	if ratio < 2 || ratio > 8 {
		t.Errorf("refresh ratio %.2f, want ≈4", ratio)
	}
	if rb.AvgDivergence <= rs.AvgDivergence {
		t.Errorf("big-object divergence %v not above small-object %v",
			rb.AvgDivergence, rs.AvgDivergence)
	}
}

func TestDeltaEncodingCheaperRefreshes(t *testing.T) {
	full := baseConfig()
	full.Sizes = constRates(full.N(), 6)
	delta := full
	delta.DeltaSize = 1
	rf, rd := MustRun(full), MustRun(delta)
	if rd.RefreshesDelivered <= rf.RefreshesDelivered {
		t.Errorf("delta encoding delivered %d ≤ full %d",
			rd.RefreshesDelivered, rf.RefreshesDelivered)
	}
	if rd.AvgDivergence >= rf.AvgDivergence {
		t.Errorf("delta divergence %v not below full %v",
			rd.AvgDivergence, rf.AvgDivergence)
	}
}

func TestCostAwareHelpsUnderSizeSkew(t *testing.T) {
	base := func(aware bool, seed int64) float64 {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.CacheBW = bandwidth.Const(10)
		cfg.Sizes = make([]float64, cfg.N())
		for i := range cfg.Sizes {
			if i%2 == 0 {
				cfg.Sizes[i] = 12
			} else {
				cfg.Sizes[i] = 1
			}
		}
		cfg.CostAware = aware
		return MustRun(cfg).AvgDivergence
	}
	var with, without float64
	for s := int64(0); s < 3; s++ {
		with += base(true, s)
		without += base(false, s)
	}
	if with >= without {
		t.Errorf("cost-aware (%v) not better than cost-blind (%v)", with/3, without/3)
	}
}

func TestBatchingDeliversAllEntries(t *testing.T) {
	cfg := baseConfig()
	cfg.BatchMax = 5
	cfg.BatchOverhead = 0.5
	cfg.BatchWait = 2
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Fatal("no refreshes delivered with batching")
	}
	// Sent counts objects, not messages; messages ≤ sent/1.
	if res.RefreshesDelivered != res.RefreshesSent {
		t.Errorf("delivered %d ≠ sent %d (batch entries lost?)",
			res.RefreshesDelivered, res.RefreshesSent)
	}
}

func TestBatchingAmortizesOverhead(t *testing.T) {
	// With a hefty per-message header, batching should beat per-object
	// messages carrying the same header.
	run := func(batch bool, seed int64) float64 {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.Rates = constRates(cfg.N(), 0.8)
		cfg.CacheBW = bandwidth.Const(15)
		if batch {
			cfg.BatchMax = 6
			cfg.BatchOverhead = 3
			cfg.BatchWait = 2
		} else {
			cfg.Sizes = constRates(cfg.N(), 4) // 1 payload + 3 header
		}
		return MustRun(cfg).AvgDivergence
	}
	var batched, plain float64
	for s := int64(0); s < 3; s++ {
		batched += run(true, s)
		plain += run(false, s)
	}
	if batched >= plain {
		t.Errorf("batching (%v) not better than per-object headers (%v)",
			batched/3, plain/3)
	}
}

func TestRateEstimationModes(t *testing.T) {
	for _, est := range []RateEstimation{RateOracle, RateSinceRefresh, RateWindowed} {
		cfg := baseConfig()
		cfg.Metric = metric.Staleness
		cfg.PriorityFn = priority.PoissonStaleness
		cfg.RateEstimation = est
		res := MustRun(cfg)
		if res.RefreshesDelivered == 0 {
			t.Errorf("%v: no refreshes delivered", est)
		}
	}
}

func TestRateEstimationString(t *testing.T) {
	if RateOracle.String() != "oracle" ||
		RateSinceRefresh.String() != "since-refresh" ||
		RateWindowed.String() != "windowed" {
		t.Error("estimator names wrong")
	}
	if RateEstimation(9).String() != "RateEstimation(9)" {
		t.Error("unknown estimator name wrong")
	}
}

func TestSwitchingPoissonRates(t *testing.T) {
	p := &workload.SwitchingPoisson{Low: 0.1, High: 2, Period: 100}
	if got := p.RateAt(10); got != 0.1 {
		t.Errorf("RateAt(10) = %v, want 0.1 (low half)", got)
	}
	if got := p.RateAt(60); got != 2 {
		t.Errorf("RateAt(60) = %v, want 2 (high half)", got)
	}
	if got := p.RateAt(110); got != 0.1 {
		t.Errorf("RateAt(110) = %v, want 0.1 (wrapped)", got)
	}
}

func TestWindowedEstimatorTracksRate(t *testing.T) {
	// Drive the engine's windowed estimator indirectly: an object with
	// steady rate 0.5 should see estimates near 0.5 after the window warms
	// up. Exercise through lambdaFor via a small simulation and the
	// PoissonStaleness priority (which divides by λ̂) — if the estimate
	// were wildly off, refresh ordering between fast and slow objects
	// would inert.
	n := 40
	rates := make([]float64, n)
	for i := range rates {
		if i < n/2 {
			rates[i] = 0.05
		} else {
			rates[i] = 1.0
		}
	}
	cfg := Config{
		Seed:             9,
		Sources:          1,
		ObjectsPerSource: n,
		Metric:           metric.Staleness,
		PriorityFn:       priority.PoissonStaleness,
		Duration:         600,
		Warmup:           200,
		CacheBW:          bandwidth.Const(4),
		Rates:            rates,
		RateEstimation:   RateWindowed,
		RateWindow:       100,
		Policy:           IdealCooperative,
	}
	windowed := MustRun(cfg).AvgDivergence
	cfg.RateEstimation = RateOracle
	oracle := MustRun(cfg).AvgDivergence
	// The windowed estimator should land near the oracle on stationary
	// rates.
	if windowed > oracle*1.5+0.05 {
		t.Errorf("windowed staleness %v far above oracle %v", windowed, oracle)
	}
}

func TestHeadOfLineBlockingBigObject(t *testing.T) {
	// A giant object must still get through: burst floors guarantee the
	// bucket can eventually cover it.
	n := 4
	cfg := Config{
		Seed:             2,
		Sources:          1,
		ObjectsPerSource: n,
		Metric:           metric.ValueDeviation,
		Duration:         300,
		CacheBW:          bandwidth.Const(2),
		Rates:            constRates(n, 0.1),
		Sizes:            []float64{40, 1, 1, 1},
	}
	res := MustRun(cfg)
	if res.RefreshesDelivered == 0 {
		t.Fatal("nothing delivered with a large head-of-line object")
	}
}

func TestMsgSizeDeltaFloor(t *testing.T) {
	// Even an object zero updates ahead costs at least one delta unit
	// (guard against free messages).
	cfg := baseConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(&cfg)
	e.cfg.DeltaSize = 0.25
	e.cfg.Sizes = nil
	if got := e.msgSize(0); got != 0.25 {
		t.Errorf("msgSize with 0 updates behind = %v, want 0.25", got)
	}
	e.objs[0].version = 2
	e.objs[0].sentVer = 0
	if got := e.msgSize(0); got != 0.5 {
		t.Errorf("msgSize with 2 updates behind = %v, want 0.5", got)
	}
	e.objs[0].version = 100
	if got := e.msgSize(0); got != 1 {
		t.Errorf("msgSize capped = %v, want full size 1", got)
	}
}

func TestLambdaForModes(t *testing.T) {
	cfg := baseConfig()
	cfg.RateEstimation = RateSinceRefresh
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(&cfg)
	o := &e.objs[0]
	o.sent.Reset(0, 0)
	// Three updates over 6 seconds → λ̂ = 0.5.
	o.sent.Update(2, 1)
	o.sent.Update(4, 2)
	o.sent.Update(6, 3)
	if got := e.lambdaFor(0, 6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("since-refresh λ̂ = %v, want 0.5", got)
	}
	// No updates → 0 (priority is 0 anyway for staleness).
	o.sent.Reset(10, 0)
	if got := e.lambdaFor(0, 12); got != 0 {
		t.Errorf("λ̂ with no updates = %v, want 0", got)
	}
}
