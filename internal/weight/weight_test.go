package weight

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericIntegral is a trapezoid-rule reference used to validate the
// closed-form integrals.
func numericIntegral(w Fn, t0, t1 float64) float64 {
	const steps = 20000
	h := (t1 - t0) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		a := t0 + float64(i)*h
		sum += (w.At(a) + w.At(a+h)) / 2 * h
	}
	return sum
}

func TestConstAt(t *testing.T) {
	w := Const(3.5)
	for _, tm := range []float64{0, 1, 100} {
		if got := w.At(tm); got != 3.5 {
			t.Errorf("Const.At(%v) = %v, want 3.5", tm, got)
		}
	}
}

func TestConstIntegral(t *testing.T) {
	w := Const(2)
	if got := w.Integral(1, 5); got != 8 {
		t.Errorf("Const.Integral(1,5) = %v, want 8", got)
	}
	if got := w.Integral(3, 3); got != 0 {
		t.Errorf("Const.Integral(3,3) = %v, want 0", got)
	}
}

func TestSineNonNegative(t *testing.T) {
	w := Sine{Base: 2, Amp: 1, Period: 10, Phase: 0.3}
	for tm := 0.0; tm < 30; tm += 0.1 {
		if w.At(tm) < 0 {
			t.Fatalf("Sine.At(%v) = %v < 0", tm, w.At(tm))
		}
	}
}

func TestSineMeanIsBase(t *testing.T) {
	w := Sine{Base: 4, Amp: 0.7, Period: 5, Phase: 1.1}
	// Over an integer number of periods the mean equals Base.
	got := w.Integral(0, 50) / 50
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("mean over 10 periods = %v, want 4", got)
	}
}

func TestSineIntegralMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		w := RandomSine(rng, 1+rng.Float64()*5, 1, 2, 50)
		t0 := rng.Float64() * 10
		t1 := t0 + rng.Float64()*20
		want := numericIntegral(w, t0, t1)
		got := w.Integral(t0, t1)
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Integral(%v,%v) = %v, want %v (w=%+v)",
				trial, t0, t1, got, want, w)
		}
	}
}

func TestMeanDegenerateInterval(t *testing.T) {
	w := Sine{Base: 2, Amp: 0.5, Period: 7, Phase: 0}
	if got := Mean(w, 3, 3); got != w.At(3) {
		t.Errorf("Mean over empty interval = %v, want At(3) = %v", got, w.At(3))
	}
}

func TestMeanOfConst(t *testing.T) {
	if got := Mean(Const(5), 0, 10); got != 5 {
		t.Errorf("Mean(Const(5)) = %v, want 5", got)
	}
}

func TestProductAt(t *testing.T) {
	p := Product{I: Const(2), P: Sine{Base: 3, Amp: 0, Period: 1}}
	if got := p.At(0); got != 6 {
		t.Errorf("Product.At = %v, want 6", got)
	}
}

func TestProductIntegralConstFast(t *testing.T) {
	s := Sine{Base: 3, Amp: 0.4, Period: 9, Phase: 0.2}
	p := Product{I: Const(2), P: s}
	want := 2 * s.Integral(1, 7)
	if got := p.Integral(1, 7); math.Abs(got-want) > 1e-12 {
		t.Errorf("Product.Integral = %v, want %v", got, want)
	}
	p2 := Product{I: s, P: Const(2)}
	if got := p2.Integral(1, 7); math.Abs(got-want) > 1e-12 {
		t.Errorf("Product.Integral (swapped) = %v, want %v", got, want)
	}
}

func TestProductIntegralSineSine(t *testing.T) {
	a := Sine{Base: 2, Amp: 0.5, Period: 11, Phase: 0.4}
	b := Sine{Base: 1.5, Amp: 0.9, Period: 4, Phase: 2.2}
	p := Product{I: a, P: b}
	want := numericIntegral(p, 0, 13)
	got := p.Integral(0, 13)
	if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
		t.Errorf("Product.Integral sine×sine = %v, want %v", got, want)
	}
}

func TestRandomSineRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		s := RandomSine(rng, 10, 0.8, 5, 20)
		if s.Base != 10 {
			t.Fatalf("base = %v, want 10", s.Base)
		}
		if s.Amp < 0 || s.Amp > 0.8 {
			t.Fatalf("amp = %v out of [0,0.8]", s.Amp)
		}
		if s.Period < 5 || s.Period > 20 {
			t.Fatalf("period = %v out of [5,20]", s.Period)
		}
	}
}

// Property: additivity of the integral — ∫[a,c] = ∫[a,b] + ∫[b,c].
func TestSineIntegralAdditive(t *testing.T) {
	w := Sine{Base: 2, Amp: 0.6, Period: 8, Phase: 1}
	f := func(a, span1, span2 uint8) bool {
		t0 := float64(a) / 4
		t1 := t0 + float64(span1)/8
		t2 := t1 + float64(span2)/8
		whole := w.Integral(t0, t2)
		split := w.Integral(t0, t1) + w.Integral(t1, t2)
		return math.Abs(whole-split) < 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: integrals of nonnegative weights are nonnegative and monotone in
// the upper limit.
func TestSineIntegralMonotone(t *testing.T) {
	w := Sine{Base: 3, Amp: 1, Period: 6, Phase: 0.5}
	f := func(a, span uint8) bool {
		t0 := float64(a) / 4
		t1 := t0 + float64(span)/8
		v := w.Integral(t0, t1)
		return v >= -1e-12 && w.Integral(t0, t1+1) >= v-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSineIntegral(b *testing.B) {
	w := Sine{Base: 2, Amp: 0.5, Period: 10, Phase: 0.1}
	for i := 0; i < b.N; i++ {
		_ = w.Integral(float64(i), float64(i)+3)
	}
}
