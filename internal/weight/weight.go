// Package weight implements the time-varying object weights of Olston &
// Widom (SIGMOD 2002), Section 3.2: W(O,t) = I(O,t) · P(O,t), the product of
// importance and popularity.
//
// The paper's simulations let weights "vary over time following sine-wave
// patterns with randomly-assigned amplitudes and periods" (Section 6); Sine
// implements that. Every weight function exposes a closed-form interval
// integral so the simulation engine can accumulate the weighted divergence
// integral ∫ W(t)·D(t) dt exactly, without per-tick sampling.
package weight

import (
	"math"
	"math/rand"
)

// Fn is a nonnegative, time-varying weight.
type Fn interface {
	// At returns W(t).
	At(t float64) float64
	// Integral returns ∫ W(τ) dτ over [t0, t1]. t1 must be ≥ t0.
	Integral(t0, t1 float64) float64
}

// Const is a constant weight. Const(1) is the unweighted case where all
// objects receive equal treatment.
type Const float64

// At implements Fn.
func (c Const) At(float64) float64 { return float64(c) }

// Integral implements Fn.
func (c Const) Integral(t0, t1 float64) float64 { return float64(c) * (t1 - t0) }

// Sine is a sinusoidally fluctuating weight
//
//	W(t) = Base · (1 + Amp·sin(2πt/Period + Phase)).
//
// Amp must be in [0, 1] so the weight stays nonnegative.
type Sine struct {
	Base   float64
	Amp    float64
	Period float64
	Phase  float64
}

// At implements Fn.
func (s Sine) At(t float64) float64 {
	return s.Base * (1 + s.Amp*math.Sin(2*math.Pi*t/s.Period+s.Phase))
}

// Integral implements Fn. The antiderivative of sin(ωt+φ) is −cos(ωt+φ)/ω.
func (s Sine) Integral(t0, t1 float64) float64 {
	omega := 2 * math.Pi / s.Period
	base := s.Base * (t1 - t0)
	osc := s.Base * s.Amp / omega * (math.Cos(omega*t0+s.Phase) - math.Cos(omega*t1+s.Phase))
	return base + osc
}

// Mean returns the average of W over an interval; convenient when a single
// representative value is needed (e.g. W(t_now) approximations).
func Mean(w Fn, t0, t1 float64) float64 {
	if t1 <= t0 {
		return w.At(t0)
	}
	return w.Integral(t0, t1) / (t1 - t0)
}

// Product combines two weight functions multiplicatively, e.g. importance ×
// popularity. Its Integral is computed analytically when both factors are
// Const or one is Const, and by Simpson quadrature otherwise.
type Product struct {
	I Fn // importance
	P Fn // popularity
}

// At implements Fn.
func (p Product) At(t float64) float64 { return p.I.At(t) * p.P.At(t) }

// Integral implements Fn.
func (p Product) Integral(t0, t1 float64) float64 {
	if ci, ok := p.I.(Const); ok {
		return float64(ci) * p.P.Integral(t0, t1)
	}
	if cp, ok := p.P.(Const); ok {
		return float64(cp) * p.I.Integral(t0, t1)
	}
	return simpson(p.At, t0, t1)
}

// simpson performs adaptive-ish composite Simpson quadrature with a fixed
// panel count sufficient for the smooth sine products used here.
func simpson(f func(float64) float64, a, b float64) float64 {
	if b <= a {
		return 0
	}
	const panels = 64
	h := (b - a) / panels
	sum := f(a) + f(b)
	for i := 1; i < panels; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// RandomSine draws a fluctuating weight with the given base value, a random
// amplitude in [0, maxAmp], and a random period in [minPeriod, maxPeriod],
// mirroring the paper's randomly-assigned sine-wave weights.
func RandomSine(rng *rand.Rand, base, maxAmp, minPeriod, maxPeriod float64) Sine {
	return Sine{
		Base:   base,
		Amp:    rng.Float64() * maxAmp,
		Period: minPeriod + rng.Float64()*(maxPeriod-minPeriod),
		Phase:  rng.Float64() * 2 * math.Pi,
	}
}
