package transport

import (
	"net"
	"testing"
	"time"

	"bestsync/internal/wire"
)

// recvOne receives one batch from ch and returns its only refresh.
func recvOne(t *testing.T, ch <-chan InboundBatch) wire.Refresh {
	t.Helper()
	select {
	case b := <-ch:
		if len(b.Refreshes) != 1 {
			t.Fatalf("batch has %d refreshes, want 1", len(b.Refreshes))
		}
		return b.Refreshes[0]
	case <-time.After(2 * time.Second):
		t.Fatal("refresh not delivered")
		return wire.Refresh{}
	}
}

func TestLocalRoundTrip(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	conn, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, l.Batches()); r.ObjectID != "a" || r.Value != 1 {
		t.Errorf("got %+v", r)
	}
	if err := l.SendFeedback("s1", wire.Feedback{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-conn.Feedback():
	case <-time.After(time.Second):
		t.Fatal("feedback not delivered")
	}
}

func TestLocalPollRoundTrip(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	conn, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := conn.(PollConn)
	if !ok {
		t.Fatal("local connection does not implement PollConn")
	}
	pe := PollEndpoint(l)
	if err := pe.SendPoll("s1", wire.Poll{CacheID: "c", ObjectIDs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pc.Polls():
		if p.CacheID != "c" || len(p.ObjectIDs) != 1 || p.ObjectIDs[0] != "a" {
			t.Errorf("got poll %+v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("poll not delivered")
	}
	if err := pe.SendPoll("ghost", wire.Poll{}); err == nil {
		t.Error("poll to unknown source accepted")
	}
	if err := pc.SendReply(wire.PollReply{SourceID: "s1", Items: []wire.PollItem{
		{ObjectID: "a", Exists: true, Value: 4, Version: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-pe.Replies():
		if r.SourceID != "s1" || len(r.Items) != 1 || r.Items[0].Value != 4 {
			t.Errorf("got reply %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("reply not delivered")
	}
}

func TestLocalDuplicateSourceRejected(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	if _, err := l.Dial("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Dial("s1"); err == nil {
		t.Fatal("duplicate dial accepted")
	}
	if _, err := l.Dial(""); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestLocalFeedbackUnknownSource(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	if err := l.SendFeedback("ghost", wire.Feedback{}); err == nil {
		t.Fatal("feedback to unknown source accepted")
	}
}

func TestLocalSourcesList(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	l.Dial("a")
	l.Dial("b")
	if got := len(l.Sources()); got != 2 {
		t.Errorf("sources = %d, want 2", got)
	}
}

func TestLocalConnCloseDetaches(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	conn, _ := l.Dial("s1")
	conn.Close()
	if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "a"}); err == nil {
		t.Fatal("send on closed conn accepted")
	}
	// The id can be reused after close (reconnect).
	if _, err := l.Dial("s1"); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
}

func TestLocalClosedNetwork(t *testing.T) {
	l := NewLocal(4)
	l.Close()
	if _, err := l.Dial("s1"); err == nil {
		t.Fatal("dial on closed network accepted")
	}
	if err := l.SendFeedback("s1", wire.Feedback{}); err == nil {
		t.Fatal("feedback on closed network accepted")
	}
	l.Close() // idempotent
}

func TestFeedbackNonBlocking(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	l.Dial("s1")
	// Saturate the feedback buffer; further sends must not block.
	for i := 0; i < 20; i++ {
		if err := l.SendFeedback("s1", wire.Feedback{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	conn, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.SendRefresh(wire.Refresh{
		SourceID: "s1", ObjectID: "a", Value: 3.5, Version: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, srv.Batches()); r.ObjectID != "a" || r.Value != 3.5 || r.SourceID != "s1" {
		t.Errorf("got %+v", r)
	}

	// Feedback requires the server to have registered the source.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := srv.SendFeedback("s1", wire.Feedback{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("source never registered for feedback")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-conn.Feedback():
	case <-time.After(2 * time.Second):
		t.Fatal("feedback not received")
	}
}

func TestTCPPollRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()
	pe, ok := srv.(PollEndpoint)
	if !ok {
		t.Fatal("TCP server does not implement PollEndpoint")
	}

	conn, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc, ok := conn.(PollConn)
	if !ok {
		t.Fatal("TCP client does not implement PollConn")
	}

	// Polling requires the server to have processed the Hello.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := pe.SendPoll("s1", wire.Poll{CacheID: "c", ObjectIDs: []string{"a", "b"}}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("source never registered for polls")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case p := <-pc.Polls():
		if p.CacheID != "c" || len(p.ObjectIDs) != 2 {
			t.Errorf("got poll %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poll not received")
	}

	// The reply's SourceID comes from the stream identity, not the client's
	// claim — same rule as refreshes.
	if err := pc.SendReply(wire.PollReply{SourceID: "impostor", All: true, Items: []wire.PollItem{
		{ObjectID: "a", Exists: true, Value: 1.5, Version: 3, Epoch: 7, LastModifiedUnix: 99},
		{ObjectID: ""}, // malformed: dropped, rest of the reply kept
		{ObjectID: "b"},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-pe.Replies():
		if r.SourceID != "s1" {
			t.Errorf("reply source = %q, want stream identity s1", r.SourceID)
		}
		if !r.All || len(r.Items) != 2 || r.Items[0].Value != 1.5 || r.Items[1].Exists {
			t.Errorf("got reply %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply not received")
	}

	// Refreshes and replies interleave on one stream.
	if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "c", Value: 2}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, srv.Batches()); r.ObjectID != "c" {
		t.Errorf("got %+v", r)
	}
}

func TestBatcherPollPassthrough(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	raw, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	conn := NewBatcher(raw, BatcherConfig{})
	defer conn.Close()
	pc, ok := conn.(PollConn)
	if !ok {
		t.Fatal("batcher does not implement PollConn")
	}
	if err := PollEndpoint(l).SendPoll("s1", wire.Poll{ObjectIDs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pc.Polls():
		if len(p.ObjectIDs) != 1 {
			t.Errorf("got poll %+v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("poll not delivered through batcher")
	}
	if err := pc.SendReply(wire.PollReply{SourceID: "s1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-l.Replies():
	case <-time.After(time.Second):
		t.Fatal("reply not delivered through batcher")
	}
}

func TestTCPSourceIdentityAuthoritative(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()
	conn, err := Dial(ln.Addr().String(), "real")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A refresh claiming a different source id gets stamped with the
	// stream identity.
	conn.SendRefresh(wire.Refresh{SourceID: "spoof", ObjectID: "a", Version: 1})
	if r := recvOne(t, srv.Batches()); r.SourceID != "real" {
		t.Errorf("source id = %q, want stream identity", r.SourceID)
	}
}

func TestTCPReconnectReplacesConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	c1, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	c1.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "a", Version: 1})
	<-srv.Batches()

	c2, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The new connection must become the feedback target.
	if err := c2.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "b", Version: 1}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, srv.Batches()); r.ObjectID != "b" {
		t.Errorf("got %+v", r)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := srv.SendFeedback("s1", wire.Feedback{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reconnected source not registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-c2.Feedback():
	case <-time.After(2 * time.Second):
		t.Fatal("feedback after reconnect not received")
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	conn, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The client's feedback channel eventually closes.
	select {
	case _, ok := <-conn.Feedback():
		if ok {
			t.Error("expected closed feedback channel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("feedback channel not closed after server shutdown")
	}
}

func TestDialEmptyID(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ""); err == nil {
		t.Fatal("empty source id accepted")
	}
}

// TestDialAllFanout: one source dials several caches; feedback from each
// cache arrives on the right connection carrying that cache's identity.
func TestDialAllFanout(t *testing.T) {
	const n = 3
	srvs := make([]CacheEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = Serve(ln, 16)
		defer srvs[i].Close()
		addrs[i] = ln.Addr().String()
	}
	conns, err := DialAll(addrs, "s1")
	if err != nil {
		t.Fatal(err)
	}
	for i, conn := range conns {
		defer conn.Close()
		if err := conn.SendRefresh(wire.Refresh{
			SourceID: "s1", ObjectID: "a", Version: 1,
		}); err != nil {
			t.Fatal(err)
		}
		recvOne(t, srvs[i].Batches())
		deadline := time.Now().Add(2 * time.Second)
		fb := wire.Feedback{CacheID: "c" + string(rune('0'+i))}
		for {
			if err := srvs[i].SendFeedback("s1", fb); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cache %d never registered the source", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
		select {
		case got := <-conn.Feedback():
			if got.CacheID != fb.CacheID {
				t.Errorf("conn %d received feedback from %q, want %q", i, got.CacheID, fb.CacheID)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("conn %d: feedback not received", i)
		}
	}
}

// TestDialAllPartialFailureCleansUp: a failed dial closes the connections
// already established.
func TestDialAllPartialFailureCleansUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()
	// Port 0 is never listenable, so connecting to it is refused
	// deterministically — unlike the listen-then-close trick, where another
	// process can rebind the freed port between Close and DialAll.
	deadAddr := "127.0.0.1:0"
	if _, err := DialAll([]string{ln.Addr().String(), deadAddr}, "s1"); err == nil {
		t.Fatal("DialAll to a dead address succeeded")
	}
}
