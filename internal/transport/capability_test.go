package transport

import (
	"net"
	"testing"
	"time"

	"bestsync/internal/wire"
)

// cooperationReporter is the capability view the runtime's hybrid poll
// scheduler type-asserts on its endpoint; both server implementations must
// provide it.
type cooperationReporter interface {
	PeerCooperates(sourceID string) bool
}

func waitCooperates(t *testing.T, rep cooperationReporter, id string, want bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rep.PeerCooperates(id) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("PeerCooperates(%q) never became %v", id, want)
}

// TestCapabilityNegotiationPerCodec: a hybrid-capable client's Hello carries
// wire.CapCooperative through EVERY codec path — binary frames, forced gob,
// and auto negotiation — and the server reports it via PeerCooperates; a
// client with no capabilities set reads as non-cooperative (the gate
// defaults closed for legacy peers).
func TestCapabilityNegotiationPerCodec(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()
	addr := ln.Addr().String()
	rep := srv.(cooperationReporter)

	for _, pref := range []Codec{CodecBinary, CodecGob, CodecAuto} {
		t.Run(pref.String(), func(t *testing.T) {
			SetDialCapabilities(wire.CapCooperative)
			defer SetDialCapabilities(0)
			id := "coop-" + pref.String()
			conn, err := DialCodec(addr, id, pref)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			waitCooperates(t, rep, id, true)

			SetDialCapabilities(0)
			plainID := "plain-" + pref.String()
			plain, err := DialCodec(addr, plainID, pref)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			waitCooperates(t, rep, plainID, false)
		})
	}
}

// TestCapabilityLocalTransport: the in-process transport stamps the same
// process-wide capability mask at Dial and reports it per source.
func TestCapabilityLocalTransport(t *testing.T) {
	local := NewLocal(8)
	defer local.Close()

	SetDialCapabilities(wire.CapCooperative)
	coop, err := local.Dial("coop")
	SetDialCapabilities(0)
	if err != nil {
		t.Fatal(err)
	}
	defer coop.Close()
	plain, err := local.Dial("plain")
	if err != nil {
		t.Fatal(err)
	}

	if !local.PeerCooperates("coop") {
		t.Error("cooperative local dial not reported")
	}
	if local.PeerCooperates("plain") {
		t.Error("plain local dial reported cooperative")
	}
	// Capabilities are per-connection state: they die with the conn, so a
	// restarted peer must re-advertise rather than inherit.
	plain.Close()
	if local.PeerCooperates("plain") {
		t.Error("capability survived the connection")
	}
}

// TestAutoFallbackNegotiatesWithHybridPeer: a hybrid-capable client in auto
// mode dialing a legacy gob-only daemon must still complete the gob
// fallback — the capability bit rides the Hello as a plain field old gob
// decoders skip — and deliver traffic the old server parses.
func TestAutoFallbackNegotiatesWithHybridPeer(t *testing.T) {
	addr, batches, closeFn := legacyGobServer(t)
	defer closeFn()

	SetDialCapabilities(wire.CapCooperative)
	defer SetDialCapabilities(0)
	conn, err := DialCodec(addr, "s1", CodecAuto)
	if err != nil {
		t.Fatalf("hybrid-capable auto dial failed against a legacy server: %v", err)
	}
	defer conn.Close()
	if fs := conn.(FrameSender); fs.FramesEnabled() {
		t.Fatal("fallback connection claims binary frames")
	}
	if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-batches:
		if len(b.Refreshes) != 1 || b.Refreshes[0].ObjectID != "a" {
			t.Errorf("legacy server decoded %+v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy server never received the hybrid-capable client's refresh")
	}
}
