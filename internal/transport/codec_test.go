package transport

import (
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"

	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

func TestParseCodec(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"auto", CodecAuto, true},
		{"", CodecAuto, true},
		{"binary", CodecBinary, true},
		{"gob", CodecGob, true},
		{"protobuf", CodecAuto, false},
	}
	for _, tc := range cases {
		got, err := ParseCodec(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, c := range []Codec{CodecAuto, CodecBinary, CodecGob} {
		back, err := ParseCodec(c.String())
		if err != nil || back != c {
			t.Errorf("round trip %v → %q → %v, %v", c, c.String(), back, err)
		}
	}
}

func TestSetDialCodec(t *testing.T) {
	defer SetDialCodec(CodecAuto)
	SetDialCodec(CodecGob)
	if got := DialCodecDefault(); got != CodecGob {
		t.Fatalf("DialCodecDefault = %v after SetDialCodec(gob)", got)
	}
}

// testTCPRoundTrip runs the full bidirectional exchange — refresh up,
// feedback down, poll down, reply up — against a new server with the client
// forced to the given codec. The same server binary serves both encodings,
// so running this per codec IS the old-client/new-server interop test:
// CodecGob is byte-for-byte the pre-codec client.
func testTCPRoundTrip(t *testing.T, pref Codec, wantFrames bool) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	conn, err := DialCodec(ln.Addr().String(), "s1", pref)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if fs, ok := conn.(FrameSender); !ok {
		t.Fatal("TCP client does not implement FrameSender")
	} else if fs.FramesEnabled() != wantFrames {
		t.Fatalf("FramesEnabled = %v with codec %v, want %v", fs.FramesEnabled(), pref, wantFrames)
	}

	if err := conn.SendRefresh(wire.Refresh{
		SourceID: "s1", ObjectID: "a", Value: 3.5, Version: 1,
		Origin: "s1", Via: []string{"relay-1"}, Hops: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, srv.Batches()); r.ObjectID != "a" || r.Value != 3.5 || len(r.Via) != 1 {
		t.Errorf("got %+v", r)
	}

	deadline := time.Now().Add(2 * time.Second)
	fb := wire.Feedback{CacheID: "edge", Held: []wire.HeldVersion{{ObjectID: "a", Version: 1}}}
	for {
		if err := srv.SendFeedback("s1", fb); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("source never registered for feedback")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case got := <-conn.Feedback():
		if got.CacheID != "edge" || len(got.Held) != 1 || got.Held[0].ObjectID != "a" {
			t.Errorf("feedback drifted: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("feedback not received")
	}

	pe, pc := srv.(PollEndpoint), conn.(PollConn)
	if err := pe.SendPoll("s1", wire.Poll{CacheID: "edge", ObjectIDs: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pc.Polls():
		if p.CacheID != "edge" || len(p.ObjectIDs) != 2 {
			t.Errorf("poll drifted: %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poll not received")
	}
	if err := pc.SendReply(wire.PollReply{SourceID: "s1", Items: []wire.PollItem{
		{ObjectID: "a", Exists: true, Value: 1.5, Version: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-pe.Replies():
		if r.SourceID != "s1" || len(r.Items) != 1 || r.Items[0].Value != 1.5 {
			t.Errorf("reply drifted: %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply not received")
	}
}

// TestTCPRoundTripPerCodec runs the same protocol exchange under every
// client codec against one server implementation.
func TestTCPRoundTripPerCodec(t *testing.T) {
	t.Run("binary", func(t *testing.T) { testTCPRoundTrip(t, CodecBinary, true) })
	t.Run("gob", func(t *testing.T) { testTCPRoundTrip(t, CodecGob, false) })
	t.Run("auto", func(t *testing.T) { testTCPRoundTrip(t, CodecAuto, true) })
}

// legacyGobServer mimics a pre-codec daemon: a bare gob decoder from byte
// one. A binary probe's magic byte fails its gob decode immediately (0xB5
// reads as a 75-byte length field, which is out of range), so it kills the
// connection — exactly the signal the auto-negotiating client falls back on.
func legacyGobServer(t *testing.T) (addr string, batches chan wire.RefreshBatch, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	batches = make(chan wire.RefreshBatch, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				var hello wire.Hello
				if err := dec.Decode(&hello); err != nil {
					return // the legacy reaction to a binary prologue
				}
				for {
					var env wire.CacheBound
					if err := dec.Decode(&env); err != nil {
						return
					}
					if env.Batch != nil {
						batches <- *env.Batch
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), batches, func() { ln.Close() }
}

// TestAutoFallsBackToGobAgainstLegacyServer: a new client with CodecAuto
// dialing an old gob-only daemon must transparently redial in gob and
// deliver traffic the old daemon parses.
func TestAutoFallsBackToGobAgainstLegacyServer(t *testing.T) {
	addr, batches, closeFn := legacyGobServer(t)
	defer closeFn()

	conn, err := DialCodec(addr, "s1", CodecAuto)
	if err != nil {
		t.Fatalf("auto dial against a legacy server failed instead of falling back: %v", err)
	}
	defer conn.Close()
	if fs := conn.(FrameSender); fs.FramesEnabled() {
		t.Fatal("fallback connection claims binary frames")
	}
	if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-batches:
		if len(b.Refreshes) != 1 || b.Refreshes[0].ObjectID != "a" {
			t.Errorf("legacy server decoded %+v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy server never received the fallback client's refresh")
	}
}

// TestBinaryRequiredFailsAgainstLegacyServer: CodecBinary must error, not
// silently downgrade.
func TestBinaryRequiredFailsAgainstLegacyServer(t *testing.T) {
	addr, _, closeFn := legacyGobServer(t)
	defer closeFn()
	if conn, err := DialCodec(addr, "s1", CodecBinary); err == nil {
		conn.Close()
		t.Fatal("CodecBinary dial against a legacy server succeeded")
	}
}

// rawBinaryHandshake opens a raw binary-codec connection to addr and
// completes the prologue + hello + echo exchange, returning the socket for
// hostile follow-up bytes.
func rawBinaryHandshake(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var enc codec.Encoder
	buf := append([]byte{codec.Magic, codec.Version}, enc.AppendHello(nil, wire.Hello{SourceID: "s1"})...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var echo [2]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil || echo != [2]byte{codec.Magic, codec.Version} {
		t.Fatalf("no binary accept echo: %v %x", err, echo)
	}
	return conn
}

// expectConnClosed asserts the server tears the connection down (the
// contract for every codec decode error: the frame boundary is gone).
func expectConnClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server kept the connection open after a malformed frame")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server neither closed the connection nor erred within the deadline")
	}
}

// TestServerClosesConnOnGarbageFrame: after a clean handshake, an undecodable
// frame kind must kill the connection, not desynchronize the stream.
func TestServerClosesConnOnGarbageFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	conn := rawBinaryHandshake(t, ln.Addr().String())
	defer conn.Close()
	if _, err := conn.Write([]byte{0x7e, 0x03, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	expectConnClosed(t, conn)
}

// TestServerClosesConnOnOversizedFrame: a length prefix past the size cap is
// rejected before allocation and the connection dies.
func TestServerClosesConnOnOversizedFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	conn := rawBinaryHandshake(t, ln.Addr().String())
	defer conn.Close()
	// KindBatch claiming a 2 GiB payload in 5 bytes.
	if _, err := conn.Write([]byte{codec.KindBatch, 0x80, 0x80, 0x80, 0x80, 0x08}); err != nil {
		t.Fatal(err)
	}
	expectConnClosed(t, conn)
}

// TestServerClosesConnOnFutureCodecVersion: a prologue with an unknown
// version byte is refused (closing tells the future client to fall back to
// gob, the shared denominator).
func TestServerClosesConnOnFutureCodecVersion(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{codec.Magic, 0x7f}); err != nil {
		t.Fatal(err)
	}
	expectConnClosed(t, conn)
}

// TestBatcherUsesFrameSender: through a Batcher over a binary connection,
// flushed batches travel as pre-encoded frames and still arrive intact.
func TestBatcherUsesFrameSender(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()

	raw, err := DialCodec(ln.Addr().String(), "s1", CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewBatcher(raw, BatcherConfig{MaxBatch: 2, FlushEvery: time.Hour})
	defer conn.Close()

	for _, id := range []string{"a", "b"} {
		if err := conn.SendRefresh(wire.Refresh{SourceID: "s1", ObjectID: id, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case b := <-srv.Batches():
		if len(b.Refreshes) != 2 || b.Refreshes[0].ObjectID != "a" || b.Refreshes[1].ObjectID != "b" {
			t.Errorf("frame-path batch drifted: %+v", b.Refreshes)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame-path batch not delivered")
	}
}
