package transport

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"bestsync/internal/wire"
)

func refreshes(src string, n int) []wire.Refresh {
	rs := make([]wire.Refresh, n)
	for i := range rs {
		rs[i] = wire.Refresh{
			SourceID: src,
			ObjectID: fmt.Sprintf("%s/obj-%d", src, i),
			Value:    float64(i),
			Version:  uint64(i + 1),
		}
	}
	return rs
}

func TestLocalBatchRoundTrip(t *testing.T) {
	l := NewLocal(4)
	defer l.Close()
	conn, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	want := refreshes("s1", 5)
	if err := conn.SendBatch(want); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-l.Batches():
		if len(b.Refreshes) != len(want) {
			t.Fatalf("batch has %d refreshes, want %d", len(b.Refreshes), len(want))
		}
		for i, r := range b.Refreshes {
			if !reflect.DeepEqual(r, want[i]) {
				t.Errorf("refresh %d = %+v, want %+v", i, r, want[i])
			}
		}
	case <-time.After(time.Second):
		t.Fatal("batch not delivered")
	}
	// Empty batches are a no-op, not an error.
	if err := conn.SendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestTCPBatchRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, 16)
	defer srv.Close()
	conn, err := Dial(ln.Addr().String(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	want := refreshes("s1", 7)
	// Spoofed source ids inside the batch get stamped from the stream.
	want[3].SourceID = "spoof"
	if err := conn.SendBatch(want); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-srv.Batches():
		if len(b.Refreshes) != len(want) {
			t.Fatalf("batch has %d refreshes, want %d", len(b.Refreshes), len(want))
		}
		for i, r := range b.Refreshes {
			if r.SourceID != "s1" {
				t.Errorf("refresh %d source = %q, want stream identity", i, r.SourceID)
			}
			if r.ObjectID != want[i].ObjectID || r.Value != want[i].Value {
				t.Errorf("refresh %d = %+v, want %+v", i, r, want[i])
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch not received")
	}
}

func TestBatcherFlushBySize(t *testing.T) {
	l := NewLocal(16)
	defer l.Close()
	raw, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	// A long flush interval isolates the size trigger.
	b := NewBatcher(raw, BatcherConfig{MaxBatch: 4, FlushEvery: time.Hour})
	defer b.Close()
	for _, r := range refreshes("s1", 4) {
		if err := b.SendRefresh(r); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case got := <-l.Batches():
		if len(got.Refreshes) != 4 {
			t.Errorf("batch size = %d, want 4", len(got.Refreshes))
		}
	case <-time.After(time.Second):
		t.Fatal("size-triggered flush never happened")
	}
}

func TestBatcherFlushByInterval(t *testing.T) {
	l := NewLocal(16)
	defer l.Close()
	raw, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(raw, BatcherConfig{MaxBatch: 1000, FlushEvery: 5 * time.Millisecond})
	defer b.Close()
	if err := b.SendRefresh(refreshes("s1", 1)[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-l.Batches():
		if len(got.Refreshes) != 1 {
			t.Errorf("batch size = %d, want 1", len(got.Refreshes))
		}
	case <-time.After(time.Second):
		t.Fatal("interval-triggered flush never happened")
	}
}

func TestBatcherCloseFlushesPending(t *testing.T) {
	l := NewLocal(16)
	defer l.Close()
	raw, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(raw, BatcherConfig{MaxBatch: 1000, FlushEvery: time.Hour})
	want := refreshes("s1", 3)
	if err := b.SendBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-l.Batches():
		if len(got.Refreshes) != 3 {
			t.Errorf("batch size = %d, want 3", len(got.Refreshes))
		}
	case <-time.After(time.Second):
		t.Fatal("close did not flush pending refreshes")
	}
	if err := b.SendRefresh(want[0]); err == nil {
		t.Error("send after close accepted")
	}
}

// flakyBatchConn fails its first SendBatch calls, then recovers.
type flakyBatchConn struct {
	failures int
	batches  [][]wire.Refresh
	fb       chan wire.Feedback
}

func (c *flakyBatchConn) SendRefresh(r wire.Refresh) error {
	return c.SendBatch([]wire.Refresh{r})
}

func (c *flakyBatchConn) SendBatch(rs []wire.Refresh) error {
	if c.failures > 0 {
		c.failures--
		return fmt.Errorf("flaky: injected failure")
	}
	c.batches = append(c.batches, append([]wire.Refresh(nil), rs...))
	return nil
}

func (c *flakyBatchConn) Feedback() <-chan wire.Feedback { return c.fb }
func (c *flakyBatchConn) Close() error                   { return nil }

// TestBatcherReBuffersFailedFlush: a batch that fails to flush stays
// pending (in order) so the Close-time retry can still deliver it — a
// refresh the Batcher accepted is never silently discarded while the
// connection might recover.
func TestBatcherReBuffersFailedFlush(t *testing.T) {
	conn := &flakyBatchConn{failures: 1, fb: make(chan wire.Feedback)}
	b := NewBatcher(conn, BatcherConfig{MaxBatch: 4, FlushEvery: time.Hour})
	want := refreshes("s1", 4)
	var sendErr error
	for _, r := range want {
		if err := b.SendRefresh(r); err != nil {
			sendErr = err
		}
	}
	if sendErr == nil {
		t.Fatal("the size-triggered flush should have surfaced the injected failure")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close retry should deliver the re-buffered batch: %v", err)
	}
	if len(conn.batches) != 1 || len(conn.batches[0]) != 4 {
		t.Fatalf("delivered %d batches %v, want the full re-buffered batch of 4",
			len(conn.batches), conn.batches)
	}
	for i, r := range conn.batches[0] {
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("refresh %d = %+v, want %+v (order must be preserved)", i, r, want[i])
		}
	}
}

// syncedFlakyConn is a concurrency-safe flakyBatchConn for tests that let
// the Batcher's timer goroutine drive the flushes.
type syncedFlakyConn struct {
	mu       sync.Mutex
	failures int
	batches  [][]wire.Refresh
	fb       chan wire.Feedback
}

func (c *syncedFlakyConn) SendRefresh(r wire.Refresh) error {
	return c.SendBatch([]wire.Refresh{r})
}

func (c *syncedFlakyConn) SendBatch(rs []wire.Refresh) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failures > 0 {
		c.failures--
		return fmt.Errorf("flaky: injected failure")
	}
	c.batches = append(c.batches, append([]wire.Refresh(nil), rs...))
	return nil
}

func (c *syncedFlakyConn) delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.batches {
		n += len(b)
	}
	return n
}

func (c *syncedFlakyConn) Feedback() <-chan wire.Feedback { return c.fb }
func (c *syncedFlakyConn) Close() error                   { return nil }

// TestBatcherRecoversAfterTransientFlushError is the regression test for
// the permanently poisoned Batcher: a failed timer-driven flush set the
// sticky error, but a later successful retry of the re-buffered batch
// never cleared it, so every future send failed on a healthy connection.
// After the transient failure heals, sends must flow again.
func TestBatcherRecoversAfterTransientFlushError(t *testing.T) {
	conn := &syncedFlakyConn{failures: 1, fb: make(chan wire.Feedback)}
	// Large MaxBatch so only the timer drives flushes: the failure and the
	// recovery both happen on the background path, never surfacing to a
	// send that could be retried by the caller.
	b := NewBatcher(conn, BatcherConfig{MaxBatch: 1000, FlushEvery: 2 * time.Millisecond})
	defer b.Close()
	first := refreshes("s1", 1)[0]
	if err := b.SendRefresh(first); err != nil {
		t.Fatalf("initial send rejected: %v", err)
	}
	// The first timer flush fails (sticky error set); the next retries the
	// re-buffered batch and succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for conn.delivered() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-buffered batch never delivered after the transient failure")
		}
		time.Sleep(time.Millisecond)
	}
	// The connection is healthy and the backlog is drained: a new send
	// must be accepted, not rejected with the stale sticky error.
	var err error
	for range [50]int{} {
		if err = b.SendRefresh(refreshes("s1", 2)[1]); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatalf("send still failing after a successful retry flush: %v", err)
	}
	waitDeadline := time.Now().Add(2 * time.Second)
	for conn.delivered() < 2 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("post-recovery refresh never delivered (%d total)", conn.delivered())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherPreservesOrder(t *testing.T) {
	l := NewLocal(64)
	defer l.Close()
	raw, err := l.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(raw, BatcherConfig{MaxBatch: 8, FlushEvery: time.Millisecond})
	const n = 100
	for i := 0; i < n; i++ {
		if err := b.SendRefresh(wire.Refresh{
			SourceID: "s1", ObjectID: "x", Version: uint64(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	var last uint64
	count := 0
	for count < n {
		select {
		case got := <-l.Batches():
			for _, r := range got.Refreshes {
				if r.Version <= last {
					t.Fatalf("version %d arrived after %d", r.Version, last)
				}
				last = r.Version
				count++
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d refreshes delivered", count, n)
		}
	}
}
