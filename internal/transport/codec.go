package transport

import (
	"fmt"
	"sync/atomic"

	"bestsync/internal/wire/codec"
)

// Codec selects the wire encoding a TCP client speaks. The server side needs
// no selection: it auto-detects per connection from the stream's first byte
// (a binary stream opens with codec.Magic, which can never begin a gob
// stream), so one server serves old gob clients and new binary clients at
// once.
type Codec int

const (
	// CodecAuto negotiates: the client opens with the binary prologue and
	// waits for the server to echo it; a legacy server instead kills the
	// connection (the magic byte fails its gob decode), upon which the
	// client redials and speaks plain gob. The default.
	CodecAuto Codec = iota
	// CodecBinary requires the binary codec; dialing a legacy server fails
	// instead of falling back.
	CodecBinary
	// CodecGob speaks legacy encoding/gob framing only — byte-for-byte the
	// pre-codec protocol. The escape hatch for pinning interop with old
	// daemons (and the encoding snapshots keep regardless).
	CodecGob
)

// String implements flag.Value-style display.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return "auto"
	}
}

// ParseCodec parses a -codec flag value: auto | binary | gob.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "auto", "":
		return CodecAuto, nil
	case "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	}
	return CodecAuto, fmt.Errorf("transport: unknown codec %q (want auto, binary or gob)", s)
}

// dialCodec is the process-wide codec preference used by Dial (and therefore
// by runtime.DialDestinations and every daemon redial closure). Auto unless
// a daemon's -codec flag says otherwise.
var dialCodec atomic.Int32

// SetDialCodec sets the codec preference Dial uses. Daemons call it once at
// boot from their -codec flag; the negotiation default (CodecAuto) is right
// for everything except pinning interop tests or talking through middleboxes
// that cannot survive the probe redial.
func SetDialCodec(c Codec) { dialCodec.Store(int32(c)) }

// DialCodecDefault reports the current process-wide codec preference.
func DialCodecDefault() Codec { return Codec(dialCodec.Load()) }

// dialCaps is the process-wide capability mask stamped onto the Hello of
// every outbound dial (TCP and Local alike). Zero — no capabilities — unless
// a daemon opts in, so legacy peers see byte-identical handshakes.
var dialCaps atomic.Uint64

// SetDialCapabilities sets the capability bits Dial advertises in its Hello.
// A hybrid-policy source calls it once at boot with wire.CapCooperative so
// caches know its push promises are trustworthy; everything else leaves the
// default zero mask.
func SetDialCapabilities(caps uint64) { dialCaps.Store(caps) }

// DialCapabilities reports the current process-wide capability mask.
func DialCapabilities() uint64 { return dialCaps.Load() }

// FrameSender is the capability a connection exposes when it can transmit
// pre-encoded binary frames verbatim: the encode-once half of fan-out. A
// Batcher flushes through it when available, so one batch is serialized
// exactly once no matter how it reaches the socket; a fan-out layer can
// share one codec.Frame (Retain per destination) across every connection
// whose cache needs the same batch, dropping the per-destination cost to a
// write syscall.
type FrameSender interface {
	// SendFrame writes one pre-encoded frame. The caller keeps ownership of
	// the frame (release it after the call; retain it per extra holder).
	SendFrame(*codec.Frame) error
	// FramesEnabled reports whether the connection's negotiated encoding
	// matches pre-encoded frames (binary streams only — a gob stream cannot
	// interleave raw frames).
	FramesEnabled() bool
}
