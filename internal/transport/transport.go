// Package transport connects live sources to the cache. Two implementations
// are provided: an in-process channel transport (Local) for embedding the
// whole system in one binary, and a TCP transport (Serve/Dial) using
// encoding/gob framing for the cmd/cachesyncd and cmd/sourceagent daemons.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"bestsync/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: closed")

// SourceConn is a source's connection to the cache.
type SourceConn interface {
	// SendRefresh transmits a refresh message. It may block when the
	// cache-side bandwidth is saturated — that back-pressure is the
	// network queue of the paper's model.
	SendRefresh(wire.Refresh) error
	// Feedback delivers positive-feedback messages from the cache. The
	// channel is closed when the connection closes.
	Feedback() <-chan wire.Feedback
	// Close releases the connection.
	Close() error
}

// CacheEndpoint is the cache's view of all connected sources.
type CacheEndpoint interface {
	// Refreshes delivers incoming refresh messages from every source.
	Refreshes() <-chan wire.Refresh
	// SendFeedback sends positive feedback to one source. Unknown sources
	// are an error; feedback to a disconnected source is dropped.
	SendFeedback(sourceID string) error
	// Sources lists currently connected source ids.
	Sources() []string
	// Close shuts the endpoint down.
	Close() error
}

// Local is an in-process network joining one cache endpoint with any number
// of source connections.
type Local struct {
	mu        sync.Mutex
	refreshes chan wire.Refresh
	feedback  map[string]chan wire.Feedback
	closed    bool
}

// NewLocal creates an in-process network. buffer is the capacity of the
// shared refresh channel — the "network queue"; sends beyond it block until
// the cache drains (back-pressure).
func NewLocal(buffer int) *Local {
	if buffer < 1 {
		buffer = 1
	}
	return &Local{
		refreshes: make(chan wire.Refresh, buffer),
		feedback:  make(map[string]chan wire.Feedback),
	}
}

// Refreshes implements CacheEndpoint.
func (l *Local) Refreshes() <-chan wire.Refresh { return l.refreshes }

// SendFeedback implements CacheEndpoint.
func (l *Local) SendFeedback(sourceID string) error {
	l.mu.Lock()
	ch, ok := l.feedback[sourceID]
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: unknown source %q", sourceID)
	}
	select {
	case ch <- wire.Feedback{}:
	default:
		// A source that has not consumed its previous feedback gains
		// nothing from a second one queued behind it.
	}
	return nil
}

// Sources implements CacheEndpoint.
func (l *Local) Sources() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.feedback))
	for id := range l.feedback {
		out = append(out, id)
	}
	return out
}

// Close implements CacheEndpoint.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	for _, ch := range l.feedback {
		close(ch)
	}
	l.feedback = map[string]chan wire.Feedback{}
	return nil
}

// localConn is a source-side handle onto a Local network.
type localConn struct {
	net  *Local
	id   string
	fb   chan wire.Feedback
	once sync.Once
}

// Dial attaches a new source to the network.
func (l *Local) Dial(sourceID string) (SourceConn, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("transport: empty source id")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, dup := l.feedback[sourceID]; dup {
		return nil, fmt.Errorf("transport: source %q already connected", sourceID)
	}
	fb := make(chan wire.Feedback, 4)
	l.feedback[sourceID] = fb
	return &localConn{net: l, id: sourceID, fb: fb}, nil
}

// SendRefresh implements SourceConn.
func (c *localConn) SendRefresh(r wire.Refresh) error {
	c.net.mu.Lock()
	closed := c.net.closed
	_, connected := c.net.feedback[c.id]
	c.net.mu.Unlock()
	if closed || !connected {
		return ErrClosed
	}
	c.net.refreshes <- r
	return nil
}

// Feedback implements SourceConn.
func (c *localConn) Feedback() <-chan wire.Feedback { return c.fb }

// Close implements SourceConn.
func (c *localConn) Close() error {
	c.once.Do(func() {
		c.net.mu.Lock()
		if ch, ok := c.net.feedback[c.id]; ok {
			close(ch)
			delete(c.net.feedback, c.id)
		}
		c.net.mu.Unlock()
	})
	return nil
}
