// Package transport connects live sources to the cache. Two implementations
// are provided: an in-process channel transport (Local) for embedding the
// whole system in one binary, and a TCP transport (Serve/Dial) using
// encoding/gob framing for the cmd/cachesyncd and cmd/sourceagent daemons.
//
// # Batching
//
// The cache-facing side of every transport delivers wire.RefreshBatch
// envelopes, not individual refreshes: a single SendRefresh travels as a
// batch of one, and SendBatch (or a Batcher wrapping the connection) frames
// many refreshes into one envelope, amortizing the per-message gob encode
// and write syscall across the batch. Batches preserve the order refreshes
// were sent in, and a batch never mixes refreshes from different sources.
//
// # Back-pressure contract
//
// Delivery into the cache is bounded end to end. The shared batch channel
// returned by Batches() has a fixed capacity (the "network queue" of the
// paper's model); when the cache falls behind, the channel fills, the
// transport's reader goroutines stall, TCP windows close, and ultimately
// each source's SendRefresh/SendBatch call blocks. That blocking is the
// protocol's signal that the cache-side bandwidth is saturated — sources
// must not buffer unboundedly around it. A Batcher preserves the contract:
// once its pending buffer reaches the configured batch size, the sending
// goroutine performs the (possibly blocking) flush itself.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: closed")

// InboundBatch is one refresh batch as delivered to the cache, optionally
// paired with the retained wire frame it arrived in. Frame is non-nil only
// when the endpoint was asked to retain frames (FrameRetainer), the batch
// arrived on a binary-codec stream, and the server's validate/stamp pass
// changed nothing — in which case Frame's encoded items correspond 1:1, in
// order, with Refreshes. Ownership of the frame reference transfers to the
// receiver, which must Release it (directly or by handing it to a consumer
// that does).
type InboundBatch struct {
	wire.RefreshBatch
	Frame *codec.Frame
}

// FrameRetainer is implemented by endpoints that can retain inbound binary
// frames alongside the decoded batch (the raw material for splice
// forwarding). Retention is off by default: a leaf cache that never
// re-exports pays nothing for the capability.
type FrameRetainer interface {
	// RetainFrames toggles frame retention for batches decoded after the
	// call. It is safe to call concurrently with the read loops.
	RetainFrames(bool)
}

// SourceConn is a source's connection to the cache.
type SourceConn interface {
	// SendRefresh transmits one refresh message (a batch of one on the
	// wire). It may block when the cache-side bandwidth is saturated —
	// that back-pressure is the network queue of the paper's model.
	SendRefresh(wire.Refresh) error
	// SendBatch transmits several refreshes in one framed envelope,
	// preserving slice order. It blocks under the same back-pressure
	// contract as SendRefresh. Empty batches are a no-op.
	SendBatch([]wire.Refresh) error
	// Feedback delivers positive-feedback messages from the cache. The
	// channel is closed when the connection closes.
	Feedback() <-chan wire.Feedback
	// Close releases the connection.
	Close() error
}

// PollConn is the poll-path extension of SourceConn: a source connection
// that can also receive cache-driven polls and answer them. Both provided
// transports (Local and TCP) implement it, as does a Batcher wrapping one;
// the runtime's poll policies require it and reject connections without it.
// Push-only deployments never touch these methods.
type PollConn interface {
	SourceConn
	// Polls delivers poll requests from the cache. The channel is closed
	// when the connection closes.
	Polls() <-chan wire.Poll
	// SendReply transmits one poll reply (the batched answers to one poll).
	// It may block under the same back-pressure contract as SendRefresh.
	SendReply(wire.PollReply) error
}

// PollEndpoint is the poll-path extension of CacheEndpoint: a cache
// endpoint that can send polls to its connected sources and receive their
// replies. Both provided transports implement it.
type PollEndpoint interface {
	CacheEndpoint
	// SendPoll sends a poll request to one source. Unknown sources are an
	// error. Like feedback, a poll to a source that has not drained its
	// previous one may be dropped (polling is best-effort; the scheduler
	// re-polls on its period).
	SendPoll(sourceID string, p wire.Poll) error
	// Replies delivers incoming poll replies from every source.
	Replies() <-chan wire.PollReply
}

// CacheEndpoint is the cache's view of all connected sources.
type CacheEndpoint interface {
	// Batches delivers incoming refresh batches from every source. A
	// refresh sent individually arrives as a batch of one. The Frame field
	// is nil unless the endpoint retains frames (see FrameRetainer).
	Batches() <-chan InboundBatch
	// SendFeedback sends a positive-feedback message to one source (the
	// cache stamps its CacheID so fan-out sources can attribute it).
	// Unknown sources are an error; feedback to a disconnected source is
	// dropped.
	SendFeedback(sourceID string, fb wire.Feedback) error
	// Sources lists currently connected source ids.
	Sources() []string
	// Close shuts the endpoint down.
	Close() error
}

// Local is an in-process network joining one cache endpoint with any number
// of source connections.
type Local struct {
	mu       sync.Mutex
	batches  chan InboundBatch
	replies  chan wire.PollReply
	feedback map[string]chan wire.Feedback
	polls    map[string]chan wire.Poll
	caps     map[string]uint64 // capability bits advertised at Dial
	closed   bool
}

// NewLocal creates an in-process network. buffer is the capacity of the
// shared batch channel — the "network queue"; sends beyond it block until
// the cache drains (back-pressure). The poll-reply channel shares the same
// capacity.
func NewLocal(buffer int) *Local {
	if buffer < 1 {
		buffer = 1
	}
	return &Local{
		batches:  make(chan InboundBatch, buffer),
		replies:  make(chan wire.PollReply, buffer),
		feedback: make(map[string]chan wire.Feedback),
		polls:    make(map[string]chan wire.Poll),
		caps:     make(map[string]uint64),
	}
}

// Batches implements CacheEndpoint. Local batches never carry a frame:
// nothing was ever encoded, so there is nothing to splice.
func (l *Local) Batches() <-chan InboundBatch { return l.batches }

// Replies implements PollEndpoint.
func (l *Local) Replies() <-chan wire.PollReply { return l.replies }

// SendPoll implements PollEndpoint. Like SendFeedback, the non-blocking
// send happens under the lock so it can never race a concurrent close; a
// source that has not drained its pending polls drops the new one (the
// scheduler re-polls on its period, so a dropped poll only delays one
// observation).
func (l *Local) SendPoll(sourceID string, p wire.Poll) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	ch, ok := l.polls[sourceID]
	if !ok {
		return fmt.Errorf("transport: unknown source %q", sourceID)
	}
	select {
	case ch <- p:
	default:
	}
	return nil
}

// SendFeedback implements CacheEndpoint. The non-blocking send happens
// under the lock so it can never race a concurrent close of the channel.
func (l *Local) SendFeedback(sourceID string, fb wire.Feedback) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	ch, ok := l.feedback[sourceID]
	if !ok {
		return fmt.Errorf("transport: unknown source %q", sourceID)
	}
	select {
	case ch <- fb:
	default:
		// A source that has not consumed its previous feedback gains
		// nothing from a second one queued behind it.
	}
	return nil
}

// PeerCooperates reports whether the named source advertised
// wire.CapCooperative when it dialed (the in-process analogue of the TCP
// Hello capability bit). A hybrid cache consults this before trusting a
// reply's Pushed set.
func (l *Local) PeerCooperates(sourceID string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.caps[sourceID]&wire.CapCooperative != 0
}

// PeerServesPeers reports whether the named source advertised wire.CapPeer
// when it dialed. A poll scheduler consults this before attaching
// known-version hints (wire.Poll.Known), which a pre-peer decoder would
// reject as a bad frame.
func (l *Local) PeerServesPeers(sourceID string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.caps[sourceID]&wire.CapPeer != 0
}

// Sources implements CacheEndpoint.
func (l *Local) Sources() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.feedback))
	for id := range l.feedback {
		out = append(out, id)
	}
	return out
}

// Close implements CacheEndpoint.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	for _, ch := range l.feedback {
		close(ch)
	}
	for _, ch := range l.polls {
		close(ch)
	}
	l.feedback = map[string]chan wire.Feedback{}
	l.polls = map[string]chan wire.Poll{}
	l.caps = map[string]uint64{}
	return nil
}

// localConn is a source-side handle onto a Local network.
type localConn struct {
	net   *Local
	id    string
	fb    chan wire.Feedback
	polls chan wire.Poll
	once  sync.Once
}

// Dial attaches a new source to the network.
func (l *Local) Dial(sourceID string) (SourceConn, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("transport: empty source id")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, dup := l.feedback[sourceID]; dup {
		return nil, fmt.Errorf("transport: source %q already connected", sourceID)
	}
	fb := make(chan wire.Feedback, 4)
	polls := make(chan wire.Poll, 16)
	l.feedback[sourceID] = fb
	l.polls[sourceID] = polls
	l.caps[sourceID] = DialCapabilities()
	return &localConn{net: l, id: sourceID, fb: fb, polls: polls}, nil
}

// SendRefresh implements SourceConn.
func (c *localConn) SendRefresh(r wire.Refresh) error {
	// The one-element slice is freshly owned, so no defensive copy is
	// needed on the unbatched hot path.
	return c.send([]wire.Refresh{r})
}

// SendBatch implements SourceConn.
func (c *localConn) SendBatch(rs []wire.Refresh) error {
	if len(rs) == 0 {
		return nil
	}
	// Copy: the caller (e.g. a Batcher) may reuse the slice after we
	// return, but the batch is consumed asynchronously.
	return c.send(append([]wire.Refresh(nil), rs...))
}

// send transfers ownership of rs to the cache side.
func (c *localConn) send(rs []wire.Refresh) error {
	c.net.mu.Lock()
	closed := c.net.closed
	_, connected := c.net.feedback[c.id]
	c.net.mu.Unlock()
	if closed || !connected {
		return ErrClosed
	}
	c.net.batches <- InboundBatch{RefreshBatch: wire.RefreshBatch{Refreshes: rs, SentUnix: time.Now().UnixNano()}}
	return nil
}

// Feedback implements SourceConn.
func (c *localConn) Feedback() <-chan wire.Feedback { return c.fb }

// Polls implements PollConn.
func (c *localConn) Polls() <-chan wire.Poll { return c.polls }

// SendReply implements PollConn: it transfers the reply to the cache side
// under the same bounded-channel back-pressure as refresh batches.
func (c *localConn) SendReply(r wire.PollReply) error {
	c.net.mu.Lock()
	closed := c.net.closed
	_, connected := c.net.feedback[c.id]
	c.net.mu.Unlock()
	if closed || !connected {
		return ErrClosed
	}
	// Copy the items: the reply is consumed asynchronously and the caller
	// may reuse its slice (same contract as SendBatch).
	r.Items = append([]wire.PollItem(nil), r.Items...)
	c.net.replies <- r
	return nil
}

// Close implements SourceConn.
func (c *localConn) Close() error {
	c.once.Do(func() {
		c.net.mu.Lock()
		if ch, ok := c.net.feedback[c.id]; ok {
			close(ch)
			delete(c.net.feedback, c.id)
		}
		if ch, ok := c.net.polls[c.id]; ok {
			close(ch)
			delete(c.net.polls, c.id)
		}
		delete(c.net.caps, c.id)
		c.net.mu.Unlock()
	})
	return nil
}
