package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"bestsync/internal/wire"
)

// tcpServer implements CacheEndpoint (and PollEndpoint) over TCP. Each
// source opens one connection, sends a wire.Hello, then streams
// wire.CacheBound envelopes — each carrying either a refresh batch (push
// policy) or a poll reply (poll policies); a single refresh travels as a
// batch of one. The server streams wire.SourceBound envelopes (feedback or
// polls) the other way on the same connection.
type tcpServer struct {
	ln      net.Listener
	batches chan wire.RefreshBatch
	replies chan wire.PollReply

	mu     sync.Mutex
	conns  map[string]*tcpServerConn
	closed bool
	wg     sync.WaitGroup
}

type tcpServerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
}

// Serve wraps a listener as a cache endpoint and starts accepting source
// connections. buffer sizes the shared batch channel (the back-pressure
// point standing in for network queueing).
func Serve(ln net.Listener, buffer int) CacheEndpoint {
	if buffer < 1 {
		buffer = 1
	}
	s := &tcpServer{
		ln:      ln,
		batches: make(chan wire.RefreshBatch, buffer),
		replies: make(chan wire.PollReply, buffer),
		conns:   map[string]*tcpServerConn{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *tcpServer) handle(conn net.Conn) {
	defer s.wg.Done()
	dec := gob.NewDecoder(conn)
	var hello wire.Hello
	if err := dec.Decode(&hello); err != nil || hello.Validate() != nil {
		conn.Close()
		return
	}
	sc := &tcpServerConn{conn: conn, enc: gob.NewEncoder(conn)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := s.conns[hello.SourceID]; dup {
		old.conn.Close() // newest connection wins (source reconnect)
	}
	s.conns[hello.SourceID] = sc
	s.mu.Unlock()

	for {
		var env wire.CacheBound
		if err := dec.Decode(&env); err != nil {
			break
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			break
		}
		switch {
		case env.Batch != nil:
			b := *env.Batch
			// Drop malformed refreshes but keep the rest of the batch; the
			// stream identity is authoritative for every refresh.
			valid := b.Refreshes[:0]
			for _, r := range b.Refreshes {
				if r.Validate() != nil {
					continue
				}
				r.SourceID = hello.SourceID
				valid = append(valid, r)
			}
			b.Refreshes = valid
			if len(b.Refreshes) == 0 {
				continue
			}
			s.batches <- b
		case env.Reply != nil:
			rp := *env.Reply
			rp.SourceID = hello.SourceID // stream identity is authoritative
			valid := rp.Items[:0]
			for _, it := range rp.Items {
				if it.ObjectID == "" {
					continue
				}
				valid = append(valid, it)
			}
			rp.Items = valid
			s.replies <- rp
		}
	}
	conn.Close()
	s.mu.Lock()
	if cur, ok := s.conns[hello.SourceID]; ok && cur == sc {
		delete(s.conns, hello.SourceID)
	}
	s.mu.Unlock()
}

// Batches implements CacheEndpoint.
func (s *tcpServer) Batches() <-chan wire.RefreshBatch { return s.batches }

// Replies implements PollEndpoint.
func (s *tcpServer) Replies() <-chan wire.PollReply { return s.replies }

// sendDown encodes one cache→source envelope on the named source's stream.
func (s *tcpServer) sendDown(sourceID string, env wire.SourceBound) error {
	s.mu.Lock()
	sc, ok := s.conns[sourceID]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: unknown source %q", sourceID)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.enc.Encode(env)
}

// SendFeedback implements CacheEndpoint.
func (s *tcpServer) SendFeedback(sourceID string, fb wire.Feedback) error {
	return s.sendDown(sourceID, wire.SourceBound{Feedback: &fb})
}

// SendPoll implements PollEndpoint.
func (s *tcpServer) SendPoll(sourceID string, p wire.Poll) error {
	return s.sendDown(sourceID, wire.SourceBound{Poll: &p})
}

// Sources implements CacheEndpoint.
func (s *tcpServer) Sources() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	return out
}

// Close implements CacheEndpoint.
func (s *tcpServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = map[string]*tcpServerConn{}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sc := range conns {
		sc.conn.Close()
	}
	return err
}

// tcpClient implements SourceConn (and PollConn) over TCP.
type tcpClient struct {
	conn  net.Conn
	enc   *gob.Encoder
	fb    chan wire.Feedback
	polls chan wire.Poll
	mu    sync.Mutex
	once  sync.Once
}

// Dial connects a source to a cache daemon at addr.
func Dial(addr, sourceID string) (SourceConn, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("transport: empty source id")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &tcpClient{
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		fb:    make(chan wire.Feedback, 4),
		polls: make(chan wire.Poll, 16),
	}
	if err := c.enc.Encode(wire.Hello{SourceID: sourceID}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// DialAll connects one source to several cache daemons, returning one
// connection per address in order — the raw material for a fan-out source
// (runtime.NewFanoutSource), which runs an independent sync session over
// each connection. If any dial fails, the connections established so far
// are closed and the error is returned. Wrap each returned connection in
// its own Batcher when batching is wanted: batches never span caches.
func DialAll(addrs []string, sourceID string) ([]SourceConn, error) {
	conns := make([]SourceConn, 0, len(addrs))
	for _, addr := range addrs {
		conn, err := Dial(addr, sourceID)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
		}
		conns = append(conns, conn)
	}
	return conns, nil
}

func (c *tcpClient) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var env wire.SourceBound
		if err := dec.Decode(&env); err != nil {
			break
		}
		switch {
		case env.Feedback != nil:
			select {
			case c.fb <- *env.Feedback:
			default:
			}
		case env.Poll != nil:
			select {
			case c.polls <- *env.Poll:
			default:
				// A source that has not drained its pending polls gains
				// nothing from a deeper backlog; the cache re-polls on its
				// period.
			}
		}
	}
	c.closeConn()
	// readLoop is the only sender on fb and polls, so it is the only safe
	// closer: Close just tears down the connection, which lands here.
	close(c.fb)
	close(c.polls)
}

// SendRefresh implements SourceConn.
func (c *tcpClient) SendRefresh(r wire.Refresh) error {
	return c.SendBatch([]wire.Refresh{r})
}

// SendBatch implements SourceConn.
func (c *tcpClient) SendBatch(rs []wire.Refresh) error {
	if len(rs) == 0 {
		return nil
	}
	b := wire.RefreshBatch{Refreshes: rs, SentUnix: time.Now().UnixNano()}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(wire.CacheBound{Batch: &b})
}

// SendReply implements PollConn.
func (c *tcpClient) SendReply(r wire.PollReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(wire.CacheBound{Reply: &r})
}

// Feedback implements SourceConn.
func (c *tcpClient) Feedback() <-chan wire.Feedback { return c.fb }

// Polls implements PollConn.
func (c *tcpClient) Polls() <-chan wire.Poll { return c.polls }

func (c *tcpClient) closeConn() {
	c.once.Do(func() {
		c.conn.Close()
	})
}

// Close implements SourceConn. The feedback channel closes once the read
// loop observes the dead connection.
func (c *tcpClient) Close() error {
	c.closeConn()
	return nil
}
