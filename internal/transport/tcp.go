package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// tcpServer implements CacheEndpoint (and PollEndpoint) over TCP. Each
// source opens one connection, sends a wire.Hello, then streams
// wire.CacheBound envelopes — each carrying either a refresh batch (push
// policy) or a poll reply (poll policies); a single refresh travels as a
// batch of one. The server streams wire.SourceBound envelopes (feedback or
// polls) the other way on the same connection.
//
// Two encodings coexist. Binary-codec streams open with the two-byte
// prologue {codec.Magic, codec.Version}; legacy streams open with a gob
// frame. codec.Magic can never begin a gob stream, so the server detects the
// encoding from the first byte of each connection and serves old and new
// clients side by side — no flag, no restart ordering between daemons.
type tcpServer struct {
	ln      net.Listener
	batches chan InboundBatch
	replies chan wire.PollReply
	retain  atomic.Bool // FrameRetainer: keep inbound binary batch frames

	mu     sync.Mutex
	conns  map[string]*tcpServerConn
	closed bool
	wg     sync.WaitGroup
}

type tcpServerConn struct {
	conn net.Conn
	caps uint64 // Hello capability bits; written once before registration
	mu   sync.Mutex
	enc  *gob.Encoder // legacy streams
	benc codec.Encoder
	wbuf []byte // reusable frame buffer, guarded by mu
	bin  bool
}

// sendEnv writes one cache→source envelope in the stream's negotiated
// encoding. A binary encode error (malformed envelope) is reported without
// writing anything, so the stream stays framed; a write error means an
// unknowable number of frame bytes reached the socket, so the connection is
// closed — the client's read loop observes it and redials.
func (sc *tcpServerConn) sendEnv(env wire.SourceBound) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if !sc.bin {
		return sc.enc.Encode(env)
	}
	buf, err := sc.benc.AppendSourceBound(sc.wbuf[:0], env)
	sc.wbuf = buf
	if err != nil {
		return err
	}
	if _, err := sc.conn.Write(buf); err != nil {
		sc.conn.Close()
		return err
	}
	return nil
}

// Serve wraps a listener as a cache endpoint and starts accepting source
// connections. buffer sizes the shared batch channel (the back-pressure
// point standing in for network queueing).
func Serve(ln net.Listener, buffer int) CacheEndpoint {
	if buffer < 1 {
		buffer = 1
	}
	s := &tcpServer{
		ln:      ln,
		batches: make(chan InboundBatch, buffer),
		replies: make(chan wire.PollReply, buffer),
		conns:   map[string]*tcpServerConn{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// envelopeReader abstracts the per-connection decode loop over the two
// encodings. Every error it returns is terminal: the caller closes the
// connection (a binary stream's frame boundary is unknowable after a bad
// frame, and a gob stream is equally unrecoverable after a decode error).
type envelopeReader interface {
	// readEnvelope returns the decoded envelope and, when the stream is
	// binary and retention is on, the retained batch frame (nil otherwise).
	readEnvelope() (wire.CacheBound, *codec.Frame, error)
}

type gobEnvelopeReader struct{ dec *gob.Decoder }

func (g gobEnvelopeReader) readEnvelope() (wire.CacheBound, *codec.Frame, error) {
	var env wire.CacheBound
	err := g.dec.Decode(&env)
	return env, nil, err
}

type binEnvelopeReader struct {
	dec    *codec.Decoder
	retain *atomic.Bool
}

func (b binEnvelopeReader) readEnvelope() (wire.CacheBound, *codec.Frame, error) {
	if b.retain.Load() {
		return b.dec.ReadCacheBoundRetained()
	}
	env, err := b.dec.ReadCacheBound()
	return env, nil, err
}

// handshake performs the per-connection encoding detection and Hello
// exchange, returning the upward decode loop reader. Binary clients get the
// prologue echoed back as the accept signal — written before the connection
// is registered, so it always precedes any sendDown frame.
func (s *tcpServer) handshake(conn net.Conn, br *bufio.Reader, sc *tcpServerConn) (wire.Hello, envelopeReader, error) {
	first, err := br.Peek(1)
	if err != nil {
		return wire.Hello{}, nil, err
	}
	if first[0] != codec.Magic {
		// Legacy stream: plain gob from the first byte, exactly the
		// pre-codec protocol.
		dec := gob.NewDecoder(br)
		var hello wire.Hello
		if err := dec.Decode(&hello); err != nil {
			return wire.Hello{}, nil, err
		}
		if err := hello.Validate(); err != nil {
			return wire.Hello{}, nil, err
		}
		sc.enc = gob.NewEncoder(conn)
		return hello, gobEnvelopeReader{dec}, nil
	}
	var prologue [2]byte
	if _, err := io.ReadFull(br, prologue[:]); err != nil {
		return wire.Hello{}, nil, err
	}
	if prologue[1] != codec.Version {
		// A future client speaking a version this daemon cannot parse;
		// closing makes it fall back to gob, which both sides share.
		return wire.Hello{}, nil, fmt.Errorf("transport: unsupported codec version 0x%02x", prologue[1])
	}
	dec := codec.NewDecoder(br)
	hello, err := dec.ReadHello()
	if err != nil {
		return wire.Hello{}, nil, err
	}
	if err := hello.Validate(); err != nil {
		return wire.Hello{}, nil, err
	}
	if _, err := conn.Write([]byte{codec.Magic, codec.Version}); err != nil {
		return wire.Hello{}, nil, err
	}
	sc.bin = true
	return hello, binEnvelopeReader{dec: dec, retain: &s.retain}, nil
}

// RetainFrames implements FrameRetainer. Retention applies to envelopes
// decoded after the call; in-flight envelopes on other goroutines keep the
// mode they were read under.
func (s *tcpServer) RetainFrames(on bool) { s.retain.Store(on) }

// readBufSize sizes the per-connection read buffer: big enough that a
// batch-64 frame arrives in one read(2) instead of a dozen.
const readBufSize = 64 << 10

func (s *tcpServer) handle(conn net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(conn, readBufSize)
	sc := &tcpServerConn{conn: conn}
	hello, rd, err := s.handshake(conn, br, sc)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := s.conns[hello.SourceID]; dup {
		old.conn.Close() // newest connection wins (source reconnect)
	}
	sc.caps = hello.Capabilities
	s.conns[hello.SourceID] = sc
	s.mu.Unlock()

	for {
		env, frame, err := rd.readEnvelope()
		if err != nil {
			break // terminal for both codecs: close below
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			if frame != nil {
				frame.Release()
			}
			break
		}
		switch {
		case env.Batch != nil:
			b := *env.Batch
			// Drop malformed refreshes but keep the rest of the batch; the
			// stream identity is authoritative for every refresh. Filtering
			// is in place and copies nothing until a refresh is actually
			// dropped; the identity stamp skips refreshes already carrying
			// it (with the decoder's string interning that comparison is a
			// pointer check), so a well-formed batch passes through without
			// a single struct copy or pointer write.
			//
			// Any mutation — a dropped refresh or a re-stamped SourceID —
			// desynchronizes the retained frame from the batch, so the frame
			// is released and the batch travels frameless (splice falls back
			// to re-encode). The invariant downstream code relies on: a
			// non-nil Frame encodes exactly Refreshes, in order.
			n := 0
			mutated := false
			for i := range b.Refreshes {
				r := &b.Refreshes[i]
				// Validate's three checks, inlined: the method has a value
				// receiver, and copying every refresh to validate it costs
				// more than the validation.
				if r.SourceID == "" || r.ObjectID == "" || r.Hops < 0 {
					mutated = true
					continue
				}
				if r.SourceID != hello.SourceID {
					r.SourceID = hello.SourceID
					mutated = true
				}
				if n != i {
					b.Refreshes[n] = *r
				}
				n++
			}
			b.Refreshes = b.Refreshes[:n]
			if frame != nil && (mutated || n == 0) {
				frame.Release()
				frame = nil
			}
			if len(b.Refreshes) == 0 {
				continue
			}
			s.batches <- InboundBatch{RefreshBatch: b, Frame: frame}
		case env.Reply != nil:
			rp := *env.Reply
			rp.SourceID = hello.SourceID // stream identity is authoritative
			valid := rp.Items[:0]
			for _, it := range rp.Items {
				if it.ObjectID == "" {
					continue
				}
				valid = append(valid, it)
			}
			rp.Items = valid
			s.replies <- rp
		}
	}
	conn.Close()
	s.mu.Lock()
	if cur, ok := s.conns[hello.SourceID]; ok && cur == sc {
		delete(s.conns, hello.SourceID)
	}
	s.mu.Unlock()
}

// Batches implements CacheEndpoint.
func (s *tcpServer) Batches() <-chan InboundBatch { return s.batches }

// Replies implements PollEndpoint.
func (s *tcpServer) Replies() <-chan wire.PollReply { return s.replies }

// sendDown encodes one cache→source envelope on the named source's stream.
func (s *tcpServer) sendDown(sourceID string, env wire.SourceBound) error {
	s.mu.Lock()
	sc, ok := s.conns[sourceID]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: unknown source %q", sourceID)
	}
	return sc.sendEnv(env)
}

// SendFeedback implements CacheEndpoint.
func (s *tcpServer) SendFeedback(sourceID string, fb wire.Feedback) error {
	return s.sendDown(sourceID, wire.SourceBound{Feedback: &fb})
}

// SendPoll implements PollEndpoint.
func (s *tcpServer) SendPoll(sourceID string, p wire.Poll) error {
	return s.sendDown(sourceID, wire.SourceBound{Poll: &p})
}

// PeerCooperates reports whether the named source's current connection
// advertised wire.CapCooperative in its Hello. A hybrid cache consults this
// before trusting a reply's Pushed set; legacy sources advertise nothing and
// therefore cannot switch a cache's polling off.
func (s *tcpServer) PeerCooperates(sourceID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.conns[sourceID]
	return ok && sc.caps&wire.CapCooperative != 0
}

// PeerServesPeers reports whether the named source's current connection
// advertised wire.CapPeer in its Hello. A poll scheduler consults this
// before attaching known-version hints (wire.Poll.Known) to targeted
// polls; a pre-peer decoder on the answering side would reject the
// trailing Known segment as a bad frame, so the hints are capability-gated.
func (s *tcpServer) PeerServesPeers(sourceID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.conns[sourceID]
	return ok && sc.caps&wire.CapPeer != 0
}

// Sources implements CacheEndpoint.
func (s *tcpServer) Sources() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	return out
}

// Close implements CacheEndpoint.
func (s *tcpServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = map[string]*tcpServerConn{}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sc := range conns {
		sc.conn.Close()
	}
	return err
}

// tcpClient implements SourceConn (and PollConn) over TCP, in either
// encoding. Binary clients additionally implement FrameSender, the
// encode-once path a Batcher uses to hand over pre-encoded batches.
type tcpClient struct {
	conn  net.Conn
	br    *bufio.Reader
	enc   *gob.Encoder // legacy streams
	benc  codec.Encoder
	wbuf  []byte // reusable frame buffer, guarded by mu
	bin   bool
	fb    chan wire.Feedback
	polls chan wire.Poll
	mu    sync.Mutex
	once  sync.Once
}

// handshakeTimeout bounds how long a dialing client waits for the binary
// accept echo. A legacy server never sends it — it either kills the
// connection when codec.Magic fails its gob decode (immediate error here) or
// blocks waiting for the rest of what it misparsed as a huge gob message
// (this deadline breaks that stall) — and in both cases the client falls
// back to a fresh gob connection.
const handshakeTimeout = 3 * time.Second

// Dial connects a source to a cache daemon at addr using the process-wide
// codec preference (SetDialCodec; CodecAuto unless a -codec flag said
// otherwise).
func Dial(addr, sourceID string) (SourceConn, error) {
	return DialCodec(addr, sourceID, DialCodecDefault())
}

// DialCodec connects with an explicit codec choice. CodecAuto attempts the
// binary handshake and transparently redials in gob when the far side does
// not speak it; CodecBinary fails instead of falling back; CodecGob skips
// the probe and speaks the legacy protocol byte-for-byte.
func DialCodec(addr, sourceID string, pref Codec) (SourceConn, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("transport: empty source id")
	}
	if pref != CodecGob {
		c, err := dialBinary(addr, sourceID)
		if err == nil {
			return c, nil
		}
		if pref == CodecBinary {
			return nil, err
		}
		// Auto: anything that went wrong after connecting — reset, EOF,
		// echo timeout, garbled echo — reads as "far side speaks gob";
		// dial errors proper (no listener) are not worth a second attempt
		// but redialing is harmless and keeps this branch simple.
	}
	return dialGob(addr, sourceID)
}

func newTCPClient(conn net.Conn) *tcpClient {
	return &tcpClient{
		conn:  conn,
		fb:    make(chan wire.Feedback, 4),
		polls: make(chan wire.Poll, 16),
	}
}

// dialBinary performs the binary handshake: prologue + Hello frame in one
// write, then the server's prologue echo as the accept signal.
func dialBinary(addr, sourceID string) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := newTCPClient(conn)
	c.bin = true
	buf := append(c.wbuf[:0], codec.Magic, codec.Version)
	c.wbuf = c.benc.AppendHello(buf, wire.Hello{SourceID: sourceID, Capabilities: DialCapabilities()})
	if _, err := conn.Write(c.wbuf); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	c.br = bufio.NewReaderSize(conn, readBufSize)
	var echo [2]byte
	if _, err := io.ReadFull(c.br, echo[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: no binary-codec accept from %s: %w", addr, err)
	}
	if echo[0] != codec.Magic || echo[1] != codec.Version {
		conn.Close()
		return nil, fmt.Errorf("transport: bad binary-codec accept from %s: %x", addr, echo)
	}
	conn.SetReadDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// dialGob opens a legacy gob stream, byte-for-byte the pre-codec protocol.
func dialGob(addr, sourceID string) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := newTCPClient(conn)
	c.enc = gob.NewEncoder(conn)
	if err := c.enc.Encode(wire.Hello{SourceID: sourceID, Capabilities: DialCapabilities()}); err != nil {
		conn.Close()
		return nil, err
	}
	c.br = bufio.NewReader(conn)
	go c.readLoop()
	return c, nil
}

// dialAllConcurrency bounds DialAll's parallel connection attempts: enough
// to collapse a large fan-out boot into a few connect round-trips without
// an unbounded goroutine/file-descriptor burst.
const dialAllConcurrency = 64

// DialAll connects one source to several cache daemons, returning one
// connection per address in order — the raw material for a fan-out source
// (runtime.NewFanoutSource), which runs an independent sync session over
// each connection. Addresses are dialed concurrently (bounded); if any dial
// fails, every connection established is closed and the first error in
// address order is returned. Wrap each returned connection in its own
// Batcher when batching is wanted: batches never span caches.
func DialAll(addrs []string, sourceID string) ([]SourceConn, error) {
	conns := make([]SourceConn, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, dialAllConcurrency)
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := Dial(addr, sourceID)
			if err != nil {
				errs[i] = err
				return
			}
			conns[i] = c
		}(i, addr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			return nil, fmt.Errorf("transport: dialing %s: %w", addrs[i], err)
		}
	}
	return conns, nil
}

func (c *tcpClient) readLoop() {
	var rd interface {
		readSourceBound() (wire.SourceBound, error)
	}
	if c.bin {
		rd = binSourceBoundReader{codec.NewDecoder(c.br)}
	} else {
		rd = gobSourceBoundReader{gob.NewDecoder(c.br)}
	}
	for {
		env, err := rd.readSourceBound()
		if err != nil {
			break // terminal for both codecs: close below
		}
		switch {
		case env.Feedback != nil:
			select {
			case c.fb <- *env.Feedback:
			default:
			}
		case env.Poll != nil:
			select {
			case c.polls <- *env.Poll:
			default:
				// A source that has not drained its pending polls gains
				// nothing from a deeper backlog; the cache re-polls on its
				// period.
			}
		}
	}
	c.closeConn()
	// readLoop is the only sender on fb and polls, so it is the only safe
	// closer: Close just tears down the connection, which lands here.
	close(c.fb)
	close(c.polls)
}

type gobSourceBoundReader struct{ dec *gob.Decoder }

func (g gobSourceBoundReader) readSourceBound() (wire.SourceBound, error) {
	var env wire.SourceBound
	err := g.dec.Decode(&env)
	return env, err
}

type binSourceBoundReader struct{ dec *codec.Decoder }

func (b binSourceBoundReader) readSourceBound() (wire.SourceBound, error) {
	return b.dec.ReadSourceBound()
}

// SendRefresh implements SourceConn.
func (c *tcpClient) SendRefresh(r wire.Refresh) error {
	return c.SendBatch([]wire.Refresh{r})
}

// writeFrame writes pre-framed bytes under the send lock. A write error
// closes the connection: an unknowable number of frame bytes reached the
// socket, so the stream is no longer framed and the read loop must wind the
// connection down rather than let a later send interleave into a torn frame.
func (c *tcpClient) writeFrame(buf []byte) error {
	if _, err := c.conn.Write(buf); err != nil {
		c.closeConn()
		return err
	}
	return nil
}

// SendBatch implements SourceConn.
func (c *tcpClient) SendBatch(rs []wire.Refresh) error {
	if len(rs) == 0 {
		return nil
	}
	b := wire.RefreshBatch{Refreshes: rs, SentUnix: time.Now().UnixNano()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.bin {
		return c.enc.Encode(wire.CacheBound{Batch: &b})
	}
	c.wbuf = c.benc.AppendBatch(c.wbuf[:0], b)
	return c.writeFrame(c.wbuf)
}

// SendFrame implements FrameSender: the pre-encoded bytes go to the socket
// verbatim, so a batch encoded once (codec.NewBatchFrame) fans out to any
// number of binary connections without re-serializing.
func (c *tcpClient) SendFrame(f *codec.Frame) error {
	if !c.bin {
		return fmt.Errorf("transport: connection did not negotiate the binary codec")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeFrame(f.Bytes())
}

// FramesEnabled implements FrameSender.
func (c *tcpClient) FramesEnabled() bool { return c.bin }

// SendReply implements PollConn.
func (c *tcpClient) SendReply(r wire.PollReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.bin {
		return c.enc.Encode(wire.CacheBound{Reply: &r})
	}
	c.wbuf = c.benc.AppendReply(c.wbuf[:0], r)
	return c.writeFrame(c.wbuf)
}

// Feedback implements SourceConn.
func (c *tcpClient) Feedback() <-chan wire.Feedback { return c.fb }

// Polls implements PollConn.
func (c *tcpClient) Polls() <-chan wire.Poll { return c.polls }

func (c *tcpClient) closeConn() {
	c.once.Do(func() {
		c.conn.Close()
	})
}

// Close implements SourceConn. The feedback channel closes once the read
// loop observes the dead connection.
func (c *tcpClient) Close() error {
	c.closeConn()
	return nil
}
