package transport

import (
	"fmt"
	"sync"
	"time"

	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// BatcherConfig tunes a Batcher.
type BatcherConfig struct {
	// MaxBatch is the batch size that triggers an immediate flush; the
	// goroutine whose send fills the batch performs the flush itself, so
	// back-pressure from the cache still lands on the sender. Default 64.
	MaxBatch int
	// FlushEvery bounds how long a partial batch may sit before it is
	// flushed by the background timer, i.e. the extra latency batching may
	// add to a refresh. Default 5 ms.
	FlushEvery time.Duration
}

// NewBatcher wraps conn so that individual SendRefresh calls are coalesced
// into wire.RefreshBatch envelopes: a flush happens as soon as MaxBatch
// refreshes are pending, or after FlushEvery for partial batches. Refresh
// order is preserved. Closing the Batcher flushes whatever is pending and
// then closes the underlying connection.
//
// A flush error is returned to the send that triggered it; errors from
// timer-driven flushes are sticky and surface on the next send — until a
// later flush succeeds, which clears the error (a delivered batch proves
// the connection recovered, so new sends must be accepted again).
//
// Durability caveat: through a Batcher, a nil SendRefresh/SendBatch return
// means "accepted for batching", not "delivered" — a caller that commits
// protocol state on send success (runtime's sync sessions) therefore has a
// window of up to MaxBatch refreshes that a dying connection can lose.
// Failed batches are re-buffered and retried (last at Close), so the loss
// is confined to connections that never recover — the same guarantee as
// data in a kernel socket buffer when the peer dies. Deployments that need
// the strict commit-after-send semantics use the connection unbatched.
func NewBatcher(conn SourceConn, cfg BatcherConfig) SourceConn {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 5 * time.Millisecond
	}
	b := &batcher{
		conn: conn,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

type batcher struct {
	conn SourceConn
	cfg  BatcherConfig

	mu      sync.Mutex // guards pending, err, closed
	pending []wire.Refresh
	err     error
	closed  bool

	flushMu sync.Mutex // serializes flushes so batches stay in order

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// SendRefresh implements SourceConn.
func (b *batcher) SendRefresh(r wire.Refresh) error {
	return b.append([]wire.Refresh{r})
}

// SendBatch implements SourceConn.
func (b *batcher) SendBatch(rs []wire.Refresh) error {
	if len(rs) == 0 {
		return nil
	}
	return b.append(rs)
}

func (b *batcher) append(rs []wire.Refresh) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	b.pending = append(b.pending, rs...)
	full := len(b.pending) >= b.cfg.MaxBatch
	b.mu.Unlock()
	if full {
		return b.flush()
	}
	return nil
}

// flush sends everything pending as one batch. Concurrent callers queue on
// flushMu, so a blocked downstream send stalls every sender — the
// back-pressure contract of the package doc.
//
// A failed batch is re-buffered (in order) rather than discarded: callers
// that were told their refresh was accepted must not lose it to a flush
// that failed after the fact, so the batch stays pending for later flush
// attempts — including the final one in Close. Growth is bounded: while
// the sticky error is set, new sends are rejected before buffering.
//
// A successful flush clears the sticky error: every flush drains the whole
// pending buffer (a failed batch re-prepends to it), so success proves the
// re-buffered backlog reached the connection and the transient fault is
// over. Without the clear, one failed timer-driven flush would poison the
// Batcher permanently — every future send erroring on a healthy connection
// (and, without a Redial hook, wedging the owning session forever).
func (b *batcher) flush() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	rs := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(rs) == 0 {
		return nil
	}
	if err := b.sendBatch(rs); err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.pending = append(rs, b.pending...)
		b.mu.Unlock()
		return err
	}
	b.mu.Lock()
	b.err = nil
	b.mu.Unlock()
	return nil
}

// sendBatch hands the batch to the connection, pre-encoded when it can take
// one: a binary-codec connection (FrameSender) receives a pooled
// codec.Frame, so the serialization cost is paid exactly once per batch —
// here, under flushMu — instead of per envelope inside the connection, and
// the same Frame shape lets a fan-out layer share one encoding across every
// destination holding the same batch.
func (b *batcher) sendBatch(rs []wire.Refresh) error {
	if fs, ok := b.conn.(FrameSender); ok && fs.FramesEnabled() {
		f := codec.NewBatchFrame(rs, time.Now().UnixNano())
		err := fs.SendFrame(f)
		f.Release()
		return err
	}
	return b.conn.SendBatch(rs)
}

func (b *batcher) loop() {
	defer close(b.done)
	ticker := time.NewTicker(b.cfg.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			b.flush() // sticky error surfaces on the next send
		}
	}
}

// Feedback implements SourceConn.
func (b *batcher) Feedback() <-chan wire.Feedback { return b.conn.Feedback() }

// closedPolls is the poll channel handed out when the wrapped connection
// does not support polls: permanently closed, so a poll-mode session treats
// the connection as unable to serve and falls into its redial path instead
// of blocking forever.
var closedPolls = func() chan wire.Poll {
	ch := make(chan wire.Poll)
	close(ch)
	return ch
}()

// Polls implements PollConn by delegation. Poll requests are not batched —
// they are cache-paced and already amortized (one Poll names many objects).
func (b *batcher) Polls() <-chan wire.Poll {
	if pc, ok := b.conn.(PollConn); ok {
		return pc.Polls()
	}
	return closedPolls
}

// SendReply implements PollConn by delegation: a reply is already a batch
// (all answers to one poll travel in one envelope), so it bypasses the
// refresh coalescing buffer entirely.
func (b *batcher) SendReply(r wire.PollReply) error {
	pc, ok := b.conn.(PollConn)
	if !ok {
		return fmt.Errorf("transport: wrapped connection does not support polls")
	}
	return pc.SendReply(r)
}

// closeFlushWait bounds how long Close waits for the final flush before
// tearing the connection down anyway: a stalled peer (closed TCP window,
// cache that stopped draining) must not wedge shutdown.
const closeFlushWait = time.Second

// Close implements SourceConn: reject further sends, attempt a final flush
// of whatever is pending (bounded by closeFlushWait), then close the
// wrapped connection — which also unblocks a flush stuck in a TCP write.
// A failed or timed-out final flush surfaces in the returned error.
func (b *batcher) Close() error {
	var err error
	b.once.Do(func() {
		close(b.stop)
		<-b.done
		// Mark closed before flushing so a send racing Close gets
		// ErrClosed instead of a silently dropped refresh.
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		flushErr := make(chan error, 1)
		go func() { flushErr <- b.flush() }()
		select {
		case err = <-flushErr:
		case <-time.After(closeFlushWait):
			err = fmt.Errorf("transport: close timed out flushing pending batch")
		}
		if cerr := b.conn.Close(); err == nil {
			err = cerr
		}
	})
	return err
}
