// Package alloc implements the Section 7 bandwidth-share allocation used
// whenever one budget must be divided among several consumers: the
// simulator's competitive mode (internal/competitive builds its Ψ-share
// options on these primitives) and the live fan-out source
// (internal/runtime), which splits one source-side send budget across its
// per-cache sync sessions.
//
// Shares are rates, not reservations: a consumer that does not spend its
// share leaves the bandwidth unused. The allocators only decide the split.
//
// docs/algorithm-specifications.md §7 specifies the fan-out share
// allocation contract.
package alloc

// Equal divides total into n equal shares (Section 7, option 1). A
// non-positive total yields all-zero shares; n ≤ 0 yields nil.
func Equal(total float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	shares := make([]float64, n)
	if total <= 0 {
		return shares
	}
	each := total / float64(n)
	for i := range shares {
		shares[i] = each
	}
	return shares
}

// Proportional divides total in proportion to the given nonnegative
// weights (Section 7, options 2 and 3 expressed as rates: weights may be
// cached-object counts, contribution scores, or operator-assigned cache
// priorities). Negative weights count as zero. When every weight is zero
// (nothing to apportion by) the split falls back to equal shares, so a
// caller that passes default-constructed weights still gets a usable
// allocation.
func Proportional(total float64, weights []float64) []float64 {
	shares := make([]float64, len(weights))
	if total <= 0 || len(weights) == 0 {
		return shares
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		return Equal(total, len(weights))
	}
	for i, w := range weights {
		if w > 0 {
			shares[i] = total * w / sum
		}
	}
	return shares
}
