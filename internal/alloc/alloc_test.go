package alloc

import (
	"math"
	"testing"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestEqual(t *testing.T) {
	shares := Equal(90, 3)
	if len(shares) != 3 {
		t.Fatalf("len = %d, want 3", len(shares))
	}
	for i, s := range shares {
		if s != 30 {
			t.Errorf("share[%d] = %v, want 30", i, s)
		}
	}
	if got := Equal(90, 0); got != nil {
		t.Errorf("Equal(90, 0) = %v, want nil", got)
	}
	for _, s := range Equal(-5, 4) {
		if s != 0 {
			t.Errorf("negative total produced share %v", s)
		}
	}
}

func TestProportional(t *testing.T) {
	shares := Proportional(100, []float64{1, 3})
	if shares[0] != 25 || shares[1] != 75 {
		t.Errorf("shares = %v, want [25 75]", shares)
	}
	if got := sum(shares); math.Abs(got-100) > 1e-12 {
		t.Errorf("shares sum to %v, want 100", got)
	}
}

func TestProportionalNegativeWeightIsZero(t *testing.T) {
	shares := Proportional(100, []float64{-2, 1, 1})
	if shares[0] != 0 {
		t.Errorf("negative weight got share %v", shares[0])
	}
	if shares[1] != 50 || shares[2] != 50 {
		t.Errorf("shares = %v, want [0 50 50]", shares)
	}
}

func TestProportionalZeroWeightsFallBackToEqual(t *testing.T) {
	shares := Proportional(60, []float64{0, 0, 0})
	for i, s := range shares {
		if s != 20 {
			t.Errorf("share[%d] = %v, want 20 (equal fallback)", i, s)
		}
	}
}

func TestProportionalDegenerate(t *testing.T) {
	if got := Proportional(0, []float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("zero total gave %v", got)
	}
	if got := Proportional(10, nil); len(got) != 0 {
		t.Errorf("nil weights gave %v", got)
	}
}

// TestSharesConserveTotal is the budget invariant the live fan-out source
// relies on: however the weights look, the shares never exceed the total.
func TestSharesConserveTotal(t *testing.T) {
	cases := [][]float64{
		{1, 1, 1},
		{5, 0, 5},
		{0.1, 0.2, 0.7},
		{-1, 4, 0},
		{0, 0},
	}
	for _, ws := range cases {
		got := sum(Proportional(42, ws))
		if got > 42+1e-9 {
			t.Errorf("weights %v: shares sum %v exceeds total", ws, got)
		}
	}
}
